module vinfra

go 1.22
