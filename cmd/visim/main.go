// Command visim runs an interactive virtual infrastructure simulation: a
// grid of virtual nodes running the tracking service, mobile targets
// roaming the field with random-waypoint mobility, and tethered devices
// emulating the virtual nodes. It prints a per-interval status report:
// per-virtual-node availability, join/reset counts, and where the trackers
// believe each target is versus where it actually is.
//
// Usage:
//
//	visim -grid 3x3 -targets 2 -devices 4 -vrounds 120 -seed 7
//	visim -grid 8x8 -devices 16 -parallel   # shard rounds across cores
//
// A run can be suspended into a checkpoint file and resumed by a later
// process with identical results (the flags must match, since the
// checkpoint carries state, not configuration):
//
//	visim -vrounds 120 -checkpoint run.ckpt -checkpoint-every 40
//	visim -vrounds 120 -restore run.ckpt -checkpoint run.ckpt -checkpoint-every 40
//	visim -vrounds 120 -restore run.ckpt    # final segment prints the tables
//
// Profiling a run (see README "Profiling" for the workflow):
//
//	visim -grid 8x8 -devices 16 -parallel -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package main

import (
	"flag"
	"fmt"
	"os"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/checkpoint"
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
	"vinfra/internal/mobility"
	"vinfra/internal/prof"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

func main() {
	gridSpec := flag.String("grid", "2x2", "virtual node grid (CxR)")
	spacing := flag.Float64("spacing", 6, "grid spacing")
	devices := flag.Int("devices", 3, "devices tethered per virtual node")
	targets := flag.Int("targets", 2, "mobile targets to track")
	vrounds := flag.Int("vrounds", 60, "virtual rounds to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Bool("parallel", false, "shard round delivery and node fan-out across CPU cores (same seed, same output)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file to write (at -checkpoint-every, and when the run completes)")
	ckptEvery := flag.Int("checkpoint-every", 0, "suspend to -checkpoint after this many virtual rounds in this invocation (0 = run to completion)")
	restorePath := flag.String("restore", "", "resume from this checkpoint file (all other flags must match the suspended run)")
	cpuProfile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a runtime/pprof heap profile (post-GC live set) to this file at exit")
	flag.Parse()
	if *ckptEvery > 0 && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "visim: -checkpoint-every needs -checkpoint FILE to write to")
		os.Exit(2)
	}

	var cols, rows int
	if _, err := fmt.Sscanf(*gridSpec, "%dx%d", &cols, &rows); err != nil || cols < 1 || rows < 1 {
		fmt.Fprintf(os.Stderr, "visim: bad -grid %q\n", *gridSpec)
		os.Exit(2)
	}

	profiler, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visim: %v\n", err)
		os.Exit(2)
	}
	defer profiler.Stop()
	// os.Exit skips defers; every exit below flushes the profiles first.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		profiler.Stop()
		os.Exit(1)
	}

	radii := geo.Radii{R1: 10, R2: 20}
	grid := geo.Grid{Spacing: *spacing, Cols: cols, Rows: rows}
	locs := grid.Locations()
	sched := vi.BuildSchedule(locs, radii)

	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   apps.TrackerProgram(sched, apps.TrackerConfig{}),
		VMax:      0.02,
	})
	if err != nil {
		fail("visim: %v\n", err)
	}

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: *seed, Parallel: *parallel})
	engOpts := []sim.Option{sim.WithSeed(*seed)}
	if *parallel {
		engOpts = append(engOpts, sim.WithParallel())
	}
	eng := sim.NewEngine(medium, engOpts...)

	// Emulator devices tethered near each virtual node.
	greens := make([]int, len(locs))
	outputs := make([]int, len(locs))
	joins, resets := 0, 0
	for v, loc := range locs {
		v := v
		for i := 0; i < *devices; i++ {
			pos := geo.Point{X: loc.X + 0.4*float64(i) - 0.6, Y: loc.Y + 0.3}
			eng.Attach(pos, mobility.Tether{Anchor: loc, Radius: 1.2, VMax: 0.02}, func(env sim.Env) sim.Node {
				em := dep.NewEmulator(env, true)
				em.SetHooks(vi.EmulatorHooks{
					OnOutput: func(_ vi.VNodeID, out cha.Output) {
						outputs[v]++
						if out.Color == cha.Green {
							greens[v]++
						}
					},
					OnJoin:  func(vi.VNodeID, int) { joins++ },
					OnReset: func(vi.VNodeID, int) { resets++ },
				})
				return em
			})
		}
	}

	// Mobile targets with random-waypoint mobility, beaconing their
	// position; a stationary observer in the corner collects digests.
	bounds := grid.Bounds()
	area := geo.Rect{
		Min: geo.Point{X: bounds.Min.X - 2, Y: bounds.Min.Y - 2},
		Max: geo.Point{X: bounds.Max.X + 2, Y: bounds.Max.Y + 2},
	}
	targetIDs := make([]sim.NodeID, *targets)
	for i := 0; i < *targets; i++ {
		name := fmt.Sprintf("target-%c", 'A'+i)
		var id sim.NodeID
		id = eng.Attach(geo.Point{X: area.Min.X + float64(i), Y: area.Min.Y}, &mobility.RandomWaypoint{Area: area, VMax: 0.05},
			func(env sim.Env) sim.Node {
				return dep.NewClient(env, &apps.TargetClient{
					Name:   name,
					Period: 2,
					Pos:    env.Location,
				})
			})
		targetIDs[i] = id
	}
	observer := &apps.ObserverClient{}
	eng.Attach(locs[0], nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, observer)
	})

	per := dep.Timing().RoundsPerVRound()
	fmt.Printf("virtual infrastructure: %d virtual nodes, schedule length %d, %d radio rounds per virtual round\n",
		len(locs), sched.Len(), per)
	fmt.Printf("devices: %d emulators, %d targets; running %d virtual rounds (%d radio rounds)\n\n",
		len(locs)**devices, *targets, *vrounds, *vrounds*per)

	// Checkpoint driver state: the vround cursor plus the hook counters the
	// engine snapshot cannot see (they live in this function's closures).
	driverState := func(vr int) []byte {
		b := wire.AppendUvarint(nil, uint64(vr))
		b = wire.AppendUvarint(b, uint64(joins))
		b = wire.AppendUvarint(b, uint64(resets))
		for v := range locs {
			b = wire.AppendUvarint(b, uint64(greens[v]))
			b = wire.AppendUvarint(b, uint64(outputs[v]))
		}
		return b
	}
	startVR := 0
	if *restorePath != "" {
		cp, err := checkpoint.ReadFile(*restorePath)
		if err != nil {
			fail("visim: %v\n", err)
		}
		err = medium.Restore(cp.Medium)
		if err == nil {
			err = eng.Restore(cp.Engine)
		}
		if err == nil {
			d := wire.Dec(cp.Driver)
			startVR = int(d.Uvarint())
			joins, resets = int(d.Uvarint()), int(d.Uvarint())
			for v := range locs {
				greens[v] = int(d.Uvarint())
				outputs[v] = int(d.Uvarint())
			}
			err = d.Finish()
		}
		if err != nil {
			fail("visim: restore %s: %v (do the flags match the suspended run?)\n", *restorePath, err)
		}
	}

	stepped := 0
	for vr := startVR; vr < *vrounds; vr++ {
		if *ckptEvery > 0 && stepped == *ckptEvery {
			cp := checkpoint.Checkpoint{Engine: eng.Snapshot(), Medium: medium.Snapshot(), Driver: driverState(vr)}
			if err := cp.WriteFile(*ckptPath); err != nil {
				fail("visim: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "visim: suspended at vround %d/%d -> %s\n", vr, *vrounds, *ckptPath)
			return
		}
		eng.Run(per)
		stepped++
	}
	if *ckptPath != "" {
		cp := checkpoint.Checkpoint{Engine: eng.Snapshot(), Medium: medium.Snapshot(), Driver: driverState(*vrounds)}
		if err := cp.WriteFile(*ckptPath); err != nil {
			fail("visim: %v\n", err)
		}
	}

	vnTable := metrics.NewTable("virtual nodes", "vn", "location", "slot", "availability")
	for v, loc := range locs {
		avail := 0.0
		if outputs[v] > 0 {
			avail = float64(greens[v]) / float64(outputs[v])
		}
		vnTable.AddRow(fmt.Sprintf("vn%d", v), loc.String(), metrics.D(sched.SlotOf(vi.VNodeID(v))), metrics.F(avail))
	}
	vnTable.Render(os.Stdout)

	trTable := metrics.NewTable("tracking (observer at vn0)", "target", "believed", "actual", "error")
	for i, id := range targetIDs {
		name := fmt.Sprintf("target-%c", 'A'+i)
		actual := eng.Position(id)
		if sg, ok := observer.Lookup(name); ok {
			believed := geo.Point{X: sg.X, Y: sg.Y}
			trTable.AddRow(name, believed.String(), actual.String(), metrics.F(believed.Dist(actual)))
		} else {
			trTable.AddRow(name, "(unknown)", actual.String(), "-")
		}
	}
	trTable.Render(os.Stdout)

	fmt.Printf("joins: %d  resets: %d  transmissions: %d  max message: %d B\n",
		joins, resets, eng.Stats().Transmissions, eng.Stats().MaxMessageSize)
}
