// Command visim runs an interactive virtual infrastructure simulation
// described by a deployment spec: a grid of virtual nodes running a VI
// application, roaming targets and tethered devices emulating the virtual
// nodes. It prints per-virtual-node availability, join/reset counts, and —
// for the tracking app — where the trackers believe each target is versus
// where it actually is.
//
// The world is an internal/spec document. The classic flags are shorthand
// that visim translates into a spec; -dump-spec prints the effective spec
// (defaults materialized) without running, and -spec runs a spec file
// as-is — the same document POST /v1/sims accepts, with identical results:
//
//	visim -grid 3x3 -targets 2 -devices 4 -vrounds 120 -seed 7
//	visim -grid 3x3 -targets 2 -dump-spec > world.json
//	visim -spec world.json
//	visim -grid 8x8 -devices 16 -parallel   # shard rounds across cores
//
// A run can be suspended into a checkpoint file and resumed by a later
// process with identical results (the spec must match, since the
// checkpoint carries state, not configuration):
//
//	visim -spec world.json -checkpoint run.ckpt -checkpoint-every 40
//	visim -spec world.json -restore run.ckpt -checkpoint run.ckpt -checkpoint-every 40
//	visim -spec world.json -restore run.ckpt   # final segment prints the tables
//
// Profiling a run (see README "Profiling" for the workflow):
//
//	visim -grid 8x8 -devices 16 -parallel -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package main

import (
	"flag"
	"fmt"
	"os"

	"vinfra/internal/checkpoint"
	"vinfra/internal/cli"
	"vinfra/internal/metrics"
	"vinfra/internal/spec"
	"vinfra/internal/vi"
)

func main() {
	gridSpec := flag.String("grid", "2x2", "virtual node grid (CxR)")
	spacing := flag.Float64("spacing", 6, "grid spacing")
	devices := flag.Int("devices", 3, "devices tethered per virtual node")
	targets := flag.Int("targets", 2, "mobile targets to track")
	vrounds := flag.Int("vrounds", 60, "virtual rounds to simulate")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Bool("parallel", false, "shard round delivery and node fan-out across CPU cores (same seed, same output)")
	specPath := flag.String("spec", "", "run this deployment spec file instead of the world flags")
	dumpSpec := flag.Bool("dump-spec", false, "print the effective deployment spec and exit without running")
	var ckpt cli.Checkpoint
	ckpt.Register(flag.CommandLine)
	var profile cli.Profile
	profile.Register(flag.CommandLine)
	flag.Parse()
	if err := ckpt.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "visim: %v\n", err)
		os.Exit(2)
	}

	var s spec.Spec
	if *specPath != "" {
		worldFlags := map[string]bool{
			"grid": true, "spacing": true, "devices": true, "targets": true,
			"vrounds": true, "seed": true, "parallel": true,
		}
		conflict := ""
		flag.Visit(func(f *flag.Flag) {
			if worldFlags[f.Name] {
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(os.Stderr, "visim: -%s conflicts with -spec (the spec file describes the whole world)\n", conflict)
			os.Exit(2)
		}
		b, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "visim: %v\n", err)
			os.Exit(2)
		}
		if s, err = spec.Parse(b); err != nil {
			fmt.Fprintf(os.Stderr, "visim: %s: %v\n", *specPath, err)
			os.Exit(2)
		}
	} else {
		var cols, rows int
		if _, err := fmt.Sscanf(*gridSpec, "%dx%d", &cols, &rows); err != nil || cols < 1 || rows < 1 {
			fmt.Fprintf(os.Stderr, "visim: bad -grid %q\n", *gridSpec)
			os.Exit(2)
		}
		s = spec.Spec{
			Version: spec.Version,
			Seed:    *seed,
			VRounds: *vrounds,
			Grid:    spec.Grid{Cols: cols, Rows: rows, Spacing: *spacing},
			App:     "tracker",
			Devices: spec.Devices{Replicas: *devices, Targets: *targets},
			Engine:  spec.Engine{Parallel: *parallel},
		}
		s.ApplyDefaults()
		if err := s.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "visim: %v\n", err)
			os.Exit(2)
		}
	}
	if *dumpSpec {
		os.Stdout.Write(s.JSON())
		return
	}

	profiler, err := profile.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "visim: %v\n", err)
		os.Exit(2)
	}
	defer profiler.Stop()
	// os.Exit skips defers; every exit below flushes the profiles first.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		profiler.Stop()
		os.Exit(1)
	}

	w, err := spec.Build(s)
	if err != nil {
		fail("visim: %v\n", err)
	}
	defer w.Eng.Close()

	per := w.RoundsPerVRound()
	fmt.Printf("virtual infrastructure: %d virtual nodes, schedule length %d, %d radio rounds per virtual round\n",
		len(w.Locs), w.Dep.Schedule().Len(), per)
	fmt.Printf("devices: %d total (%d emulators, %d targets); running %d virtual rounds (%d radio rounds)\n\n",
		s.TotalDevices(), len(w.Locs)*s.Devices.Replicas, s.Devices.Targets, s.VRounds, s.VRounds*per)

	if ckpt.Restore != "" {
		cp, err := checkpoint.ReadFile(ckpt.Restore)
		if err != nil {
			fail("visim: %v\n", err)
		}
		if err := w.Restore(cp); err != nil {
			fail("visim: restore %s: %v (does the spec match the suspended run?)\n", ckpt.Restore, err)
		}
	}

	stepped := 0
	for w.VRound() < w.VRounds() {
		if ckpt.Every > 0 && stepped == ckpt.Every {
			if err := w.Checkpoint().WriteFile(ckpt.Path); err != nil {
				fail("visim: %v\n", err)
			}
			fmt.Fprintf(os.Stderr, "visim: suspended at vround %d/%d -> %s\n", w.VRound(), w.VRounds(), ckpt.Path)
			return
		}
		w.StepVRound()
		stepped++
	}
	if ckpt.Path != "" {
		if err := w.Checkpoint().WriteFile(ckpt.Path); err != nil {
			fail("visim: %v\n", err)
		}
	}

	sched := w.Dep.Schedule()
	vnTable := metrics.NewTable("virtual nodes", "vn", "location", "slot", "availability")
	for v, loc := range w.Locs {
		rep := w.Report(vi.VNodeID(v))
		vnTable.AddRow(fmt.Sprintf("vn%d", v), loc.String(), metrics.D(sched.SlotOf(vi.VNodeID(v))), metrics.F(rep.Availability))
	}
	vnTable.Render(os.Stdout)

	if len(w.Targets) > 0 {
		trTable := metrics.NewTable("tracking (observer at vn0)", "target", "believed", "actual", "error")
		for _, tg := range w.Targets {
			actual := w.Eng.Position(tg.ID)
			if believed, ok := w.Lookup(tg.Name); ok {
				trTable.AddRow(tg.Name, believed.String(), actual.String(), metrics.F(believed.Dist(actual)))
			} else {
				trTable.AddRow(tg.Name, "(unknown)", actual.String(), "-")
			}
		}
		trTable.Render(os.Stdout)
	}

	fmt.Printf("joins: %d  resets: %d  transmissions: %d  max message: %d B\n",
		w.Joins(), w.Resets(), w.Eng.Stats().Transmissions, w.Eng.Stats().MaxMessageSize)
}
