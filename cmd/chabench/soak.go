// Soak mode: run one cell of a soakable experiment (E11, E13, E14) as a
// resumable job. The run can be suspended into a checkpoint file after a
// fixed number of virtual rounds and resumed — by a fresh process — with
// output byte-identical to an uninterrupted run. This is how the nightly
// soaks survive job time limits: each CI step executes one segment,
// killing the process in between, and the final segment's stdout is
// diffed against an uninterrupted baseline.
//
//	chabench -soak E13 -quick                                  # straight run
//	chabench -soak E13 -quick -checkpoint f -checkpoint-every 3 # segment 1
//	chabench -soak E13 -quick -restore f -checkpoint f -checkpoint-every 3
//	chabench -soak E13 -quick -restore f                       # final segment
//
// Segments that stop early write the checkpoint and exit 0 with nothing
// on stdout (a progress note goes to stderr); the completing invocation
// prints the cell's result rows. Measured (wall-clock) values are blanked
// so the output is byte-stable across machines and segmentations. When
// -checkpoint is set on the completing invocation, the finished run's
// state is written there too, so CI can archive the final checkpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vinfra/internal/checkpoint"
	"vinfra/internal/cli"
	"vinfra/internal/experiments"
	"vinfra/internal/harness"
)

// soakFlags holds the -soak flag family, registered next to the main flag
// set and acted on before the suite runner. The checkpoint trio comes from
// internal/cli, shared with cmd/visim.
type soakFlags struct {
	exp     string
	cell    string
	seed    int64
	shards  int
	vrounds int
	ckpt    cli.Checkpoint
}

func registerSoakFlags() *soakFlags {
	var s soakFlags
	flag.StringVar(&s.exp, "soak", "", "run one cell of a soakable experiment (E11, E13 or E14) as a resumable job")
	flag.StringVar(&s.cell, "cell", "", "cell label within the -soak experiment's grid (default: first cell)")
	flag.Int64Var(&s.seed, "soakseed", 1, "seed for the -soak cell")
	flag.IntVar(&s.shards, "shards", 0, "region shards for the -soak run (0 = experiment default)")
	flag.IntVar(&s.vrounds, "soak-vrounds", 0, "override the -soak cell's virtual-round horizon (0 = grid value)")
	s.ckpt.Register(flag.CommandLine)
	return &s
}

// runSoak executes one soak segment and returns the process exit code.
func runSoak(f *soakFlags, quick bool, out io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "chabench: soak: %v\n", err)
		return 2
	}
	if err := f.ckpt.Validate(); err != nil {
		return fail(err)
	}
	cell, err := soakCell(f, quick)
	if err != nil {
		return fail(err)
	}
	s, err := experiments.NewSoak(f.exp, cell, f.shards)
	if err != nil {
		return fail(err)
	}
	if f.ckpt.Restore != "" {
		cp, err := checkpoint.ReadFile(f.ckpt.Restore)
		if err != nil {
			return fail(err)
		}
		if err := s.Restore(cp); err != nil {
			return fail(fmt.Errorf("restore %s: %v", f.ckpt.Restore, err))
		}
	}

	stepped := 0
	for s.VRound() < s.VRounds() {
		if f.ckpt.Every > 0 && stepped == f.ckpt.Every {
			if err := s.Checkpoint().WriteFile(f.ckpt.Path); err != nil {
				return fail(err)
			}
			fmt.Fprintf(os.Stderr, "chabench: soak: %s %s suspended at vround %d/%d -> %s\n",
				f.exp, cell.Params.Label, s.VRound(), s.VRounds(), f.ckpt.Path)
			return 0
		}
		s.StepVRound()
		stepped++
	}

	if f.ckpt.Path != "" {
		if err := s.Checkpoint().WriteFile(f.ckpt.Path); err != nil {
			return fail(err)
		}
	}
	fmt.Fprintf(out, "%s\t%s\tseed=%d\tshards=%d\n", f.exp, cell.Params.Label, f.seed, f.shards)
	fmt.Fprintln(out, strings.Join(s.Columns(), "\t"))
	for _, row := range s.Rows() {
		texts := make([]string, len(row))
		for i, v := range row {
			if v.Measured {
				texts[i] = "-" // wall-clock values cannot survive a byte-compare
			} else {
				texts[i] = v.Text
			}
		}
		fmt.Fprintln(out, strings.Join(texts, "\t"))
	}
	return 0
}

func soakDescriptor(exp string) (harness.Descriptor, error) {
	for _, d := range harness.All() {
		if d.ID == exp {
			return d, nil
		}
	}
	return harness.Descriptor{}, fmt.Errorf("unknown experiment %q", exp)
}

// soakCell resolves the -cell label against the experiment's grid (the
// quick or full variant, matching -quick) so a soak runs exactly the cell
// the suite would.
func soakCell(f *soakFlags, quick bool) (*harness.Cell, error) {
	d, err := soakDescriptor(f.exp)
	if err != nil {
		return nil, err
	}
	grid := d.Grid(quick)
	var params *harness.Params
	for i := range grid {
		if f.cell == "" || grid[i].Label == f.cell {
			params = &grid[i]
			break
		}
	}
	if params == nil {
		var labels []string
		for _, p := range grid {
			labels = append(labels, p.Label)
		}
		return nil, fmt.Errorf("no cell %q in %s (quick=%v); have %s",
			f.cell, f.exp, quick, strings.Join(labels, ", "))
	}
	if f.vrounds > 0 {
		params.Ints["vrounds"] = f.vrounds
	}
	return &harness.Cell{Params: *params, Seed: f.seed}, nil
}
