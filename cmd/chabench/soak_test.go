package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildChabench compiles the binary once into a temp dir so the soak
// tests exercise real process boundaries, not in-process calls.
func buildChabench(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "chabench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSoakSegmentedAcrossProcesses is the kill-and-restore half of the
// golden soak property: running a quick E11 and E13 cell as three
// segments — each a fresh process, resumed from the checkpoint file the
// previous process wrote before exiting — produces stdout byte-identical
// to one uninterrupted process. This is the mechanism the nightly CI
// soaks rely on to span job restarts.
func TestSoakSegmentedAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the chabench binary")
	}
	bin := buildChabench(t)

	run := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\nstderr: %s", bin, args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	for _, exp := range []string{"E11", "E13"} {
		ckpt := filepath.Join(t.TempDir(), "run.ckpt")
		straight := run("-soak", exp, "-quick")
		if len(straight) == 0 {
			t.Fatalf("%s: straight run produced no output", exp)
		}
		// Quick cells run 8 vrounds: 3 + 3 + 2 = three processes.
		seg1 := run("-soak", exp, "-quick", "-checkpoint", ckpt, "-checkpoint-every", "3")
		seg2 := run("-soak", exp, "-quick", "-restore", ckpt, "-checkpoint", ckpt, "-checkpoint-every", "3")
		final := run("-soak", exp, "-quick", "-restore", ckpt)
		if len(seg1) != 0 || len(seg2) != 0 {
			t.Fatalf("%s: suspended segment wrote to stdout", exp)
		}
		if !bytes.Equal(final, straight) {
			t.Fatalf("%s: segmented output differs from uninterrupted run:\nsegmented:\n%s\nstraight:\n%s",
				exp, final, straight)
		}
	}
}

// TestSoakWritesFinalCheckpoint pins the CI artifact contract: a
// completing -soak invocation with -checkpoint set leaves a readable
// checkpoint file behind.
func TestSoakWritesFinalCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the chabench binary")
	}
	bin := buildChabench(t)
	ckpt := filepath.Join(t.TempDir(), "final.ckpt")
	cmd := exec.Command(bin, "-soak", "E11", "-quick", "-checkpoint", ckpt)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	info, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("final checkpoint is empty")
	}
}
