package main

import "testing"

func TestTolFlagParse(t *testing.T) {
	for _, tc := range []struct {
		in      string
		base    float64
		per     map[string]float64
		wantErr bool
	}{
		{in: "0.30", base: 0.30},
		{in: "0.5", base: 0.5},
		{in: "0.30,E14=0.40", base: 0.30, per: map[string]float64{"E14": 0.40}},
		// Override only: the default stays at the flag's initial value.
		{in: "e14=0.40", base: 0.30, per: map[string]float64{"E14": 0.40}},
		{in: "0.25,E14=0.40,E10=0.10", base: 0.25,
			per: map[string]float64{"E14": 0.40, "E10": 0.10}},
		{in: " 0.30 , E14 = 0.40 ", base: 0.30, per: map[string]float64{"E14": 0.40}},
		{in: "bogus", wantErr: true},
		{in: "E14=abc", wantErr: true},
		{in: "=0.40", wantErr: true},
	} {
		f := tolFlag{base: 0.30}
		err := f.Set(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Set(%q): no error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Set(%q): %v", tc.in, err)
			continue
		}
		if f.base != tc.base {
			t.Errorf("Set(%q): base = %v, want %v", tc.in, f.base, tc.base)
		}
		if len(f.per) != len(tc.per) {
			t.Errorf("Set(%q): per = %v, want %v", tc.in, f.per, tc.per)
			continue
		}
		for k, v := range tc.per {
			if f.per[k] != v {
				t.Errorf("Set(%q): per[%s] = %v, want %v", tc.in, k, f.per[k], v)
			}
		}
	}
}

func TestTolFlagString(t *testing.T) {
	f := tolFlag{base: 0.30}
	if err := f.Set("0.30,E14=0.40,E10=0.10"); err != nil {
		t.Fatal(err)
	}
	// Overrides render sorted so the default shown by -h is stable.
	if got, want := f.String(), "0.3,E10=0.1,E14=0.4"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
