// Command chabench regenerates every table of the reproduction experiment
// suite (E1–E10): the paper's Figure 2, the constant-overhead
// claims of Theorem 14, the Property 4 color invariant, the correctness
// theorems, the Section 4 emulation overhead and churn behaviour, the
// Section 1.5 baseline comparisons, the ablations, and the round-delivery
// scaling table (scan vs grid spatial index).
//
// Usage:
//
//	chabench              # full suite
//	chabench -quick       # smaller parameter sweeps
//	chabench -only E2     # a single experiment (E1..E10)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vinfra/internal/experiments"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced parameter sweeps")
	only := flag.String("only", "", "run a single experiment (E1..E10)")
	flag.Parse()

	type experiment struct {
		id     string
		tables func() []*metrics.Table
	}
	sweep := func(full, quickVal []int) []int {
		if *quick {
			return quickVal
		}
		return full
	}
	instances := 200
	vrounds := 40
	if *quick {
		instances = 50
		vrounds = 10
	}

	suite := []experiment{
		{"E1", func() []*metrics.Table {
			return []*metrics.Table{experiments.Figure2Table()}
		}},
		{"E2", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.OverheadVsN(sweep([]int{2, 4, 8, 16, 32, 64}, []int{2, 8, 32}), instances/4),
				experiments.OverheadVsLength(sweep([]int{16, 64, 256, 1024}, []int{16, 128})),
				experiments.RoundsUnderLoss(4, []float64{0, 0.1, 0.3, 0.5}, instances),
			}
		}},
		{"E3", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.ColorSpread(5, []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9}, instances),
			}
		}},
		{"E4", func() []*metrics.Table {
			seeds := 30
			if *quick {
				seeds = 8
			}
			return []*metrics.Table{
				experiments.CorrectnessCampaign(seeds, []sim.Round{30, 90, 180}, instances/4),
			}
		}},
		{"E5", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.EmulationOverheadVsDensity(vrounds),
				experiments.EmulationOverheadVsReplicas(sweep([]int{1, 2, 4, 8}, []int{1, 4}), vrounds),
			}
		}},
		{"E6", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.ChurnSurvival(sweep([]int{2, 4, 8}, []int{4}), vrounds*2),
			}
		}},
		{"E7", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.BaselineVIComparison(sweep([]int{3, 7, 11, 15, 31}, []int{3, 15}), vrounds/2),
				experiments.StateTransferCost([]int{0, 4, 16, 64}),
			}
		}},
		{"E8", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.DetectorAblation(instances / 2),
				experiments.CMAblation(instances),
				experiments.CheckpointAblation(sweep([]int{50, 200, 800}, []int{50, 200})),
			}
		}},
		{"E9", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.RoutingLatency(sweep([]int{2, 3, 5, 8}, []int{2, 4}), 4),
				experiments.LockThroughput(sweep([]int{1, 2, 4, 8}, []int{2, 4}), vrounds*3),
			}
		}},
		{"E10", func() []*metrics.Table {
			return []*metrics.Table{
				experiments.DeliveryScaling(sweep([]int{100, 1000, 10000}, []int{100, 1000}), sweep([]int{20}, []int{5})[0]),
			}
		}},
	}

	ran := 0
	for _, exp := range suite {
		if *only != "" && !strings.EqualFold(*only, exp.id) {
			continue
		}
		fmt.Printf("### %s\n\n", exp.id)
		for _, t := range exp.tables() {
			t.Render(os.Stdout)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "chabench: unknown experiment %q (want E1..E10)\n", *only)
		os.Exit(2)
	}
}
