// Command chabench runs the reproduction experiment suite (E1–E14) through
// the internal/harness registry: the paper's Figure 2, the
// constant-overhead claims of Theorem 14, the Property 4 color invariant,
// the correctness theorems, the Section 4 emulation overhead and churn
// behaviour, the Section 1.5 baseline comparisons, the ablations, the
// round-delivery scaling table (scan vs grid spatial index), the metro
// churn-at-scale campaign (E11), the state-plane cost table (E12:
// per-virtual-round rounds, measured wire bytes and rounds/sec on the
// wire-codec stack), the adversary robustness grid (E13), and the
// city-scale region-sharded campaign (E14: the same metro deployment on 1
// and 8 shards, with a byte-identical "match" pin and a measured scaling
// ratio).
//
// Usage:
//
//	chabench                    # full suite, classic text tables
//	chabench -quick             # smaller parameter sweeps
//	chabench -only E2           # one experiment group (or sub-ID: E2a)
//	chabench -json              # machine-readable report on stdout
//	chabench -json -out f.json  # ... written to a file
//	chabench -seeds 1,2,3       # replicate every cell across seeds
//	chabench -parallel          # fan cells out over a worker pool
//	chabench -timing=false      # deterministic output (perf fields blanked)
//
// Profiling a run (see README "Profiling" for the workflow):
//
//	chabench -only E14 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
//
// Comparing against a committed baseline:
//
//	chabench -json -only E10,E11,E12,E13,E14 -seeds 1,2,3 -out bench.json
//	chabench -compare bench.json                  # vs BENCH_BASELINE.json
//	chabench -compare bench.json -calibrate -tolerance 0.30,E14=0.40
//
// -compare exits 2 on usage errors, 1 when a gated cell regressed beyond
// the tolerance or when cells pinned by the baseline are absent from the
// new report (lost coverage must fail loudly, not shrink the gate), and 0
// otherwise. -calibrate divides every ratio by the
// suite's median ratio, cancelling machine-speed differences when the
// baseline was generated on different hardware (the CI setting).
// -tolerance takes a default plus optional per-experiment overrides
// ("0.30,E14=0.40"): E14 times whole city-scale runs and gates looser than
// the per-round microbenchmarks without loosening the rest of the suite.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"vinfra/internal/cli"
	_ "vinfra/internal/experiments" // registers E1..E14 descriptors
	"vinfra/internal/harness"
)

// tolFlag is the -tolerance value: a default fractional slowdown plus
// per-experiment overrides, e.g. "0.30,E14=0.40". A plain float keeps the
// historical behaviour.
type tolFlag struct {
	base float64
	per  map[string]float64
}

func (t *tolFlag) String() string {
	s := strconv.FormatFloat(t.base, 'g', -1, 64)
	var keys []string
	for k := range t.per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s += fmt.Sprintf(",%s=%g", k, t.per[k])
	}
	return s
}

func (t *tolFlag) Set(s string) error {
	per := map[string]float64{}
	base := t.base
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, val, isOverride := strings.Cut(tok, "=")
		if !isOverride {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return fmt.Errorf("bad tolerance %q (want a fraction like 0.30)", tok)
			}
			base = v
			continue
		}
		name = strings.ToUpper(strings.TrimSpace(name))
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if name == "" || err != nil {
			return fmt.Errorf("bad tolerance override %q (want EXP=fraction like E14=0.40)", tok)
		}
		per[name] = v
	}
	t.base = base
	t.per = per
	return nil
}

func main() {
	var (
		quick    = flag.Bool("quick", false, "run reduced parameter sweeps")
		only     = flag.String("only", "", "run a subset: comma-separated groups (E1..E14) or sub-IDs (E2a)")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable JSON report instead of text tables")
		outPath  = flag.String("out", "", "write output to a file instead of stdout")
		seedsStr = flag.String("seeds", "", "comma-separated seed list replicated across every cell (default: per-experiment)")
		parallel = flag.Bool("parallel", false, "fan experiment cells out over a bounded worker pool")
		workers  = flag.Int("workers", 0, "worker-pool size; >1 implies -parallel (like sim.WithWorkers), 0 = GOMAXPROCS when -parallel is set")
		timing   = flag.Bool("timing", true, "sample wall time and allocations; =false blanks measured values for byte-stable output")
		note     = flag.String("note", "", "free-form note recorded in the JSON header (machine, commit, ...)")

		profile cli.Profile

		compare   = flag.String("compare", "", "compare the given report JSON against -baseline and exit")
		baseline  = flag.String("baseline", "BENCH_BASELINE.json", "baseline report for -compare")
		tolerance = tolFlag{base: 0.30}
		calibrate = flag.Bool("calibrate", false, "normalize -compare ratios by the median ratio (cross-machine comparisons)")
		minWall   = flag.Float64("minwall", 0.025, "noise floor in seconds: faster cells are exempt from the -compare gate")
	)
	flag.Var(&tolerance, "tolerance",
		"allowed fractional slowdown per cell for -compare, with optional per-experiment overrides (\"0.30,E14=0.40\")")
	profile.Register(flag.CommandLine)
	soak := registerSoakFlags()
	flag.Parse()

	profiler, err := profile.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
		os.Exit(2)
	}
	defer profiler.Stop()
	// os.Exit skips defers; every exit below flushes the profiles first.
	exit := func(code int) {
		profiler.Stop()
		os.Exit(code)
	}

	if *compare != "" {
		exit(runCompare(*compare, *baseline, tolerance, *calibrate, *minWall))
	}
	if soak.exp != "" {
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
				exit(1)
			}
			code := runSoak(soak, *quick, f)
			f.Close()
			exit(code)
		}
		exit(runSoak(soak, *quick, out))
	}

	seeds, err := parseSeeds(*seedsStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
		exit(2)
	}
	w := *workers
	if *parallel && w <= 0 {
		w = -1 // harness: negative means GOMAXPROCS
	}
	suite, err := harness.Run(harness.Options{
		Only:    *only,
		Quick:   *quick,
		Seeds:   seeds,
		Workers: w,
		Timing:  *timing,
		Note:    *note,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
		exit(2)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
			exit(1)
		}
		defer f.Close()
		out = f
	}
	if *jsonOut {
		if err := suite.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
			exit(1)
		}
		return
	}
	suite.RenderText(out)
}

func parseSeeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var seeds []int64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds value %q", tok)
		}
		seeds = append(seeds, v)
	}
	return seeds, nil
}

func runCompare(curPath, basePath string, tolerance tolFlag, calibrate bool, minWall float64) int {
	base, err := harness.LoadReport(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chabench: baseline: %v\n", err)
		return 2
	}
	cur, err := harness.LoadReport(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chabench: %v\n", err)
		return 2
	}
	cmp := harness.Compare(base, cur, harness.CompareOptions{
		Tolerance:     tolerance.base,
		PerExperiment: tolerance.per,
		Calibrate:     calibrate,
		MinWallSec:    minWall,
	})
	if len(cmp.Deltas) == 0 {
		fmt.Fprintf(os.Stderr, "chabench: no cells in %s match the baseline %s (cells are matched by experiment/cell/seed — were both produced by the same -only/-seeds invocation?)\n",
			curPath, basePath)
		for _, m := range cmp.Missing {
			fmt.Fprintf(os.Stderr, "  missing: %s\n", m)
		}
		return 2
	}
	cmp.Table().Render(os.Stdout)
	for _, m := range cmp.Missing {
		fmt.Printf("missing: %s\n", m)
	}
	for _, d := range cmp.Drift {
		fmt.Printf("drift: %s (deterministic results changed; inspect before trusting the perf diff)\n", d)
	}
	if !cmp.OK() {
		fmt.Println()
		for _, r := range cmp.Regressions {
			fmt.Printf("REGRESSION: %s\n", r)
		}
		if len(cmp.Dropped) > 0 {
			fmt.Printf("MISSING COVERAGE: %d baseline cell(s) absent from %s — the gate would silently stop checking them (was an experiment dropped by a typo in -only, or a grid label renamed?):\n",
				len(cmp.Dropped), curPath)
			for _, d := range cmp.Dropped {
				fmt.Printf("  %s\n", d)
			}
		}
		return 1
	}
	fmt.Println("perf gate: ok")
	return 0
}
