package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBin compiles one command package into a temp dir so these tests
// exercise real process boundaries — the same pattern as the chabench
// soak tests.
func buildBin(t *testing.T, pkg, name string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// daemon is one running visimd process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon boots visimd on an ephemeral port and waits for its
// readiness line.
func startDaemon(t *testing.T, bin, stateDir string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-state", stateDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting visimd: %v", err)
	}
	d := &daemon{cmd: cmd}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if _, addr, found := strings.Cut(line, "listening on http://"); found {
			d.url = "http://" + strings.TrimSpace(addr)
			// Keep draining stderr so the daemon never blocks on the pipe.
			go io.Copy(io.Discard, stderr)
			return d
		}
	}
	t.Fatalf("visimd exited before its readiness line (scan err %v)", sc.Err())
	return nil
}

// kill hard-kills the daemon process (the crash in crash-restart).
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	d.cmd.Wait()
}

func httpDo(t *testing.T, method, url, body string, wantCode int) []byte {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, url, err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantCode, b)
	}
	return b
}

const specNoFault = `{"version": "vinfra-spec/v1", "seed": 9, "vrounds": 8,
	"grid": {"cols": 2, "rows": 1}, "devices": {"pingers": true}}`

const specWithFault = `{"version": "vinfra-spec/v1", "seed": 9, "vrounds": 8,
	"grid": {"cols": 2, "rows": 1}, "devices": {"pingers": true},
	"faults": [{"kind": "crash_burst", "from": 30, "until": 60, "period": 10, "p": 0.4}]}`

const faultDoc = `{"kind": "crash_burst", "from": 30, "until": 60, "period": 10, "p": 0.4}`

// runVisimSpec runs visim -spec on a spec document and returns the final
// checkpoint bytes.
func runVisimSpec(t *testing.T, visim, doc string) []byte {
	t.Helper()
	dir := t.TempDir()
	specPath := filepath.Join(dir, "world.json")
	if err := os.WriteFile(specPath, []byte(doc), 0o644); err != nil {
		t.Fatalf("writing spec: %v", err)
	}
	ckptPath := filepath.Join(dir, "final.ckpt")
	cmd := exec.Command(visim, "-spec", specPath, "-checkpoint", ckptPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("visim -spec: %v\n%s", err, out)
	}
	b, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatalf("reading visim checkpoint: %v", err)
	}
	return b
}

// TestHTTPMatchesVisimSpec is the API determinism acceptance pin: the same
// spec driven over HTTP — including a fault injected mid-run via POST
// faults — yields checkpoint bytes (engine + medium + monitor snapshots)
// byte-identical to visim -spec with the fault listed in the spec.
func TestHTTPMatchesVisimSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the visim and visimd binaries")
	}
	visim := buildBin(t, "vinfra/cmd/visim", "visim")
	visimd := buildBin(t, ".", "visimd")
	want := runVisimSpec(t, visim, specWithFault)

	d := startDaemon(t, visimd, t.TempDir())
	httpDo(t, "POST", d.url+"/v1/sims", `{"name": "pin", "spec": `+specNoFault+`}`, http.StatusCreated)
	// Step one virtual round (14 radio rounds — before the fault window
	// opens at round 30), inject the same fault, finish the horizon.
	httpDo(t, "POST", d.url+"/v1/sims/pin/step", `{"vrounds": 1}`, http.StatusOK)
	httpDo(t, "POST", d.url+"/v1/sims/pin/faults", faultDoc, http.StatusOK)
	httpDo(t, "POST", d.url+"/v1/sims/pin/step", `{"vrounds": 7}`, http.StatusOK)
	got := httpDo(t, "GET", d.url+"/v1/sims/pin/checkpoint", "", http.StatusOK)

	if len(got) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("HTTP-driven checkpoint (%d bytes) differs from visim -spec (%d bytes)", len(got), len(want))
	}
	// The effective spec served back is the reference spec: re-runnable.
	eff := httpDo(t, "GET", d.url+"/v1/sims/pin/spec", "", http.StatusOK)
	if !strings.Contains(string(eff), `"crash_burst"`) {
		t.Fatalf("effective spec lost the injected fault:\n%s", eff)
	}
}

// TestDaemonKillAndRestore is the crash-restart contract across real
// processes: kill -9 a daemon whose tenant checkpointed, boot a fresh one
// on the same state directory, and the tenant resumes where it left off —
// finishing byte-identical to an uninterrupted visim -spec run.
func TestDaemonKillAndRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the visim and visimd binaries")
	}
	visim := buildBin(t, "vinfra/cmd/visim", "visim")
	visimd := buildBin(t, ".", "visimd")
	want := runVisimSpec(t, visim, specNoFault)

	state := t.TempDir()
	d1 := startDaemon(t, visimd, state)
	httpDo(t, "POST", d1.url+"/v1/sims", `{"name": "phoenix", "spec": `+specNoFault+`}`, http.StatusCreated)
	httpDo(t, "POST", d1.url+"/v1/sims/phoenix/step", `{"vrounds": 3}`, http.StatusOK)
	httpDo(t, "POST", d1.url+"/v1/sims/phoenix/checkpoint", "", http.StatusOK)
	d1.kill(t)

	d2 := startDaemon(t, visimd, state)
	st := httpDo(t, "GET", d2.url+"/v1/sims/phoenix", "", http.StatusOK)
	if !strings.Contains(string(st), `"vround": 3`) {
		t.Fatalf("recovered tenant not at vround 3:\n%s", st)
	}
	httpDo(t, "POST", d2.url+"/v1/sims/phoenix/step", `{"vrounds": 5}`, http.StatusOK)
	got := httpDo(t, "GET", d2.url+"/v1/sims/phoenix/checkpoint", "", http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed run after kill -9 diverged from an uninterrupted visim -spec run")
	}

	// The daemon exposes both halves of the story on /metrics.
	m := string(httpDo(t, "GET", d2.url+"/metrics", "", http.StatusOK))
	for _, wantLine := range []string{
		`vinfra_sim_vround{sim="phoenix"} 8`,
		`vinfra_vnode_availability{sim="phoenix",vnode="0"} 1.0000`,
	} {
		if !strings.Contains(m, wantLine) {
			t.Fatalf("metrics missing %q:\n%s", wantLine, m)
		}
	}
}

// TestVisimDumpSpecRoundTrips pins the flag-to-spec translation: the spec
// visim -dump-spec prints runs identically through -spec.
func TestVisimDumpSpecRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the visim binary")
	}
	visim := buildBin(t, "vinfra/cmd/visim", "visim")
	out, err := exec.Command(visim, "-grid", "2x1", "-targets", "1", "-vrounds", "4", "-dump-spec").Output()
	if err != nil {
		t.Fatalf("visim -dump-spec: %v", err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "world.json")
	if err := os.WriteFile(specPath, out, 0o644); err != nil {
		t.Fatalf("writing spec: %v", err)
	}
	flagRun, err := exec.Command(visim, "-grid", "2x1", "-targets", "1", "-vrounds", "4").Output()
	if err != nil {
		t.Fatalf("visim (flags): %v", err)
	}
	specRun, err := exec.Command(visim, "-spec", specPath).Output()
	if err != nil {
		t.Fatalf("visim -spec: %v", err)
	}
	if !bytes.Equal(flagRun, specRun) {
		t.Fatalf("-spec output differs from the flag run:\n--- flags:\n%s\n--- spec:\n%s", flagRun, specRun)
	}
	if err := exec.Command(visim, "-spec", specPath, "-grid", "3x3").Run(); err == nil {
		t.Fatal("visim accepted -grid together with -spec")
	}
}
