// Command visimd is the multi-tenant simulation daemon: a long-running
// HTTP service where POST /v1/sims creates a named simulation from a
// versioned internal/spec document, and further endpoints step it, run it
// in the background, inject faults, stream events and per-virtual-node
// availability, and checkpoint/restore it. See internal/service for the
// endpoint reference and README "Running visimd" for a curl quickstart.
//
//	visimd -addr 127.0.0.1:8080 -state ./visimd-state
//
// With -state, every sim's effective spec (and any POSTed checkpoints)
// persist across daemon restarts: a visimd rebooted on the same directory
// rebuilds its tenants and resumes each from its latest checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vinfra/internal/cli"
	"vinfra/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	state := flag.String("state", "", "state directory for spec + checkpoint persistence (empty = in-memory only)")
	var profile cli.Profile
	profile.Register(flag.CommandLine)
	flag.Parse()

	profiler, err := profile.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "visimd: %v\n", err)
		os.Exit(2)
	}
	defer profiler.Stop()

	svc, err := service.New(service.Options{StateDir: *state})
	if err != nil {
		fmt.Fprintf(os.Stderr, "visimd: %v\n", err)
		profiler.Stop()
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "visimd: %v\n", err)
		profiler.Stop()
		os.Exit(1)
	}
	// The "listening" line is the readiness signal scripts wait for; it is
	// printed only after the port is bound.
	fmt.Fprintf(os.Stderr, "visimd: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: svc}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "visimd: %v, shutting down\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "visimd: %v\n", err)
		svc.Close()
		profiler.Stop()
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "visimd: shutdown: %v\n", err)
	}
	svc.Close()
}
