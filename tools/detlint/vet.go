package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"vinfra/tools/detlint/internal/load"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig — the JSON the go
// command writes to <objdir>/vet.cfg and hands to a -vettool. Only the
// fields detlint consumes are declared; the rest round-trip through the
// decoder untouched.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	VetxOnly     bool
	VetxOutput   string
	GoVersion    string
	IgnoredFiles []string

	SucceedOnTypecheckFailure bool
}

// vetMode speaks the go vet tool protocol: read the package config, write
// the (empty — detlint records no facts) vetx output the go command caches,
// analyze, print findings to stderr and exit 2 when there are any.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// detlint produces no cross-package facts, but cmd/go caches the vetx
	// output file to decide whether dependency re-vets are needed — write
	// an empty one so the cache works.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // facts-only run for a dependency; nothing to compute
	}

	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(os.Stderr, "detlint: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}
	if len(analyzersFor(cfg.ImportPath)) == 0 {
		return 0
	}

	// The go command vets test variants too; the determinism contract is
	// about non-test code, so test files are dropped (an all-test package
	// — the external _test variant — is skipped entirely).
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(filepath.Base(f), "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	imp := load.Importer(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := load.Check(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings := runPackage(pkg, fset)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
