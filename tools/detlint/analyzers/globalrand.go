package analyzers

import (
	"go/ast"
	"go/types"

	"vinfra/tools/detlint/internal/analysis"
)

// globalRandFuncs are the math/rand package-level functions that draw from
// the process-global source: shared mutable state, nondeterministic under
// the parallel shards and unkeyed by (seed, round, node).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// GlobalRand flags any use of math/rand (or math/rand/v2) in deterministic
// packages. Package-level draws use the global source; raw sources and
// generators (rand.NewSource, rand.New, rand.NewPCG, ...) are seeded
// sequential state that duplicates — and drifts from — the det.Stream
// primitive. Randomness must flow through det.HashKeys / det.NewStream
// (re-exported as radio.HashKeys / the faults hashKeys alias); a
// deliberately-seeded source that genuinely needs math/rand carries a
// //detlint:rand annotation.
var GlobalRand = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flags math/rand use in deterministic packages; randomness must derive from det.HashKeys/det.NewStream",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass, sel)
			if !ok || !isRandPath(path) {
				return true
			}
			// A type reference (*rand.Rand in a signature) produces no
			// randomness itself; the constructor that fills it is the
			// flag site.
			if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
				return true
			}
			if pass.Exempt(sel.Pos(), "rand") {
				return true
			}
			switch {
			case globalRandFuncs[name]:
				pass.Reportf(sel.Pos(),
					"%s.%s draws from the process-global source; derive the draw from det.HashKeys(seed, round, node) or a det.Stream instead", path, name)
			default:
				pass.Reportf(sel.Pos(),
					"raw %s.%s in a deterministic package; use det.NewStream(keys...) (or annotate the line //detlint:rand if this source is deliberately seeded)", path, name)
			}
			return true
		})
	}
	return nil, nil
}
