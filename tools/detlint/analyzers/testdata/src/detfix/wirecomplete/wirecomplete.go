// Package wirecomplete exercises the wirecomplete analyzer: a type with a
// complete codec surface (AppendTo + WireSize + DecodeFrame), one missing
// both halves, one missing only its decoder, and the embedded-type
// negative (promoted AppendTo does not obligate the outer type).
package wirecomplete

// Frame carries the full codec surface. No finding.
type Frame struct {
	Src, Dst uint32
}

func (f Frame) AppendTo(b []byte) []byte { return b }
func (f Frame) WireSize() int            { return 8 }

// DecodeFrame decodes a Frame from b.
func DecodeFrame(b []byte) (Frame, int, error) { return Frame{}, 0, nil }

// Report declares only the encoder half: a one-way encoder whose bytes
// nothing can check or replay.
type Report struct { // want `declares AppendTo but not WireSize` `no func DecodeReport`
	N int
}

func (r Report) AppendTo(b []byte) []byte { return b }

// Ping sizes itself but has no decoder.
type Ping struct { // want `no func DecodePing`
	T uint64
}

func (p Ping) AppendTo(b []byte) []byte { return b }
func (p Ping) WireSize() int            { return 8 }

// Envelope embeds Frame; the promoted AppendTo is Frame's obligation, not
// Envelope's. No finding.
type Envelope struct {
	Frame
	Hops int
}
