// Package wirecomplete exercises the wirecomplete analyzer: a type with a
// complete codec surface (AppendTo + WireSize + DecodeFrame), one missing
// both halves, one missing only its decoder, and the embedded-type
// negative (promoted AppendTo does not obligate the outer type).
package wirecomplete

// Frame carries the full codec surface. No finding.
type Frame struct {
	Src, Dst uint32
}

func (f Frame) AppendTo(b []byte) []byte { return b }
func (f Frame) WireSize() int            { return 8 }

// DecodeFrame decodes a Frame from b.
func DecodeFrame(b []byte) (Frame, int, error) { return Frame{}, 0, nil }

// Report declares only the encoder half: a one-way encoder whose bytes
// nothing can check or replay.
type Report struct { // want `declares AppendTo but not WireSize` `no func DecodeReport`
	N int
}

func (r Report) AppendTo(b []byte) []byte { return b }

// Ping sizes itself but has no decoder.
type Ping struct { // want `no func DecodePing`
	T uint64
}

func (p Ping) AppendTo(b []byte) []byte { return b }
func (p Ping) WireSize() int            { return 8 }

// Envelope embeds Frame; the promoted AppendTo is Frame's obligation, not
// Envelope's. No finding.
type Envelope struct {
	Frame
	Hops int
}

// --- snapshot-shaped fixtures: the checkpoint plane's codec types ---

// WorldSnapshot carries the full trio with the nested-snapshot decoder
// shape: Decode<Type> takes a shared decoder and returns (T, error)
// instead of (T, int, error). The analyzer only requires that the results
// include the type. No finding.
type WorldSnapshot struct {
	Round uint64
}

func (s WorldSnapshot) AppendTo(b []byte) []byte { return b }
func (s WorldSnapshot) WireSize() int            { return 8 }

// DecodeWorldSnapshot decodes one snapshot from a shared decoder.
func DecodeWorldSnapshot(d *int) (WorldSnapshot, error) { return WorldSnapshot{}, nil }

// MoverSnapshot is an opaque-blob snapshot that grew an encoder without
// the rest of the surface: nothing can size it exactly or replay it.
type MoverSnapshot struct { // want `declares AppendTo but not WireSize` `no func DecodeMoverSnapshot`
	X, Y float64
}

func (s MoverSnapshot) AppendTo(b []byte) []byte { return b }

// HaloSnapshot's trio uses pointer receivers and a pointer-returning
// decoder; both satisfy the surface. No finding.
type HaloSnapshot struct {
	K int
}

func (s *HaloSnapshot) AppendTo(b []byte) []byte { return b }
func (s *HaloSnapshot) WireSize() int            { return 0 }

// DecodeHaloSnapshot returns the type by pointer.
func DecodeHaloSnapshot(b []byte) (*HaloSnapshot, error) { return nil, nil }

// PlaneSnapshot is decode-only: a reader for a format some other plane
// owns carries no encoder obligation. No finding.
type PlaneSnapshot struct {
	N int
}

// DecodePlaneSnapshot reads a foreign encoding.
func DecodePlaneSnapshot(b []byte) (PlaneSnapshot, error) { return PlaneSnapshot{}, nil }
