// Package maporder exercises the maporder analyzer: every sink class
// (append, send, return, order-sensitive accumulation, emitting call), the
// collect-then-sort suppression, and the //detlint:sorted annotation. The
// accumulation case mirrors the real bug in internal/harness's Select,
// which built an error message by concatenating map keys in iteration
// order until PR 6 collected and sorted them.
package maporder

import (
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `a slice built by append`
	}
	return out
}

// keysSorted is the canonical fix: collect, then sort before the slice is
// observable. No finding.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `emitting call`
	}
}

func anyKey(m map[string]int) string {
	for k := range m {
		return k // want `return value`
	}
	return ""
}

// errorMessage is the Select bug shape: iteration order decides the
// message text.
func errorMessage(unknown map[string]bool) string {
	msg := "unknown: "
	for tok := range unknown {
		msg += tok + "," // want `order-sensitive accumulation`
	}
	return msg
}

// sum is an exact commutative reduction — integer addition order cannot
// change the result. No finding.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func feed(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send`
	}
}

// drain observes only the trip count (`for range m` binds no iteration
// variable), which is deterministic. No finding.
func drain(m map[string]struct{}, ch chan<- int) {
	for range m {
		ch <- 1
	}
}

// probeOrder sends every key to a consumer that treats them as a set; the
// annotation records why order provably cannot matter.
func probeOrder(m map[string]int, ch chan<- string) {
	//detlint:sorted consumer deduplicates into a set
	for k := range m {
		ch <- k
	}
}

// shardMergeUnsorted models the bug the region-sharded engine must avoid:
// folding per-shard result maps into one output in map iteration order
// makes the merged stream depend on the shard count and hash layout.
func shardMergeUnsorted(shards []map[int64]string, out chan<- string) {
	for _, m := range shards {
		for _, v := range m {
			out <- v // want `channel send`
		}
	}
}

// shardMergeSorted is the deterministic merge the sharded engine's
// contract requires: collect every (cell, value) pair, order by cell key,
// then emit — the result is identical for any shard partition. No finding.
func shardMergeSorted(shards []map[int64]string, out chan<- string) {
	var cells []int64
	byCell := map[int64]string{}
	for _, m := range shards {
		for cell, v := range m {
			cells = append(cells, cell)
			byCell[cell] = v
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	for _, cell := range cells {
		out <- byCell[cell]
	}
}

// poolTask models the persistent-worker handoff: a long-lived helper
// goroutine reads work from a channel. The task channel itself is fine;
// what matters is what feeds it.
type poolTask struct {
	id  int64
	job string
}

// feedPoolFromMap is the persistent-worker idiom the runtime must never
// adopt: a work queue fed by ranging a map hands tasks to the long-lived
// workers in hash order, so which worker gets which task — and therefore
// any order-sensitive downstream effect — varies run to run.
func feedPoolFromMap(pending map[int64]string, queue chan<- poolTask) {
	for id, job := range pending {
		queue <- poolTask{id: id, job: job} // want `channel send`
	}
}

// feedPoolSorted is the worker runtime's actual shape: the work list is
// an ID-sorted slice (the engine's alive list is NodeID-ordered by
// construction), so the stream of tasks into the parked workers is a pure
// function of the state, not of map layout. No finding.
func feedPoolSorted(pending map[int64]string, queue chan<- poolTask) {
	var ids []int64
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		queue <- poolTask{id: id, job: pending[id]}
	}
}

// mergeWorkerResults is the other half of the idiom: per-worker result
// maps folded back together must merge by sorted key (the NodeID-order
// merge), never by iteration order. The unsorted fold is flagged through
// the append sink even though the append target is a struct slice.
func mergeWorkerResults(perWorker []map[int64]string) []poolTask {
	var merged []poolTask
	for _, res := range perWorker {
		for id, job := range res {
			merged = append(merged, poolTask{id: id, job: job}) // want `a slice built by append`
		}
	}
	return merged
}

// mergeWorkerResultsSorted collects, sorts by task ID, then emits —
// identical output for any worker count or chunk assignment. No finding.
func mergeWorkerResultsSorted(perWorker []map[int64]string) []poolTask {
	var merged []poolTask
	for _, res := range perWorker {
		for id, job := range res {
			merged = append(merged, poolTask{id: id, job: job})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].id < merged[j].id })
	return merged
}
