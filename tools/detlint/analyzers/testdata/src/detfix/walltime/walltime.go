// Package walltime exercises the walltime analyzer: wall-clock reads in a
// deterministic package, the Duration-arithmetic negative space, and the
// function-level annotation. The annotated case mirrors the real
// timeDeliver helper in internal/experiments/e10_scaling.go, which samples
// the clock on purpose for Measured columns.
package walltime

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

func throttle() {
	time.Sleep(time.Millisecond) // want `reads the wall clock`
}

func tick(rounds int) <-chan time.Time {
	return time.Tick(time.Duration(rounds) * time.Second) // want `reads the wall clock`
}

// budget is pure Duration arithmetic — no clock read, no finding.
func budget(rounds int) time.Duration {
	return time.Duration(rounds) * 250 * time.Microsecond
}

// measure samples the wall clock deliberately: its output is a Measured
// cost column, not part of the deterministic result.
//
//detlint:walltime cost columns are Measured, not part of the result
func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
