// Package seedflow exercises the seedflow analyzer: ambient sources (wall
// clock, pid, channel receives) flowing into seed-named sinks, weak
// math/rand seeding, and the negative space — deterministic config-derived
// seeds must stay silent (the analyzer's first sweep over the real tree
// flagged exactly those, so this package pins the fix).
package seedflow

import (
	"math/rand"
	"os"
	"time"
)

// Config mirrors radio.Config's shape.
type Config struct {
	Seed int64
	N    int
}

func fromClock() Config {
	return Config{Seed: time.Now().UnixNano()} // want `ambient source \(time\.Now\)`
}

func fromPid(c *Config) {
	c.Seed = int64(os.Getpid()) // want `ambient source \(os\.Getpid\)`
}

func fromChannel(ch chan int64) Config {
	return Config{Seed: <-ch} // want `ambient source \(a channel receive\)`
}

// weakSource seeds math/rand from a parameter with no seed lineage; the
// strict rule demands constants, seed-named values or hash primitives.
func weakSource(now int64) *rand.Rand {
	return rand.New(rand.NewSource(now)) // want `not derived from a seed`
}

// seededSource derives its stdlib seed from a real seed and constants. No
// finding.
func seededSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x9e3779b9))
}

// hashKeys stands in for det.HashKeys: blessed by name.
func hashKeys(keys ...int64) int64 { return int64(len(keys)) }

// hashedSource routes node identity through a hash primitive — the
// canonical derivation. No finding.
func hashedSource(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(hashKeys(seed, int64(id))))
}

// derived builds a per-cell seed from config — deterministic, silent.
// This is the exact shape the first sweep false-positived on.
func derived(c Config, cell int) Config {
	return Config{Seed: c.Seed + int64(cell)*1000003, N: c.N}
}

// throwaway is a deliberate wall-clock seed in scratch code; the
// annotation records the decision.
func throwaway() Config {
	return Config{Seed: time.Now().UnixNano()} //detlint:rand throwaway bench config, never replayed
}

// shardSeed derives a per-shard medium seed from the deployment seed and
// the shard index through the hash primitive — the region-sharded
// engine's idiom (every shard medium may also just share the deployment
// seed verbatim; both lineages are clean). No finding.
func shardSeed(seed int64, shard int) Config {
	return Config{Seed: hashKeys(seed, int64(shard))}
}

// shardSeedFromClock breaks the shard determinism contract at its root:
// shards seeded off the wall clock can never replay, let alone agree with
// a differently-sharded run.
func shardSeedFromClock(shard int) Config {
	return Config{Seed: time.Now().UnixNano() + int64(shard)} // want `ambient source \(time\.Now\)`
}
