// Package globalrand exercises the globalrand analyzer: math/rand use in a
// deterministic package, the annotation escape hatch, and the distinction
// between global-source draws and raw sources. The positive cases mirror
// the real violations detlint found in internal/sim/engine.go and
// internal/radio/radio.go before PR 6 migrated them to internal/det.
package globalrand

import "math/rand"

// shuffle draws from the process-global source — nondeterministic under
// parallel shards and unkeyed by (seed, round, node).
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `process-global source`
}

func draw() float64 {
	return rand.Float64() // want `process-global source`
}

// perNode is the pre-PR-6 engine idiom: a seeded sequential source per
// node. Deterministic in isolation, but it duplicates det.Stream and its
// sequence drifts from the hash plane.
func perNode(seed int64, id int) *rand.Rand {
	src := rand.NewSource(seed + int64(id)) // want `raw math/rand\.NewSource`
	return rand.New(src)                    // want `raw math/rand\.New`
}

// legacy deliberately keeps a stdlib source for cross-checking against an
// external implementation; the annotation documents and exempts it.
func legacy(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //detlint:rand cross-check against reference impl
}

// localMax shadows nothing and touches no randomness: negative case.
func localMax(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
