package analyzers

import (
	"go/types"

	"vinfra/tools/detlint/internal/analysis"
)

// WireComplete keeps the canonical wire-codec surface closed: any type
// that declares the encoder half (AppendTo) must declare the exact-size
// half (WireSize) and have a matching package-level Decode<Type> function
// whose results include the type. The internal/wire plane's guarantees —
// exact wire accounting, fuzzable decode paths, snapshot round-trips —
// only hold for types where all three exist; a type with AppendTo alone is
// a one-way encoder whose bytes nothing can check or replay.
var WireComplete = &analysis.Analyzer{
	Name: "wirecomplete",
	Doc:  "types declaring AppendTo must declare WireSize and have a package-level Decode<Type> returning the type",
	Run:  runWireComplete,
}

func runWireComplete(pass *analysis.Pass) (any, error) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if !declaresMethod(named, "AppendTo") {
			continue
		}
		if !declaresMethod(named, "WireSize") {
			pass.Reportf(tn.Pos(), "%s declares AppendTo but not WireSize; the wire codec surface requires exact sizing for every encoder", name)
		}
		decodeName := "Decode" + name
		if !decoderReturns(scope.Lookup(decodeName), named) {
			pass.Reportf(tn.Pos(), "%s declares AppendTo but the package has no func %s returning %s; every canonical encoding needs its decoder", name, decodeName, name)
		}
	}
	return nil, nil
}

// declaresMethod reports whether named itself declares a method (explicit
// declaration, value or pointer receiver; promoted methods from embedded
// types do not count — the embedded type owns its own codec obligations).
func declaresMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// decoderReturns reports whether obj is a function whose results include
// the named type (by value or pointer).
func decoderReturns(obj types.Object, named *types.Named) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if types.Identical(t, named) {
			return true
		}
	}
	return false
}
