package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"vinfra/tools/detlint/internal/analysis"
)

// SeedFlow is a conservative taint pass over seed values. A seed decides
// an entire run; if one flows in from the wall clock, the pid, or another
// ambient source, every downstream hash draw is poisoned while globalrand
// and walltime see nothing wrong at the draw sites. Two sink classes, with
// different strictness:
//
//   - math/rand source constructors (rand.NewSource, rand.New(...),
//     rand.Seed, rand.NewPCG): the seed argument must be built entirely
//     from constants, seed-named values (seed, Seed, rngSeed, c.Seed, ...)
//     and hash-primitive calls (det.HashKeys, det.NewStream, Cell.Base,
//     mix...), combined by arithmetic and conversions. These sites already
//     needed a //detlint:rand annotation to get past globalrand; seedflow
//     checks that the annotation didn't bless a weak seed.
//
//   - assignments into seed-named fields and variables
//     (radio.Config{Seed: ...}, cfg.Seed = ..., e.seed = ...): flagged
//     only when the expression demonstrably taps an ambient source — a
//     call into time, os, math/rand or crypto/rand, or a channel receive.
//     Deterministic derivations from grid parameters, cell indices and
//     other config stay silent.
//
// det.HashKeys/det.NewStream arguments are never checked: their keys are
// meant to be ids, rounds and cells.
var SeedFlow = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "seed values must not flow from ambient sources; math/rand seeds must derive from hash primitives or other seeds",
	Run:  runSeedFlow,
}

// isBlessedSeedCall accepts a call as a seed derivation by callee name.
func isBlessedSeedCall(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"hash", "seed", "mix", "base", "stream", "key"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// ambientPaths are package paths whose calls make a seed irreproducible.
var ambientPaths = map[string]bool{
	"time": true, "os": true, "math/rand": true, "math/rand/v2": true,
	"crypto/rand": true,
}

func runSeedFlow(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && nameHasSeed(key.Name) {
						checkAmbient(pass, kv.Value, fmt.Sprintf("field %s", key.Name))
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if obj := exprObject(pass, lhs); obj != nil && nameHasSeed(obj.Name()) {
						checkAmbient(pass, n.Rhs[i], fmt.Sprintf("value assigned to %s", obj.Name()))
					}
				}
			case *ast.CallExpr:
				if path, name, ok := pkgFunc(pass, n.Fun); ok && isRandPath(path) {
					switch name {
					case "NewSource", "Seed", "NewPCG":
						for _, arg := range n.Args {
							checkStrict(pass, arg, fmt.Sprintf("%s.%s argument", path, name))
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkAmbient flags expr when it taps an ambient source.
func checkAmbient(pass *analysis.Pass, expr ast.Expr, what string) {
	if pass.Exempt(expr.Pos(), "rand") {
		return
	}
	var badPos token.Pos
	var badWhat string
	ast.Inspect(expr, func(n ast.Node) bool {
		if badPos.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, name, ok := pkgFunc(pass, n.Fun); ok && ambientPaths[path] {
				badPos, badWhat = n.Pos(), path+"."+name
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				badPos, badWhat = n.Pos(), "a channel receive"
			}
		}
		return !badPos.IsValid()
	})
	if badPos.IsValid() {
		pass.Reportf(expr.Pos(),
			"%s flows from an ambient source (%s); a seed must be reproducible — derive it from config, flags or det.HashKeys", what, badWhat)
	}
}

// checkStrict flags expr unless every leaf is constant, seed-named, or a
// hash-primitive call.
func checkStrict(pass *analysis.Pass, expr ast.Expr, what string) {
	if pass.Exempt(expr.Pos(), "rand") {
		return
	}
	if bad := unblessedLeaf(pass, expr); bad != nil {
		pass.Reportf(expr.Pos(),
			"%s is not derived from a seed: %s is neither constant, seed-named, nor a hash-primitive call (det.HashKeys/det.NewStream)", what, exprString(bad))
	}
}

// unblessedLeaf returns the first sub-expression that disqualifies expr as
// a seed derivation, or nil if every leaf is blessed.
func unblessedLeaf(pass *analysis.Pass, expr ast.Expr) ast.Expr {
	expr = ast.Unparen(expr)
	// Constants (literals, named constants, constant arithmetic) are
	// reproducible by definition.
	if tv, ok := pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		return nil
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if nameHasSeed(e.Name) {
			return nil
		}
		return e
	case *ast.SelectorExpr:
		if nameHasSeed(e.Sel.Name) {
			return nil
		}
		return e
	case *ast.IndexExpr:
		return unblessedLeaf(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return e
		}
		return unblessedLeaf(pass, e.X)
	case *ast.StarExpr:
		return unblessedLeaf(pass, e.X)
	case *ast.BinaryExpr:
		if bad := unblessedLeaf(pass, e.X); bad != nil {
			return bad
		}
		return unblessedLeaf(pass, e.Y)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if bad := unblessedLeaf(pass, elt.(ast.Expr)); bad != nil {
				return bad
			}
		}
		return nil
	case *ast.CallExpr:
		if isConversion(pass, e) {
			for _, arg := range e.Args {
				if bad := unblessedLeaf(pass, arg); bad != nil {
					return bad
				}
			}
			return nil
		}
		if isBlessedSeedCall(calleeName(e)) {
			// The arguments of a hash-primitive call are keys, not seeds;
			// they are free to be ids, rounds and cells.
			return nil
		}
		return e
	}
	return expr
}

// exprString renders a short description of expr for diagnostics.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	}
	return fmt.Sprintf("%T", e)
}
