package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vinfra/tools/detlint/internal/analysis"
)

// MapOrder flags `range` over a map whose body lets the iteration order
// reach ordered output — the bug class PR 2 fixed by hand in E9a, caught
// statically. A range body is order-sensitive when, using the iteration
// variables, it
//
//   - appends to a slice declared outside the loop,
//   - sends on a channel,
//   - returns from the enclosing function,
//   - concatenates onto an outer string (or accumulates an outer float,
//     where addition order changes rounding), or
//   - calls an emitting function (fmt printers, Write*/Append*/Encode*
//     sinks — the wire-codec surface).
//
// Two escape hatches: collecting keys/values into a slice that the same
// function later sorts (the canonical fix — sort.X/slices.SortX on the
// collected slice suppresses the finding), and a //detlint:sorted
// annotation for sites that are order-insensitive for deeper reasons.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map iteration whose order reaches ordered output (append/send/return/emit), unless sorted afterwards or annotated //detlint:sorted",
	Run:  runMapOrder,
}

// emitCallNames match callee names that emit ordered output.
func isEmitName(name string) bool {
	switch {
	case strings.HasPrefix(name, "Print"), strings.HasPrefix(name, "Fprint"),
		strings.HasPrefix(name, "Sprint"), strings.HasPrefix(name, "Write"),
		strings.HasPrefix(name, "Append"), strings.HasPrefix(name, "Encode"):
		return true
	}
	return false
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Walk function by function so the sorted-afterwards suppression
		// can see the whole enclosing function body.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkMapRanges(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

func checkMapRanges(pass *analysis.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Exempt(rs.Pos(), "sorted") {
			return true
		}
		iter := iterObjects(pass, rs)
		if len(iter) == 0 {
			// `for range m` — only the trip count is observable, and that
			// is deterministic.
			return true
		}
		for _, s := range findOrderSinks(pass, rs, iter, fnBody) {
			pass.Reportf(s.pos, "map iteration order reaches %s; sort the keys first (or annotate //detlint:sorted if order provably cannot matter)", s.what)
		}
		return true
	})
}

type orderSink struct {
	pos  token.Pos
	what string
}

// iterObjects collects the objects bound to the range statement's key and
// value variables.
func iterObjects(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	add := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			objs[obj] = true // `for k = range m` assigning an outer var
		}
	}
	if rs.Key != nil {
		add(rs.Key)
	}
	if rs.Value != nil {
		add(rs.Value)
	}
	return objs
}

// findOrderSinks walks the range body for statements that let the
// iteration variables escape in an ordered form.
func findOrderSinks(pass *analysis.Pass, rs *ast.RangeStmt, iter map[types.Object]bool, fnBody *ast.BlockStmt) []orderSink {
	var sinks []orderSink
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && calleeName(call) == "append" &&
					isBuiltinAppend(pass, call) && len(call.Args) > 0 {
					if !usesAny(pass, call, iter) {
						continue
					}
					if obj := exprObject(pass, call.Args[0]); obj != nil &&
						declaredOutside(obj, rs) && !sortedLater(pass, obj, rs, fnBody) {
						sinks = append(sinks, orderSink{st.Pos(), "a slice built by append"})
					}
				}
			}
			// Accumulation onto an outer string/float: order changes the
			// result (concatenation order; floating-point rounding).
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 {
				if obj := exprObject(pass, st.Lhs[0]); obj != nil && declaredOutside(obj, rs) &&
					usesAny(pass, st.Rhs[0], iter) && orderSensitiveAccum(obj) {
					sinks = append(sinks, orderSink{st.Pos(), "an order-sensitive accumulation (string concat / float sum)"})
				}
			}
		case *ast.SendStmt:
			if usesAny(pass, st.Value, iter) {
				sinks = append(sinks, orderSink{st.Pos(), "a channel send"})
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if usesAny(pass, res, iter) {
					sinks = append(sinks, orderSink{st.Pos(), "a return value (which key wins depends on iteration order)"})
					break
				}
			}
		case *ast.CallExpr:
			name := calleeName(st)
			if name == "append" || !isEmitName(name) {
				return true
			}
			for _, arg := range st.Args {
				if usesAny(pass, arg, iter) {
					sinks = append(sinks, orderSink{st.Pos(), "an emitting call (" + name + ")"})
					break
				}
			}
		}
		return true
	})
	return sinks
}

// isBuiltinAppend distinguishes the append builtin from a method or
// function that happens to be named append.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// exprObject resolves the variable object a simple lvalue refers to.
func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside the range
// statement (so values accumulated into it survive the loop).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// orderSensitiveAccum reports whether += onto obj is order-sensitive:
// string concatenation always, float accumulation through rounding.
// Integer sums commute exactly and stay deterministic.
func orderSensitiveAccum(obj types.Object) bool {
	b, ok := obj.Type().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsString != 0 || b.Info()&types.IsFloat != 0
}

// sortedLater reports whether the enclosing function sorts the collected
// slice after the range loop — the canonical collect-then-sort fix.
func sortedLater(pass *analysis.Pass, slice types.Object, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		path, name, ok := pkgFunc(pass, call.Fun)
		if !ok {
			return true
		}
		isSort := (path == "sort" || path == "slices") &&
			(strings.HasPrefix(name, "Sort") || name == "Strings" || name == "Ints" || name == "Float64s" || name == "Slice" || name == "SliceStable")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if exprObject(pass, arg) == slice {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
