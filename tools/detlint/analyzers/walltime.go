package analyzers

import (
	"go/ast"

	"vinfra/tools/detlint/internal/analysis"
)

// wallTimeFuncs are the time-package members that read or depend on the
// wall clock (or the process timer). time.Duration arithmetic and
// constants are fine; these are not.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// WallTime flags wall-clock reads in deterministic packages. Simulated
// time is the round counter; a wall-clock value that reaches a result
// makes the run irreproducible. Legitimate measurement sites (the harness
// timing plane, experiment cost columns marked Measured) either live in an
// allowlisted package (internal/harness — the driver never runs this
// analyzer there) or carry a //detlint:walltime annotation.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/Since/Sleep/... in deterministic packages; simulated time is the round counter",
	Run:  runWallTime,
}

func runWallTime(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass, sel)
			if !ok || path != "time" || !wallTimeFuncs[name] {
				return true
			}
			if pass.Exempt(sel.Pos(), "walltime") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in a deterministic package; use the round counter, or annotate //detlint:walltime for a deliberate measurement", name)
			return true
		})
	}
	return nil, nil
}
