// Package analyzers holds detlint's determinism-contract analyzers.
//
// The contract they enforce (see the repository doc.go): every guarantee
// the reproduction makes — byte-identical runs per seed, sequential ≡
// parallel, reproducible availability/latency tables — rests on three
// conventions that reviewers used to police by hand:
//
//  1. all randomness is a pure hash of explicit keys (seed, round,
//     node/cell), derived through internal/det (globalrand, seedflow);
//  2. no wall-clock value reaches deterministic code (walltime);
//  3. no map-iteration order reaches ordered output (maporder);
//
// plus one API invariant: the canonical wire codec surface stays closed —
// a type that can encode itself can also size and decode itself
// (wirecomplete).
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"vinfra/tools/detlint/internal/analysis"
)

// All returns every detlint analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		GlobalRand,
		WallTime,
		MapOrder,
		WireComplete,
		SeedFlow,
	}
}

// pkgFunc resolves expr as a selector of a package-level name (pkg.Name)
// and returns the imported package path and member name.
func pkgFunc(pass *analysis.Pass, expr ast.Expr) (path, name string, ok bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleeName returns the bare name of a call's callee: the function or
// method name without package or receiver qualification.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// isConversion reports whether call is a type conversion.
func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *analysis.Pass, expr ast.Node, objs map[types.Object]bool) bool {
	if expr == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRandPath reports whether path is a math/rand flavor.
func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// nameHasSeed reports whether a name refers to seed state by convention
// ("seed", "Seed", "rngSeed", "seeds", ...).
func nameHasSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}
