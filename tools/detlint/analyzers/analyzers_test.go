package analyzers_test

import (
	"testing"

	"vinfra/tools/detlint/analyzers"
	"vinfra/tools/detlint/internal/analysistest"
)

// The fixture module under testdata/src/detfix holds one package per
// analyzer, each with positive cases (carrying `// want` expectations) and
// negative cases (silent). Several positives are extracted from the real
// violations detlint found on the pre-PR-6 tree: the per-node
// rand.NewSource in internal/sim, the timeDeliver wall-clock sample in
// internal/experiments, and the map-ordered error message in
// internal/harness's Select.

const fixtures = "testdata/src/detfix"

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, fixtures, analyzers.GlobalRand, "./globalrand")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, fixtures, analyzers.WallTime, "./walltime")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, fixtures, analyzers.MapOrder, "./maporder")
}

func TestWireComplete(t *testing.T) {
	analysistest.Run(t, fixtures, analyzers.WireComplete, "./wirecomplete")
}

func TestSeedFlow(t *testing.T) {
	analysistest.Run(t, fixtures, analyzers.SeedFlow, "./seedflow")
}
