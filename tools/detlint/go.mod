module vinfra/tools/detlint

go 1.22
