// Command detlint statically enforces vinfra's determinism contract: all
// randomness is a pure hash of (seed, round, node/cell) through
// internal/det, no wall-clock value reaches deterministic code, no
// map-iteration order reaches ordered output, and the canonical wire-codec
// surface stays closed. See the analyzers package for the five rules
// (globalrand, walltime, maporder, wirecomplete, seedflow) and the
// //detlint:<rule> annotation grammar in internal/analysis.
//
// Two modes:
//
//	detlint [packages]      standalone: loads packages via `go list` from
//	                        the current directory (default pattern ./...)
//	                        and prints findings; exit 1 if any.
//	go vet -vettool=$(...)  unitchecker: invoked by the go command with a
//	                        *.cfg file per package; speaks cmd/go's vet
//	                        tool protocol (-V=full handshake, vetx output,
//	                        exit 2 on findings).
//
// detlint is intentionally repository-specific: the package policy below
// hardcodes which vinfra packages are deterministic. The analyzers
// themselves are generic.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"vinfra/tools/detlint/analyzers"
	"vinfra/tools/detlint/internal/analysis"
	"vinfra/tools/detlint/internal/load"
)

const version = "v1.0.0"

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet tool-ID handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet flag probe)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [packages]\n       go vet -vettool=detlint ./...\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *vFlag != "" {
		// cmd/go's toolID handshake: `<name> version <version>` with a
		// non-"devel" version is accepted for a -vettool.
		fmt.Printf("detlint version %s\n", version)
		return
	}
	if *flagsFlag {
		// cmd/go probes the vettool's analyzer flags as JSON before the
		// first package run. detlint exposes none.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// analyzersFor is the package policy: which analyzers run on which vinfra
// packages. Test files never reach the analyzers (the drivers filter them),
// so this decides non-test code only.
func analyzersFor(importPath string) []*analysis.Analyzer {
	if importPath != "vinfra" && !strings.HasPrefix(importPath, "vinfra/") {
		return nil // not this repository's module (e.g. detlint itself)
	}
	if strings.HasSuffix(importPath, ".test") {
		return nil // synthesized test-main packages
	}
	// maporder and wirecomplete hold everywhere: ordered output and the
	// codec surface matter in cmd/ and examples/ too.
	list := []*analysis.Analyzer{analyzers.MapOrder, analyzers.WireComplete}
	deterministic := importPath == "vinfra" || strings.HasPrefix(importPath, "vinfra/internal/")
	if deterministic {
		list = append(list, analyzers.GlobalRand, analyzers.SeedFlow)
		// internal/harness owns the timing plane (wall-clock sampling of
		// cells is its job) and internal/service is wall-clock service
		// code (stepping rates, graceful shutdown); every other
		// deterministic package must not read the clock.
		if importPath != "vinfra/internal/harness" && importPath != "vinfra/internal/service" {
			list = append(list, analyzers.WallTime)
		}
	}
	return list
}

// finding is one rendered diagnostic.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.pos, f.analyzer, f.message)
}

// runPackage applies the policy's analyzers to one loaded package.
func runPackage(pkg *load.Package, fset *token.FileSet) []finding {
	as := analyzersFor(pkg.ImportPath)
	if len(as) == 0 {
		return nil
	}
	annot := analysis.ParseAnnotations(fset, pkg.Syntax)
	var out []finding
	// A typo'd annotation silently exempts nothing; surface it.
	for _, d := range annot.Bad {
		out = append(out, finding{fset.Position(d.Pos), "annotation", d.Message})
	}
	for _, a := range as {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Annot:     annot,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, finding{fset.Position(d.Pos), name, d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			out = append(out, finding{fset.Position(token.NoPos), name, "analyzer error: " + err.Error()})
		}
	}
	return out
}

func standalone(patterns []string) int {
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	// go list's GoFiles never include test files, so no filtering is
	// needed here (unlike vet mode, where cfg.GoFiles may).
	var all []finding
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, pkg.Fset)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range all {
		fmt.Println(f)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}
