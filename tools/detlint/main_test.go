package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vinfra/tools/detlint/internal/load"
)

// TestRepoIsClean is the gate the CI lint job enforces: the vinfra tree
// must carry zero detlint findings. A finding here means either new code
// broke the determinism contract or an analyzer grew a false positive —
// both block.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole parent module")
	}
	pkgs, err := load.Packages("../..", "./...")
	if err != nil {
		t.Fatalf("loading vinfra: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from ../..")
	}
	for _, pkg := range pkgs {
		for _, f := range runPackage(pkg, pkg.Fset) {
			t.Errorf("%s", f)
		}
	}
}

// buildDetlint compiles this command into dir and returns the binary path.
func buildDetlint(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "detlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	return bin
}

// TestVetHandshake pins the -V=full tool-ID handshake cmd/go requires of a
// -vettool: `<name> version <version>` with a non-"devel" version.
func TestVetHandshake(t *testing.T) {
	bin := buildDetlint(t, t.TempDir())
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("detlint -V=full: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) != 3 || fields[1] != "version" || fields[2] == "devel" {
		t.Fatalf("handshake output %q; want `detlint version <non-devel>`", out)
	}
}

// TestVetToolProtocol drives the real go command against a scratch module
// named vinfra (so the package policy applies) containing one walltime
// violation, and checks that `go vet -vettool=detlint` fails with the
// finding — the full unitchecker protocol end to end: cfg parsing, vetx
// output, export-data importing, exit status.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module with the go command")
	}
	bin := buildDetlint(t, t.TempDir())

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vinfra\n\ngo 1.22\n")
	write("internal/p/p.go", `package p

import "time"

// Stamp leaks the wall clock into a deterministic package.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("internal/q/q.go", `package q

// Round is clean: no finding, vet must pass this package.
func Round(r int) int { return r + 1 }
`)

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed a walltime violation; output:\n%s", out)
	}
	if !strings.Contains(string(out), "wall clock") {
		t.Fatalf("go vet failed without the walltime finding:\n%s", out)
	}

	// Fix the violation; vet must now pass (and the clean package must not
	// have produced spurious findings either way).
	write("internal/p/p.go", `package p

// Stamp now derives from the round counter.
func Stamp(round int64) int64 { return round * 1000 }
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean tree: %v\n%s", err, out)
	}
}

// TestPolicy pins which analyzers the driver applies where.
func TestPolicy(t *testing.T) {
	names := func(importPath string) string {
		var ns []string
		for _, a := range analyzersFor(importPath) {
			ns = append(ns, a.Name)
		}
		return strings.Join(ns, ",")
	}
	cases := []struct {
		importPath string
		want       string
	}{
		{"vinfra/internal/sim", "maporder,wirecomplete,globalrand,seedflow,walltime"},
		// The region-sharded engine's packages inherit the full
		// deterministic policy: the shard merge order and per-shard medium
		// seeds are exactly what maporder and seedflow exist to protect.
		{"vinfra/internal/shard", "maporder,wirecomplete,globalrand,seedflow,walltime"},
		{"vinfra/internal/experiments", "maporder,wirecomplete,globalrand,seedflow,walltime"},
		{"vinfra/internal/harness", "maporder,wirecomplete,globalrand,seedflow"},
		// The deployment-spec package is pure configuration and joins the
		// full deterministic policy; the HTTP service is wall-clock service
		// code (stepping rates, shutdown timeouts) but still must not leak
		// map order or unseeded randomness into responses.
		{"vinfra/internal/spec", "maporder,wirecomplete,globalrand,seedflow,walltime"},
		{"vinfra/internal/service", "maporder,wirecomplete,globalrand,seedflow"},
		{"vinfra", "maporder,wirecomplete,globalrand,seedflow,walltime"},
		{"vinfra/cmd/chabench", "maporder,wirecomplete"},
		{"vinfra/cmd/visimd", "maporder,wirecomplete"},
		{"vinfra/examples/routing", "maporder,wirecomplete"},
		{"vinfra/internal/sim.test", ""},
		{"fmt", ""},
		{"github.com/other/mod", ""},
	}
	for _, c := range cases {
		if got := names(c.importPath); got != c.want {
			t.Errorf("analyzersFor(%q) = %q, want %q", c.importPath, got, c.want)
		}
	}
}

// TestServicePolicyFixtures drives the driver over a scratch vinfra module
// shaped like the visimd stack — one positive and one negative fixture per
// policy row added for the service:
//
//   - internal/service may read the wall clock (stepping rates are its
//     job) but must still emit map contents in sorted order;
//   - internal/spec is pure configuration and gets the full deterministic
//     policy, wall clock included;
//   - cmd/visimd is command code: map order still matters, the clock is
//     free.
func TestServicePolicyFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a scratch module with the go command")
	}
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vinfra\n\ngo 1.22\n")
	write("internal/service/svc.go", `package service

import (
	"fmt"
	"time"
)

// Rate reads the wall clock: allowed in the service package.
func Rate(stepped int, since time.Time) float64 {
	return float64(stepped) / time.Since(since).Seconds()
}

// Dump leaks map iteration order into output: still a finding here.
func Dump(sims map[string]int) {
	for name, vr := range sims {
		fmt.Printf("%s=%d\n", name, vr)
	}
}
`)
	write("internal/spec/spec.go", `package spec

import "time"

// Stamp reads the wall clock inside the spec package: a finding.
func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("cmd/visimd/main.go", `package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now()) // command code: the clock is free
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // ... but map order still is not
	}
}
`)

	pkgs, err := load.Packages(mod, "./...")
	if err != nil {
		t.Fatalf("loading scratch module: %v", err)
	}
	found := map[string][]string{}
	for _, pkg := range pkgs {
		for _, f := range runPackage(pkg, pkg.Fset) {
			found[pkg.ImportPath] = append(found[pkg.ImportPath], f.analyzer)
		}
	}
	has := func(path, analyzer string) bool {
		for _, a := range found[path] {
			if a == analyzer {
				return true
			}
		}
		return false
	}
	if has("vinfra/internal/service", "walltime") {
		t.Errorf("walltime fired in internal/service (it is exempt): %v", found["vinfra/internal/service"])
	}
	if !has("vinfra/internal/service", "maporder") {
		t.Errorf("maporder did not fire in internal/service: %v", found["vinfra/internal/service"])
	}
	if !has("vinfra/internal/spec", "walltime") {
		t.Errorf("walltime did not fire in internal/spec: %v", found["vinfra/internal/spec"])
	}
	if has("vinfra/cmd/visimd", "walltime") {
		t.Errorf("walltime fired in cmd/visimd: %v", found["vinfra/cmd/visimd"])
	}
	if !has("vinfra/cmd/visimd", "maporder") {
		t.Errorf("maporder did not fire in cmd/visimd: %v", found["vinfra/cmd/visimd"])
	}
}
