// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that detlint's analyzers use.
//
// The build environment for this repository is fully offline (no module
// proxy), so x/tools cannot be a dependency; this package keeps the same
// shape — Analyzer, Pass, Diagnostic, Reportf — restricted to what local,
// fact-free analyzers need. If x/tools ever becomes available, each
// analyzer ports by swapping this import for golang.org/x/tools/go/analysis
// and deleting the Annotations field (x/tools passes would rebuild it from
// Pass.Files).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package. Unlike x/tools, Files
// holds only the files the driver wants analyzed (test files are already
// excluded for repo runs), while the types.Info covers the whole package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Annot indexes the //detlint:<rule> annotations of Files; never nil.
	Annot *Annotations

	// Report delivers one diagnostic; set by the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// Exempt reports whether pos is covered by a //detlint:<rule> annotation.
func (p *Pass) Exempt(pos token.Pos, rule string) bool {
	return p.Annot.Exempt(p.Fset, pos, rule)
}
