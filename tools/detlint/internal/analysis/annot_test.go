package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const annotSrc = `package p

func trailing() {
	a() //detlint:sorted trailing comments exempt their own line
	b()
}

func standalone() {
	//detlint:walltime a standalone comment exempts the next line too
	c()
	d()
}

// funcwide has a doc-comment annotation covering the whole body.
//
//detlint:rand whole function exempt
func funcwide() {
	e()
	f()
}

func typo() {
	g() //detlint:sortd unknown rule must surface, not silently no-op
}

func a() {}
func b() {}
func c() {}
func d() {}
func e() {}
func f() {}
func g() {}
`

func parseAnnotSrc(t *testing.T) (*token.FileSet, *token.File, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "annot.go", annotSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, fset.File(f.Pos()), ParseAnnotations(fset, []*ast.File{f})
}

func TestAnnotationScopes(t *testing.T) {
	fset, tf, a := parseAnnotSrc(t)
	lineOf := tf.LineStart

	// Trailing comment on line 4 exempts its own line (and, by the
	// own+next rule, line 5) — for its named rule only.
	if !a.Exempt(fset, lineOf(4), "sorted") {
		t.Error("trailing annotation should exempt its own line")
	}
	if a.Exempt(fset, lineOf(4), "walltime") {
		t.Error("annotation must only exempt its named rule")
	}
	if a.Exempt(fset, lineOf(6), "sorted") {
		t.Error("trailing annotation must not reach two lines down")
	}

	// Standalone comment on line 9 exempts lines 9-10, not 11.
	if !a.Exempt(fset, lineOf(10), "walltime") {
		t.Error("standalone annotation should exempt the next line")
	}
	if a.Exempt(fset, lineOf(11), "walltime") {
		t.Error("standalone annotation must not reach two lines down")
	}

	// Doc-comment annotation covers funcwide's whole span (lines 17-20)
	// for "rand" only, and stops at the closing brace.
	if !a.Exempt(fset, lineOf(18), "rand") || !a.Exempt(fset, lineOf(19), "rand") {
		t.Error("doc-comment annotation should exempt the whole function")
	}
	if a.Exempt(fset, lineOf(18), "sorted") {
		t.Error("doc-comment annotation must only exempt its named rule")
	}
	if a.Exempt(fset, lineOf(23), "rand") {
		t.Error("doc-comment annotation must not leak past the function")
	}
}

func TestUnknownRuleSurfaces(t *testing.T) {
	_, _, a := parseAnnotSrc(t)
	if len(a.Bad) != 1 {
		t.Fatalf("want 1 bad annotation, got %d", len(a.Bad))
	}
	if !strings.Contains(a.Bad[0].Message, `"sortd"`) {
		t.Errorf("bad-annotation message should name the unknown rule: %s", a.Bad[0].Message)
	}
}
