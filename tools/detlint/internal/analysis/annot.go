package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// The annotation grammar is
//
//	//detlint:<rule>            (optionally followed by a space and a reason)
//
// with no space between // and detlint, mirroring //go: directives. An
// annotation exempts code from one named rule:
//
//   - as a trailing comment, it exempts its own source line;
//   - on a line of its own, it exempts the next source line as well;
//   - inside a function's doc comment, it exempts the whole function.
//
// Rules: "sorted" (maporder), "walltime" (walltime), "rand" (globalrand and
// seedflow).
const annotPrefix = "//detlint:"

// KnownRules is the set of valid annotation rule names.
var KnownRules = map[string]bool{
	"sorted":   true,
	"walltime": true,
	"rand":     true,
}

// Annotations indexes every //detlint:<rule> annotation of a file set.
type Annotations struct {
	// lines maps rule -> file -> exempted line set.
	lines map[string]map[string]map[int]bool
	// spans maps rule -> file -> [start, end] line ranges (function-level
	// exemptions via doc comments).
	spans map[string]map[string][][2]int
	// Bad records annotations naming unknown rules, for the driver to
	// surface as findings (a typo in an annotation must not silently
	// disable nothing).
	Bad []Diagnostic
}

// ParseAnnotations builds the annotation index for files.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{
		lines: map[string]map[string]map[int]bool{},
		spans: map[string]map[string][][2]int{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rule, ok := parseAnnot(c.Text)
				if !ok {
					continue
				}
				if !KnownRules[rule] {
					a.Bad = append(a.Bad, Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("unknown detlint annotation rule %q (want sorted, walltime or rand)", rule),
					})
					continue
				}
				pos := fset.Position(c.Pos())
				a.addLine(rule, pos.Filename, pos.Line)
				a.addLine(rule, pos.Filename, pos.Line+1)
			}
		}
		// Function-level exemptions: an annotation in a FuncDecl's doc
		// comment covers the whole function.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rule, ok := parseAnnot(c.Text)
				if !ok || !KnownRules[rule] {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				byFile := a.spans[rule]
				if byFile == nil {
					byFile = map[string][][2]int{}
					a.spans[rule] = byFile
				}
				byFile[start.Filename] = append(byFile[start.Filename], [2]int{start.Line, end.Line})
			}
		}
	}
	return a
}

func parseAnnot(text string) (rule string, ok bool) {
	if !strings.HasPrefix(text, annotPrefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, annotPrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	if rest == "" {
		return "", false
	}
	return rest, true
}

func (a *Annotations) addLine(rule, file string, line int) {
	byFile := a.lines[rule]
	if byFile == nil {
		byFile = map[string]map[int]bool{}
		a.lines[rule] = byFile
	}
	set := byFile[file]
	if set == nil {
		set = map[int]bool{}
		byFile[file] = set
	}
	set[line] = true
}

// Exempt reports whether pos is exempted from rule.
func (a *Annotations) Exempt(fset *token.FileSet, pos token.Pos, rule string) bool {
	p := fset.Position(pos)
	if byFile := a.lines[rule]; byFile != nil && byFile[p.Filename][p.Line] {
		return true
	}
	for _, span := range a.spans[rule][p.Filename] {
		if p.Line >= span[0] && p.Line <= span[1] {
			return true
		}
	}
	return false
}
