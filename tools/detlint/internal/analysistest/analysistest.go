// Package analysistest runs one analyzer over fixture packages and checks
// its diagnostics against `// want` expectations embedded in the fixtures —
// the golang.org/x/tools/go/analysis/analysistest contract, rebuilt on the
// local loader because the build environment is offline.
//
// A fixture line that should trigger the analyzer carries a trailing
// comment
//
//	// want `regexp` `regexp` ...
//
// with one regexp (backquoted or double-quoted) per expected diagnostic on
// that line. Every diagnostic must match an expectation on its line and
// every expectation must be matched, or the test fails.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vinfra/tools/detlint/internal/analysis"
	"vinfra/tools/detlint/internal/load"
)

// quoted matches one backquoted or double-quoted regexp in a want comment.
var quoted = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// Run loads the packages matching patterns from the fixture module at dir,
// applies a to each, and checks diagnostics against the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v from %s: %v", patterns, dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v in %s", patterns, dir)
	}
	for _, pkg := range pkgs {
		checkPackage(t, a, pkg)
	}
}

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	raw     string
	re      *regexp.Regexp
	matched bool
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()

	// Index the want comments by file:line.
	wants := map[string][]*expectation{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") && text != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				specs := quoted.FindAllString(strings.TrimPrefix(text, "want"), -1)
				if len(specs) == 0 {
					t.Errorf("%s: want comment with no quoted regexp: %s", key, c.Text)
					continue
				}
				for _, spec := range specs {
					pat := spec
					if strings.HasPrefix(spec, `"`) {
						var err error
						if pat, err = strconv.Unquote(spec); err != nil {
							t.Errorf("%s: bad want string %s: %v", key, spec, err)
							continue
						}
					} else {
						pat = strings.Trim(spec, "`")
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %s: %v", key, spec, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{raw: pat, re: re})
				}
			}
		}
	}

	// Run the analyzer.
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Annot:     analysis.ParseAnnotations(pkg.Fset, pkg.Syntax),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
	}

	// Every diagnostic needs a matching expectation on its line.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}

	// Every expectation needs a diagnostic.
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}
