// Package load turns Go package patterns into parsed, type-checked
// packages without depending on golang.org/x/tools/go/packages (the build
// environment is offline). It shells out to `go list -deps -export -json`
// for the package graph and compiled export data, parses the target
// packages' sources, and type-checks them against the export data through
// the standard library's gc importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, in go list order
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	DepOnly    bool
	GoFiles    []string
}

// Packages loads the packages matching patterns, resolved relative to dir
// (a directory inside the target module). Deps are consumed as compiled
// export data; only the matched packages themselves are parsed from source.
// The result is sorted by import path so downstream output is deterministic.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := Importer(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var out []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := Check(fset, imp, t.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkg.Name, pkg.Dir = t.Name, t.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// Importer returns a gc-export-data importer resolving import paths through
// lookup (path -> export data file). It is shared by the go-list loader and
// the go vet unitchecker mode.
func Importer(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check parses goFiles (with comments) and type-checks them as one package.
func Check(fset *token.FileSet, imp types.Importer, importPath string, goFiles []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %v", err)
	}
	return &Package{
		ImportPath: importPath,
		GoFiles:    goFiles,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		Info:       info,
		// Name/Dir filled by callers that know them.
	}, nil
}
