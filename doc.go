// Package vinfra is a reproduction of "Virtual Infrastructure for
// Collision-Prone Wireless Networks" (Chockler, Gilbert, Lynch, PODC 2008).
//
// # Module layout
//
// The module is `vinfra` (Go 1.22, no external dependencies). The library
// lives under internal/:
//
//   - sim: the slotted, synchronous round engine (Section 2). Runs are
//     deterministic per seed; WithParallel shards each round's mobility,
//     Transmit and Receive fan-out across a bounded worker pool without
//     changing output. The steady-state round loop is allocation-free:
//     the NodeInfo view, transmission list and Transmit slots are reused
//     buffers, every per-round walk covers only the alive list (dead
//     nodes cost nothing after the round they die in), and CrashAt with a
//     round at or before the current one applies immediately instead of
//     being silently dropped.
//   - geo: planar geometry, the quasi-unit-disk radii R1/R2, deployment
//     grids, and CellIndex — the uniform-grid spatial index that makes
//     radius queries O(points in nearby cells) instead of O(n). It also
//     answers nearest-within-radius queries (NearestWithin, behind the
//     O(1) vi.Deployment.RegionOf) and rebuilds in place without
//     allocating (Rebuild, behind the radio medium's per-round index).
//   - radio: the collision-prone medium. Delivery buckets each round's
//     transmissions into R2-sized grid cells so every receiver consults
//     only its own and adjacent cells (near-linear per round rather than
//     O(receivers x transmissions)); Config.Mode selects scan/grid/auto
//     and Config.Parallel shards receivers across workers. All modes are
//     reception-identical for the same seed. Per-round state (reception
//     slice, transmission index, identity map) lives on the Medium and
//     per-worker partition buffers are pooled, so steady-state delivery
//     allocates only the message slices receivers actually get.
//   - cd, cm: the model's collision detector classes and contention
//     managers. Both have exact-behavior unit tests under injected
//     jamming: adversarial collision patterns produce precisely the
//     detections (completeness on real losses, per-class handling of
//     forced spurious indications) and backoff-window trajectories the
//     model specifies.
//   - faults: the deterministic adversary plane. Spatial jammers
//     (CellJammer, RegionJammer) plug into radio.Config.Adversary and
//     silence every receiver standing in a jammed cell or footprint;
//     engine-level sim.Fault attacks (RegionWipe, CrashBurst, ChurnStorm,
//     Herd) are consulted by the engine at the start of every round. All
//     choices are pure hashes of (Seed, round, node/cell), so the same
//     seed reproduces the same attack byte-for-byte, sequential or
//     parallel. The package doc states the threat model and how to add an
//     adversary.
//   - wire: the deterministic byte-oriented codec behind the state plane:
//     append-style varint/length-prefixed encodings into caller-supplied
//     byte slices, canonical by construction (one encoding per value,
//     minimal varints, validated lengths), a zero-copy decoding cursor
//     with a sticky error, pooled scratch buffers, and an allocation-free
//     chainable FNV-1a digest type. Dependency-free.
//   - cha: Convergent History Agreement, the paper's core protocol.
//     Value is a byte string carrying a cached digest, so history digests
//     fold cached 64-bit digests instead of re-hashing proposal bytes.
//   - vi: the full virtual infrastructure emulation (Section 4). Virtual
//     node states, payloads and proposals are byte strings encoded with
//     wire; Codec adapts typed states through explicit
//     EncodeState/DecodeState functions, and every protocol message's
//     WireSize is the exact length of its encoding. encoding/gob is off
//     the per-round path entirely (GobCodec remains as an explicit
//     reflection-based compatibility adapter for prototyping). Monitor
//     accounts per-virtual-node availability: green instances, maximal
//     stalls and recovery latencies, with horizon-aware variants that
//     count a silenced node as unavailable.
//   - apps, baseline: applications on top of the infrastructure and the
//     baselines the paper argues against. Application payloads and states
//     are canonical wire encodings (a one-byte kind tag plus fixed field
//     sequences) instead of hand-parsed prefix strings.
//   - mobility, metrics: mobility models and table rendering.
//   - experiments: the reproduction experiment suite E1–E13 — E11 "metro"
//     drives grids of virtual nodes through heavy churn (Leave, scheduled
//     and late CrashAt, mid-run Attach) on the parallel grid-indexed
//     stack, and E12 "state plane" measures per-virtual-round emulation
//     cost (rounds, measured wire bytes, rounds/sec) at 9/25/49 virtual
//     nodes, and E13 "adversary" sweeps faults attacks (jam, wipe, storm,
//     burst) x intensity x deployment size, reporting availability,
//     stalls and recovery latencies from vi.Monitor. Every table
//     registers a harness.Descriptor (parameter grid, seed list, typed
//     rows) in its file's init.
//   - harness: the registry-based experiment runner. It fans
//     experiment×parameter×seed cells out over a bounded worker pool,
//     merges results deterministically (parallel output is byte-identical
//     to sequential), renders text tables through internal/metrics, and
//     emits a machine-readable JSON report with per-cell wall time,
//     rounds/sec, transmitted wire bytes and allocation samples.
//
// cmd/chabench runs the suite through the harness registry; cmd/visim runs
// an interactive tracking simulation (pass -parallel to shard rounds
// across cores). See README.md for a guided tour.
//
// # The determinism contract
//
// Every run is a pure function of its seed. Concretely: all randomness is
// derived from internal/det — a pure hash of (seed, round, node/cell) via
// det.HashKeys, or a det.Stream keyed the same way — never from math/rand;
// no wall-clock value reaches deterministic code (simulated time is the
// round counter; internal/harness owns the one legitimate timing plane,
// and Measured cost columns are annotated); map iteration order never
// reaches ordered output (collect keys, sort, then emit); and every wire
// encoder is closed under the codec surface (AppendTo implies WireSize and
// a package-level decoder), so states round-trip byte-identically. These
// four rules are machine-checked: tools/detlint is a go/analysis-style
// multichecker (globalrand, walltime, maporder, wirecomplete, seedflow)
// that runs in CI via `go vet -vettool` and must report zero findings on
// the tree. Deliberate exceptions carry a //detlint:<rule> annotation with
// a reason; see the "Static analysis" section of README.md for the
// grammar.
//
// # Verifying and benchmarking
//
// The tier-1 check is:
//
//	go build ./... && go test ./...
//
// The delivery-scaling benchmarks (1k and 10k nodes, brute-force scan vs
// grid index, sequential vs sharded) live in internal/radio and
// internal/sim, and the flat-cost RegionOf benchmarks in internal/vi:
//
//	go test ./internal/radio/ -bench 'Deliver' -benchtime 10x
//	go test ./internal/sim/ -bench 'EngineStep' -benchtime 10x
//	go test ./internal/vi/ -bench 'RegionOf' -benchtime 100000x
//	go test ./internal/vi/ -bench 'EmulatorVRound' -benchtime 30x
//	go run ./cmd/chabench -only E10,E11,E12,E13
//
// Steady-state allocations per round are gated by tests (skipped under
// -race): TestDeliverSteadyStateAllocs and TestEngineStepSteadyStateAllocs
// pin the allocation-free round loop — Engine.Step allocates nothing and
// Deliver allocates only the message slices of receivers that actually
// hear something — and TestEmulatorVRoundSteadyStateAllocs pins the
// wire-codec state plane (a full virtual round at 9 virtual nodes in at
// most 600 allocations; the gob+string stack needed ~10,400). CI also
// runs a fuzz smoke job: 10 seconds each over the wire decoder and the
// adversarial-input DecodeRoundInput/DecodeJoinAckMsg paths.
//
// # The perf trajectory and -compare workflow
//
// BENCH_BASELINE.json at the repo root is a committed chabench JSON report
// (E10–E13, seeds 1–3) whose header notes the machine and commit
// it was generated on. To check a change against it:
//
//	go run ./cmd/chabench -json -only E10,E11,E12,E13 -seeds 1,2,3 -out bench.json
//	go run ./cmd/chabench -compare bench.json -calibrate -tolerance 0.30
//
// -compare matches cells by (experiment, cell, seed), computes wall-time
// ratios, and exits nonzero when a cell slower than the noise floor
// regressed beyond the tolerance — or when cells the baseline pins are
// absent from the fresh report (lost coverage fails loudly instead of
// silently shrinking the gate). -calibrate divides every ratio by the
// suite-wide median ratio so a uniformly slower or faster machine (CI
// runners vs the baseline host) doesn't trip the gate — only cells that
// regressed relative to the rest of the suite do. CI runs exactly this
// gate on every push, plus build/vet, gofmt, golden-file freshness, a Go
// 1.22/1.23 test matrix and a -race job (.github/workflows/ci.yml, with a
// concurrency group cancelling superseded PR runs and one composite
// toolchain-setup action shared by every job). A scheduled nightly
// workflow (.github/workflows/nightly.yml) soaks full-grid E11+E13 across
// seeds 1-5, fuzzes 3 minutes per target, and re-runs the adversary
// determinism property tests under -race.
//
// After an intentional perf or result change, regenerate the baseline
// (note the machine and commit in -note) and the experiments golden file
// (go test ./internal/experiments/ -run Golden -update-golden).
package vinfra
