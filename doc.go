// Package vinfra is a reproduction of "Virtual Infrastructure for
// Collision-Prone Wireless Networks" (Chockler, Gilbert, Lynch, PODC 2008).
//
// The library lives under internal/: the slotted radio simulator (sim,
// radio, geo, mobility), the model's collision detectors (cd) and
// contention managers (cm), the Convergent History Agreement protocol that
// is the paper's core contribution (cha), the full virtual infrastructure
// emulation (vi), applications on top of it (apps), the baselines the paper
// argues against (baseline), and the experiment suite (experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for the reproduced results. The
// benchmarks in bench_test.go regenerate every experiment table; the
// cmd/chabench binary prints them.
package vinfra
