// Package vinfra is a reproduction of "Virtual Infrastructure for
// Collision-Prone Wireless Networks" (Chockler, Gilbert, Lynch, PODC 2008).
//
// # Module layout
//
// The module is `vinfra` (Go 1.22, no external dependencies). The library
// lives under internal/:
//
//   - sim: the slotted, synchronous round engine (Section 2). Runs are
//     deterministic per seed; WithParallel shards each round's mobility,
//     Transmit and Receive fan-out across a bounded worker pool without
//     changing output.
//   - geo: planar geometry, the quasi-unit-disk radii R1/R2, deployment
//     grids, and CellIndex — the uniform-grid spatial index that makes
//     radius queries O(points in nearby cells) instead of O(n).
//   - radio: the collision-prone medium. Delivery buckets each round's
//     transmissions into R2-sized grid cells so every receiver consults
//     only its own and adjacent cells (near-linear per round rather than
//     O(receivers x transmissions)); Config.Mode selects scan/grid/auto
//     and Config.Parallel shards receivers across workers. All modes are
//     reception-identical for the same seed.
//   - cd, cm: the model's collision detector classes and contention
//     managers.
//   - cha: Convergent History Agreement, the paper's core protocol.
//   - vi: the full virtual infrastructure emulation (Section 4).
//   - apps, baseline: applications on top of the infrastructure and the
//     baselines the paper argues against.
//   - mobility, metrics: mobility models and table rendering.
//   - experiments: the reproduction experiment suite E1–E10.
//
// cmd/chabench prints every experiment table; cmd/visim runs an
// interactive tracking simulation (pass -parallel to shard rounds across
// cores). See README.md for a guided tour and how to run the verification
// and benchmarks.
//
// # Verifying and benchmarking
//
// The tier-1 check is:
//
//	go build ./... && go test ./...
//
// The delivery-scaling benchmarks (1k and 10k nodes, brute-force scan vs
// grid index, sequential vs sharded) live in internal/radio and
// internal/sim:
//
//	go test ./internal/radio/ -bench 'Deliver' -benchtime 10x
//	go test ./internal/sim/ -bench 'EngineStep' -benchtime 10x
//	go run ./cmd/chabench -only E10
package vinfra
