// Robot coordination example (paper references [4, 27], and the air
// traffic control scenario of [3]): an intersection is guarded by a
// virtual node running the lock service. Robots approaching the
// intersection must hold the lock to cross — the virtual node arbitrates,
// and mutual exclusion holds even though the robots never talk to each
// other directly and the arbiter is itself just a set of unreliable
// devices.
package main

import (
	"fmt"
	"sort"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

func main() {
	radii := geo.Radii{R1: 10, R2: 20}
	locs := []geo.Point{{X: 0, Y: 0}} // the intersection
	sched := vi.BuildSchedule(locs, radii)

	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   apps.LockProgram(sched),
		VMax:      0.01,
	})
	if err != nil {
		panic(err)
	}

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: 3})
	eng := sim.NewEngine(medium, sim.WithSeed(3))

	// Three devices emulate the intersection arbiter.
	for i := 0; i < 3; i++ {
		pos := geo.Point{X: 0.4*float64(i) - 0.4, Y: 0.3}
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return dep.NewEmulator(env, true)
		})
	}

	// Four robots parked around the intersection, each wanting to cross
	// three times.
	robots := []*apps.LockClient{
		{Name: "north", HoldRounds: 2, Cycles: 3},
		{Name: "south", HoldRounds: 2, Cycles: 3},
		{Name: "east", HoldRounds: 3, Cycles: 3},
		{Name: "west", HoldRounds: 1, Cycles: 3},
	}
	positions := []geo.Point{{X: 0, Y: 2}, {X: 0, Y: -2}, {X: 2, Y: 0}, {X: -2, Y: 0}}
	for i, r := range robots {
		r := r
		eng.Attach(positions[i], nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, r)
		})
	}

	const vrounds = 120
	eng.Run(vrounds * dep.Timing().RoundsPerVRound())

	// Reconstruct the crossing timeline.
	type span struct {
		name       string
		start, end int
	}
	var spans []span
	for _, r := range robots {
		if len(r.CriticalRounds) == 0 {
			continue
		}
		cur := span{name: r.Name, start: r.CriticalRounds[0], end: r.CriticalRounds[0]}
		for _, vr := range r.CriticalRounds[1:] {
			if vr == cur.end+1 {
				cur.end = vr
				continue
			}
			spans = append(spans, cur)
			cur = span{name: r.Name, start: vr, end: vr}
		}
		spans = append(spans, cur)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	fmt.Println("intersection crossings (virtual rounds):")
	for _, s := range spans {
		fmt.Printf("  %5s holds [%3d .. %3d]\n", s.name, s.start, s.end)
	}

	// Verify mutual exclusion.
	claimed := map[int]string{}
	for _, r := range robots {
		for _, vr := range r.CriticalRounds {
			if other, ok := claimed[vr]; ok && other != r.Name {
				panic(fmt.Sprintf("collision in the intersection at vround %d: %s and %s", vr, other, r.Name))
			}
			claimed[vr] = r.Name
		}
	}
	total := 0
	for _, r := range robots {
		total += r.Completed()
		fmt.Printf("%5s completed %d/%d crossings\n", r.Name, r.Completed(), r.Cycles)
	}
	fmt.Printf("mutual exclusion verified across %d crossings\n", total)
}
