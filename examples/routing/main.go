// Routing example (paper references [12, 16, 17, 40]): a chain of virtual
// nodes forms a fixed backbone across the field. A client on the west end
// sends packets addressed to a location on the east end; the virtual nodes
// greedily relay them hop by hop, and the easternmost virtual node
// delivers them to the local client. No routing tables, no route
// discovery, no flooding — the static virtual infrastructure is the route.
package main

import (
	"fmt"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

func main() {
	radii := geo.Radii{R1: 10, R2: 20}
	// A 5-hop west-to-east backbone, one virtual node every 5 units.
	locs := make([]geo.Point, 5)
	for i := range locs {
		locs[i] = geo.Point{X: 5 * float64(i)}
	}
	sched := vi.BuildSchedule(locs, radii)

	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   apps.RoutedProgram(sched, locs),
		VMax:      0.01,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("backbone: %d virtual nodes, schedule length %d\n", len(locs), sched.Len())

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: 5})
	eng := sim.NewEngine(medium, sim.WithSeed(5))

	// Two devices emulate each backbone node.
	for _, loc := range locs {
		for i := 0; i < 2; i++ {
			pos := geo.Point{X: loc.X + 0.4*float64(i) - 0.2, Y: 0.3}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return dep.NewEmulator(env, true)
			})
		}
	}

	// West client sends three packets to the east end.
	east := locs[len(locs)-1]
	sender := &apps.RouterClient{
		Sends: map[int]*vi.Message{
			2:  apps.RouteSend(east, "pkt-1", "hello from the west"),
			8:  apps.RouteSend(east, "pkt-2", "second packet"),
			14: apps.RouteSend(east, "pkt-3", "third packet"),
		},
	}
	receiver := &apps.RouterClient{}
	eng.Attach(geo.Point{X: -1, Y: -1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, sender)
	})
	eng.Attach(geo.Point{X: east.X + 1, Y: 1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, receiver)
	})

	per := dep.Timing().RoundsPerVRound()
	const vrounds = 60
	eng.Run(vrounds * per)

	fmt.Printf("sent 3 packets across %.0f units (%d virtual-node hops)\n",
		east.X, len(locs)-1)
	for _, p := range receiver.Received {
		fmt.Printf("  delivered %s: %q\n", p.ID, p.Body)
	}
	if len(receiver.Received) != 3 {
		panic(fmt.Sprintf("delivered %d/3 packets", len(receiver.Received)))
	}
	fmt.Printf("all packets delivered; %d radio rounds total, max message %d B\n",
		eng.Stats().Rounds, eng.Stats().MaxMessageSize)
}
