// Atomic memory example (the GeoQuorums motivation, paper reference [13]):
// a virtual node hosts a read/write register. Writers update it, readers
// observe a linearizable sequence of versions, and the register survives
// the crash of individual replica devices.
package main

import (
	"fmt"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

func main() {
	radii := geo.Radii{R1: 10, R2: 20}
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, radii)

	// A shared fixed-leader contention manager keeps the demo
	// deterministic; swap in the default regional backoff CM for a fully
	// decentralized run.
	factory, setLeader := cm.NewFixed(0)
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   apps.RegisterProgram(sched),
		NewCM:     func(v vi.VNodeID, env sim.Env) cm.Manager { return factory(env) },
	})
	if err != nil {
		panic(err)
	}

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: 7})
	eng := sim.NewEngine(medium, sim.WithSeed(7))

	// Four replica devices.
	for i := 0; i < 4; i++ {
		pos := geo.Point{X: 0.4*float64(i) - 0.6, Y: 0.2}
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return dep.NewEmulator(env, true)
		})
	}

	// A writer issuing two writes, and two readers.
	writer := &apps.RegisterWriter{Writes: map[int]string{3: "first", 9: "second"}}
	reader1 := &apps.RegisterReader{}
	reader2 := &apps.RegisterReader{}
	eng.Attach(geo.Point{X: 1.4, Y: -0.8}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, writer)
	})
	eng.Attach(geo.Point{X: -1.4, Y: 0.8}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, reader1)
	})
	eng.Attach(geo.Point{X: 0.2, Y: 1.6}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, reader2)
	})

	per := dep.Timing().RoundsPerVRound()
	eng.Run(6 * per)

	// Crash the leader replica mid-run: the register must survive.
	fmt.Println("crashing replica 0 (the leader) ...")
	eng.Crash(0)
	setLeader(1)
	eng.Run(8 * per)

	fmt.Println("\nreader 1 observations:")
	for _, o := range reader1.Observed {
		fmt.Printf("  vround %2d: version %d value %q\n", o.VRound, o.Version, o.Value)
	}
	fmt.Println("reader 2 observations:")
	for _, o := range reader2.Observed {
		fmt.Printf("  vround %2d: version %d value %q\n", o.VRound, o.Version, o.Value)
	}

	final1 := reader1.Observed[len(reader1.Observed)-1]
	final2 := reader2.Observed[len(reader2.Observed)-1]
	fmt.Printf("\nfinal agreement: reader1=%q v%d, reader2=%q v%d\n",
		final1.Value, final1.Version, final2.Value, final2.Version)
	if final1.Value != "second" || final2.Value != "second" {
		panic("register lost a write")
	}
	fmt.Println("register survived the replica crash with no lost writes")
}
