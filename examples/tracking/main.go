// Tracking example (paper reference [36]): a 2x3 grid of virtual nodes
// runs the tracking service. A rover with random-waypoint mobility beacons
// its position to whichever virtual node is nearby; virtual nodes gossip
// sightings to their neighbors over the virtual channel; an observer
// parked at the far corner learns where the rover is without ever hearing
// it directly.
package main

import (
	"fmt"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/mobility"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

func main() {
	radii := geo.Radii{R1: 10, R2: 20}
	grid := geo.Grid{Spacing: 5, Cols: 3, Rows: 2}
	locs := grid.Locations()
	sched := vi.BuildSchedule(locs, radii)

	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   apps.TrackerProgram(sched, apps.TrackerConfig{DigestSize: 3}),
		VMax:      0.02,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("deployment: %d virtual nodes, schedule length %d, %d rounds per virtual round\n",
		len(locs), sched.Len(), dep.Timing().RoundsPerVRound())

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: 11})
	eng := sim.NewEngine(medium, sim.WithSeed(11))

	// Two tethered devices per virtual node keep every region populated.
	for _, loc := range locs {
		for i := 0; i < 2; i++ {
			pos := geo.Point{X: loc.X + 0.4*float64(i) - 0.2, Y: loc.Y + 0.2}
			eng.Attach(pos, mobility.Tether{Anchor: loc, Radius: 1.0, VMax: 0.02}, func(env sim.Env) sim.Node {
				return dep.NewEmulator(env, true)
			})
		}
	}

	// The rover roams the whole field.
	bounds := grid.Bounds()
	roverID := eng.Attach(geo.Point{X: 1, Y: 0.5},
		&mobility.RandomWaypoint{Area: bounds, VMax: 0.04},
		func(env sim.Env) sim.Node {
			return dep.NewClient(env, &apps.TargetClient{
				Name:   "rover",
				Period: 2,
				Pos:    env.Location,
			})
		})

	// The observer sits at the far corner, out of the rover's usual range.
	observer := &apps.ObserverClient{}
	eng.Attach(locs[len(locs)-1], nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, observer)
	})

	per := dep.Timing().RoundsPerVRound()
	for epoch := 1; epoch <= 5; epoch++ {
		eng.Run(15 * per)
		actual := eng.Position(roverID)
		if sg, ok := observer.Lookup("rover"); ok {
			believed := geo.Point{X: sg.X, Y: sg.Y}
			fmt.Printf("epoch %d: rover believed at %v (vround %d), actually at %v, error %.2f\n",
				epoch, believed, sg.VRound, actual, believed.Dist(actual))
		} else {
			fmt.Printf("epoch %d: rover not yet known at the observer (actual %v)\n", epoch, actual)
		}
	}
	if _, ok := observer.Lookup("rover"); !ok {
		panic("tracking never converged")
	}
	fmt.Println("sightings propagated across the virtual infrastructure via VN-to-VN gossip")
}
