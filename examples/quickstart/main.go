// Quickstart: one virtual node emulated by three mobile devices, plus one
// client pinging it. Demonstrates the minimal wiring: deployment, medium,
// engine, emulators, client — and shows the virtual node behaving like a
// single reliable machine (its replicas agree on every round).
package main

import (
	"bytes"
	"fmt"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// echoState counts the messages the virtual node has received.
type echoState struct {
	Count int
}

func main() {
	radii := geo.Radii{R1: 10, R2: 20}
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, radii)

	// The virtual node program: count client messages; broadcast the count
	// when scheduled.
	program := func(v vi.VNodeID) vi.Program {
		return vi.Codec[echoState]{
			InitState: func(vi.VNodeID, geo.Point) echoState { return echoState{} },
			Step: func(s echoState, vround int, in vi.RoundInput) echoState {
				s.Count += len(in.Msgs)
				return s
			},
			Out: func(s echoState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				return vi.Text(fmt.Sprintf("seen %d messages", s.Count))
			},
			// The state's canonical wire encoding: one varint. Equal
			// states encode to equal bytes by construction.
			EncodeState: func(dst []byte, s echoState) []byte {
				return wire.AppendUvarint(dst, uint64(s.Count))
			},
			DecodeState: func(d *wire.Decoder) (echoState, error) {
				return echoState{Count: int(d.Uvarint())}, d.Err()
			},
		}
	}

	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     radii,
		Program:   program,
		VMax:      0.01,
	})
	if err != nil {
		panic(err)
	}

	medium := radio.MustMedium(radio.Config{Radii: radii, Detector: cd.AC{}, Seed: 42})
	eng := sim.NewEngine(medium, sim.WithSeed(42))

	// Three devices inside the virtual node's R1/4 region emulate it.
	var emulators []*vi.Emulator
	for i := 0; i < 3; i++ {
		pos := geo.Point{X: 0.4*float64(i) - 0.4, Y: 0.2}
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			em := dep.NewEmulator(env, true)
			emulators = append(emulators, em)
			return em
		})
	}

	// One client: ping every virtual round, print what the virtual node
	// says back.
	eng.Attach(geo.Point{X: 1.5, Y: -1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, vi.ClientFunc(
			func(vr int, recv []vi.Message, collision bool) *vi.Message {
				for _, m := range recv {
					fmt.Printf("vround %2d: virtual node says %q\n", vr, m.Payload)
				}
				return vi.Text(fmt.Sprintf("ping %d", vr))
			}))
	})

	const vrounds = 10
	eng.Run(vrounds * dep.Timing().RoundsPerVRound())

	// Every replica computed the identical virtual node state. Replicas
	// checkpoint after each green round (Section 3.5), so the live chain
	// is just the suffix above the checkpoint floor.
	fmt.Println()
	for i, em := range emulators {
		fmt.Printf("replica %d: checkpointed through vround %d, status of last round: %v\n",
			i, em.Core().Floor(), em.Core().Status(cha.Instance(vrounds)))
	}
	consistent := bytes.Equal(emulators[0].StateBefore(vrounds+1), emulators[1].StateBefore(vrounds+1)) &&
		bytes.Equal(emulators[1].StateBefore(vrounds+1), emulators[2].StateBefore(vrounds+1))
	fmt.Printf("replicas consistent: %v\n", consistent)
}
