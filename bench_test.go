package vinfra_test

// One benchmark per experiment table (DESIGN.md §4). Each benchmark both
// measures the wall-clock cost of regenerating the table and reports the
// headline quantity of its experiment as custom benchmark metrics, so
// `go test -bench=. -benchmem` reproduces every figure of the evaluation.

import (
	"testing"

	"vinfra/internal/experiments"
	"vinfra/internal/sim"
)

func BenchmarkE1Figure2(b *testing.B) {
	matches := 0
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure2()
		matches = 0
		for j, r := range rows {
			if r == experiments.Figure2Expected[j] {
				matches++
			}
		}
	}
	b.ReportMetric(float64(matches), "rows-matching-paper")
}

func BenchmarkE2OverheadVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.OverheadVsN([]int{2, 8, 32}, 25)
	}
}

func BenchmarkE2OverheadVsLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.OverheadVsLength([]int{16, 128})
	}
}

func BenchmarkE2RoundsUnderLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RoundsUnderLoss(4, []float64{0, 0.3}, 50)
	}
}

func BenchmarkE3ColorSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ColorSpread(5, []float64{0, 0.5}, 60)
	}
}

func BenchmarkE4Correctness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CorrectnessCampaign(6, []sim.Round{30, 90}, 25)
	}
}

func BenchmarkE5EmulationOverheadDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.EmulationOverheadVsDensity(8)
	}
}

func BenchmarkE5EmulationOverheadReplicas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.EmulationOverheadVsReplicas([]int{1, 4}, 8)
	}
}

func BenchmarkE6Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ChurnSurvival([]int{4}, 24)
	}
}

func BenchmarkE7BaselineVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BaselineVIComparison([]int{3, 15}, 6)
	}
}

func BenchmarkE7StateTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.StateTransferCost([]int{0, 16, 64})
	}
}

func BenchmarkE8DetectorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.DetectorAblation(40)
	}
}

func BenchmarkE8CMAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CMAblation(80)
	}
}

func BenchmarkE8Checkpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.CheckpointAblation([]int{50, 200})
	}
}

func BenchmarkE9RoutingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RoutingLatency([]int{2, 4}, 2)
	}
}

func BenchmarkE9LockThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.LockThroughput([]int{2, 4}, 40)
	}
}

func BenchmarkE10DeliveryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.DeliveryScaling([]int{1_000, 10_000}, 3)
	}
}
