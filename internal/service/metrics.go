package service

import (
	"fmt"
	"net/http"
	"strings"

	"vinfra/internal/vi"
)

// simSample is one tenant's metric readings, taken from the cached status
// fields (never touching the loop goroutine).
type simSample struct {
	name     string
	vround   int
	vrounds  int
	running  bool
	rounds   int
	txs      int
	haloTxs  int
	bytes    int
	joins    int
	resets   int
	partSec  float64
	rate     float64 // vrounds-per-second stepping rate of this process
	perVNode []vi.AvailabilityReport
}

func (s *Service) sample() []simSample {
	out := []simSample{}
	for _, t := range s.tenants() {
		t.mu.Lock()
		sm := simSample{
			name:    t.name,
			vround:  t.vr,
			vrounds: t.effSpec.VRounds,
			running: t.target > t.vr,
			rounds:  t.stats.Rounds,
			txs:     t.stats.Transmissions,
			haloTxs: t.stats.HaloTransmissions,
			bytes:   t.stats.TotalBytes,
			joins:   t.joins,
			resets:  t.resets,
			partSec: t.partTime.Seconds(),
		}
		if t.stepWall > 0 {
			sm.rate = float64(t.stepped) / t.stepWall.Seconds()
		}
		vr := t.vr
		t.mu.Unlock()
		sm.perVNode = make([]vi.AvailabilityReport, len(t.locs))
		for v := range t.locs {
			sm.perVNode[v] = t.mon.ReportThrough(vi.VNodeID(v), vr)
		}
		out = append(out, sm)
	}
	return out
}

// handleMetrics renders the Prometheus text exposition format. Families
// are emitted in a fixed order and samples sorted by sim name, so the
// output is stable scrape to scrape.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	samples := s.sample()
	var b strings.Builder

	family := func(name, help, typ string, emit func(sm simSample)) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, sm := range samples {
			emit(sm)
		}
	}
	fmt.Fprintf(&b, "# HELP vinfra_sims Resident simulations.\n# TYPE vinfra_sims gauge\nvinfra_sims %d\n", len(samples))
	family("vinfra_sim_vround", "Virtual rounds executed.", "gauge", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_vround{sim=%q} %d\n", sm.name, sm.vround)
	})
	family("vinfra_sim_vrounds", "Virtual-round horizon.", "gauge", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_vrounds{sim=%q} %d\n", sm.name, sm.vrounds)
	})
	family("vinfra_sim_running", "1 while a background run is in progress.", "gauge", func(sm simSample) {
		running := 0
		if sm.running {
			running = 1
		}
		fmt.Fprintf(&b, "vinfra_sim_running{sim=%q} %d\n", sm.name, running)
	})
	family("vinfra_sim_rounds_total", "Radio rounds executed.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_rounds_total{sim=%q} %d\n", sm.name, sm.rounds)
	})
	family("vinfra_sim_transmissions_total", "Broadcast attempts.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_transmissions_total{sim=%q} %d\n", sm.name, sm.txs)
	})
	family("vinfra_sim_halo_transmissions_total", "Cross-shard boundary-band transmission copies.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_halo_transmissions_total{sim=%q} %d\n", sm.name, sm.haloTxs)
	})
	family("vinfra_sim_wire_bytes_total", "Accounted message bytes on the radio medium.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_wire_bytes_total{sim=%q} %d\n", sm.name, sm.bytes)
	})
	family("vinfra_sim_joins_total", "Join-protocol completions.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_joins_total{sim=%q} %d\n", sm.name, sm.joins)
	})
	family("vinfra_sim_resets_total", "Region resets.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_resets_total{sim=%q} %d\n", sm.name, sm.resets)
	})
	family("vinfra_sim_partition_seconds_total", "Wall time in the region-sharded partition pass.", "counter", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_partition_seconds_total{sim=%q} %g\n", sm.name, sm.partSec)
	})
	family("vinfra_sim_vrounds_per_second", "Virtual-round stepping rate of this process.", "gauge", func(sm simSample) {
		fmt.Fprintf(&b, "vinfra_sim_vrounds_per_second{sim=%q} %g\n", sm.name, sm.rate)
	})
	family("vinfra_vnode_availability", "Per-virtual-node availability through the current virtual round.", "gauge", func(sm simSample) {
		for v, rep := range sm.perVNode {
			fmt.Fprintf(&b, "vinfra_vnode_availability{sim=%q,vnode=\"%d\"} %.4f\n", sm.name, v, rep.Availability)
		}
	})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}
