package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
	"vinfra/internal/spec"
	"vinfra/internal/vi"
)

// maxEvents bounds each tenant's in-memory event log; older events are
// dropped from the front (their sequence numbers stay stable).
const maxEvents = 1024

var errDeleted = errors.New("service: simulation deleted")

// Event is one entry in a tenant's event log.
type Event struct {
	Seq    int    `json:"seq"`
	VRound int    `json:"vround"`
	Type   string `json:"type"`
	Detail string `json:"detail,omitempty"`
}

// SimStatus is the JSON status document of one simulation.
type SimStatus struct {
	Name    string `json:"name"`
	VRound  int    `json:"vround"`
	VRounds int    `json:"vrounds"`
	// Running reports an outstanding background run (POST run); steps also
	// happen synchronously via POST step.
	Running          bool    `json:"running"`
	VNodes           int     `json:"vnodes"`
	Devices          int     `json:"devices"`
	MeanAvailability float64 `json:"mean_availability"`
	Joins            int     `json:"joins"`
	Resets           int     `json:"resets"`
	Faults           int     `json:"faults"`
}

// tenant is one named simulation. The spec.World is owned exclusively by
// the tenant's loop goroutine; handlers either send closures to the loop
// (do) or read the cached fields below under mu. The monitor is shared —
// vi.Monitor is safe to read concurrently with stepping.
type tenant struct {
	name string

	cmds chan func(*spec.World)
	quit chan struct{} // closed on delete; stops the loop
	done chan struct{} // closed when the loop has exited

	mon  *vi.Monitor // concurrency-safe, shared with the loop
	locs []geo.Point // immutable after build

	mu       sync.Mutex
	effSpec  spec.Spec // effective spec, including injected faults
	vr       int
	target   int // background-run target; the loop steps while vr < target
	stats    sim.Stats
	partTime time.Duration
	joins    int
	resets   int
	stepWall time.Duration // cumulative wall time inside StepVRound
	stepped  int           // vrounds stepped by this process
	events   []Event
	nextSeq  int
}

// newTenant wraps a built (and possibly restored) world and starts its
// loop goroutine.
func newTenant(name string, w *spec.World) *tenant {
	t := &tenant{
		name: name,
		cmds: make(chan func(*spec.World)),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		mon:  w.Mon,
		locs: w.Locs,
	}
	t.syncLocked(w) // loop not started yet; no contention
	go t.loop(w)
	return t
}

// loop owns the world: it drains commands, and between commands steps the
// world toward the background-run target.
func (t *tenant) loop(w *spec.World) {
	defer close(t.done)
	defer w.Eng.Close()
	for {
		if t.wantsStep(w) {
			select {
			case <-t.quit:
				return
			case fn := <-t.cmds:
				fn(w)
			default:
				t.stepOne(w)
			}
		} else {
			select {
			case <-t.quit:
				return
			case fn := <-t.cmds:
				fn(w)
			}
		}
	}
}

func (t *tenant) wantsStep(w *spec.World) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.target > w.VRound() && w.VRound() < w.VRounds()
}

// stepOne executes one timed virtual round on the loop goroutine and
// refreshes the cached status.
func (t *tenant) stepOne(w *spec.World) {
	start := time.Now()
	w.StepVRound()
	elapsed := time.Since(start)
	t.mu.Lock()
	t.stepWall += elapsed
	t.stepped++
	t.syncLocked(w)
	if t.target != 0 && (w.VRound() >= t.target || w.VRound() >= w.VRounds()) {
		t.target = 0
		t.eventLocked(w.VRound(), "run_done", "")
	}
	t.mu.Unlock()
}

// syncLocked refreshes the cached status from the world. Callers hold mu
// (or, in newTenant, exclusive ownership).
func (t *tenant) syncLocked(w *spec.World) {
	t.effSpec = w.Spec
	t.vr = w.VRound()
	t.stats = w.Eng.Stats()
	t.partTime = w.Eng.PartitionTime()
	t.joins = w.Joins()
	t.resets = w.Resets()
}

// do runs fn on the loop goroutine and returns its error; it fails with
// errDeleted once the tenant's loop has exited.
func (t *tenant) do(fn func(*spec.World) error) error {
	errc := make(chan error, 1)
	wrapped := func(w *spec.World) { errc <- fn(w) }
	select {
	case t.cmds <- wrapped:
	case <-t.done:
		return errDeleted
	}
	select {
	case err := <-errc:
		return err
	case <-t.done:
		return errDeleted
	}
}

// stop ends the loop (idempotent) and waits for it to exit.
func (t *tenant) stop() {
	select {
	case <-t.quit:
	default:
		close(t.quit)
	}
	<-t.done
}

// eventLocked appends to the bounded event log. Callers hold mu.
func (t *tenant) eventLocked(vr int, typ, detail string) {
	t.events = append(t.events, Event{Seq: t.nextSeq, VRound: vr, Type: typ, Detail: detail})
	t.nextSeq++
	if len(t.events) > maxEvents {
		t.events = t.events[len(t.events)-maxEvents:]
	}
}

// event appends to the event log.
func (t *tenant) event(vr int, typ, detail string) {
	t.mu.Lock()
	t.eventLocked(vr, typ, detail)
	t.mu.Unlock()
}

// eventsFrom returns a copy of the retained events with Seq >= from.
func (t *tenant) eventsFrom(from int) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := []Event{}
	for _, e := range t.events {
		if e.Seq >= from {
			out = append(out, e)
		}
	}
	return out
}

// status builds the JSON status document from the cached fields.
func (t *tenant) status() SimStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return SimStatus{
		Name:             t.name,
		VRound:           t.vr,
		VRounds:          t.effSpec.VRounds,
		Running:          t.target > t.vr,
		VNodes:           len(t.locs),
		Devices:          t.effSpec.TotalDevices(),
		MeanAvailability: t.mon.SummaryThrough(len(t.locs), t.vr).MeanAvailability,
		Joins:            t.joins,
		Resets:           t.resets,
		Faults:           len(t.effSpec.Faults),
	}
}

// step synchronously executes up to n virtual rounds (clamped to the
// horizon) and returns the new cursor.
func (t *tenant) step(n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("vrounds must be at least 1 (got %d)", n)
	}
	var vr int
	err := t.do(func(w *spec.World) error {
		for i := 0; i < n && w.VRound() < w.VRounds(); i++ {
			t.stepOne(w)
		}
		vr = w.VRound()
		return nil
	})
	if err != nil {
		return 0, err
	}
	t.event(vr, "stepped", fmt.Sprintf("+%d", n))
	return vr, nil
}

// run starts (or retargets) a background run toward target (0 means the
// spec horizon). The loop steps between commands until the target is hit.
func (t *tenant) run(target int) error {
	return t.do(func(w *spec.World) error {
		if target == 0 {
			target = w.VRounds()
		}
		if target < w.VRound() || target > w.VRounds() {
			return fmt.Errorf("target_vround %d outside [%d, %d]", target, w.VRound(), w.VRounds())
		}
		t.mu.Lock()
		t.target = target
		t.eventLocked(w.VRound(), "run_started", fmt.Sprintf("target=%d", target))
		t.mu.Unlock()
		return nil
	})
}

// pause cancels an outstanding background run at the next virtual-round
// boundary.
func (t *tenant) pause() error {
	return t.do(func(w *spec.World) error {
		t.mu.Lock()
		if t.target > w.VRound() {
			t.eventLocked(w.VRound(), "paused", "")
		}
		t.target = 0
		t.mu.Unlock()
		return nil
	})
}
