// Package service is the visimd HTTP daemon: a multi-tenant simulation
// service where every world is created from one versioned internal/spec
// document and driven over a small REST surface. Each simulation runs an
// isolated engine/deployment/monitor stack on its own goroutine;
// determinism is preserved per tenant — the same spec driven over HTTP is
// byte-identical to the same spec run under visim -spec, including faults
// injected mid-run.
//
// Endpoints:
//
//	POST   /v1/sims                    create a named sim from {"name", "spec"}
//	GET    /v1/sims                    list sims (status documents)
//	GET    /v1/sims/{name}             one sim's status
//	DELETE /v1/sims/{name}             stop and remove a sim (and its state files)
//	POST   /v1/sims/{name}/step        {"vrounds": n} step synchronously
//	POST   /v1/sims/{name}/run         {"target_vround": n} run in background (0 = horizon)
//	POST   /v1/sims/{name}/pause       cancel a background run
//	POST   /v1/sims/{name}/faults      inject an engine fault (spec fault object)
//	GET    /v1/sims/{name}/availability  per-virtual-node availability reports
//	GET    /v1/sims/{name}/events?from=N event log as NDJSON
//	GET    /v1/sims/{name}/spec        effective spec (reproduces the run)
//	GET    /v1/sims/{name}/checkpoint  binary checkpoint of the current state
//	POST   /v1/sims/{name}/checkpoint  persist a checkpoint to the state dir
//	GET    /metrics                    Prometheus text-format metrics
//	GET    /healthz                    liveness
//
// With a state directory configured, create and fault-inject persist each
// sim's effective spec, and POST checkpoint persists its state; a daemon
// restarted on the same directory rebuilds every tenant from its spec and
// resumes it from its latest checkpoint.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"vinfra/internal/checkpoint"
	"vinfra/internal/spec"
	"vinfra/internal/vi"
)

// maxBodyBytes bounds request bodies (specs are small documents).
const maxBodyBytes = 1 << 20

// nameRE is the tenant-name grammar: filesystem- and label-safe.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Options configures a Service.
type Options struct {
	// StateDir, when set, holds each sim's effective spec (written on
	// create and after every fault injection) and checkpoints (written on
	// POST checkpoint); New recovers every sim found there.
	StateDir string
}

// Service is the visimd HTTP handler: the tenant registry plus its routes.
type Service struct {
	opts Options
	mux  *http.ServeMux

	mu   sync.Mutex
	sims map[string]*tenant
}

// New builds a service and, when a state directory is configured, recovers
// every simulation persisted there.
func New(opts Options) (*Service, error) {
	s := &Service{opts: opts, mux: http.NewServeMux(), sims: map[string]*tenant{}}
	s.routes()
	if opts.StateDir != "" {
		if err := os.MkdirAll(opts.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops every tenant's loop. State files are left in place, so a new
// service on the same directory resumes from the last persisted
// checkpoints.
func (s *Service) Close() {
	for _, t := range s.tenants() {
		t.stop()
	}
}

func (s *Service) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sims", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sims", s.handleList)
	s.mux.HandleFunc("GET /v1/sims/{name}", s.withTenant(s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/sims/{name}", s.withTenant(s.handleDelete))
	s.mux.HandleFunc("POST /v1/sims/{name}/step", s.withTenant(s.handleStep))
	s.mux.HandleFunc("POST /v1/sims/{name}/run", s.withTenant(s.handleRun))
	s.mux.HandleFunc("POST /v1/sims/{name}/pause", s.withTenant(s.handlePause))
	s.mux.HandleFunc("POST /v1/sims/{name}/faults", s.withTenant(s.handleInjectFault))
	s.mux.HandleFunc("GET /v1/sims/{name}/availability", s.withTenant(s.handleAvailability))
	s.mux.HandleFunc("GET /v1/sims/{name}/events", s.withTenant(s.handleEvents))
	s.mux.HandleFunc("GET /v1/sims/{name}/spec", s.withTenant(s.handleSpec))
	s.mux.HandleFunc("GET /v1/sims/{name}/checkpoint", s.withTenant(s.handleGetCheckpoint))
	s.mux.HandleFunc("POST /v1/sims/{name}/checkpoint", s.withTenant(s.handlePostCheckpoint))
}

// tenants snapshots the registry sorted by name (the emission order of
// every listing, so output never depends on map iteration).
func (s *Service) tenants() []*tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sims))
	for name := range s.sims {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*tenant, len(names))
	for i, name := range names {
		out[i] = s.sims[name]
	}
	return out
}

func (s *Service) lookup(name string) *tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sims[name]
}

// withTenant resolves {name} and 404s unknown sims.
func (s *Service) withTenant(fn func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		t := s.lookup(name)
		if t == nil {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no simulation %q", name))
			return
		}
		fn(w, r, t)
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return nil, false
	}
	return b, true
}

// createRequest is the POST /v1/sims document: a name plus a raw spec,
// which is strictly parsed by internal/spec (unknown fields rejected).
type createRequest struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req createRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	if !nameRE.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad name %q (want %s)", req.Name, nameRE))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "missing spec")
		return
	}
	sp, err := spec.Parse(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	world, err := spec.Build(sp)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if _, exists := s.sims[req.Name]; exists {
		s.mu.Unlock()
		world.Eng.Close()
		writeError(w, http.StatusConflict, fmt.Sprintf("simulation %q already exists", req.Name))
		return
	}
	t := newTenant(req.Name, world)
	s.sims[req.Name] = t
	s.mu.Unlock()

	t.event(0, "created", "")
	if err := s.persistSpec(t); err != nil {
		// The sim is resident but won't survive a restart; surface that.
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("persisting spec: %v", err))
		return
	}
	writeJSON(w, http.StatusCreated, t.status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	out := []SimStatus{}
	for _, t := range s.tenants() {
		out = append(out, t.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request, t *tenant) {
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request, t *tenant) {
	s.mu.Lock()
	delete(s.sims, t.name)
	s.mu.Unlock()
	t.stop()
	if s.opts.StateDir != "" {
		os.Remove(s.specPath(t.name))
		os.Remove(s.ckptPath(t.name))
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": t.name})
}

func (s *Service) handleStep(w http.ResponseWriter, r *http.Request, t *tenant) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	req := struct {
		VRounds int `json:"vrounds"`
	}{VRounds: 1}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
			return
		}
	}
	if _, err := t.step(req.VRounds); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errDeleted) {
			code = http.StatusGone
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request, t *tenant) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		TargetVRound int `json:"target_vround"`
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
			return
		}
	}
	if err := t.run(req.TargetVRound); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errDeleted) {
			code = http.StatusGone
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, t.status())
}

func (s *Service) handlePause(w http.ResponseWriter, r *http.Request, t *tenant) {
	if err := t.pause(); err != nil {
		writeError(w, http.StatusGone, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

func (s *Service) handleInjectFault(w http.ResponseWriter, r *http.Request, t *tenant) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var f spec.Fault
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding fault: %v", err))
		return
	}
	err := t.do(func(world *spec.World) error {
		if err := world.InjectFault(f); err != nil {
			return err
		}
		t.mu.Lock()
		t.syncLocked(world)
		t.eventLocked(world.VRound(), "fault_injected", f.Kind)
		t.mu.Unlock()
		return nil
	})
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errDeleted) {
			code = http.StatusGone
		}
		writeError(w, code, err.Error())
		return
	}
	if err := s.persistSpec(t); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("persisting spec: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

// availabilityRow is one virtual node's availability report.
type availabilityRow struct {
	VNode int `json:"vnode"`
	vi.AvailabilityReport
}

func (s *Service) handleAvailability(w http.ResponseWriter, r *http.Request, t *tenant) {
	t.mu.Lock()
	vr := t.vr
	t.mu.Unlock()
	rows := make([]availabilityRow, len(t.locs))
	for v := range t.locs {
		rows[v] = availabilityRow{VNode: v, AvailabilityReport: t.mon.ReportThrough(vi.VNodeID(v), vr)}
	}
	writeJSON(w, http.StatusOK, struct {
		VRound int               `json:"vround"`
		VNodes []availabilityRow `json:"vnodes"`
	}{vr, rows})
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, t *tenant) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", q))
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, e := range t.eventsFrom(from) {
		enc.Encode(e)
	}
}

func (s *Service) handleSpec(w http.ResponseWriter, r *http.Request, t *tenant) {
	t.mu.Lock()
	doc := t.effSpec.JSON()
	t.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

func (s *Service) handleGetCheckpoint(w http.ResponseWriter, r *http.Request, t *tenant) {
	var raw []byte
	err := t.do(func(world *spec.World) error {
		raw = world.Checkpoint().Encode()
		return nil
	})
	if err != nil {
		writeError(w, http.StatusGone, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(raw)
}

func (s *Service) handlePostCheckpoint(w http.ResponseWriter, r *http.Request, t *tenant) {
	if s.opts.StateDir == "" {
		writeError(w, http.StatusConflict, "no state directory configured (start visimd with -state)")
		return
	}
	var cp checkpoint.Checkpoint
	var vr int
	err := t.do(func(world *spec.World) error {
		cp = world.Checkpoint()
		vr = world.VRound()
		return nil
	})
	if err != nil {
		writeError(w, http.StatusGone, err.Error())
		return
	}
	if err := cp.WriteFile(s.ckptPath(t.name)); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	t.event(vr, "checkpointed", "")
	writeJSON(w, http.StatusOK, map[string]any{"checkpointed": t.name, "vround": vr})
}

func (s *Service) specPath(name string) string {
	return filepath.Join(s.opts.StateDir, name+".spec.json")
}

func (s *Service) ckptPath(name string) string {
	return filepath.Join(s.opts.StateDir, name+".ckpt")
}

// persistSpec atomically writes the tenant's effective spec to the state
// dir (a no-op without one). The effective spec includes injected faults,
// so recovery rebuilds a world whose fault registration order — and thus
// checkpoint digest — matches the persisted checkpoints.
func (s *Service) persistSpec(t *tenant) error {
	if s.opts.StateDir == "" {
		return nil
	}
	t.mu.Lock()
	doc := t.effSpec.JSON()
	t.mu.Unlock()
	path := s.specPath(t.name)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recover rebuilds every simulation persisted in the state directory: the
// world is rebuilt from the effective spec and, when a checkpoint exists,
// restored from it. Recovered sims start paused at their checkpointed
// virtual round.
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.opts.StateDir)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	for _, e := range entries {
		name, found := strings.CutSuffix(e.Name(), ".spec.json")
		if !found || !nameRE.MatchString(name) {
			continue
		}
		b, err := os.ReadFile(s.specPath(name))
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", name, err)
		}
		sp, err := spec.Parse(b)
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", name, err)
		}
		world, err := spec.Build(sp)
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", name, err)
		}
		if _, err := os.Stat(s.ckptPath(name)); err == nil {
			cp, err := checkpoint.ReadFile(s.ckptPath(name))
			if err != nil {
				world.Eng.Close()
				return fmt.Errorf("service: recover %s: %w", name, err)
			}
			if err := world.Restore(cp); err != nil {
				world.Eng.Close()
				return fmt.Errorf("service: recover %s: %w", name, err)
			}
		}
		t := newTenant(name, world)
		t.event(world.VRound(), "restored", "")
		s.sims[name] = t
	}
	return nil
}
