package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"vinfra/internal/checkpoint"
	"vinfra/internal/spec"
)

// smallDoc is the shared world: a 2x1 counter grid with pingers, fast
// enough to step under -race.
const smallDoc = `{"version": "vinfra-spec/v1", "seed": 9, "vrounds": 8,
	"grid": {"cols": 2, "rows": 1}, "devices": {"pingers": true}}`

func newService(t *testing.T, dir string) *Service {
	t.Helper()
	svc, err := New(Options{StateDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// call drives one request through the handler and returns the recorder.
func call(t *testing.T, svc *Service, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	svc.ServeHTTP(rec, req)
	return rec
}

func callJSON(t *testing.T, svc *Service, method, path, body string, wantCode int, out any) {
	t.Helper()
	rec := call(t, svc, method, path, body)
	if rec.Code != wantCode {
		t.Fatalf("%s %s: status %d (want %d): %s", method, path, rec.Code, wantCode, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding response: %v\n%s", method, path, err, rec.Body)
		}
	}
}

func create(t *testing.T, svc *Service, name, doc string) SimStatus {
	t.Helper()
	var st SimStatus
	callJSON(t, svc, "POST", "/v1/sims",
		fmt.Sprintf(`{"name": %q, "spec": %s}`, name, doc), http.StatusCreated, &st)
	return st
}

func TestCreateAndStatus(t *testing.T) {
	svc := newService(t, "")
	st := create(t, svc, "alpha", smallDoc)
	if st.Name != "alpha" || st.VRound != 0 || st.VRounds != 8 || st.VNodes != 2 {
		t.Fatalf("create status %+v", st)
	}
	var got SimStatus
	callJSON(t, svc, "GET", "/v1/sims/alpha", "", http.StatusOK, &got)
	if got != st {
		t.Fatalf("GET status %+v != create status %+v", got, st)
	}
	var list []SimStatus
	callJSON(t, svc, "GET", "/v1/sims", "", http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "alpha" {
		t.Fatalf("list %+v", list)
	}
	if rec := call(t, svc, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
}

func TestCreateRejects(t *testing.T) {
	svc := newService(t, "")
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad name", `{"name": "../etc", "spec": ` + smallDoc + `}`, http.StatusBadRequest},
		{"missing spec", `{"name": "x"}`, http.StatusBadRequest},
		{"unknown request field", `{"name": "x", "spec": ` + smallDoc + `, "sepc": 1}`, http.StatusBadRequest},
		{"unknown spec field", `{"name": "x", "spec": {"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "gird": 1}}`, http.StatusBadRequest},
		{"wrong version", `{"name": "x", "spec": {"version": "vinfra-spec/v9", "grid": {"cols": 2, "rows": 1}}}`, http.StatusBadRequest},
		{"bad fault", `{"name": "x", "spec": {"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "sharknado"}]}}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := call(t, svc, "POST", "/v1/sims", tc.body); rec.Code != tc.code {
				t.Fatalf("status %d (want %d): %s", rec.Code, tc.code, rec.Body)
			}
		})
	}
	create(t, svc, "dup", smallDoc)
	if rec := call(t, svc, "POST", "/v1/sims", `{"name": "dup", "spec": `+smallDoc+`}`); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", rec.Code)
	}
	if rec := call(t, svc, "GET", "/v1/sims/ghost", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown sim: %d", rec.Code)
	}
}

func TestStepAvailabilityEventsSpec(t *testing.T) {
	svc := newService(t, "")
	create(t, svc, "alpha", smallDoc)
	var st SimStatus
	callJSON(t, svc, "POST", "/v1/sims/alpha/step", `{"vrounds": 3}`, http.StatusOK, &st)
	if st.VRound != 3 {
		t.Fatalf("after step: vround %d, want 3", st.VRound)
	}
	if st.MeanAvailability != 1 {
		t.Fatalf("fault-free availability %.3f, want 1.0", st.MeanAvailability)
	}
	// Default step is one vround.
	callJSON(t, svc, "POST", "/v1/sims/alpha/step", "", http.StatusOK, &st)
	if st.VRound != 4 {
		t.Fatalf("default step: vround %d, want 4", st.VRound)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/step", `{"vrounds": 0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("zero step accepted: %d", rec.Code)
	}

	var avail struct {
		VRound int `json:"vround"`
		VNodes []struct {
			VNode        int     `json:"vnode"`
			Instances    int     `json:"Instances"`
			Availability float64 `json:"Availability"`
		} `json:"vnodes"`
	}
	callJSON(t, svc, "GET", "/v1/sims/alpha/availability", "", http.StatusOK, &avail)
	if avail.VRound != 4 || len(avail.VNodes) != 2 {
		t.Fatalf("availability %+v", avail)
	}
	for _, v := range avail.VNodes {
		if v.Availability != 1 {
			t.Fatalf("vnode %d availability %.3f, want 1.0", v.VNode, v.Availability)
		}
	}

	rec := call(t, svc, "GET", "/v1/sims/alpha/events", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("events: %d", rec.Code)
	}
	evs := rec.Body.String()
	if !strings.Contains(evs, `"created"`) || !strings.Contains(evs, `"stepped"`) {
		t.Fatalf("events missing created/stepped:\n%s", evs)
	}
	rec = call(t, svc, "GET", "/v1/sims/alpha/events?from=99", "")
	if strings.TrimSpace(rec.Body.String()) != "" {
		t.Fatalf("events from=99 should be empty, got:\n%s", rec.Body)
	}

	rec = call(t, svc, "GET", "/v1/sims/alpha/spec", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("spec: %d", rec.Code)
	}
	if _, err := spec.Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("effective spec does not re-parse: %v\n%s", err, rec.Body)
	}
}

func TestRunAndPause(t *testing.T) {
	svc := newService(t, "")
	create(t, svc, "alpha", smallDoc)
	var st SimStatus
	callJSON(t, svc, "POST", "/v1/sims/alpha/run", "", http.StatusAccepted, &st)
	deadline := time.Now().Add(10 * time.Second)
	for {
		callJSON(t, svc, "GET", "/v1/sims/alpha", "", http.StatusOK, &st)
		if st.VRound == 8 && !st.Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background run never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := call(t, svc, "GET", "/v1/sims/alpha/events", "")
	if !strings.Contains(rec.Body.String(), `"run_done"`) {
		t.Fatalf("no run_done event:\n%s", rec.Body)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/run", `{"target_vround": 3}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("backwards run target accepted: %d", rec.Code)
	}

	create(t, svc, "beta", smallDoc)
	callJSON(t, svc, "POST", "/v1/sims/beta/run", `{"target_vround": 8}`, http.StatusAccepted, nil)
	callJSON(t, svc, "POST", "/v1/sims/beta/pause", "", http.StatusOK, &st)
	if st.Running {
		t.Fatalf("paused sim still running: %+v", st)
	}
}

func TestFaultInjection(t *testing.T) {
	svc := newService(t, "")
	create(t, svc, "alpha", smallDoc)
	var st SimStatus
	callJSON(t, svc, "POST", "/v1/sims/alpha/faults",
		`{"kind": "crash_burst", "from": 150, "until": 250, "period": 30, "p": 0.5}`, http.StatusOK, &st)
	if st.Faults != 1 {
		t.Fatalf("faults %d, want 1", st.Faults)
	}
	rec := call(t, svc, "GET", "/v1/sims/alpha/spec", "")
	if !strings.Contains(rec.Body.String(), `"crash_burst"`) {
		t.Fatalf("injected fault missing from effective spec:\n%s", rec.Body)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/faults", `{"kind": "cell_jammer", "cells": 2}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("jammer injection accepted: %d", rec.Code)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/faults", `{"kind": "sharknado"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown fault kind accepted: %d", rec.Code)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/faults", `{"kind": "crash_burst", "p": 0.5, "cells": 1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("field misuse accepted: %d", rec.Code)
	}
}

func TestCheckpointEndpoints(t *testing.T) {
	stateless := newService(t, "")
	create(t, stateless, "alpha", smallDoc)
	if rec := call(t, stateless, "POST", "/v1/sims/alpha/checkpoint", ""); rec.Code != http.StatusConflict {
		t.Fatalf("stateless POST checkpoint: %d", rec.Code)
	}

	dir := t.TempDir()
	svc := newService(t, dir)
	create(t, svc, "alpha", smallDoc)
	callJSON(t, svc, "POST", "/v1/sims/alpha/step", `{"vrounds": 2}`, http.StatusOK, nil)
	rec := call(t, svc, "GET", "/v1/sims/alpha/checkpoint", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET checkpoint: %d", rec.Code)
	}
	if _, err := checkpoint.Decode(rec.Body.Bytes()); err != nil {
		t.Fatalf("served checkpoint does not decode: %v", err)
	}
	callJSON(t, svc, "POST", "/v1/sims/alpha/checkpoint", "", http.StatusOK, nil)
	if _, err := checkpoint.ReadFile(svc.ckptPath("alpha")); err != nil {
		t.Fatalf("persisted checkpoint unreadable: %v", err)
	}
}

func TestDelete(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t, dir)
	create(t, svc, "alpha", smallDoc)
	callJSON(t, svc, "POST", "/v1/sims/alpha/checkpoint", "", http.StatusOK, nil)
	callJSON(t, svc, "DELETE", "/v1/sims/alpha", "", http.StatusOK, nil)
	if rec := call(t, svc, "GET", "/v1/sims/alpha", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("status after delete: %d", rec.Code)
	}
	if rec := call(t, svc, "POST", "/v1/sims/alpha/step", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("step after delete: %d", rec.Code)
	}
	if _, err := os.Stat(svc.specPath("alpha")); !os.IsNotExist(err) {
		t.Fatalf("spec file survived delete: %v", err)
	}
	if _, err := os.Stat(svc.ckptPath("alpha")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file survived delete: %v", err)
	}
}

// TestRestartResumesTenants is the daemon crash-restart contract at the
// service layer: a fresh Service over the same state directory rebuilds
// every tenant from its persisted effective spec (including an injected
// fault) and resumes it from its last checkpoint, and the resumed run is
// byte-identical to a straight library run of the same effective spec.
func TestRestartResumesTenants(t *testing.T) {
	dir := t.TempDir()
	svc := newService(t, dir)
	create(t, svc, "alpha", smallDoc)
	callJSON(t, svc, "POST", "/v1/sims/alpha/step", `{"vrounds": 3}`, http.StatusOK, nil)
	callJSON(t, svc, "POST", "/v1/sims/alpha/faults",
		`{"kind": "crash_burst", "from": 300, "until": 350, "period": 30, "p": 0.5}`, http.StatusOK, nil)
	callJSON(t, svc, "POST", "/v1/sims/alpha/checkpoint", "", http.StatusOK, nil)
	effective := call(t, svc, "GET", "/v1/sims/alpha/spec", "").Body.Bytes()
	svc.Close() // the "crash": loops stop, state dir survives

	svc2 := newService(t, dir)
	var st SimStatus
	callJSON(t, svc2, "GET", "/v1/sims/alpha", "", http.StatusOK, &st)
	if st.VRound != 3 || st.Faults != 1 {
		t.Fatalf("recovered status %+v, want vround 3 with 1 fault", st)
	}
	callJSON(t, svc2, "POST", "/v1/sims/alpha/step", `{"vrounds": 5}`, http.StatusOK, &st)
	if st.VRound != 8 {
		t.Fatalf("resumed run ended at vround %d, want 8", st.VRound)
	}
	got := call(t, svc2, "GET", "/v1/sims/alpha/checkpoint", "").Body.Bytes()

	// Straight library run of the recovered effective spec.
	sp, err := spec.Parse(effective)
	if err != nil {
		t.Fatalf("effective spec: %v", err)
	}
	w, err := spec.Build(sp)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer w.Eng.Close()
	for w.VRound() < w.VRounds() {
		w.StepVRound()
	}
	if !bytes.Equal(got, w.Checkpoint().Encode()) {
		t.Fatal("restarted HTTP run diverged from the straight library run")
	}
}

// TestConcurrentTenants runs two identical tenants from goroutines while
// scraping metrics and availability — the isolation + race-cleanliness
// pin. Both tenants must finish byte-identical to each other.
func TestConcurrentTenants(t *testing.T) {
	svc := newService(t, "")
	create(t, svc, "a", smallDoc)
	create(t, svc, "b", smallDoc)

	done := make(chan error, 2)
	for _, name := range []string{"a", "b"} {
		name := name
		go func() {
			for i := 0; i < 8; i++ {
				rec := call(t, svc, "POST", "/v1/sims/"+name+"/step", `{"vrounds": 1}`)
				if rec.Code != http.StatusOK {
					done <- fmt.Errorf("%s step: %d %s", name, rec.Code, rec.Body)
					return
				}
			}
			done <- nil
		}()
	}
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 20; i++ {
			call(t, svc, "GET", "/metrics", "")
			call(t, svc, "GET", "/v1/sims/a/availability", "")
			call(t, svc, "GET", "/v1/sims", "")
		}
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	<-scrapeDone

	ca := call(t, svc, "GET", "/v1/sims/a/checkpoint", "").Body.Bytes()
	cb := call(t, svc, "GET", "/v1/sims/b/checkpoint", "").Body.Bytes()
	if len(ca) == 0 || !bytes.Equal(ca, cb) {
		t.Fatal("concurrent tenants with the same spec diverged")
	}

	// /metrics exposes per-vnode availability for both tenants.
	m := call(t, svc, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"vinfra_sims 2",
		`vinfra_vnode_availability{sim="a",vnode="0"} 1.0000`,
		`vinfra_vnode_availability{sim="a",vnode="1"} 1.0000`,
		`vinfra_vnode_availability{sim="b",vnode="0"} 1.0000`,
		`vinfra_vnode_availability{sim="b",vnode="1"} 1.0000`,
		`vinfra_sim_vround{sim="a"} 8`,
		`vinfra_sim_vround{sim="b"} 8`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	svc := newService(t, "")
	create(t, svc, "alpha", smallDoc)
	callJSON(t, svc, "POST", "/v1/sims/alpha/step", `{"vrounds": 2}`, http.StatusOK, nil)
	m := call(t, svc, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		"# TYPE vinfra_sim_rounds_total counter",
		"# TYPE vinfra_sim_wire_bytes_total counter",
		"# TYPE vinfra_sim_partition_seconds_total counter",
		"# TYPE vinfra_sim_vrounds_per_second gauge",
		`vinfra_sim_vrounds{sim="alpha"} 8`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m)
		}
	}
	// Stepped sims accumulate radio rounds and wire bytes.
	var rounds, bytesTotal float64
	for _, line := range strings.Split(m, "\n") {
		if strings.HasPrefix(line, `vinfra_sim_rounds_total{sim="alpha"}`) {
			fmt.Sscanf(line, `vinfra_sim_rounds_total{sim="alpha"} %g`, &rounds)
		}
		if strings.HasPrefix(line, `vinfra_sim_wire_bytes_total{sim="alpha"}`) {
			fmt.Sscanf(line, `vinfra_sim_wire_bytes_total{sim="alpha"} %g`, &bytesTotal)
		}
	}
	if rounds <= 0 || bytesTotal <= 0 {
		t.Fatalf("rounds_total %g, wire_bytes_total %g — want both positive", rounds, bytesTotal)
	}
}
