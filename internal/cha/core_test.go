package cha

import (
	"fmt"
	"testing"
)

// runInstance drives one full instance through core with the given channel
// observations and returns the output.
type instanceScript struct {
	proposal     Value
	ballots      []Ballot // ballots received (nil+collision=false => red)
	ballotColl   bool
	veto1, coll1 bool
	veto2, coll2 bool
}

func drive(c *Core, k Instance, s instanceScript) Output {
	own := c.Begin(k, s.proposal)
	ballots := s.ballots
	if ballots == nil && !s.ballotColl {
		// Default: this node is the leader and hears its own ballot.
		ballots = []Ballot{own}
	}
	c.ObserveBallots(ballots, s.ballotColl)
	c.ObserveVeto1(s.veto1, s.coll1)
	return c.ObserveVeto2(s.veto2, s.coll2)
}

func TestCleanInstanceIsGreen(t *testing.T) {
	c := NewCore()
	out := drive(c, 1, instanceScript{proposal: V("v1")})
	if out.Color != Green {
		t.Fatalf("color = %v, want green", out.Color)
	}
	if !out.Decided() {
		t.Fatal("clean instance must decide")
	}
	if v, ok := out.History.At(1); !ok || v.String() != "v1" {
		t.Errorf("history(1) = %q, %v", v, ok)
	}
	if c.Prev() != 1 {
		t.Errorf("prev = %d, want 1", c.Prev())
	}
}

func TestFigure2ColorTable(t *testing.T) {
	// The four rows of Figure 2: which phase fails -> final color ->
	// whether a history is output.
	tests := []struct {
		name   string
		script instanceScript
		color  Color
		decide bool
	}{
		{"ballot ok, veto1 ok, veto2 ok -> green, history",
			instanceScript{proposal: V("v")}, Green, true},
		{"ballot ok, veto1 ok, veto2 X -> yellow, bottom",
			instanceScript{proposal: V("v"), coll2: true}, Yellow, false},
		{"ballot ok, veto1 X -> orange, bottom",
			instanceScript{proposal: V("v"), coll1: true, veto2: true}, Orange, false},
		{"ballot X -> red, bottom",
			instanceScript{proposal: V("v"), ballotColl: true, veto1: true, veto2: true}, Red, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCore()
			out := drive(c, 1, tt.script)
			if out.Color != tt.color {
				t.Errorf("color = %v, want %v", out.Color, tt.color)
			}
			if out.Decided() != tt.decide {
				t.Errorf("decided = %v, want %v", out.Decided(), tt.decide)
			}
		})
	}
}

func TestEmptyBallotPhaseIsRed(t *testing.T) {
	c := NewCore()
	c.Begin(1, V("v"))
	c.ObserveBallots(nil, false) // M = ∅, no collision: still red (line 30)
	if !c.NeedVeto1() {
		t.Error("empty ballot set must designate red")
	}
}

func TestVetoObligations(t *testing.T) {
	c := NewCore()
	c.Begin(1, V("v"))
	c.ObserveBallots(nil, true) // red
	if !c.NeedVeto1() {
		t.Error("red node must veto in veto-1")
	}
	c.ObserveVeto1(true, false) // hears own veto; stays red
	if c.Status(1) != Red {
		t.Errorf("status = %v, want red (min(orange, red) = red)", c.Status(1))
	}
	if !c.NeedVeto2() {
		t.Error("red node must veto in veto-2")
	}

	c2 := NewCore()
	c2.Begin(1, V("v"))
	c2.ObserveBallots([]Ballot{{V: V("v")}}, false)
	if c2.NeedVeto1() {
		t.Error("non-red node must not veto in veto-1")
	}
	c2.ObserveVeto1(true, false) // someone else vetoed
	if c2.Status(1) != Orange {
		t.Errorf("status = %v, want orange", c2.Status(1))
	}
	if !c2.NeedVeto2() {
		t.Error("orange node must veto in veto-2")
	}
}

func TestYellowIsGoodButUndecided(t *testing.T) {
	c := NewCore()
	out := drive(c, 1, instanceScript{proposal: V("v"), veto2: true})
	if out.Color != Yellow {
		t.Fatalf("color = %v", out.Color)
	}
	if out.Decided() {
		t.Error("yellow must output ⊥")
	}
	// But prev advances: yellow is good.
	if c.Prev() != 1 {
		t.Errorf("prev = %d, want 1 (yellow is good)", c.Prev())
	}
}

func TestOrangeAndRedDoNotAdvancePrev(t *testing.T) {
	for _, tt := range []struct {
		name   string
		script instanceScript
	}{
		{"orange", instanceScript{proposal: V("v"), coll1: true, veto2: true}},
		{"red", instanceScript{proposal: V("v"), ballotColl: true, veto1: true, veto2: true}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			c := NewCore()
			drive(c, 1, tt.script)
			if c.Prev() != 0 {
				t.Errorf("prev = %d, want 0", c.Prev())
			}
		})
	}
}

func TestHistoryChainSkipsBadInstances(t *testing.T) {
	c := NewCore()
	// Instance 1 green, instance 2 red, instance 3 green.
	drive(c, 1, instanceScript{proposal: V("a")})
	drive(c, 2, instanceScript{proposal: V("b"), ballotColl: true, veto1: true, veto2: true})
	// At instance 3 the leader (this node) broadcasts prev=1.
	out := drive(c, 3, instanceScript{proposal: V("c")})
	if !out.Decided() {
		t.Fatal("instance 3 should decide")
	}
	h := out.History
	if v, ok := h.At(1); !ok || v.String() != "a" {
		t.Errorf("h(1) = %q,%v want a", v, ok)
	}
	if h.Includes(2) {
		t.Error("red instance 2 must be ⊥ in the history")
	}
	if v, ok := h.At(3); !ok || v.String() != "c" {
		t.Errorf("h(3) = %q,%v want c", v, ok)
	}
}

func TestAdoptedBallotPointerOverridesLocalChain(t *testing.T) {
	// A node that was orange at instance 2 adopts a leader ballot at 3
	// whose prev pointer includes 2 — the chain must follow the ballot's
	// pointer, not the node's own prev history.
	c := NewCore()
	drive(c, 1, instanceScript{proposal: V("a")}) // green, prev=1
	// Instance 2: ballot received but then vetoed into orange.
	c.Begin(2, V("b"))
	c.ObserveBallots([]Ballot{{V: V("b"), Prev: 1}}, false)
	c.ObserveVeto1(true, false) // orange
	out := c.ObserveVeto2(true, false)
	if out.Color != Orange || c.Prev() != 1 {
		t.Fatalf("setup: color=%v prev=%d", out.Color, c.Prev())
	}
	// Instance 3: leader was yellow at 2, so its ballot carries prev=2.
	c.Begin(3, V("c"))
	c.ObserveBallots([]Ballot{{V: V("c"), Prev: 2}}, false)
	c.ObserveVeto1(false, false)
	out = c.ObserveVeto2(false, false)
	if !out.Decided() {
		t.Fatal("instance 3 should decide")
	}
	h := out.History
	if v, ok := h.At(2); !ok || v.String() != "b" {
		t.Errorf("h(2) = %q,%v; the adopted chain must include instance 2", v, ok)
	}
	if v, ok := h.At(1); !ok || v.String() != "a" {
		t.Errorf("h(1) = %q,%v", v, ok)
	}
}

func TestMinBallotAdoption(t *testing.T) {
	c := NewCore()
	c.Begin(1, V("z"))
	c.ObserveBallots([]Ballot{{V: V("m"), Prev: 0}, {V: V("a"), Prev: 0}}, false)
	c.ObserveVeto1(false, false)
	out := c.ObserveVeto2(false, false)
	if v, _ := out.History.At(1); v.String() != "a" {
		t.Errorf("adopted %q, want minimum ballot a", v)
	}
}

func TestBeginPanicsOnNonIncreasingInstance(t *testing.T) {
	c := NewCore()
	c.Begin(1, V("a"))
	defer func() {
		if recover() == nil {
			t.Error("Begin(1) twice should panic")
		}
	}()
	c.Begin(1, V("b"))
}

func TestBrokenChainCounter(t *testing.T) {
	c := NewCore()
	// Simulate the impossible-under-completeness situation: adopt a ballot
	// whose prev pointer names an instance we never stored (we were red
	// there and — with a broken detector — the leader never learned).
	c.Begin(1, V("a"))
	c.ObserveBallots(nil, true)  // red at 1: no ballot stored
	c.ObserveVeto1(false, false) // vetoes lost, nothing detected (broken CD)
	c.ObserveVeto2(false, false)
	c.Begin(2, V("b"))
	c.ObserveBallots([]Ballot{{V: V("b"), Prev: 1}}, false)
	c.ObserveVeto1(false, false)
	out := c.ObserveVeto2(false, false)
	if c.BrokenChains == 0 {
		t.Error("dereferencing a missing ballot must increment BrokenChains")
	}
	if out.History.Includes(1) {
		t.Error("broken chain should not fabricate a value for instance 1")
	}
}

func TestGCBoundsRetainedState(t *testing.T) {
	c := NewCore()
	for k := Instance(1); k <= 100; k++ {
		out := drive(c, k, instanceScript{proposal: V(fmt.Sprintf("v%d", k))})
		if out.Color != Green {
			t.Fatalf("instance %d not green", k)
		}
		c.GC(out.Instance)
		if got := c.Retained(); got > 2 {
			t.Fatalf("instance %d: retained %d entries, want <= 2", k, got)
		}
	}
	if c.Floor() != 99 {
		t.Errorf("floor = %d, want 99", c.Floor())
	}
}

func TestGCHistoriesStartAboveFloor(t *testing.T) {
	c := NewCore()
	drive(c, 1, instanceScript{proposal: V("a")})
	drive(c, 2, instanceScript{proposal: V("b")})
	c.GC(2)
	out := drive(c, 3, instanceScript{proposal: V("c")})
	if !out.Decided() {
		t.Fatal("instance 3 should decide")
	}
	if out.History.Includes(1) {
		t.Error("GC'd instance 1 must not appear in new histories")
	}
	if !out.History.Includes(2) || !out.History.Includes(3) {
		t.Error("instances at/above the GC point must appear")
	}
	if c.BrokenChains != 0 {
		t.Errorf("GC must not be reported as a broken chain: %d", c.BrokenChains)
	}
}

func TestNoGCKeepsEverything(t *testing.T) {
	c := NewCore()
	for k := Instance(1); k <= 50; k++ {
		drive(c, k, instanceScript{proposal: V("v")})
	}
	if got := c.Retained(); got < 50 {
		t.Errorf("without GC, retained = %d, want >= 50", got)
	}
}

func TestStatusDefaultsGreen(t *testing.T) {
	c := NewCore()
	if c.Status(42) != Green {
		t.Error("untouched instances must default to green (Figure 1 line 7)")
	}
}
