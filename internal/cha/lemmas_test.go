package cha_test

// Scenario tests for the proof obligations of Section 3.6, staged over the
// real radio with scripted adversaries. Each test names the lemma it
// exercises.

import (
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// stagedCluster builds a 3-node cluster (leader 0, observers 1 and 2) with
// the given script and eventually-accurate detection.
func stagedCluster(t *testing.T, script *radio.Script, racc sim.Round) *cluster {
	t.Helper()
	factory, _ := cm.NewFixed(0)
	return newCluster(t, clusterOpts{
		n:         3,
		cmFactory: factory,
		detector:  cd.EventuallyAC{Racc: racc},
		adversary: script,
	})
}

// Lemma 5, first clause: if some node designates k green, every node
// designates it green or yellow.
func TestLemma5GreenImpliesOthersAtLeastYellow(t *testing.T) {
	script := &radio.Script{}
	script.Collide(2, 2) // spurious ± at node 2 in veto-2 of instance 1
	c := stagedCluster(t, script, 100)
	c.runInstances(1)

	colors := []cha.Color{
		c.replicas[0].Core().Status(1),
		c.replicas[1].Core().Status(1),
		c.replicas[2].Core().Status(1),
	}
	hasGreen := false
	for _, col := range colors {
		if col == cha.Green {
			hasGreen = true
		}
	}
	if !hasGreen {
		t.Fatalf("setup failed: no green node (%v)", colors)
	}
	for i, col := range colors {
		if col != cha.Green && col != cha.Yellow {
			t.Errorf("node %d: color %v alongside a green node (Lemma 5)", i, col)
		}
	}
}

// Lemma 5, second clause: if some node designates k red, every node
// designates it red or orange.
func TestLemma5RedImpliesOthersAtMostOrange(t *testing.T) {
	script := &radio.Script{}
	script.DropAll(0, 2) // node 2 misses the ballot of instance 1
	c := stagedCluster(t, script, 100)
	c.runInstances(1)

	colors := []cha.Color{
		c.replicas[0].Core().Status(1),
		c.replicas[1].Core().Status(1),
		c.replicas[2].Core().Status(1),
	}
	if colors[2] != cha.Red {
		t.Fatalf("setup failed: dropped node is %v, want red", colors[2])
	}
	for i, col := range colors {
		if col != cha.Red && col != cha.Orange {
			t.Errorf("node %d: color %v alongside a red node (Lemma 5)", i, col)
		}
	}
}

// Lemma 6: an instance included in an output history is not designated red
// by any node — even the node that lost the ballot reconstructs the value
// later via the adopted ballot chain.
func TestLemma6IncludedInstanceNeverRed(t *testing.T) {
	script := &radio.Script{}
	script.Collide(2, 1) // node 1 yellow at instance 1 (1 stays non-red)
	c := stagedCluster(t, script, 100)
	c.runInstances(5)

	// All nodes eventually output histories including instance 1.
	for i, rep := range c.replicas {
		h := rep.Core().CalculateHistory()
		if !h.Includes(1) {
			t.Errorf("node %d: history excludes instance 1", i)
		}
		if rep.Core().Status(1) == cha.Red {
			t.Errorf("node %d designates an included instance red (Lemma 6)", i)
		}
	}
}

// Lemma 7/8: two histories that both include an instance agree on it and
// on every earlier instance.
func TestLemma8CommonPrefixAgreement(t *testing.T) {
	script := &radio.Script{}
	script.DropAll(3, 1) // node 1 red at instance 2 (rounds 3-5)
	script.Collide(8, 2) // node 2 yellow at instance 3 (rounds 6-8)
	c := stagedCluster(t, script, 100)
	c.runInstances(6)

	h0 := c.replicas[0].Core().CalculateHistory()
	h1 := c.replicas[1].Core().CalculateHistory()
	h2 := c.replicas[2].Core().CalculateHistory()
	top := cha.Instance(6)
	if !h0.PrefixEqual(h1, top) || !h0.PrefixEqual(h2, top) {
		t.Errorf("histories diverge:\n h0=%v\n h1=%v\n h2=%v", h0, h1, h2)
	}
}

// Lemma 9: once an instance is green at some node, every later history
// includes it.
func TestLemma9GreenInstancesPersist(t *testing.T) {
	script := &radio.Script{}
	// Disturb several later instances; instance 1 is clean (green at all).
	script.DropAll(3, 1)
	script.Collide(5, 2)
	script.Collide(7, 0)
	c := stagedCluster(t, script, 100)
	c.runInstances(8)

	for i, rep := range c.replicas {
		if rep.Core().Status(1) != cha.Green {
			t.Fatalf("setup failed: node %d instance 1 is %v", i, rep.Core().Status(1))
		}
		h := rep.Core().CalculateHistory()
		if !h.Includes(1) {
			t.Errorf("node %d: green instance 1 missing from a later history (Lemma 9)", i)
		}
	}
}

// Theorem 12 scenario: instability window, then stability — every node
// decides every instance after k_st and all earlier gaps resolve to the
// same assignment.
func TestTheorem12StabilizationScenario(t *testing.T) {
	script := &radio.Script{}
	// Instance 1 disturbed at everyone (forced ±), instances 2+ clean.
	script.Collide(2, 0)
	script.Collide(2, 1)
	script.Collide(2, 2)
	c := stagedCluster(t, script, 3)
	c.runInstances(10)

	rep := c.rec.Report()
	requireClean(t, rep)
	if !rep.LivenessOK {
		t.Fatal("no stabilization")
	}
	if rep.Stabilization > 2 {
		t.Errorf("k_st = %d, want <= 2 (only instance 1 was disturbed)", rep.Stabilization)
	}
	// Instance 1 was yellow everywhere (good): it is included in later
	// histories with an agreed value, despite nobody deciding it at the
	// time.
	h := c.replicas[0].Core().CalculateHistory()
	if !h.Includes(1) {
		t.Error("yellow instance 1 should be resolved by later chains")
	}
}

// The orange/red boundary: a node that misses only the veto-1 phase
// (orange) must still veto in veto-2, dragging everyone to yellow — so no
// node outputs while any node is in the dark about the ballot.
func TestOrangeNodeVetoesInVeto2(t *testing.T) {
	script := &radio.Script{}
	script.Collide(1, 1) // node 1 sees ± in veto-1 of instance 1
	c := stagedCluster(t, script, 100)
	c.runInstances(1)

	if got := c.replicas[1].Core().Status(1); got != cha.Orange {
		t.Fatalf("node 1 = %v, want orange", got)
	}
	// Its veto-2 broadcast downgrades the leader and node 2 to yellow.
	for _, i := range []int{0, 2} {
		if got := c.replicas[i].Core().Status(1); got != cha.Yellow {
			t.Errorf("node %d = %v, want yellow (must hear the orange node's veto)", i, got)
		}
	}
	rep := c.rec.Report()
	if rep.DecidedRate != 0 {
		t.Errorf("nobody may decide instance 1; decided rate = %v", rep.DecidedRate)
	}
}

// Crash in the middle of the veto sequence: a red node that crashes after
// veto-1 has already poisoned the instance; outputs stay consistent.
func TestRedNodeCrashMidInstance(t *testing.T) {
	script := &radio.Script{}
	script.DropAll(0, 2) // node 2 red at instance 1
	c := stagedCluster(t, script, 100)
	// Run the ballot and veto-1 rounds, then crash node 2 before veto-2.
	c.eng.Run(2)
	c.eng.Crash(c.ids[2])
	c.rec.MarkCrashed(c.ids[2])
	c.eng.Run(1)
	c.runInstances(5)

	rep := c.rec.Report()
	requireClean(t, rep)
	// Instance 1 was poisoned by the veto-1 veto: survivors are orange
	// (they heard the veto and then vetoed in veto-2 themselves).
	for _, i := range []int{0, 1} {
		if got := c.replicas[i].Core().Status(1); got.Good() {
			t.Errorf("node %d designates poisoned instance 1 %v", i, got)
		}
	}
	if !rep.LivenessOK {
		t.Error("survivors should stabilize after the crash")
	}
}
