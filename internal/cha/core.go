package cha

import (
	"slices"

	"vinfra/internal/wire"
)

// Core is the round-agnostic CHAP state machine of Figure 1. It holds the
// per-instance status (color) and ballot arrays, the prev-instance pointer,
// and the calculate-history function; callers drive it through the three
// phases of each instance (Begin/ObserveBallots, NeedVeto1/ObserveVeto1,
// NeedVeto2/ObserveVeto2) and schedule the phases onto actual communication
// rounds themselves.
//
// Two schedulers exist in this repository: Replica (this package) runs one
// phase per radio round — the plain CHA setting of Section 3 — and the
// virtual infrastructure emulator (internal/vi) embeds the phases into its
// eleven-phase virtual round, stretching the ballot phase of unscheduled
// instances over s+2 slots (Section 4.3).
type Core struct {
	k    Instance // current instance (Figure 1 line 6: k)
	prev Instance // most recent good instance (prev-instance)

	status  map[Instance]Color // absent = green (Figure 1 line 7)
	ballots map[Instance]Ballot

	floor Instance // garbage-collection floor (Section 3.5); 0 = keep all

	// BrokenChains counts calculate-history walks that dereferenced a
	// missing ballot. With complete collision detectors this must remain
	// zero (Lemma 6); the Null-detector ablation drives it positive.
	BrokenChains int
}

// NewCore returns a fresh CHAP state machine with no completed instances.
func NewCore() *Core {
	return &Core{
		status:  make(map[Instance]Color),
		ballots: make(map[Instance]Ballot),
	}
}

// Instance returns the instance currently in progress (0 before Begin).
func (c *Core) Instance() Instance { return c.k }

// Prev returns the prev-instance pointer: the most recent instance this
// node designated good (yellow or green), or 0.
func (c *Core) Prev() Instance { return c.prev }

// Status returns the color this node assigned to instance k (green if the
// instance was never downgraded).
func (c *Core) Status(k Instance) Color {
	if s, ok := c.status[k]; ok {
		return s
	}
	return Green
}

func (c *Core) downgrade(k Instance, to Color) {
	c.status[k] = minColor(to, c.Status(k))
}

// Begin starts instance k with proposal v and returns the ballot this node
// would broadcast if advised active (Figure 1 lines 13–19). Instances must
// be begun in increasing order.
func (c *Core) Begin(k Instance, v Value) Ballot {
	if k <= c.k {
		panic("cha: Begin called with non-increasing instance")
	}
	c.k = k
	return Ballot{V: v, Prev: c.prev}
}

// ObserveBallots closes the ballot phase of the current instance with the
// set of ballots received and the collision indication (Figure 1
// lines 29–32): no ballot or a collision designates the instance red;
// otherwise the minimum ballot is adopted.
func (c *Core) ObserveBallots(received []Ballot, collision bool) {
	if len(received) == 0 || collision {
		c.downgrade(c.k, Red)
		return
	}
	c.ballots[c.k] = MinBallot(received)
}

// NeedVeto1 reports whether this node must broadcast a veto in the first
// veto phase (Figure 1 line 21: status red).
func (c *Core) NeedVeto1() bool { return c.Status(c.k) == Red }

// ObserveVeto1 closes the first veto phase: a received veto or a collision
// downgrades the instance to (at most) orange (Figure 1 lines 33–35).
func (c *Core) ObserveVeto1(sawVeto, collision bool) {
	if sawVeto || collision {
		c.downgrade(c.k, Orange)
	}
}

// NeedVeto2 reports whether this node must broadcast a veto in the second
// veto phase (Figure 1 line 25: status red or orange).
func (c *Core) NeedVeto2() bool { return c.Status(c.k) <= Orange }

// Output is the result of one completed instance at one node.
type Output struct {
	Instance Instance
	// History is the output history, or nil for ⊥ (non-green instances).
	History *History
	// Color is the final color this node assigned to the instance.
	Color Color
	// Floor is the garbage-collection floor at output time: positions at
	// or below it have been folded into a checkpoint and are absent from
	// History (always 0 without checkpointing).
	Floor Instance
}

// Decided reports whether the instance produced a history (≠ ⊥).
func (o Output) Decided() bool { return o.History != nil }

// ObserveVeto2 closes the second veto phase and the instance (Figure 1
// lines 36–45): a veto or collision downgrades to (at most) yellow; good
// instances advance the prev-instance pointer; the history is calculated;
// and the output is the history if the instance stayed green, ⊥ otherwise.
func (c *Core) ObserveVeto2(sawVeto, collision bool) Output {
	if sawVeto || collision {
		c.downgrade(c.k, Yellow)
	}
	st := c.Status(c.k)
	if st.Good() {
		c.prev = c.k
	}
	h := c.calculateHistory(c.k, c.prev)
	out := Output{Instance: c.k, Color: st, Floor: c.floor}
	if st == Green {
		out.History = h
	}
	return out
}

// CalculateHistory computes this node's current best history estimate:
// the chain of prev-instance pointers starting from its own prev pointer,
// evaluated at the current instance. The virtual-node emulation uses it to
// materialize the virtual node's state between outputs (Section 3.3).
func (c *Core) CalculateHistory() *History {
	return c.calculateHistory(c.k, c.prev)
}

// calculateHistory is the calculate-history function of Figure 1
// lines 46–54: walk from instance down to the GC floor, adopting the
// ballot value wherever the chain of prev pointers passes, ⊥ elsewhere.
func (c *Core) calculateHistory(instance, prev Instance) *History {
	h := &History{top: instance, vals: make(map[Instance]Value)}
	p := prev
	for k := instance; k > c.floor; k-- {
		if k != p {
			continue
		}
		b, ok := c.ballots[k]
		if !ok {
			// With complete collision detectors this cannot happen
			// (Lemma 6: an instance on the chain is designated good by
			// some node, hence not red by any, hence every node adopted
			// its ballot). Count it and stop the walk.
			c.BrokenChains++
			break
		}
		h.vals[k] = b.V
		p = b.Prev
	}
	return h
}

// Retained returns the number of per-instance entries currently held — the
// local space usage that Section 3.5's checkpointing bounds.
func (c *Core) Retained() int {
	return len(c.status) + len(c.ballots)
}

// GC garbage-collects all per-instance state below instance upTo
// (Section 3.5). It is only safe to call when this node designated upTo
// green: a green instance is on every future history chain (Lemma 9), so
// earlier ballots can never be dereferenced again. Histories calculated
// after GC contain only instances above the floor; callers carry the folded
// prefix as a checkpoint digest.
func (c *Core) GC(upTo Instance) int {
	removed := 0
	for k := range c.status {
		if k < upTo {
			delete(c.status, k)
			removed++
		}
	}
	for k := range c.ballots {
		if k < upTo {
			delete(c.ballots, k)
			removed++
		}
	}
	if upTo-1 > c.floor {
		c.floor = upTo - 1
	}
	return removed
}

// Floor returns the GC floor: instances at or below it have been folded
// into the checkpoint and are no longer materialized in histories.
func (c *Core) Floor() Instance { return c.floor }

// ResetAt reinitializes the state machine as of instance k: all prior
// instances are treated as folded away (floor = k) and the next instance
// begun must be k+1. It is the agreement-layer half of the virtual node
// reset protocol (Section 4.3).
func (c *Core) ResetAt(k Instance) {
	c.k = k
	c.prev = 0
	c.floor = k
	c.status = make(map[Instance]Color)
	c.ballots = make(map[Instance]Ballot)
}

// CoreSnapshot is a serializable copy of a Core's per-instance state above
// its floor, used for join state transfer (Section 4.3). Entries are sorted
// by instance so snapshots of equal cores are deeply equal.
type CoreSnapshot struct {
	Floor, K, Prev Instance
	BallotKeys     []Instance
	Ballots        []Ballot
	StatusKeys     []Instance
	Statuses       []Color
}

// WireSize returns the exact size of the snapshot's wire encoding
// (AppendTo appends exactly this many bytes).
func (s CoreSnapshot) WireSize() int {
	size := wire.UvarintSize(uint64(s.Floor)) +
		wire.UvarintSize(uint64(s.K)) +
		wire.UvarintSize(uint64(s.Prev)) +
		wire.UvarintSize(uint64(len(s.BallotKeys))) +
		wire.UvarintSize(uint64(len(s.StatusKeys)))
	for i, k := range s.BallotKeys {
		b := s.Ballots[i]
		size += wire.UvarintSize(uint64(k)) +
			wire.BytesSize(b.V.Len()) +
			wire.UvarintSize(uint64(b.Prev))
	}
	for i, k := range s.StatusKeys {
		size += wire.UvarintSize(uint64(k)) + wire.UvarintSize(uint64(s.Statuses[i]))
	}
	return size
}

// AppendTo appends the snapshot's canonical wire encoding: the three
// pointers, then the ballot entries (instance, value, prev) in instance
// order, then the status entries (instance, color) in instance order.
// Snapshot always emits sorted keys, so equal cores encode identically.
func (s CoreSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.Floor))
	dst = wire.AppendUvarint(dst, uint64(s.K))
	dst = wire.AppendUvarint(dst, uint64(s.Prev))
	dst = wire.AppendUvarint(dst, uint64(len(s.BallotKeys)))
	for i, k := range s.BallotKeys {
		b := s.Ballots[i]
		dst = wire.AppendUvarint(dst, uint64(k))
		dst = wire.AppendBytes(dst, b.V.Bytes())
		dst = wire.AppendUvarint(dst, uint64(b.Prev))
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.StatusKeys)))
	for i, k := range s.StatusKeys {
		dst = wire.AppendUvarint(dst, uint64(k))
		dst = wire.AppendUvarint(dst, uint64(s.Statuses[i]))
	}
	return dst
}

// DecodeCoreSnapshot parses one snapshot from d (the inverse of AppendTo).
// It validates counts against the remaining input and the color range, so
// adversarial bytes yield an error, never a panic or an outsized
// allocation.
func DecodeCoreSnapshot(d *wire.Decoder) (CoreSnapshot, error) {
	var s CoreSnapshot
	s.Floor = Instance(d.Uvarint())
	s.K = Instance(d.Uvarint())
	s.Prev = Instance(d.Uvarint())
	nb := d.Uvarint()
	if d.Err() != nil || nb > uint64(d.Rem()) {
		return CoreSnapshot{}, wire.ErrMalformed
	}
	for i := uint64(0); i < nb; i++ {
		k := Instance(d.Uvarint())
		v := d.Bytes()
		prev := Instance(d.Uvarint())
		if d.Err() != nil {
			return CoreSnapshot{}, d.Err()
		}
		s.BallotKeys = append(s.BallotKeys, k)
		s.Ballots = append(s.Ballots, Ballot{V: ValueOf(append([]byte(nil), v...)), Prev: prev})
	}
	ns := d.Uvarint()
	if d.Err() != nil || ns > uint64(d.Rem()) {
		return CoreSnapshot{}, wire.ErrMalformed
	}
	for i := uint64(0); i < ns; i++ {
		k := Instance(d.Uvarint())
		c := Color(d.Uvarint())
		if d.Err() != nil {
			return CoreSnapshot{}, d.Err()
		}
		if c < Red || c > Green {
			return CoreSnapshot{}, wire.ErrMalformed
		}
		s.StatusKeys = append(s.StatusKeys, k)
		s.Statuses = append(s.Statuses, c)
	}
	return s, nil
}

// Snapshot captures the core's current state.
func (c *Core) Snapshot() CoreSnapshot {
	s := CoreSnapshot{Floor: c.floor, K: c.k, Prev: c.prev}
	s.BallotKeys = sortedKeys(c.ballots)
	s.Ballots = make([]Ballot, len(s.BallotKeys))
	for i, k := range s.BallotKeys {
		s.Ballots[i] = c.ballots[k]
	}
	s.StatusKeys = sortedKeys(c.status)
	s.Statuses = make([]Color, len(s.StatusKeys))
	for i, k := range s.StatusKeys {
		s.Statuses[i] = c.status[k]
	}
	return s
}

// RestoreCore builds a Core from a snapshot (the joiner's side of state
// transfer).
func RestoreCore(s CoreSnapshot) *Core {
	c := NewCore()
	c.floor = s.Floor
	c.k = s.K
	c.prev = s.Prev
	for i, k := range s.BallotKeys {
		c.ballots[k] = s.Ballots[i]
	}
	for i, k := range s.StatusKeys {
		c.status[k] = s.Statuses[i]
	}
	return c
}

func sortedKeys[V any](m map[Instance]V) []Instance {
	keys := make([]Instance, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
