// Package cha implements Convergent History Agreement (CHA), the paper's
// core contribution (Section 3): an iterated agreement abstraction for
// collision-prone single-hop radio networks, and CHAP, the protocol of
// Figure 1 that solves it in three communication rounds per instance with
// constant-size messages.
//
// Each agreement instance k either outputs a history — a partial map from
// instance indexes to values — or ⊥. The guarantees (Section 3.2) are:
//
//   - Validity: every value in an output history was proposed for the
//     corresponding instance.
//   - Agreement: any two output histories agree on their common prefix.
//   - Liveness: once the channel, collision detectors, and contention
//     manager stabilize, every instance outputs a history that includes
//     every instance since stabilization.
package cha

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"vinfra/internal/wire"
)

// Value is a proposal value, an element of the totally ordered domain V:
// an immutable byte string under the bytewise ordering, carrying a cached
// FNV-1a digest of its contents. The empty value is legal (distinct from
// ⊥, which is represented by absence).
//
// The digest is computed once at construction and reused every time the
// value is folded into a history digest, so digesting a history prefix
// costs O(positions), not O(total value bytes) — the state cache and the
// checkpointing variant digest prefixes every virtual round.
//
// Values treat their bytes as immutable: constructors own or copy their
// input, and Bytes returns a view callers must not mutate.
type Value struct {
	b []byte
	d wire.Digest // FNV-1a of b; 0 only for the zero Value (computed lazily)
}

// ValueOf wraps b as a Value, taking ownership (b must not be mutated
// afterwards) and caching its digest.
func ValueOf(b []byte) Value {
	return Value{b: b, d: wire.DigestOf(b)}
}

// V builds a Value from a string (copying it). It is the literal-friendly
// constructor for tests and proposal functions.
func V(s string) Value { return ValueOf([]byte(s)) }

// Bytes returns the value's byte content as a read-only view.
func (v Value) Bytes() []byte { return v.b }

// String returns the value's bytes as a string.
func (v Value) String() string { return string(v.b) }

// Len returns the value's length in bytes.
func (v Value) Len() int { return len(v.b) }

// Digest returns the cached FNV-1a digest of the value's bytes.
func (v Value) Digest() wire.Digest {
	if v.d == 0 && len(v.b) == 0 {
		return wire.NewDigest()
	}
	return v.d
}

// Equal reports bytewise equality. The cached digests reject unequal
// values without comparing bytes.
func (v Value) Equal(o Value) bool {
	if len(v.b) != len(o.b) {
		return false
	}
	if v.d != 0 && o.d != 0 && v.d != o.d {
		return false
	}
	return bytes.Equal(v.b, o.b)
}

// Compare orders values bytewise (the total order of the domain V).
func (v Value) Compare(o Value) int { return bytes.Compare(v.b, o.b) }

// Instance indexes an agreement instance; instances are numbered from 1.
// Instance 0 is the sentinel meaning "no instance" (the initial
// prev-instance of Figure 1).
type Instance int

// Color is the per-instance status lattice of CHAP (Figure 1):
// red < orange < yellow < green. A node's color for an instance reflects
// its local knowledge about other nodes' knowledge of the instance;
// downgrades move toward red via min, and the protocol maintains that no
// two nodes' colors for the same instance differ by more than one shade
// (Property 4 / Lemma 5).
type Color uint8

// Colors, in lattice order.
const (
	Red Color = iota + 1
	Orange
	Yellow
	Green
)

// String implements fmt.Stringer.
func (c Color) String() string {
	switch c {
	case Red:
		return "red"
	case Orange:
		return "orange"
	case Yellow:
		return "yellow"
	case Green:
		return "green"
	default:
		return fmt.Sprintf("color(%d)", uint8(c))
	}
}

// Good reports whether the color designates a good instance (yellow or
// green), i.e. one at which the prev-instance pointer advances.
func (c Color) Good() bool { return c >= Yellow }

// minColor returns the darker (smaller) of two colors — the downgrade
// operation of Figure 1 lines 35 and 38.
func minColor(a, b Color) Color {
	if a < b {
		return a
	}
	return b
}

// Ballot is the constant-size ballot message payload of Figure 1 line 16:
// the proposal for the current instance together with the broadcaster's
// prev-instance pointer.
type Ballot struct {
	V    Value
	Prev Instance
}

// Less orders ballots lexicographically by (V, Prev); CHAP receivers adopt
// the minimum ballot deterministically (Figure 1 line 32).
func (b Ballot) Less(o Ballot) bool {
	if c := b.V.Compare(o.V); c != 0 {
		return c < 0
	}
	return b.Prev < o.Prev
}

// Equal reports whether two ballots carry the same value and prev pointer.
// (Ballot holds a byte-backed Value, so == does not apply.)
func (b Ballot) Equal(o Ballot) bool {
	return b.Prev == o.Prev && b.V.Equal(o.V)
}

// MinBallot returns the minimum of a non-empty ballot set.
func MinBallot(bs []Ballot) Ballot {
	min := bs[0]
	for _, b := range bs[1:] {
		if b.Less(min) {
			min = b
		}
	}
	return min
}

// History is an output of a CHA instance: a function from instances
// 1..Top() to Value-or-⊥, represented sparsely (absent = ⊥). Histories are
// immutable once published by the protocol.
type History struct {
	top  Instance
	vals map[Instance]Value
}

// NewHistory builds a history with the given top instance and entries; it
// is exported for tests and for baseline implementations.
func NewHistory(top Instance, vals map[Instance]Value) *History {
	cp := make(map[Instance]Value, len(vals))
	for k, v := range vals {
		if k >= 1 && k <= top {
			cp[k] = v
		}
	}
	return &History{top: top, vals: cp}
}

// Top returns the instance this history was output for; entries beyond Top
// are undefined.
func (h *History) Top() Instance { return h.top }

// At returns the value at instance k and whether the history includes k
// (false means ⊥).
func (h *History) At(k Instance) (Value, bool) {
	v, ok := h.vals[k]
	return v, ok
}

// Includes reports whether h(k) != ⊥.
func (h *History) Includes(k Instance) bool {
	_, ok := h.vals[k]
	return ok
}

// Included returns the included instances in increasing order.
func (h *History) Included() []Instance {
	out := make([]Instance, 0, len(h.vals))
	for k := range h.vals {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of included instances.
func (h *History) Len() int { return len(h.vals) }

// PrefixEqual reports whether h and o agree on every instance up to and
// including k (both the included values and the ⊥ positions) — the
// Agreement relation of Section 3.2.
func (h *History) PrefixEqual(o *History, k Instance) bool {
	for i := Instance(1); i <= k; i++ {
		v1, ok1 := h.At(i)
		v2, ok2 := o.At(i)
		if ok1 != ok2 || !v1.Equal(v2) {
			return false
		}
	}
	return true
}

// foldPosition chains one history position into a running digest. Because
// the digest is a strict position-by-position fold, folding a history in
// segments (as the checkpointing variant does, Section 3.5) produces the
// same value as folding it in one pass. Present positions fold the value's
// cached digest and length rather than its bytes, so re-digesting a prefix
// never re-hashes full proposal values (and, unlike the old hash/fnv
// implementation, allocates nothing).
func foldPosition(d uint64, k Instance, v Value, present bool) uint64 {
	h := wire.NewDigest().FoldUint64(d).FoldUint64(uint64(k))
	if present {
		h = h.FoldByte(1).FoldUint64(uint64(v.Digest())).FoldUint64(uint64(v.Len()))
	} else {
		h = h.FoldByte(0)
	}
	return uint64(h)
}

// DigestRange folds positions from..to (inclusive, ⊥ positions included)
// into a 64-bit digest seeded by prior. Chaining segment digests equals a
// single-pass digest over the union.
func (h *History) DigestRange(from, to Instance, prior uint64) uint64 {
	d := prior
	for i := from; i <= to; i++ {
		v, ok := h.At(i)
		d = foldPosition(d, i, v, ok)
	}
	return d
}

// DigestUpTo folds the history's prefix up to and including k into a
// 64-bit digest, seeded by prior. It is the checkpoint digest of the
// garbage-collected variant (Section 3.5).
func (h *History) DigestUpTo(k Instance, prior uint64) uint64 {
	return h.DigestRange(1, k, prior)
}

// Digest folds the entire history (up to Top) into a 64-bit digest.
func (h *History) Digest() uint64 { return h.DigestUpTo(h.top, 0) }

// String renders the history as e.g. "[1:a 2:⊥ 3:b]" for diagnostics.
func (h *History) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := Instance(1); i <= h.top; i++ {
		if i > 1 {
			sb.WriteByte(' ')
		}
		if v, ok := h.At(i); ok {
			fmt.Fprintf(&sb, "%d:%s", i, v.String())
		} else {
			fmt.Fprintf(&sb, "%d:⊥", i)
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
