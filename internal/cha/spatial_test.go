package cha_test

import (
	"fmt"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// TestSpatialReuseTwoGroups runs two independent CHA groups far enough
// apart (beyond R2) that they share the channel without interference —
// the spatial reuse the virtual infrastructure's schedule exploits. Both
// groups must behave exactly as if they were alone.
func TestSpatialReuseTwoGroups(t *testing.T) {
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)

	buildGroup := func(center geo.Point, leader sim.NodeID) (*cha.Recorder, []*cha.Replica) {
		rec := cha.NewRecorder()
		factory, _ := cm.NewFixed(leader)
		var reps []*cha.Replica
		for i := 0; i < 3; i++ {
			i := i
			pos := geo.Point{X: center.X + float64(i), Y: center.Y}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				rep := cha.NewReplica(env, cha.Config{
					Propose: rec.WrapPropose(func(k cha.Instance) cha.Value {
						return cha.V(fmt.Sprintf("g%v-n%d-%d", center, i, k))
					}),
					CM:       factory(env),
					OnOutput: rec.OutputFunc(env.ID()),
				})
				reps = append(reps, rep)
				return rep
			})
		}
		return rec, reps
	}

	// Group A at the origin (IDs 0-2), group B 100 units away (IDs 3-5).
	recA, _ := buildGroup(geo.Point{}, 0)
	recB, _ := buildGroup(geo.Point{X: 100}, 3)

	eng.Run(30 * cha.RoundsPerInstance)

	for name, rec := range map[string]*cha.Recorder{"A": recA, "B": recB} {
		rep := rec.Report()
		if v := rep.Violations(); v != "" {
			t.Errorf("group %s: %s", name, v)
		}
		if rep.DecidedRate != 1 {
			t.Errorf("group %s: decided rate %v (cross-group interference?)", name, rep.DecidedRate)
		}
	}
}

// TestTwoGroupsWithinInterferenceRange places the groups close enough that
// their ballot phases collide: without a coordinating schedule, both
// groups' progress collapses — exactly why the emulation's schedule
// separates neighboring virtual nodes (Section 4.1).
func TestTwoGroupsWithinInterferenceRange(t *testing.T) {
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)

	build := func(center geo.Point, leader sim.NodeID) *cha.Recorder {
		rec := cha.NewRecorder()
		factory, _ := cm.NewFixed(leader)
		for i := 0; i < 2; i++ {
			i := i
			pos := geo.Point{X: center.X + float64(i), Y: center.Y}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return cha.NewReplica(env, cha.Config{
					Propose: rec.WrapPropose(func(k cha.Instance) cha.Value {
						return cha.V(fmt.Sprintf("n%d-%d", i, k))
					}),
					CM:       factory(env),
					OnOutput: rec.OutputFunc(env.ID()),
				})
			})
		}
		return rec
	}

	// 15 units apart: beyond R1 (no ballots cross) but within R2 (mutual
	// jamming).
	recA := build(geo.Point{}, 0)
	recB := build(geo.Point{X: 15}, 2)
	eng.Run(20 * cha.RoundsPerInstance)

	repA, repB := recA.Report(), recB.Report()
	// Safety must hold regardless.
	if repA.AgreementViolations+repB.AgreementViolations > 0 {
		t.Error("interference must never violate safety")
	}
	// But progress collapses: the two fixed leaders jam each other's
	// ballot phases forever.
	if repA.DecidedRate > 0 || repB.DecidedRate > 0 {
		t.Errorf("expected zero progress under mutual jamming, got %v / %v",
			repA.DecidedRate, repB.DecidedRate)
	}
}
