package cha

import (
	"vinfra/internal/cm"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// RoundsPerInstance is the number of communication rounds CHAP uses per
// agreement instance (Theorem 14: a constant — ballot, veto-1, veto-2).
const RoundsPerInstance = 3

// Phase indexes the three phases within an instance.
type Phase int

// Phases of one CHAP instance.
const (
	PhaseBallot Phase = iota
	PhaseVeto1
	PhaseVeto2
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseBallot:
		return "ballot"
	case PhaseVeto1:
		return "veto-1"
	case PhaseVeto2:
		return "veto-2"
	default:
		return "phase(?)"
	}
}

// PhaseOf maps a radio round to its (instance, phase) pair under the plain
// three-rounds-per-instance schedule of Section 3.
func PhaseOf(r sim.Round) (Instance, Phase) {
	return Instance(r/RoundsPerInstance) + 1, Phase(r % RoundsPerInstance)
}

// BallotMsg carries a ballot on the wire: the length-prefixed proposal
// value plus the prev-instance pointer, which the paper counts as constant
// (footnote: "we consider an array index to be of constant size").
type BallotMsg struct {
	B Ballot
}

// WireSize implements sim.Sized: the exact length of the ballot's wire
// encoding — the length-prefixed value plus a fixed 8-byte prev pointer.
// The pointer is fixed-width, not a varint, so message size is genuinely
// constant in execution length (the paper's footnote counts an array index
// as constant size; a varint would grow with log of the instance number).
func (m BallotMsg) WireSize() int {
	return wire.BytesSize(m.B.V.Len()) + 8
}

// VetoMsg is the one-bit veto indication of the veto phases.
type VetoMsg struct{}

// WireSize implements sim.Sized.
func (VetoMsg) WireSize() int { return 1 }

// Config parameterizes a Replica.
type Config struct {
	// Propose supplies the node's input value for each instance
	// (Figure 1 line 2). Required.
	Propose func(k Instance) Value
	// CM is the node's contention manager (cm-wakeup of Figure 1 line 3).
	// Required.
	CM cm.Manager
	// OnOutput observes every instance output (Figure 1 line 4): the
	// history for green instances, nil for ⊥. Optional.
	OnOutput func(o Output)
	// Checkpoint enables the garbage-collected variant of Section 3.5:
	// after every green instance, state below it is folded into a running
	// checkpoint digest and freed.
	Checkpoint bool
}

// Replica runs the CHAP protocol over the radio: one phase per round, three
// rounds per instance. It implements sim.Node.
type Replica struct {
	env  sim.Env
	cfg  Config
	core *Core

	broadcastBallot bool // whether this node broadcast in the current ballot phase

	ckpt CheckpointState
}

// CheckpointState is the running checkpoint of the garbage-collected
// variant: every instance at or below UpTo has been folded into Digest.
type CheckpointState struct {
	UpTo   Instance
	Digest uint64
}

var _ sim.Node = (*Replica)(nil)

// NewReplica builds a CHAP replica. It panics if required configuration is
// missing, since that is a programming error at wiring time.
func NewReplica(env sim.Env, cfg Config) *Replica {
	if cfg.Propose == nil {
		panic("cha: Config.Propose is required")
	}
	if cfg.CM == nil {
		panic("cha: Config.CM is required")
	}
	return &Replica{env: env, cfg: cfg, core: NewCore()}
}

// Core exposes the underlying state machine for inspection by tests and
// the experiment harness.
func (r *Replica) Core() *Core { return r.core }

// Checkpoint returns the running checkpoint (zero value unless the
// checkpointing variant is enabled and a green instance has occurred).
func (r *Replica) Checkpoint() CheckpointState { return r.ckpt }

// Transmit implements sim.Node.
func (r *Replica) Transmit(round sim.Round) sim.Message {
	k, phase := PhaseOf(round)
	switch phase {
	case PhaseBallot:
		v := r.cfg.Propose(k)
		b := r.core.Begin(k, v)
		r.broadcastBallot = r.cfg.CM.Advice(round)
		if r.broadcastBallot {
			return BallotMsg{B: b}
		}
		return nil
	case PhaseVeto1:
		if r.core.NeedVeto1() {
			return VetoMsg{}
		}
		return nil
	default: // PhaseVeto2
		if r.core.NeedVeto2() {
			return VetoMsg{}
		}
		return nil
	}
}

// Receive implements sim.Node.
func (r *Replica) Receive(round sim.Round, rx sim.Reception) {
	_, phase := PhaseOf(round)
	switch phase {
	case PhaseBallot:
		ballots := ExtractBallots(rx.Msgs)
		r.core.ObserveBallots(ballots, rx.Collision)
		r.cfg.CM.Observe(round, ballotFeedback(r.broadcastBallot, len(ballots) > 0, rx.Collision))
	case PhaseVeto1:
		r.core.ObserveVeto1(HasVeto(rx.Msgs), rx.Collision)
	default: // PhaseVeto2
		out := r.core.ObserveVeto2(HasVeto(rx.Msgs), rx.Collision)
		if r.cfg.Checkpoint && out.Color == Green {
			r.fold(out)
		}
		if r.cfg.OnOutput != nil {
			r.cfg.OnOutput(out)
		}
	}
}

// fold advances the checkpoint through a green instance: digest the
// history segment since the last checkpoint, then free it.
func (r *Replica) fold(out Output) {
	r.ckpt.Digest = out.History.DigestRange(r.ckpt.UpTo+1, out.Instance, r.ckpt.Digest)
	r.ckpt.UpTo = out.Instance
	r.core.GC(out.Instance)
}

// ballotFeedback classifies a ballot-phase reception for the contention
// manager: collisions dominate; hearing only one's own broadcast cleanly is
// a win; hearing another's ballot is a loss; nothing is silence.
func ballotFeedback(broadcast, gotBallot, collision bool) cm.Feedback {
	switch {
	case collision:
		return cm.FeedbackCollision
	case broadcast && gotBallot:
		return cm.FeedbackWon
	case gotBallot:
		return cm.FeedbackLost
	default:
		return cm.FeedbackSilence
	}
}

// ExtractBallots filters the ballot payloads out of a reception.
func ExtractBallots(msgs []sim.Message) []Ballot {
	var out []Ballot
	for _, m := range msgs {
		if bm, ok := m.(BallotMsg); ok {
			out = append(out, bm.B)
		}
	}
	return out
}

// HasVeto reports whether a reception contains a veto.
func HasVeto(msgs []sim.Message) bool {
	for _, m := range msgs {
		if _, ok := m.(VetoMsg); ok {
			return true
		}
	}
	return false
}
