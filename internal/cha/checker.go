package cha

import (
	"fmt"
	"sync"

	"vinfra/internal/sim"
)

// Recorder observes a CHA execution — proposals, outputs, and final colors
// from every node — and checks the problem's guarantees (Section 3.2:
// Validity, Agreement, Liveness) plus the one-shade color invariant
// (Property 4 / Lemma 5). It checks agreement incrementally against a
// canonical per-position assignment, so memory stays O(instances) rather
// than O(nodes × instances²).
//
// Recorder is safe for concurrent use (the engine may fan out node callbacks
// across goroutines).
type Recorder struct {
	mu sync.Mutex

	// proposals is keyed by the proposal's byte content (Value carries a
	// slice and cannot be a map key itself).
	proposals map[Instance]map[string]bool
	// canonical is the agreed value-or-⊥ per position, fixed by the first
	// output history covering it. bot marks an agreed ⊥.
	canonical map[Instance]canonEntry
	// decided[id][k] records whether node id's output for instance k was a
	// history (true) or ⊥ (false).
	decided map[sim.NodeID]map[Instance]bool
	colors  map[Instance]*colorRange
	crashed map[sim.NodeID]bool
	lastK   Instance

	agreementViolations int
	firstAgreement      string
	validityViolations  int
	firstValidity       string
	outputs             int
	decidedCount        int
}

type canonEntry struct {
	val Value
	bot bool
}

type colorRange struct {
	min, max Color
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		proposals: make(map[Instance]map[string]bool),
		canonical: make(map[Instance]canonEntry),
		decided:   make(map[sim.NodeID]map[Instance]bool),
		colors:    make(map[Instance]*colorRange),
		crashed:   make(map[sim.NodeID]bool),
	}
}

// WrapPropose wraps a proposal source so proposals are recorded for the
// validity check.
func (rec *Recorder) WrapPropose(propose func(Instance) Value) func(Instance) Value {
	return func(k Instance) Value {
		v := propose(k)
		rec.mu.Lock()
		if rec.proposals[k] == nil {
			rec.proposals[k] = make(map[string]bool)
		}
		rec.proposals[k][v.String()] = true
		rec.mu.Unlock()
		return v
	}
}

// OutputFunc returns an OnOutput callback recording node id's outputs.
func (rec *Recorder) OutputFunc(id sim.NodeID) func(Output) {
	return func(o Output) {
		rec.Record(id, o)
	}
}

// Record registers one instance output from one node.
func (rec *Recorder) Record(id sim.NodeID, o Output) {
	rec.mu.Lock()
	defer rec.mu.Unlock()

	if o.Instance > rec.lastK {
		rec.lastK = o.Instance
	}
	rec.outputs++

	if rec.decided[id] == nil {
		rec.decided[id] = make(map[Instance]bool)
	}
	rec.decided[id][o.Instance] = o.Decided()

	if cr, ok := rec.colors[o.Instance]; ok {
		if o.Color < cr.min {
			cr.min = o.Color
		}
		if o.Color > cr.max {
			cr.max = o.Color
		}
	} else {
		rec.colors[o.Instance] = &colorRange{min: o.Color, max: o.Color}
	}

	if !o.Decided() {
		return
	}
	rec.decidedCount++
	h := o.History
	// Positions at or below the output's GC floor were folded into a
	// checkpoint and are legitimately absent from the suffix history.
	for k := o.Floor + 1; k <= h.Top(); k++ {
		v, ok := h.At(k)
		entry := canonEntry{val: v, bot: !ok}
		prev, seen := rec.canonical[k]
		if !seen {
			rec.canonical[k] = entry
			if ok {
				rec.checkValidity(k, v, id)
			}
			continue
		}
		if prev.bot != entry.bot || !prev.val.Equal(entry.val) {
			rec.agreementViolations++
			if rec.firstAgreement == "" {
				rec.firstAgreement = fmt.Sprintf(
					"node %d output for instance %d: position %d = %s, previously agreed %s",
					id, o.Instance, k, renderEntry(entry), renderEntry(prev))
			}
		}
	}
}

func renderEntry(e canonEntry) string {
	if e.bot {
		return "⊥"
	}
	return fmt.Sprintf("%q", e.val.String())
}

func (rec *Recorder) checkValidity(k Instance, v Value, id sim.NodeID) {
	if !rec.proposals[k][v.String()] {
		rec.validityViolations++
		if rec.firstValidity == "" {
			rec.firstValidity = fmt.Sprintf(
				"node %d output value %q for instance %d, which nobody proposed", id, v.String(), k)
		}
	}
}

// MarkCrashed excludes node id from the liveness check (the guarantee
// covers non-failed nodes only).
func (rec *Recorder) MarkCrashed(id sim.NodeID) {
	rec.mu.Lock()
	rec.crashed[id] = true
	rec.mu.Unlock()
}

// Report summarizes the recorded execution against the CHA guarantees.
type Report struct {
	// Instances is the highest instance any node completed.
	Instances Instance
	// AgreementViolations counts positions where two output histories
	// disagreed (must be 0 — Theorem 10).
	AgreementViolations int
	FirstAgreement      string
	// ValidityViolations counts output values nobody proposed (must be
	// 0 — Theorem 13).
	ValidityViolations int
	FirstValidity      string
	// MaxColorSpread is the largest per-instance color spread across nodes
	// (must be <= 1 — Property 4 / Lemma 5).
	MaxColorSpread int
	// ColorSpreadViolations counts instances whose spread exceeded one
	// shade.
	ColorSpreadViolations int
	// Stabilization is the smallest instance k_st satisfying the Liveness
	// clause for all non-crashed nodes, or 0 if none exists
	// (Theorem 12).
	Stabilization Instance
	// LivenessOK reports whether a stabilization instance exists.
	LivenessOK bool
	// DecidedRate is the fraction of recorded outputs that were histories
	// rather than ⊥.
	DecidedRate float64
}

// Violations returns a human-readable summary of all violations, or ""
// if the execution satisfied every checked property.
func (r Report) Violations() string {
	s := ""
	if r.AgreementViolations > 0 {
		s += fmt.Sprintf("agreement x%d (%s); ", r.AgreementViolations, r.FirstAgreement)
	}
	if r.ValidityViolations > 0 {
		s += fmt.Sprintf("validity x%d (%s); ", r.ValidityViolations, r.FirstValidity)
	}
	if r.ColorSpreadViolations > 0 {
		s += fmt.Sprintf("color-spread x%d (max %d); ", r.ColorSpreadViolations, r.MaxColorSpread)
	}
	if !r.LivenessOK {
		s += "liveness: no stabilization instance; "
	}
	return s
}

// Report computes the final report. It may be called repeatedly; recording
// may continue afterwards.
func (rec *Recorder) Report() Report {
	rec.mu.Lock()
	defer rec.mu.Unlock()

	rep := Report{
		Instances:           rec.lastK,
		AgreementViolations: rec.agreementViolations,
		FirstAgreement:      rec.firstAgreement,
		ValidityViolations:  rec.validityViolations,
		FirstValidity:       rec.firstValidity,
	}
	if rec.outputs > 0 {
		rep.DecidedRate = float64(rec.decidedCount) / float64(rec.outputs)
	}

	for _, cr := range rec.colors {
		spread := int(cr.max) - int(cr.min)
		if spread > rep.MaxColorSpread {
			rep.MaxColorSpread = spread
		}
		if spread > 1 {
			rep.ColorSpreadViolations++
		}
	}

	rep.Stabilization, rep.LivenessOK = rec.stabilization()
	return rep
}

// stabilization finds the smallest k_st such that (1) every non-crashed
// node's output is a history for every instance >= k_st, and (2) the agreed
// history includes every position >= k_st (no ⊥ from k_st to the end).
func (rec *Recorder) stabilization() (Instance, bool) {
	if rec.lastK == 0 {
		return 0, false
	}
	kst := Instance(1)
	// Positions: the canonical assignment must be non-⊥ from kst on.
	for k := rec.lastK; k >= 1; k-- {
		e, ok := rec.canonical[k]
		if !ok || e.bot {
			kst = k + 1
			break
		}
	}
	// Node outputs: every non-crashed node decided everything from kst on.
	for id, dec := range rec.decided {
		if rec.crashed[id] {
			continue
		}
		for k := rec.lastK; k >= kst; k-- {
			if !dec[k] {
				kst = k + 1
				break
			}
		}
	}
	if kst > rec.lastK {
		return 0, false
	}
	return kst, true
}
