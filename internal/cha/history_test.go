package cha

import (
	"testing"
	"testing/quick"
)

func TestColorOrderAndString(t *testing.T) {
	if !(Red < Orange && Orange < Yellow && Yellow < Green) {
		t.Fatal("color lattice order broken")
	}
	tests := []struct {
		c    Color
		s    string
		good bool
	}{
		{Red, "red", false},
		{Orange, "orange", false},
		{Yellow, "yellow", true},
		{Green, "green", true},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.s {
			t.Errorf("String(%d) = %q, want %q", tt.c, got, tt.s)
		}
		if got := tt.c.Good(); got != tt.good {
			t.Errorf("%v.Good() = %v, want %v", tt.c, got, tt.good)
		}
	}
	if got := Color(9).String(); got != "color(9)" {
		t.Errorf("unknown color string = %q", got)
	}
}

func TestMinColor(t *testing.T) {
	if minColor(Green, Orange) != Orange {
		t.Error("minColor(Green, Orange) != Orange")
	}
	if minColor(Red, Yellow) != Red {
		t.Error("minColor(Red, Yellow) != Red")
	}
	if minColor(Yellow, Yellow) != Yellow {
		t.Error("minColor identity broken")
	}
}

func TestBallotOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b Ballot
		less bool
	}{
		{"by value", Ballot{V: V("a"), Prev: 9}, Ballot{V: V("b"), Prev: 1}, true},
		{"by value reversed", Ballot{V: V("b")}, Ballot{V: V("a")}, false},
		{"tie on value, by prev", Ballot{V: V("a"), Prev: 1}, Ballot{V: V("a"), Prev: 2}, true},
		{"equal", Ballot{V: V("a"), Prev: 1}, Ballot{V: V("a"), Prev: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.less {
				t.Errorf("Less = %v, want %v", got, tt.less)
			}
		})
	}
}

func TestMinBallot(t *testing.T) {
	bs := []Ballot{{V: V("c"), Prev: 1}, {V: V("a"), Prev: 5}, {V: V("b"), Prev: 0}}
	if got := MinBallot(bs); !got.Equal(Ballot{V: V("a"), Prev: 5}) {
		t.Errorf("MinBallot = %+v", got)
	}
	single := []Ballot{{V: V("x"), Prev: 3}}
	if got := MinBallot(single); !got.Equal(single[0]) {
		t.Errorf("MinBallot of singleton = %+v", got)
	}
}

func TestMinBallotIsDeterministicUnderPermutation(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		bs := make([]Ballot, len(vals))
		for i, v := range vals {
			bs[i] = Ballot{V: V(string(rune('a' + v%26))), Prev: Instance(v % 7)}
		}
		want := MinBallot(bs)
		// Rotate and compare.
		rot := append(bs[1:], bs[0])
		return MinBallot(rot).Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryBasics(t *testing.T) {
	h := NewHistory(5, map[Instance]Value{1: V("a"), 3: V("b"), 5: V("c")})
	if h.Top() != 5 {
		t.Errorf("Top = %d", h.Top())
	}
	if v, ok := h.At(3); !ok || v.String() != "b" {
		t.Errorf("At(3) = %q, %v", v, ok)
	}
	if _, ok := h.At(2); ok {
		t.Error("At(2) should be ⊥")
	}
	if h.Includes(2) || !h.Includes(5) {
		t.Error("Includes wrong")
	}
	if got := h.Included(); len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("Included = %v", got)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
	if got := h.String(); got != "[1:a 2:⊥ 3:b 4:⊥ 5:c]" {
		t.Errorf("String = %q", got)
	}
}

func TestNewHistoryDropsOutOfRange(t *testing.T) {
	h := NewHistory(3, map[Instance]Value{0: V("x"), 2: V("a"), 7: V("y")})
	if h.Len() != 1 || !h.Includes(2) {
		t.Errorf("out-of-range entries retained: %v", h)
	}
}

func TestPrefixEqual(t *testing.T) {
	h1 := NewHistory(5, map[Instance]Value{1: V("a"), 3: V("b"), 5: V("c")})
	h2 := NewHistory(7, map[Instance]Value{1: V("a"), 3: V("b"), 5: V("c"), 6: V("z")})
	if !h1.PrefixEqual(h2, 5) {
		t.Error("prefixes through 5 should match")
	}
	h3 := NewHistory(7, map[Instance]Value{1: V("a"), 3: V("X")})
	if h1.PrefixEqual(h3, 3) {
		t.Error("differing value at 3 should fail")
	}
	h4 := NewHistory(7, map[Instance]Value{1: V("a"), 2: V("extra"), 3: V("b")})
	if h1.PrefixEqual(h4, 3) {
		t.Error("⊥ vs value at 2 should fail")
	}
	if !h1.PrefixEqual(h3, 1) {
		t.Error("short prefixes should still match")
	}
}

func TestDigest(t *testing.T) {
	h1 := NewHistory(3, map[Instance]Value{1: V("a"), 3: V("b")})
	h2 := NewHistory(3, map[Instance]Value{1: V("a"), 3: V("b")})
	if h1.Digest() != h2.Digest() {
		t.Error("equal histories must have equal digests")
	}
	h3 := NewHistory(3, map[Instance]Value{1: V("a"), 2: V("b")})
	if h1.Digest() == h3.Digest() {
		t.Error("⊥ positions must affect the digest")
	}
	h4 := NewHistory(3, map[Instance]Value{1: V("a"), 3: V("c")})
	if h1.Digest() == h4.Digest() {
		t.Error("values must affect the digest")
	}
}

func TestDigestChaining(t *testing.T) {
	h := NewHistory(4, map[Instance]Value{1: V("a"), 2: V("b"), 3: V("c"), 4: V("d")})
	full := h.DigestUpTo(4, 0)
	if full == h.DigestUpTo(3, 0) {
		t.Error("digest must depend on the prefix length")
	}
	if h.DigestUpTo(2, 0) == h.DigestUpTo(2, 99) {
		t.Error("digest must depend on the prior seed")
	}
}

func TestHistoryDigestProperty(t *testing.T) {
	// Digests of a history are insensitive to map construction order.
	f := func(keys []uint8) bool {
		vals := make(map[Instance]Value)
		for _, k := range keys {
			kk := Instance(k%20) + 1
			vals[kk] = V(string(rune('a' + k%26)))
		}
		h1 := NewHistory(20, vals)
		h2 := NewHistory(20, vals)
		return h1.Digest() == h2.Digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
