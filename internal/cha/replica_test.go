package cha_test

import (
	"fmt"
	"math"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/mobility"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var (
	testRadii = geo.Radii{R1: 10, R2: 20}
)

// ringPositions places n nodes evenly on a circle of radius r around the
// CHA location (all within R1/2 of it, per Section 3.2's setting).
func ringPositions(n int, r float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geo.Point{X: r * math.Cos(angle), Y: r * math.Sin(angle)}
	}
	return pts
}

type clusterOpts struct {
	n          int
	detector   cd.Detector
	adversary  radio.Adversary
	cmFactory  cm.Factory
	seed       int64
	checkpoint bool
}

type cluster struct {
	eng      *sim.Engine
	rec      *cha.Recorder
	replicas []*cha.Replica
	ids      []sim.NodeID
}

func newCluster(t *testing.T, o clusterOpts) *cluster {
	t.Helper()
	if o.detector == nil {
		o.detector = cd.AC{}
	}
	if o.seed == 0 {
		o.seed = 1
	}
	medium, err := radio.NewMedium(radio.Config{
		Radii:     testRadii,
		Detector:  o.detector,
		Adversary: o.adversary,
		Seed:      o.seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		eng: sim.NewEngine(medium, sim.WithSeed(o.seed)),
		rec: cha.NewRecorder(),
	}
	for i, pos := range ringPositions(o.n, 2) {
		i := i
		id := c.eng.Attach(pos, mobility.Static{}, func(env sim.Env) sim.Node {
			rep := cha.NewReplica(env, cha.Config{
				Propose: c.rec.WrapPropose(func(k cha.Instance) cha.Value {
					return cha.V(fmt.Sprintf("n%02d-%06d", i, k))
				}),
				CM:         o.cmFactory(env),
				OnOutput:   c.rec.OutputFunc(env.ID()),
				Checkpoint: o.checkpoint,
			})
			c.replicas = append(c.replicas, rep)
			return rep
		})
		c.ids = append(c.ids, id)
	}
	return c
}

func (c *cluster) runInstances(n int) {
	c.eng.Run(n * cha.RoundsPerInstance)
}

func requireClean(t *testing.T, rep cha.Report) {
	t.Helper()
	if v := rep.Violations(); v != "" {
		t.Fatalf("CHA guarantees violated: %s", v)
	}
}

func TestSingleNodeAllGreen(t *testing.T) {
	factory, _ := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{n: 1, cmFactory: factory})
	c.runInstances(10)
	rep := c.rec.Report()
	requireClean(t, rep)
	if rep.Stabilization != 1 {
		t.Errorf("stabilization = %d, want 1", rep.Stabilization)
	}
	if rep.DecidedRate != 1 {
		t.Errorf("decided rate = %v, want 1 (every instance green)", rep.DecidedRate)
	}
}

func TestStableClusterAllDecide(t *testing.T) {
	factory, _ := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{n: 5, cmFactory: factory})
	c.runInstances(20)
	rep := c.rec.Report()
	requireClean(t, rep)
	if rep.Stabilization != 1 {
		t.Errorf("stabilization = %d, want 1 on a clean channel", rep.Stabilization)
	}
	if rep.DecidedRate != 1 {
		t.Errorf("decided rate = %v, want 1", rep.DecidedRate)
	}
	// Every replica's final history chain covers all 20 instances.
	for i, rep := range c.replicas {
		h := rep.Core().CalculateHistory()
		if h.Len() != 20 {
			t.Errorf("replica %d: history covers %d instances, want 20", i, h.Len())
		}
	}
	for _, rep := range c.replicas {
		if rep.Core().BrokenChains != 0 {
			t.Error("broken history chain on a clean channel")
		}
	}
}

func TestAdversarialPhaseThenStability(t *testing.T) {
	// Arbitrary loss and spurious collisions before r_cf = 60; eventual
	// accuracy from r_acc = 60. Safety must hold throughout; liveness must
	// hold after stabilization (Theorems 10, 12, 13; Property 4).
	const rcf = 60
	factory, _ := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{
		n:         4,
		cmFactory: factory,
		detector:  cd.EventuallyAC{Racc: rcf, FalsePositiveRate: 0.2},
		adversary: radio.NewRandomLoss(0.4, 0.2, rcf, 99),
		seed:      7,
	})
	c.runInstances(100)
	rep := c.rec.Report()
	requireClean(t, rep)
	if !rep.LivenessOK {
		t.Fatal("no stabilization")
	}
	maxStab := cha.Instance(rcf/cha.RoundsPerInstance + 2)
	if rep.Stabilization > maxStab {
		t.Errorf("stabilization = %d, want <= %d", rep.Stabilization, maxStab)
	}
	for i, r := range c.replicas {
		if r.Core().BrokenChains != 0 {
			t.Errorf("replica %d: %d broken chains under complete detection", i, r.Core().BrokenChains)
		}
	}
}

func TestManySeedsSafetyNeverViolated(t *testing.T) {
	// Safety is unconditional: whatever the adversary does (even forever),
	// agreement, validity and the color invariant must hold.
	for seed := int64(1); seed <= 15; seed++ {
		factory, _ := cm.NewFixed(0)
		c := newCluster(t, clusterOpts{
			n:         3 + int(seed%4),
			cmFactory: factory,
			detector:  cd.EventuallyAC{Racc: cd.Never, FalsePositiveRate: 0.15},
			adversary: radio.NewRandomLoss(0.5, 0.25, cd.Never, seed*31),
			seed:      seed,
		})
		c.runInstances(40)
		rep := c.rec.Report()
		if rep.AgreementViolations > 0 || rep.ValidityViolations > 0 || rep.ColorSpreadViolations > 0 {
			t.Errorf("seed %d: %s", seed, rep.Violations())
		}
	}
}

func TestLeaderCrashWithBackoffReelection(t *testing.T) {
	c := newCluster(t, clusterOpts{
		n:         5,
		cmFactory: cm.NewBackoff(cm.BackoffConfig{}),
		seed:      3,
	})
	// Let the election settle and the protocol run.
	c.runInstances(80)
	// Crash an arbitrary node (whoever it is, the system must re-stabilize;
	// if it was the leader, backoff re-elects).
	c.eng.Crash(c.ids[0])
	c.rec.MarkCrashed(c.ids[0])
	c.runInstances(200)
	rep := c.rec.Report()
	requireClean(t, rep)
	if !rep.LivenessOK {
		t.Fatal("liveness lost after crash")
	}
}

func TestCrashAllButOne(t *testing.T) {
	// CHA requires only one correct node (Section 3.2).
	factory, setLeader := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{n: 4, cmFactory: factory})
	c.runInstances(10)
	for _, id := range c.ids[:3] {
		c.eng.Crash(id)
		c.rec.MarkCrashed(id)
	}
	setLeader(c.ids[3])
	c.runInstances(30)
	rep := c.rec.Report()
	requireClean(t, rep)
	if !rep.LivenessOK {
		t.Fatal("lone survivor should keep deciding")
	}
}

func TestFootnote2ConsistencyAfterDeciderCrashes(t *testing.T) {
	// Footnote 2: node p_i outputs a decision and fails; p_j (which output
	// ⊥ for that instance) must behave consistently with the unknown
	// decision. We force p_j yellow at instance 1 via a spurious collision
	// in its veto-2 round, crash the leader, and check p_j's later
	// histories include instance 1 with the decided value.
	script := &radio.Script{}
	script.Collide(2, 1) // round 2 = veto-2 of instance 1, at node 1
	factory, setLeader := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{
		n:         2,
		cmFactory: factory,
		detector:  cd.EventuallyAC{Racc: 3},
		adversary: script,
	})

	c.runInstances(1)

	// Leader (node 0) decided instance 1; node 1 is yellow.
	if got := c.replicas[0].Core().Status(1); got != cha.Green {
		t.Fatalf("leader status = %v, want green", got)
	}
	if got := c.replicas[1].Core().Status(1); got != cha.Yellow {
		t.Fatalf("observer status = %v, want yellow", got)
	}
	h0 := c.replicas[0].Core().CalculateHistory()
	v0, ok := h0.At(1)
	if !ok {
		t.Fatal("leader history must include instance 1")
	}

	c.eng.Crash(c.ids[0])
	c.rec.MarkCrashed(c.ids[0])
	setLeader(c.ids[1])
	c.runInstances(5)

	h1 := c.replicas[1].Core().CalculateHistory()
	v1, ok := h1.At(1)
	if !ok {
		t.Fatal("survivor's history must include instance 1 (it was good there)")
	}
	if !v1.Equal(v0) {
		t.Fatalf("survivor decided %q for instance 1, dead leader had %q", v1, v0)
	}
	requireClean(t, c.rec.Report())
}

func TestCheckpointReplicasConverge(t *testing.T) {
	factory, _ := cm.NewFixed(0)
	c := newCluster(t, clusterOpts{n: 3, cmFactory: factory, checkpoint: true})
	c.runInstances(50)
	requireClean(t, c.rec.Report())

	first := c.replicas[0].Checkpoint()
	if first.UpTo != 50 {
		t.Errorf("checkpoint UpTo = %d, want 50", first.UpTo)
	}
	for i, r := range c.replicas[1:] {
		if got := r.Checkpoint(); got != first {
			t.Errorf("replica %d checkpoint %+v != replica 0 %+v", i+1, got, first)
		}
	}
	for i, r := range c.replicas {
		if got := r.Core().Retained(); got > 4 {
			t.Errorf("replica %d retains %d entries despite checkpointing", i, got)
		}
	}
}

func TestCheckpointMatchesPlainHistoryDigest(t *testing.T) {
	// A checkpointing replica and a plain replica in the same cluster must
	// fold to the same digest.
	factory, _ := cm.NewFixed(0)
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)
	var plain, ckpt *cha.Replica
	propose := func(k cha.Instance) cha.Value { return cha.V(fmt.Sprintf("%06d", k)) }
	eng.Attach(geo.Point{X: 1}, nil, func(env sim.Env) sim.Node {
		plain = cha.NewReplica(env, cha.Config{Propose: propose, CM: factory(env)})
		return plain
	})
	eng.Attach(geo.Point{X: -1}, nil, func(env sim.Env) sim.Node {
		ckpt = cha.NewReplica(env, cha.Config{Propose: propose, CM: factory(env), Checkpoint: true})
		return ckpt
	})
	eng.Run(30 * cha.RoundsPerInstance)

	h := plain.Core().CalculateHistory()
	want := h.DigestUpTo(ckpt.Checkpoint().UpTo, 0)
	if got := ckpt.Checkpoint().Digest; got != want {
		t.Errorf("checkpoint digest %x != plain history digest %x", got, want)
	}
}

func TestConstantMessageSize(t *testing.T) {
	// Theorem 14: message size is constant, independent of execution
	// length. Compare the maximum message size of a short and a long run.
	maxSize := func(instances int) int {
		factory, _ := cm.NewFixed(0)
		c := newCluster(t, clusterOpts{n: 4, cmFactory: factory})
		c.runInstances(instances)
		return c.eng.Stats().MaxMessageSize
	}
	short, long := maxSize(5), maxSize(500)
	if short != long {
		t.Errorf("message size grew with execution length: %d -> %d", short, long)
	}
	// Length-prefixed 10-byte fixed-width value + 8-byte prev pointer.
	if long > 19 {
		t.Errorf("max message size = %d, want <= 19", long)
	}
}

func TestNullDetectorBreaksTheProtocol(t *testing.T) {
	// Ablation: without completeness (Null detector), lost vetoes go
	// unnoticed and the protocol's invariants collapse — the paper's
	// citation of [7,8] that consensus is impossible without collision
	// detection. We look for any seed demonstrating a violation.
	demonstrated := false
	for seed := int64(1); seed <= 20 && !demonstrated; seed++ {
		factory, _ := cm.NewFixed(0)
		c := newCluster(t, clusterOpts{
			n:         4,
			cmFactory: factory,
			detector:  cd.Null{},
			adversary: radio.NewRandomLoss(0.5, 0, cd.Never, seed*17),
			seed:      seed,
		})
		c.runInstances(60)
		rep := c.rec.Report()
		broken := 0
		for _, r := range c.replicas {
			broken += r.Core().BrokenChains
		}
		if rep.AgreementViolations > 0 || broken > 0 {
			demonstrated = true
		}
	}
	if !demonstrated {
		t.Error("expected the Null-detector ablation to violate agreement or break chains")
	}
}

func TestColorSpreadWithinOneShade(t *testing.T) {
	// Property 4 under heavy noise: per-instance colors across nodes never
	// differ by more than one shade.
	for seed := int64(1); seed <= 10; seed++ {
		factory, _ := cm.NewFixed(0)
		c := newCluster(t, clusterOpts{
			n:         6,
			cmFactory: factory,
			detector:  cd.EventuallyAC{Racc: cd.Never, FalsePositiveRate: 0.3},
			adversary: radio.NewRandomLoss(0.4, 0.3, cd.Never, seed),
			seed:      seed * 13,
		})
		c.runInstances(50)
		rep := c.rec.Report()
		if rep.MaxColorSpread > 1 {
			t.Errorf("seed %d: color spread %d > 1", seed, rep.MaxColorSpread)
		}
	}
}

func TestPhaseOf(t *testing.T) {
	tests := []struct {
		r     sim.Round
		k     cha.Instance
		phase cha.Phase
	}{
		{0, 1, cha.PhaseBallot},
		{1, 1, cha.PhaseVeto1},
		{2, 1, cha.PhaseVeto2},
		{3, 2, cha.PhaseBallot},
		{299, 100, cha.PhaseVeto2},
	}
	for _, tt := range tests {
		k, p := cha.PhaseOf(tt.r)
		if k != tt.k || p != tt.phase {
			t.Errorf("PhaseOf(%d) = (%d, %v), want (%d, %v)", tt.r, k, p, tt.k, tt.phase)
		}
	}
	for _, p := range []cha.Phase{cha.PhaseBallot, cha.PhaseVeto1, cha.PhaseVeto2} {
		if p.String() == "phase(?)" {
			t.Errorf("missing String for phase %d", p)
		}
	}
}

func TestReplicaConfigValidation(t *testing.T) {
	factory, _ := cm.NewFixed(0)
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)
	mustPanic := func(name string, cfg cha.Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		eng.Attach(geo.Point{}, nil, func(env sim.Env) sim.Node {
			return cha.NewReplica(env, cfg)
		})
	}
	mustPanic("missing propose", cha.Config{CM: factory(fakeCMEnv{})})
	mustPanic("missing cm", cha.Config{Propose: func(cha.Instance) cha.Value { return cha.Value{} }})
}

type fakeCMEnv struct{}

func (fakeCMEnv) ID() sim.NodeID      { return 0 }
func (fakeCMEnv) Location() geo.Point { return geo.Point{} }
func (fakeCMEnv) Intn(int) int        { return 0 }
func (fakeCMEnv) Float64() float64    { return 0 }
