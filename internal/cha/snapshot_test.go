package cha

import (
	"reflect"
	"testing"
)

func buildCoreWithHistory(t *testing.T) *Core {
	t.Helper()
	c := NewCore()
	// Instance 1 green, 2 yellow, 3 green.
	drive(c, 1, instanceScript{proposal: V("a")})
	drive(c, 2, instanceScript{proposal: V("b"), veto2: true})
	drive(c, 3, instanceScript{proposal: V("c")})
	return c
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	c := buildCoreWithHistory(t)
	snap := c.Snapshot()

	if snap.K != 3 || snap.Prev != 3 || snap.Floor != 0 {
		t.Errorf("snapshot header = %+v", snap)
	}
	restored := RestoreCore(snap)
	if restored.Prev() != c.Prev() || restored.Instance() != c.Instance() || restored.Floor() != c.Floor() {
		t.Error("restored core header differs")
	}
	h1 := c.CalculateHistory()
	h2 := restored.CalculateHistory()
	if h1.Digest() != h2.Digest() {
		t.Errorf("restored history differs: %v vs %v", h1, h2)
	}
	// Statuses carried over.
	if restored.Status(2) != Yellow {
		t.Errorf("restored status(2) = %v, want yellow", restored.Status(2))
	}
	// The restored core continues correctly.
	out := drive(restored, 4, instanceScript{proposal: V("d")})
	if !out.Decided() || !out.History.Includes(1) || !out.History.Includes(4) {
		t.Errorf("restored core's next instance broken: %v", out.History)
	}
}

func TestSnapshotDeterministicOrdering(t *testing.T) {
	c1 := buildCoreWithHistory(t)
	c2 := buildCoreWithHistory(t)
	s1, s2 := c1.Snapshot(), c2.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("snapshots of identical cores differ:\n%+v\n%+v", s1, s2)
	}
	if !sortedInstances(s1.BallotKeys) || !sortedInstances(s1.StatusKeys) {
		t.Error("snapshot keys must be sorted")
	}
}

func sortedInstances(ks []Instance) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			return false
		}
	}
	return true
}

func TestSnapshotWireSize(t *testing.T) {
	empty := CoreSnapshot{}
	if got := empty.WireSize(); got != len(empty.AppendTo(nil)) {
		t.Errorf("empty snapshot WireSize = %d, encoded %d bytes", got, len(empty.AppendTo(nil)))
	}
	c := buildCoreWithHistory(t)
	snap := c.Snapshot()
	if snap.WireSize() != len(snap.AppendTo(nil)) {
		t.Errorf("WireSize = %d, encoded %d bytes", snap.WireSize(), len(snap.AppendTo(nil)))
	}
	if snap.WireSize() <= empty.WireSize() {
		t.Error("populated snapshot should be larger than the header")
	}
	// GC shrinks the snapshot.
	c.GC(3)
	small := c.Snapshot()
	if small.WireSize() >= snap.WireSize() {
		t.Errorf("GC did not shrink the snapshot: %d vs %d", small.WireSize(), snap.WireSize())
	}
}

func TestResetAt(t *testing.T) {
	c := buildCoreWithHistory(t)
	c.ResetAt(10)
	if c.Instance() != 10 || c.Prev() != 0 || c.Floor() != 10 {
		t.Errorf("after ResetAt(10): k=%d prev=%d floor=%d", c.Instance(), c.Prev(), c.Floor())
	}
	if c.Retained() != 0 {
		t.Errorf("ResetAt must clear per-instance state, retained %d", c.Retained())
	}
	// Next instance is 11 and works from a clean slate.
	out := drive(c, 11, instanceScript{proposal: V("x")})
	if !out.Decided() {
		t.Fatal("instance after reset must decide")
	}
	if out.History.Includes(3) {
		t.Error("pre-reset instances must not appear in post-reset histories")
	}
	if v, ok := out.History.At(11); !ok || v.String() != "x" {
		t.Errorf("h(11) = %q,%v", v, ok)
	}
}

func TestGCIdempotentAndMonotone(t *testing.T) {
	c := buildCoreWithHistory(t)
	c.GC(3)
	floor := c.Floor()
	// GC with a smaller bound must not lower the floor.
	c.GC(1)
	if c.Floor() != floor {
		t.Errorf("GC(1) lowered the floor: %d -> %d", floor, c.Floor())
	}
	if removed := c.GC(3); removed != 0 {
		t.Errorf("repeated GC removed %d entries", removed)
	}
}

func TestCheckerValidityViolationDetected(t *testing.T) {
	rec := NewRecorder()
	// Propose only "legit" for instance 1.
	propose := rec.WrapPropose(func(Instance) Value { return V("legit") })
	propose(1)
	// An output claiming a value nobody proposed.
	rec.Record(0, Output{
		Instance: 1,
		Color:    Green,
		History:  NewHistory(1, map[Instance]Value{1: V("forged")}),
	})
	rep := rec.Report()
	if rep.ValidityViolations != 1 {
		t.Errorf("validity violations = %d, want 1", rep.ValidityViolations)
	}
	if rep.FirstValidity == "" {
		t.Error("missing violation description")
	}
	if rep.Violations() == "" {
		t.Error("Violations() should summarize the failure")
	}
}

func TestCheckerAgreementViolationDetected(t *testing.T) {
	rec := NewRecorder()
	propose := rec.WrapPropose(func(Instance) Value { return V("v") })
	propose(1)
	rec.Record(0, Output{Instance: 1, Color: Green, History: NewHistory(1, map[Instance]Value{1: V("v")})})
	rec.Record(1, Output{Instance: 1, Color: Green, History: NewHistory(1, nil)}) // ⊥ at 1
	rep := rec.Report()
	if rep.AgreementViolations != 1 {
		t.Errorf("agreement violations = %d, want 1", rep.AgreementViolations)
	}
	if rep.Violations() == "" {
		t.Error("Violations() should summarize the failure")
	}
}

func TestCheckerLivenessFailureReported(t *testing.T) {
	rec := NewRecorder()
	rec.Record(0, Output{Instance: 1, Color: Yellow}) // ⊥ forever
	rep := rec.Report()
	if rep.LivenessOK {
		t.Error("a run ending in ⊥ has no stabilization instance")
	}
	if rep.Violations() == "" {
		t.Error("Violations() should mention liveness")
	}
}

func TestCheckerEmptyRun(t *testing.T) {
	rec := NewRecorder()
	rep := rec.Report()
	if rep.LivenessOK || rep.Instances != 0 || rep.DecidedRate != 0 {
		t.Errorf("empty run report = %+v", rep)
	}
}
