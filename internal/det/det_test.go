package det

import (
	"math"
	"testing"
)

func TestHashKeysMatchesReference(t *testing.T) {
	// Reference implementation: the exact fold radio.HashKeys has used
	// since PR 1. The golden files and every committed baseline depend on
	// these values, so pin a few explicitly.
	ref := func(keys ...int64) uint64 {
		var h uint64
		for _, k := range keys {
			h = mix64(h ^ (uint64(k) + 0x9e3779b97f4a7c15))
		}
		return h
	}
	cases := [][]int64{
		{},
		{0},
		{1},
		{-1},
		{1, 2, 3},
		{math.MaxInt64, math.MinInt64},
		{7919, 0, 42},
	}
	for _, keys := range cases {
		if got, want := HashKeys(keys...), ref(keys...); got != want {
			t.Errorf("HashKeys(%v) = %#x, want %#x", keys, got, want)
		}
	}
	if HashKeys(1, 2) == HashKeys(2, 1) {
		t.Error("HashKeys must be order-sensitive")
	}
}

func TestU01Range(t *testing.T) {
	s := NewStream(1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %d: Float64() = %v out of [0,1)", i, v)
		}
	}
	if U01(0) != 0 {
		t.Errorf("U01(0) = %v, want 0", U01(0))
	}
	if v := U01(math.MaxUint64); v >= 1 {
		t.Errorf("U01(MaxUint64) = %v, want < 1", v)
	}
}

func TestStreamDeterminism(t *testing.T) {
	a, b := NewStream(42, 7), NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: identically-seeded streams diverge (%#x vs %#x)", i, av, bv)
		}
	}
	c := NewStream(42, 8)
	if a.Uint64() == c.Uint64() {
		t.Error("streams with different keys should (overwhelmingly) differ")
	}
}

func TestStreamReseedRestartsSequence(t *testing.T) {
	s := NewStream(5)
	first := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s.Reseed(5)
	for i, want := range first {
		if got := s.Uint64(); got != want {
			t.Fatalf("draw %d after Reseed = %#x, want %#x", i, got, want)
		}
	}
	// Reseed matches fresh construction.
	s.Reseed(9, 9)
	if got, want := s.Uint64(), NewStream(9, 9).Uint64(); got != want {
		t.Errorf("Reseed(9,9) first draw = %#x, NewStream(9,9) = %#x", got, want)
	}
}

func TestStreamIntn(t *testing.T) {
	s := NewStream(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("1000 draws of Intn(7) hit %d distinct values, want 7", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	s.Intn(0)
}

func TestZeroStreamUsable(t *testing.T) {
	var s Stream
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero Stream should still produce a spread sequence")
	}
}
