// Package det holds the deterministic-randomness primitives of the whole
// stack. Every layer that needs randomness — the radio medium's gray-zone
// and detector-noise draws, the internal/faults adversaries, per-node
// protocol randomness in the sim engine, experiment scatter — derives it
// from the two primitives here, so the determinism contract ("all
// randomness is a pure function of (seed, round, node/cell)") is enforced
// in one place and cannot drift apart across copies:
//
//   - HashKeys folds explicit keys through the SplitMix64 finalizer into
//     one well-spread 64-bit value. A call site that can name all its keys
//     (seed, round, receiver, …) should use HashKeys directly: the draw is
//     then independent of the order call sites execute in, which is what
//     makes the parallel shards byte-identical to a sequential run.
//   - Stream is a seeded SplitMix64 sequence for call sites that need a
//     series of draws under an already-fixed call order (a node's protocol
//     draws within its own round slots). Seed a Stream with HashKeys-style
//     keys; never from wall-clock time or any other ambient source.
//
// The tools/detlint static analyzers (globalrand, seedflow) treat HashKeys
// and NewStream as the blessed sources of randomness; raw math/rand use in
// deterministic packages is a lint error.
//
// det is intentionally dependency-free so that every package — including
// internal/sim, which the higher layers import — can use it.
package det

// mix64 is the SplitMix64 finalizer, used to spread structured seed inputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// golden is the SplitMix64 increment (2^64 / φ, odd).
const golden = 0x9e3779b97f4a7c15

// HashKeys folds keys through the SplitMix64 finalizer into one well-spread
// value. It is the single keyed-hash primitive of the deterministic stack;
// radio.HashKeys and the internal/faults hashKeys alias delegate here.
func HashKeys(keys ...int64) uint64 {
	var h uint64
	for _, k := range keys {
		h = mix64(h ^ (uint64(k) + golden))
	}
	return h
}

// U01 maps a HashKeys (or Stream) value to a uniform draw in [0, 1) — the
// other half of the keyed-randomness primitive, shared so that probability
// draws use one mapping that cannot drift apart across copies.
func U01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Stream is a seeded SplitMix64 sequence: a deterministic substitute for a
// per-entity *rand.Rand. The zero value is a valid stream seeded with zero
// keys; normal construction is NewStream(keys...) or Reseed(keys...), which
// key the stream the same way a direct HashKeys draw would be keyed.
//
// A Stream is a single 8-byte word, so reseeding is one HashKeys call and
// an assignment — cheap enough to re-key per (round, receiver) in the radio
// medium's hot delivery loop. Streams are not safe for concurrent use; give
// each goroutine (or each entity) its own.
type Stream struct {
	state uint64
}

// NewStream returns a Stream keyed by HashKeys(keys...).
func NewStream(keys ...int64) *Stream {
	return &Stream{state: HashKeys(keys...)}
}

// Reseed re-keys the stream to HashKeys(keys...), restarting its sequence.
func (s *Stream) Reseed(keys ...int64) {
	s.state = HashKeys(keys...)
}

// State returns the stream's current position word. Together with SetState
// it makes a Stream checkpointable: a stream is a single uint64, so a
// snapshot records State() and a restore calls SetState(), after which the
// stream produces exactly the draws the original would have.
func (s *Stream) State() uint64 { return s.state }

// SetState restores a stream position captured by State.
func (s *Stream) SetState(v uint64) { s.state = v }

// Uint64 returns the next value of the SplitMix64 sequence.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Float64 returns the next draw as a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return U01(s.Uint64())
}

// Intn returns the next draw as a uniform value in [0, n). It panics if
// n <= 0, matching the math/rand contract it replaces. The modulo mapping
// carries a bias below 2^-40 for every n the stack uses (n < 2^24), far
// under anything an experiment can observe.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("det: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}
