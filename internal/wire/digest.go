package wire

// Digest is a 64-bit FNV-1a digest usable as a running fold: every Fold*
// method returns the digest extended by its argument, so chains like
// NewDigest().FoldUint64(k).FoldBytes(v) hash compound values without any
// hasher allocation (hash/fnv allocates a hash.Hash64 per use — too much
// for the per-round paths that digest every history position).
//
// Digests computed once can be cached and folded into larger digests by
// value (FoldUint64 of the cached digest), which is how cha.Value avoids
// re-hashing full proposal bytes on every history digest.
type Digest uint64

const (
	fnvOffset Digest = 14695981039346656037
	fnvPrime  Digest = 1099511628211
)

// NewDigest returns the FNV-1a offset basis — the empty digest.
func NewDigest() Digest { return fnvOffset }

// DigestOf digests b in one pass.
func DigestOf(b []byte) Digest { return NewDigest().FoldBytes(b) }

// FoldByte extends the digest by one byte.
func (d Digest) FoldByte(c byte) Digest {
	return (d ^ Digest(c)) * fnvPrime
}

// FoldBytes extends the digest by b.
func (d Digest) FoldBytes(b []byte) Digest {
	for _, c := range b {
		d = (d ^ Digest(c)) * fnvPrime
	}
	return d
}

// FoldUint64 extends the digest by x's eight little-endian bytes.
func (d Digest) FoldUint64(x uint64) Digest {
	for i := 0; i < 8; i++ {
		d = (d ^ Digest(byte(x>>(8*i)))) * fnvPrime
	}
	return d
}
