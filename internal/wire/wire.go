// Package wire is the deterministic byte-oriented codec behind the
// repository's state plane: proposal values (cha.Value), virtual-node
// states (vi.Codec), emulation wire messages and application payloads are
// all encoded with it.
//
// The paper's cost model (Theorem 14) charges protocols for the bytes they
// actually put on the channel, and its open question (3) asks how small
// state transfer can get — so the reproduction must not pay a
// serialization tax the protocol doesn't have. encoding/gob ships type
// descriptors, reflects, and allocates on every encode; this package
// instead writes length-prefixed varint encodings into caller-supplied
// byte slices, append-style, with no reflection and no framing overhead.
//
// Encodings are canonical by construction: a value has exactly one
// encoding (varints are minimal, field order is fixed by the caller), so
// byte equality is value equality — the property the agreement layer's
// digests and the replicas' state comparison rely on. gob, by contrast,
// is only deterministic under conventions (no maps, same field order),
// which every program had to follow by discipline.
//
// The package is dependency-free and allocation-disciplined: appenders
// write into the caller's slice, the Decoder is a cursor over a borrowed
// slice (Bytes returns zero-copy views), and transient encodings can
// borrow pooled scratch buffers via GetBuf/PutBuf.
package wire

import (
	"errors"
	"math"
	"sync"
)

// MaxVarintLen is the maximum encoded length of a 64-bit varint.
const MaxVarintLen = 10

// --- Appenders ---

// AppendUvarint appends x in minimal base-128 varint form.
func AppendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// AppendVarint appends x zigzag-encoded (small magnitudes stay small).
func AppendVarint(dst []byte, x int64) []byte {
	return AppendUvarint(dst, zigzag(x))
}

// AppendUint64 appends x as a fixed 8-byte little-endian word.
func AppendUint64(dst []byte, x uint64) []byte {
	return append(dst,
		byte(x), byte(x>>8), byte(x>>16), byte(x>>24),
		byte(x>>32), byte(x>>40), byte(x>>48), byte(x>>56))
}

// AppendFloat64 appends f's IEEE-754 bits as a fixed 8-byte word. The bit
// pattern is preserved exactly, so the encoding is canonical for any f
// (including negative zero and NaN payloads).
func AppendFloat64(dst []byte, f float64) []byte {
	return AppendUint64(dst, math.Float64bits(f))
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendBytes appends b length-prefixed (uvarint length, then the bytes).
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s length-prefixed, like AppendBytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// --- Size calculators (exact encoded sizes, for single-allocation
// encoding and for Sized wire messages) ---

// UvarintSize returns the encoded length of x.
func UvarintSize(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// VarintSize returns the encoded length of x under AppendVarint.
func VarintSize(x int64) int { return UvarintSize(zigzag(x)) }

// BytesSize returns the encoded length of a length-prefixed byte string of
// n bytes.
func BytesSize(n int) int { return UvarintSize(uint64(n)) + n }

func zigzag(x int64) uint64   { return uint64(x<<1) ^ uint64(x>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// --- Decoder ---

// ErrMalformed is the sticky error a Decoder reports for any malformed
// input: a truncated field, a varint overflow, or trailing garbage at
// Finish. Decoding adversarial bytes never panics and never allocates
// proportionally to a length prefix — lengths are validated against the
// remaining input before use.
var ErrMalformed = errors.New("wire: malformed input")

// Decoder is a cursor over an encoded byte slice. The zero value decodes
// the empty input; construct with Dec. Methods return zero values once the
// decoder has erred; check Err (or Finish) after the reads.
type Decoder struct {
	buf []byte
	off int
	err error
}

// Dec returns a decoder reading from b. The decoder borrows b: views
// returned by Bytes alias it.
func Dec(b []byte) Decoder { return Decoder{buf: b} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Rem returns the number of undecoded bytes remaining.
func (d *Decoder) Rem() int { return len(d.buf) - d.off }

// Finish returns the sticky error, or ErrMalformed if input remains — a
// complete decode must consume the whole buffer.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return ErrMalformed
	}
	return nil
}

func (d *Decoder) fail() { d.err = ErrMalformed }

// Uvarint decodes a minimal base-128 varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var x uint64
	var shift uint
	for i := d.off; i < len(d.buf); i++ {
		b := d.buf[i]
		if shift == 63 && b > 1 {
			d.fail() // overflows 64 bits
			return 0
		}
		if b < 0x80 {
			if b == 0 && shift > 0 {
				d.fail() // non-minimal encoding
				return 0
			}
			d.off = i + 1
			return x | uint64(b)<<shift
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
		if shift >= 64 {
			d.fail()
			return 0
		}
	}
	d.fail() // truncated
	return 0
}

// Varint decodes a zigzag varint.
func (d *Decoder) Varint() int64 { return unzigzag(d.Uvarint()) }

// Uint64 decodes a fixed 8-byte little-endian word.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Rem() < 8 {
		d.fail()
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Float64 decodes a fixed 8-byte IEEE-754 word.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool decodes one byte; only 0 and 1 are legal (canonical encodings have
// exactly one byte pattern per value).
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Rem() < 1 {
		d.fail()
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail()
		return false
	}
	return b == 1
}

// Bytes decodes a length-prefixed byte string as a zero-copy view into the
// decoder's buffer. Callers that retain the result beyond the buffer's
// lifetime must copy it.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Rem()) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}

// String decodes a length-prefixed byte string into a fresh string.
func (d *Decoder) String() string { return string(d.Bytes()) }

// --- Pooled scratch buffers ---

// bufPool recycles scratch slices for transient encodings (encode, copy
// out exact-size or measure, return). Pointers to slices avoid the
// interface-boxing allocation sync.Pool would otherwise charge per Put.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf borrows an empty scratch buffer from the pool.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a scratch buffer to the pool. The caller must not use the
// buffer (or views into it) afterwards.
func PutBuf(b *[]byte) { bufPool.Put(b) }
