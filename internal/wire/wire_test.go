package wire

import (
	"bytes"
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 14, 1<<21 - 1, 1 << 35, math.MaxUint64}
	for _, x := range cases {
		enc := AppendUvarint(nil, x)
		if len(enc) != UvarintSize(x) {
			t.Errorf("UvarintSize(%d) = %d, encoded %d bytes", x, UvarintSize(x), len(enc))
		}
		d := Dec(enc)
		if got := d.Uvarint(); got != x || d.Finish() != nil {
			t.Errorf("round trip %d -> %d (err %v)", x, got, d.Finish())
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(x int64) bool {
		enc := AppendVarint(nil, x)
		if len(enc) != VarintSize(x) {
			return false
		}
		d := Dec(enc)
		return d.Varint() == x && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixedRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, b bool, p []byte, s string) bool {
		var enc []byte
		enc = AppendUvarint(enc, u)
		enc = AppendVarint(enc, i)
		enc = AppendFloat64(enc, fl)
		enc = AppendBool(enc, b)
		enc = AppendBytes(enc, p)
		enc = AppendString(enc, s)
		d := Dec(enc)
		gu, gi, gf, gb := d.Uvarint(), d.Varint(), d.Float64(), d.Bool()
		gp, gs := d.Bytes(), d.String()
		if d.Finish() != nil {
			return false
		}
		sameF := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gu == u && gi == i && sameF && gb == b &&
			bytes.Equal(gp, p) && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCanonicalUvarintRejected(t *testing.T) {
	// 0x80 0x00 is value 0 in two bytes — non-minimal, must be rejected.
	for _, enc := range [][]byte{
		{0x80, 0x00},
		{0xff, 0x00},
		{0x80}, // truncated
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // overflow (bit 70)
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02}, // overflows bit 64
	} {
		d := Dec(enc)
		d.Uvarint()
		if d.Err() == nil {
			t.Errorf("malformed uvarint % x accepted", enc)
		}
	}
	// Max uint64 is exactly ten bytes with a final 0x01 — legal.
	d := Dec([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	if got := d.Uvarint(); got != math.MaxUint64 || d.Finish() != nil {
		t.Errorf("max uvarint = %d, err %v", got, d.Finish())
	}
}

func TestDecoderBytesLengthValidated(t *testing.T) {
	// A length prefix claiming more bytes than remain must fail without
	// allocating.
	enc := AppendUvarint(nil, 1<<40)
	d := Dec(enc)
	if b := d.Bytes(); b != nil || d.Err() == nil {
		t.Error("oversized length prefix accepted")
	}
}

func TestDecoderBoolCanonical(t *testing.T) {
	d := Dec([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Error("Bool accepted a byte other than 0/1")
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	d := Dec([]byte{0x00, 0x07})
	d.Uvarint()
	if err := d.Finish(); err == nil {
		t.Error("Finish accepted trailing bytes")
	}
}

func TestZeroDecoderDecodesEmpty(t *testing.T) {
	var d Decoder
	if err := d.Finish(); err != nil {
		t.Errorf("zero decoder Finish = %v", err)
	}
}

func TestBytesViewIsZeroCopy(t *testing.T) {
	enc := AppendBytes(nil, []byte("abcdef"))
	d := Dec(enc)
	v := d.Bytes()
	if &v[0] != &enc[len(enc)-6] {
		t.Error("Bytes copied instead of returning a view")
	}
}

func TestDigestMatchesStdlibFNV(t *testing.T) {
	for _, s := range []string{"", "a", "hello wire", "\x00\x01\x02"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got := DigestOf([]byte(s)); uint64(got) != h.Sum64() {
			t.Errorf("DigestOf(%q) = %#x, fnv = %#x", s, got, h.Sum64())
		}
	}
}

func TestDigestFoldEquivalence(t *testing.T) {
	// Folding in segments equals one pass.
	whole := DigestOf([]byte("abcdef"))
	seg := NewDigest().FoldBytes([]byte("abc")).FoldBytes([]byte("def"))
	if whole != seg {
		t.Error("segmented fold differs from one-pass fold")
	}
	// FoldUint64 equals folding the eight little-endian bytes.
	x := uint64(0x0123456789abcdef)
	var le [8]byte
	for i := range le {
		le[i] = byte(x >> (8 * i))
	}
	if NewDigest().FoldUint64(x) != NewDigest().FoldBytes(le[:]) {
		t.Error("FoldUint64 differs from folding LE bytes")
	}
}

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf()
	*b = AppendString(*b, "scratch")
	PutBuf(b)
	c := GetBuf()
	defer PutBuf(c)
	if len(*c) != 0 {
		t.Error("pooled buffer not reset to empty")
	}
}

// FuzzDecoder drives the decoder over arbitrary bytes with a fixed read
// script: it must never panic, and every accepted field must re-encode to
// the bytes it was decoded from (canonical encodings round-trip exactly).
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBytes(AppendVarint(AppendUvarint(nil, 300), -7), []byte("xyz")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 2, 'h', 'i', 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := Dec(data)
		u := d.Uvarint()
		i := d.Varint()
		b := d.Bytes()
		fl := d.Float64()
		bo := d.Bool()
		if d.Err() != nil {
			return
		}
		// Re-encode what was decoded: it must reproduce the consumed
		// prefix byte for byte.
		var enc []byte
		enc = AppendUvarint(enc, u)
		enc = AppendVarint(enc, i)
		enc = AppendBytes(enc, b)
		enc = AppendFloat64(enc, fl)
		enc = AppendBool(enc, bo)
		if !bytes.Equal(enc, data[:len(data)-d.Rem()]) {
			t.Fatalf("decoded fields re-encode to % x, consumed % x", enc, data[:len(data)-d.Rem()])
		}
	})
}
