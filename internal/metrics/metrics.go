// Package metrics provides the small statistics and table-rendering
// utilities used by the experiment harness (cmd/chabench) to print
// paper-style result tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title  string
	Notes  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with 2 decimals.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// D formats an integer.
func D(x int) string { return fmt.Sprintf("%d", x) }

// B formats a boolean as yes/no.
func B(x bool) string {
	if x {
		return "yes"
	}
	return "no"
}

// Series accumulates float64 observations and reports summary statistics.
// The zero value is ready to use.
type Series struct {
	vals []float64
}

// Add appends an observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// AddInt appends an integer observation.
func (s *Series) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the minimum (0 for an empty series).
func (s *Series) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	min := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the maximum (0 for an empty series).
func (s *Series) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	max := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s *Series) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// StdDev returns the population standard deviation.
func (s *Series) StdDev() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.vals {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.vals)))
}
