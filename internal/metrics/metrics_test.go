package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	// Header and separator align with widest cells.
	if !strings.HasPrefix(lines[1], "name   value") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "-----  -----") {
		t.Errorf("separator = %q", lines[2])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "only") {
		t.Error("row lost")
	}
}

func TestTableNotes(t *testing.T) {
	tb := NewTable("x", "a")
	tb.Notes = "hello"
	var sb strings.Builder
	tb.Render(&sb)
	if !strings.Contains(sb.String(), "note: hello") {
		t.Error("missing notes")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" {
		t.Errorf("F = %q", F(1.234))
	}
	if D(42) != "42" {
		t.Errorf("D = %q", D(42))
	}
	if B(true) != "yes" || B(false) != "no" {
		t.Error("B broken")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series should report zeros")
	}
	for _, v := range []float64{4, 1, 3, 2, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := s.Percentile(100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	want := math.Sqrt(2)
	if got := s.StdDev(); math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestSeriesAddInt(t *testing.T) {
	var s Series
	s.AddInt(7)
	if s.Mean() != 7 {
		t.Errorf("AddInt: mean = %v", s.Mean())
	}
}
