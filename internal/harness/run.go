package harness

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"vinfra/internal/metrics"
)

// Options configures one harness run.
type Options struct {
	// Only restricts the run to a comma-separated list of experiment
	// groups or sub-IDs ("" runs everything).
	Only string
	// Quick selects the reduced parameter grids.
	Quick bool
	// Seeds overrides every descriptor's seed list (nil keeps defaults).
	Seeds []int64
	// Workers bounds the cell worker pool: <= 1 runs sequentially, 0 is
	// treated as 1, and negative means runtime.GOMAXPROCS(0).
	Workers int
	// Timing enables wall-clock and allocation sampling. With Timing off
	// every measured quantity is blanked, making the output for a fixed
	// seed list byte-identical run-to-run and across worker counts.
	Timing bool
	// Note is copied verbatim into the report header (used to record the
	// machine and commit a committed baseline was generated on).
	Note string
}

// Perf is the per-cell performance sample: wall time for the whole cell,
// simulated rounds (as reported via Cell.CountRounds), and the allocation
// deltas read testing.Benchmark-style from runtime.MemStats. Under a
// parallel run the allocation counters are process-wide, so concurrent
// cells bleed into each other; sequential runs give exact per-cell counts.
type Perf struct {
	WallSec      float64 `json:"wall_sec"`
	Rounds       int     `json:"rounds,omitempty"`
	RoundsPerSec float64 `json:"rounds_per_sec,omitempty"`
	// WireBytes is the total transmitted wire bytes the cell reported via
	// Cell.CountBytes — deterministic, unlike the wall/alloc samples, but
	// grouped here because it is a cost measurement, not a result.
	WireBytes  int    `json:"wire_bytes,omitempty"`
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// CellResult is one executed cell.
type CellResult struct {
	Label  string
	Seed   int64
	Params Params
	Rows   []Row
	Perf   *Perf // nil when timing is disabled
}

// ExperimentResult groups the cells of one descriptor.
type ExperimentResult struct {
	Desc  Descriptor
	Cells []CellResult
}

// Suite is the outcome of a harness run.
type Suite struct {
	GoVersion   string
	Machine     string
	Note        string
	Quick       bool
	Timing      bool
	Experiments []ExperimentResult
}

// Run executes the selected experiments cell by cell. Cells are fanned out
// over a bounded worker pool and merged back in registry order, so the
// resulting Suite is independent of the worker count (timing samples
// aside).
func Run(o Options) (*Suite, error) {
	descs, err := Select(o.Only)
	if err != nil {
		return nil, err
	}

	type job struct {
		desc *Descriptor
		di   int // experiment index
		ci   int // cell index within the experiment
		p    Params
		seed int64
	}
	suite := &Suite{
		GoVersion: runtime.Version(),
		Machine:   fmt.Sprintf("%s/%s cpus=%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Note:      o.Note,
		Quick:     o.Quick,
		Timing:    o.Timing,
	}
	var jobs []job
	for di := range descs {
		d := &descs[di]
		seeds := d.Seeds
		if len(o.Seeds) > 0 {
			seeds = o.Seeds
		}
		grid := d.Grid(o.Quick)
		res := ExperimentResult{Desc: *d, Cells: make([]CellResult, 0, len(grid)*len(seeds))}
		for _, p := range grid {
			for _, seed := range seeds {
				res.Cells = append(res.Cells, CellResult{Label: p.Label, Seed: seed, Params: p})
				jobs = append(jobs, job{desc: d, di: di, ci: len(res.Cells) - 1, p: p, seed: seed})
			}
		}
		suite.Experiments = append(suite.Experiments, res)
	}

	runCell := func(j job) {
		cell := &Cell{Params: j.p, Seed: j.seed}
		out := &suite.Experiments[j.di].Cells[j.ci]
		if !o.Timing {
			rows := j.desc.Run(cell)
			for _, r := range rows {
				for i := range r {
					r[i] = r[i].blank()
				}
			}
			out.Rows = rows
			return
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rows := j.desc.Run(cell)
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		perf := &Perf{
			WallSec:    wall.Seconds(),
			Rounds:     cell.rounds,
			WireBytes:  cell.bytes,
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		}
		if perf.Rounds > 0 && perf.WallSec > 0 {
			perf.RoundsPerSec = float64(perf.Rounds) / perf.WallSec
		}
		out.Rows = rows
		out.Perf = perf
	}

	workers := o.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		for _, j := range jobs {
			runCell(j)
		}
		return suite, nil
	}
	// The sim.WithParallel idiom: a fixed pool drains a work queue, every
	// worker writes only its own cell's slot, and slots were laid out in
	// registry order up front — the merge is deterministic by construction.
	queue := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				runCell(j)
			}
		}()
	}
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	wg.Wait()
	return suite, nil
}

// RenderText prints the suite as the classic chabench tables, grouped by
// experiment. When a descriptor ran with more than one seed, a trailing
// "seed" column distinguishes the replicated rows.
func (s *Suite) RenderText(w io.Writer) {
	lastGroup := ""
	for _, exp := range s.Experiments {
		if exp.Desc.Group != lastGroup {
			fmt.Fprintf(w, "### %s\n\n", exp.Desc.Group)
			lastGroup = exp.Desc.Group
		}
		multiSeed := false
		for _, c := range exp.Cells {
			if c.Seed != exp.Cells[0].Seed {
				multiSeed = true
				break
			}
		}
		cols := exp.Desc.Columns
		if multiSeed {
			cols = append(append([]string(nil), cols...), "seed")
		}
		t := metrics.NewTable(exp.Desc.Title, cols...)
		t.Notes = exp.Desc.Notes
		for _, c := range exp.Cells {
			for _, r := range c.Rows {
				cells := Texts(r)
				if multiSeed {
					cells = append(cells, fmt.Sprintf("%d", c.Seed))
				}
				t.AddRow(cells...)
			}
		}
		t.Render(w)
	}
}
