package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"vinfra/internal/harness"
)

// report builds a synthetic single-experiment report with the given
// per-cell wall times.
func report(walls map[string]float64, rows map[string][][]any) *harness.Report {
	exp := harness.ReportExperiment{
		ID: "EX", Group: "EX", Title: "synthetic",
		Columns:      []string{"k", "cost"},
		MeasuredCols: []int{1},
	}
	// Deterministic order for the test: fixed key list.
	for _, key := range []string{"a", "b", "c", "d", "e"} {
		w, ok := walls[key]
		if !ok {
			continue
		}
		cell := harness.ReportCell{Cell: key, Seed: 1, Perf: &harness.Perf{WallSec: w}}
		if r, ok := rows[key]; ok {
			cell.Rows = r
		}
		exp.Cells = append(exp.Cells, cell)
	}
	return &harness.Report{Schema: harness.Schema, Experiments: []harness.ReportExperiment{exp}}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := report(map[string]float64{"a": 1.0, "b": 1.0, "c": 1.0}, nil)
	cur := report(map[string]float64{"a": 1.0, "b": 1.0, "c": 1.5}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if cmp.OK() {
		t.Fatal("50% slowdown passed a 30% gate")
	}
	if len(cmp.Regressions) != 1 || !strings.Contains(cmp.Regressions[0], "EX/c/seed=1") {
		t.Errorf("regressions = %v", cmp.Regressions)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(map[string]float64{"a": 1.0, "b": 2.0}, nil)
	cur := report(map[string]float64{"a": 1.2, "b": 2.2}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if !cmp.OK() {
		t.Fatalf("within-tolerance run failed the gate: %v", cmp.Regressions)
	}
}

func TestCompareCalibrationCancelsUniformSlowdown(t *testing.T) {
	base := report(map[string]float64{"a": 1.0, "b": 1.0, "c": 1.0}, nil)
	// Everything 2x slower (a slower machine), nothing relatively worse.
	cur := report(map[string]float64{"a": 2.0, "b": 2.0, "c": 2.1}, nil)
	uncal := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if uncal.OK() {
		t.Fatal("uncalibrated compare should flag the uniform 2x slowdown")
	}
	cal := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30, Calibrate: true})
	if !cal.OK() {
		t.Fatalf("calibrated compare should cancel the uniform slowdown: %v", cal.Regressions)
	}
	// But a genuinely relative regression still fails calibrated.
	cur2 := report(map[string]float64{"a": 2.0, "b": 2.0, "c": 4.0}, nil)
	cal2 := harness.Compare(base, cur2, harness.CompareOptions{Tolerance: 0.30, Calibrate: true})
	if cal2.OK() {
		t.Fatal("calibrated compare missed a 2x relative regression")
	}
}

// twoExpReport builds a synthetic two-experiment report (IDs EX and EY)
// with one cell each at the given wall times.
func twoExpReport(exWall, eyWall float64) *harness.Report {
	mk := func(id string, w float64) harness.ReportExperiment {
		return harness.ReportExperiment{
			ID: id, Group: id, Title: "synthetic",
			Columns: []string{"k"},
			Cells: []harness.ReportCell{
				{Cell: "a", Seed: 1, Perf: &harness.Perf{WallSec: w}},
			},
		}
	}
	return &harness.Report{
		Schema:      harness.Schema,
		Experiments: []harness.ReportExperiment{mk("EX", exWall), mk("EY", eyWall)},
	}
}

func TestComparePerExperimentTolerance(t *testing.T) {
	// EY is 35% slower: past the 0.30 default, inside a 0.40 override.
	base := twoExpReport(1.0, 1.0)
	cur := twoExpReport(1.0, 1.35)

	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if cmp.OK() {
		t.Fatal("35% slowdown passed the 30% default gate")
	}

	// The override is matched case-insensitively against the experiment ID.
	cmp = harness.Compare(base, cur, harness.CompareOptions{
		Tolerance:     0.30,
		PerExperiment: map[string]float64{"ey": 0.40},
	})
	if !cmp.OK() {
		t.Fatalf("EY=0.40 override did not admit a 35%% slowdown on EY: %v", cmp.Regressions)
	}
	for _, d := range cmp.Deltas {
		want := 0.30
		if strings.HasPrefix(d.Key, "EY/") {
			want = 0.40
		}
		if d.Tol != want {
			t.Errorf("%s: Tol = %v, want %v", d.Key, d.Tol, want)
		}
	}

	// The override must not loosen the other experiments: the same slowdown
	// on EX still fails with only EY overridden.
	cmp = harness.Compare(base, twoExpReport(1.35, 1.0), harness.CompareOptions{
		Tolerance:     0.30,
		PerExperiment: map[string]float64{"EY": 0.40},
	})
	if cmp.OK() {
		t.Fatal("EY override leaked onto EX's gate")
	}
	if len(cmp.Regressions) != 1 || !strings.Contains(cmp.Regressions[0], "EX/a/seed=1") {
		t.Errorf("regressions = %v, want exactly EX/a/seed=1", cmp.Regressions)
	}
}

func TestCompareNoiseFloorExemptsFastCells(t *testing.T) {
	base := report(map[string]float64{"a": 0.001, "b": 1.0}, nil)
	cur := report(map[string]float64{"a": 0.010, "b": 1.0}, nil) // 10x on a 1ms cell
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30, MinWallSec: 0.025})
	if !cmp.OK() {
		t.Fatalf("sub-floor cell should not gate: %v", cmp.Regressions)
	}
}

func TestCompareDisjointCellSetsIsNotOK(t *testing.T) {
	// A baseline whose cells share nothing with the current run must not
	// pass the gate vacuously (e.g. renamed grid labels or mismatched
	// -seeds): nothing was actually compared.
	base := report(map[string]float64{"a": 1.0, "b": 1.0}, nil)
	cur := report(map[string]float64{"d": 1.0, "e": 1.0}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if cmp.OK() {
		t.Fatal("zero-overlap comparison reported OK")
	}
	if len(cmp.Deltas) != 0 || len(cmp.Missing) != 4 {
		t.Errorf("deltas=%d missing=%v", len(cmp.Deltas), cmp.Missing)
	}
}

func TestCompareSubFloorBaselineStillGatesBigRegression(t *testing.T) {
	// A cell under the noise floor in the baseline that blows far past
	// the floor in the current run is a real regression, not noise.
	base := report(map[string]float64{"a": 0.003, "b": 1.0}, nil)
	cur := report(map[string]float64{"a": 1.2, "b": 1.0}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30, MinWallSec: 0.025})
	if cmp.OK() {
		t.Fatal("400x regression on a sub-floor baseline cell passed the gate")
	}
}

func TestCompareFailsOnDroppedBaselineCells(t *testing.T) {
	// A cell the baseline pins that the current run no longer produces
	// (e.g. an experiment dropped by a typo in -only) must fail the gate
	// even though every matched cell is clean — and the dropped cells must
	// be named.
	base := report(map[string]float64{"a": 1.0, "b": 1.0, "c": 1.0}, nil)
	cur := report(map[string]float64{"a": 1.0, "b": 1.0}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if cmp.OK() {
		t.Fatal("comparison with a dropped baseline cell reported OK")
	}
	if len(cmp.Regressions) != 0 {
		t.Errorf("dropped cell misreported as regression: %v", cmp.Regressions)
	}
	if len(cmp.Dropped) != 1 || cmp.Dropped[0] != "EX/c/seed=1" {
		t.Errorf("dropped = %v, want [EX/c/seed=1]", cmp.Dropped)
	}
}

func TestCompareExtraCurrentCellsStillPass(t *testing.T) {
	// New coverage the baseline does not know about is a warning, not a
	// failure: it shows up in Missing but not in Dropped.
	base := report(map[string]float64{"a": 1.0, "b": 1.0}, nil)
	cur := report(map[string]float64{"a": 1.0, "b": 1.0, "c": 1.0}, nil)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if !cmp.OK() {
		t.Fatalf("extra current-only cell failed the gate: regressions=%v dropped=%v",
			cmp.Regressions, cmp.Dropped)
	}
	if len(cmp.Missing) != 1 || len(cmp.Dropped) != 0 {
		t.Errorf("missing = %v, dropped = %v", cmp.Missing, cmp.Dropped)
	}
}

func TestCompareReportsDriftAndMissing(t *testing.T) {
	base := report(
		map[string]float64{"a": 1.0, "b": 1.0},
		map[string][][]any{"a": {{int64(1), 0.5}}},
	)
	cur := report(
		map[string]float64{"a": 1.0, "c": 1.0},
		// Column 0 changed (deterministic -> drift); column 1 is measured
		// and must be ignored even though it changed too.
		map[string][][]any{"a": {{int64(2), 0.9}}},
	)
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if len(cmp.Drift) != 1 || cmp.Drift[0] != "EX/a/seed=1" {
		t.Errorf("drift = %v", cmp.Drift)
	}
	if len(cmp.Missing) != 2 {
		t.Errorf("missing = %v, want b and c flagged", cmp.Missing)
	}
}

func TestCompareIgnoresMeasuredColumnChanges(t *testing.T) {
	base := report(map[string]float64{"a": 1.0}, map[string][][]any{"a": {{int64(1), 0.5}}})
	cur := report(map[string]float64{"a": 1.0}, map[string][][]any{"a": {{int64(1), 99.0}}})
	cmp := harness.Compare(base, cur, harness.CompareOptions{Tolerance: 0.30})
	if len(cmp.Drift) != 0 {
		t.Errorf("measured-only change reported as drift: %v", cmp.Drift)
	}
}

func TestReportRoundTrip(t *testing.T) {
	suite, err := harness.Run(harness.Options{Only: "E10", Quick: true, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := harness.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != harness.Schema || len(rep.Experiments) != 1 {
		t.Fatalf("round trip lost structure: %+v", rep)
	}
	// A self-compare of a fresh report must pass any gate and show no
	// drift (rows survive the decode/normalize path intact).
	cmp := harness.Compare(rep, suite.Report(), harness.CompareOptions{Tolerance: 0.0})
	if !cmp.OK() || len(cmp.Drift) != 0 || len(cmp.Missing) != 0 {
		t.Errorf("self-compare: regressions=%v drift=%v missing=%v",
			cmp.Regressions, cmp.Drift, cmp.Missing)
	}
	if _, err := harness.ReadReport(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bad schema accepted")
	}
}
