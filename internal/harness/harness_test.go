package harness_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	_ "vinfra/internal/experiments" // registers E1..E14
	"vinfra/internal/harness"
)

func TestRegistryComplete(t *testing.T) {
	all := harness.All()
	if len(all) != 21 {
		t.Fatalf("registry has %d descriptors, want 21 (E1..E14 sub-tables)", len(all))
	}
	groups := map[string]bool{}
	for _, d := range all {
		groups[d.Group] = true
	}
	for _, g := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"} {
		if !groups[g] {
			t.Errorf("group %s not registered", g)
		}
	}
	// Natural order: E1 first, E14 last (lexical order would put E10 second).
	if all[0].ID != "E1" || all[len(all)-1].ID != "E14" {
		ids := make([]string, len(all))
		for i, d := range all {
			ids[i] = d.ID
		}
		t.Errorf("registry order: %v", ids)
	}
}

func TestSelect(t *testing.T) {
	for _, tc := range []struct {
		only string
		want int
	}{
		{"", 21},
		{"E2", 3},
		{"e2a", 1},
		{"E2a,E10", 2},
		{"E1, e9", 3},
	} {
		got, err := harness.Select(tc.only)
		if err != nil {
			t.Fatalf("Select(%q): %v", tc.only, err)
		}
		if len(got) != tc.want {
			t.Errorf("Select(%q) = %d descriptors, want %d", tc.only, len(got), tc.want)
		}
	}
	if _, err := harness.Select("E99"); err == nil {
		t.Error("Select(E99) did not fail")
	}
	if _, err := harness.Select("E2,bogus"); err == nil {
		t.Error("Select with one bad token did not fail")
	}
}

// TestSelectErrorDeterministic pins the maporder fix in Select: with
// several unknown tokens the error text used to name whichever one map
// iteration served first. The message must now list all unknown tokens,
// sorted, identically on every call.
func TestSelectErrorDeterministic(t *testing.T) {
	const tokens = "zz,E2,mm,aa"
	_, err := harness.Select(tokens)
	if err == nil {
		t.Fatalf("Select(%q) did not fail", tokens)
	}
	first := err.Error()
	// All three unknown tokens (canonicalized to upper case), sorted, and
	// only those — the valid E2 must not leak into the quoted list.
	if !strings.Contains(first, `"AA,MM,ZZ"`) {
		t.Errorf(`error %q does not quote exactly the unknown tokens sorted (want "AA,MM,ZZ")`, first)
	}
	for i := 0; i < 20; i++ {
		_, err := harness.Select(tokens)
		if err == nil || err.Error() != first {
			t.Fatalf("Select(%q) error changed across calls:\n  %q\n  %v", tokens, first, err)
		}
	}
}

func TestGridColumnsMatchRows(t *testing.T) {
	// Every descriptor's first quick cell must produce rows matching its
	// column count (the registry contract the JSON report relies on).
	for _, d := range harness.All() {
		grid := d.Grid(true)
		if len(grid) == 0 {
			t.Errorf("%s: empty quick grid", d.ID)
			continue
		}
		rows := d.Run(&harness.Cell{Params: grid[0], Seed: 1})
		if len(rows) == 0 {
			t.Errorf("%s: cell %q produced no rows", d.ID, grid[0].Label)
		}
		for _, r := range rows {
			if len(r) != len(d.Columns) {
				t.Errorf("%s: row has %d values, want %d columns", d.ID, len(r), len(d.Columns))
			}
		}
	}
}

func TestRunWorkerPoolDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		suite, err := harness.Run(harness.Options{
			Only: "E1,E2b,E7b", Quick: true, Seeds: []int64{1, 2},
			Workers: workers, Timing: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := suite.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := render(0)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Error("worker-pool output differs from sequential output")
	}
}

func TestRunPerfSampling(t *testing.T) {
	suite, err := harness.Run(harness.Options{Only: "E7b", Quick: true, Timing: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range suite.Experiments {
		for _, c := range exp.Cells {
			if c.Perf == nil {
				t.Fatalf("%s/%s: no perf sample with timing on", exp.Desc.ID, c.Label)
			}
			if c.Perf.WallSec <= 0 {
				t.Errorf("%s/%s: wall_sec = %v", exp.Desc.ID, c.Label, c.Perf.WallSec)
			}
			if c.Perf.Rounds <= 0 {
				t.Errorf("%s/%s: rounds not counted", exp.Desc.ID, c.Label)
			}
		}
	}
}

func TestRunTimingOffBlanksMeasuredValues(t *testing.T) {
	suite, err := harness.Run(harness.Options{Only: "E10", Quick: true, Timing: false})
	if err != nil {
		t.Fatal(err)
	}
	rep := suite.Report()
	exp := rep.Experiments[0]
	if len(exp.MeasuredCols) == 0 {
		t.Fatal("E10 reported no measured columns")
	}
	for _, c := range exp.Cells {
		if c.Perf != nil {
			t.Error("perf sample present with timing off")
		}
		for _, row := range c.Rows {
			for _, j := range exp.MeasuredCols {
				if row[j] != nil {
					t.Errorf("measured column %d not blanked: %v", j, row[j])
				}
			}
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if v := harness.Float(math.Inf(1)); v.V != nil {
		t.Errorf("Float(+Inf).V = %v, want nil (JSON has no Inf)", v.V)
	}
	if v := harness.Float(math.NaN()); v.V != nil {
		t.Errorf("Float(NaN).V = %v, want nil", v.V)
	}
	if v := harness.Int(7); v.Text != "7" || v.V != int64(7) {
		t.Errorf("Int(7) = %+v", v)
	}
	if v := harness.Bool(true); v.Text != "yes" {
		t.Errorf("Bool(true).Text = %q", v.Text)
	}
}

func TestRenderTextMultiSeedColumn(t *testing.T) {
	suite, err := harness.Run(harness.Options{Only: "E7b", Quick: true, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	suite.RenderText(&buf)
	if !strings.Contains(buf.String(), "seed") {
		t.Error("multi-seed run did not render a seed column")
	}
}
