// Package harness is the registry-based experiment runner behind
// cmd/chabench. Every experiment of the reproduction suite (E1–E14)
// registers a Descriptor — a name, a parameter grid, a seed list and a run
// function returning typed rows — instead of printing an ad-hoc table. The
// harness fans experiment×parameter×seed cells out over a bounded worker
// pool (the sim.WithParallel idiom: fixed workers, results merged in
// registration order, so output is byte-identical to a sequential run),
// renders the classic text tables through internal/metrics, and emits a
// machine-readable JSON report with per-cell wall time, rounds/sec and
// allocation counts sampled testing.Benchmark-style.
//
// The JSON report is the perf trajectory: a committed BENCH_BASELINE.json
// is diffed against fresh runs by Compare (chabench -compare), which fails
// on regressions beyond a tolerance threshold.
package harness

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vinfra/internal/metrics"
)

// Value is one typed table cell: the exact text rendered in the classic
// table plus the typed value emitted in the JSON report. Measured values
// are wall-clock-derived (and therefore nondeterministic); they are blanked
// when the harness runs with timing disabled so that output for a fixed
// seed list is byte-identical across sequential and parallel runs.
type Value struct {
	Text     string
	V        any // int64, float64, bool, string or nil
	Measured bool
}

// Row is one typed result row, in column order.
type Row []Value

// Int is an exact integer value.
func Int(v int) Value { return Value{Text: strconv.Itoa(v), V: int64(v)} }

// Float is a float rendered with two decimals (the suite's default).
// Non-finite values keep their text but marshal as null (JSON has no Inf).
func Float(v float64) Value { return Value{Text: metrics.F(v), V: finite(v)} }

// FloatText is a float with a custom text rendering (e.g. "%.1f", "5/30").
func FloatText(text string, v float64) Value { return Value{Text: text, V: finite(v)} }

func finite(v float64) any {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return v
}

// Str is a plain string value.
func Str(s string) Value { return Value{Text: s, V: s} }

// Bool renders as yes/no.
func Bool(v bool) Value { return Value{Text: metrics.B(v), V: v} }

// Dur is a measured wall-clock duration (seconds in JSON).
func Dur(d time.Duration) Value {
	return Value{Text: d.String(), V: d.Seconds(), Measured: true}
}

// MeasuredFloat is a measured (nondeterministic) float with custom text.
func MeasuredFloat(text string, v float64) Value {
	return Value{Text: text, V: v, Measured: true}
}

// blank replaces a measured value with a deterministic placeholder.
func (v Value) blank() Value {
	if !v.Measured {
		return v
	}
	return Value{Text: "-", Measured: true}
}

// Params is one point of an experiment's parameter grid.
type Params struct {
	Label  string // cell label, e.g. "n=8"
	Ints   map[string]int
	Floats map[string]float64
	Strs   map[string]string
}

// Int returns a required integer parameter.
func (p Params) Int(k string) int {
	v, ok := p.Ints[k]
	if !ok {
		panic(fmt.Sprintf("harness: cell %q missing int param %q", p.Label, k))
	}
	return v
}

// Float returns a required float parameter.
func (p Params) Float(k string) float64 {
	v, ok := p.Floats[k]
	if !ok {
		panic(fmt.Sprintf("harness: cell %q missing float param %q", p.Label, k))
	}
	return v
}

// Str returns a required string parameter.
func (p Params) Str(k string) string {
	v, ok := p.Strs[k]
	if !ok {
		panic(fmt.Sprintf("harness: cell %q missing string param %q", p.Label, k))
	}
	return v
}

// Map flattens the parameters into a single map for the JSON report
// (encoding/json sorts the keys, so the rendering is deterministic).
func (p Params) Map() map[string]any {
	if len(p.Ints)+len(p.Floats)+len(p.Strs) == 0 {
		return nil
	}
	m := make(map[string]any, len(p.Ints)+len(p.Floats)+len(p.Strs))
	for k, v := range p.Ints {
		m[k] = v
	}
	for k, v := range p.Floats {
		m[k] = v
	}
	for k, v := range p.Strs {
		m[k] = v
	}
	return m
}

// Cell is the execution context handed to a Descriptor's Run function: one
// parameter-grid point at one seed. Run functions derive every internal
// random seed from Seed (convention: base := (Seed-1)*7919 added to the
// historical constants, so seed 1 reproduces the pre-harness tables) and
// report simulated rounds through CountRounds for the rounds/sec metric.
type Cell struct {
	Params Params
	Seed   int64

	rounds int
	bytes  int
}

// CountRounds accumulates simulated rounds executed by this cell.
func (c *Cell) CountRounds(n int) { c.rounds += n }

// CountBytes accumulates transmitted wire bytes (sim.Stats.TotalBytes, the
// engine's sim.MessageSize accounting) executed by this cell, so reports
// carry measured bytes on the channel rather than only abstract per-message
// sizes.
func (c *Cell) CountBytes(n int) { c.bytes += n }

// Base is the per-seed offset mixed into the historical in-experiment seed
// constants: zero for seed 1 (reproducing the original tables), distinct
// otherwise.
func (c *Cell) Base() int64 { return (c.Seed - 1) * 7919 }

// Descriptor registers one experiment table with the harness.
type Descriptor struct {
	ID      string // unique sub-experiment ID, e.g. "E2a"
	Group   string // experiment group, e.g. "E2" (chabench -only granularity)
	Title   string // table title
	Notes   string // table footnote
	Columns []string
	Seeds   []int64                   // default seed list (nil means {1})
	Grid    func(quick bool) []Params // parameter grid, one Params per cell
	Run     func(c *Cell) []Row       // typed rows for one cell
}

var (
	regMu    sync.Mutex
	registry []Descriptor
	regIDs   = map[string]bool{}
)

// Register adds a descriptor to the global registry. It panics on a
// duplicate or malformed descriptor (registration happens in init funcs;
// failing loudly at startup is the point).
func Register(d Descriptor) {
	if d.ID == "" || d.Group == "" || d.Grid == nil || d.Run == nil || len(d.Columns) == 0 {
		panic(fmt.Sprintf("harness: incomplete descriptor %+v", d.ID))
	}
	if len(d.Seeds) == 0 {
		d.Seeds = []int64{1}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if regIDs[d.ID] {
		panic(fmt.Sprintf("harness: duplicate descriptor %q", d.ID))
	}
	regIDs[d.ID] = true
	registry = append(registry, d)
}

// idKey parses "E10a" into (10, "a") for natural ordering.
func idKey(id string) (int, string) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	j := i
	for j < len(id) && id[j] >= '0' && id[j] <= '9' {
		j++
	}
	n, _ := strconv.Atoi(id[i:j])
	return n, id[j:]
}

// All returns every registered descriptor in natural ID order (E1, E2a,
// E2b, …, E12), independent of file init order.
func All() []Descriptor {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Descriptor(nil), registry...)
	sort.SliceStable(out, func(a, b int) bool {
		an, as := idKey(out[a].ID)
		bn, bs := idKey(out[b].ID)
		if an != bn {
			return an < bn
		}
		return as < bs
	})
	return out
}

// Select resolves a comma-separated list of experiment groups or IDs
// (case-insensitive; "" selects everything) against the registry.
func Select(only string) ([]Descriptor, error) {
	all := All()
	if only == "" {
		return all, nil
	}
	want := map[string]bool{}
	for _, tok := range strings.Split(only, ",") {
		if tok = strings.ToUpper(strings.TrimSpace(tok)); tok != "" {
			want[tok] = true
		}
	}
	matched := map[string]bool{}
	var out []Descriptor
	for _, d := range all {
		id, group := strings.ToUpper(d.ID), strings.ToUpper(d.Group)
		if want[id] || want[group] {
			out = append(out, d)
			matched[id] = true
			matched[group] = true
		}
	}
	// Collect the unmatched tokens and sort before reporting: ranging the
	// map directly used to make *which* unknown experiment the error named
	// depend on map iteration order (the E9a nondeterminism class, now
	// flagged by detlint's maporder analyzer).
	var unknown []string
	for k := range want {
		if !matched[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment %q (want E1..E14 or a sub-ID like E2a)", strings.Join(unknown, ","))
	}
	return out, nil
}

// Texts flattens a row to its text cells (for metrics.Table rendering).
func Texts(r Row) []string {
	out := make([]string, len(r))
	for i, v := range r {
		out[i] = v.Text
	}
	return out
}

// Table builds a classic metrics.Table from typed rows — the bridge the
// legacy per-experiment table functions use.
func Table(title string, columns []string, notes string, rows []Row) *metrics.Table {
	t := metrics.NewTable(title, columns...)
	t.Notes = notes
	for _, r := range rows {
		t.AddRow(Texts(r)...)
	}
	return t
}

// TableOf renders rows under this descriptor's title, columns and notes.
func (d Descriptor) TableOf(rows []Row) *metrics.Table {
	return Table(d.Title, d.Columns, d.Notes, rows)
}
