package harness

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"vinfra/internal/metrics"
)

// CompareOptions tunes the baseline comparison.
type CompareOptions struct {
	// Tolerance is the allowed fractional slowdown per cell: a cell whose
	// (possibly calibrated) wall-time ratio exceeds 1+Tolerance is a
	// regression. 0.30 is the CI gate.
	Tolerance float64
	// PerExperiment overrides Tolerance for individual experiments, keyed by
	// experiment ID (case-insensitive). Wide-variance experiments get a
	// looser gate without loosening the whole suite — E14 times whole
	// city-scale runs whose wall clock wobbles more than the per-round
	// microbenchmarks, so it gates at 0.40 while everything else stays at
	// 0.30.
	PerExperiment map[string]float64
	// Calibrate divides every ratio by the median ratio across all
	// compared cells, cancelling uniform machine-speed differences so the
	// gate catches cells that regressed relative to the rest of the suite
	// (the right setting when baseline and current runs come from
	// different machines, as in CI).
	Calibrate bool
	// MinWallSec is the noise floor: cells faster than this in BOTH runs
	// are exempt from the regression gate (sub-threshold timings are
	// noise-dominated), while a cell above the floor in either run still
	// gates — a sub-floor baseline cell that blew past the floor is a
	// real regression, not timer noise. Default (zero) means 0.025s.
	MinWallSec float64
}

// CellDelta is one compared cell.
type CellDelta struct {
	Key       string // "E10/n=10000/seed=1"
	BaseWall  float64
	CurWall   float64
	Ratio     float64 // CurWall/BaseWall, calibrated if requested
	RawRatio  float64
	Tol       float64 // tolerance applied to this cell (after PerExperiment)
	Gated     bool    // participates in the regression gate
	Regressed bool
	RowsDrift bool // deterministic row values differ from the baseline
}

// tolFor resolves the tolerance for one experiment ID.
func (o CompareOptions) tolFor(expID string) float64 {
	if v, ok := o.PerExperiment[expID]; ok {
		return v
	}
	// Case-insensitive fallback, scanned in sorted key order so that even a
	// map holding two fold-equal keys resolves the same way on every run.
	keys := make([]string, 0, len(o.PerExperiment))
	for k := range o.PerExperiment {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if strings.EqualFold(k, expID) {
			return o.PerExperiment[k]
		}
	}
	return o.Tolerance
}

// Comparison is the outcome of Compare.
type Comparison struct {
	Deltas      []CellDelta
	Median      float64  // median raw ratio (the calibration divisor)
	Regressions []string // human-readable gate failures
	Drift       []string // deterministic result mismatches (warnings)
	Missing     []string // cells present in only one report
	// Dropped is the subset of Missing present in the baseline but absent
	// from the current report: coverage the gate silently lost (e.g. an
	// experiment dropped by a typo in -only, or a renamed grid label).
	// Dropped cells fail the gate; cells only the current run has are new
	// coverage and stay a warning.
	Dropped []string
}

// OK reports whether the perf gate passed. A comparison that matched no
// cells at all (disjoint cell sets — e.g. a renamed grid label or a
// baseline generated with different -only/-seeds) is NOT ok: a vacuous
// gate must fail loudly rather than stay green while checking nothing.
// Neither is one that lost baseline cells (Dropped): every cell the
// baseline pins must still be exercised.
func (c *Comparison) OK() bool {
	return len(c.Deltas) > 0 && len(c.Regressions) == 0 && len(c.Dropped) == 0
}

// Table renders the comparison as a metrics table. Each cell carries its
// own allowed ratio (per-experiment tolerance overrides make them differ).
func (c *Comparison) Table() *metrics.Table {
	t := metrics.NewTable("perf comparison vs baseline",
		"cell", "base", "current", "ratio", "allowed", "gated", "verdict")
	for _, d := range c.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		} else if d.RowsDrift {
			verdict = "drift"
		}
		t.AddRow(d.Key,
			fmt.Sprintf("%.3fs", d.BaseWall),
			fmt.Sprintf("%.3fs", d.CurWall),
			fmt.Sprintf("%.2fx", d.Ratio),
			fmt.Sprintf("%.2fx", 1+d.Tol),
			metrics.B(d.Gated), verdict)
	}
	t.Notes = fmt.Sprintf("median raw ratio %.2fx; gate: ratio > allowed on cells slower than the noise floor",
		c.Median)
	return t
}

// Compare diffs a current report against a committed baseline cell by cell
// (matched on experiment ID, cell label and seed). Wall-time ratios beyond
// the tolerance are regressions; deterministic row values that changed are
// reported as drift warnings (they indicate a result change, not a perf
// change, and deserve a human look rather than a hard failure).
func Compare(base, cur *Report, o CompareOptions) *Comparison {
	if o.MinWallSec == 0 {
		o.MinWallSec = 0.025
	}
	type baseCell struct {
		exp  *ReportExperiment
		cell *ReportCell
	}
	baseIdx := map[string]baseCell{}
	for i := range base.Experiments {
		exp := &base.Experiments[i]
		for j := range exp.Cells {
			c := &exp.Cells[j]
			baseIdx[cellKey(exp.ID, c)] = baseCell{exp: exp, cell: c}
		}
	}

	cmp := &Comparison{}
	seen := map[string]bool{}
	for i := range cur.Experiments {
		exp := &cur.Experiments[i]
		measured := map[int]bool{}
		for _, j := range exp.MeasuredCols {
			measured[j] = true
		}
		for j := range exp.Cells {
			c := &exp.Cells[j]
			key := cellKey(exp.ID, c)
			seen[key] = true
			b, ok := baseIdx[key]
			if !ok {
				cmp.Missing = append(cmp.Missing, key+" (not in baseline)")
				continue
			}
			d := CellDelta{Key: key, Tol: o.tolFor(exp.ID)}
			if !rowsEqual(b.cell.Rows, c.Rows, measured) {
				d.RowsDrift = true
				cmp.Drift = append(cmp.Drift, key)
			}
			if b.cell.Perf != nil && c.Perf != nil &&
				b.cell.Perf.WallSec > 0 && c.Perf.WallSec > 0 {
				d.BaseWall = b.cell.Perf.WallSec
				d.CurWall = c.Perf.WallSec
				d.RawRatio = d.CurWall / d.BaseWall
				d.Ratio = d.RawRatio
				d.Gated = d.BaseWall >= o.MinWallSec || d.CurWall >= o.MinWallSec
			}
			cmp.Deltas = append(cmp.Deltas, d)
		}
	}
	for key := range baseIdx {
		if !seen[key] {
			cmp.Missing = append(cmp.Missing, key+" (not in current run)")
			cmp.Dropped = append(cmp.Dropped, key)
		}
	}
	sort.Strings(cmp.Missing)
	sort.Strings(cmp.Dropped)

	// The calibration divisor comes from gated cells only: sub-floor cell
	// timings are noise and must not skew the median applied to the cells
	// that actually gate. Fall back to all cells if nothing gates.
	var ratios, subFloor []float64
	for _, d := range cmp.Deltas {
		if d.RawRatio <= 0 {
			continue
		}
		if d.Gated {
			ratios = append(ratios, d.RawRatio)
		} else {
			subFloor = append(subFloor, d.RawRatio)
		}
	}
	if len(ratios) == 0 {
		ratios = subFloor
	}
	cmp.Median = median(ratios)
	for i := range cmp.Deltas {
		d := &cmp.Deltas[i]
		if d.RawRatio == 0 {
			continue
		}
		if o.Calibrate && cmp.Median > 0 {
			d.Ratio = d.RawRatio / cmp.Median
		}
		if d.Gated && d.Ratio > 1+d.Tol {
			d.Regressed = true
			cmp.Regressions = append(cmp.Regressions,
				fmt.Sprintf("%s: %.3fs -> %.3fs (%.2fx > %.2fx allowed)",
					d.Key, d.BaseWall, d.CurWall, d.Ratio, 1+d.Tol))
		}
	}
	return cmp
}

func cellKey(expID string, c *ReportCell) string {
	return fmt.Sprintf("%s/%s/seed=%d", expID, c.Cell, c.Seed)
}

// rowsEqual compares deterministic row values (measured columns excluded)
// by re-marshaling each value, which normalizes the float64/int64
// asymmetry between freshly-built and JSON-decoded reports.
func rowsEqual(a, b [][]any, measured map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if measured[j] {
				continue
			}
			av, aerr := json.Marshal(a[i][j])
			bv, berr := json.Marshal(b[i][j])
			if aerr != nil || berr != nil || string(av) != string(bv) {
				return false
			}
		}
	}
	return true
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
