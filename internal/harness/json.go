package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema identifies the report file format.
const Schema = "vinfra-bench/v1"

// Report is the machine-readable form of a Suite — the on-disk JSON format
// written by `chabench -json` and consumed by `chabench -compare`. The
// encoding is deterministic: experiments and cells appear in registry
// order, rows are arrays in column order, and map keys (params) are sorted
// by encoding/json.
type Report struct {
	Schema      string             `json:"schema"`
	Go          string             `json:"go,omitempty"`
	Machine     string             `json:"machine,omitempty"`
	Note        string             `json:"note,omitempty"`
	Quick       bool               `json:"quick"`
	Timing      bool               `json:"timing"`
	Experiments []ReportExperiment `json:"experiments"`
}

// ReportExperiment is one table's worth of cells.
type ReportExperiment struct {
	ID           string       `json:"id"`
	Group        string       `json:"group"`
	Title        string       `json:"title"`
	Notes        string       `json:"notes,omitempty"`
	Columns      []string     `json:"columns"`
	MeasuredCols []int        `json:"measured_columns,omitempty"`
	Cells        []ReportCell `json:"cells"`
}

// ReportCell is one experiment×params×seed execution.
type ReportCell struct {
	Cell   string         `json:"cell"`
	Seed   int64          `json:"seed"`
	Params map[string]any `json:"params,omitempty"`
	Rows   [][]any        `json:"rows"`
	Perf   *Perf          `json:"perf,omitempty"`
}

// Report converts the suite to its serializable form.
func (s *Suite) Report() *Report {
	r := &Report{
		Schema:  Schema,
		Go:      s.GoVersion,
		Machine: s.Machine,
		Note:    s.Note,
		Quick:   s.Quick,
		Timing:  s.Timing,
	}
	for _, exp := range s.Experiments {
		re := ReportExperiment{
			ID:      exp.Desc.ID,
			Group:   exp.Desc.Group,
			Title:   exp.Desc.Title,
			Notes:   exp.Desc.Notes,
			Columns: exp.Desc.Columns,
		}
		measured := map[int]bool{}
		for _, c := range exp.Cells {
			rc := ReportCell{
				Cell:   c.Label,
				Seed:   c.Seed,
				Params: c.Params.Map(),
				Rows:   make([][]any, len(c.Rows)),
				Perf:   c.Perf,
			}
			for i, row := range c.Rows {
				vals := make([]any, len(row))
				for j, v := range row {
					vals[j] = v.V
					if v.Measured {
						measured[j] = true
					}
				}
				rc.Rows[i] = vals
			}
			re.Cells = append(re.Cells, rc)
		}
		for j := range exp.Desc.Columns {
			if measured[j] {
				re.MeasuredCols = append(re.MeasuredCols, j)
			}
		}
		r.Experiments = append(r.Experiments, re)
	}
	return r
}

// WriteJSON writes the suite's report as indented JSON.
func (s *Suite) WriteJSON(w io.Writer) error {
	return WriteReport(w, s.Report())
}

// WriteReport writes a report as indented JSON with a trailing newline.
func WriteReport(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport parses a report produced by WriteReport, verifying the schema.
func ReadReport(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("unsupported report schema %q (want %q)", rep.Schema, Schema)
	}
	return &rep, nil
}

// LoadReport reads a report from a file.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := ReadReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
