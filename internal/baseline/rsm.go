package baseline

import (
	"fmt"

	"vinfra/internal/sim"
)

// The majority-RSM baseline needs unique identifiers, known membership,
// and a TDMA acknowledgment schedule — all assumptions the paper's
// protocol avoids — and it still pays Θ(n) rounds per decision because
// acknowledgments serialize on the single shared channel.

// ProposeMsg is the leader's proposal for slot k.
type ProposeMsg struct {
	K int
	V string
}

// WireSize implements sim.Sized.
func (m ProposeMsg) WireSize() int { return 8 + len(m.V) }

// AckMsg acknowledges slot K from replica Slot.
type AckMsg struct {
	K    int
	Slot int
}

// WireSize implements sim.Sized.
func (AckMsg) WireSize() int { return 16 }

// CommitMsg finalizes slot K with value V.
type CommitMsg struct {
	K int
	V string
}

// WireSize implements sim.Sized.
func (m CommitMsg) WireSize() int { return 8 + len(m.V) }

// RSMConfig parameterizes one MajorityRSM node.
type RSMConfig struct {
	// N is the (required, known) membership size.
	N int
	// Index is this node's unique slot in [0, N).
	Index int
	// LeaderIndex designates the fixed leader.
	LeaderIndex int
	// Propose supplies the leader's command for each slot.
	Propose func(k int) string
	// OnCommit observes each locally committed slot. Optional.
	OnCommit func(k int, v string)
}

// MajorityRSM is a node of the majority-acknowledgment replicated state
// machine. The protocol advances in fixed attempts of N+2 rounds:
//
//	round 0:      leader broadcasts Propose(k, v)
//	rounds 1..N:  replica with slot i-1 broadcasts Ack in round i if it
//	              received the proposal (TDMA — one ack per round, since
//	              the channel carries one message per slot)
//	round N+1:    leader broadcasts Commit if it counted a majority of
//	              acks; otherwise the attempt failed and k is retried
//
// A slot therefore costs at least N+2 rounds, growing linearly with
// membership — the contention cost the paper's Section 1.5 cites.
type MajorityRSM struct {
	cfg RSMConfig

	k         int // current slot being decided
	attempt   int // rounds consumed so far (for metrics)
	committed map[int]string

	// leader state
	pendingV string
	acks     map[int]bool

	// replica state
	curProposal *ProposeMsg

	// Metrics
	RoundsPerCommit []int // rounds consumed by each committed slot (leader only)
	roundsThisSlot  int
}

var _ sim.Node = (*MajorityRSM)(nil)

// NewMajorityRSM builds one RSM node.
func NewMajorityRSM(cfg RSMConfig) *MajorityRSM {
	if cfg.N <= 0 {
		panic("baseline: RSMConfig.N must be positive")
	}
	if cfg.Index < 0 || cfg.Index >= cfg.N {
		panic(fmt.Sprintf("baseline: RSMConfig.Index %d out of [0,%d)", cfg.Index, cfg.N))
	}
	if cfg.Propose == nil && cfg.Index == cfg.LeaderIndex {
		panic("baseline: leader requires Propose")
	}
	return &MajorityRSM{
		cfg:       cfg,
		k:         1,
		committed: make(map[int]string),
		acks:      make(map[int]bool),
	}
}

// AttemptRounds returns the rounds per attempt for a given membership size.
func AttemptRounds(n int) int { return n + 2 }

func (m *MajorityRSM) isLeader() bool { return m.cfg.Index == m.cfg.LeaderIndex }

// phase returns the position within the current attempt.
func (m *MajorityRSM) phase(r sim.Round) int {
	return int(r) % AttemptRounds(m.cfg.N)
}

// Transmit implements sim.Node.
func (m *MajorityRSM) Transmit(r sim.Round) sim.Message {
	ph := m.phase(r)
	switch {
	case ph == 0:
		m.roundsThisSlot += AttemptRounds(m.cfg.N)
		if m.isLeader() {
			m.pendingV = m.cfg.Propose(m.k)
			m.acks = map[int]bool{m.cfg.Index: true} // leader implicitly acks
			return ProposeMsg{K: m.k, V: m.pendingV}
		}
		m.curProposal = nil
		return nil
	case ph >= 1 && ph <= m.cfg.N:
		slot := ph - 1
		if slot == m.cfg.Index && !m.isLeader() && m.curProposal != nil {
			return AckMsg{K: m.curProposal.K, Slot: slot}
		}
		return nil
	default: // commit phase
		if m.isLeader() && len(m.acks) >= m.majority() {
			return CommitMsg{K: m.k, V: m.pendingV}
		}
		return nil
	}
}

func (m *MajorityRSM) majority() int { return m.cfg.N/2 + 1 }

// Receive implements sim.Node.
func (m *MajorityRSM) Receive(r sim.Round, rx sim.Reception) {
	ph := m.phase(r)
	switch {
	case ph == 0:
		if m.isLeader() {
			return
		}
		for _, msg := range rx.Msgs {
			// Adopting any proposal at or ahead of the local slot lets a
			// replica that missed a commit resynchronize with the leader.
			if p, ok := msg.(ProposeMsg); ok && p.K >= m.k {
				p := p
				m.k = p.K
				m.curProposal = &p
			}
		}
	case ph >= 1 && ph <= m.cfg.N:
		if !m.isLeader() {
			return
		}
		for _, msg := range rx.Msgs {
			if a, ok := msg.(AckMsg); ok && a.K == m.k {
				m.acks[a.Slot] = true
			}
		}
	default:
		committed := false
		var v string
		if m.isLeader() {
			if len(m.acks) >= m.majority() {
				committed, v = true, m.pendingV
			}
		} else {
			for _, msg := range rx.Msgs {
				if c, ok := msg.(CommitMsg); ok && c.K >= m.k {
					committed, v = true, c.V
					m.k = c.K
				}
			}
		}
		if committed {
			m.committed[m.k] = v
			if m.cfg.OnCommit != nil {
				m.cfg.OnCommit(m.k, v)
			}
			if m.isLeader() {
				m.RoundsPerCommit = append(m.RoundsPerCommit, m.roundsThisSlot)
			}
			m.k++
			m.roundsThisSlot = 0
		}
	}
}

// Committed returns the value committed for slot k, if any.
func (m *MajorityRSM) Committed(k int) (string, bool) {
	v, ok := m.committed[k]
	return v, ok
}

// CommitCount returns how many slots this node has committed.
func (m *MajorityRSM) CommitCount() int { return len(m.committed) }
