package baseline_test

import (
	"fmt"
	"math"
	"testing"

	"vinfra/internal/baseline"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

func ring(n int, r float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geo.Point{X: r * math.Cos(angle), Y: r * math.Sin(angle)}
	}
	return pts
}

func newNaiveCluster(t *testing.T, n int) (*sim.Engine, *cha.Recorder, []*baseline.NaiveReplica) {
	t.Helper()
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)
	rec := cha.NewRecorder()
	factory, _ := cm.NewFixed(0)
	var reps []*baseline.NaiveReplica
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			rep := baseline.NewNaiveReplica(baseline.NaiveConfig{
				Propose: rec.WrapPropose(func(k cha.Instance) cha.Value {
					return cha.V(fmt.Sprintf("n%02d-%06d", i, k))
				}),
				CM:       factory(env),
				OnOutput: rec.OutputFunc(env.ID()),
			})
			reps = append(reps, rep)
			return rep
		})
	}
	return eng, rec, reps
}

func TestNaiveReplicaSatisfiesCHA(t *testing.T) {
	eng, rec, reps := newNaiveCluster(t, 4)
	eng.Run(30 * cha.RoundsPerInstance)
	rep := rec.Report()
	if v := rep.Violations(); v != "" {
		t.Fatalf("naive baseline violated CHA: %s", v)
	}
	if rep.DecidedRate != 1 {
		t.Errorf("decided rate = %v on a clean channel", rep.DecidedRate)
	}
	for i, r := range reps {
		if r.History().Len() != 30 {
			t.Errorf("replica %d history covers %d, want 30", i, r.History().Len())
		}
	}
}

func TestNaiveMessageSizeGrowsWithExecution(t *testing.T) {
	// The point of the baseline: ballots carry the whole history, so the
	// maximum message size grows linearly with execution length —
	// contrast with CHAP's constant (Theorem 14).
	maxAt := func(instances int) int {
		eng, _, _ := newNaiveCluster(t, 3)
		eng.Run(instances * cha.RoundsPerInstance)
		return eng.Stats().MaxMessageSize
	}
	s10, s100, s200 := maxAt(10), maxAt(100), maxAt(200)
	if !(s10 < s100 && s100 < s200) {
		t.Errorf("naive message size should grow: %d, %d, %d", s10, s100, s200)
	}
	// Roughly linear: doubling the instances should roughly double the max
	// size (each entry costs ~19 bytes).
	ratio := float64(s200-s100) / float64(s100-s10+1)
	if ratio < 0.5 {
		t.Errorf("growth does not look linear: %d, %d, %d", s10, s100, s200)
	}
}

func TestNaiveBallotWireSize(t *testing.T) {
	h := cha.NewHistory(3, map[cha.Instance]cha.Value{1: cha.V("aa"), 3: cha.V("b")})
	m := baseline.NaiveBallotMsg{V: cha.V("xyz"), H: h}
	// 3 (value) + positions: 1 present (1+8+2), 2 bottom (1), 3 present (1+8+1)
	want := 3 + (1 + 8 + 2) + 1 + (1 + 8 + 1)
	if got := m.WireSize(); got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
}

func newRSMCluster(t *testing.T, n int, adv radio.Adversary) (*sim.Engine, []*baseline.MajorityRSM) {
	t.Helper()
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}, Adversary: adv})
	eng := sim.NewEngine(medium)
	nodes := make([]*baseline.MajorityRSM, n)
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			nodes[i] = baseline.NewMajorityRSM(baseline.RSMConfig{
				N:           n,
				Index:       i,
				LeaderIndex: 0,
				Propose:     func(k int) string { return fmt.Sprintf("cmd-%06d", k) },
			})
			return nodes[i]
		})
	}
	return eng, nodes
}

func TestRSMCommitsOnCleanChannel(t *testing.T) {
	const n, slots = 5, 10
	eng, nodes := newRSMCluster(t, n, nil)
	eng.Run(slots * baseline.AttemptRounds(n))
	for i, node := range nodes {
		if got := node.CommitCount(); got != slots {
			t.Errorf("node %d committed %d slots, want %d", i, got, slots)
		}
	}
	// All nodes agree on every slot.
	for k := 1; k <= slots; k++ {
		v0, ok := nodes[0].Committed(k)
		if !ok {
			t.Fatalf("leader missing slot %d", k)
		}
		for i, node := range nodes[1:] {
			if v, ok := node.Committed(k); !ok || v != v0 {
				t.Errorf("node %d slot %d = %q,%v want %q", i+1, k, v, ok, v0)
			}
		}
	}
}

func TestRSMRoundsPerDecisionGrowLinearly(t *testing.T) {
	// Θ(n) rounds per decision: the shape of the paper's Section 1.5
	// critique.
	perDecision := func(n int) int {
		eng, nodes := newRSMCluster(t, n, nil)
		eng.Run(5 * baseline.AttemptRounds(n))
		if len(nodes[0].RoundsPerCommit) == 0 {
			t.Fatalf("n=%d: nothing committed", n)
		}
		return nodes[0].RoundsPerCommit[0]
	}
	r4, r8, r16 := perDecision(4), perDecision(8), perDecision(16)
	if r4 != baseline.AttemptRounds(4) || r8 != baseline.AttemptRounds(8) || r16 != baseline.AttemptRounds(16) {
		t.Errorf("rounds per decision = %d/%d/%d, want %d/%d/%d",
			r4, r8, r16, baseline.AttemptRounds(4), baseline.AttemptRounds(8), baseline.AttemptRounds(16))
	}
	if !(r4 < r8 && r8 < r16) {
		t.Error("rounds per decision should grow with n")
	}
}

func TestRSMRetriesThroughLoss(t *testing.T) {
	// Drop everything for the first two attempts; the leader must retry
	// and eventually commit, and replicas must resynchronize.
	const n = 3
	horizon := sim.Round(2 * baseline.AttemptRounds(n))
	adv := radio.NewRandomLoss(1.0, 0, horizon, 5)
	eng, nodes := newRSMCluster(t, n, adv)
	eng.Run(10 * baseline.AttemptRounds(n))
	if nodes[0].CommitCount() == 0 {
		t.Fatal("leader never committed despite channel healing")
	}
	// Replicas caught up on slot 1.
	v0, _ := nodes[0].Committed(1)
	for i, node := range nodes[1:] {
		if v, ok := node.Committed(1); !ok || v != v0 {
			t.Errorf("node %d: slot 1 = %q,%v want %q", i+1, v, ok, v0)
		}
	}
}

func TestRSMConfigValidation(t *testing.T) {
	mustPanic := func(name string, cfg baseline.RSMConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		baseline.NewMajorityRSM(cfg)
	}
	mustPanic("zero N", baseline.RSMConfig{})
	mustPanic("bad index", baseline.RSMConfig{N: 3, Index: 3})
	mustPanic("leader without propose", baseline.RSMConfig{N: 3, Index: 0, LeaderIndex: 0})
}

func TestRSMMessageSizesConstant(t *testing.T) {
	eng, _ := newRSMCluster(t, 4, nil)
	eng.Run(20 * baseline.AttemptRounds(4))
	if got := eng.Stats().MaxMessageSize; got > 32 {
		t.Errorf("RSM messages should be small and constant, got max %d", got)
	}
}
