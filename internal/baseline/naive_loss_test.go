package baseline_test

import (
	"fmt"
	"testing"

	"vinfra/internal/baseline"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// newNaiveLossCluster builds a naive-CHA cluster over a lossy channel.
func newNaiveLossCluster(t *testing.T, n int, adv radio.Adversary, seed int64) (*sim.Engine, *cha.Recorder) {
	t.Helper()
	medium := radio.MustMedium(radio.Config{
		Radii:     testRadii,
		Detector:  cd.EventuallyAC{Racc: cd.Never},
		Adversary: adv,
		Seed:      seed,
	})
	eng := sim.NewEngine(medium, sim.WithSeed(seed))
	rec := cha.NewRecorder()
	factory, _ := cm.NewFixed(0)
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return baseline.NewNaiveReplica(baseline.NaiveConfig{
				Propose: rec.WrapPropose(func(k cha.Instance) cha.Value {
					return cha.V(fmt.Sprintf("n%02d-%06d", i, k))
				}),
				CM:       factory(env),
				OnOutput: rec.OutputFunc(env.ID()),
			})
		})
	}
	return eng, rec
}

// The naive protocol also satisfies CHA's safety under loss — it is
// disqualified by message size, not by correctness.
func TestNaiveSafetyUnderLoss(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		adv := radio.NewRandomLoss(0.4, 0.2, cd.Never, seed*19)
		eng, rec := newNaiveLossCluster(t, 4, adv, seed)
		eng.Run(40 * cha.RoundsPerInstance)
		rep := rec.Report()
		if rep.AgreementViolations > 0 || rep.ValidityViolations > 0 {
			t.Errorf("seed %d: naive baseline violated safety: %s", seed, rep.Violations())
		}
		if rep.ColorSpreadViolations > 0 {
			t.Errorf("seed %d: color spread violation", seed)
		}
	}
}

// After the adversary's horizon the naive protocol recovers liveness too.
func TestNaiveLivenessAfterStability(t *testing.T) {
	const rcf = 30
	adv := radio.NewRandomLoss(0.5, 0.2, rcf, 7)
	medium := radio.MustMedium(radio.Config{
		Radii:     testRadii,
		Detector:  cd.EventuallyAC{Racc: rcf},
		Adversary: adv,
		Seed:      7,
	})
	eng := sim.NewEngine(medium, sim.WithSeed(7))
	rec := cha.NewRecorder()
	factory, _ := cm.NewFixed(0)
	for i, pos := range ring(3, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return baseline.NewNaiveReplica(baseline.NaiveConfig{
				Propose: rec.WrapPropose(func(k cha.Instance) cha.Value {
					return cha.V(fmt.Sprintf("n%02d-%06d", i, k))
				}),
				CM:       factory(env),
				OnOutput: rec.OutputFunc(env.ID()),
			})
		})
	}
	eng.Run(50 * cha.RoundsPerInstance)
	rep := rec.Report()
	if !rep.LivenessOK {
		t.Fatalf("naive baseline did not stabilize: %s", rep.Violations())
	}
}

// A crashed naive replica does not disturb the rest.
func TestNaiveSurvivesCrash(t *testing.T) {
	eng, rec := newNaiveLossCluster(t, 3, nil, 3)
	eng.Run(10 * cha.RoundsPerInstance)
	eng.Crash(1)
	rec.MarkCrashed(1)
	eng.Run(20 * cha.RoundsPerInstance)
	rep := rec.Report()
	if v := rep.Violations(); v != "" {
		t.Fatalf("naive baseline after crash: %s", v)
	}
}
