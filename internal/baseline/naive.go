// Package baseline implements the two comparison points the paper argues
// against:
//
//   - NaiveReplica (Section 3.4): a CHA protocol whose ballots carry the
//     entire history instead of a constant-size prev-instance pointer —
//     "a naïve solution might include the entire history in every
//     message". Message size grows linearly with execution length.
//   - MajorityRSM (Section 1.5): a classic majority-acknowledgment
//     replicated state machine run over the shared radio channel. Because
//     only one message fits on the channel per slot, collecting a majority
//     of acknowledgments serializes, so each decision takes Θ(n) rounds —
//     "most such protocols require at least a majority of the nodes to
//     send messages; in a wireless network this creates unacceptable
//     channel contention and long delays".
//
// Both baselines are honest, working protocols: the experiment harness
// measures them alongside CHAP to reproduce the paper's efficiency claims
// (Theorem 14 and experiment E2/E7 in DESIGN.md).
package baseline

import (
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/sim"
)

// NaiveBallotMsg is a ballot that carries the broadcaster's full current
// history alongside the proposal. Receivers adopt the attached history
// directly instead of reconstructing it from prev pointers.
type NaiveBallotMsg struct {
	V cha.Value
	H *cha.History
}

// WireSize implements sim.Sized: the value, plus one marker byte and the
// value bytes (with an 8-byte index) for every position of the attached
// history. This is the Θ(execution length) cost the paper's constant-size
// ballots avoid.
func (m NaiveBallotMsg) WireSize() int {
	size := m.V.Len()
	for i := cha.Instance(1); i <= m.H.Top(); i++ {
		size++ // present/⊥ marker
		if v, ok := m.H.At(i); ok {
			size += 8 + v.Len()
		}
	}
	return size
}

// NaiveConfig parameterizes a NaiveReplica.
type NaiveConfig struct {
	Propose  func(k cha.Instance) cha.Value
	CM       cm.Manager
	OnOutput func(o cha.Output)
}

// NaiveReplica runs the same three-phase color protocol as CHAP but ships
// and adopts full histories. It implements sim.Node and satisfies the CHA
// guarantees; its message size is what disqualifies it.
type NaiveReplica struct {
	cfg NaiveConfig

	k       cha.Instance
	status  map[cha.Instance]cha.Color
	history *cha.History // last adopted/decided history (the node's state)
	adopted struct {
		v  cha.Value
		h  *cha.History
		ok bool
	}
	broadcast bool
}

var _ sim.Node = (*NaiveReplica)(nil)

// NewNaiveReplica builds a full-history CHA replica.
func NewNaiveReplica(cfg NaiveConfig) *NaiveReplica {
	if cfg.Propose == nil || cfg.CM == nil {
		panic("baseline: NaiveConfig requires Propose and CM")
	}
	return &NaiveReplica{
		cfg:     cfg,
		status:  make(map[cha.Instance]cha.Color),
		history: cha.NewHistory(0, nil),
	}
}

func (r *NaiveReplica) colorOf(k cha.Instance) cha.Color {
	if c, ok := r.status[k]; ok {
		return c
	}
	return cha.Green
}

func (r *NaiveReplica) downgrade(k cha.Instance, to cha.Color) {
	if to < r.colorOf(k) {
		r.status[k] = to
	}
}

// Transmit implements sim.Node.
func (r *NaiveReplica) Transmit(round sim.Round) sim.Message {
	k, phase := cha.PhaseOf(round)
	switch phase {
	case cha.PhaseBallot:
		r.k = k
		r.adopted.ok = false
		r.broadcast = r.cfg.CM.Advice(round)
		if r.broadcast {
			return NaiveBallotMsg{V: r.cfg.Propose(k), H: r.history}
		}
		r.cfg.Propose(k) // proposals are made regardless (Figure 1 line 15)
		return nil
	case cha.PhaseVeto1:
		if r.colorOf(r.k) == cha.Red {
			return cha.VetoMsg{}
		}
		return nil
	default:
		if r.colorOf(r.k) <= cha.Orange {
			return cha.VetoMsg{}
		}
		return nil
	}
}

// Receive implements sim.Node.
func (r *NaiveReplica) Receive(round sim.Round, rx sim.Reception) {
	_, phase := cha.PhaseOf(round)
	switch phase {
	case cha.PhaseBallot:
		var best *NaiveBallotMsg
		for _, m := range rx.Msgs {
			if bm, ok := m.(NaiveBallotMsg); ok {
				if best == nil || bm.V.Compare(best.V) < 0 {
					b := bm
					best = &b
				}
			}
		}
		if best == nil || rx.Collision {
			r.downgrade(r.k, cha.Red)
			r.cfg.CM.Observe(round, feedback(r.broadcast, best != nil, rx.Collision))
			return
		}
		r.adopted.v, r.adopted.h, r.adopted.ok = best.V, best.H, true
		r.cfg.CM.Observe(round, feedback(r.broadcast, true, false))
	case cha.PhaseVeto1:
		if cha.HasVeto(rx.Msgs) || rx.Collision {
			r.downgrade(r.k, cha.Orange)
		}
	default:
		if cha.HasVeto(rx.Msgs) || rx.Collision {
			r.downgrade(r.k, cha.Yellow)
		}
		r.finish()
	}
}

func (r *NaiveReplica) finish() {
	st := r.colorOf(r.k)
	out := cha.Output{Instance: r.k, Color: st}
	if st.Good() && r.adopted.ok {
		// Extend the adopted history with this instance's value.
		vals := make(map[cha.Instance]cha.Value, r.adopted.h.Len()+1)
		for _, i := range r.adopted.h.Included() {
			v, _ := r.adopted.h.At(i)
			vals[i] = v
		}
		vals[r.k] = r.adopted.v
		r.history = cha.NewHistory(r.k, vals)
	} else if st.Good() {
		// Good with no adopted ballot cannot happen (good implies a ballot
		// was received); defensively keep the old history re-topped.
		r.history = retop(r.history, r.k)
	} else {
		r.history = retop(r.history, r.k)
	}
	if st == cha.Green {
		out.History = r.history
	}
	if r.cfg.OnOutput != nil {
		r.cfg.OnOutput(out)
	}
}

// History returns the replica's current adopted history.
func (r *NaiveReplica) History() *cha.History { return r.history }

func retop(h *cha.History, top cha.Instance) *cha.History {
	vals := make(map[cha.Instance]cha.Value, h.Len())
	for _, i := range h.Included() {
		v, _ := h.At(i)
		vals[i] = v
	}
	return cha.NewHistory(top, vals)
}

func feedback(broadcast, gotBallot, collision bool) cm.Feedback {
	switch {
	case collision:
		return cm.FeedbackCollision
	case broadcast && gotBallot:
		return cm.FeedbackWon
	case gotBallot:
		return cm.FeedbackLost
	default:
		return cm.FeedbackSilence
	}
}
