// Package prof wires runtime/pprof into the CLIs: a CPU profile sampled
// for the whole run and a heap profile written at exit. It exists so
// chabench and visim expose identical -cpuprofile/-memprofile flags and so
// their os.Exit paths (which skip defers) have one explicit flush point.
//
// Profiling is observation, not simulation state: nothing here feeds back
// into an engine, so the determinism contract is untouched whether or not
// the profiles are enabled.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiler holds the open CPU-profile file and the pending heap-profile
// path. The zero value (from Start("", "")) is a no-op: Stop on it does
// nothing, so callers never need to branch on whether profiling is on.
type Profiler struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling to cpuPath (when non-empty) and records
// memPath for Stop to write a heap profile to (when non-empty). On error
// nothing is left running and no file is left open.
func Start(cpuPath, memPath string) (*Profiler, error) {
	p := &Profiler{memPath: memPath}
	if cpuPath == "" {
		return p, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("prof: -cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: -cpuprofile: %w", err)
	}
	p.cpuFile = f
	return p, nil
}

// Stop flushes both profiles: it stops and closes the CPU profile, then
// runs a GC and writes the heap profile, so the memory numbers reflect
// live retained memory rather than garbage awaiting collection. Stop is
// idempotent and must run before any os.Exit — deferred calls don't.
// Profile-flush failures are reported on stderr rather than returned:
// every caller is already on its way out with the run's real exit code.
func (p *Profiler) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prof: -cpuprofile: %v\n", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		path := p.memPath
		p.memPath = ""
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prof: -memprofile: %v\n", err)
			return
		}
		runtime.GC() // materialize live-set numbers in the heap profile
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "prof: -memprofile: %v\n", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "prof: -memprofile: %v\n", err)
		}
	}
}
