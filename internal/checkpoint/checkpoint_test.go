package checkpoint

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"vinfra/internal/cha"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

func sampleCheckpoint() Checkpoint {
	return Checkpoint{
		Engine: sim.EngineSnapshot{
			Seed:        42,
			Round:       17,
			Stats:       sim.Stats{Rounds: 17, Transmissions: 120, MaxMessageSize: 64, TotalBytes: 4096, HaloTransmissions: 7},
			ShardCols:   4,
			ShardRows:   2,
			FaultDigest: 0xdeadbeef,
			Nodes: []sim.NodeSnapshot{
				{ID: 0, X: 1.5, Y: -2, Alive: true, RNG: 0x1234, State: []byte{0x01}},
				{ID: 1, X: 0, Y: 3, Alive: false, RNG: 0x5678, Mover: []byte{0x00, 0x02}},
			},
			CrashRounds: []sim.Round{20},
			CrashIDs:    [][]sim.NodeID{{0, 1}},
		},
		Medium: radio.MediumSnapshot{
			R1: 10, R2: 20, GrayZoneDeliveryProb: 0.25, Seed: 42,
			Adversary: 99, Detector: "cd.AC",
		},
		Monitor: vi.MonitorSnapshot{
			VNodes: []vi.VNodeID{0, 2},
			Tops:   []cha.Instance{5, 3},
			Greens: [][]cha.Instance{{1, 2, 5}, {3}},
		},
		Driver: []byte("driver-state"),
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	b := c.AppendTo(nil)
	if len(b) != c.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d bytes", c.WireSize(), len(b))
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendTo(nil), b) {
		t.Fatal("re-encoding the decoded checkpoint changes bytes")
	}
	if !reflect.DeepEqual(got.Engine, c.Engine) || got.Medium != c.Medium {
		t.Fatal("decoded layers differ from the originals")
	}
}

// TestEncodeDecodeFraming pins the file framing: magic, version, and the
// trailing digest that rejects corruption anywhere in the file.
func TestEncodeDecodeFraming(t *testing.T) {
	c := sampleCheckpoint()
	b := c.Encode()

	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendTo(nil), c.AppendTo(nil)) {
		t.Fatal("framed round trip changes the checkpoint")
	}

	if _, err := Decode([]byte("NOTACKPT")); err == nil {
		t.Fatal("foreign file accepted")
	}
	if _, err := Decode(b[:len(b)-3]); err == nil {
		t.Fatal("truncated file accepted")
	}
	for _, i := range []int{0, len(magic) + 1, len(b) / 2, len(b) - 1} {
		flipped := append([]byte(nil), b...)
		flipped[i] ^= 0x40
		if _, err := Decode(flipped); err == nil {
			t.Fatalf("file with byte %d flipped accepted", i)
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	c := sampleCheckpoint()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendTo(nil), c.AppendTo(nil)) {
		t.Fatal("file round trip changes the checkpoint")
	}
}

// FuzzDecodeCheckpoint covers both decode entry points: the framed file
// decoder and the raw body decoder. No panics; accepted bodies must be
// canonical fixed points.
func FuzzDecodeCheckpoint(f *testing.F) {
	c := sampleCheckpoint()
	f.Add(c.Encode())
	f.Add(c.AppendTo(nil))
	f.Add([]byte{})
	f.Add([]byte("VINFCKPT"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if got, err := Decode(data); err == nil {
			// A framed decode that succeeds must re-encode to the same file.
			if !bytes.Equal(got.Encode(), data) {
				t.Fatalf("accepted file re-encodes differently")
			}
		}
		got, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		out := got.AppendTo(nil)
		if len(out) != got.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", got.WireSize(), len(out))
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted body re-encodes differently")
		}
	})
}
