// Package checkpoint composes the per-layer snapshots into one versioned,
// self-validating checkpoint file: the engine layer (sim.EngineSnapshot,
// which carries every node's Snapshotter blob), the medium's configuration
// fingerprint, the vi.Monitor accounting, and an opaque driver blob for
// whatever the experiment loop itself must remember (virtual-round cursor,
// churn counters, rosters). Encode frames the body with a magic string, a
// format version and a trailing wire.Digest, so ReadFile can reject
// truncated, corrupted or foreign files before any layer sees the bytes.
package checkpoint

import (
	"fmt"
	"os"

	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// magic identifies a checkpoint file; version is the format version, bumped
// whenever any layer's snapshot encoding changes shape.
const (
	magic   = "VINFCKPT"
	version = 1
)

// Checkpoint is one suspended run: everything needed to resume it on a
// freshly rebuilt deployment.
type Checkpoint struct {
	Engine  sim.EngineSnapshot
	Medium  radio.MediumSnapshot
	Monitor vi.MonitorSnapshot
	// Driver is the experiment driver's own state, opaque at this layer.
	Driver []byte
}

// AppendTo appends the canonical encoding of the checkpoint body (without
// the file framing; see Encode) to dst.
func (c Checkpoint) AppendTo(dst []byte) []byte {
	dst = wire.AppendBytes(dst, c.Engine.AppendTo(nil))
	dst = wire.AppendBytes(dst, c.Medium.AppendTo(nil))
	dst = wire.AppendBytes(dst, c.Monitor.AppendTo(nil))
	return wire.AppendBytes(dst, c.Driver)
}

// WireSize returns the exact encoded size of the checkpoint body.
func (c Checkpoint) WireSize() int {
	return wire.BytesSize(c.Engine.WireSize()) +
		wire.BytesSize(c.Medium.WireSize()) +
		wire.BytesSize(c.Monitor.WireSize()) +
		wire.BytesSize(len(c.Driver))
}

// DecodeCheckpoint decodes one checkpoint body from b, which must contain
// exactly one encoding.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	d := wire.Dec(b)
	var c Checkpoint
	eng, err := sim.DecodeEngineSnapshot(d.Bytes())
	if err != nil {
		return Checkpoint{}, err
	}
	c.Engine = eng
	med, err := radio.DecodeMediumSnapshot(d.Bytes())
	if err != nil {
		return Checkpoint{}, err
	}
	c.Medium = med
	mon, err := vi.DecodeMonitorSnapshot(d.Bytes())
	if err != nil {
		return Checkpoint{}, err
	}
	c.Monitor = mon
	c.Driver = append([]byte(nil), d.Bytes()...)
	if err := d.Finish(); err != nil {
		return Checkpoint{}, err
	}
	return c, nil
}

// Encode frames the checkpoint for storage: magic, version, length-prefixed
// body, and an FNV-1a digest of everything before it.
func (c Checkpoint) Encode() []byte {
	out := append([]byte(nil), magic...)
	out = wire.AppendUvarint(out, version)
	out = wire.AppendBytes(out, c.AppendTo(nil))
	return wire.AppendUint64(out, uint64(wire.DigestOf(out)))
}

// Decode parses a framed checkpoint produced by Encode, validating magic,
// version and digest.
func Decode(b []byte) (Checkpoint, error) {
	if len(b) < len(magic)+1+8 || string(b[:len(magic)]) != magic {
		return Checkpoint{}, fmt.Errorf("checkpoint: not a checkpoint file")
	}
	body := b[:len(b)-8]
	d := wire.Dec(b[len(b)-8:])
	if got, want := d.Uint64(), uint64(wire.DigestOf(body)); got != want {
		return Checkpoint{}, fmt.Errorf("checkpoint: digest mismatch (corrupt or truncated file)")
	}
	d = wire.Dec(body[len(magic):])
	if v := d.Uvarint(); v != version {
		return Checkpoint{}, fmt.Errorf("checkpoint: format version %d, this build reads %d", v, version)
	}
	c, err := DecodeCheckpoint(d.Bytes())
	if err != nil {
		return Checkpoint{}, err
	}
	if err := d.Finish(); err != nil {
		return Checkpoint{}, err
	}
	return c, nil
}

// WriteFile atomically writes the framed checkpoint to path (write to a
// temp file in the same directory, then rename), so a kill mid-write never
// leaves a torn checkpoint behind.
func (c Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, c.Encode(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile reads and validates a checkpoint written by WriteFile.
func ReadFile(path string) (Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	return Decode(b)
}
