package mobility

import (
	"math/rand"
	"testing"

	"vinfra/internal/geo"
)

func intn(seed int64) func(int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn
}

func TestStatic(t *testing.T) {
	var m Static
	p := geo.Point{X: 3, Y: 4}
	if got := m.Move(0, p, intn(1)); got != p {
		t.Errorf("Static moved: %v", got)
	}
}

func TestLinear(t *testing.T) {
	m := Linear{Velocity: geo.Vector{DX: 1, DY: -2}}
	p := geo.Point{}
	for i := 0; i < 3; i++ {
		p = m.Move(0, p, intn(1))
	}
	if p != (geo.Point{X: 3, Y: -6}) {
		t.Errorf("Linear after 3 rounds = %v, want (3,-6)", p)
	}
}

func TestRandomWaypointStaysInAreaAndRespectsVMax(t *testing.T) {
	area := geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 50, Y: 50}}
	m := &RandomWaypoint{Area: area, VMax: 2}
	rnd := intn(7)
	cur := geo.Point{X: 25, Y: 25}
	for i := 0; i < 500; i++ {
		next := m.Move(0, cur, rnd)
		if d := next.Dist(cur); d > 2+1e-9 {
			t.Fatalf("step %d: moved %v > vmax", i, d)
		}
		if !area.Contains(next) {
			t.Fatalf("step %d: left the area: %v", i, next)
		}
		cur = next
	}
}

func TestRandomWaypointActuallyMoves(t *testing.T) {
	area := geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 50, Y: 50}}
	m := &RandomWaypoint{Area: area, VMax: 1}
	rnd := intn(3)
	start := geo.Point{X: 25, Y: 25}
	cur := start
	for i := 0; i < 100; i++ {
		cur = m.Move(0, cur, rnd)
	}
	if cur.Dist(start) == 0 {
		t.Error("random waypoint never moved in 100 rounds")
	}
}

func TestWaypointsTour(t *testing.T) {
	tour := []geo.Point{{X: 10}, {X: 10, Y: 10}}
	m := &Waypoints{Tour: tour, VMax: 5}
	cur := geo.Point{}
	// 2 steps to reach (10,0), then 2 to reach (10,10), then back.
	for i := 0; i < 2; i++ {
		cur = m.Move(0, cur, intn(1))
	}
	if cur != (geo.Point{X: 10}) {
		t.Fatalf("after 2 steps: %v, want (10,0)", cur)
	}
	for i := 0; i < 2; i++ {
		cur = m.Move(0, cur, intn(1))
	}
	if cur != (geo.Point{X: 10, Y: 10}) {
		t.Fatalf("after 4 steps: %v, want (10,10)", cur)
	}
	// Tour cycles back toward the first waypoint.
	cur = m.Move(0, cur, intn(1))
	if cur.Dist(geo.Point{X: 10, Y: 10}) > 5+1e-9 {
		t.Errorf("cycling step too large: %v", cur)
	}
}

func TestWaypointsEmptyTour(t *testing.T) {
	m := &Waypoints{VMax: 5}
	p := geo.Point{X: 1, Y: 2}
	if got := m.Move(0, p, intn(1)); got != p {
		t.Errorf("empty tour moved node: %v", got)
	}
}

func TestTetherStaysInRadius(t *testing.T) {
	anchor := geo.Point{X: 5, Y: 5}
	m := Tether{Anchor: anchor, Radius: 3, VMax: 1}
	rnd := intn(11)
	cur := anchor
	for i := 0; i < 1000; i++ {
		next := m.Move(0, cur, rnd)
		if next.Dist(anchor) > 3+1e-9 {
			t.Fatalf("step %d: tethered node escaped to %v", i, next)
		}
		if next.Dist(cur) > 2*1.0+1e-9 { // step bounded by sqrt(2)*VMax < 2*VMax
			t.Fatalf("step %d: moved too far", i)
		}
		cur = next
	}
}

func TestTetherMoves(t *testing.T) {
	anchor := geo.Point{}
	m := Tether{Anchor: anchor, Radius: 10, VMax: 1}
	rnd := intn(13)
	cur := anchor
	moved := false
	for i := 0; i < 50; i++ {
		next := m.Move(0, cur, rnd)
		if next != cur {
			moved = true
		}
		cur = next
	}
	if !moved {
		t.Error("tethered node never moved")
	}
}

func TestDeterminism(t *testing.T) {
	area := geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 50, Y: 50}}
	run := func() geo.Point {
		m := &RandomWaypoint{Area: area, VMax: 2}
		rnd := intn(42)
		cur := geo.Point{X: 10, Y: 10}
		for i := 0; i < 200; i++ {
			cur = m.Move(0, cur, rnd)
		}
		return cur
	}
	if run() != run() {
		t.Error("same seed should reproduce the same trajectory")
	}
}
