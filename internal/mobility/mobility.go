// Package mobility provides the motion models for mobile nodes (Section 2:
// nodes reside at locations in the plane and move with velocity bounded by
// vmax, receiving periodic location updates from a GPS-like service). All
// models implement sim.Mover and advance positions by at most VMax per
// round, deterministically given the node's random source.
package mobility

import (
	"vinfra/internal/geo"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// rndFloat converts the engine's integer random source into a uniform
// float64 in [0, 1).
func rndFloat(rnd func(int) int) float64 {
	const bits = 1 << 30
	return float64(rnd(bits)) / float64(bits)
}

// Static never moves. It is the zero-mobility model used when replicas are
// pinned inside a virtual node's region.
type Static struct{}

// Move implements sim.Mover.
func (Static) Move(_ sim.Round, cur geo.Point, _ func(int) int) geo.Point {
	return cur
}

// Linear moves with a constant velocity vector each round (a vehicle on a
// straight road). Callers must keep Velocity.Len() <= vmax themselves.
type Linear struct {
	Velocity geo.Vector
}

// Move implements sim.Mover.
func (l Linear) Move(_ sim.Round, cur geo.Point, _ func(int) int) geo.Point {
	return cur.Add(l.Velocity)
}

// RandomWaypoint is the classic ad hoc mobility model: pick a uniform
// destination in Area, travel toward it at speed VMax per round, repeat on
// arrival. The zero value is invalid; all fields are required.
type RandomWaypoint struct {
	Area geo.Rect
	VMax float64

	dest    geo.Point
	hasDest bool
}

// Move implements sim.Mover.
func (m *RandomWaypoint) Move(_ sim.Round, cur geo.Point, rnd func(int) int) geo.Point {
	if !m.hasDest || cur.Dist(m.dest) < m.VMax {
		m.dest = geo.Point{
			X: m.Area.Min.X + rndFloat(rnd)*m.Area.Width(),
			Y: m.Area.Min.Y + rndFloat(rnd)*m.Area.Height(),
		}
		m.hasDest = true
	}
	step := m.dest.Sub(cur)
	if step.Len() <= m.VMax {
		return m.dest
	}
	return cur.Add(step.Unit().Scale(m.VMax))
}

// AppendState implements sim.Snapshotter: the model's only mutable state is
// the current destination (the Area/VMax configuration is rebuilt by the
// caller, like every other snapshot in the stack).
func (m *RandomWaypoint) AppendState(dst []byte) []byte {
	dst = wire.AppendBool(dst, m.hasDest)
	dst = wire.AppendFloat64(dst, m.dest.X)
	return wire.AppendFloat64(dst, m.dest.Y)
}

// RestoreState implements sim.Snapshotter.
func (m *RandomWaypoint) RestoreState(data []byte) error {
	d := wire.Dec(data)
	m.hasDest = d.Bool()
	m.dest.X = d.Float64()
	m.dest.Y = d.Float64()
	return d.Finish()
}

// Waypoints follows a fixed cyclic tour of points at speed VMax per round —
// the paper's motivating mobile-robot scenario, where robots are directed
// between virtual-node locations.
type Waypoints struct {
	Tour []geo.Point
	VMax float64

	next int
}

// Move implements sim.Mover.
func (m *Waypoints) Move(_ sim.Round, cur geo.Point, _ func(int) int) geo.Point {
	if len(m.Tour) == 0 {
		return cur
	}
	target := m.Tour[m.next%len(m.Tour)]
	step := target.Sub(cur)
	if step.Len() <= m.VMax {
		m.next = (m.next + 1) % len(m.Tour)
		return target
	}
	return cur.Add(step.Unit().Scale(m.VMax))
}

// AppendState implements sim.Snapshotter: the tour position is the model's
// only mutable state.
func (m *Waypoints) AppendState(dst []byte) []byte {
	return wire.AppendUvarint(dst, uint64(m.next))
}

// RestoreState implements sim.Snapshotter.
func (m *Waypoints) RestoreState(data []byte) error {
	d := wire.Dec(data)
	m.next = int(d.Uvarint())
	return d.Finish()
}

// Tether performs a bounded random walk around a fixed anchor: each round
// it takes a uniform random step of at most VMax, rejected (stay put) if it
// would leave the disk of the given Radius around Anchor. It models devices
// that linger near a virtual-node location — the population that keeps a
// virtual node alive (Section 4.2).
type Tether struct {
	Anchor geo.Point
	Radius float64
	VMax   float64
}

// Move implements sim.Mover.
func (m Tether) Move(_ sim.Round, cur geo.Point, rnd func(int) int) geo.Point {
	dx := (rndFloat(rnd)*2 - 1) * m.VMax
	dy := (rndFloat(rnd)*2 - 1) * m.VMax
	next := cur.Add(geo.Vector{DX: dx, DY: dy})
	if next.Dist(m.Anchor) > m.Radius {
		return cur
	}
	return next
}
