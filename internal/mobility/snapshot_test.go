package mobility

import (
	"testing"

	"vinfra/internal/geo"
)

// TestRandomWaypointSnapshotRoundTrip pins the mover blob: a restored
// RandomWaypoint continues toward the exact destination the snapshotted
// one was traveling to, so the resumed trajectory is identical.
func TestRandomWaypointSnapshotRoundTrip(t *testing.T) {
	area := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}
	rnd := func(n int) int { return n / 3 } // fixed, deterministic draws

	m := &RandomWaypoint{Area: area, VMax: 2}
	pos := geo.Point{X: 50, Y: 50}
	for r := 0; r < 5; r++ {
		pos = m.Move(0, pos, rnd)
	}

	fresh := &RandomWaypoint{Area: area, VMax: 2}
	if err := fresh.RestoreState(m.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	a, b := pos, pos
	for r := 0; r < 10; r++ {
		a = m.Move(0, a, rnd)
		b = fresh.Move(0, b, rnd)
		if a != b {
			t.Fatalf("round %d: restored mover at %+v, original at %+v", r, b, a)
		}
	}

	if err := fresh.RestoreState([]byte{0x01}); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestWaypointsSnapshotRoundTrip pins the tour-position blob.
func TestWaypointsSnapshotRoundTrip(t *testing.T) {
	tour := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}}
	m := &Waypoints{Tour: tour, VMax: 3}
	pos := geo.Point{X: 0, Y: 0}
	for r := 0; r < 7; r++ {
		pos = m.Move(0, pos, nil)
	}

	fresh := &Waypoints{Tour: tour, VMax: 3}
	if err := fresh.RestoreState(m.AppendState(nil)); err != nil {
		t.Fatal(err)
	}
	if fresh.next != m.next {
		t.Fatalf("restored next = %d, want %d", fresh.next, m.next)
	}
	a, b := pos, pos
	for r := 0; r < 10; r++ {
		a = m.Move(0, a, nil)
		b = fresh.Move(0, b, nil)
		if a != b {
			t.Fatalf("round %d: restored mover at %+v, original at %+v", r, b, a)
		}
	}
}
