// Package geo provides the planar geometry underlying the quasi-unit-disk
// communication model of Chockler, Gilbert and Lynch (PODC 2008), Section 2:
// points in the plane, distances, disks of broadcast radius R1 and
// interference radius R2, and the regular grids on which virtual nodes are
// deployed.
package geo

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the plane. The zero value is the origin.
type Point struct {
	X, Y float64
}

// String renders the point as "(x, y)" with two decimals.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Add returns p translated by v.
func (p Point) Add(v Vector) Point {
	return Point{X: p.X + v.DX, Y: p.Y + v.DY}
}

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector {
	return Vector{DX: p.X - q.X, DY: p.Y - q.Y}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for distance comparisons on the hot path of the radio
// medium.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within distance r of p (inclusive).
func (p Point) Within(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// Vector is a displacement in the plane.
type Vector struct {
	DX, DY float64
}

// Len returns the Euclidean length of v.
func (v Vector) Len() float64 {
	return math.Hypot(v.DX, v.DY)
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	return Vector{DX: v.DX * f, DY: v.DY * f}
}

// Unit returns the unit vector in the direction of v. The unit vector of the
// zero vector is the zero vector.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 {
		return Vector{}
	}
	return v.Scale(1 / l)
}

// Radii bundles the two radii of the quasi-unit-disk model: two nodes within
// R1 of each other can communicate; two nodes within R2 interfere. The model
// requires R1 <= R2.
type Radii struct {
	R1 float64 // broadcast radius
	R2 float64 // interference radius
}

// Validate reports whether the radii are well formed (0 < R1 <= R2).
func (r Radii) Validate() error {
	if r.R1 <= 0 {
		return fmt.Errorf("geo: broadcast radius R1 = %v, must be positive", r.R1)
	}
	if r.R2 < r.R1 {
		return fmt.Errorf("geo: interference radius R2 = %v < broadcast radius R1 = %v", r.R2, r.R1)
	}
	return nil
}

// CanReach reports whether a transmitter at from can deliver a message to a
// receiver at to (distance at most R1).
func (r Radii) CanReach(from, to Point) bool {
	return from.Within(to, r.R1)
}

// CanInterfere reports whether a transmitter at from can interfere with
// reception at to (distance at most R2).
func (r Radii) CanInterfere(from, to Point) bool {
	return from.Within(to, r.R2)
}

// Rect is an axis-aligned rectangle, used to bound deployment areas.
type Rect struct {
	Min, Max Point
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Clamp returns the point of the rectangle closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Grid describes a regular square grid of virtual-node locations with the
// given spacing, anchored at Origin, with Cols x Rows cells. Virtual
// infrastructure deployments in the paper place virtual nodes "at regular
// locations throughout the world"; Grid is that deployment.
type Grid struct {
	Origin  Point
	Spacing float64
	Cols    int
	Rows    int
}

// Locations returns the grid points in row-major order.
func (g Grid) Locations() []Point {
	pts := make([]Point, 0, g.Cols*g.Rows)
	for row := 0; row < g.Rows; row++ {
		for col := 0; col < g.Cols; col++ {
			pts = append(pts, Point{
				X: g.Origin.X + float64(col)*g.Spacing,
				Y: g.Origin.Y + float64(row)*g.Spacing,
			})
		}
	}
	return pts
}

// Bounds returns the smallest rectangle containing every grid location.
func (g Grid) Bounds() Rect {
	if g.Cols <= 0 || g.Rows <= 0 {
		return Rect{Min: g.Origin, Max: g.Origin}
	}
	return Rect{
		Min: g.Origin,
		Max: Point{
			X: g.Origin.X + float64(g.Cols-1)*g.Spacing,
			Y: g.Origin.Y + float64(g.Rows-1)*g.Spacing,
		},
	}
}

// NeighborGraph returns, for each location index, the indexes of the other
// locations within threshold distance, in increasing index order. It is
// used to build non-conflicting virtual-node schedules (Section 4.1),
// where the conflict threshold is R1 + 2*R2.
//
// The graph is built through a CellIndex with cell size equal to the
// threshold, so construction is O(n * k) in the neighbor count k rather
// than O(n^2).
func NeighborGraph(locs []Point, threshold float64) [][]int {
	adj := make([][]int, len(locs))
	if len(locs) == 0 {
		return adj
	}
	t2 := threshold * threshold
	if threshold <= 0 {
		// Degenerate threshold: only coincident points are neighbors.
		for i := range locs {
			for j := i + 1; j < len(locs); j++ {
				if locs[i].Dist2(locs[j]) <= t2 {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		return adj
	}
	ix := BuildCellIndex(locs, threshold)
	var buf []int32
	for i := range locs {
		buf = ix.Near(buf[:0], locs[i], 1)
		for _, j := range buf {
			if int(j) != i && locs[i].Dist2(locs[j]) <= t2 {
				adj[i] = append(adj[i], int(j))
			}
		}
		sort.Ints(adj[i])
	}
	return adj
}
