package geo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCellIndexWithinMatchesBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8, cellRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw%64) + 1
		cell := 0.5 + float64(cellRaw%40)
		r := 0.1 + float64(rRaw%60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50}
		}
		ix := BuildCellIndex(pts, cell)
		for trial := 0; trial < 4; trial++ {
			q := Point{X: rng.Float64()*120 - 60, Y: rng.Float64()*120 - 60}
			got := ix.Within(nil, q, r)
			var want []int32
			for i := range pts {
				if pts[i].Dist2(q) <= r*r {
					want = append(want, int32(i))
				}
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCellIndexNearIsSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 80, Y: rng.Float64() * 80}
	}
	const cell = 10.0
	ix := BuildCellIndex(pts, cell)
	for trial := 0; trial < 50; trial++ {
		q := Point{X: rng.Float64() * 80, Y: rng.Float64() * 80}
		near := ix.Near(nil, q, 1)
		seen := make(map[int32]bool, len(near))
		for _, i := range near {
			seen[i] = true
		}
		for i := range pts {
			if pts[i].Dist2(q) <= cell*cell && !seen[int32(i)] {
				t.Fatalf("point %d within %v of %v missing from Near", i, cell, q)
			}
		}
	}
}

func TestCellIndexRings(t *testing.T) {
	ix := BuildCellIndex(nil, 10)
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0}, {-1, 0}, {5, 1}, {10, 1}, {10.01, 2}, {25, 3},
	}
	for _, c := range cases {
		if got := ix.Rings(c.r); got != c.want {
			t.Errorf("Rings(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestCellIndexNegativeCoordinates(t *testing.T) {
	// Floor (not truncation) must be used to key cells, or points just
	// left of the axis collapse into the cell just right of it.
	pts := []Point{{-0.5, -0.5}, {0.5, 0.5}}
	ix := BuildCellIndex(pts, 1)
	a, b := ix.keyOf(pts[0]), ix.keyOf(pts[1])
	if a == b {
		t.Fatalf("points on opposite sides of the origin share cell %+v", a)
	}
	got := ix.Within(nil, Point{-0.5, -0.5}, 0.1)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("Within around (-0.5,-0.5) = %v, want [0]", got)
	}
}

func TestBuildCellIndexRejectsBadCell(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BuildCellIndex(cell=%v) did not panic", bad)
				}
			}()
			BuildCellIndex(nil, bad)
		}()
	}
}

// TestNeighborGraphMatchesBruteForce pins the CellIndex-backed
// NeighborGraph to the quadratic reference implementation, including
// adjacency order.
func TestNeighborGraphMatchesBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8, tRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw % 50)
		threshold := 0.5 + float64(tRaw%30)
		locs := make([]Point, n)
		for i := range locs {
			locs[i] = Point{X: rng.Float64()*60 - 30, Y: rng.Float64()*60 - 30}
		}
		got := NeighborGraph(locs, threshold)
		want := make([][]int, n)
		t2 := threshold * threshold
		for i := range locs {
			for j := range locs {
				if i != j && locs[i].Dist2(locs[j]) <= t2 {
					want[i] = append(want[i], j)
				}
			}
			sort.Ints(want[i])
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				return false
			}
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCellIndexNearestWithinMatchesBruteForce pins the gridded
// nearest-within-radius query to a linear scan applying the same rule
// (smallest distance, exact ties toward the lower index).
func TestCellIndexNearestWithinMatchesBruteForce(t *testing.T) {
	f := func(seed uint32, nRaw uint8, cellRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw % 64) // zero points is a valid index
		cell := 0.5 + float64(cellRaw%40)
		r := 0.1 + float64(rRaw%60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50}
		}
		ix := BuildCellIndex(pts, cell)
		for trial := 0; trial < 4; trial++ {
			q := Point{X: rng.Float64()*120 - 60, Y: rng.Float64()*120 - 60}
			got, ok := ix.NearestWithin(q, r)
			want, wantOK := -1, false
			bestD2 := r * r
			for i := range pts {
				if d2 := pts[i].Dist2(q); d2 <= bestD2 && (!wantOK || d2 < bestD2) {
					want, wantOK = i, true
					bestD2 = d2
				}
			}
			if ok != wantOK || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCellIndexNearestWithinTiesAndEdges(t *testing.T) {
	pts := []Point{{X: 2}, {X: -2}, {X: 10}}
	ix := BuildCellIndex(pts, 2)
	// Exact tie between indices 0 and 1 breaks toward the lower index.
	if got, ok := ix.NearestWithin(Point{}, 3); !ok || got != 0 {
		t.Errorf("tie = (%d, %v), want (0, true)", got, ok)
	}
	// The radius is inclusive.
	if got, ok := ix.NearestWithin(Point{}, 2); !ok || got != 0 {
		t.Errorf("inclusive boundary = (%d, %v), want (0, true)", got, ok)
	}
	// Nothing within range.
	if _, ok := ix.NearestWithin(Point{Y: 50}, 3); ok {
		t.Error("found a point where none is within range")
	}
	// Negative radius finds nothing.
	if _, ok := ix.NearestWithin(Point{X: 2}, -1); ok {
		t.Error("negative radius found a point")
	}
}

// TestCellIndexRebuildMatchesFreshBuild drives Rebuild through several
// rounds of shifting points and compares every query against a freshly
// built index — and checks the steady state allocates nothing.
func TestCellIndexRebuildMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const cell = 5.0
	pts := make([]Point, 120)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
	}
	ix := BuildCellIndex(pts, cell)
	for round := 0; round < 6; round++ {
		// Shift points (and change the count) as a mobile round would.
		pts = pts[:60+rng.Intn(60)]
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
		}
		ix.Rebuild(pts)
		fresh := BuildCellIndex(pts, cell)
		if ix.Len() != fresh.Len() {
			t.Fatalf("round %d: Len = %d, want %d", round, ix.Len(), fresh.Len())
		}
		for trial := 0; trial < 20; trial++ {
			q := Point{X: rng.Float64() * 60, Y: rng.Float64() * 60}
			got := ix.Within(nil, q, 7)
			want := fresh.Within(nil, q, 7)
			if len(got) != len(want) {
				t.Fatalf("round %d: Within lengths differ: %v vs %v", round, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("round %d: Within = %v, want %v", round, got, want)
				}
			}
		}
	}
	// Rebuilding in place over the same cells must not allocate.
	if avg := testing.AllocsPerRun(20, func() { ix.Rebuild(pts) }); avg > 0 {
		t.Errorf("steady-state Rebuild allocates %.1f times per call, want 0", avg)
	}
}
