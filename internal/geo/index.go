package geo

import (
	"fmt"
	"math"
	"sort"
)

// CellIndex is a uniform-grid spatial index over a fixed slice of points:
// the plane is partitioned into square cells of a given side length and
// each point is bucketed by the cell containing it. It answers "which
// points lie near p" by visiting only the cells around p's cell, turning
// the O(n) scan of a radius query into O(points in the nearby cells).
//
// The index is built once per round from that round's positions (building
// is O(n)) and is immutable afterwards, so concurrent queries are safe.
// The radio medium builds one per round with cell size equal to the
// interference radius R2, so every point within R2 of a query point is
// found in the 3x3 block of cells around it.
type CellIndex struct {
	pts   []Point
	cell  float64
	inv   float64
	cells map[cellKey][]int32
}

type cellKey struct {
	X, Y int64
}

// BuildCellIndex indexes pts into cells of side cellSize. It panics if
// cellSize is not positive; callers index against a physical radius which
// the model requires to be positive.
func BuildCellIndex(pts []Point, cellSize float64) *CellIndex {
	if cellSize <= 0 || math.IsNaN(cellSize) || math.IsInf(cellSize, 0) {
		panic(fmt.Sprintf("geo: BuildCellIndex cell size %v, must be positive and finite", cellSize))
	}
	ix := &CellIndex{
		pts:   pts,
		cell:  cellSize,
		inv:   1 / cellSize,
		cells: make(map[cellKey][]int32, len(pts)),
	}
	for i := range pts {
		k := ix.keyOf(pts[i])
		ix.cells[k] = append(ix.cells[k], int32(i))
	}
	return ix
}

// Cell returns the cell side length the index was built with.
func (ix *CellIndex) Cell() float64 { return ix.cell }

// Len returns the number of indexed points.
func (ix *CellIndex) Len() int { return len(ix.pts) }

func (ix *CellIndex) keyOf(p Point) cellKey {
	return cellKey{
		X: int64(math.Floor(p.X * ix.inv)),
		Y: int64(math.Floor(p.Y * ix.inv)),
	}
}

// Rings returns the number of cell rings k that must be visited around a
// query point's cell so that every indexed point within distance r is
// covered: k = ceil(r / cell). A query radius equal to the cell size needs
// a single ring (the 3x3 block).
func (ix *CellIndex) Rings(r float64) int {
	if r <= 0 {
		return 0
	}
	return int(math.Ceil(r * ix.inv))
}

// VisitNear calls fn with the index of every point bucketed in the
// (2k+1)x(2k+1) block of cells centered on p's cell. The visited set is a
// superset of the points within distance k*cell of p; callers filter by
// exact distance. Within one cell, indices are visited in increasing
// order; cells are visited row-major.
func (ix *CellIndex) VisitNear(p Point, k int, fn func(i int32)) {
	c := ix.keyOf(p)
	for dy := int64(-k); dy <= int64(k); dy++ {
		for dx := int64(-k); dx <= int64(k); dx++ {
			for _, i := range ix.cells[cellKey{X: c.X + dx, Y: c.Y + dy}] {
				fn(i)
			}
		}
	}
}

// Near appends to buf the indices of every point in the (2k+1)x(2k+1)
// block of cells centered on p's cell and returns the extended slice.
// Pass buf[:0] of a reused slice to avoid allocation on hot paths.
func (ix *CellIndex) Near(buf []int32, p Point, k int) []int32 {
	ix.VisitNear(p, k, func(i int32) { buf = append(buf, i) })
	return buf
}

// NearestWithin returns the index of the indexed point nearest to p among
// those within distance r of it (inclusive), and whether one exists. Exact
// distance ties break toward the lower index, independent of cell visiting
// order. Only the cell rings covering r are probed, so a query with r equal
// to the cell size costs a 3x3-cell probe regardless of how many points are
// indexed — this is the query behind vi.Deployment.RegionOf.
func (ix *CellIndex) NearestWithin(p Point, r float64) (int, bool) {
	if r < 0 {
		return 0, false
	}
	best := -1
	bestD2 := r * r
	ix.VisitNear(p, ix.Rings(r), func(i int32) {
		d2 := ix.pts[i].Dist2(p)
		if d2 > bestD2 {
			return
		}
		if d2 < bestD2 || best == -1 || int(i) < best {
			best = int(i)
			bestD2 = d2
		}
	})
	return best, best >= 0
}

// Rebuild re-indexes the index over pts, which replaces the previously
// indexed slice, keeping the cell size. Existing cell buckets are truncated
// rather than deleted, so once the map covers every cell the points ever
// visit, steady-state rebuilds allocate nothing — the radio medium rebuilds
// its transmission index this way every round.
func (ix *CellIndex) Rebuild(pts []Point) {
	for k, s := range ix.cells {
		ix.cells[k] = s[:0]
	}
	ix.pts = pts
	for i := range pts {
		k := ix.keyOf(pts[i])
		ix.cells[k] = append(ix.cells[k], int32(i))
	}
}

// Within appends to buf the indices of every indexed point within distance
// r of p (inclusive), in increasing index order, and returns the extended
// slice.
func (ix *CellIndex) Within(buf []int32, p Point, r float64) []int32 {
	start := len(buf)
	r2 := r * r
	ix.VisitNear(p, ix.Rings(r), func(i int32) {
		if ix.pts[i].Dist2(p) <= r2 {
			buf = append(buf, i)
		}
	})
	out := buf[start:]
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return buf
}
