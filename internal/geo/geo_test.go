package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
		{"symmetric", Point{2, 7}, Point{-1, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.q.Dist(tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist not symmetric: %v vs %v", got, tt.want)
			}
		})
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane range to avoid overflow in the property.
		p := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		q := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		d := p.Dist(q)
		return math.Abs(p.Dist2(q)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{math.Mod(ax, 1e6), math.Mod(ay, 1e6)}
		b := Point{math.Mod(bx, 1e6), math.Mod(by, 1e6)}
		c := Point{math.Mod(cx, 1e6), math.Mod(cy, 1e6)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithin(t *testing.T) {
	p := Point{0, 0}
	if !p.Within(Point{3, 4}, 5) {
		t.Error("boundary point should be within (inclusive)")
	}
	if p.Within(Point{3, 4}, 4.999) {
		t.Error("point beyond radius reported within")
	}
}

func TestVector(t *testing.T) {
	v := Point{3, 4}.Sub(Point{0, 0})
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	u := v.Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Errorf("Unit().Len() = %v, want 1", u.Len())
	}
	if z := (Vector{}).Unit(); z != (Vector{}) {
		t.Errorf("Unit of zero vector = %v, want zero", z)
	}
	if got := v.Scale(2).Len(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Scale(2).Len() = %v, want 10", got)
	}
	if got := (Point{1, 1}).Add(Vector{2, 3}); got != (Point{3, 4}) {
		t.Errorf("Add = %v, want (3,4)", got)
	}
}

func TestRadiiValidate(t *testing.T) {
	tests := []struct {
		name    string
		r       Radii
		wantErr bool
	}{
		{"valid equal", Radii{R1: 1, R2: 1}, false},
		{"valid wider interference", Radii{R1: 1, R2: 2}, false},
		{"zero R1", Radii{R1: 0, R2: 1}, true},
		{"negative R1", Radii{R1: -1, R2: 1}, true},
		{"R2 below R1", Radii{R1: 2, R2: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.r.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRadiiReachAndInterfere(t *testing.T) {
	r := Radii{R1: 1, R2: 2}
	a := Point{0, 0}
	if !r.CanReach(a, Point{1, 0}) {
		t.Error("CanReach at exactly R1 should hold")
	}
	if r.CanReach(a, Point{1.5, 0}) {
		t.Error("CanReach beyond R1 should not hold")
	}
	if !r.CanInterfere(a, Point{1.5, 0}) {
		t.Error("CanInterfere within R2 should hold")
	}
	if r.CanInterfere(a, Point{2.5, 0}) {
		t.Error("CanInterfere beyond R2 should not hold")
	}
}

func TestReachImpliesInterfere(t *testing.T) {
	f := func(r1, r2, px, py float64) bool {
		r1 = 0.1 + math.Abs(math.Mod(r1, 100))
		r2 = r1 + math.Abs(math.Mod(r2, 100))
		r := Radii{R1: r1, R2: r2}
		p := Point{math.Mod(px, 200), math.Mod(py, 200)}
		origin := Point{}
		if r.CanReach(origin, p) && !r.CanInterfere(origin, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Rect{Min: Point{0, 0}, Max: Point{10, 5}}
	if !r.Contains(Point{5, 2.5}) {
		t.Error("center should be contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 5}) {
		t.Error("corners should be contained (inclusive)")
	}
	if r.Contains(Point{-0.1, 2}) || r.Contains(Point{5, 5.1}) {
		t.Error("outside points reported contained")
	}
	if got := r.Clamp(Point{-3, 7}); got != (Point{0, 5}) {
		t.Errorf("Clamp = %v, want (0,5)", got)
	}
	if got := r.Clamp(Point{4, 2}); got != (Point{4, 2}) {
		t.Errorf("Clamp of interior point = %v, want unchanged", got)
	}
	if r.Width() != 10 || r.Height() != 5 {
		t.Errorf("Width/Height = %v/%v, want 10/5", r.Width(), r.Height())
	}
}

func TestClampAlwaysContained(t *testing.T) {
	r := Rect{Min: Point{-5, -5}, Max: Point{5, 5}}
	f := func(x, y float64) bool {
		p := Point{math.Mod(x, 1e6), math.Mod(y, 1e6)}
		return r.Contains(r.Clamp(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridLocations(t *testing.T) {
	g := Grid{Origin: Point{1, 2}, Spacing: 10, Cols: 3, Rows: 2}
	locs := g.Locations()
	if len(locs) != 6 {
		t.Fatalf("len(Locations) = %d, want 6", len(locs))
	}
	want := []Point{{1, 2}, {11, 2}, {21, 2}, {1, 12}, {11, 12}, {21, 12}}
	for i, w := range want {
		if locs[i] != w {
			t.Errorf("Locations[%d] = %v, want %v", i, locs[i], w)
		}
	}
	b := g.Bounds()
	if b.Min != (Point{1, 2}) || b.Max != (Point{21, 12}) {
		t.Errorf("Bounds = %+v, want (1,2)-(21,12)", b)
	}
}

func TestGridBoundsDegenerate(t *testing.T) {
	g := Grid{Origin: Point{3, 3}, Spacing: 5, Cols: 0, Rows: 0}
	b := g.Bounds()
	if b.Min != b.Max || b.Min != (Point{3, 3}) {
		t.Errorf("degenerate Bounds = %+v, want point at origin", b)
	}
	if len(g.Locations()) != 0 {
		t.Error("degenerate grid should have no locations")
	}
}

func TestNeighborGraph(t *testing.T) {
	locs := []Point{{0, 0}, {1, 0}, {3, 0}, {10, 10}}
	adj := NeighborGraph(locs, 2.5)
	// 0-1 (d=1), 0-2 (d=3, too far... wait 3 > 2.5, so no), 1-2 (d=2, yes)
	wantDeg := []int{1, 2, 1, 0}
	for i, want := range wantDeg {
		if got := len(adj[i]); got != want {
			t.Errorf("deg(%d) = %d, want %d (adj=%v)", i, got, want, adj[i])
		}
	}
}

func TestNeighborGraphSymmetric(t *testing.T) {
	g := Grid{Spacing: 1, Cols: 5, Rows: 5}
	locs := g.Locations()
	adj := NeighborGraph(locs, 1.5)
	for i, ns := range adj {
		for _, j := range ns {
			found := false
			for _, back := range adj[j] {
				if back == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("edge %d->%d not symmetric", i, j)
			}
		}
	}
}

func TestNeighborGraphGridDegrees(t *testing.T) {
	// With threshold 1.0 on a unit grid, interior nodes have exactly 4
	// neighbors, corners 2, edges 3.
	g := Grid{Spacing: 1, Cols: 3, Rows: 3}
	adj := NeighborGraph(g.Locations(), 1.0)
	wantDeg := []int{2, 3, 2, 3, 4, 3, 2, 3, 2}
	for i, want := range wantDeg {
		if got := len(adj[i]); got != want {
			t.Errorf("deg(%d) = %d, want %d", i, got, want)
		}
	}
}
