// Package shard is the partition plane behind the region-sharded
// simulation engine: pure integer arithmetic mapping positions to cells,
// cells to owning shards, and transmissions to the set of shards whose
// boundary band they land in. It holds no node state and draws no
// randomness — given the same cell bounds it always produces the same
// partition, which is what lets the sharded engine stay byte-identical to
// the sequential one (the determinism contract of internal/det).
//
// Geometry: the world is cut into uniform cells of side CellSize (the
// engine uses the interference radius R2, matching geo.CellIndex), and the
// occupied cell bounding box is split into a Cols x Rows grid of shard
// rectangles. Because a cell is at least R2 wide, everything within R2 of
// a point in cell (cx, cy) lies inside the 3x3 cell block around it — so a
// transmission is relevant to a shard exactly when that block intersects
// the shard's rectangle. HaloSpan returns that shard range; a transmission
// whose span covers more than its owner is a boundary-band transmission
// copied to the neighbors at the round edge.
package shard

import (
	"fmt"
	"math"

	"vinfra/internal/geo"
)

// Plan is one round's partition: a fixed shard grid plus the cell bounding
// box fitted to the current population by Fit. The zero value is unusable;
// construct with NewPlan. A Plan is not safe for concurrent mutation (Fit),
// but all read methods are pure and safe to call from shard workers.
type Plan struct {
	cell float64 // cell side, >= the medium's interference radius
	inv  float64 // 1/cell
	cols int
	rows int

	// Fitted bounds (inclusive, cell coordinates) and the per-shard spans
	// derived from them. Valid after Fit; Fit with an empty population
	// keeps the previous bounds, which is harmless because nothing is
	// partitioned then.
	minCX, minCY int64
	spanX, spanY int64
}

// NewPlan returns a plan cutting the world into cols x rows shard
// rectangles over cells of side cellSize.
func NewPlan(cellSize float64, cols, rows int) (*Plan, error) {
	if !(cellSize > 0) || math.IsInf(cellSize, 0) {
		return nil, fmt.Errorf("shard: cell size %v must be a positive finite number", cellSize)
	}
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("shard: grid %dx%d must have at least one shard per axis", cols, rows)
	}
	return &Plan{
		cell:  cellSize,
		inv:   1 / cellSize,
		cols:  cols,
		rows:  rows,
		spanX: 1,
		spanY: 1,
	}, nil
}

// MustPlan is NewPlan, panicking on error.
func MustPlan(cellSize float64, cols, rows int) *Plan {
	p, err := NewPlan(cellSize, cols, rows)
	if err != nil {
		panic(err)
	}
	return p
}

// Shards returns the number of shard rectangles (Cols*Rows).
func (p *Plan) Shards() int { return p.cols * p.rows }

// Cols returns the shard-grid width.
func (p *Plan) Cols() int { return p.cols }

// Rows returns the shard-grid height.
func (p *Plan) Rows() int { return p.rows }

// CellSize returns the cell side length.
func (p *Plan) CellSize() float64 { return p.cell }

// CellOf maps a position to its cell coordinates — the same floor bucketing
// geo.CellIndex uses, so a medium's grid and the shard partition agree on
// which cell a node is in.
func (p *Plan) CellOf(pt geo.Point) (cx, cy int64) {
	return int64(math.Floor(pt.X * p.inv)), int64(math.Floor(pt.Y * p.inv))
}

// Fit resizes the shard rectangles to the inclusive cell bounding box
// [minCX, maxCX] x [minCY, maxCY] of the current population. Every shard
// rectangle gets a ceil(extent/shards)-cell span (at least one cell), so
// the grid always covers the box and the split depends only on the box —
// not on iteration order or node count.
func (p *Plan) Fit(minCX, minCY, maxCX, maxCY int64) {
	p.minCX, p.minCY = minCX, minCY
	p.spanX = ceilDiv(maxCX-minCX+1, int64(p.cols))
	p.spanY = ceilDiv(maxCY-minCY+1, int64(p.rows))
}

func ceilDiv(n, d int64) int64 {
	if n < 1 {
		return 1
	}
	s := (n + d - 1) / d
	if s < 1 {
		return 1
	}
	return s
}

// Owner returns the shard index owning cell (cx, cy), clamped into the
// fitted grid (positions outside the fitted box belong to the nearest edge
// shard, so every node always has exactly one owner).
func (p *Plan) Owner(cx, cy int64) int {
	return p.shardRow(cy)*p.cols + p.shardCol(cx)
}

// OwnerOf is Owner applied to a position.
func (p *Plan) OwnerOf(pt geo.Point) int {
	cx, cy := p.CellOf(pt)
	return p.Owner(cx, cy)
}

func (p *Plan) shardCol(cx int64) int {
	return clamp(int((cx-p.minCX)/p.spanX), p.cols)
}

func (p *Plan) shardRow(cy int64) int {
	return clamp(int((cy-p.minCY)/p.spanY), p.rows)
}

// clamp bounds a raw shard coordinate into [0, n). Cells left of the fitted
// box produce a negative (or truncated-toward-zero) quotient and clamp to
// 0; cells beyond it clamp to the last shard.
func clamp(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// HaloSpan returns the inclusive shard-grid range [c0, c1] x [r0, r1]
// whose rectangles intersect the 3x3 cell block centered on (cx, cy) — the
// shards a transmission from that cell can reach, since a cell side is at
// least the interference radius. The span covers at most 2x2 shards when
// shard rectangles are wider than one cell, and up to 3x3 in the
// degenerate one-cell-wide case.
func (p *Plan) HaloSpan(cx, cy int64) (c0, c1, r0, r1 int) {
	c0 = p.shardCol(cx - 1)
	c1 = p.shardCol(cx + 1)
	r0 = p.shardRow(cy - 1)
	r1 = p.shardRow(cy + 1)
	return c0, c1, r0, r1
}

// IsBoundary reports whether cell (cx, cy) lies in its owner's boundary
// band: a transmission from it reaches at least one other shard.
func (p *Plan) IsBoundary(cx, cy int64) bool {
	c0, c1, r0, r1 := p.HaloSpan(cx, cy)
	return c0 != c1 || r0 != r1
}

// Split factors a shard count into a near-square cols x rows grid
// (cols >= rows, cols*rows == n): 1 -> 1x1, 2 -> 2x1, 4 -> 2x2, 6 -> 3x2,
// 8 -> 4x2, 9 -> 3x3. Prime counts degrade to n x 1.
func Split(n int) (cols, rows int) {
	if n < 1 {
		return 1, 1
	}
	for rows = int(math.Sqrt(float64(n))); rows > 1; rows-- {
		if n%rows == 0 {
			break
		}
	}
	if rows < 1 {
		rows = 1
	}
	return n / rows, rows
}
