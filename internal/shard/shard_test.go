package shard

import (
	"testing"

	"vinfra/internal/geo"
)

func TestSplit(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{0, 1, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}, {4, 2, 2},
		{6, 3, 2}, {8, 4, 2}, {9, 3, 3}, {12, 4, 3}, {16, 4, 4},
		{7, 7, 1}, {10, 5, 2},
	}
	for _, c := range cases {
		cols, rows := Split(c.n)
		if cols != c.cols || rows != c.rows {
			t.Errorf("Split(%d) = %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
		if c.n >= 1 && cols*rows != c.n {
			t.Errorf("Split(%d): %dx%d does not multiply back", c.n, cols, rows)
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(0, 2, 2); err == nil {
		t.Error("NewPlan(0, 2, 2) accepted a zero cell size")
	}
	if _, err := NewPlan(-5, 2, 2); err == nil {
		t.Error("NewPlan(-5, 2, 2) accepted a negative cell size")
	}
	if _, err := NewPlan(10, 0, 2); err == nil {
		t.Error("NewPlan(10, 0, 2) accepted zero columns")
	}
	if _, err := NewPlan(10, 2, 0); err == nil {
		t.Error("NewPlan(10, 2, 0) accepted zero rows")
	}
	if p := MustPlan(10, 3, 2); p.Shards() != 6 || p.Cols() != 3 || p.Rows() != 2 {
		t.Errorf("MustPlan(10, 3, 2) = %dx%d (%d shards)", p.Cols(), p.Rows(), p.Shards())
	}
}

func TestCellOfMatchesFloorBuckets(t *testing.T) {
	p := MustPlan(20, 2, 2)
	cases := []struct {
		pt     geo.Point
		cx, cy int64
	}{
		{geo.Point{X: 0, Y: 0}, 0, 0},
		{geo.Point{X: 19.999, Y: 0.5}, 0, 0},
		{geo.Point{X: 20, Y: 20}, 1, 1},
		{geo.Point{X: -0.5, Y: -20}, -1, -1},
		{geo.Point{X: -20.5, Y: 39.9}, -2, 1},
	}
	for _, c := range cases {
		cx, cy := p.CellOf(c.pt)
		if cx != c.cx || cy != c.cy {
			t.Errorf("CellOf(%v) = (%d, %d), want (%d, %d)", c.pt, cx, cy, c.cx, c.cy)
		}
	}
}

// TestOwnerCoversAndClamps pins the fitted split: every cell in the box has
// exactly one owner, shard rectangles are contiguous in row-major order,
// and out-of-box cells clamp to edge shards.
func TestOwnerCoversAndClamps(t *testing.T) {
	p := MustPlan(10, 2, 2)
	// A 5x3 cell box split 2x2: spans ceil(5/2)=3 and ceil(3/2)=2.
	p.Fit(0, 0, 4, 2)
	wantCol := []int{0, 0, 0, 1, 1}
	wantRow := []int{0, 0, 1}
	for cy := int64(0); cy <= 2; cy++ {
		for cx := int64(0); cx <= 4; cx++ {
			want := wantRow[cy]*2 + wantCol[cx]
			if got := p.Owner(cx, cy); got != want {
				t.Errorf("Owner(%d, %d) = %d, want %d", cx, cy, got, want)
			}
		}
	}
	// Clamping: far outside the box on every side.
	if got := p.Owner(-100, -100); got != 0 {
		t.Errorf("Owner(-100, -100) = %d, want 0", got)
	}
	if got := p.Owner(100, 100); got != 3 {
		t.Errorf("Owner(100, 100) = %d, want 3", got)
	}
	if got := p.Owner(100, -100); got != 1 {
		t.Errorf("Owner(100, -100) = %d, want 1", got)
	}
}

// TestHaloSpanIntersectsNeighborBlock checks HaloSpan against a brute-force
// owner scan of the 3x3 cell block, over boxes that exercise spans of one
// cell (3x3 halo) and multiple cells (2x2 halo), including negative bounds.
func TestHaloSpanIntersectsNeighborBlock(t *testing.T) {
	boxes := []struct{ minX, minY, maxX, maxY int64 }{
		{0, 0, 11, 7},
		{-5, -9, 3, 2},
		{0, 0, 2, 2}, // one-cell spans: a halo can touch 3x3 shards
		{4, 4, 4, 4}, // degenerate single-cell box
	}
	for _, cols := range []int{1, 2, 3} {
		for _, rows := range []int{1, 2, 3} {
			p := MustPlan(5, cols, rows)
			for _, b := range boxes {
				p.Fit(b.minX, b.minY, b.maxX, b.maxY)
				for cy := b.minY - 1; cy <= b.maxY+1; cy++ {
					for cx := b.minX - 1; cx <= b.maxX+1; cx++ {
						c0, c1, r0, r1 := p.HaloSpan(cx, cy)
						if c0 > c1 || r0 > r1 {
							t.Fatalf("%dx%d box %+v: HaloSpan(%d, %d) empty: %d..%d x %d..%d",
								cols, rows, b, cx, cy, c0, c1, r0, r1)
						}
						// Brute force: the shard set owning the 3x3 block.
						seen := map[int]bool{}
						for dy := int64(-1); dy <= 1; dy++ {
							for dx := int64(-1); dx <= 1; dx++ {
								seen[p.Owner(cx+dx, cy+dy)] = true
							}
						}
						var got []int
						for sr := r0; sr <= r1; sr++ {
							for sc := c0; sc <= c1; sc++ {
								got = append(got, sr*cols+sc)
							}
						}
						for _, s := range got {
							if !seen[s] {
								t.Fatalf("%dx%d box %+v: HaloSpan(%d, %d) includes shard %d not touched by the 3x3 block",
									cols, rows, b, cx, cy, s)
							}
						}
						for s := range seen {
							found := false
							for _, g := range got {
								if g == s {
									found = true
									break
								}
							}
							if !found {
								t.Fatalf("%dx%d box %+v: HaloSpan(%d, %d) = %v misses shard %d owning part of the 3x3 block",
									cols, rows, b, cx, cy, got, s)
							}
						}
						// IsBoundary agrees with the span being non-trivial.
						if want := len(seen) > 1; p.IsBoundary(cx, cy) != want {
							t.Fatalf("%dx%d box %+v: IsBoundary(%d, %d) = %v, want %v",
								cols, rows, b, cx, cy, !want, want)
						}
					}
				}
			}
		}
	}
}

// TestFitEmptyKeepsSpansPositive guards the invariant the engine relies on:
// even before any Fit (or after a degenerate one) spans stay >= 1 so Owner
// never divides by zero.
func TestFitEmptyKeepsSpansPositive(t *testing.T) {
	p := MustPlan(10, 4, 4)
	_ = p.Owner(3, -7) // must not panic pre-Fit
	p.Fit(5, 5, 3, 2)  // inverted box (empty population): spans clamp to 1
	if got := p.Owner(5, 5); got < 0 || got >= p.Shards() {
		t.Errorf("Owner after inverted Fit = %d, out of range", got)
	}
}
