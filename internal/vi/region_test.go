package vi_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vinfra/internal/geo"
	"vinfra/internal/vi"
)

// noopProgram is the minimal Program for deployments whose schedule and
// emulators are never exercised.
type noopProgram struct{}

func (noopProgram) Init(vi.VNodeID, geo.Point) []byte                   { return nil }
func (noopProgram) OnRound(state []byte, _ int, _ vi.RoundInput) []byte { return state }
func (noopProgram) Outgoing([]byte, int) *vi.Message                    { return nil }

// TestRegionOfMatchesLinearScan pins the cell-indexed RegionOf to a linear
// scan applying the documented rule (nearest location within R1/4, exact
// ties toward the lower VNodeID) over random deployments, radii and query
// points — including points far outside every region.
func TestRegionOfMatchesLinearScan(t *testing.T) {
	f := func(seed uint32, nRaw, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw%40) + 1
		radii := geo.Radii{R1: 1 + float64(rRaw%20)}
		radii.R2 = radii.R1 * 2
		locs := make([]geo.Point, n)
		for i := range locs {
			locs[i] = geo.Point{X: rng.Float64()*80 - 40, Y: rng.Float64()*80 - 40}
		}
		dep, err := vi.NewDeployment(vi.DeploymentConfig{
			Locations: locs,
			Radii:     radii,
			Program:   func(vi.VNodeID) vi.Program { return noopProgram{} },
		})
		if err != nil {
			t.Fatal(err)
		}
		rr := dep.RegionRadius()
		for trial := 0; trial < 8; trial++ {
			p := geo.Point{X: rng.Float64()*100 - 50, Y: rng.Float64()*100 - 50}
			want := vi.None
			bestD2 := rr * rr
			for i := range locs {
				if d2 := locs[i].Dist2(p); d2 <= bestD2 && (want == vi.None || d2 < bestD2) {
					want = vi.VNodeID(i)
					bestD2 = d2
				}
			}
			if got := dep.RegionOf(p); got != want {
				t.Logf("seed=%d n=%d p=%v: RegionOf=%d scan=%d", seed, n, p, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRegionOfCoincidentLocations pins the tie rule where two virtual nodes
// share a location: the lower VNodeID owns the point.
func TestRegionOfCoincidentLocations(t *testing.T) {
	locs := []geo.Point{{X: 0}, {X: 0}, {X: 50}}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   func(vi.VNodeID) vi.Program { return noopProgram{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.RegionOf(geo.Point{X: 0.1}); got != 0 {
		t.Errorf("RegionOf over coincident locations = %d, want 0", got)
	}
}

// TestLocationsReturnsCopy guards the deployment's shared state: mutating
// the slice Locations returns must not corrupt region lookups.
func TestLocationsReturnsCopy(t *testing.T) {
	locs := []geo.Point{{X: 0}, {X: 50}}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   func(vi.VNodeID) vi.Program { return noopProgram{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dep.Locations()
	if len(got) != 2 || got[0] != locs[0] || got[1] != locs[1] {
		t.Fatalf("Locations = %v, want %v", got, locs)
	}
	got[0] = geo.Point{X: 1e9}
	if dep.RegionOf(geo.Point{X: 0.1}) != 0 {
		t.Error("mutating the returned slice corrupted the deployment")
	}
	if fresh := dep.Locations(); fresh[0] != locs[0] {
		t.Error("mutation leaked into a subsequent Locations call")
	}
}

// benchDeployment builds an n-vnode grid deployment for the RegionOf
// benchmarks, returning it with the grid's side length so queries can be
// spread over the deployed area.
func benchDeployment(b *testing.B, n int) (*vi.Deployment, float64) {
	b.Helper()
	cols := 1
	for cols*cols < n {
		cols++
	}
	// The experiments' spacing: regions (radius R1/4 = 2.5) cover ~54% of
	// the area, so benchmark queries exercise the hit path, near misses
	// and empty cells alike.
	const spacing = 6
	locs := geo.Grid{Spacing: spacing, Cols: cols, Rows: (n + cols - 1) / cols}.Locations()[:n]
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   func(vi.VNodeID) vi.Program { return noopProgram{} },
	})
	if err != nil {
		b.Fatal(err)
	}
	return dep, spacing * float64(cols)
}

// The RegionOf set below is the O(V) -> O(1) evidence: per-query cost must
// stay flat from 100 to 10k virtual nodes now that the lookup is a 3x3-cell
// probe of the deployment's location index. Queries are spread over the
// deployed area (span tracks the grid side, not the vnode count), so the
// mix of region hits, near misses and empty-cell misses is the same at
// every size — the hit path is exercised, not just the miss path.
func benchRegionOf(b *testing.B, n int) {
	dep, span := benchDeployment(b, n)
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, 1024)
	hits := 0
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		if dep.RegionOf(pts[i]) != vi.None {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(len(pts)), "hit-frac")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dep.RegionOf(pts[i%len(pts)])
	}
}

func BenchmarkRegionOf100(b *testing.B) { benchRegionOf(b, 100) }
func BenchmarkRegionOf1k(b *testing.B)  { benchRegionOf(b, 1_000) }
func BenchmarkRegionOf10k(b *testing.B) { benchRegionOf(b, 10_000) }
