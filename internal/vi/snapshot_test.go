package vi

import (
	"bytes"
	"reflect"
	"testing"

	"vinfra/internal/cha"
	"vinfra/internal/wire"
)

func emulatorSnapshotFixtures() []EmulatorSnapshot {
	return []EmulatorSnapshot{
		{VN: None}, // outside every region
		{
			VN: 2, Joined: false, Mgr: []byte{0x04},
			Requested: true, SawJoinActivity: true,
		},
		{
			VN: 0, Joined: true,
			Mgr: []byte{0x02},
			Core: cha.CoreSnapshot{
				Floor: 1, K: 4, Prev: 3,
				BallotKeys: []cha.Instance{3, 4},
				Ballots:    []cha.Ballot{{V: cha.V("a"), Prev: 2}, {V: cha.V("bb"), Prev: 3}},
				StatusKeys: []cha.Instance{2},
				Statuses:   []cha.Color{cha.Green},
			},
			BrokenChains: 2,
			Floor:        1,
			FloorState:   []byte("floor-state"),
			InMsgs:       [][]byte{[]byte("m1"), {}, []byte("m3")},
			InCollision:  true, Began: true,
			HasExpected: true, Expected: []byte("payload"),
			BroadcastBallot: true, GotAck: true,
		},
	}
}

// TestEmulatorSnapshotRoundTrip pins the emulator snapshot's wire trio on
// representative states: outside a region, mid-join, and joined with a
// populated core plus mid-vround scratch.
func TestEmulatorSnapshotRoundTrip(t *testing.T) {
	for i, s := range emulatorSnapshotFixtures() {
		b := s.AppendTo(nil)
		if len(b) != s.WireSize() {
			t.Fatalf("fixture %d: WireSize = %d, encoded %d bytes", i, s.WireSize(), len(b))
		}
		d := wire.Dec(b)
		got, err := DecodeEmulatorSnapshot(&d)
		if err != nil {
			t.Fatalf("fixture %d: decode: %v", i, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("fixture %d: finish: %v", i, err)
		}
		if !bytes.Equal(got.AppendTo(nil), b) {
			t.Fatalf("fixture %d: re-encoding changes bytes", i)
		}
	}
}

// TestClientSnapshotRoundTrip pins the client snapshot's wire trio.
func TestClientSnapshotRoundTrip(t *testing.T) {
	fixtures := []ClientSnapshot{
		{},
		{
			SentPayload: []byte("ping"), SentThis: true,
			Recv:      [][]byte{[]byte("count=3"), {}},
			Collision: true,
			Prog:      []byte{0x09},
		},
	}
	for i, s := range fixtures {
		b := s.AppendTo(nil)
		if len(b) != s.WireSize() {
			t.Fatalf("fixture %d: WireSize = %d, encoded %d bytes", i, s.WireSize(), len(b))
		}
		d := wire.Dec(b)
		got, err := DecodeClientSnapshot(&d)
		if err != nil {
			t.Fatalf("fixture %d: decode: %v", i, err)
		}
		if err := d.Finish(); err != nil {
			t.Fatalf("fixture %d: finish: %v", i, err)
		}
		if !bytes.Equal(got.AppendTo(nil), b) {
			t.Fatalf("fixture %d: re-encoding changes bytes", i)
		}
	}
}

// TestMonitorSnapshotRoundTrip drives a live monitor, snapshots it,
// restores into a fresh one, and pins both the canonical bytes and the
// derived reports.
func TestMonitorSnapshotRoundTrip(t *testing.T) {
	m := NewMonitor()
	m.Observe(0, cha.Output{Instance: 1, Color: cha.Green})
	m.Observe(0, cha.Output{Instance: 2, Color: cha.Red})
	m.Observe(1, cha.Output{Instance: 1, Color: cha.Green})
	m.Observe(1, cha.Output{Instance: 3, Color: cha.Green})

	s := m.Snapshot()
	b := s.AppendTo(nil)
	if len(b) != s.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d bytes", s.WireSize(), len(b))
	}
	got, err := DecodeMonitorSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendTo(nil), b) {
		t.Fatal("re-encoding the decoded snapshot changes bytes")
	}

	fresh := NewMonitor()
	fresh.Restore(got)
	if !bytes.Equal(fresh.Snapshot().AppendTo(nil), b) {
		t.Fatal("snapshot of the restored monitor differs from the original")
	}
	for v := VNodeID(0); v < 2; v++ {
		if a, b := m.Report(v), fresh.Report(v); !reflect.DeepEqual(a, b) {
			t.Fatalf("vnode %d: restored report %+v, original %+v", v, b, a)
		}
	}
}

// FuzzDecodeEmulatorSnapshot feeds adversarial bytes to the emulator
// snapshot decoder: it must never panic, and anything it accepts must be a
// canonical fixed point with an exact WireSize.
func FuzzDecodeEmulatorSnapshot(f *testing.F) {
	f.Add([]byte{})
	for _, s := range emulatorSnapshotFixtures() {
		f.Add(s.AppendTo(nil))
	}
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.Dec(data)
		s, err := DecodeEmulatorSnapshot(&d)
		if err != nil || d.Finish() != nil {
			return
		}
		out := s.AppendTo(nil)
		if len(out) != s.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", s.WireSize(), len(out))
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted snapshot re-encodes to % x, input % x", out, data)
		}
	})
}

// FuzzDecodeMonitorSnapshot is the same contract for the monitor layer.
func FuzzDecodeMonitorSnapshot(f *testing.F) {
	f.Add([]byte{})
	m := NewMonitor()
	m.Observe(0, cha.Output{Instance: 1, Color: cha.Green})
	m.Observe(3, cha.Output{Instance: 2, Color: cha.Green})
	f.Add(m.Snapshot().AppendTo(nil))
	f.Add([]byte{0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeMonitorSnapshot(data)
		if err != nil {
			return
		}
		out := s.AppendTo(nil)
		if len(out) != s.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", s.WireSize(), len(out))
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted snapshot re-encodes to % x, input % x", out, data)
		}
	})
}
