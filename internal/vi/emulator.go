package vi

import (
	"bytes"
	"fmt"

	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Deployment describes a virtual infrastructure: the fixed virtual-node
// locations, the radio parameters, the broadcast schedule derived from
// them, and the per-virtual-node programs. It is immutable and shared by
// every emulator and client.
type Deployment struct {
	locs     []geo.Point
	regionIx *geo.CellIndex // cell size R1/4: RegionOf is a 3x3-cell probe
	radii    geo.Radii
	schedule Schedule
	timing   Timing
	program  func(VNodeID) Program
	vmax     float64
	newCM    func(v VNodeID, env sim.Env) cm.Manager
}

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// Locations are the virtual node positions. Required, non-empty.
	Locations []geo.Point
	// Radii are the quasi-unit-disk radio parameters. Required.
	Radii geo.Radii
	// Program supplies each virtual node's automaton. Required.
	Program func(VNodeID) Program
	// VMax bounds device speed; it shrinks the regional contention
	// manager's leader-eligibility margin (Section 4.2). Optional.
	VMax float64
	// NewCM overrides the regional contention manager factory. Optional;
	// the default is a Regional backoff manager per virtual node.
	NewCM func(v VNodeID, env sim.Env) cm.Manager
}

// NewDeployment validates the configuration, builds the schedule, and
// returns the deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	if len(cfg.Locations) == 0 {
		return nil, fmt.Errorf("vi: deployment requires at least one virtual node location")
	}
	if err := cfg.Radii.Validate(); err != nil {
		return nil, fmt.Errorf("vi: %w", err)
	}
	if cfg.Program == nil {
		return nil, fmt.Errorf("vi: deployment requires a Program")
	}
	d := &Deployment{
		locs:    append([]geo.Point(nil), cfg.Locations...),
		radii:   cfg.Radii,
		program: cfg.Program,
		vmax:    cfg.VMax,
	}
	d.regionIx = geo.BuildCellIndex(d.locs, d.RegionRadius())
	d.schedule = BuildSchedule(d.locs, d.radii)
	d.timing = Timing{S: d.schedule.Len()}
	if cfg.NewCM != nil {
		d.newCM = cfg.NewCM
	} else {
		d.newCM = func(v VNodeID, env sim.Env) cm.Manager {
			return cm.NewRegional(cm.RegionalConfig{
				Location: d.locs[v],
				Radius:   d.RegionRadius(),
				VMax:     d.vmax,
				Horizon:  d.timing.LeaderHorizon(),
			})(env)
		}
	}
	return d, nil
}

// RegionRadius returns the replication region radius around each virtual
// node location: R1/4 (Section 4).
func (d *Deployment) RegionRadius() float64 { return d.radii.R1 / 4 }

// Timing returns the deployment's virtual round timing.
func (d *Deployment) Timing() Timing { return d.timing }

// Schedule returns the deployment's broadcast schedule.
func (d *Deployment) Schedule() Schedule { return d.schedule }

// Locations returns a copy of the virtual node locations: the deployment is
// shared by every emulator and client, so callers get their own slice
// rather than a window into shared state.
func (d *Deployment) Locations() []geo.Point {
	return append([]geo.Point(nil), d.locs...)
}

// NumVNodes returns the number of virtual nodes.
func (d *Deployment) NumVNodes() int { return len(d.locs) }

// RegionOf returns the virtual node whose replication region contains p
// (the nearest one within R1/4, exact ties toward the lower VNodeID), or
// None. The query probes the 3x3 block of R1/4-sized cells around p in the
// deployment's location index, so its cost is independent of the number of
// virtual nodes — every device re-evaluates its region at the start of
// every virtual round, which made the old linear scan the emulation's
// O(devices x vnodes) bottleneck.
func (d *Deployment) RegionOf(p geo.Point) VNodeID {
	if i, ok := d.regionIx.NearestWithin(p, d.RegionRadius()); ok {
		return VNodeID(i)
	}
	return None
}

// EmulatorHooks observe emulator lifecycle events for tests and metrics.
// All fields are optional.
type EmulatorHooks struct {
	// OnOutput fires after each completed agreement instance with the
	// virtual node id and the replica's output.
	OnOutput func(v VNodeID, out cha.Output)
	// OnJoin fires when the emulator completes a join (via ack).
	OnJoin func(v VNodeID, vround int)
	// OnReset fires when the emulator resets a dead virtual node.
	OnReset func(v VNodeID, vround int)
}

// Emulator is one mobile device participating in the virtual infrastructure
// emulation: whenever it resides within R1/4 of a virtual node location it
// (joins and) replicates that virtual node, running the eleven-phase
// protocol of Section 4.3. It implements sim.Node.
type Emulator struct {
	env   sim.Env
	d     *Deployment
	hooks EmulatorHooks

	vn     VNodeID // current region's virtual node (None when outside)
	joined bool
	mgr    cm.Manager
	core   *cha.Core
	cache  *stateCache

	// Per-virtual-round scratch state. input.Msgs reuses its backing array
	// across virtual rounds (the encoded proposal copies the bytes out), so
	// the steady-state message sub-protocol allocates nothing here.
	input           RoundInput // accumulating message sub-protocol input
	began           bool       // whether Begin was called this vround
	expectedPayload []byte     // own VN's expected broadcast payload this vround
	broadcastBallot bool
	sawJoinActivity bool // join request or collision in join/join-ack phases

	// Joiner scratch state.
	requested bool // sent a join request this vround
	gotAck    bool
}

var _ sim.Node = (*Emulator)(nil)

// NewEmulator builds an emulator for the deployment. If bootstrap is true
// and the device starts inside a region, it begins as a full replica of
// that virtual node in its initial state (the deployment's round-0
// bootstrap); otherwise it acquires state through the join protocol.
func (d *Deployment) NewEmulator(env sim.Env, bootstrap bool) *Emulator {
	e := &Emulator{env: env, d: d, vn: None}
	if bootstrap {
		if v := d.RegionOf(env.Location()); v != None {
			e.enterRegion(v)
			e.becomeReplica(0, d.program(v).Init(v, d.locs[v]), cha.NewCore())
		}
	}
	return e
}

// SetHooks installs lifecycle hooks (call before running).
func (e *Emulator) SetHooks(h EmulatorHooks) { e.hooks = h }

// VNode returns the virtual node this emulator currently serves, or None.
func (e *Emulator) VNode() VNodeID { return e.vn }

// Joined reports whether the emulator is a full replica of its region's
// virtual node.
func (e *Emulator) Joined() bool { return e.joined }

// Core exposes the agreement state machine (nil before joining).
func (e *Emulator) Core() *cha.Core { return e.core }

// StateBefore returns the emulator's estimate of its virtual node's state
// entering virtual round vr (1-based). It is only meaningful while joined.
// The returned slice is owned by the emulator's state cache; callers must
// not mutate it.
func (e *Emulator) StateBefore(vr int) []byte {
	return e.cache.stateBefore(e.core.CalculateHistory(), vr)
}

func (e *Emulator) enterRegion(v VNodeID) {
	e.vn = v
	e.joined = false
	e.mgr = e.d.newCM(v, e.env)
	e.core = nil
	e.cache = nil
	e.requested = false
	e.gotAck = false
}

func (e *Emulator) leaveRegion() {
	e.vn = None
	e.joined = false
	e.mgr = nil
	e.core = nil
	e.cache = nil
}

// becomeReplica installs agreement and application state as of instance
// floor, making the emulator a full replica.
func (e *Emulator) becomeReplica(floor cha.Instance, state []byte, core *cha.Core) {
	e.core = core
	e.cache = newStateCache(e.d.program(e.vn), e.vn, e.d.locs[e.vn])
	e.cache.resetAt(floor, state)
	e.joined = true
}

// checkRegion re-evaluates region membership at the start of each virtual
// round.
func (e *Emulator) checkRegion() {
	v := e.d.RegionOf(e.env.Location())
	if v == e.vn {
		return
	}
	if e.vn != None {
		e.leaveRegion()
	}
	if v != None {
		e.enterRegion(v)
	}
}

// vround numbers virtual rounds from 1 so that virtual round r corresponds
// to agreement instance r.
func (e *Emulator) position(r sim.Round) (vr int, phase Phase, subslot int) {
	vr0, phase, subslot := e.d.timing.Decompose(r)
	return vr0 + 1, phase, subslot
}

// scheduled reports whether this emulator's virtual node is scheduled in
// virtual round vr.
func (e *Emulator) scheduled(vr int) bool {
	return e.d.schedule.ScheduledIn(e.vn, vr-1)
}

// Transmit implements sim.Node.
func (e *Emulator) Transmit(r sim.Round) sim.Message {
	vr, phase, subslot := e.position(r)
	switch phase {
	case PhaseClient:
		e.startVRound()
		return nil
	case PhaseVN:
		return e.transmitVN(r, vr)
	case PhaseSchedBallot:
		if e.participating(vr, true) {
			return e.transmitBallot(r, vr)
		}
		return nil
	case PhaseSchedVeto1:
		if e.participating(vr, true) && e.core.NeedVeto1() {
			return cha.VetoMsg{}
		}
		return nil
	case PhaseSchedVeto2:
		if e.participating(vr, true) && e.core.NeedVeto2() {
			return cha.VetoMsg{}
		}
		return nil
	case PhaseUnschedBallot:
		if e.participating(vr, false) && subslot == e.d.schedule.SlotOf(e.vn) {
			return e.transmitBallot(r, vr)
		}
		return nil
	case PhaseUnschedVeto1:
		if e.participating(vr, false) && e.core.NeedVeto1() {
			return cha.VetoMsg{}
		}
		return nil
	case PhaseUnschedVeto2:
		if e.participating(vr, false) && e.core.NeedVeto2() {
			return cha.VetoMsg{}
		}
		return nil
	case PhaseJoin:
		if e.vn != None && !e.joined && e.scheduled(vr) {
			e.requested = true
			e.gotAck = false
			return JoinReqMsg{}
		}
		return nil
	case PhaseJoinAck:
		if e.joined && e.sawJoinActivity && e.scheduled(vr) && e.mgr.Advice(r) {
			return e.joinAck()
		}
		return nil
	default: // PhaseReset
		// The guard is schedule-gated like the join sub-protocol it
		// protects: joiners of virtual node v request (and reset) only in
		// v's slot, and only v's own replicas must veto the reset. An
		// unscheduled replica that heard a neighboring region's join
		// collision must stay silent — guarding here would block the
		// legitimate reset of a fully-wiped neighbor forever (every region
		// of a dense deployment sits within the others' interference
		// radius, so the stray ± reaches everyone).
		if e.joined && e.sawJoinActivity && e.scheduled(vr) {
			return ResetGuardMsg{}
		}
		return nil
	}
}

// participating reports whether this emulator runs the scheduled (sched =
// true) or unscheduled agreement instance in virtual round vr.
func (e *Emulator) participating(vr int, sched bool) bool {
	return e.vn != None && e.joined && e.scheduled(vr) == sched
}

// startVRound resets per-round scratch state and re-evaluates the region.
// input.Msgs keeps its backing array: Encode copies payload bytes into the
// proposal value, so nothing alive refers to the old entries.
func (e *Emulator) startVRound() {
	e.checkRegion()
	e.input.Msgs = e.input.Msgs[:0]
	e.input.Collision = false
	e.input.VNBroadcast = false
	e.began = false
	e.expectedPayload = nil
	e.sawJoinActivity = false
	e.requested = false
	e.gotAck = false
}

// transmitVN implements the vn phase broadcast rule of Section 4.3: if the
// virtual node is unscheduled but chooses to broadcast, every replica
// broadcasts; if it is scheduled, only contention-manager-advised replicas
// do.
func (e *Emulator) transmitVN(r sim.Round, vr int) sim.Message {
	if e.vn == None || !e.joined {
		return nil
	}
	state := e.cache.stateBefore(e.core.CalculateHistory(), vr)
	out := e.d.program(e.vn).Outgoing(state, vr)
	if out == nil {
		return nil
	}
	e.expectedPayload = out.Payload
	if e.expectedPayload == nil {
		e.expectedPayload = []byte{}
	}
	if !e.scheduled(vr) {
		// The virtual node ignores its schedule; so do its replicas.
		e.input.VNBroadcast = true
		return VNMsg{Payload: out.Payload}
	}
	if e.mgr.Advice(r) {
		e.input.VNBroadcast = true
		return VNMsg{Payload: out.Payload}
	}
	return nil
}

func (e *Emulator) transmitBallot(r sim.Round, vr int) sim.Message {
	b := e.core.Begin(cha.Instance(vr), e.input.Encode())
	e.began = true
	e.broadcastBallot = e.mgr.Advice(r)
	if e.broadcastBallot {
		return cha.BallotMsg{B: b}
	}
	return nil
}

func (e *Emulator) joinAck() sim.Message {
	return JoinAckMsg{
		StateFloor: e.cache.floor,
		State:      e.cache.floorState,
		Snap:       e.core.Snapshot(),
	}
}

// Receive implements sim.Node.
func (e *Emulator) Receive(r sim.Round, rx sim.Reception) {
	vr, phase, subslot := e.position(r)
	switch phase {
	case PhaseClient:
		if e.vn == None {
			return
		}
		for _, m := range rx.Msgs {
			if msg, ok := m.(ClientMsg); ok {
				e.input.Msgs = append(e.input.Msgs, msg.Payload)
			}
		}
		if rx.Collision {
			e.input.Collision = true
		}
	case PhaseVN:
		if e.vn == None || !e.joined {
			return
		}
		for _, m := range rx.Msgs {
			vm, ok := m.(VNMsg)
			if !ok {
				continue
			}
			if e.expectedPayload != nil && bytes.Equal(vm.Payload, e.expectedPayload) {
				e.input.VNBroadcast = true
				continue
			}
			e.input.Msgs = append(e.input.Msgs, vm.Payload)
		}
		if rx.Collision {
			e.input.Collision = true
		}
	case PhaseSchedBallot:
		if e.participating(vr, true) {
			e.observeBallots(r, rx)
		}
	case PhaseSchedVeto1:
		if e.participating(vr, true) {
			e.core.ObserveVeto1(cha.HasVeto(rx.Msgs), rx.Collision)
		}
	case PhaseSchedVeto2:
		if e.participating(vr, true) {
			e.finishInstance(rx)
		}
	case PhaseUnschedBallot:
		if e.participating(vr, false) && subslot == e.d.schedule.SlotOf(e.vn) {
			e.observeBallots(r, rx)
		}
	case PhaseUnschedVeto1:
		if e.participating(vr, false) {
			e.core.ObserveVeto1(cha.HasVeto(rx.Msgs), rx.Collision)
		}
	case PhaseUnschedVeto2:
		if e.participating(vr, false) {
			e.finishInstance(rx)
		}
	case PhaseJoin:
		if e.joined {
			if hasJoinReq(rx.Msgs) || rx.Collision {
				e.sawJoinActivity = true
			}
		}
	case PhaseJoinAck:
		switch {
		case e.joined:
			if rx.Collision {
				e.sawJoinActivity = true
			}
		case e.requested:
			for _, m := range rx.Msgs {
				if ack, ok := m.(JoinAckMsg); ok {
					e.adoptAck(vr, ack)
					break
				}
			}
		}
	default: // PhaseReset
		if e.requested && !e.gotAck && !e.joined {
			if len(rx.Msgs) == 0 && !rx.Collision {
				e.resetVNode(vr)
			}
		}
	}
}

func (e *Emulator) observeBallots(r sim.Round, rx sim.Reception) {
	if !e.began {
		// Defensive: a replica that joined mid-round skips the instance.
		return
	}
	ballots := cha.ExtractBallots(rx.Msgs)
	e.core.ObserveBallots(ballots, rx.Collision)
	e.mgr.Observe(r, ballotFeedback(e.broadcastBallot, len(ballots) > 0, rx.Collision))
}

// finishInstance closes the instance at the final veto phase, folds green
// outputs into the replica's checkpoint (bounding both local state and
// join-ack size, Section 3.5), and fires hooks.
func (e *Emulator) finishInstance(rx sim.Reception) {
	if !e.began {
		return
	}
	out := e.core.ObserveVeto2(cha.HasVeto(rx.Msgs), rx.Collision)
	if out.Color == cha.Green {
		e.fold(out)
	}
	if e.hooks.OnOutput != nil {
		e.hooks.OnOutput(e.vn, out)
	}
}

// fold advances the checkpoint to a green instance: compute the agreed
// state through it, snapshot it, and garbage-collect the agreement layer.
func (e *Emulator) fold(out cha.Output) {
	state := e.cache.floorState
	prog := e.d.program(e.vn)
	for k := e.cache.floor + 1; k <= out.Instance; k++ {
		state = applyInstance(prog, state, out.History, k)
	}
	e.cache.resetAt(out.Instance, state)
	e.core.GC(out.Instance)
}

// adoptAck installs the transferred state and makes this emulator a full
// replica from the next virtual round.
func (e *Emulator) adoptAck(vr int, ack JoinAckMsg) {
	e.gotAck = true
	core := cha.RestoreCore(ack.Snap)
	e.becomeReplica(ack.StateFloor, ack.State, core)
	if e.hooks.OnJoin != nil {
		e.hooks.OnJoin(e.vn, vr)
	}
}

// resetVNode revives a dead virtual node in its initial state
// (Section 4.3: safe only after the reset phase stayed silent).
func (e *Emulator) resetVNode(vr int) {
	core := cha.NewCore()
	core.ResetAt(cha.Instance(vr))
	init := e.d.program(e.vn).Init(e.vn, e.d.locs[e.vn])
	e.becomeReplica(cha.Instance(vr), init, core)
	if e.hooks.OnReset != nil {
		e.hooks.OnReset(e.vn, vr)
	}
}

func hasJoinReq(msgs []sim.Message) bool {
	for _, m := range msgs {
		if _, ok := m.(JoinReqMsg); ok {
			return true
		}
	}
	return false
}

func ballotFeedback(broadcast, gotBallot, collision bool) cm.Feedback {
	switch {
	case collision:
		return cm.FeedbackCollision
	case broadcast && gotBallot:
		return cm.FeedbackWon
	case gotBallot:
		return cm.FeedbackLost
	default:
		return cm.FeedbackSilence
	}
}
