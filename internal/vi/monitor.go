package vi

import (
	"sync"

	"vinfra/internal/cha"
)

// Monitor accumulates per-virtual-node availability from replica outputs:
// which agreement instances (= virtual rounds) reached green on at least one
// replica, and — derived from that — exactly when and for how long each
// virtual node was unavailable. It is the measurement half of the adversary
// plane: experiments wire Observe into EmulatorHooks.OnOutput and read the
// per-node reports (or the deployment-wide summary) after the run.
//
// Observe is safe for concurrent use: the parallel engine fans Receive calls
// (and therefore output hooks) across workers. Accumulation is a set union,
// so the reports are independent of observation order — the same determinism
// contract as the rest of the stack (sequential == parallel).
type Monitor struct {
	mu     sync.Mutex
	greens map[VNodeID]map[cha.Instance]bool
	top    map[VNodeID]cha.Instance
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		greens: make(map[VNodeID]map[cha.Instance]bool),
		top:    make(map[VNodeID]cha.Instance),
	}
}

// Observe records one replica's output for virtual node v. Wire it into
// EmulatorHooks.OnOutput.
func (m *Monitor) Observe(v VNodeID, out cha.Output) {
	m.mu.Lock()
	if out.Color == cha.Green {
		g := m.greens[v]
		if g == nil {
			g = make(map[cha.Instance]bool)
			m.greens[v] = g
		}
		g[out.Instance] = true
	}
	if out.Instance > m.top[v] {
		m.top[v] = out.Instance
	}
	m.mu.Unlock()
}

// Stall is one maximal run of consecutive unavailable instances of a
// virtual node: no replica reached green from instance From through
// From+Len-1. Ended reports whether the node recovered (the next instance
// was green again) before the end of the run; a stall still open at the
// horizon has Ended false, and its length is a lower bound.
type Stall struct {
	From  cha.Instance
	Len   int
	Ended bool
}

// AvailabilityReport is one virtual node's availability accounting.
type AvailabilityReport struct {
	// Instances is the highest instance observed (instance k is virtual
	// round k, so this is the number of virtual rounds accounted).
	Instances int
	// Green is the number of instances in which >= 1 replica output green.
	Green int
	// Unavailable = Instances - Green.
	Unavailable int
	// Availability = Green / Instances (0 when nothing was observed).
	Availability float64
	// Stalls lists the maximal unavailable runs in instance order.
	Stalls []Stall
	// MaxStall is the longest stall length (0 when always available).
	MaxStall int
	// MeanRecovery is the mean length of the stalls the node recovered
	// from — the expected number of virtual rounds from losing the node to
	// getting it back. 0 when no stall ended.
	MeanRecovery float64
}

// Report computes virtual node v's availability accounting over the
// instances it was actually observed through. When an attack can silence a
// node entirely (no replica left to output anything), use ReportThrough
// with the run's horizon instead: instances past the last observation
// count as unavailable there, not unobserved.
func (m *Monitor) Report(v VNodeID) AvailabilityReport {
	m.mu.Lock()
	top := int(m.top[v])
	m.mu.Unlock()
	return m.ReportThrough(v, top)
}

// ReportThrough computes virtual node v's availability accounting over
// instances 1..through: an instance no replica reached green in — including
// one no replica reported at all — is unavailable.
func (m *Monitor) ReportThrough(v VNodeID, through int) AvailabilityReport {
	m.mu.Lock()
	top := through
	greens := make([]bool, top+1)
	for k := range m.greens[v] {
		if int(k) <= top {
			greens[k] = true
		}
	}
	m.mu.Unlock()

	rep := AvailabilityReport{Instances: top}
	run := 0
	for k := 1; k <= top; k++ {
		if greens[k] {
			rep.Green++
			if run > 0 {
				rep.Stalls = append(rep.Stalls, Stall{
					From: cha.Instance(k - run), Len: run, Ended: true,
				})
				run = 0
			}
			continue
		}
		run++
	}
	if run > 0 {
		rep.Stalls = append(rep.Stalls, Stall{
			From: cha.Instance(top + 1 - run), Len: run,
		})
	}
	rep.Unavailable = rep.Instances - rep.Green
	if rep.Instances > 0 {
		rep.Availability = float64(rep.Green) / float64(rep.Instances)
	}
	recovered, recoveredLen := 0, 0
	for _, s := range rep.Stalls {
		if s.Len > rep.MaxStall {
			rep.MaxStall = s.Len
		}
		if s.Ended {
			recovered++
			recoveredLen += s.Len
		}
	}
	if recovered > 0 {
		rep.MeanRecovery = float64(recoveredLen) / float64(recovered)
	}
	return rep
}

// AvailabilitySummary aggregates availability accounting across a
// deployment's virtual nodes.
type AvailabilitySummary struct {
	MeanAvailability float64
	Unavailable      int // total unavailable instances across all nodes
	Stalls           int // total maximal stalls across all nodes
	MaxStall         int // longest stall anywhere
	MeanRecovery     float64
}

// Summary aggregates the reports of virtual nodes 0..vnodes-1.
func (m *Monitor) Summary(vnodes int) AvailabilitySummary {
	return m.summarize(vnodes, m.Report)
}

// SummaryThrough aggregates ReportThrough(v, through) over virtual nodes
// 0..vnodes-1 — the right accounting when the adversary may have silenced
// nodes outright.
func (m *Monitor) SummaryThrough(vnodes, through int) AvailabilitySummary {
	return m.summarize(vnodes, func(v VNodeID) AvailabilityReport {
		return m.ReportThrough(v, through)
	})
}

func (m *Monitor) summarize(vnodes int, report func(VNodeID) AvailabilityReport) AvailabilitySummary {
	var s AvailabilitySummary
	recovered, recoveredLen := 0, 0
	for v := 0; v < vnodes; v++ {
		rep := report(VNodeID(v))
		s.MeanAvailability += rep.Availability
		s.Unavailable += rep.Unavailable
		s.Stalls += len(rep.Stalls)
		if rep.MaxStall > s.MaxStall {
			s.MaxStall = rep.MaxStall
		}
		for _, st := range rep.Stalls {
			if st.Ended {
				recovered++
				recoveredLen += st.Len
			}
		}
	}
	if vnodes > 0 {
		s.MeanAvailability /= float64(vnodes)
	}
	if recovered > 0 {
		s.MeanRecovery = float64(recoveredLen) / float64(recovered)
	}
	return s
}
