package vi_test

import (
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// TestEmulatorOutsideRegionStaysIdle: an emulator outside every region
// never transmits, never joins, and survives running indefinitely.
func TestEmulatorOutsideRegionStaysIdle(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	var idle *vi.Emulator
	tb.eng.Attach(geo.Point{X: 50, Y: 50}, nil, func(env sim.Env) sim.Node {
		idle = tb.dep.NewEmulator(env, true) // bootstrap requested, but out of range
		return idle
	})
	before := tb.eng.Stats().Transmissions
	tb.runVRounds(5)
	if idle.VNode() != vi.None || idle.Joined() {
		t.Errorf("far-away emulator joined VN %d", idle.VNode())
	}
	// Transmissions happened (the real replicas), but verify by region:
	// attach an isolated engine check via another deployment is overkill;
	// the key property is the emulator state above.
	_ = before
}

// TestBootstrapOutsideRegionFallsBackToJoin: a device created with
// bootstrap=true outside any region later walks into one and must go
// through the join protocol (not silently bootstrap).
func TestBootstrapOutsideRegionFallsBackToJoin(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	joined := false
	var walker *vi.Emulator
	tb.eng.Attach(geo.Point{X: 20, Y: 0}, &walkTo{target: geo.Point{X: 0.5, Y: 0}, v: 0.5}, func(env sim.Env) sim.Node {
		walker = tb.dep.NewEmulator(env, true)
		walker.SetHooks(vi.EmulatorHooks{
			OnJoin: func(vi.VNodeID, int) { joined = true },
		})
		return walker
	})
	tb.runVRounds(12)
	if !walker.Joined() {
		t.Fatal("walker never became a replica")
	}
	if !joined {
		t.Error("walker must join via the join protocol, not bootstrap")
	}
}

// walkTo moves straight toward a target and stops there.
type walkTo struct {
	target geo.Point
	v      float64
}

func (w *walkTo) Move(_ sim.Round, cur geo.Point, _ func(int) int) geo.Point {
	d := w.target.Sub(cur)
	if d.Len() <= w.v {
		return w.target
	}
	return cur.Add(d.Unit().Scale(w.v))
}

// TestEmulatorLeavesRegionStopsParticipating: an emulator that wanders out
// of its region stops being a replica.
func TestEmulatorLeavesRegionStopsParticipating(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	var wanderer *vi.Emulator
	tb.eng.Attach(geo.Point{X: 0.5, Y: 0.5}, &walkTo{target: geo.Point{X: 40, Y: 0}, v: 0.4}, func(env sim.Env) sim.Node {
		wanderer = tb.dep.NewEmulator(env, true)
		return wanderer
	})
	if !wanderer.Joined() {
		t.Fatal("wanderer should bootstrap inside the region")
	}
	tb.runVRounds(12)
	if wanderer.VNode() != vi.None || wanderer.Joined() {
		t.Errorf("wanderer still participating after leaving: vn=%d joined=%v",
			wanderer.VNode(), wanderer.Joined())
	}
	// The remaining replicas are unaffected.
	if !tb.emulators[0].Joined() {
		t.Error("stationary replicas must be unaffected")
	}
}

// TestJoinWhileChannelLossy: the join handshake retries across virtual
// rounds until it lands.
func TestJoinWhileChannelLossy(t *testing.T) {
	// Drop everything for the first 4 virtual rounds after the joiner
	// arrives, then heal.
	locs := []geo.Point{{X: 0, Y: 0}}
	per := vi.Timing{S: 1}.RoundsPerVRound()
	healAt := sim.Round(8 * per)
	adv := radio.NewRandomLoss(0.8, 0.3, healAt, 23)
	tb := newTestbed(t, testbedOpts{
		locs:        locs,
		replicasPer: 2,
		leaders:     true,
		adversary:   adv,
		detector:    cd.EventuallyAC{Racc: healAt},
	})
	tb.runVRounds(4)
	var late *vi.Emulator
	tb.eng.Attach(geo.Point{X: 0.4, Y: 0.4}, nil, func(env sim.Env) sim.Node {
		late = tb.dep.NewEmulator(env, false)
		return late
	})
	tb.runVRounds(10)
	if !late.Joined() {
		t.Fatal("joiner never succeeded after the channel healed")
	}
	// And its state converges with the incumbents.
	tb.runVRounds(3)
	if string(late.StateBefore(18)) != string(tb.emulators[0].StateBefore(18)) {
		t.Error("late joiner diverged after lossy join")
	}
}
