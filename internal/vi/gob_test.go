package vi_test

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// decodeGob decodes a gob-encoded state string into out.
func decodeGob(t *testing.T, raw string, out interface{}) {
	t.Helper()
	if raw == "" {
		return
	}
	if err := gob.NewDecoder(bytes.NewReader([]byte(raw))).Decode(out); err != nil {
		t.Fatalf("decode state: %v", err)
	}
}
