package vi

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"vinfra/internal/cha"
)

func TestRoundInputEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   RoundInput
	}{
		{"empty", RoundInput{}},
		{"collision only", RoundInput{Collision: true}},
		{"broadcast only", RoundInput{VNBroadcast: true}},
		{"one message", RoundInput{Msgs: bmsgs("hello")}},
		{"several messages", RoundInput{Msgs: bmsgs("a", "bb", "ccc"), Collision: true, VNBroadcast: true}},
		{"payload with separators", RoundInput{Msgs: bmsgs("x|7:y", ":|:")}},
		{"empty payload", RoundInput{Msgs: bmsgs("")}},
		{"binary payload", RoundInput{Msgs: [][]byte{{0x00, 0xff, 0x80}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := tt.in.Encode()
			got, err := DecodeRoundInput(v)
			if err != nil {
				t.Fatal(err)
			}
			want := tt.in
			want.Msgs = append([][]byte(nil), tt.in.Msgs...)
			want.Normalize()
			if got.Collision != want.Collision || got.VNBroadcast != want.VNBroadcast {
				t.Errorf("flags: got %+v, want %+v", got, want)
			}
			if len(got.Msgs) != len(want.Msgs) {
				t.Fatalf("msgs: got %v, want %v", got.Msgs, want.Msgs)
			}
			for i := range got.Msgs {
				if !bytes.Equal(got.Msgs[i], want.Msgs[i]) {
					t.Errorf("msg %d: %q != %q", i, got.Msgs[i], want.Msgs[i])
				}
			}
		})
	}
}

func TestRoundInputEncodeCanonical(t *testing.T) {
	a := RoundInput{Msgs: bmsgs("b", "a", "b")}
	b := RoundInput{Msgs: bmsgs("a", "b")}
	if !a.Encode().Equal(b.Encode()) {
		t.Error("permuted/duplicated inputs must encode identically")
	}
}

func TestRoundInputEncodeDoesNotMutate(t *testing.T) {
	in := RoundInput{Msgs: bmsgs("b", "a")}
	in.Encode()
	if string(in.Msgs[0]) != "b" {
		t.Error("Encode mutated the caller's slice")
	}
}

func TestNormalizeDedup(t *testing.T) {
	in := RoundInput{Msgs: bmsgs("z", "a", "z", "a", "m")}
	in.Normalize()
	if !reflect.DeepEqual(in.Msgs, bmsgs("a", "m", "z")) {
		t.Errorf("Normalize = %v", in.Msgs)
	}
}

func TestDecodeRoundInputErrors(t *testing.T) {
	bad := [][]byte{
		{},                 // no flags byte
		{0x04},             // undefined flag bit
		{0x03},             // flags but no count
		{0x00, 0x01},       // count 1, no message
		{0x00, 0x01, 0x05}, // message length past the end
		{0x00, 0x00, 0x00}, // trailing garbage
	}
	for _, b := range bad {
		if _, err := DecodeRoundInput(cha.ValueOf(b)); err == nil {
			t.Errorf("DecodeRoundInput(% x) should fail", b)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(msgs [][]byte, coll, vnb bool) bool {
		in := RoundInput{Msgs: msgs, Collision: coll, VNBroadcast: vnb}
		got, err := DecodeRoundInput(in.Encode())
		if err != nil {
			return false
		}
		want := RoundInput{Msgs: append([][]byte(nil), msgs...), Collision: coll, VNBroadcast: vnb}
		want.Normalize()
		if len(got.Msgs) != len(want.Msgs) {
			return false
		}
		for i := range got.Msgs {
			if !bytes.Equal(got.Msgs[i], want.Msgs[i]) {
				return false
			}
		}
		return got.Collision == want.Collision && got.VNBroadcast == want.VNBroadcast
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWireSizesExact pins every emulation message's WireSize to the length
// of its actual encoding (or, for the signal-only messages, to one byte).
func TestWireSizesExact(t *testing.T) {
	if got := (ClientMsg{Payload: []byte("abc")}).WireSize(); got != 5 {
		t.Errorf("ClientMsg size = %d, want 5 (tag + len + 3)", got)
	}
	if got := (VNMsg{Payload: []byte("abc")}).WireSize(); got != 5 {
		t.Errorf("VNMsg size = %d, want 5", got)
	}
	if got := (JoinReqMsg{}).WireSize(); got != 1 {
		t.Errorf("JoinReqMsg size = %d", got)
	}
	if got := (ResetGuardMsg{}).WireSize(); got != 1 {
		t.Errorf("ResetGuardMsg size = %d", got)
	}
	ack := JoinAckMsg{StateFloor: 130, State: []byte("state"), Snap: cha.CoreSnapshot{
		Ballots:    []cha.Ballot{{V: cha.V("xy"), Prev: 7}},
		BallotKeys: []cha.Instance{131},
		Statuses:   []cha.Color{cha.Yellow},
		StatusKeys: []cha.Instance{131},
	}}
	if got, enc := ack.WireSize(), len(ack.AppendTo(nil)); got != enc {
		t.Errorf("JoinAckMsg WireSize = %d, encoded %d bytes", got, enc)
	}
}

func TestJoinAckRoundTrip(t *testing.T) {
	ack := JoinAckMsg{StateFloor: 9, State: []byte{0x01, 0x00, 0xfe}, Snap: cha.CoreSnapshot{
		Floor:      9,
		K:          12,
		Prev:       11,
		BallotKeys: []cha.Instance{10, 11},
		Ballots:    []cha.Ballot{{V: cha.V("a"), Prev: 9}, {V: cha.Value{}, Prev: 10}},
		StatusKeys: []cha.Instance{12},
		Statuses:   []cha.Color{cha.Red},
	}}
	got, err := DecodeJoinAckMsg(ack.AppendTo(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.StateFloor != ack.StateFloor || !bytes.Equal(got.State, ack.State) {
		t.Errorf("header round trip: %+v", got)
	}
	if len(got.Snap.Ballots) != 2 || !got.Snap.Ballots[0].Equal(ack.Snap.Ballots[0]) {
		t.Errorf("snapshot ballots round trip: %+v", got.Snap)
	}
	if !reflect.DeepEqual(got.Snap.StatusKeys, ack.Snap.StatusKeys) ||
		!reflect.DeepEqual(got.Snap.Statuses, ack.Snap.Statuses) {
		t.Errorf("snapshot statuses round trip: %+v", got.Snap)
	}
	// The restored core behaves like the original.
	if cha.RestoreCore(got.Snap).Prev() != 11 {
		t.Error("restored core prev differs")
	}
}

func TestDecodeJoinAckErrors(t *testing.T) {
	ack := JoinAckMsg{StateFloor: 3, State: []byte("s")}
	enc := ack.AppendTo(nil)
	for _, b := range [][]byte{
		{},                                    // empty
		enc[:len(enc)-1],                      // truncated
		append(enc[:len(enc):len(enc)], 0x00), // trailing garbage
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, // varint overflow
	} {
		if _, err := DecodeJoinAckMsg(b); err == nil {
			t.Errorf("DecodeJoinAckMsg(% x) should fail", b)
		}
	}
}

// FuzzDecodeRoundInput feeds adversarial bytes to the proposal decoder: it
// must never panic, and anything it accepts must reach an encode/decode
// fixed point (Encode canonicalizes; decoding the canonical form again
// must reproduce it).
func FuzzDecodeRoundInput(f *testing.F) {
	f.Add([]byte{})
	f.Add(RoundInput{Msgs: bmsgs("a", "bb"), Collision: true}.Encode().Bytes())
	f.Add(RoundInput{VNBroadcast: true}.Encode().Bytes())
	f.Add([]byte{0x03, 0x02, 0x01, 0x41, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := DecodeRoundInput(cha.ValueOf(data))
		if err != nil {
			return
		}
		enc := in.Encode()
		again, err := DecodeRoundInput(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !again.Encode().Equal(enc) {
			t.Fatal("encode/decode did not reach a fixed point")
		}
	})
}

// FuzzDecodeJoinAck feeds adversarial bytes to the join-ack decoder: no
// panics, and accepted acks must re-encode to the exact input (the
// encoding is canonical).
func FuzzDecodeJoinAck(f *testing.F) {
	f.Add([]byte{})
	f.Add(JoinAckMsg{StateFloor: 2, State: []byte("snap")}.AppendTo(nil))
	full := JoinAckMsg{StateFloor: 1, State: []byte{0xff}, Snap: cha.CoreSnapshot{
		K: 3, Prev: 2,
		BallotKeys: []cha.Instance{3},
		Ballots:    []cha.Ballot{{V: cha.V("v"), Prev: 2}},
		StatusKeys: []cha.Instance{2},
		Statuses:   []cha.Color{cha.Orange},
	}}
	f.Add(full.AppendTo(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeJoinAckMsg(data)
		if err != nil {
			return
		}
		enc := m.AppendTo(nil)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted ack re-encodes to % x, input % x", enc, data)
		}
		if m.WireSize() != len(enc) {
			t.Fatalf("WireSize %d != encoded length %d", m.WireSize(), len(enc))
		}
	})
}
