package vi

import (
	"reflect"
	"testing"
	"testing/quick"

	"vinfra/internal/cha"
)

func TestRoundInputEncodeDecodeRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		in   RoundInput
	}{
		{"empty", RoundInput{}},
		{"collision only", RoundInput{Collision: true}},
		{"broadcast only", RoundInput{VNBroadcast: true}},
		{"one message", RoundInput{Msgs: []string{"hello"}}},
		{"several messages", RoundInput{Msgs: []string{"a", "bb", "ccc"}, Collision: true, VNBroadcast: true}},
		{"payload with separators", RoundInput{Msgs: []string{"x|7:y", ":|:"}}},
		{"empty payload", RoundInput{Msgs: []string{""}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := tt.in.Encode()
			got, err := DecodeRoundInput(v)
			if err != nil {
				t.Fatal(err)
			}
			want := tt.in
			want.Normalize()
			if got.Collision != want.Collision || got.VNBroadcast != want.VNBroadcast {
				t.Errorf("flags: got %+v, want %+v", got, want)
			}
			if len(got.Msgs) != len(want.Msgs) {
				t.Fatalf("msgs: got %v, want %v", got.Msgs, want.Msgs)
			}
			for i := range got.Msgs {
				if got.Msgs[i] != want.Msgs[i] {
					t.Errorf("msg %d: %q != %q", i, got.Msgs[i], want.Msgs[i])
				}
			}
		})
	}
}

func TestRoundInputEncodeCanonical(t *testing.T) {
	a := RoundInput{Msgs: []string{"b", "a", "b"}}
	b := RoundInput{Msgs: []string{"a", "b"}}
	if a.Encode() != b.Encode() {
		t.Error("permuted/duplicated inputs must encode identically")
	}
}

func TestRoundInputEncodeDoesNotMutate(t *testing.T) {
	in := RoundInput{Msgs: []string{"b", "a"}}
	in.Encode()
	if in.Msgs[0] != "b" {
		t.Error("Encode mutated the caller's slice")
	}
}

func TestNormalizeDedup(t *testing.T) {
	in := RoundInput{Msgs: []string{"z", "a", "z", "a", "m"}}
	in.Normalize()
	if !reflect.DeepEqual(in.Msgs, []string{"a", "m", "z"}) {
		t.Errorf("Normalize = %v", in.Msgs)
	}
}

func TestDecodeRoundInputErrors(t *testing.T) {
	bad := []string{"", "C", "CB garbage", "CB|x:y", "CB|5:ab", "CB|-1:x"}
	for _, s := range bad {
		if _, err := DecodeRoundInput(cha.Value(s)); err == nil {
			t.Errorf("DecodeRoundInput(%q) should fail", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(msgs []string, coll, vnb bool) bool {
		in := RoundInput{Msgs: msgs, Collision: coll, VNBroadcast: vnb}
		got, err := DecodeRoundInput(in.Encode())
		if err != nil {
			return false
		}
		want := RoundInput{Msgs: append([]string(nil), msgs...), Collision: coll, VNBroadcast: vnb}
		want.Normalize()
		if len(want.Msgs) == 0 {
			want.Msgs = nil
		}
		if len(got.Msgs) == 0 {
			got.Msgs = nil
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireSizes(t *testing.T) {
	if got := (ClientMsg{Payload: "abc"}).WireSize(); got != 4 {
		t.Errorf("ClientMsg size = %d", got)
	}
	if got := (VNMsg{Payload: "abc"}).WireSize(); got != 4 {
		t.Errorf("VNMsg size = %d", got)
	}
	if got := (JoinReqMsg{}).WireSize(); got != 1 {
		t.Errorf("JoinReqMsg size = %d", got)
	}
	if got := (ResetGuardMsg{}).WireSize(); got != 1 {
		t.Errorf("ResetGuardMsg size = %d", got)
	}
	ack := JoinAckMsg{State: "state", Snap: cha.CoreSnapshot{
		Ballots:    []cha.Ballot{{V: "xy"}},
		BallotKeys: []cha.Instance{1},
	}}
	if got := ack.WireSize(); got != 8+5+24+18 {
		t.Errorf("JoinAckMsg size = %d", got)
	}
}
