package vi

import (
	"reflect"
	"sync"
	"testing"

	"vinfra/internal/cha"
)

func observe(m *Monitor, v VNodeID, inst int, green bool) {
	color := cha.Red
	if green {
		color = cha.Green
	}
	m.Observe(v, cha.Output{Instance: cha.Instance(inst), Color: color})
}

func TestMonitorStallSegmentation(t *testing.T) {
	m := NewMonitor()
	// Instances 1..10: green except 3-4 (recovered stall) and 8-10 (open).
	for inst := 1; inst <= 10; inst++ {
		green := !(inst == 3 || inst == 4 || inst >= 8)
		observe(m, 0, inst, green)
		// Redundant replicas and red outputs must not change anything.
		observe(m, 0, inst, false)
		if green {
			observe(m, 0, inst, true)
		}
	}
	rep := m.Report(0)
	if rep.Instances != 10 || rep.Green != 5 || rep.Unavailable != 5 {
		t.Fatalf("instances/green/unavailable = %d/%d/%d", rep.Instances, rep.Green, rep.Unavailable)
	}
	if rep.Availability != 0.5 {
		t.Errorf("availability = %v", rep.Availability)
	}
	want := []Stall{
		{From: 3, Len: 2, Ended: true},
		{From: 8, Len: 3, Ended: false},
	}
	if !reflect.DeepEqual(rep.Stalls, want) {
		t.Errorf("stalls = %+v, want %+v", rep.Stalls, want)
	}
	if rep.MaxStall != 3 {
		t.Errorf("max stall = %d", rep.MaxStall)
	}
	if rep.MeanRecovery != 2 { // only the ended stall counts
		t.Errorf("mean recovery = %v", rep.MeanRecovery)
	}
}

func TestMonitorAlwaysGreenAndEmpty(t *testing.T) {
	m := NewMonitor()
	for inst := 1; inst <= 5; inst++ {
		observe(m, 2, inst, true)
	}
	rep := m.Report(2)
	if rep.Availability != 1 || len(rep.Stalls) != 0 || rep.MaxStall != 0 {
		t.Errorf("always-green report: %+v", rep)
	}
	empty := m.Report(7)
	if empty.Instances != 0 || empty.Availability != 0 {
		t.Errorf("unobserved vnode report: %+v", empty)
	}
}

func TestMonitorSummaryAggregates(t *testing.T) {
	m := NewMonitor()
	// vnode 0: 4 instances all green; vnode 1: green except 2-3 (ended).
	for inst := 1; inst <= 4; inst++ {
		observe(m, 0, inst, true)
		observe(m, 1, inst, !(inst == 2 || inst == 3))
	}
	s := m.Summary(2)
	if s.MeanAvailability != 0.75 { // (1 + 0.5) / 2
		t.Errorf("mean availability = %v", s.MeanAvailability)
	}
	if s.Unavailable != 2 || s.Stalls != 1 || s.MaxStall != 2 || s.MeanRecovery != 2 {
		t.Errorf("summary = %+v", s)
	}
}

// TestMonitorOrderIndependent pins the determinism contract: the parallel
// engine delivers outputs in nondeterministic order across replicas, and
// the report must not care.
func TestMonitorOrderIndependent(t *testing.T) {
	type ev struct {
		v     VNodeID
		inst  int
		green bool
	}
	var evs []ev
	for v := VNodeID(0); v < 3; v++ {
		for inst := 1; inst <= 20; inst++ {
			evs = append(evs, ev{v, inst, (inst+int(v))%3 != 0})
			evs = append(evs, ev{v, inst, false})
		}
	}
	forward := NewMonitor()
	for _, e := range evs {
		observe(forward, e.v, e.inst, e.green)
	}
	reversed := NewMonitor()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := len(evs) - 1 - w; i >= 0; i -= 4 {
				observe(reversed, evs[i].v, evs[i].inst, evs[i].green)
			}
		}(w)
	}
	wg.Wait()
	for v := VNodeID(0); v < 3; v++ {
		if !reflect.DeepEqual(forward.Report(v), reversed.Report(v)) {
			t.Fatalf("vnode %d: report depends on observation order", v)
		}
	}
}

func TestMonitorReportThroughCountsSilence(t *testing.T) {
	m := NewMonitor()
	// Observed only through instance 4; the run's horizon was 8.
	for inst := 1; inst <= 4; inst++ {
		observe(m, 0, inst, inst != 3)
	}
	rep := m.ReportThrough(0, 8)
	if rep.Instances != 8 || rep.Green != 3 || rep.Unavailable != 5 {
		t.Fatalf("instances/green/unavailable = %d/%d/%d", rep.Instances, rep.Green, rep.Unavailable)
	}
	want := []Stall{
		{From: 3, Len: 1, Ended: true},
		{From: 5, Len: 4, Ended: false}, // silenced through the horizon
	}
	if !reflect.DeepEqual(rep.Stalls, want) {
		t.Errorf("stalls = %+v, want %+v", rep.Stalls, want)
	}
	s := m.SummaryThrough(1, 8)
	if s.MaxStall != 4 || s.Unavailable != 5 {
		t.Errorf("summary = %+v", s)
	}
}
