package vi

import (
	"bytes"

	"vinfra/internal/sim"
)

// ClientProgram is the user program running on an abstract mobile client
// (Section 1.2). From its perspective the virtual infrastructure behaves
// like a collision-prone wireless network of reliable, immobile devices:
// each virtual round it may broadcast one message and receives whatever the
// virtual channel delivered in the previous virtual round, together with a
// collision indication.
type ClientProgram interface {
	// Step is called once per virtual round with the previous virtual
	// round's reception; it returns the message to broadcast in this
	// virtual round's client phase, or nil to listen.
	Step(vround int, recv []Message, collision bool) *Message
}

// ClientFunc adapts a function to ClientProgram.
type ClientFunc func(vround int, recv []Message, collision bool) *Message

// Step implements ClientProgram.
func (f ClientFunc) Step(vround int, recv []Message, collision bool) *Message {
	return f(vround, recv, collision)
}

// Client runs a ClientProgram against the virtual broadcast service. It
// implements sim.Node: it broadcasts in the client phase and listens in the
// client and vn phases; all emulation-protocol traffic is invisible to it.
type Client struct {
	env  sim.Env
	d    *Deployment
	prog ClientProgram

	sentPayload []byte
	sentThis    bool
	recv        []Message
	collision   bool
}

var _ sim.Node = (*Client)(nil)

// NewClient builds a client for the deployment.
func (d *Deployment) NewClient(env sim.Env, prog ClientProgram) *Client {
	return &Client{env: env, d: d, prog: prog}
}

// Transmit implements sim.Node.
func (c *Client) Transmit(r sim.Round) sim.Message {
	vr0, phase, _ := c.d.timing.Decompose(r)
	if phase != PhaseClient {
		return nil
	}
	vr := vr0 + 1
	out := c.prog.Step(vr, c.recv, c.collision)
	c.recv = nil
	c.collision = false
	c.sentThis = out != nil
	if out == nil {
		return nil
	}
	c.sentPayload = out.Payload
	return ClientMsg{Payload: out.Payload}
}

// Receive implements sim.Node.
func (c *Client) Receive(r sim.Round, rx sim.Reception) {
	_, phase, _ := c.d.timing.Decompose(r)
	switch phase {
	case PhaseClient:
		skippedOwn := false
		for _, m := range rx.Msgs {
			msg, ok := m.(ClientMsg)
			if !ok {
				continue
			}
			// The loopback copy of the client's own broadcast is not a
			// reception.
			if c.sentThis && !skippedOwn && bytes.Equal(msg.Payload, c.sentPayload) {
				skippedOwn = true
				continue
			}
			c.recv = append(c.recv, Message{Payload: msg.Payload})
		}
		if rx.Collision {
			c.collision = true
		}
	case PhaseVN:
		for _, m := range rx.Msgs {
			if msg, ok := m.(VNMsg); ok {
				c.recv = append(c.recv, Message{Payload: msg.Payload})
			}
		}
		if rx.Collision {
			c.collision = true
		}
	default:
		// Emulation-protocol phases are invisible to clients.
	}
}
