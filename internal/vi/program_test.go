package vi

import (
	"bytes"
	"fmt"
	"testing"

	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/wire"
)

// appendProgram is a minimal deterministic program whose state is the
// concatenation of everything it has consumed — ideal for checking exactly
// which inputs the state cache applied.
type appendProgram struct{}

func (appendProgram) Init(id VNodeID, _ geo.Point) []byte {
	return []byte(fmt.Sprintf("init(%d)", id))
}

func (appendProgram) OnRound(state []byte, vround int, in RoundInput) []byte {
	if in.Collision && len(in.Msgs) == 0 {
		return []byte(fmt.Sprintf("%s|%d:±", state, vround))
	}
	msgs := make([]string, len(in.Msgs))
	for i, m := range in.Msgs {
		msgs[i] = string(m)
	}
	return []byte(fmt.Sprintf("%s|%d:%v", state, vround, msgs))
}

func (appendProgram) Outgoing(state []byte, vround int) *Message {
	return Text(fmt.Sprintf("out@%d", vround))
}

func historyOf(top cha.Instance, vals map[cha.Instance]cha.Value) *cha.History {
	return cha.NewHistory(top, vals)
}

func input(msgs ...string) cha.Value {
	in := RoundInput{}
	for _, m := range msgs {
		in.Msgs = append(in.Msgs, []byte(m))
	}
	return in.Encode()
}

func TestStateCacheAppliesHistoryInOrder(t *testing.T) {
	sc := newStateCache(appendProgram{}, 3, geo.Point{})
	h := historyOf(3, map[cha.Instance]cha.Value{
		1: input("a"),
		3: input("c"),
	})
	got := string(sc.stateBefore(h, 4)) // state after instances 1..3
	want := "init(3)|1:[a]|2:±|3:[c]"
	if got != want {
		t.Errorf("state = %q, want %q", got, want)
	}
}

func TestStateCacheIncrementalExtension(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h1 := historyOf(2, map[cha.Instance]cha.Value{1: input("a"), 2: input("b")})
	first := string(sc.stateBefore(h1, 3))

	// Extend the same chain: the cache must reuse the prefix.
	h2 := historyOf(4, map[cha.Instance]cha.Value{
		1: input("a"), 2: input("b"), 3: input("c"), 4: input("d"),
	})
	second := string(sc.stateBefore(h2, 5))
	if second != first+"|3:[c]|4:[d]" {
		t.Errorf("incremental state = %q", second)
	}
}

func TestStateCacheRecomputesOnChainChange(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h1 := historyOf(2, map[cha.Instance]cha.Value{1: input("a"), 2: input("b")})
	sc.stateBefore(h1, 3)

	// A different chain for the same prefix (instance 2 now ⊥ — possible
	// before stabilization when a later ballot bypasses it).
	h2 := historyOf(3, map[cha.Instance]cha.Value{1: input("a"), 3: input("c")})
	got := string(sc.stateBefore(h2, 4))
	want := "init(0)|1:[a]|2:±|3:[c]"
	if got != want {
		t.Errorf("recomputed state = %q, want %q", got, want)
	}
}

func TestStateCacheResetAt(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	sc.resetAt(5, []byte("snapshot"))
	h := historyOf(7, map[cha.Instance]cha.Value{6: input("x"), 7: input("y")})
	got := string(sc.stateBefore(h, 8))
	want := "snapshot|6:[x]|7:[y]"
	if got != want {
		t.Errorf("state after snapshot = %q, want %q", got, want)
	}
	// Queries below the snapshot floor return the snapshot itself.
	if got := string(sc.stateBefore(h, 4)); got != "snapshot" {
		t.Errorf("below-floor state = %q", got)
	}
}

func TestStateCacheRepeatedQueriesStable(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h := historyOf(3, map[cha.Instance]cha.Value{1: input("a"), 2: input("b"), 3: input("c")})
	a := string(sc.stateBefore(h, 4))
	b := string(sc.stateBefore(h, 4))
	c := string(sc.stateBefore(h, 4))
	if a != b || b != c {
		t.Error("repeated identical queries must be stable")
	}
	// Query an earlier point after a later one.
	early := string(sc.stateBefore(h, 2))
	if early != "init(0)|1:[a]" {
		t.Errorf("early state = %q", early)
	}
}

func TestApplyInstanceMalformedValueActsAsCollision(t *testing.T) {
	h := historyOf(1, map[cha.Instance]cha.Value{1: cha.V("not-a-proposal")})
	got := string(applyInstance(appendProgram{}, []byte("s"), h, 1))
	if got != "s|1:±" {
		t.Errorf("malformed value state = %q, want collision semantics", got)
	}
}

type codecState struct {
	N     int
	Words []string
}

// codecStateCodec is the wire codec the Codec tests exercise.
func codecStateCodec() Codec[codecState] {
	return Codec[codecState]{
		InitState: func(id VNodeID, _ geo.Point) codecState {
			return codecState{N: int(id)}
		},
		Step: func(s codecState, vround int, in RoundInput) codecState {
			s.N += len(in.Msgs)
			for _, m := range in.Msgs {
				s.Words = append(s.Words, string(m))
			}
			return s
		},
		Out: func(s codecState, vround int) *Message {
			return Text(fmt.Sprintf("%d", s.N))
		},
		EncodeState: func(dst []byte, s codecState) []byte {
			dst = wire.AppendVarint(dst, int64(s.N))
			dst = wire.AppendUvarint(dst, uint64(len(s.Words)))
			for _, w := range s.Words {
				dst = wire.AppendString(dst, w)
			}
			return dst
		},
		DecodeState: func(d *wire.Decoder) (codecState, error) {
			var s codecState
			s.N = int(d.Varint())
			n := d.Uvarint()
			if d.Err() != nil || n > uint64(d.Rem()) {
				return codecState{}, wire.ErrMalformed
			}
			for i := uint64(0); i < n; i++ {
				s.Words = append(s.Words, d.String())
			}
			return s, d.Err()
		},
	}
}

func bmsgs(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	c := codecStateCodec()
	st := c.Init(7, geo.Point{})
	st = c.OnRound(st, 1, RoundInput{Msgs: bmsgs("x", "y")})
	st = c.OnRound(st, 2, RoundInput{Msgs: bmsgs("z")})
	out := c.Outgoing(st, 3)
	if out == nil || string(out.Payload) != "10" {
		t.Fatalf("out = %+v, want 10 (7+3)", out)
	}
	decoded := c.decode(st)
	if decoded.N != 10 || len(decoded.Words) != 3 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestCodecDeterministicEncoding(t *testing.T) {
	c := codecStateCodec()
	in := RoundInput{Msgs: bmsgs("a", "b")}
	s1 := c.OnRound(c.Init(0, geo.Point{}), 1, in)
	s2 := c.OnRound(c.Init(0, geo.Point{}), 1, in)
	if !bytes.Equal(s1, s2) {
		t.Error("identical inputs must produce identical encoded states")
	}
}

func TestCodecNilOut(t *testing.T) {
	c := codecStateCodec()
	c.Out = nil
	if got := c.Outgoing(c.Init(0, geo.Point{}), 1); got != nil {
		t.Errorf("nil Out should yield silent program, got %+v", got)
	}
}

func TestCodecDecodeEmptyIsZero(t *testing.T) {
	c := codecStateCodec()
	s := c.decode(nil)
	if s.N != 0 || s.Words != nil {
		t.Errorf("empty raw state should decode to zero value: %+v", s)
	}
}

func TestCodecMalformedStatePanics(t *testing.T) {
	c := codecStateCodec()
	defer func() {
		if recover() == nil {
			t.Error("decoding garbage state must panic (programming error)")
		}
	}()
	c.decode([]byte{0xff})
}

func TestCodecWithoutEncoderPanics(t *testing.T) {
	c := Codec[codecState]{
		InitState: func(VNodeID, geo.Point) codecState { return codecState{} },
		Step:      func(s codecState, _ int, _ RoundInput) codecState { return s },
	}
	defer func() {
		if recover() == nil {
			t.Error("Codec without EncodeState must panic, pointing at GobCodec")
		}
	}()
	c.Init(0, geo.Point{})
}

// TestGobCodecCompatAdapter pins the explicit gob compatibility adapter:
// same Program semantics, reflection-based encoding — usable for
// prototyping states without a wire codec.
func TestGobCodecCompatAdapter(t *testing.T) {
	c := GobCodec[codecState]{
		InitState: func(id VNodeID, _ geo.Point) codecState {
			return codecState{N: int(id)}
		},
		Step: func(s codecState, vround int, in RoundInput) codecState {
			s.N += len(in.Msgs)
			return s
		},
		Out: func(s codecState, vround int) *Message {
			return Text(fmt.Sprintf("%d", s.N))
		},
	}
	st := c.Init(3, geo.Point{})
	st = c.OnRound(st, 1, RoundInput{Msgs: bmsgs("a", "b")})
	if out := c.Outgoing(st, 2); out == nil || string(out.Payload) != "5" {
		t.Fatalf("gob codec out = %+v, want 5", out)
	}
	if got := decodeGobState[codecState](nil); got.N != 0 {
		t.Errorf("empty gob state should decode to zero value: %+v", got)
	}
}
