package vi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"vinfra/internal/cha"
	"vinfra/internal/geo"
)

// appendProgram is a minimal deterministic program whose state is the
// concatenation of everything it has consumed — ideal for checking exactly
// which inputs the state cache applied.
type appendProgram struct{}

func (appendProgram) Init(id VNodeID, _ geo.Point) string {
	return fmt.Sprintf("init(%d)", id)
}

func (appendProgram) OnRound(state string, vround int, in RoundInput) string {
	if in.Collision && len(in.Msgs) == 0 {
		return state + fmt.Sprintf("|%d:±", vround)
	}
	return state + fmt.Sprintf("|%d:%v", vround, in.Msgs)
}

func (appendProgram) Outgoing(state string, vround int) *Message {
	return &Message{Payload: fmt.Sprintf("out@%d", vround)}
}

func historyOf(top cha.Instance, vals map[cha.Instance]cha.Value) *cha.History {
	return cha.NewHistory(top, vals)
}

func input(msgs ...string) cha.Value {
	return RoundInput{Msgs: msgs}.Encode()
}

func TestStateCacheAppliesHistoryInOrder(t *testing.T) {
	sc := newStateCache(appendProgram{}, 3, geo.Point{})
	h := historyOf(3, map[cha.Instance]cha.Value{
		1: input("a"),
		3: input("c"),
	})
	got := sc.stateBefore(h, 4) // state after instances 1..3
	want := "init(3)|1:[a]|2:±|3:[c]"
	if got != want {
		t.Errorf("state = %q, want %q", got, want)
	}
}

func TestStateCacheIncrementalExtension(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h1 := historyOf(2, map[cha.Instance]cha.Value{1: input("a"), 2: input("b")})
	first := sc.stateBefore(h1, 3)

	// Extend the same chain: the cache must reuse the prefix.
	h2 := historyOf(4, map[cha.Instance]cha.Value{
		1: input("a"), 2: input("b"), 3: input("c"), 4: input("d"),
	})
	second := sc.stateBefore(h2, 5)
	if second != first+"|3:[c]|4:[d]" {
		t.Errorf("incremental state = %q", second)
	}
}

func TestStateCacheRecomputesOnChainChange(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h1 := historyOf(2, map[cha.Instance]cha.Value{1: input("a"), 2: input("b")})
	sc.stateBefore(h1, 3)

	// A different chain for the same prefix (instance 2 now ⊥ — possible
	// before stabilization when a later ballot bypasses it).
	h2 := historyOf(3, map[cha.Instance]cha.Value{1: input("a"), 3: input("c")})
	got := sc.stateBefore(h2, 4)
	want := "init(0)|1:[a]|2:±|3:[c]"
	if got != want {
		t.Errorf("recomputed state = %q, want %q", got, want)
	}
}

func TestStateCacheResetAt(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	sc.resetAt(5, "snapshot")
	h := historyOf(7, map[cha.Instance]cha.Value{6: input("x"), 7: input("y")})
	got := sc.stateBefore(h, 8)
	want := "snapshot|6:[x]|7:[y]"
	if got != want {
		t.Errorf("state after snapshot = %q, want %q", got, want)
	}
	// Queries below the snapshot floor return the snapshot itself.
	if got := sc.stateBefore(h, 4); got != "snapshot" {
		t.Errorf("below-floor state = %q", got)
	}
}

func TestStateCacheRepeatedQueriesStable(t *testing.T) {
	sc := newStateCache(appendProgram{}, 0, geo.Point{})
	h := historyOf(3, map[cha.Instance]cha.Value{1: input("a"), 2: input("b"), 3: input("c")})
	a := sc.stateBefore(h, 4)
	b := sc.stateBefore(h, 4)
	c := sc.stateBefore(h, 4)
	if a != b || b != c {
		t.Error("repeated identical queries must be stable")
	}
	// Query an earlier point after a later one.
	early := sc.stateBefore(h, 2)
	if early != "init(0)|1:[a]" {
		t.Errorf("early state = %q", early)
	}
}

func TestApplyInstanceMalformedValueActsAsCollision(t *testing.T) {
	h := historyOf(1, map[cha.Instance]cha.Value{1: cha.Value("not-a-proposal")})
	got := applyInstance(appendProgram{}, "s", h, 1)
	if got != "s|1:±" {
		t.Errorf("malformed value state = %q, want collision semantics", got)
	}
}

type codecState struct {
	N     int
	Words []string
}

func TestCodecRoundTrip(t *testing.T) {
	c := Codec[codecState]{
		InitState: func(id VNodeID, _ geo.Point) codecState {
			return codecState{N: int(id)}
		},
		Step: func(s codecState, vround int, in RoundInput) codecState {
			s.N += len(in.Msgs)
			s.Words = append(s.Words, in.Msgs...)
			return s
		},
		Out: func(s codecState, vround int) *Message {
			return &Message{Payload: fmt.Sprintf("%d", s.N)}
		},
	}
	st := c.Init(7, geo.Point{})
	st = c.OnRound(st, 1, RoundInput{Msgs: []string{"x", "y"}})
	st = c.OnRound(st, 2, RoundInput{Msgs: []string{"z"}})
	out := c.Outgoing(st, 3)
	if out == nil || out.Payload != "10" {
		t.Fatalf("out = %+v, want 10 (7+3)", out)
	}
	var decoded codecState
	decodeGobInternal(t, st, &decoded)
	if decoded.N != 10 || len(decoded.Words) != 3 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestCodecDeterministicEncoding(t *testing.T) {
	c := Codec[codecState]{
		InitState: func(VNodeID, geo.Point) codecState { return codecState{} },
		Step: func(s codecState, _ int, in RoundInput) codecState {
			s.Words = append(s.Words, in.Msgs...)
			return s
		},
	}
	in := RoundInput{Msgs: []string{"a", "b"}}
	s1 := c.OnRound(c.Init(0, geo.Point{}), 1, in)
	s2 := c.OnRound(c.Init(0, geo.Point{}), 1, in)
	if s1 != s2 {
		t.Error("identical inputs must produce identical encoded states")
	}
}

func TestCodecNilOut(t *testing.T) {
	c := Codec[codecState]{
		InitState: func(VNodeID, geo.Point) codecState { return codecState{} },
		Step:      func(s codecState, _ int, _ RoundInput) codecState { return s },
	}
	if got := c.Outgoing(c.Init(0, geo.Point{}), 1); got != nil {
		t.Errorf("nil Out should yield silent program, got %+v", got)
	}
}

func TestDecodeStateEmptyIsZero(t *testing.T) {
	var s codecState
	s = decodeState[codecState]("")
	if s.N != 0 || s.Words != nil {
		t.Errorf("empty raw state should decode to zero value: %+v", s)
	}
}

// decodeGobInternal decodes a gob state for in-package tests.
func decodeGobInternal(t *testing.T, raw string, out interface{}) {
	t.Helper()
	if raw == "" {
		return
	}
	if err := gob.NewDecoder(bytes.NewReader([]byte(raw))).Decode(out); err != nil {
		t.Fatalf("decode state: %v", err)
	}
}
