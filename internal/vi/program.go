package vi

import (
	"fmt"

	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/wire"
)

// Program is a deterministic virtual node automaton (Section 1.2: virtual
// nodes are deterministic). The protocol layer treats states as opaque byte
// strings so they can be digested, compared across replicas, and shipped in
// join-acks; use Codec to write programs against typed states with a
// canonical wire encoding.
//
// Determinism is a correctness requirement: every replica must compute the
// identical state bytes from the identical history. The wire codec makes
// canonical encodings the default (a value has exactly one encoding);
// programs that hand-encode states must preserve that property themselves.
// States are immutable by convention: OnRound must return a fresh slice
// rather than mutating its input.
type Program interface {
	// Init returns the virtual node's initial state.
	Init(id VNodeID, loc geo.Point) []byte
	// OnRound consumes the input of one virtual round — the agreed message
	// set, or a collision indication when the round's agreement produced
	// ⊥ — and returns the next state.
	OnRound(state []byte, vround int, in RoundInput) []byte
	// Outgoing returns the message the virtual node broadcasts in virtual
	// round vround, given the state entering that round, or nil to listen.
	Outgoing(state []byte, vround int) *Message
}

// stateCache incrementally materializes a virtual node's state from the
// replica's current history chain, re-using the previous computation when
// the chain is a pure extension (the common case once the network is
// stable) and recomputing from the initial state otherwise.
type stateCache struct {
	prog Program
	id   VNodeID
	loc  geo.Point

	floorState []byte       // state at the floor instance (initial or join snapshot)
	floor      cha.Instance // instances <= floor are folded into floorState

	cachedState  []byte
	cachedUpTo   cha.Instance
	cachedDigest uint64
}

func newStateCache(prog Program, id VNodeID, loc geo.Point) *stateCache {
	init := prog.Init(id, loc)
	return &stateCache{
		prog:        prog,
		id:          id,
		loc:         loc,
		floorState:  init,
		cachedState: init,
	}
}

// resetAt installs a state snapshot at the given floor (join state
// transfer, or a virtual node reset). The cache takes ownership of state.
func (sc *stateCache) resetAt(floor cha.Instance, state []byte) {
	sc.floor = floor
	sc.floorState = state
	sc.cachedState = state
	sc.cachedUpTo = floor
	sc.cachedDigest = 0
}

// stateBefore returns the virtual node state entering virtual round vround
// (i.e., after applying history through instance vround-1), given the
// replica's current history estimate h. The returned slice is owned by the
// cache; callers must not mutate it.
func (sc *stateCache) stateBefore(h *cha.History, vround int) []byte {
	upTo := cha.Instance(vround) - 1
	if upTo < sc.floor {
		// Cannot reconstruct below the snapshot; the snapshot itself is
		// the best available state.
		return sc.floorState
	}
	// If the previously cached prefix still matches, extend incrementally.
	prefixDigest := h.DigestRange(sc.floor+1, sc.cachedUpTo, 0)
	start := sc.floor
	state := sc.floorState
	if sc.cachedUpTo > sc.floor && prefixDigest == sc.cachedDigest && sc.cachedUpTo <= upTo {
		start = sc.cachedUpTo
		state = sc.cachedState
	}
	for k := start + 1; k <= upTo; k++ {
		state = applyInstance(sc.prog, state, h, k)
	}
	sc.cachedState = state
	sc.cachedUpTo = upTo
	sc.cachedDigest = h.DigestRange(sc.floor+1, upTo, 0)
	return state
}

// applyInstance folds history position k into the state: an included
// instance delivers its decoded round input; a ⊥ instance delivers a
// collision indication (Section 3.3).
func applyInstance(prog Program, state []byte, h *cha.History, k cha.Instance) []byte {
	v, ok := h.At(k)
	if !ok {
		return prog.OnRound(state, int(k), RoundInput{Collision: true})
	}
	in, err := DecodeRoundInput(v)
	if err != nil {
		// A malformed agreed value cannot occur through the emulation
		// protocol itself; treat it as a collision to stay deterministic.
		in = RoundInput{Collision: true}
	}
	return prog.OnRound(state, int(k), in)
}

// Codec adapts a typed state S to the Program byte-string interface using
// an explicit wire encoding. Step and Out receive decoded states; a nil or
// malformed state encoding panics, since states only ever come from this
// codec's own EncodeState (a decode failure is a programming error, not an
// input condition).
//
// EncodeState must be canonical (equal states append equal bytes — true by
// construction when it writes fields in a fixed order through
// internal/wire) and DecodeState must consume exactly what EncodeState
// wrote. The empty byte string decodes to S's zero value without calling
// DecodeState.
type Codec[S any] struct {
	// InitState returns the initial typed state.
	InitState func(id VNodeID, loc geo.Point) S
	// Step folds one virtual round into the state.
	Step func(state S, vround int, in RoundInput) S
	// Out computes the broadcast entering a virtual round (may be nil for
	// always-silent nodes).
	Out func(state S, vround int) *Message
	// EncodeState appends state's canonical wire encoding to dst.
	EncodeState func(dst []byte, state S) []byte
	// DecodeState parses one state from d (the inverse of EncodeState).
	DecodeState func(d *wire.Decoder) (S, error)
}

// Init implements Program.
func (c Codec[S]) Init(id VNodeID, loc geo.Point) []byte {
	return c.encode(c.InitState(id, loc))
}

// OnRound implements Program.
func (c Codec[S]) OnRound(state []byte, vround int, in RoundInput) []byte {
	return c.encode(c.Step(c.decode(state), vround, in))
}

// Outgoing implements Program.
func (c Codec[S]) Outgoing(state []byte, vround int) *Message {
	if c.Out == nil {
		return nil
	}
	return c.Out(c.decode(state), vround)
}

// encode runs EncodeState through a pooled scratch buffer and returns an
// exact-size copy: the scratch absorbs append growth (states are encoded
// every round but retained long-term, so the retained copy should carry no
// spare capacity), and the grown buffer goes back to the pool.
func (c Codec[S]) encode(s S) []byte {
	if c.EncodeState == nil {
		panic("vi: Codec requires EncodeState (use GobCodec for reflection-based prototyping)")
	}
	buf := wire.GetBuf()
	enc := c.EncodeState(*buf, s)
	out := append(make([]byte, 0, len(enc)), enc...)
	*buf = enc[:0]
	wire.PutBuf(buf)
	return out
}

func (c Codec[S]) decode(raw []byte) S {
	var s S
	if len(raw) == 0 {
		return s
	}
	if c.DecodeState == nil {
		panic("vi: Codec requires DecodeState (use GobCodec for reflection-based prototyping)")
	}
	d := wire.Dec(raw)
	s, err := c.DecodeState(&d)
	if err == nil {
		err = d.Finish()
	}
	if err != nil {
		panic(fmt.Sprintf("vi: state decode: %v", err))
	}
	return s
}
