package vi

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"vinfra/internal/cha"
	"vinfra/internal/geo"
)

// Program is a deterministic virtual node automaton (Section 1.2: virtual
// nodes are deterministic). The protocol layer treats states as opaque
// strings so they can be digested, compared across replicas, and shipped in
// join-acks; use Codec to write programs against typed states.
//
// Determinism is a correctness requirement: every replica must compute the
// identical state from the identical history.
type Program interface {
	// Init returns the virtual node's initial state.
	Init(id VNodeID, loc geo.Point) string
	// OnRound consumes the input of one virtual round — the agreed message
	// set, or a collision indication when the round's agreement produced
	// ⊥ — and returns the next state.
	OnRound(state string, vround int, in RoundInput) string
	// Outgoing returns the message the virtual node broadcasts in virtual
	// round vround, given the state entering that round, or nil to listen.
	Outgoing(state string, vround int) *Message
}

// stateCache incrementally materializes a virtual node's state from the
// replica's current history chain, re-using the previous computation when
// the chain is a pure extension (the common case once the network is
// stable) and recomputing from the initial state otherwise.
type stateCache struct {
	prog Program
	id   VNodeID
	loc  geo.Point

	floorState string       // state at the floor instance (initial or join snapshot)
	floor      cha.Instance // instances <= floor are folded into floorState

	cachedState  string
	cachedUpTo   cha.Instance
	cachedDigest uint64
}

func newStateCache(prog Program, id VNodeID, loc geo.Point) *stateCache {
	init := prog.Init(id, loc)
	return &stateCache{
		prog:        prog,
		id:          id,
		loc:         loc,
		floorState:  init,
		cachedState: init,
	}
}

// resetAt installs a state snapshot at the given floor (join state
// transfer, or a virtual node reset).
func (sc *stateCache) resetAt(floor cha.Instance, state string) {
	sc.floor = floor
	sc.floorState = state
	sc.cachedState = state
	sc.cachedUpTo = floor
	sc.cachedDigest = 0
}

// stateBefore returns the virtual node state entering virtual round vround
// (i.e., after applying history through instance vround-1), given the
// replica's current history estimate h.
func (sc *stateCache) stateBefore(h *cha.History, vround int) string {
	upTo := cha.Instance(vround) - 1
	if upTo < sc.floor {
		// Cannot reconstruct below the snapshot; the snapshot itself is
		// the best available state.
		return sc.floorState
	}
	// If the previously cached prefix still matches, extend incrementally.
	prefixDigest := h.DigestRange(sc.floor+1, sc.cachedUpTo, 0)
	start := sc.floor
	state := sc.floorState
	if sc.cachedUpTo > sc.floor && prefixDigest == sc.cachedDigest && sc.cachedUpTo <= upTo {
		start = sc.cachedUpTo
		state = sc.cachedState
	}
	for k := start + 1; k <= upTo; k++ {
		state = applyInstance(sc.prog, state, h, k)
	}
	sc.cachedState = state
	sc.cachedUpTo = upTo
	sc.cachedDigest = h.DigestRange(sc.floor+1, upTo, 0)
	return state
}

// applyInstance folds history position k into the state: an included
// instance delivers its decoded round input; a ⊥ instance delivers a
// collision indication (Section 3.3).
func applyInstance(prog Program, state string, h *cha.History, k cha.Instance) string {
	v, ok := h.At(k)
	if !ok {
		return prog.OnRound(state, int(k), RoundInput{Collision: true})
	}
	in, err := DecodeRoundInput(v)
	if err != nil {
		// A malformed agreed value cannot occur through the emulation
		// protocol itself; treat it as a collision to stay deterministic.
		in = RoundInput{Collision: true}
	}
	return prog.OnRound(state, int(k), in)
}

// Codec adapts a typed, gob-serializable state S to the Program string
// interface. Step and Out receive decoded states; encoding errors panic,
// since a non-serializable state type is a programming error.
type Codec[S any] struct {
	// InitState returns the initial typed state.
	InitState func(id VNodeID, loc geo.Point) S
	// Step folds one virtual round into the state.
	Step func(state S, vround int, in RoundInput) S
	// Out computes the broadcast entering a virtual round (may be nil for
	// always-silent nodes).
	Out func(state S, vround int) *Message
}

// Init implements Program.
func (c Codec[S]) Init(id VNodeID, loc geo.Point) string {
	return encodeState(c.InitState(id, loc))
}

// OnRound implements Program.
func (c Codec[S]) OnRound(state string, vround int, in RoundInput) string {
	return encodeState(c.Step(decodeState[S](state), vround, in))
}

// Outgoing implements Program.
func (c Codec[S]) Outgoing(state string, vround int) *Message {
	if c.Out == nil {
		return nil
	}
	return c.Out(decodeState[S](state), vround)
}

func encodeState[S any](s S) string {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		panic(fmt.Sprintf("vi: state encode: %v", err))
	}
	return buf.String()
}

func decodeState[S any](raw string) S {
	var s S
	if raw == "" {
		return s
	}
	if err := gob.NewDecoder(bytes.NewReader([]byte(raw))).Decode(&s); err != nil {
		panic(fmt.Sprintf("vi: state decode: %v", err))
	}
	return s
}
