// Package vi implements the virtual infrastructure emulation of Section 4:
// a set of deterministic virtual nodes at fixed locations, each replicated
// by the mobile devices within distance R1/4 of its location, emulated with
// constant overhead per virtual round on top of the CHAP agreement protocol
// (package cha).
//
// Each virtual round consists of eleven phases (Section 4.3): a message
// sub-protocol (client and vn phases), a scheduled CHAP instance (three
// phases), an unscheduled CHAP instance (three phases, with the ballot
// phase stretched over s+2 slots), and a join/join-ack/reset sub-protocol.
// The total is s+12 radio rounds per virtual round, a constant depending
// only on the virtual-node density (schedule length s), independent of the
// number of replicas and of the execution length.
//
// Payloads, proposal values and virtual-node states are byte strings
// encoded with internal/wire; every wire message's WireSize is the exact
// length of its encoding.
package vi

import (
	"bytes"
	"sort"
	"sync"

	"vinfra/internal/cha"
	"vinfra/internal/wire"
)

// VNodeID identifies a virtual node by its index in the deployment.
type VNodeID int

// None is the VNodeID of "no virtual node" (an emulator outside every
// region).
const None VNodeID = -1

// Message is a payload on the virtual broadcast channel — what clients and
// virtual nodes exchange. Like the underlying channel, the virtual channel
// carries no sender identity; applications encode what they need in the
// payload. Payloads are immutable once handed to the channel: receivers may
// get views of the sender's bytes.
type Message struct {
	Payload []byte
}

// Text builds a Message with a UTF-8 payload — the convenient constructor
// for free-form payloads (demos, tests, pings). Protocol applications
// encode binary payloads with internal/wire instead.
func Text(s string) *Message { return &Message{Payload: []byte(s)} }

// --- Wire messages of the emulation protocol ---

// ClientMsg carries a client's broadcast in the client phase.
type ClientMsg struct {
	Payload []byte
}

// WireSize implements sim.Sized: a tag byte plus the length-prefixed
// payload, the exact length of the message's wire encoding.
func (m ClientMsg) WireSize() int { return 1 + wire.BytesSize(len(m.Payload)) }

// VNMsg carries a virtual node's broadcast in the vn phase (sent by one or
// more of its replicas on its behalf).
type VNMsg struct {
	Payload []byte
}

// WireSize implements sim.Sized.
func (m VNMsg) WireSize() int { return 1 + wire.BytesSize(len(m.Payload)) }

// JoinReqMsg announces a new emulator requesting the virtual node state.
type JoinReqMsg struct{}

// WireSize implements sim.Sized.
func (JoinReqMsg) WireSize() int { return 1 }

// JoinAckMsg transfers the virtual node's replica state to a joiner: the
// sender's checkpointed virtual-node state plus its agreement-layer state
// above the checkpoint. Its size is the state-transfer cost the paper's
// open question (3) wants reduced.
type JoinAckMsg struct {
	// StateFloor is the checkpoint instance: State is the virtual node
	// state after applying the agreed history up to and including it.
	StateFloor cha.Instance
	// State is the encoded virtual node state at StateFloor.
	State []byte
	// Snap is the sender's agreement-layer state above the checkpoint.
	Snap cha.CoreSnapshot
}

// AppendTo appends the ack's canonical wire encoding: the checkpoint
// instance, the length-prefixed state, and the core snapshot.
func (m JoinAckMsg) AppendTo(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(m.StateFloor))
	dst = wire.AppendBytes(dst, m.State)
	return m.Snap.AppendTo(dst)
}

// WireSize implements sim.Sized: the exact length of AppendTo's encoding.
func (m JoinAckMsg) WireSize() int {
	return wire.UvarintSize(uint64(m.StateFloor)) +
		wire.BytesSize(len(m.State)) +
		m.Snap.WireSize()
}

// DecodeJoinAckMsg parses a join-ack body produced by AppendTo. Adversarial
// bytes yield an error, never a panic; the decoded State is a copy, safe to
// retain.
func DecodeJoinAckMsg(b []byte) (JoinAckMsg, error) {
	d := wire.Dec(b)
	var m JoinAckMsg
	m.StateFloor = cha.Instance(d.Uvarint())
	state := d.Bytes()
	snap, err := cha.DecodeCoreSnapshot(&d)
	if err != nil {
		return JoinAckMsg{}, err
	}
	if err := d.Finish(); err != nil {
		return JoinAckMsg{}, err
	}
	m.State = append([]byte(nil), state...)
	m.Snap = snap
	return m, nil
}

// ResetGuardMsg is broadcast in the reset phase by live replicas to prevent
// a joiner from resetting a virtual node that is still alive.
type ResetGuardMsg struct{}

// WireSize implements sim.Sized.
func (ResetGuardMsg) WireSize() int { return 1 }

// --- Proposal encoding ---

// RoundInput is what one replica believes the virtual node experienced in
// one virtual round: the messages to deliver and whether the virtual node
// itself broadcast. It is encoded as the CHA proposal value, so the
// replicas agree on it per round.
type RoundInput struct {
	// Msgs are the payloads heard for the virtual node during the message
	// sub-protocol, sorted bytewise and deduplicated for determinism.
	Msgs [][]byte
	// Collision reports whether the replica observed a collision during
	// the message sub-protocol (the virtual channel is collision-prone).
	Collision bool
	// VNBroadcast reports whether the virtual node's own broadcast was
	// observed in the vn phase.
	VNBroadcast bool
}

// Normalize sorts (bytewise) and deduplicates Msgs in place.
func (in *RoundInput) Normalize() {
	sort.Slice(in.Msgs, func(i, j int) bool {
		return bytes.Compare(in.Msgs[i], in.Msgs[j]) < 0
	})
	out := in.Msgs[:0]
	var last []byte
	for i, m := range in.Msgs {
		if i == 0 || !bytes.Equal(m, last) {
			out = append(out, m)
		}
		last = m
	}
	in.Msgs = out
}

// Proposal flag bits.
const (
	flagCollision   = 1 << 0
	flagVNBroadcast = 1 << 1
)

// msgsScratch pools the slice-header copies Encode sorts, so the per-round
// proposal encoding allocates only the value bytes themselves.
var msgsScratch = sync.Pool{
	New: func() any {
		s := make([][]byte, 0, 16)
		return &s
	},
}

// Encode serializes the input as a CHA proposal value: a flags byte, the
// message count, then the length-prefixed messages in sorted order. The
// encoding is canonical: equal inputs encode identically. The caller's
// Msgs slice is not mutated; the encoded value owns its bytes.
func (in RoundInput) Encode() cha.Value {
	scratch := msgsScratch.Get().(*[][]byte)
	cp := RoundInput{
		Msgs:        append((*scratch)[:0], in.Msgs...),
		Collision:   in.Collision,
		VNBroadcast: in.VNBroadcast,
	}
	cp.Normalize()

	size := 1 + wire.UvarintSize(uint64(len(cp.Msgs)))
	for _, m := range cp.Msgs {
		size += wire.BytesSize(len(m))
	}
	buf := make([]byte, 0, size)
	var flags byte
	if cp.Collision {
		flags |= flagCollision
	}
	if cp.VNBroadcast {
		flags |= flagVNBroadcast
	}
	buf = append(buf, flags)
	buf = wire.AppendUvarint(buf, uint64(len(cp.Msgs)))
	for _, m := range cp.Msgs {
		buf = wire.AppendBytes(buf, m)
	}
	// Clear the copied headers before pooling: elements past len(0) would
	// otherwise keep one round's payload bytes reachable from the pool.
	full := cp.Msgs[:cap(cp.Msgs)]
	clear(full)
	*scratch = full[:0]
	msgsScratch.Put(scratch)
	return cha.ValueOf(buf)
}

// DecodeRoundInput parses a proposal value back into a RoundInput. The
// decoded Msgs are zero-copy views into the value's bytes (values are
// immutable, so the views are safe to read but must not be mutated).
// Adversarial bytes yield an error, never a panic.
func DecodeRoundInput(v cha.Value) (RoundInput, error) {
	d := wire.Dec(v.Bytes())
	var in RoundInput
	flags := d.Uvarint()
	if d.Err() == nil && flags > flagCollision|flagVNBroadcast {
		return RoundInput{}, wire.ErrMalformed
	}
	in.Collision = flags&flagCollision != 0
	in.VNBroadcast = flags&flagVNBroadcast != 0
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return RoundInput{}, wire.ErrMalformed
	}
	if n > 0 {
		in.Msgs = make([][]byte, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		m := d.Bytes()
		if d.Err() != nil {
			return RoundInput{}, d.Err()
		}
		in.Msgs = append(in.Msgs, m)
	}
	if err := d.Finish(); err != nil {
		return RoundInput{}, err
	}
	return in, nil
}
