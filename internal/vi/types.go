// Package vi implements the virtual infrastructure emulation of Section 4:
// a set of deterministic virtual nodes at fixed locations, each replicated
// by the mobile devices within distance R1/4 of its location, emulated with
// constant overhead per virtual round on top of the CHAP agreement protocol
// (package cha).
//
// Each virtual round consists of eleven phases (Section 4.3): a message
// sub-protocol (client and vn phases), a scheduled CHAP instance (three
// phases), an unscheduled CHAP instance (three phases, with the ballot
// phase stretched over s+2 slots), and a join/join-ack/reset sub-protocol.
// The total is s+12 radio rounds per virtual round, a constant depending
// only on the virtual-node density (schedule length s), independent of the
// number of replicas and of the execution length.
package vi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vinfra/internal/cha"
)

// VNodeID identifies a virtual node by its index in the deployment.
type VNodeID int

// None is the VNodeID of "no virtual node" (an emulator outside every
// region).
const None VNodeID = -1

// Message is a payload on the virtual broadcast channel — what clients and
// virtual nodes exchange. Like the underlying channel, the virtual channel
// carries no sender identity; applications encode what they need in the
// payload.
type Message struct {
	Payload string
}

// --- Wire messages of the emulation protocol ---

// ClientMsg carries a client's broadcast in the client phase.
type ClientMsg struct {
	Payload string
}

// WireSize implements sim.Sized.
func (m ClientMsg) WireSize() int { return 1 + len(m.Payload) }

// VNMsg carries a virtual node's broadcast in the vn phase (sent by one or
// more of its replicas on its behalf).
type VNMsg struct {
	Payload string
}

// WireSize implements sim.Sized.
func (m VNMsg) WireSize() int { return 1 + len(m.Payload) }

// JoinReqMsg announces a new emulator requesting the virtual node state.
type JoinReqMsg struct{}

// WireSize implements sim.Sized.
func (JoinReqMsg) WireSize() int { return 1 }

// JoinAckMsg transfers the virtual node's replica state to a joiner: the
// sender's checkpointed virtual-node state plus its agreement-layer state
// above the checkpoint. Its size is the state-transfer cost the paper's
// open question (3) wants reduced.
type JoinAckMsg struct {
	// StateFloor is the checkpoint instance: State is the virtual node
	// state after applying the agreed history up to and including it.
	StateFloor cha.Instance
	// State is the encoded virtual node state at StateFloor.
	State string
	// Snap is the sender's agreement-layer state above the checkpoint.
	Snap cha.CoreSnapshot
}

// WireSize implements sim.Sized.
func (m JoinAckMsg) WireSize() int {
	return 8 + len(m.State) + m.Snap.WireSize()
}

// ResetGuardMsg is broadcast in the reset phase by live replicas to prevent
// a joiner from resetting a virtual node that is still alive.
type ResetGuardMsg struct{}

// WireSize implements sim.Sized.
func (ResetGuardMsg) WireSize() int { return 1 }

// --- Proposal encoding ---

// RoundInput is what one replica believes the virtual node experienced in
// one virtual round: the messages to deliver and whether the virtual node
// itself broadcast. It is encoded as the CHA proposal value, so the
// replicas agree on it per round.
type RoundInput struct {
	// Msgs are the payloads heard for the virtual node during the message
	// sub-protocol, sorted and deduplicated for determinism.
	Msgs []string
	// Collision reports whether the replica observed a collision during
	// the message sub-protocol (the virtual channel is collision-prone).
	Collision bool
	// VNBroadcast reports whether the virtual node's own broadcast was
	// observed in the vn phase.
	VNBroadcast bool
}

// Normalize sorts and deduplicates Msgs in place.
func (in *RoundInput) Normalize() {
	sort.Strings(in.Msgs)
	out := in.Msgs[:0]
	var last string
	for i, m := range in.Msgs {
		if i == 0 || m != last {
			out = append(out, m)
		}
		last = m
	}
	in.Msgs = out
}

// Encode serializes the input as a CHA proposal value. The encoding is
// canonical: equal inputs encode identically.
func (in RoundInput) Encode() cha.Value {
	cp := in
	cp.Msgs = append([]string(nil), in.Msgs...)
	cp.Normalize()
	var sb strings.Builder
	if cp.Collision {
		sb.WriteByte('C')
	} else {
		sb.WriteByte('-')
	}
	if cp.VNBroadcast {
		sb.WriteByte('B')
	} else {
		sb.WriteByte('-')
	}
	for _, m := range cp.Msgs {
		fmt.Fprintf(&sb, "|%d:%s", len(m), m)
	}
	return cha.Value(sb.String())
}

// DecodeRoundInput parses a proposal value back into a RoundInput.
func DecodeRoundInput(v cha.Value) (RoundInput, error) {
	s := string(v)
	if len(s) < 2 {
		return RoundInput{}, fmt.Errorf("vi: proposal too short: %q", s)
	}
	in := RoundInput{
		Collision:   s[0] == 'C',
		VNBroadcast: s[1] == 'B',
	}
	rest := s[2:]
	for len(rest) > 0 {
		if rest[0] != '|' {
			return RoundInput{}, fmt.Errorf("vi: malformed proposal near %q", rest)
		}
		rest = rest[1:]
		colon := strings.IndexByte(rest, ':')
		if colon < 0 {
			return RoundInput{}, fmt.Errorf("vi: missing length separator in %q", rest)
		}
		n, err := strconv.Atoi(rest[:colon])
		if err != nil || n < 0 || colon+1+n > len(rest) {
			return RoundInput{}, fmt.Errorf("vi: bad length in proposal: %q", rest)
		}
		in.Msgs = append(in.Msgs, rest[colon+1:colon+1+n])
		rest = rest[colon+1+n:]
	}
	return in, nil
}
