package vi

import (
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

func TestBuildScheduleSingleNode(t *testing.T) {
	s := BuildSchedule([]geo.Point{{X: 0}}, testRadii)
	if s.Len() != 1 {
		t.Fatalf("schedule length = %d, want 1", s.Len())
	}
	if s.SlotOf(0) != 0 {
		t.Errorf("SlotOf(0) = %d", s.SlotOf(0))
	}
	if !s.ScheduledIn(0, 0) || !s.ScheduledIn(0, 5) {
		t.Error("single node should be scheduled every round")
	}
}

func TestBuildScheduleFarApartShareSlot(t *testing.T) {
	// Two virtual nodes beyond the conflict threshold can share a slot.
	locs := []geo.Point{{X: 0}, {X: ConflictThreshold(testRadii) + 1}}
	s := BuildSchedule(locs, testRadii)
	if s.Len() != 1 {
		t.Fatalf("schedule length = %d, want 1 (no conflict)", s.Len())
	}
	if err := s.Validate(locs, testRadii); err != nil {
		t.Error(err)
	}
}

func TestBuildScheduleConflictingSeparated(t *testing.T) {
	locs := []geo.Point{{X: 0}, {X: 6}}
	s := BuildSchedule(locs, testRadii)
	if s.Len() != 2 {
		t.Fatalf("schedule length = %d, want 2", s.Len())
	}
	if s.SlotOf(0) == s.SlotOf(1) {
		t.Error("conflicting nodes share a slot")
	}
	if err := s.Validate(locs, testRadii); err != nil {
		t.Error(err)
	}
}

func TestBuildScheduleGridCompleteAndNonConflicting(t *testing.T) {
	for _, dim := range []struct{ cols, rows int }{{2, 2}, {3, 3}, {5, 4}} {
		g := geo.Grid{Spacing: 6, Cols: dim.cols, Rows: dim.rows}
		locs := g.Locations()
		s := BuildSchedule(locs, testRadii)
		if err := s.Validate(locs, testRadii); err != nil {
			t.Errorf("%dx%d: %v", dim.cols, dim.rows, err)
		}
		// Length depends only on density: bounded by the max conflict
		// degree + 1.
		adj := geo.NeighborGraph(locs, ConflictThreshold(testRadii))
		maxDeg := 0
		for _, ns := range adj {
			if len(ns) > maxDeg {
				maxDeg = len(ns)
			}
		}
		if s.Len() > maxDeg+1 {
			t.Errorf("%dx%d: schedule length %d exceeds greedy bound %d", dim.cols, dim.rows, s.Len(), maxDeg+1)
		}
	}
}

func TestScheduleValidateDetectsConflicts(t *testing.T) {
	locs := []geo.Point{{X: 0}, {X: 6}}
	bad := Schedule{
		slots:  [][]VNodeID{{0, 1}},
		slotOf: []int{0, 0},
	}
	if err := bad.Validate(locs, testRadii); err == nil {
		t.Error("Validate accepted a conflicting schedule")
	}
	missing := Schedule{
		slots:  [][]VNodeID{{0}},
		slotOf: []int{0, -1},
	}
	if err := missing.Validate(locs, testRadii); err == nil {
		t.Error("Validate accepted an incomplete schedule")
	}
}

func TestTimingConstants(t *testing.T) {
	tm := Timing{S: 1}
	if got := tm.RoundsPerVRound(); got != 13 {
		t.Errorf("RoundsPerVRound(s=1) = %d, want 13", got)
	}
	if got := tm.UnschedBallotRounds(); got != 3 {
		t.Errorf("UnschedBallotRounds(s=1) = %d, want 3", got)
	}
	if got := tm.LeaderHorizon(); got != 22 {
		t.Errorf("LeaderHorizon(s=1) = %d, want 2*(1+10)=22", got)
	}
	tm4 := Timing{S: 4}
	if got := tm4.RoundsPerVRound(); got != 16 {
		t.Errorf("RoundsPerVRound(s=4) = %d, want 16", got)
	}
}

func TestTimingDecompose(t *testing.T) {
	tm := Timing{S: 2} // per = 10 + 4 = 14
	tests := []struct {
		r       sim.Round
		vround  int
		phase   Phase
		subslot int
	}{
		{0, 0, PhaseClient, -1},
		{1, 0, PhaseVN, -1},
		{2, 0, PhaseSchedBallot, -1},
		{3, 0, PhaseSchedVeto1, -1},
		{4, 0, PhaseSchedVeto2, -1},
		{5, 0, PhaseUnschedBallot, 0},
		{6, 0, PhaseUnschedBallot, 1},
		{7, 0, PhaseUnschedBallot, 2},
		{8, 0, PhaseUnschedBallot, 3},
		{9, 0, PhaseUnschedVeto1, -1},
		{10, 0, PhaseUnschedVeto2, -1},
		{11, 0, PhaseJoin, -1},
		{12, 0, PhaseJoinAck, -1},
		{13, 0, PhaseReset, -1},
		{14, 1, PhaseClient, -1},
		{14*7 + 12, 7, PhaseJoinAck, -1},
	}
	for _, tt := range tests {
		vr, ph, ss := tm.Decompose(tt.r)
		if vr != tt.vround || ph != tt.phase || ss != tt.subslot {
			t.Errorf("Decompose(%d) = (%d, %v, %d), want (%d, %v, %d)",
				tt.r, vr, ph, ss, tt.vround, tt.phase, tt.subslot)
		}
	}
}

func TestTimingDecomposeCoversEveryPhaseExactlyOnce(t *testing.T) {
	for _, s := range []int{1, 2, 5} {
		tm := Timing{S: s}
		counts := make(map[Phase]int)
		for r := 0; r < tm.RoundsPerVRound(); r++ {
			_, ph, _ := tm.Decompose(sim.Round(r))
			counts[ph]++
		}
		for p := PhaseClient; p < Phase(NumPhases); p++ {
			want := 1
			if p == PhaseUnschedBallot {
				want = s + 2
			}
			if counts[p] != want {
				t.Errorf("s=%d: phase %v occurs %d times, want %d", s, p, counts[p], want)
			}
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	for p := PhaseClient; p < Phase(NumPhases); p++ {
		if got := p.String(); got == "" || got[0] == 'p' && got != "phase(?)" && got[:5] == "phase" {
			t.Errorf("phase %d has placeholder string %q", int(p), got)
		}
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Errorf("unknown phase string = %q", got)
	}
}
