package vi_test

import (
	"fmt"
	"sync"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// viAgreementChecker verifies the emulation-level safety invariant: any
// two green outputs for the same (virtual node, instance) must carry
// identical history suffix digests — i.e., replicas that decide a virtual
// round decide the same virtual node behaviour.
type viAgreementChecker struct {
	mu         sync.Mutex
	digests    map[string]uint64
	violations int
}

func newVIAgreementChecker() *viAgreementChecker {
	return &viAgreementChecker{digests: make(map[string]uint64)}
}

func (c *viAgreementChecker) hook(v vi.VNodeID, out cha.Output) {
	if out.Color != cha.Green {
		return
	}
	d := out.History.DigestRange(out.Floor+1, out.Instance, 0)
	key := fmt.Sprintf("%d/%d/%d", v, out.Floor, out.Instance)
	c.mu.Lock()
	if prev, ok := c.digests[key]; ok && prev != d {
		c.violations++
	} else {
		c.digests[key] = d
	}
	c.mu.Unlock()
}

// TestVIAgreementUnderLossManySeeds stresses the full emulation with
// sustained random loss and spurious collisions under the backoff CM, and
// requires zero green-output divergence across seeds. Safety of the
// emulation is unconditional, like CHAP's.
func TestVIAgreementUnderLossManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		checker := newVIAgreementChecker()
		locs := geo.Grid{Spacing: 6, Cols: 2, Rows: 1}.Locations()
		sched := vi.BuildSchedule(locs, testRadii)
		dep, err := vi.NewDeployment(vi.DeploymentConfig{
			Locations: locs,
			Radii:     testRadii,
			Program:   counterProgram(sched),
		})
		if err != nil {
			t.Fatal(err)
		}
		healAt := sim.Round(10 * dep.Timing().RoundsPerVRound())
		medium := radio.MustMedium(radio.Config{
			Radii:     testRadii,
			Detector:  cd.EventuallyAC{Racc: healAt, FalsePositiveRate: 0.15},
			Adversary: radio.NewRandomLoss(0.3, 0.15, healAt, seed*41),
			Seed:      seed,
		})
		eng := sim.NewEngine(medium, sim.WithSeed(seed))
		var emulators []*vi.Emulator
		for _, loc := range locs {
			for i := 0; i < 3; i++ {
				pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.3, Y: loc.Y + 0.2}
				eng.Attach(pos, nil, func(env sim.Env) sim.Node {
					em := dep.NewEmulator(env, true)
					em.SetHooks(vi.EmulatorHooks{OnOutput: checker.hook})
					emulators = append(emulators, em)
					return em
				})
			}
		}
		eng.Attach(geo.Point{X: 1, Y: -1.3}, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					return vi.Text(fmt.Sprintf("ping-%03d", vr))
				}))
		})

		eng.Run(30 * dep.Timing().RoundsPerVRound())

		if checker.violations > 0 {
			t.Errorf("seed %d: %d green-output divergences", seed, checker.violations)
		}
		// After healing, replicas of each virtual node converge.
		for v := 0; v < len(locs); v++ {
			var want string
			for i, em := range emulators {
				if em.VNode() != vi.VNodeID(v) || !em.Joined() {
					continue
				}
				got := string(em.StateBefore(31))
				if want == "" {
					want = got
				} else if got != want {
					t.Errorf("seed %d vn %d: replica %d diverged", seed, v, i)
				}
			}
		}
	}
}

// TestVICrashStorm crashes a replica every few virtual rounds while fresh
// devices keep joining; the virtual node's state must survive and all
// survivors agree.
func TestVICrashStorm(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 4,
		leaders:     true,
	})
	tb.addClient(geo.Point{X: 1.3, Y: -1}, vi.ClientFunc(
		func(vr int, _ []vi.Message, _ bool) *vi.Message {
			return vi.Text(fmt.Sprintf("ping-%03d", vr))
		}))
	per := tb.dep.Timing().RoundsPerVRound()

	// Crash replicas 1..3 one at a time; attach replacements.
	var replacements []*vi.Emulator
	for round := 0; round < 3; round++ {
		tb.eng.Run(4 * per)
		tb.eng.Crash(sim.NodeID(round + 1))
		tb.eng.Attach(geo.Point{X: -0.3 * float64(round+1), Y: -0.4}, nil, func(env sim.Env) sim.Node {
			em := tb.dep.NewEmulator(env, false)
			replacements = append(replacements, em)
			return em
		})
	}
	tb.eng.Run(6 * per)

	// The original leader survived (ID 0 is never crashed); replacements
	// joined and agree with it.
	joinedReplacements := 0
	want := string(tb.emulators[0].StateBefore(100))
	for i, em := range replacements {
		if !em.Joined() {
			continue
		}
		joinedReplacements++
		if string(em.StateBefore(100)) != want {
			t.Errorf("replacement %d diverged", i)
		}
	}
	if joinedReplacements == 0 {
		t.Fatal("no replacement ever joined through the crash storm")
	}
	var st counterState
	decodeTestState(t, []byte(want), &st)
	if st.Pings < 10 {
		t.Errorf("virtual node lost history through the crash storm: %+v", st.Pings)
	}
}
