package vi_test

import (
	"fmt"
	"strings"
	"testing"

	"vinfra/internal/wire"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

// counterState is a deliberately simple deterministic VN program state: it
// counts client messages and remembers everything it has heard.
type counterState struct {
	Pings  int
	Rounds int
	Heard  []string
}

// counterProgram counts messages and, when scheduled, broadcasts the count.
func counterProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[counterState]{
			InitState: func(vi.VNodeID, geo.Point) counterState { return counterState{} },
			Step: func(s counterState, vround int, in vi.RoundInput) counterState {
				s.Rounds++
				s.Pings += len(in.Msgs)
				for _, m := range in.Msgs {
					s.Heard = append(s.Heard, string(m))
				}
				return s
			},
			Out: func(s counterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				return vi.Text(fmt.Sprintf("count=%d", s.Pings))
			},
			EncodeState: encodeCounterState,
			DecodeState: decodeCounterState,
		}
	}
}

func encodeCounterState(dst []byte, s counterState) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.Pings))
	dst = wire.AppendUvarint(dst, uint64(s.Rounds))
	dst = wire.AppendUvarint(dst, uint64(len(s.Heard)))
	for _, h := range s.Heard {
		dst = wire.AppendString(dst, h)
	}
	return dst
}

func decodeCounterState(d *wire.Decoder) (counterState, error) {
	var s counterState
	s.Pings = int(d.Uvarint())
	s.Rounds = int(d.Uvarint())
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return counterState{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		s.Heard = append(s.Heard, d.String())
	}
	return s, d.Err()
}

// fixedLeaderCM builds a CM factory where, per virtual node, the node with
// the given engine ID is always the leader.
func fixedLeaderCM(leaders map[vi.VNodeID]sim.NodeID) func(vi.VNodeID, sim.Env) cm.Manager {
	return func(v vi.VNodeID, env sim.Env) cm.Manager {
		factory, _ := cm.NewFixed(leaders[v])
		return factory(env)
	}
}

type testbed struct {
	eng       *sim.Engine
	dep       *vi.Deployment
	emulators []*vi.Emulator
	clients   []*vi.Client
}

type testbedOpts struct {
	locs        []geo.Point
	replicasPer int
	seed        int64
	leaders     bool // use fixed-leader CMs (first replica of each region)
	adversary   radio.Adversary
	detector    cd.Detector
}

func newTestbed(t *testing.T, o testbedOpts) *testbed {
	t.Helper()
	if o.detector == nil {
		o.detector = cd.AC{}
	}
	if o.seed == 0 {
		o.seed = 1
	}
	sched := vi.BuildSchedule(o.locs, testRadii)

	cfg := vi.DeploymentConfig{
		Locations: o.locs,
		Radii:     testRadii,
		Program:   counterProgram(sched),
	}
	if o.leaders {
		leaders := make(map[vi.VNodeID]sim.NodeID, len(o.locs))
		for v := range o.locs {
			// Replicas are attached per-region in order: region v's first
			// replica has ID v*replicasPer.
			leaders[vi.VNodeID(v)] = sim.NodeID(v * o.replicasPer)
		}
		cfg.NewCM = fixedLeaderCM(leaders)
	}
	dep, err := vi.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}

	medium := radio.MustMedium(radio.Config{
		Radii:     testRadii,
		Detector:  o.detector,
		Adversary: o.adversary,
		Seed:      o.seed,
	})
	tb := &testbed{
		eng: sim.NewEngine(medium, sim.WithSeed(o.seed)),
		dep: dep,
	}
	for v, loc := range o.locs {
		for i := 0; i < o.replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.5, Y: loc.Y + 0.2}
			tb.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				em := dep.NewEmulator(env, true)
				tb.emulators = append(tb.emulators, em)
				return em
			})
		}
		_ = v
	}
	return tb
}

// addClient attaches a client at pos with the given program.
func (tb *testbed) addClient(pos geo.Point, prog vi.ClientProgram) *vi.Client {
	var c *vi.Client
	tb.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
		c = tb.dep.NewClient(env, prog)
		return c
	})
	tb.clients = append(tb.clients, c)
	return c
}

func (tb *testbed) runVRounds(n int) {
	tb.eng.Run(n * tb.dep.Timing().RoundsPerVRound())
}

func TestSingleVNodeGreenEveryRound(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		leaders:     true,
	})
	greens := 0
	total := 0
	tb.emulators[0].SetHooks(vi.EmulatorHooks{
		OnOutput: func(v vi.VNodeID, out cha.Output) {
			total++
			if out.Color == cha.Green {
				greens++
			}
		},
	})
	tb.runVRounds(10)
	if total != 10 {
		t.Fatalf("outputs = %d, want 10 (one agreement instance per virtual round)", total)
	}
	if greens != 10 {
		t.Errorf("green rounds = %d/10 on a clean channel with a fixed leader", greens)
	}
}

func TestReplicasStayConsistent(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 4,
		leaders:     true,
	})
	// A client pinging every virtual round gives the VN real inputs.
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			return vi.Text(fmt.Sprintf("ping-%03d", vr))
		}))
	tb.runVRounds(12)

	// All replicas must compute the identical VN state.
	want := string(tb.emulators[0].StateBefore(13))
	for i, em := range tb.emulators[1:] {
		if got := string(em.StateBefore(13)); got != want {
			t.Errorf("replica %d diverged from replica 0", i+1)
		}
	}
}

func TestVNodeCountsClientPings(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		leaders:     true,
	})
	const rounds = 10
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			if vr > rounds {
				return nil
			}
			return vi.Text(fmt.Sprintf("ping-%03d", vr))
		}))
	tb.runVRounds(rounds + 2)

	// Decode the replica-0 state and check the count.
	var state counterState
	decodeTestState(t, tb.emulators[0].StateBefore(rounds+3), &state)
	if state.Pings != rounds {
		t.Errorf("VN counted %d pings, want %d (heard: %v)", state.Pings, rounds, state.Heard)
	}
}

func TestClientHearsVirtualNode(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		leaders:     true,
	})
	var heard []string
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			for _, m := range recv {
				heard = append(heard, string(m.Payload))
			}
			return vi.Text("ping")
		}))
	tb.runVRounds(8)
	counts := 0
	for _, h := range heard {
		if strings.HasPrefix(h, "count=") {
			counts++
		}
	}
	if counts < 5 {
		t.Errorf("client heard only %d VN broadcasts in 8 rounds: %v", counts, heard)
	}
}

func TestTwoVNodesCommunicate(t *testing.T) {
	// Two virtual nodes R1/2 apart: each VN's broadcasts reach the other's
	// replicas, so each VN's state should record the other's messages.
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	tb.runVRounds(12)

	// VN1's replicas should have heard VN0's count broadcasts and vice
	// versa.
	var st0, st1 counterState
	decodeTestState(t, tb.emulators[0].StateBefore(13), &st0)
	decodeTestState(t, tb.emulators[2].StateBefore(13), &st1)
	if len(st1.Heard) == 0 {
		t.Error("VN1 never heard VN0's broadcasts")
	}
	if len(st0.Heard) == 0 {
		t.Error("VN0 never heard VN1's broadcasts")
	}
	for _, m := range st1.Heard {
		if !strings.HasPrefix(m, "count=") {
			t.Errorf("VN1 heard unexpected message %q", m)
		}
	}
}

func TestJoinTransfersState(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		leaders:     true,
	})
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			return vi.Text(fmt.Sprintf("ping-%03d", vr))
		}))
	tb.runVRounds(5)

	// A latecomer arrives inside the region without bootstrap state.
	var late *vi.Emulator
	joined := -1
	tb.eng.Attach(geo.Point{X: 0.5, Y: 0.5}, nil, func(env sim.Env) sim.Node {
		late = tb.dep.NewEmulator(env, false)
		late.SetHooks(vi.EmulatorHooks{
			OnJoin: func(v vi.VNodeID, vr int) { joined = vr },
		})
		return late
	})
	tb.runVRounds(4)

	if !late.Joined() {
		t.Fatal("latecomer never joined")
	}
	if joined < 6 || joined > 9 {
		t.Errorf("joined at vround %d, want within a few rounds of arrival", joined)
	}
	tb.runVRounds(3)
	// The latecomer now computes the same state as the old replicas.
	want := string(tb.emulators[0].StateBefore(13))
	if got := string(late.StateBefore(13)); got != want {
		t.Error("joined replica's state diverges from existing replicas")
	}
}

func TestResetRevivesDeadVNode(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	tb.runVRounds(4)
	// Kill every replica: the virtual node fails.
	tb.eng.Crash(0)
	tb.eng.Crash(1)
	tb.runVRounds(2)

	// A newcomer arrives; with nobody to answer join or guard reset, it
	// must reset the virtual node.
	var late *vi.Emulator
	resetAt := -1
	tb.eng.Attach(geo.Point{X: 0.2, Y: 0.1}, nil, func(env sim.Env) sim.Node {
		late = tb.dep.NewEmulator(env, false)
		late.SetHooks(vi.EmulatorHooks{
			OnReset: func(v vi.VNodeID, vr int) { resetAt = vr },
		})
		return late
	})
	tb.runVRounds(4)

	if !late.Joined() {
		t.Fatal("newcomer never revived the virtual node")
	}
	if resetAt < 0 {
		t.Fatal("OnReset hook never fired")
	}
	// The revived VN runs from its initial state.
	var st counterState
	decodeTestState(t, late.StateBefore(resetAt+4), &st)
	if st.Pings != 0 {
		t.Errorf("revived VN state should be fresh, got %+v", st)
	}
}

func TestResetGuardPreventsStateLoss(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	tb.runVRounds(4)

	// A newcomer arrives while live replicas exist: it must join via ack,
	// never reset.
	var late *vi.Emulator
	reset := false
	tb.eng.Attach(geo.Point{X: 0.2, Y: 0.1}, nil, func(env sim.Env) sim.Node {
		late = tb.dep.NewEmulator(env, false)
		late.SetHooks(vi.EmulatorHooks{
			OnReset: func(vi.VNodeID, int) { reset = true },
		})
		return late
	})
	tb.runVRounds(4)

	if reset {
		t.Error("newcomer reset a live virtual node")
	}
	if !late.Joined() {
		t.Error("newcomer failed to join a live virtual node")
	}
}

func TestEmulationOverheadConstantInReplicas(t *testing.T) {
	// E5: the rounds-per-virtual-round is s+12, independent of replica
	// count; more replicas do not add rounds (they add only transmissions
	// within the same phases).
	for _, replicas := range []int{1, 3, 6} {
		tb := newTestbed(t, testbedOpts{
			locs:        []geo.Point{{X: 0, Y: 0}},
			replicasPer: replicas,
			leaders:     true,
		})
		per := tb.dep.Timing().RoundsPerVRound()
		if per != 13 { // s=1 for a single VN: 10 + 3
			t.Fatalf("replicas=%d: rounds per vround = %d, want 13", replicas, per)
		}
		tb.runVRounds(5)
		if got := tb.eng.Stats().Rounds; got != 5*per {
			t.Errorf("replicas=%d: engine ran %d rounds, want %d", replicas, got, 5*per)
		}
	}
}

func TestDeploymentValidation(t *testing.T) {
	base := vi.DeploymentConfig{
		Locations: []geo.Point{{}},
		Radii:     testRadii,
		Program:   counterProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii)),
	}
	if _, err := vi.NewDeployment(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := base
	bad.Locations = nil
	if _, err := vi.NewDeployment(bad); err == nil {
		t.Error("empty locations accepted")
	}
	bad = base
	bad.Radii = geo.Radii{R1: 5, R2: 1}
	if _, err := vi.NewDeployment(bad); err == nil {
		t.Error("invalid radii accepted")
	}
	bad = base
	bad.Program = nil
	if _, err := vi.NewDeployment(bad); err == nil {
		t.Error("missing program accepted")
	}
}

func TestRegionOf(t *testing.T) {
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: []geo.Point{{X: 0}, {X: 6}},
		Radii:     testRadii,
		Program:   counterProgram(vi.BuildSchedule([]geo.Point{{X: 0}, {X: 6}}, testRadii)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dep.RegionOf(geo.Point{X: 1}); got != 0 {
		t.Errorf("RegionOf(1,0) = %d, want 0", got)
	}
	if got := dep.RegionOf(geo.Point{X: 5}); got != 1 {
		t.Errorf("RegionOf(5,0) = %d, want 1", got)
	}
	if got := dep.RegionOf(geo.Point{X: 3, Y: 3}); got != vi.None {
		t.Errorf("RegionOf(3,3) = %d, want None", got)
	}
	if dep.RegionRadius() != 2.5 {
		t.Errorf("RegionRadius = %v, want R1/4 = 2.5", dep.RegionRadius())
	}
}

// decodeTestState decodes a wire-encoded counter state produced by
// counterProgram's codec.
func decodeTestState(t *testing.T, raw []byte, out *counterState) {
	t.Helper()
	d := wire.Dec(raw)
	s, err := decodeCounterState(&d)
	if err == nil {
		err = d.Finish()
	}
	if err != nil {
		t.Fatalf("decode state: %v", err)
	}
	*out = s
}
