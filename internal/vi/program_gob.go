package vi

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"vinfra/internal/geo"
)

// GobCodec is the explicit compatibility adapter for typed states without a
// hand-written wire encoding: it serializes S with encoding/gob. It exists
// for prototyping only — gob ships type descriptors, reflects, and
// allocates on every encode, and it is only deterministic under conventions
// (no maps, fixed field order) that the caller must uphold. Every shipped
// program (internal/apps, examples/) uses Codec with a wire encoding
// instead; nothing on the per-round path of this package touches gob.
type GobCodec[S any] struct {
	// InitState returns the initial typed state.
	InitState func(id VNodeID, loc geo.Point) S
	// Step folds one virtual round into the state.
	Step func(state S, vround int, in RoundInput) S
	// Out computes the broadcast entering a virtual round (may be nil for
	// always-silent nodes).
	Out func(state S, vround int) *Message
}

// Init implements Program.
func (c GobCodec[S]) Init(id VNodeID, loc geo.Point) []byte {
	return encodeGobState(c.InitState(id, loc))
}

// OnRound implements Program.
func (c GobCodec[S]) OnRound(state []byte, vround int, in RoundInput) []byte {
	return encodeGobState(c.Step(decodeGobState[S](state), vround, in))
}

// Outgoing implements Program.
func (c GobCodec[S]) Outgoing(state []byte, vround int) *Message {
	if c.Out == nil {
		return nil
	}
	return c.Out(decodeGobState[S](state), vround)
}

func encodeGobState[S any](s S) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		panic(fmt.Sprintf("vi: gob state encode: %v", err))
	}
	return buf.Bytes()
}

func decodeGobState[S any](raw []byte) S {
	var s S
	if len(raw) == 0 {
		return s
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&s); err != nil {
		panic(fmt.Sprintf("vi: gob state decode: %v", err))
	}
	return s
}
