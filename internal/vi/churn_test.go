package vi_test

import (
	"fmt"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/mobility"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// TestMobileReplicasWithBackoffCM runs a single virtual node emulated by
// devices that jitter around the region under the default regional backoff
// contention manager — no oracle anywhere. The virtual node must make
// progress (green rounds) once the election settles, and replicas must
// stay consistent.
func TestMobileReplicasWithBackoffCM(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	const vmax = 0.02
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   counterProgram(sched),
		VMax:      vmax,
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}, Seed: 5})
	eng := sim.NewEngine(medium, sim.WithSeed(5))

	var emulators []*vi.Emulator
	greens := make(map[sim.NodeID]int)
	for i := 0; i < 4; i++ {
		pos := geo.Point{X: 0.3 * float64(i), Y: 0.1}
		eng.Attach(pos, mobility.Tether{Anchor: locs[0], Radius: 1.0, VMax: vmax}, func(env sim.Env) sim.Node {
			em := dep.NewEmulator(env, true)
			id := env.ID()
			em.SetHooks(vi.EmulatorHooks{
				OnOutput: func(_ vi.VNodeID, out cha.Output) {
					if out.Color == cha.Green {
						greens[id]++
					}
				},
			})
			emulators = append(emulators, em)
			return em
		})
	}

	const vrounds = 60
	eng.Run(vrounds * dep.Timing().RoundsPerVRound())

	totalGreens := 0
	for _, g := range greens {
		totalGreens += g
	}
	if totalGreens == 0 {
		t.Fatal("virtual node never made progress under backoff CM")
	}
	// Consistency across joined replicas.
	var want string
	for i, em := range emulators {
		if !em.Joined() {
			continue
		}
		got := string(em.StateBefore(vrounds + 1))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("replica %d diverged", i)
		}
	}
}

// TestTravelerJoinsRemoteRegion drives a device from one region to another;
// it must leave the first virtual node and join the second via the join
// protocol.
func TestTravelerJoinsRemoteRegion(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}, {X: 60, Y: 0}}
	tb := newTestbed(t, testbedOpts{
		locs:        locs,
		replicasPer: 2,
		leaders:     true,
	})
	// A traveler starts in region 0 and marches toward region 1.
	var traveler *vi.Emulator
	joins := make(map[vi.VNodeID]int)
	tb.eng.Attach(geo.Point{X: 0.5, Y: 0}, &mobility.Waypoints{Tour: []geo.Point{{X: 60, Y: 0}}, VMax: 0.35}, func(env sim.Env) sim.Node {
		traveler = tb.dep.NewEmulator(env, true)
		traveler.SetHooks(vi.EmulatorHooks{
			OnJoin: func(v vi.VNodeID, vr int) { joins[v] = vr },
		})
		return traveler
	})

	// 60 units at 0.35/round needs ~170 rounds = ~14 vrounds (s=1: 13
	// rounds per vround); run enough for arrival plus the join handshake.
	tb.runVRounds(30)

	if traveler.VNode() != 1 {
		t.Fatalf("traveler serves VN %d, want 1 (pos %v)", traveler.VNode(), tb.eng.Position(4))
	}
	if !traveler.Joined() {
		t.Fatal("traveler never joined the destination virtual node")
	}
	if _, ok := joins[1]; !ok {
		t.Error("OnJoin hook did not fire for the destination region")
	}
}

// TestVNodeSurvivesTotalReplicaTurnover replaces the entire replica
// population of a virtual node one device at a time; the virtual node's
// state must survive (reliability through churn — the core promise of
// virtual infrastructure).
func TestVNodeSurvivesTotalReplicaTurnover(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	factory, setLeader := cm.NewFixed(0)
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   counterProgram(sched),
		NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
			return factory(env)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)

	var gen0 []*vi.Emulator
	for i := 0; i < 2; i++ {
		pos := geo.Point{X: 0.4 * float64(i), Y: 0}
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			em := dep.NewEmulator(env, true)
			gen0 = append(gen0, em)
			return em
		})
	}
	// A pinging client feeds state into the VN.
	eng.Attach(geo.Point{X: 1.5, Y: 1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, vi.ClientFunc(
			func(vr int, recv []vi.Message, coll bool) *vi.Message {
				return vi.Text(fmt.Sprintf("ping-%03d", vr))
			}))
	})
	per := dep.Timing().RoundsPerVRound()
	eng.Run(6 * per)

	// Generation 1 joins while generation 0 is still alive.
	var gen1 []*vi.Emulator
	for i := 0; i < 2; i++ {
		pos := geo.Point{X: -0.4 * float64(i+1), Y: 0.2}
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			em := dep.NewEmulator(env, false)
			gen1 = append(gen1, em)
			return em
		})
	}
	eng.Run(4 * per)
	for _, em := range gen1 {
		if !em.Joined() {
			t.Fatal("second generation failed to join")
		}
	}

	// Generation 0 departs; hand leadership to a generation-1 device
	// (engine IDs: 0,1 = gen0; 2 = client; 3,4 = gen1).
	eng.Crash(0)
	eng.Crash(1)
	setLeader(3)
	eng.Run(6 * per)

	// The virtual node kept its pre-turnover state and kept counting new
	// pings after the old replicas died.
	var st counterState
	decodeTestState(t, gen1[0].StateBefore(17), &st)
	if st.Pings < 12 {
		t.Errorf("virtual node lost state or progress through turnover: %+v", st)
	}
	// Both survivors agree.
	if string(gen1[0].StateBefore(17)) != string(gen1[1].StateBefore(17)) {
		t.Error("surviving replicas diverged")
	}
}
