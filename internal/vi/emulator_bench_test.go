package vi_test

import (
	"fmt"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// benchBed wires a cols x rows virtual-node grid with three bootstrapped
// replicas per region, one pinging client per region, fixed leaders, and
// the parallel grid stack off (the benchmark isolates the state plane, not
// the delivery fan-out).
func benchBed(cols, rows int) (*sim.Engine, *vi.Deployment) {
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	sched := vi.BuildSchedule(locs, testRadii)
	leaders := make(map[vi.VNodeID]sim.NodeID, len(locs))
	for v := range locs {
		leaders[vi.VNodeID(v)] = sim.NodeID(v * 3)
	}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   counterProgram(sched),
		NewCM:     fixedLeaderCM(leaders),
	})
	if err != nil {
		panic(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}, Seed: 1})
	eng := sim.NewEngine(medium, sim.WithSeed(1))
	for v, loc := range locs {
		for i := 0; i < 3; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.5, Y: loc.Y + 0.2}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return dep.NewEmulator(env, true)
			})
		}
		v := v
		eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%4 != v%4 {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}
	return eng, dep
}

// TestEmulatorVRoundSteadyStateAllocs gates the virtual round's allocation
// budget: a 9-virtual-node grid (27 replicas + 9 clients) must run one
// full virtual round (21 radio rounds) in at most 600 allocations after
// warm-up. On the gob+string state plane this was ~10,400 allocs per
// virtual round (every replica gob-encoding/decoding its state and
// fmt-splicing proposals); the wire codec brought it to ~370, and the gate
// keeps the win from silently regressing.
func TestEmulatorVRoundSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	eng, dep := benchBed(3, 3)
	per := dep.Timing().RoundsPerVRound()
	eng.Run(3 * per) // warm up: schedules, caches, reusable buffers
	avg := testing.AllocsPerRun(5, func() { eng.Run(per) })
	if avg > 600 {
		t.Errorf("steady-state virtual round allocates %.0f times at 9 vnodes, want <= 600", avg)
	}
}

// BenchmarkEmulatorVRound measures one full virtual round (s+12 radio
// rounds) of the complete emulation stack — message sub-protocol, CHAP
// instance, state materialization and checkpoint folding — at 9 and 25
// virtual nodes. It is the state-plane hot path: per-op allocations are
// dominated by proposal encoding and virtual-node state encode/decode.
func BenchmarkEmulatorVRound(b *testing.B) {
	for _, shape := range []struct{ cols, rows int }{{3, 3}, {5, 5}} {
		b.Run(fmt.Sprintf("vnodes=%d", shape.cols*shape.rows), func(b *testing.B) {
			eng, dep := benchBed(shape.cols, shape.rows)
			per := dep.Timing().RoundsPerVRound()
			eng.Run(3 * per) // warm up: schedules, caches, buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Run(per)
			}
		})
	}
}
