package vi_test

import (
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// TestClientIgnoresProtocolTraffic checks that ballots, vetoes, join
// requests and reset guards — everything the emulation protocol puts on
// the air — never reach a client program's reception.
func TestClientIgnoresProtocolTraffic(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		leaders:     true,
	})
	var all []vi.Message
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			all = append(all, recv...)
			return nil
		}))
	// A joiner mid-run produces join/join-ack traffic too.
	tb.runVRounds(3)
	tb.eng.Attach(geo.Point{X: 0.5, Y: 0.5}, nil, func(env sim.Env) sim.Node {
		return tb.dep.NewEmulator(env, false)
	})
	tb.runVRounds(5)

	for _, m := range all {
		// Only VN broadcasts ("count=...") are expected: there are no
		// other clients to hear.
		if len(m.Payload) < 6 || string(m.Payload[:6]) != "count=" {
			t.Errorf("client program received protocol traffic: %q", m.Payload)
		}
	}
	if len(all) == 0 {
		t.Error("client heard nothing at all")
	}
}

// TestClientDoesNotHearItself verifies loopback filtering: a client's own
// broadcast is not delivered back to its program.
func TestClientDoesNotHearItself(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	var heard []string
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			for _, m := range recv {
				heard = append(heard, string(m.Payload))
			}
			return vi.Text("my-own-ping")
		}))
	tb.runVRounds(6)

	for _, h := range heard {
		if h == "my-own-ping" {
			t.Fatal("client heard its own broadcast")
		}
	}
}

// TestClientsHearEachOther: two clients near the same virtual node in
// different rounds hear each other's broadcasts (the virtual channel is a
// broadcast medium among clients too).
func TestClientsHearEachOther(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	var heardByB []string
	tb.addClient(geo.Point{X: 1, Y: -1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			if vr%2 == 1 {
				return vi.Text("from-a")
			}
			return nil
		}))
	tb.addClient(geo.Point{X: -1, Y: 1}, vi.ClientFunc(
		func(vr int, recv []vi.Message, coll bool) *vi.Message {
			for _, m := range recv {
				if string(m.Payload) == "from-a" {
					heardByB = append(heardByB, string(m.Payload))
				}
			}
			return nil
		}))
	tb.runVRounds(8)
	if len(heardByB) == 0 {
		t.Error("client B never heard client A")
	}
}

// TestClientCollisionIndication: two clients broadcasting in the same
// client phase collide; each observes the collision flag on the virtual
// channel.
func TestClientCollisionIndication(t *testing.T) {
	tb := newTestbed(t, testbedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 2,
		leaders:     true,
	})
	sawCollision := 0
	mk := func(payload string) vi.ClientProgram {
		return vi.ClientFunc(func(vr int, recv []vi.Message, coll bool) *vi.Message {
			if coll {
				sawCollision++
			}
			return vi.Text(payload)
		})
	}
	tb.addClient(geo.Point{X: 1, Y: -1}, mk("a"))
	tb.addClient(geo.Point{X: -1, Y: 1}, mk("b"))
	tb.runVRounds(6)
	if sawCollision == 0 {
		t.Error("simultaneous client broadcasts should surface as collisions")
	}
}
