package vi

import (
	"fmt"
	"slices"

	"vinfra/internal/cha"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// EmulatorSnapshot captures one emulator's complete mutable state: region
// membership, the contention manager's blob, the agreement core and state
// floor when joined, and the per-virtual-round scratch — so a checkpoint
// may be taken at any engine round, not just a virtual-round boundary. The
// deployment, program and hooks are code, rebuilt by the driver.
type EmulatorSnapshot struct {
	VN     VNodeID // None when outside every region
	Joined bool
	// Mgr is the contention manager's sim.Snapshotter blob; empty when
	// outside a region or when the manager carries no state.
	Mgr []byte
	// Core, BrokenChains, Floor and FloorState are meaningful only when
	// Joined (zero values otherwise). BrokenChains rides here because the
	// CoreSnapshot join-ack encoding is frozen and does not carry it.
	Core         cha.CoreSnapshot
	BrokenChains int
	Floor        cha.Instance
	FloorState   []byte
	// Per-virtual-round scratch (see Emulator.startVRound).
	InMsgs          [][]byte
	InCollision     bool
	InVNBroadcast   bool
	Began           bool
	HasExpected     bool // expectedPayload non-nil (nil vs empty is load-bearing)
	Expected        []byte
	BroadcastBallot bool
	SawJoinActivity bool
	Requested       bool
	GotAck          bool
}

// AppendTo appends the canonical encoding of s to dst.
func (s EmulatorSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendVarint(dst, int64(s.VN))
	dst = wire.AppendBool(dst, s.Joined)
	dst = wire.AppendBytes(dst, s.Mgr)
	dst = s.Core.AppendTo(dst)
	dst = wire.AppendUvarint(dst, uint64(s.BrokenChains))
	dst = wire.AppendUvarint(dst, uint64(s.Floor))
	dst = wire.AppendBytes(dst, s.FloorState)
	dst = wire.AppendUvarint(dst, uint64(len(s.InMsgs)))
	for _, m := range s.InMsgs {
		dst = wire.AppendBytes(dst, m)
	}
	dst = wire.AppendBool(dst, s.InCollision)
	dst = wire.AppendBool(dst, s.InVNBroadcast)
	dst = wire.AppendBool(dst, s.Began)
	dst = wire.AppendBool(dst, s.HasExpected)
	dst = wire.AppendBytes(dst, s.Expected)
	dst = wire.AppendBool(dst, s.BroadcastBallot)
	dst = wire.AppendBool(dst, s.SawJoinActivity)
	dst = wire.AppendBool(dst, s.Requested)
	return wire.AppendBool(dst, s.GotAck)
}

// WireSize returns the exact encoded size of s.
func (s EmulatorSnapshot) WireSize() int {
	n := wire.VarintSize(int64(s.VN)) + 1 +
		wire.BytesSize(len(s.Mgr)) +
		s.Core.WireSize() +
		wire.UvarintSize(uint64(s.BrokenChains)) +
		wire.UvarintSize(uint64(s.Floor)) +
		wire.BytesSize(len(s.FloorState)) +
		wire.UvarintSize(uint64(len(s.InMsgs)))
	for _, m := range s.InMsgs {
		n += wire.BytesSize(len(m))
	}
	return n + 1 + 1 + 1 + 1 + wire.BytesSize(len(s.Expected)) + 1 + 1 + 1 + 1
}

// DecodeEmulatorSnapshot decodes one EmulatorSnapshot from d.
func DecodeEmulatorSnapshot(d *wire.Decoder) (EmulatorSnapshot, error) {
	var s EmulatorSnapshot
	s.VN = VNodeID(d.Varint())
	s.Joined = d.Bool()
	s.Mgr = append([]byte(nil), d.Bytes()...)
	core, err := cha.DecodeCoreSnapshot(d)
	if err != nil {
		return EmulatorSnapshot{}, err
	}
	s.Core = core
	s.BrokenChains = int(d.Uvarint())
	s.Floor = cha.Instance(d.Uvarint())
	s.FloorState = append([]byte(nil), d.Bytes()...)
	nm := d.Uvarint()
	if nm > uint64(d.Rem()) {
		return EmulatorSnapshot{}, wire.ErrMalformed
	}
	s.InMsgs = make([][]byte, 0, nm)
	for i := uint64(0); i < nm; i++ {
		s.InMsgs = append(s.InMsgs, append([]byte(nil), d.Bytes()...))
	}
	s.InCollision = d.Bool()
	s.InVNBroadcast = d.Bool()
	s.Began = d.Bool()
	s.HasExpected = d.Bool()
	s.Expected = append([]byte(nil), d.Bytes()...)
	s.BroadcastBallot = d.Bool()
	s.SawJoinActivity = d.Bool()
	s.Requested = d.Bool()
	s.GotAck = d.Bool()
	if err := d.Err(); err != nil {
		return EmulatorSnapshot{}, err
	}
	return s, nil
}

// Snapshot captures the emulator's mutable state; see EmulatorSnapshot.
func (e *Emulator) Snapshot() EmulatorSnapshot {
	s := EmulatorSnapshot{
		VN:              e.vn,
		Joined:          e.joined,
		InCollision:     e.input.Collision,
		InVNBroadcast:   e.input.VNBroadcast,
		Began:           e.began,
		HasExpected:     e.expectedPayload != nil,
		Expected:        append([]byte(nil), e.expectedPayload...),
		BroadcastBallot: e.broadcastBallot,
		SawJoinActivity: e.sawJoinActivity,
		Requested:       e.requested,
		GotAck:          e.gotAck,
	}
	if sn, ok := e.mgr.(sim.Snapshotter); ok {
		s.Mgr = sn.AppendState(nil)
	}
	if e.joined {
		s.Core = e.core.Snapshot()
		s.BrokenChains = e.core.BrokenChains
		s.Floor = e.cache.floor
		s.FloorState = append([]byte(nil), e.cache.floorState...)
	}
	if len(e.input.Msgs) > 0 {
		s.InMsgs = make([][]byte, 0, len(e.input.Msgs))
		for _, m := range e.input.Msgs {
			s.InMsgs = append(s.InMsgs, append([]byte(nil), m...))
		}
	}
	return s
}

// Restore lays snapshot s over the emulator. The region's contention
// manager is rebuilt through the deployment's factory and then handed its
// blob, so a custom NewCM that carries state must implement
// sim.Snapshotter. Restore replaces all mutable state; the emulator then
// behaves exactly as the snapshotted one would.
func (e *Emulator) Restore(s EmulatorSnapshot) error {
	switch {
	case s.VN == None:
		e.leaveRegion()
	case int(s.VN) >= e.d.NumVNodes():
		return fmt.Errorf("vi: restore: snapshot vnode %d out of range (deployment has %d)", s.VN, e.d.NumVNodes())
	default:
		e.enterRegion(s.VN)
		if len(s.Mgr) > 0 {
			sn, ok := e.mgr.(sim.Snapshotter)
			if !ok {
				return fmt.Errorf("vi: restore: snapshot carries contention manager state but %T is not a sim.Snapshotter", e.mgr)
			}
			if err := sn.RestoreState(s.Mgr); err != nil {
				return fmt.Errorf("vi: restore: contention manager: %w", err)
			}
		}
		if s.Joined {
			core := cha.RestoreCore(s.Core)
			core.BrokenChains = s.BrokenChains
			e.becomeReplica(s.Floor, append([]byte(nil), s.FloorState...), core)
		}
	}
	e.input.Msgs = e.input.Msgs[:0]
	for _, m := range s.InMsgs {
		e.input.Msgs = append(e.input.Msgs, append([]byte(nil), m...))
	}
	e.input.Collision = s.InCollision
	e.input.VNBroadcast = s.InVNBroadcast
	e.began = s.Began
	if s.HasExpected {
		e.expectedPayload = append([]byte{}, s.Expected...)
	} else {
		e.expectedPayload = nil
	}
	e.broadcastBallot = s.BroadcastBallot
	e.sawJoinActivity = s.SawJoinActivity
	e.requested = s.Requested
	e.gotAck = s.GotAck
	return nil
}

// AppendState implements sim.Snapshotter by wrapping the wire trio, so the
// engine folds emulators into EngineSnapshot blobs automatically.
func (e *Emulator) AppendState(dst []byte) []byte {
	return e.Snapshot().AppendTo(dst)
}

// RestoreState implements sim.Snapshotter.
func (e *Emulator) RestoreState(data []byte) error {
	d := wire.Dec(data)
	s, err := DecodeEmulatorSnapshot(&d)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	return e.Restore(s)
}

// ClientSnapshot captures one client's mutable state: the pending
// reception accumulated for the next Step, the own-broadcast loopback
// guard, and the client program's sim.Snapshotter blob (empty for
// stateless programs).
type ClientSnapshot struct {
	SentPayload []byte
	SentThis    bool
	Recv        [][]byte
	Collision   bool
	Prog        []byte
}

// AppendTo appends the canonical encoding of s to dst.
func (s ClientSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendBytes(dst, s.SentPayload)
	dst = wire.AppendBool(dst, s.SentThis)
	dst = wire.AppendUvarint(dst, uint64(len(s.Recv)))
	for _, m := range s.Recv {
		dst = wire.AppendBytes(dst, m)
	}
	dst = wire.AppendBool(dst, s.Collision)
	return wire.AppendBytes(dst, s.Prog)
}

// WireSize returns the exact encoded size of s.
func (s ClientSnapshot) WireSize() int {
	n := wire.BytesSize(len(s.SentPayload)) + 1 + wire.UvarintSize(uint64(len(s.Recv)))
	for _, m := range s.Recv {
		n += wire.BytesSize(len(m))
	}
	return n + 1 + wire.BytesSize(len(s.Prog))
}

// DecodeClientSnapshot decodes one ClientSnapshot from d.
func DecodeClientSnapshot(d *wire.Decoder) (ClientSnapshot, error) {
	var s ClientSnapshot
	s.SentPayload = append([]byte(nil), d.Bytes()...)
	s.SentThis = d.Bool()
	nr := d.Uvarint()
	if nr > uint64(d.Rem()) {
		return ClientSnapshot{}, wire.ErrMalformed
	}
	s.Recv = make([][]byte, 0, nr)
	for i := uint64(0); i < nr; i++ {
		s.Recv = append(s.Recv, append([]byte(nil), d.Bytes()...))
	}
	s.Collision = d.Bool()
	s.Prog = append([]byte(nil), d.Bytes()...)
	if err := d.Err(); err != nil {
		return ClientSnapshot{}, err
	}
	return s, nil
}

// Snapshot captures the client's mutable state; see ClientSnapshot.
func (c *Client) Snapshot() ClientSnapshot {
	s := ClientSnapshot{
		SentPayload: append([]byte(nil), c.sentPayload...),
		SentThis:    c.sentThis,
		Collision:   c.collision,
	}
	if len(c.recv) > 0 {
		s.Recv = make([][]byte, 0, len(c.recv))
		for _, m := range c.recv {
			s.Recv = append(s.Recv, append([]byte(nil), m.Payload...))
		}
	}
	if sn, ok := c.prog.(sim.Snapshotter); ok {
		s.Prog = sn.AppendState(nil)
	}
	return s
}

// Restore lays snapshot s over the client. A non-empty program blob
// requires the program to implement sim.Snapshotter.
func (c *Client) Restore(s ClientSnapshot) error {
	if len(s.Prog) > 0 {
		sn, ok := c.prog.(sim.Snapshotter)
		if !ok {
			return fmt.Errorf("vi: restore: snapshot carries client program state but %T is not a sim.Snapshotter", c.prog)
		}
		if err := sn.RestoreState(s.Prog); err != nil {
			return fmt.Errorf("vi: restore: client program: %w", err)
		}
	}
	c.sentPayload = append([]byte(nil), s.SentPayload...)
	c.sentThis = s.SentThis
	c.recv = nil
	for _, m := range s.Recv {
		c.recv = append(c.recv, Message{Payload: append([]byte(nil), m...)})
	}
	c.collision = s.Collision
	return nil
}

// AppendState implements sim.Snapshotter.
func (c *Client) AppendState(dst []byte) []byte {
	return c.Snapshot().AppendTo(dst)
}

// RestoreState implements sim.Snapshotter.
func (c *Client) RestoreState(data []byte) error {
	d := wire.Dec(data)
	s, err := DecodeClientSnapshot(&d)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	return c.Restore(s)
}

// MonitorSnapshot captures the monitor's availability accounting in
// canonical form: virtual nodes sorted ascending, each with its top
// observed instance and its sorted green-instance set.
type MonitorSnapshot struct {
	VNodes []VNodeID
	Tops   []cha.Instance
	Greens [][]cha.Instance
}

// AppendTo appends the canonical encoding of s to dst.
func (s MonitorSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s.VNodes)))
	for i, v := range s.VNodes {
		dst = wire.AppendVarint(dst, int64(v))
		dst = wire.AppendUvarint(dst, uint64(s.Tops[i]))
		g := s.Greens[i]
		dst = wire.AppendUvarint(dst, uint64(len(g)))
		for _, k := range g {
			dst = wire.AppendUvarint(dst, uint64(k))
		}
	}
	return dst
}

// WireSize returns the exact encoded size of s.
func (s MonitorSnapshot) WireSize() int {
	n := wire.UvarintSize(uint64(len(s.VNodes)))
	for i, v := range s.VNodes {
		n += wire.VarintSize(int64(v)) + wire.UvarintSize(uint64(s.Tops[i]))
		g := s.Greens[i]
		n += wire.UvarintSize(uint64(len(g)))
		for _, k := range g {
			n += wire.UvarintSize(uint64(k))
		}
	}
	return n
}

// DecodeMonitorSnapshot decodes a MonitorSnapshot from b, which must
// contain exactly one encoding.
func DecodeMonitorSnapshot(b []byte) (MonitorSnapshot, error) {
	d := wire.Dec(b)
	var s MonitorSnapshot
	nv := d.Uvarint()
	if nv > uint64(d.Rem()) {
		return MonitorSnapshot{}, wire.ErrMalformed
	}
	s.VNodes = make([]VNodeID, 0, nv)
	s.Tops = make([]cha.Instance, 0, nv)
	s.Greens = make([][]cha.Instance, 0, nv)
	for i := uint64(0); i < nv; i++ {
		s.VNodes = append(s.VNodes, VNodeID(d.Varint()))
		s.Tops = append(s.Tops, cha.Instance(d.Uvarint()))
		ng := d.Uvarint()
		if ng > uint64(d.Rem()) {
			return MonitorSnapshot{}, wire.ErrMalformed
		}
		g := make([]cha.Instance, 0, ng)
		for j := uint64(0); j < ng; j++ {
			g = append(g, cha.Instance(d.Uvarint()))
		}
		s.Greens = append(s.Greens, g)
	}
	if err := d.Finish(); err != nil {
		return MonitorSnapshot{}, err
	}
	return s, nil
}

// Snapshot captures the monitor's accounting. Map walks are sorted, so two
// snapshots of the same accounting are byte-identical.
func (m *Monitor) Snapshot() MonitorSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[VNodeID]bool, len(m.greens)+len(m.top))
	for v := range m.greens {
		seen[v] = true
	}
	for v := range m.top {
		seen[v] = true
	}
	var s MonitorSnapshot
	s.VNodes = make([]VNodeID, 0, len(seen))
	for v := range seen {
		s.VNodes = append(s.VNodes, v)
	}
	slices.Sort(s.VNodes)
	s.Tops = make([]cha.Instance, len(s.VNodes))
	s.Greens = make([][]cha.Instance, len(s.VNodes))
	for i, v := range s.VNodes {
		s.Tops[i] = m.top[v]
		g := make([]cha.Instance, 0, len(m.greens[v]))
		for k := range m.greens[v] {
			g = append(g, k)
		}
		slices.Sort(g)
		s.Greens[i] = g
	}
	return s
}

// Restore replaces the monitor's accounting in place — in place because
// experiment beds wire m.Observe (a method value) into emulator hooks, so
// the monitor pointer itself cannot be swapped on restore.
func (m *Monitor) Restore(s MonitorSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.greens = make(map[VNodeID]map[cha.Instance]bool, len(s.VNodes))
	m.top = make(map[VNodeID]cha.Instance, len(s.VNodes))
	for i, v := range s.VNodes {
		if s.Tops[i] != 0 {
			m.top[v] = s.Tops[i]
		}
		if len(s.Greens[i]) > 0 {
			g := make(map[cha.Instance]bool, len(s.Greens[i]))
			for _, k := range s.Greens[i] {
				g[k] = true
			}
			m.greens[v] = g
		}
	}
}
