package vi

import (
	"fmt"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Schedule assigns every virtual node to exactly one broadcast slot such
// that no two virtual nodes within distance R1 + 2*R2 share a slot
// (Section 4.1: a complete, non-conflicting schedule). Because virtual
// nodes are static, the schedule is computed centrally in advance by greedy
// graph coloring of the conflict graph; its length depends only on the
// deployment density.
type Schedule struct {
	slots  [][]VNodeID
	slotOf []int
}

// ConflictThreshold returns the minimum distance at which two virtual nodes
// may share a broadcast slot (Section 4.1).
func ConflictThreshold(r geo.Radii) float64 { return r.R1 + 2*r.R2 }

// BuildSchedule colors the conflict graph of the given virtual-node
// locations greedily (in index order) and returns the schedule. One
// []bool slot-mark buffer is reused across nodes (marks are cleared by
// walking the neighbor list again, so each node costs O(degree), not
// O(max slot)); the produced coloring is identical to the textbook
// smallest-free-slot greedy pass.
func BuildSchedule(locs []geo.Point, radii geo.Radii) Schedule {
	adj := geo.NeighborGraph(locs, ConflictThreshold(radii))
	slotOf := make([]int, len(locs))
	for i := range slotOf {
		slotOf[i] = -1
	}
	// A node with degree d has at most d occupied neighbor slots, so slot
	// indexes never exceed the maximum degree; +1 covers the probe past
	// the last occupied slot.
	maxDeg := 0
	for _, ns := range adj {
		if len(ns) > maxDeg {
			maxDeg = len(ns)
		}
	}
	used := make([]bool, maxDeg+1)
	maxSlot := -1
	for v := range locs {
		for _, u := range adj[v] {
			if s := slotOf[u]; s >= 0 {
				used[s] = true
			}
		}
		slot := 0
		for used[slot] {
			slot++
		}
		for _, u := range adj[v] {
			if s := slotOf[u]; s >= 0 {
				used[s] = false
			}
		}
		slotOf[v] = slot
		if slot > maxSlot {
			maxSlot = slot
		}
	}
	slots := make([][]VNodeID, maxSlot+1)
	for v, s := range slotOf {
		slots[s] = append(slots[s], VNodeID(v))
	}
	return Schedule{slots: slots, slotOf: slotOf}
}

// Len returns the schedule length s (the number of slots). An empty
// deployment has length 0.
func (s Schedule) Len() int { return len(s.slots) }

// SlotOf returns the slot in which virtual node v is scheduled.
func (s Schedule) SlotOf(v VNodeID) int { return s.slotOf[v] }

// In returns the virtual nodes scheduled in the given slot.
func (s Schedule) In(slot int) []VNodeID { return s.slots[slot] }

// ScheduledIn reports whether v is scheduled in virtual round r (the
// schedule cycles with period Len).
func (s Schedule) ScheduledIn(v VNodeID, vround int) bool {
	if s.Len() == 0 {
		return false
	}
	return s.slotOf[v] == vround%s.Len()
}

// Validate checks completeness and non-conflict against the locations.
func (s Schedule) Validate(locs []geo.Point, radii geo.Radii) error {
	if len(s.slotOf) != len(locs) {
		return fmt.Errorf("vi: schedule covers %d nodes, deployment has %d", len(s.slotOf), len(locs))
	}
	threshold := ConflictThreshold(radii)
	for slot, vs := range s.slots {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				a, b := locs[vs[i]], locs[vs[j]]
				if d := a.Dist(b); d <= threshold {
					return fmt.Errorf("vi: conflicting virtual nodes %d and %d in slot %d (distance %.2f <= %.2f)",
						vs[i], vs[j], slot, d, threshold)
				}
			}
		}
	}
	seen := make(map[VNodeID]int)
	for _, vs := range s.slots {
		for _, v := range vs {
			seen[v]++
		}
	}
	for v := 0; v < len(locs); v++ {
		if seen[VNodeID(v)] != 1 {
			return fmt.Errorf("vi: virtual node %d scheduled %d times, want exactly once", v, seen[VNodeID(v)])
		}
	}
	return nil
}

// Phase identifies one of the eleven phases of a virtual round
// (Section 4.3). The unscheduled ballot phase occupies s+2 consecutive
// radio rounds; every other phase occupies one.
type Phase int

// The eleven phases of a virtual round, in order.
const (
	PhaseClient Phase = iota
	PhaseVN
	PhaseSchedBallot
	PhaseSchedVeto1
	PhaseSchedVeto2
	PhaseUnschedBallot
	PhaseUnschedVeto1
	PhaseUnschedVeto2
	PhaseJoin
	PhaseJoinAck
	PhaseReset
	numPhases
)

// NumPhases is the number of distinct phases per virtual round (eleven).
const NumPhases = int(numPhases)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseClient:
		return "client"
	case PhaseVN:
		return "vn"
	case PhaseSchedBallot:
		return "sched-ballot"
	case PhaseSchedVeto1:
		return "sched-veto-1"
	case PhaseSchedVeto2:
		return "sched-veto-2"
	case PhaseUnschedBallot:
		return "unsched-ballot"
	case PhaseUnschedVeto1:
		return "unsched-veto-1"
	case PhaseUnschedVeto2:
		return "unsched-veto-2"
	case PhaseJoin:
		return "join"
	case PhaseJoinAck:
		return "join-ack"
	case PhaseReset:
		return "reset"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Timing maps radio rounds to (virtual round, phase, ballot sub-slot)
// positions for a deployment with schedule length S.
type Timing struct {
	// S is the schedule length; the unscheduled ballot phase spans S+2
	// radio rounds (Section 4.3).
	S int
}

// UnschedBallotRounds returns the width of the unscheduled ballot phase.
func (t Timing) UnschedBallotRounds() int { return t.S + 2 }

// RoundsPerVRound returns the constant number of radio rounds per virtual
// round: ten single-round phases plus the stretched ballot phase — s+12.
func (t Timing) RoundsPerVRound() int { return 10 + t.UnschedBallotRounds() }

// LeaderHorizon returns the number of rounds a temporary leader must stay
// in a virtual node's region: 2(s+10) per Section 4.2.
func (t Timing) LeaderHorizon() int { return 2 * (t.S + 10) }

// Decompose maps a radio round to its virtual round, phase, and — within
// the unscheduled ballot phase — the sub-slot index (otherwise -1).
func (t Timing) Decompose(r sim.Round) (vround int, phase Phase, subslot int) {
	per := t.RoundsPerVRound()
	vround = int(r) / per
	off := int(r) % per
	switch {
	case off < 5:
		return vround, Phase(off), -1
	case off < 5+t.UnschedBallotRounds():
		return vround, PhaseUnschedBallot, off - 5
	default:
		return vround, Phase(int(PhaseUnschedVeto1) + off - 5 - t.UnschedBallotRounds()), -1
	}
}
