package vi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Property: BuildSchedule is complete and non-conflicting for arbitrary
// point sets.
func TestBuildSchedulePropertyRandomPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		locs := make([]geo.Point, n)
		for i := range locs {
			locs[i] = geo.Point{X: r.Float64() * 120, Y: r.Float64() * 120}
		}
		s := BuildSchedule(locs, testRadii)
		return s.Validate(locs, testRadii) == nil
	}
	cfg := &quick.Config{Rand: rng, MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: every virtual node is scheduled exactly once per schedule
// period, whatever the deployment.
func TestSchedulePeriodicityProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		locs := make([]geo.Point, n)
		for i := range locs {
			locs[i] = geo.Point{X: r.Float64() * 100, Y: r.Float64() * 100}
		}
		s := BuildSchedule(locs, testRadii)
		for v := 0; v < n; v++ {
			count := 0
			for vr := 0; vr < s.Len(); vr++ {
				if s.ScheduledIn(VNodeID(v), vr) {
					count++
				}
			}
			if count != 1 {
				return false
			}
			// Periodicity.
			if !s.ScheduledIn(VNodeID(v), s.SlotOf(VNodeID(v))+3*s.Len()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: timing decomposition is a bijection — every radio round maps
// to exactly one (vround, phase, subslot), and reconstructing the round
// index from the decomposition round-trips.
func TestTimingDecomposeBijection(t *testing.T) {
	for _, s := range []int{1, 3, 7} {
		tm := Timing{S: s}
		per := tm.RoundsPerVRound()
		seen := make(map[[3]int]bool)
		for r := 0; r < 3*per; r++ {
			vr, ph, ss := tm.Decompose(sim.Round(r))
			key := [3]int{vr, int(ph), ss}
			if ph == PhaseUnschedBallot {
				key = [3]int{vr, int(ph), ss}
			} else if ss != -1 {
				t.Fatalf("s=%d r=%d: non-ballot phase with subslot %d", s, r, ss)
			}
			if seen[key] && ph != PhaseUnschedBallot {
				t.Fatalf("s=%d: duplicate decomposition %v", s, key)
			}
			seen[key] = true
			if vr != r/per {
				t.Fatalf("s=%d r=%d: vround %d, want %d", s, r, vr, r/per)
			}
		}
	}
}

// buildScheduleReference is the original map-based greedy coloring: for
// each node in index order, collect the neighbor slots in a map and take
// the smallest free slot. BuildSchedule replaced the per-node map with a
// reusable []bool mark buffer; this reference pins that the produced
// coloring is bit-identical.
func buildScheduleReference(locs []geo.Point, radii geo.Radii) []int {
	adj := geo.NeighborGraph(locs, ConflictThreshold(radii))
	slotOf := make([]int, len(locs))
	for i := range slotOf {
		slotOf[i] = -1
	}
	for v := range locs {
		used := make(map[int]bool, len(adj[v]))
		for _, u := range adj[v] {
			if slotOf[u] >= 0 {
				used[slotOf[u]] = true
			}
		}
		slot := 0
		for used[slot] {
			slot++
		}
		slotOf[v] = slot
	}
	return slotOf
}

// Property: the slot-mark-buffer coloring equals the map-based greedy
// coloring on arbitrary deployments — the buffer reuse is a pure
// optimization, not a schedule change.
func TestBuildScheduleMatchesMapReference(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		locs := make([]geo.Point, n)
		for i := range locs {
			// Dense enough that conflict degrees get large.
			locs[i] = geo.Point{X: r.Float64() * 60, Y: r.Float64() * 60}
		}
		s := BuildSchedule(locs, testRadii)
		want := buildScheduleReference(locs, testRadii)
		for v := range locs {
			if s.SlotOf(VNodeID(v)) != want[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
