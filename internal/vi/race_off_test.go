//go:build !race

package vi_test

// raceEnabled reports that this build runs under the race detector, whose
// instrumentation changes allocation counts; the allocation gates skip.
const raceEnabled = false
