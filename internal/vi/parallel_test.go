package vi_test

import (
	"fmt"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// TestFullStackParallelDeterminism runs the complete emulation (grid of
// virtual nodes, clients, backoff contention managers) under every
// combination of medium delivery mode (brute-force scan vs grid spatial
// index, sequential vs sharded) and engine fan-out (sequential vs worker
// pool), and requires bit-identical replica states across all of them.
// This is the repository's determinism contract end to end.
func TestFullStackParallelDeterminism(t *testing.T) {
	run := func(parallel bool, mode radio.DeliveryMode, mediumParallel bool) []string {
		locs := geo.Grid{Spacing: 6, Cols: 2, Rows: 1}.Locations()
		sched := vi.BuildSchedule(locs, testRadii)
		dep, err := vi.NewDeployment(vi.DeploymentConfig{
			Locations: locs,
			Radii:     testRadii,
			Program:   counterProgram(sched),
			NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
				return cm.NewBackoff(cm.BackoffConfig{})(env)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		medium := radio.MustMedium(radio.Config{
			Radii:    testRadii,
			Detector: cd.AC{},
			Seed:     17,
			Mode:     mode,
			Parallel: mediumParallel,
		})
		opts := []sim.Option{sim.WithSeed(17)}
		if parallel {
			opts = append(opts, sim.WithParallel())
		}
		eng := sim.NewEngine(medium, opts...)

		var emulators []*vi.Emulator
		for _, loc := range locs {
			for i := 0; i < 3; i++ {
				pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.3, Y: loc.Y + 0.2}
				eng.Attach(pos, nil, func(env sim.Env) sim.Node {
					em := dep.NewEmulator(env, true)
					emulators = append(emulators, em)
					return em
				})
			}
		}
		eng.Attach(geo.Point{X: 1, Y: -1.2}, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					return vi.Text(fmt.Sprintf("ping-%03d", vr))
				}))
		})

		const vrounds = 25
		eng.Run(vrounds * dep.Timing().RoundsPerVRound())

		states := make([]string, len(emulators))
		for i, em := range emulators {
			if em.Joined() {
				states[i] = string(em.StateBefore(vrounds + 1))
			}
		}
		return states
	}

	want := run(false, radio.ModeScan, false)
	variants := []struct {
		name           string
		engineParallel bool
		mode           radio.DeliveryMode
		mediumParallel bool
	}{
		{"engine parallel", true, radio.ModeScan, false},
		{"grid medium", false, radio.ModeGrid, false},
		{"grid medium sharded", false, radio.ModeGrid, true},
		{"everything parallel", true, radio.ModeGrid, true},
	}
	for _, v := range variants {
		got := run(v.engineParallel, v.mode, v.mediumParallel)
		if len(got) != len(want) {
			t.Fatalf("%s: emulator counts differ", v.name)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: emulator %d diverged from sequential scan run", v.name, i)
			}
		}
	}
}
