// Package apps implements application services on top of the virtual
// infrastructure — the workloads the paper's introduction motivates:
// reconfigurable atomic memory [13], location tracking [36], and
// coordination services (mutual exclusion, robot waypoints) [4, 27].
//
// Each service is a deterministic virtual node program (vi.Program) plus
// client-side helpers. Because a virtual node is a single replicated state
// machine with an agreed input history, operations that reach it are
// trivially linearized in history order; the emulation layer supplies the
// fault tolerance.
//
// States and payloads are canonical wire encodings (internal/wire): equal
// states encode to equal bytes by construction, which is the determinism
// property replica state comparison depends on — the old gob-based codec
// only guaranteed it under conventions (no maps, fixed field order).
package apps

import (
	"vinfra/internal/geo"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// RegisterState is the state of the atomic register virtual node: the
// current value and a version counter incremented by every applied write.
type RegisterState struct {
	Value   string
	Version int
}

func encodeRegisterState(dst []byte, s RegisterState) []byte {
	dst = wire.AppendString(dst, s.Value)
	return wire.AppendUvarint(dst, uint64(s.Version))
}

func decodeRegisterState(d *wire.Decoder) (RegisterState, error) {
	var s RegisterState
	s.Value = d.String()
	s.Version = int(d.Uvarint())
	return s, d.Err()
}

// RegisterWrite builds the client message writing value to the register.
func RegisterWrite(value string) *vi.Message {
	p := append([]byte{tagRegisterWrite}, value...)
	return &vi.Message{Payload: p}
}

// ParseRegisterReply parses a register broadcast into its version and
// value.
func ParseRegisterReply(payload []byte) (version int, value string, ok bool) {
	d, ok := payloadBody(payload, tagRegisterReply)
	if !ok {
		return 0, "", false
	}
	version = int(d.Uvarint())
	value = d.String()
	if d.Finish() != nil {
		return 0, "", false
	}
	return version, value, true
}

// RegisterProgram returns the atomic-register virtual node program. The
// register applies writes in the agreed history order (ties within a round
// broken by payload order, which the agreement makes identical at every
// replica) and broadcasts its current version and value whenever it is
// scheduled.
func RegisterProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[RegisterState]{
			InitState: func(vi.VNodeID, geo.Point) RegisterState {
				return RegisterState{}
			},
			Step: func(s RegisterState, vround int, in vi.RoundInput) RegisterState {
				for _, m := range in.Msgs {
					if len(m) > 0 && m[0] == tagRegisterWrite {
						s.Value = string(m[1:])
						s.Version++
					}
				}
				return s
			},
			Out: func(s RegisterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				p := []byte{tagRegisterReply}
				p = wire.AppendUvarint(p, uint64(s.Version))
				p = wire.AppendString(p, s.Value)
				return &vi.Message{Payload: p}
			},
			EncodeState: encodeRegisterState,
			DecodeState: decodeRegisterState,
		}
	}
}

// RegisterReader is a client program that records every register broadcast
// it hears. Reads are "listen for the next reply": the register broadcasts
// its state every time it is scheduled.
type RegisterReader struct {
	// Observed holds (version, value) pairs in reception order.
	Observed []RegisterObservation
}

// RegisterObservation is one register broadcast seen by a reader.
type RegisterObservation struct {
	VRound  int
	Version int
	Value   string
}

// Step implements vi.ClientProgram.
func (r *RegisterReader) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	for _, m := range recv {
		if ver, val, ok := ParseRegisterReply(m.Payload); ok {
			r.Observed = append(r.Observed, RegisterObservation{VRound: vround, Version: ver, Value: val})
		}
	}
	return nil
}

// RegisterWriter is a client program that issues one write per entry of
// Writes, at the virtual rounds given by their keys, and collects replies
// like a reader.
type RegisterWriter struct {
	// Writes maps virtual round -> value to write in that round.
	Writes map[int]string
	RegisterReader
}

// Step implements vi.ClientProgram.
func (w *RegisterWriter) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	w.RegisterReader.Step(vround, recv, collision)
	if v, ok := w.Writes[vround]; ok {
		return RegisterWrite(v)
	}
	return nil
}
