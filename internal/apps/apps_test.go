package apps_test

import (
	"testing"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

// harness wires a deployment with fixed-leader contention managers and
// static bootstrapped replicas.
type harness struct {
	eng       *sim.Engine
	dep       *vi.Deployment
	emulators []*vi.Emulator
}

func newHarness(t *testing.T, locs []geo.Point, replicasPer int, program func(vi.VNodeID) vi.Program) *harness {
	t.Helper()
	leaders := make(map[vi.VNodeID]sim.NodeID, len(locs))
	for v := range locs {
		leaders[vi.VNodeID(v)] = sim.NodeID(v * replicasPer)
	}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   program,
		NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
			factory, _ := cm.NewFixed(leaders[v])
			return factory(env)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	h := &harness{eng: sim.NewEngine(medium), dep: dep}
	for _, loc := range locs {
		for i := 0; i < replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.4, Y: loc.Y + 0.2}
			h.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				em := dep.NewEmulator(env, true)
				h.emulators = append(h.emulators, em)
				return em
			})
		}
	}
	return h
}

func (h *harness) addClient(pos geo.Point, prog vi.ClientProgram) {
	h.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
		return h.dep.NewClient(env, prog)
	})
}

func (h *harness) runVRounds(n int) {
	h.eng.Run(n * h.dep.Timing().RoundsPerVRound())
}

// pl builds a RoundInput delivering the given messages' payloads.
func pl(ms ...*vi.Message) vi.RoundInput {
	var in vi.RoundInput
	for _, m := range ms {
		in.Msgs = append(in.Msgs, m.Payload)
	}
	return in
}

func TestRegisterWriteThenRead(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.RegisterProgram(sched))

	writer := &apps.RegisterWriter{Writes: map[int]string{2: "hello", 6: "world"}}
	reader := &apps.RegisterReader{}
	h.addClient(geo.Point{X: 1, Y: -1}, writer)
	h.addClient(geo.Point{X: -1, Y: -1}, reader)
	h.runVRounds(12)

	if len(reader.Observed) == 0 {
		t.Fatal("reader never observed the register")
	}
	last := reader.Observed[len(reader.Observed)-1]
	if last.Value != "world" || last.Version != 2 {
		t.Errorf("final observation = %+v, want version 2 value world", last)
	}
	// Versions are monotone (atomicity: a reader never sees time go
	// backwards on a single register).
	for i := 1; i < len(reader.Observed); i++ {
		if reader.Observed[i].Version < reader.Observed[i-1].Version {
			t.Errorf("version regressed: %+v -> %+v", reader.Observed[i-1], reader.Observed[i])
		}
	}
	// The writer observes its own writes applied.
	sawHello := false
	for _, o := range writer.Observed {
		if o.Value == "hello" {
			sawHello = true
		}
	}
	if !sawHello {
		t.Error("writer never saw its first write applied")
	}
}

func TestRegisterConcurrentWritersConverge(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.RegisterProgram(sched))

	// Two writers write in the same virtual round: both writes are in the
	// agreed round input; replicas apply them in canonical order, so every
	// reader converges to the same final value.
	w1 := &apps.RegisterWriter{Writes: map[int]string{3: "alpha"}}
	w2 := &apps.RegisterWriter{Writes: map[int]string{3: "beta"}}
	r1 := &apps.RegisterReader{}
	r2 := &apps.RegisterReader{}
	h.addClient(geo.Point{X: 1, Y: -1.2}, w1)
	h.addClient(geo.Point{X: -1, Y: 1.2}, w2)
	h.addClient(geo.Point{X: 1.4, Y: 1}, r1)
	h.addClient(geo.Point{X: -1.4, Y: -1}, r2)
	h.runVRounds(10)

	if len(r1.Observed) == 0 || len(r2.Observed) == 0 {
		t.Fatal("readers observed nothing")
	}
	f1 := r1.Observed[len(r1.Observed)-1]
	f2 := r2.Observed[len(r2.Observed)-1]
	if f1 != f2 {
		t.Errorf("readers diverged: %+v vs %+v", f1, f2)
	}
	// Note: both clients broadcast in the same client phase -> the virtual
	// channel may deliver both (spatial capture) or neither (collision).
	// Either way the outcome is identical at every reader.
}

func TestParseRegisterReply(t *testing.T) {
	sched := vi.BuildSchedule([]geo.Point{{}}, testRadii)
	prog := apps.RegisterProgram(sched)(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, pl(apps.RegisterWrite("abc")))
	out := prog.Outgoing(st, 2)
	if out == nil {
		t.Fatal("scheduled register must broadcast")
	}
	v, val, ok := apps.ParseRegisterReply(out.Payload)
	if !ok || v != 1 || val != "abc" {
		t.Errorf("ParseRegisterReply = (%d, %q, %v), want (1, \"abc\", true)", v, val, ok)
	}
	if _, _, ok := apps.ParseRegisterReply(apps.RegisterWrite("x").Payload); ok {
		t.Error("write payload accepted as reply")
	}
	if _, _, ok := apps.ParseRegisterReply(out.Payload[:len(out.Payload)-1]); ok {
		t.Error("truncated reply accepted")
	}
	if _, _, ok := apps.ParseRegisterReply(nil); ok {
		t.Error("empty payload accepted")
	}
	if _, _, ok := apps.ParseRegisterReply(append(out.Payload[:len(out.Payload):len(out.Payload)], 0)); ok {
		t.Error("reply with trailing bytes accepted")
	}
}

func TestTrackerLocalSighting(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.TrackerProgram(sched, apps.TrackerConfig{}))

	targetPos := geo.Point{X: 1.5, Y: 0.5}
	h.addClient(targetPos, &apps.TargetClient{
		Name:   "rover",
		Period: 2,
		Pos:    func() geo.Point { return targetPos },
	})
	observer := &apps.ObserverClient{}
	h.addClient(geo.Point{X: -1.5, Y: -0.5}, observer)
	h.runVRounds(10)

	sg, ok := observer.Lookup("rover")
	if !ok {
		t.Fatal("observer never learned about the rover")
	}
	if sg.X != 1.5 || sg.Y != 0.5 {
		t.Errorf("sighting = %+v, want (1.5, 0.5)", sg)
	}
}

func TestTrackerGossipAcrossVNodes(t *testing.T) {
	// The target beacons near VN0; an observer sits near VN1 out of the
	// target's radio range. The sighting must travel VN0 -> VN1 via the
	// virtual nodes' digest broadcasts.
	locs := []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 2, apps.TrackerProgram(sched, apps.TrackerConfig{}))

	targetPos := geo.Point{X: -1.5, Y: 0}
	h.addClient(targetPos, &apps.TargetClient{
		Name:   "rover",
		Period: 2,
		Pos:    func() geo.Point { return targetPos },
	})
	observer := &apps.ObserverClient{}
	h.addClient(geo.Point{X: 6.5, Y: 0}, observer)
	h.runVRounds(16)

	if _, ok := observer.Lookup("rover"); !ok {
		t.Fatal("sighting never gossiped across virtual nodes")
	}
}

func TestTrackerDigestRoundTrip(t *testing.T) {
	sched := vi.BuildSchedule([]geo.Point{{}}, testRadii)
	prog := apps.TrackerProgram(sched, apps.TrackerConfig{})(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 3, pl(apps.Beacon("a", geo.Point{X: 1, Y: 2})))
	st = prog.OnRound(st, 7, pl(apps.Beacon("b", geo.Point{X: 4.5, Y: -1.25})))
	out := prog.Outgoing(st, 8)
	if out == nil {
		t.Fatal("tracker with sightings must broadcast when scheduled")
	}
	sgs, ok := apps.ParseDigest(out.Payload)
	if !ok || len(sgs) != 2 {
		t.Fatalf("ParseDigest failed: %v %v", sgs, ok)
	}
	byName := map[string]apps.Sighting{}
	for _, sg := range sgs {
		byName[sg.Name] = sg
	}
	if a := byName["a"]; a.X != 1 || a.Y != 2 || a.VRound != 3 {
		t.Errorf("sighting a = %+v", a)
	}
	if b := byName["b"]; b.X != 4.5 || b.Y != -1.25 || b.VRound != 7 {
		t.Errorf("sighting b = %+v", b)
	}
	if _, ok := apps.ParseDigest(out.Payload[:len(out.Payload)-1]); ok {
		t.Error("truncated digest should fail")
	}
	if _, ok := apps.ParseDigest(apps.Beacon("a", geo.Point{}).Payload); ok {
		t.Error("wrong tag should fail")
	}
	if _, ok := apps.ParseDigest(nil); ok {
		t.Error("empty payload should fail")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.LockProgram(sched))

	clients := []*apps.LockClient{
		{Name: "a", HoldRounds: 2, Cycles: 2},
		{Name: "b", HoldRounds: 2, Cycles: 2},
		{Name: "c", HoldRounds: 2, Cycles: 2},
	}
	positions := []geo.Point{{X: 1.3, Y: 0.8}, {X: -1.3, Y: 0.9}, {X: 0.1, Y: -1.6}}
	for i, c := range clients {
		h.addClient(positions[i], c)
	}
	h.runVRounds(60)

	total := 0
	for _, c := range clients {
		total += c.Completed()
	}
	if total < 4 {
		t.Errorf("only %d lock cycles completed in 60 rounds", total)
	}

	// Mutual exclusion: no virtual round is claimed by two clients.
	claimed := make(map[int]string)
	for _, c := range clients {
		for _, r := range c.CriticalRounds {
			if other, ok := claimed[r]; ok && other != c.Name {
				t.Fatalf("virtual round %d claimed by both %s and %s", r, other, c.Name)
			}
			claimed[r] = c.Name
		}
	}
}

func TestLockStateMachine(t *testing.T) {
	// Exercise the program end to end through its Program surface.
	prog := apps.LockProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii))(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, pl(apps.LockRequest("x"), apps.LockRequest("y")))
	out := prog.Outgoing(st, 1)
	if out == nil {
		t.Fatal("scheduled lock VN must broadcast")
	}
	holder, ok := apps.ParseGrant(out.Payload)
	if !ok || holder != "x" {
		t.Fatalf("holder = %q, want x", holder)
	}
	st = prog.OnRound(st, 2, pl(apps.LockRelease("x")))
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 2).Payload)
	if holder != "y" {
		t.Errorf("after release, holder = %q, want y", holder)
	}
	st = prog.OnRound(st, 3, pl(apps.LockRelease("y")))
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 3).Payload)
	if holder != "" {
		t.Errorf("after all releases, holder = %q, want free", holder)
	}
}

func TestLockDuplicateAndCancel(t *testing.T) {
	prog := apps.LockProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii))(0)
	st := prog.Init(0, geo.Point{})
	// Duplicate requests do not double-queue.
	st = prog.OnRound(st, 1, pl(apps.LockRequest("x"), apps.LockRequest("x"), apps.LockRequest("y"), apps.LockRequest("y")))
	st = prog.OnRound(st, 2, pl(apps.LockRelease("x")))
	holder, _ := apps.ParseGrant(prog.Outgoing(st, 2).Payload)
	if holder != "y" {
		t.Fatalf("holder = %q, want y", holder)
	}
	st = prog.OnRound(st, 3, pl(apps.LockRelease("y")))
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 3).Payload)
	if holder != "" {
		t.Errorf("holder = %q, want free (no ghost queue entries)", holder)
	}
	// Cancelling a queued request removes it.
	st = prog.OnRound(st, 4, pl(apps.LockRequest("a"), apps.LockRequest("b")))
	st = prog.OnRound(st, 5, pl(apps.LockRelease("b"))) // b cancels while queued
	st = prog.OnRound(st, 6, pl(apps.LockRelease("a")))
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 6).Payload)
	if holder != "" {
		t.Errorf("holder = %q after cancel+release, want free", holder)
	}
}

func TestTrackerCollisionRoundsDoNotCorruptState(t *testing.T) {
	// ⊥ rounds (agreement failures) reach the program as collision inputs;
	// the tracker must simply retain its state.
	prog := apps.TrackerProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii), apps.TrackerConfig{})(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, pl(apps.Beacon("r", geo.Point{X: 1, Y: 2})))
	st2 := prog.OnRound(st, 2, vi.RoundInput{Collision: true})
	out := prog.Outgoing(st2, 3)
	if out == nil {
		t.Fatal("tracker with state should broadcast when scheduled")
	}
	sgs, ok := apps.ParseDigest(out.Payload)
	if !ok || len(sgs) != 1 || sgs[0].Name != "r" {
		t.Errorf("digest after collision round = %v", sgs)
	}
}
