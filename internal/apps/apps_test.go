package apps_test

import (
	"fmt"
	"testing"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

// harness wires a deployment with fixed-leader contention managers and
// static bootstrapped replicas.
type harness struct {
	eng       *sim.Engine
	dep       *vi.Deployment
	emulators []*vi.Emulator
}

func newHarness(t *testing.T, locs []geo.Point, replicasPer int, program func(vi.VNodeID) vi.Program) *harness {
	t.Helper()
	leaders := make(map[vi.VNodeID]sim.NodeID, len(locs))
	for v := range locs {
		leaders[vi.VNodeID(v)] = sim.NodeID(v * replicasPer)
	}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     testRadii,
		Program:   program,
		NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
			factory, _ := cm.NewFixed(leaders[v])
			return factory(env)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: testRadii, Detector: cd.AC{}})
	h := &harness{eng: sim.NewEngine(medium), dep: dep}
	for _, loc := range locs {
		for i := 0; i < replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.4, Y: loc.Y + 0.2}
			h.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				em := dep.NewEmulator(env, true)
				h.emulators = append(h.emulators, em)
				return em
			})
		}
	}
	return h
}

func (h *harness) addClient(pos geo.Point, prog vi.ClientProgram) {
	h.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
		return h.dep.NewClient(env, prog)
	})
}

func (h *harness) runVRounds(n int) {
	h.eng.Run(n * h.dep.Timing().RoundsPerVRound())
}

func TestRegisterWriteThenRead(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.RegisterProgram(sched))

	writer := &apps.RegisterWriter{Writes: map[int]string{2: "hello", 6: "world"}}
	reader := &apps.RegisterReader{}
	h.addClient(geo.Point{X: 1, Y: -1}, writer)
	h.addClient(geo.Point{X: -1, Y: -1}, reader)
	h.runVRounds(12)

	if len(reader.Observed) == 0 {
		t.Fatal("reader never observed the register")
	}
	last := reader.Observed[len(reader.Observed)-1]
	if last.Value != "world" || last.Version != 2 {
		t.Errorf("final observation = %+v, want version 2 value world", last)
	}
	// Versions are monotone (atomicity: a reader never sees time go
	// backwards on a single register).
	for i := 1; i < len(reader.Observed); i++ {
		if reader.Observed[i].Version < reader.Observed[i-1].Version {
			t.Errorf("version regressed: %+v -> %+v", reader.Observed[i-1], reader.Observed[i])
		}
	}
	// The writer observes its own writes applied.
	sawHello := false
	for _, o := range writer.Observed {
		if o.Value == "hello" {
			sawHello = true
		}
	}
	if !sawHello {
		t.Error("writer never saw its first write applied")
	}
}

func TestRegisterConcurrentWritersConverge(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.RegisterProgram(sched))

	// Two writers write in the same virtual round: both writes are in the
	// agreed round input; replicas apply them in canonical order, so every
	// reader converges to the same final value.
	w1 := &apps.RegisterWriter{Writes: map[int]string{3: "alpha"}}
	w2 := &apps.RegisterWriter{Writes: map[int]string{3: "beta"}}
	r1 := &apps.RegisterReader{}
	r2 := &apps.RegisterReader{}
	h.addClient(geo.Point{X: 1, Y: -1.2}, w1)
	h.addClient(geo.Point{X: -1, Y: 1.2}, w2)
	h.addClient(geo.Point{X: 1.4, Y: 1}, r1)
	h.addClient(geo.Point{X: -1.4, Y: -1}, r2)
	h.runVRounds(10)

	if len(r1.Observed) == 0 || len(r2.Observed) == 0 {
		t.Fatal("readers observed nothing")
	}
	f1 := r1.Observed[len(r1.Observed)-1]
	f2 := r2.Observed[len(r2.Observed)-1]
	if f1 != f2 {
		t.Errorf("readers diverged: %+v vs %+v", f1, f2)
	}
	// Note: both clients broadcast in the same client phase -> the virtual
	// channel may deliver both (spatial capture) or neither (collision).
	// Either way the outcome is identical at every reader.
}

func TestParseRegisterReply(t *testing.T) {
	tests := []struct {
		payload string
		version int
		value   string
		ok      bool
	}{
		{"REGV|3|abc", 3, "abc", true},
		{"REGV|0|", 0, "", true},
		{"REGV|7|x|y", 7, "x|y", true},
		{"REGW|abc", 0, "", false},
		{"REGV|", 0, "", false},
		{"REGV|zz|v", 0, "", false},
		{"", 0, "", false},
	}
	for _, tt := range tests {
		v, val, ok := apps.ParseRegisterReply(tt.payload)
		if v != tt.version || val != tt.value || ok != tt.ok {
			t.Errorf("ParseRegisterReply(%q) = (%d, %q, %v), want (%d, %q, %v)",
				tt.payload, v, val, ok, tt.version, tt.value, tt.ok)
		}
	}
}

func TestTrackerLocalSighting(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.TrackerProgram(sched, apps.TrackerConfig{}))

	targetPos := geo.Point{X: 1.5, Y: 0.5}
	h.addClient(targetPos, &apps.TargetClient{
		Name:   "rover",
		Period: 2,
		Pos:    func() geo.Point { return targetPos },
	})
	observer := &apps.ObserverClient{}
	h.addClient(geo.Point{X: -1.5, Y: -0.5}, observer)
	h.runVRounds(10)

	sg, ok := observer.Lookup("rover")
	if !ok {
		t.Fatal("observer never learned about the rover")
	}
	if sg.X != 1.5 || sg.Y != 0.5 {
		t.Errorf("sighting = %+v, want (1.5, 0.5)", sg)
	}
}

func TestTrackerGossipAcrossVNodes(t *testing.T) {
	// The target beacons near VN0; an observer sits near VN1 out of the
	// target's radio range. The sighting must travel VN0 -> VN1 via the
	// virtual nodes' digest broadcasts.
	locs := []geo.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 2, apps.TrackerProgram(sched, apps.TrackerConfig{}))

	targetPos := geo.Point{X: -1.5, Y: 0}
	h.addClient(targetPos, &apps.TargetClient{
		Name:   "rover",
		Period: 2,
		Pos:    func() geo.Point { return targetPos },
	})
	observer := &apps.ObserverClient{}
	h.addClient(geo.Point{X: 6.5, Y: 0}, observer)
	h.runVRounds(16)

	if _, ok := observer.Lookup("rover"); !ok {
		t.Fatal("sighting never gossiped across virtual nodes")
	}
}

func TestTrackerDigestRoundTrip(t *testing.T) {
	var st apps.TrackerState
	_ = st
	sgs, ok := apps.ParseDigest("TRD|a:1.000:2.000:3|b:4.500:-1.250:7")
	if !ok || len(sgs) != 2 {
		t.Fatalf("ParseDigest failed: %v %v", sgs, ok)
	}
	if sgs[0].Name != "a" || sgs[0].X != 1 || sgs[0].Y != 2 || sgs[0].VRound != 3 {
		t.Errorf("first sighting = %+v", sgs[0])
	}
	if _, ok := apps.ParseDigest("TRD|"); !ok {
		t.Error("empty digest should parse")
	}
	if _, ok := apps.ParseDigest("TRD|garbage"); ok {
		t.Error("malformed digest should fail")
	}
	if _, ok := apps.ParseDigest("XXX|a:1:2:3"); ok {
		t.Error("wrong prefix should fail")
	}
}

func TestLockMutualExclusion(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.LockProgram(sched))

	clients := []*apps.LockClient{
		{Name: "a", HoldRounds: 2, Cycles: 2},
		{Name: "b", HoldRounds: 2, Cycles: 2},
		{Name: "c", HoldRounds: 2, Cycles: 2},
	}
	positions := []geo.Point{{X: 1.3, Y: 0.8}, {X: -1.3, Y: 0.9}, {X: 0.1, Y: -1.6}}
	for i, c := range clients {
		h.addClient(positions[i], c)
	}
	h.runVRounds(60)

	total := 0
	for _, c := range clients {
		total += c.Completed()
	}
	if total < 4 {
		t.Errorf("only %d lock cycles completed in 60 rounds", total)
	}

	// Mutual exclusion: no virtual round is claimed by two clients.
	claimed := make(map[int]string)
	for _, c := range clients {
		for _, r := range c.CriticalRounds {
			if other, ok := claimed[r]; ok && other != c.Name {
				t.Fatalf("virtual round %d claimed by both %s and %s", r, other, c.Name)
			}
			claimed[r] = c.Name
		}
	}
}

func TestLockStateMachine(t *testing.T) {
	// Exercise the program end to end through its Program surface.
	prog := apps.LockProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii))(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, vi.RoundInput{Msgs: []string{"LKR|x", "LKR|y"}})
	out := prog.Outgoing(st, 1)
	if out == nil {
		t.Fatal("scheduled lock VN must broadcast")
	}
	holder, ok := apps.ParseGrant(out.Payload)
	if !ok || holder != "x" {
		t.Fatalf("holder = %q, want x", holder)
	}
	st = prog.OnRound(st, 2, vi.RoundInput{Msgs: []string{"LKF|x"}})
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 2).Payload)
	if holder != "y" {
		t.Errorf("after release, holder = %q, want y", holder)
	}
	st = prog.OnRound(st, 3, vi.RoundInput{Msgs: []string{"LKF|y"}})
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 3).Payload)
	if holder != "" {
		t.Errorf("after all releases, holder = %q, want free", holder)
	}
}

func TestLockDuplicateAndCancel(t *testing.T) {
	prog := apps.LockProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii))(0)
	st := prog.Init(0, geo.Point{})
	// Duplicate requests do not double-queue.
	st = prog.OnRound(st, 1, vi.RoundInput{Msgs: []string{"LKR|x", "LKR|x", "LKR|y", "LKR|y"}})
	st = prog.OnRound(st, 2, vi.RoundInput{Msgs: []string{"LKF|x"}})
	holder, _ := apps.ParseGrant(prog.Outgoing(st, 2).Payload)
	if holder != "y" {
		t.Fatalf("holder = %q, want y", holder)
	}
	st = prog.OnRound(st, 3, vi.RoundInput{Msgs: []string{"LKF|y"}})
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 3).Payload)
	if holder != "" {
		t.Errorf("holder = %q, want free (no ghost queue entries)", holder)
	}
	// Cancelling a queued request removes it.
	st = prog.OnRound(st, 4, vi.RoundInput{Msgs: []string{"LKR|a", "LKR|b"}})
	st = prog.OnRound(st, 5, vi.RoundInput{Msgs: []string{"LKF|b"}}) // b cancels while queued
	st = prog.OnRound(st, 6, vi.RoundInput{Msgs: []string{"LKF|a"}})
	holder, _ = apps.ParseGrant(prog.Outgoing(st, 6).Payload)
	if holder != "" {
		t.Errorf("holder = %q after cancel+release, want free", holder)
	}
}

func TestTrackerCollisionRoundsDoNotCorruptState(t *testing.T) {
	// ⊥ rounds (agreement failures) reach the program as collision inputs;
	// the tracker must simply retain its state.
	prog := apps.TrackerProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii), apps.TrackerConfig{})(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, vi.RoundInput{Msgs: []string{fmt.Sprintf("TRB|r|%0.3f|%0.3f", 1.0, 2.0)}})
	st2 := prog.OnRound(st, 2, vi.RoundInput{Collision: true})
	out := prog.Outgoing(st2, 3)
	if out == nil {
		t.Fatal("tracker with state should broadcast when scheduled")
	}
	sgs, ok := apps.ParseDigest(out.Payload)
	if !ok || len(sgs) != 1 || sgs[0].Name != "r" {
		t.Errorf("digest after collision round = %v", sgs)
	}
}
