package apps

import (
	"vinfra/internal/geo"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// Geographic routing over the virtual infrastructure (paper references
// [12, 16, 17, 40]): a client hands a packet addressed to a location to
// its local virtual node; virtual nodes greedily relay it toward the
// destination over the virtual channel (each VN broadcast reaches the
// neighboring VNs); the virtual node closest to the destination delivers
// the packet to its local clients. Virtual nodes are static, so greedy
// geographic forwarding needs no routing tables and no route discovery —
// exactly the simplification virtual infrastructure buys.

// Packet is a routed message in flight.
type Packet struct {
	ID   string
	Dst  geo.Point
	TTL  int
	Body string
	// Copies is how many more times this node will relay the packet.
	// The virtual channel gives no delivery confirmation (a vn-phase
	// broadcast can be lost to collisions), so each hop relays the packet
	// RelayCopies times; duplicate suppression keeps this loop-free.
	Copies int
}

func appendPacket(dst []byte, p Packet) []byte {
	dst = wire.AppendString(dst, p.ID)
	dst = wire.AppendFloat64(dst, p.Dst.X)
	dst = wire.AppendFloat64(dst, p.Dst.Y)
	dst = wire.AppendVarint(dst, int64(p.TTL))
	dst = wire.AppendString(dst, p.Body)
	return wire.AppendVarint(dst, int64(p.Copies))
}

func decodePacket(d *wire.Decoder) (Packet, error) {
	var p Packet
	p.ID = d.String()
	p.Dst.X = d.Float64()
	p.Dst.Y = d.Float64()
	p.TTL = int(d.Varint())
	p.Body = d.String()
	p.Copies = int(d.Varint())
	return p, d.Err()
}

// RelayCopies is the per-hop relay redundancy.
const RelayCopies = 2

// RouterState is the router virtual node state.
type RouterState struct {
	// Loc is this virtual node's own location (set at Init).
	Loc geo.Point
	// Pending are packets awaiting this node's next scheduled broadcast.
	Pending []Packet
	// Delivered are packets to announce to local clients.
	Delivered []Packet
	// Seen holds recently seen packet IDs for duplicate suppression
	// (bounded FIFO).
	Seen []string
}

func encodeRouterState(dst []byte, s RouterState) []byte {
	dst = wire.AppendFloat64(dst, s.Loc.X)
	dst = wire.AppendFloat64(dst, s.Loc.Y)
	dst = wire.AppendUvarint(dst, uint64(len(s.Pending)))
	for _, p := range s.Pending {
		dst = appendPacket(dst, p)
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.Delivered)))
	for _, p := range s.Delivered {
		dst = appendPacket(dst, p)
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.Seen)))
	for _, id := range s.Seen {
		dst = wire.AppendString(dst, id)
	}
	return dst
}

func decodeRouterState(d *wire.Decoder) (RouterState, error) {
	var s RouterState
	s.Loc.X = d.Float64()
	s.Loc.Y = d.Float64()
	decodePackets := func() ([]Packet, error) {
		n := d.Uvarint()
		if d.Err() != nil || n > uint64(d.Rem()) {
			return nil, wire.ErrMalformed
		}
		var out []Packet
		for i := uint64(0); i < n; i++ {
			p, err := decodePacket(d)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		return out, nil
	}
	var err error
	if s.Pending, err = decodePackets(); err != nil {
		return RouterState{}, err
	}
	if s.Delivered, err = decodePackets(); err != nil {
		return RouterState{}, err
	}
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return RouterState{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		s.Seen = append(s.Seen, d.String())
	}
	return s, d.Err()
}

const routerSeenCap = 32

func (s *RouterState) sawPacket(id string) bool {
	for _, x := range s.Seen {
		if x == id {
			return true
		}
	}
	return false
}

func (s *RouterState) markSeen(id string) {
	s.Seen = append(s.Seen, id)
	if len(s.Seen) > routerSeenCap {
		s.Seen = s.Seen[len(s.Seen)-routerSeenCap:]
	}
}

// RouteSend builds the client message injecting a packet addressed to dst.
func RouteSend(dst geo.Point, id, body string) *vi.Message {
	b := []byte{tagRouteSend}
	b = wire.AppendFloat64(b, dst.X)
	b = wire.AppendFloat64(b, dst.Y)
	b = wire.AppendString(b, id)
	b = wire.AppendString(b, body)
	return &vi.Message{Payload: b}
}

// DeliverMsg builds a delivery broadcast for (id, body) — the payload the
// destination virtual node announces to its local clients. Exposed for
// tests and tools; virtual nodes construct it internally.
func DeliverMsg(id, body string) *vi.Message {
	b := []byte{tagRouteDeliver}
	b = wire.AppendString(b, id)
	b = wire.AppendString(b, body)
	return &vi.Message{Payload: b}
}

// RelayMsg builds a VN-to-VN relay broadcast for packet p sent from a
// virtual node at from. Exposed for tests and tools.
func RelayMsg(from geo.Point, p Packet) *vi.Message {
	return &vi.Message{Payload: encodeRelay(from, p)}
}

// ParseDelivery parses a delivery broadcast into (id, body).
func ParseDelivery(payload []byte) (id, body string, ok bool) {
	d, ok := payloadBody(payload, tagRouteDeliver)
	if !ok {
		return "", "", false
	}
	id = d.String()
	body = d.String()
	if d.Finish() != nil || id == "" {
		return "", "", false
	}
	return id, body, true
}

func parseSend(payload []byte) (Packet, bool) {
	d, ok := payloadBody(payload, tagRouteSend)
	if !ok {
		return Packet{}, false
	}
	var p Packet
	p.Dst.X = d.Float64()
	p.Dst.Y = d.Float64()
	p.ID = d.String()
	p.Body = d.String()
	if d.Finish() != nil || p.ID == "" {
		return Packet{}, false
	}
	p.TTL = 16
	return p, true
}

func encodeRelay(from geo.Point, p Packet) []byte {
	b := []byte{tagRouteRelay}
	b = wire.AppendFloat64(b, from.X)
	b = wire.AppendFloat64(b, from.Y)
	b = wire.AppendFloat64(b, p.Dst.X)
	b = wire.AppendFloat64(b, p.Dst.Y)
	b = wire.AppendString(b, p.ID)
	b = wire.AppendVarint(b, int64(p.TTL))
	b = wire.AppendString(b, p.Body)
	return b
}

func parseRelay(payload []byte) (from geo.Point, p Packet, ok bool) {
	d, ok := payloadBody(payload, tagRouteRelay)
	if !ok {
		return geo.Point{}, Packet{}, false
	}
	from.X = d.Float64()
	from.Y = d.Float64()
	p.Dst.X = d.Float64()
	p.Dst.Y = d.Float64()
	p.ID = d.String()
	p.TTL = int(d.Varint())
	p.Body = d.String()
	if d.Finish() != nil || p.ID == "" {
		return geo.Point{}, Packet{}, false
	}
	return from, p, true
}

// RouterProgram returns the routing virtual node program. locs must be the
// deployment's virtual node locations (used to decide whether this node is
// the packet's final destination).
func RouterProgram(sched vi.Schedule, locs []geo.Point) func(vi.VNodeID) vi.Program {
	// isClosest reports whether loc is the deployment's closest virtual
	// node to dst.
	isClosest := func(loc geo.Point, dst geo.Point) bool {
		best := loc.Dist2(dst)
		for _, other := range locs {
			if other.Dist2(dst) < best {
				return false
			}
		}
		return true
	}
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[RouterState]{
			InitState: func(id vi.VNodeID, loc geo.Point) RouterState {
				return RouterState{Loc: loc}
			},
			Step: func(s RouterState, vround int, in vi.RoundInput) RouterState {
				for _, m := range in.Msgs {
					var pkt Packet
					var from geo.Point
					var isRelay bool
					if p, ok := parseSend(m); ok {
						pkt, from, isRelay = p, s.Loc, false
					} else if f, p, ok := parseRelay(m); ok {
						pkt, from, isRelay = p, f, true
					} else {
						continue
					}
					if s.sawPacket(pkt.ID) || pkt.TTL <= 0 {
						continue
					}
					// Greedy rule: a relayed packet is adopted only by
					// nodes strictly closer to the destination than the
					// previous hop (locally injected packets are always
					// adopted).
					if isRelay && s.Loc.Dist2(pkt.Dst) >= from.Dist2(pkt.Dst) {
						continue
					}
					s.markSeen(pkt.ID)
					if isClosest(s.Loc, pkt.Dst) {
						pkt.Copies = RelayCopies
						s.Delivered = append(s.Delivered, pkt)
					} else {
						pkt.TTL--
						pkt.Copies = RelayCopies
						s.Pending = append(s.Pending, pkt)
					}
				}
				return s
			},
			Out: func(s RouterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				// Deliveries take priority over relays; one broadcast per
				// scheduled round. (Out must not mutate state — the queue
				// entry is retired by routerRetire below on the next Step.)
				if len(s.Delivered) > 0 {
					p := s.Delivered[0]
					b := []byte{tagRouteDeliver}
					b = wire.AppendString(b, p.ID)
					b = wire.AppendString(b, p.Body)
					return &vi.Message{Payload: b}
				}
				if len(s.Pending) > 0 {
					return &vi.Message{Payload: encodeRelay(s.Loc, s.Pending[0])}
				}
				return nil
			},
			EncodeState: encodeRouterState,
			DecodeState: decodeRouterState,
		}
	}
}

// The Out function cannot mutate state (it is a pure function of the
// state). Queue retirement therefore happens in Step: when the round input
// records that the virtual node broadcast (VNBroadcast), the head of the
// corresponding queue is retired — implemented below by wrapping the
// codec's Step.

// routerRetire accounts for the head-of-queue broadcast that the agreed
// round input confirms: the head's remaining copy count is decremented,
// and the packet is rotated to the back of the queue (or dropped at zero
// copies) so later packets are not starved.
func routerRetire(s RouterState, in vi.RoundInput) RouterState {
	if !in.VNBroadcast {
		return s
	}
	pop := func(q []Packet) []Packet {
		head := q[0]
		rest := append([]Packet(nil), q[1:]...)
		head.Copies--
		if head.Copies > 0 {
			rest = append(rest, head)
		}
		return rest
	}
	if len(s.Delivered) > 0 {
		s.Delivered = pop(s.Delivered)
		return s
	}
	if len(s.Pending) > 0 {
		s.Pending = pop(s.Pending)
	}
	return s
}

// RoutedProgram composes RouterProgram with queue retirement; use this as
// the deployment program. Retirement runs before the round's messages are
// processed (the broadcast preceded this round's agreement), inside the
// same typed codec — no extra state decode/encode round trip.
func RoutedProgram(sched vi.Schedule, locs []geo.Point) func(vi.VNodeID) vi.Program {
	inner := RouterProgram(sched, locs)
	return func(v vi.VNodeID) vi.Program {
		c := inner(v).(vi.Codec[RouterState])
		step := c.Step
		c.Step = func(s RouterState, vround int, in vi.RoundInput) RouterState {
			return step(routerRetire(s, in), vround, in)
		}
		return c
	}
}

// RouterClient injects packets and collects deliveries.
type RouterClient struct {
	// Sends maps virtual round -> packet to inject in that round.
	Sends map[int]*vi.Message
	// Received collects (id, body) deliveries heard.
	Received []Packet
}

// Step implements vi.ClientProgram.
func (c *RouterClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	for _, m := range recv {
		if id, body, ok := ParseDelivery(m.Payload); ok {
			dup := false
			for _, r := range c.Received {
				if r.ID == id {
					dup = true
					break
				}
			}
			if !dup {
				c.Received = append(c.Received, Packet{ID: id, Body: body})
			}
		}
	}
	if m, ok := c.Sends[vround]; ok {
		return m
	}
	return nil
}
