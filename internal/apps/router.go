package apps

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"vinfra/internal/geo"
	"vinfra/internal/vi"
)

// Geographic routing over the virtual infrastructure (paper references
// [12, 16, 17, 40]): a client hands a packet addressed to a location to
// its local virtual node; virtual nodes greedily relay it toward the
// destination over the virtual channel (each VN broadcast reaches the
// neighboring VNs); the virtual node closest to the destination delivers
// the packet to its local clients. Virtual nodes are static, so greedy
// geographic forwarding needs no routing tables and no route discovery —
// exactly the simplification virtual infrastructure buys.

// Packet is a routed message in flight.
type Packet struct {
	ID   string
	Dst  geo.Point
	TTL  int
	Body string
	// Copies is how many more times this node will relay the packet.
	// The virtual channel gives no delivery confirmation (a vn-phase
	// broadcast can be lost to collisions), so each hop relays the packet
	// RelayCopies times; duplicate suppression keeps this loop-free.
	Copies int
}

// RelayCopies is the per-hop relay redundancy.
const RelayCopies = 2

// RouterState is the router virtual node state.
type RouterState struct {
	// Loc is this virtual node's own location (set at Init).
	Loc geo.Point
	// Pending are packets awaiting this node's next scheduled broadcast.
	Pending []Packet
	// Delivered are packets to announce to local clients.
	Delivered []Packet
	// Seen holds recently seen packet IDs for duplicate suppression
	// (bounded FIFO).
	Seen []string
}

const routerSeenCap = 32

func (s *RouterState) sawPacket(id string) bool {
	for _, x := range s.Seen {
		if x == id {
			return true
		}
	}
	return false
}

func (s *RouterState) markSeen(id string) {
	s.Seen = append(s.Seen, id)
	if len(s.Seen) > routerSeenCap {
		s.Seen = s.Seen[len(s.Seen)-routerSeenCap:]
	}
}

// Router wire formats.
const (
	routeSendPrefix    = "RTS|" // RTS|dstX|dstY|id|body          (client -> local VN)
	routeRelayPrefix   = "RTP|" // RTP|srcX|srcY|dstX|dstY|id|ttl|body (VN -> VN)
	routeDeliverPrefix = "RTD|" // RTD|id|body                    (VN -> local clients)
)

// RouteSend builds the client message injecting a packet addressed to dst.
func RouteSend(dst geo.Point, id, body string) *vi.Message {
	return &vi.Message{Payload: fmt.Sprintf("%s%.3f|%.3f|%s|%s", routeSendPrefix, dst.X, dst.Y, id, body)}
}

// ParseDelivery parses a delivery broadcast into (id, body).
func ParseDelivery(payload string) (id, body string, ok bool) {
	if !strings.HasPrefix(payload, routeDeliverPrefix) {
		return "", "", false
	}
	rest := payload[len(routeDeliverPrefix):]
	sep := strings.IndexByte(rest, '|')
	if sep < 0 {
		return "", "", false
	}
	return rest[:sep], rest[sep+1:], true
}

func parseSend(payload string) (Packet, bool) {
	if !strings.HasPrefix(payload, routeSendPrefix) {
		return Packet{}, false
	}
	parts := strings.SplitN(payload[len(routeSendPrefix):], "|", 4)
	if len(parts) != 4 {
		return Packet{}, false
	}
	x, errX := strconv.ParseFloat(parts[0], 64)
	y, errY := strconv.ParseFloat(parts[1], 64)
	if errX != nil || errY != nil || parts[2] == "" {
		return Packet{}, false
	}
	return Packet{ID: parts[2], Dst: geo.Point{X: x, Y: y}, TTL: 16, Body: parts[3]}, true
}

func encodeRelay(from geo.Point, p Packet) string {
	return fmt.Sprintf("%s%.3f|%.3f|%.3f|%.3f|%s|%d|%s",
		routeRelayPrefix, from.X, from.Y, p.Dst.X, p.Dst.Y, p.ID, p.TTL, p.Body)
}

func parseRelay(payload string) (from geo.Point, p Packet, ok bool) {
	if !strings.HasPrefix(payload, routeRelayPrefix) {
		return geo.Point{}, Packet{}, false
	}
	parts := strings.SplitN(payload[len(routeRelayPrefix):], "|", 7)
	if len(parts) != 7 {
		return geo.Point{}, Packet{}, false
	}
	fx, e1 := strconv.ParseFloat(parts[0], 64)
	fy, e2 := strconv.ParseFloat(parts[1], 64)
	dx, e3 := strconv.ParseFloat(parts[2], 64)
	dy, e4 := strconv.ParseFloat(parts[3], 64)
	ttl, e5 := strconv.Atoi(parts[5])
	if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil || parts[4] == "" {
		return geo.Point{}, Packet{}, false
	}
	return geo.Point{X: fx, Y: fy},
		Packet{ID: parts[4], Dst: geo.Point{X: dx, Y: dy}, TTL: ttl, Body: parts[6]},
		true
}

// RouterProgram returns the routing virtual node program. locs must be the
// deployment's virtual node locations (used to decide whether this node is
// the packet's final destination).
func RouterProgram(sched vi.Schedule, locs []geo.Point) func(vi.VNodeID) vi.Program {
	// isClosest reports whether loc is the deployment's closest virtual
	// node to dst.
	isClosest := func(loc geo.Point, dst geo.Point) bool {
		best := loc.Dist2(dst)
		for _, other := range locs {
			if other.Dist2(dst) < best {
				return false
			}
		}
		return true
	}
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[RouterState]{
			InitState: func(id vi.VNodeID, loc geo.Point) RouterState {
				return RouterState{Loc: loc}
			},
			Step: func(s RouterState, vround int, in vi.RoundInput) RouterState {
				for _, m := range in.Msgs {
					var pkt Packet
					var from geo.Point
					var isRelay bool
					if p, ok := parseSend(m); ok {
						pkt, from, isRelay = p, s.Loc, false
					} else if f, p, ok := parseRelay(m); ok {
						pkt, from, isRelay = p, f, true
					} else {
						continue
					}
					if s.sawPacket(pkt.ID) || pkt.TTL <= 0 {
						continue
					}
					// Greedy rule: a relayed packet is adopted only by
					// nodes strictly closer to the destination than the
					// previous hop (locally injected packets are always
					// adopted).
					if isRelay && s.Loc.Dist2(pkt.Dst) >= from.Dist2(pkt.Dst) {
						continue
					}
					s.markSeen(pkt.ID)
					if isClosest(s.Loc, pkt.Dst) {
						pkt.Copies = RelayCopies
						s.Delivered = append(s.Delivered, pkt)
					} else {
						pkt.TTL--
						pkt.Copies = RelayCopies
						s.Pending = append(s.Pending, pkt)
					}
				}
				return s
			},
			Out: func(s RouterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				// Deliveries take priority over relays; one broadcast per
				// scheduled round. (Out must not mutate state — the queue
				// entry is retired by retireHead below on the next Step.)
				if len(s.Delivered) > 0 {
					p := s.Delivered[0]
					return &vi.Message{Payload: fmt.Sprintf("%s%s|%s", routeDeliverPrefix, p.ID, p.Body)}
				}
				if len(s.Pending) > 0 {
					return &vi.Message{Payload: encodeRelay(s.Loc, s.Pending[0])}
				}
				return nil
			},
		}
	}
}

// The Out function cannot mutate state (it is a pure function of the
// state). Queue retirement therefore happens in Step: when the round input
// records that the virtual node broadcast (VNBroadcast), the head of the
// corresponding queue is retired. This is wired through retireHead inside
// Step via the RoundInput — implemented below by wrapping the Codec.

// routerRetire accounts for the head-of-queue broadcast that the agreed
// round input confirms: the head's remaining copy count is decremented,
// and the packet is rotated to the back of the queue (or dropped at zero
// copies) so later packets are not starved.
func routerRetire(s RouterState, in vi.RoundInput) RouterState {
	if !in.VNBroadcast {
		return s
	}
	pop := func(q []Packet) []Packet {
		head := q[0]
		rest := append([]Packet(nil), q[1:]...)
		head.Copies--
		if head.Copies > 0 {
			rest = append(rest, head)
		}
		return rest
	}
	if len(s.Delivered) > 0 {
		s.Delivered = pop(s.Delivered)
		return s
	}
	if len(s.Pending) > 0 {
		s.Pending = pop(s.Pending)
	}
	return s
}

// RoutedProgram composes RouterProgram with queue retirement; use this as
// the deployment program.
func RoutedProgram(sched vi.Schedule, locs []geo.Point) func(vi.VNodeID) vi.Program {
	inner := RouterProgram(sched, locs)
	return func(v vi.VNodeID) vi.Program {
		return &retiringProgram{inner: inner(v)}
	}
}

// retiringProgram wraps the router codec so that queue heads are retired
// when the agreed round input confirms the broadcast happened.
type retiringProgram struct {
	inner vi.Program
}

// Init implements vi.Program.
func (p *retiringProgram) Init(id vi.VNodeID, loc geo.Point) string {
	return p.inner.Init(id, loc)
}

// OnRound implements vi.Program: retire first (the broadcast preceded this
// round's agreement), then process the round's messages.
func (p *retiringProgram) OnRound(state string, vround int, in vi.RoundInput) string {
	var s RouterState
	decodeRouterState(state, &s)
	s = routerRetire(s, in)
	return p.inner.OnRound(encodeRouterState(s), vround, in)
}

// Outgoing implements vi.Program.
func (p *retiringProgram) Outgoing(state string, vround int) *vi.Message {
	return p.inner.Outgoing(state, vround)
}

func encodeRouterState(s RouterState) string {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		panic(fmt.Sprintf("apps: router state encode: %v", err))
	}
	return buf.String()
}

func decodeRouterState(raw string, out *RouterState) {
	if raw == "" {
		return
	}
	if err := gob.NewDecoder(bytes.NewReader([]byte(raw))).Decode(out); err != nil {
		panic(fmt.Sprintf("apps: router state decode: %v", err))
	}
}

// RouterClient injects packets and collects deliveries.
type RouterClient struct {
	// Sends maps virtual round -> packet to inject in that round.
	Sends map[int]*vi.Message
	// Received collects (id, body) deliveries heard.
	Received []Packet
}

// Step implements vi.ClientProgram.
func (c *RouterClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	for _, m := range recv {
		if id, body, ok := ParseDelivery(m.Payload); ok {
			dup := false
			for _, r := range c.Received {
				if r.ID == id {
					dup = true
					break
				}
			}
			if !dup {
				c.Received = append(c.Received, Packet{ID: id, Body: body})
			}
		}
	}
	if m, ok := c.Sends[vround]; ok {
		return m
	}
	return nil
}
