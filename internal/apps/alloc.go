package apps

import (
	"vinfra/internal/geo"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// Address allocation over virtual infrastructure (paper reference [47]:
// "IP address allocation in ad hoc networks"): each virtual node owns a
// disjoint address block derived from its identity and leases addresses to
// requesting clients. Because the virtual node is a single agreed state
// machine, two clients can never be handed the same address by the same
// virtual node, and blocks are disjoint across virtual nodes by
// construction — global uniqueness with zero coordination.

// Lease is one allocated address.
type Lease struct {
	Name string
	Addr int
}

// AllocState is the allocator virtual node state. Leases are kept sorted
// by name (the canonical order of the state encoding).
type AllocState struct {
	Block  int // base address of this node's block
	Next   int // next offset to hand out
	Leases []Lease
}

func encodeAllocState(dst []byte, s AllocState) []byte {
	dst = wire.AppendUvarint(dst, uint64(s.Block))
	dst = wire.AppendUvarint(dst, uint64(s.Next))
	dst = wire.AppendUvarint(dst, uint64(len(s.Leases)))
	for _, l := range s.Leases {
		dst = wire.AppendString(dst, l.Name)
		dst = wire.AppendUvarint(dst, uint64(l.Addr))
	}
	return dst
}

func decodeAllocState(d *wire.Decoder) (AllocState, error) {
	var s AllocState
	s.Block = int(d.Uvarint())
	s.Next = int(d.Uvarint())
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return AllocState{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		name := d.String()
		addr := int(d.Uvarint())
		if d.Err() != nil {
			return AllocState{}, d.Err()
		}
		s.Leases = append(s.Leases, Lease{Name: name, Addr: addr})
	}
	return s, nil
}

// BlockSize is the number of addresses each virtual node owns.
const BlockSize = 256

// AllocRequest builds an address request for the named client.
func AllocRequest(name string) *vi.Message {
	return nameMsg(tagAllocRequest, name)
}

// AllocRelease builds an address release for the named client.
func AllocRelease(name string) *vi.Message {
	return nameMsg(tagAllocRelease, name)
}

// ParseAssignment parses an assignment broadcast into (name, addr).
func ParseAssignment(payload []byte) (name string, addr int, ok bool) {
	d, ok := payloadBody(payload, tagAllocGrant)
	if !ok {
		return "", 0, false
	}
	name = d.String()
	addr = int(d.Uvarint())
	if d.Finish() != nil {
		return "", 0, false
	}
	return name, addr, true
}

func (s *AllocState) find(name string) (int, bool) {
	for i, l := range s.Leases {
		if l.Name == name {
			return i, true
		}
	}
	return 0, false
}

func (s *AllocState) lease(name string) {
	if _, ok := s.find(name); ok {
		return // idempotent: re-requests keep the same address
	}
	if s.Next >= BlockSize {
		return // block exhausted
	}
	addr := s.Block + s.Next
	s.Next++
	// Insert sorted by name.
	i := 0
	for i < len(s.Leases) && s.Leases[i].Name < name {
		i++
	}
	s.Leases = append(s.Leases, Lease{})
	copy(s.Leases[i+1:], s.Leases[i:])
	s.Leases[i] = Lease{Name: name, Addr: addr}
}

func (s *AllocState) release(name string) {
	if i, ok := s.find(name); ok {
		s.Leases = append(s.Leases[:i], s.Leases[i+1:]...)
	}
}

// AllocProgram returns the address-allocation virtual node program. When
// scheduled, the node broadcasts one assignment per round, cycling through
// current leases so every client eventually hears its address.
func AllocProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[AllocState]{
			InitState: func(id vi.VNodeID, _ geo.Point) AllocState {
				return AllocState{Block: int(id) * BlockSize}
			},
			Step: func(s AllocState, vround int, in vi.RoundInput) AllocState {
				for _, m := range in.Msgs {
					if name, ok := parseName(m, tagAllocRequest); ok {
						s.lease(name)
					} else if name, ok := parseName(m, tagAllocRelease); ok {
						s.release(name)
					}
				}
				return s
			},
			Out: func(s AllocState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) || len(s.Leases) == 0 {
					return nil
				}
				l := s.Leases[vround%len(s.Leases)]
				p := []byte{tagAllocGrant}
				p = wire.AppendString(p, l.Name)
				p = wire.AppendUvarint(p, uint64(l.Addr))
				return &vi.Message{Payload: p}
			},
			EncodeState: encodeAllocState,
			DecodeState: decodeAllocState,
		}
	}
}

// AllocClient requests an address and records the assignment it hears.
type AllocClient struct {
	Name string

	// Addr is the assigned address, valid once Assigned is true.
	Addr     int
	Assigned bool
}

// Step implements vi.ClientProgram.
func (c *AllocClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	for _, m := range recv {
		if name, addr, ok := ParseAssignment(m.Payload); ok && name == c.Name {
			c.Addr = addr
			c.Assigned = true
		}
	}
	if c.Assigned {
		return nil
	}
	// Stagger retries by name to avoid colliding with other requesters.
	offset := 0
	for _, b := range []byte(c.Name) {
		offset = (offset*31 + int(b)) % slotPeriod
	}
	if vround%slotPeriod != offset {
		return nil
	}
	return AllocRequest(c.Name)
}
