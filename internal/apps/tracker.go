package apps

import (
	"sort"

	"vinfra/internal/geo"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// The tracking service (paper reference [36]: "a virtual node-based
// tracking algorithm for mobile networks"): mobile targets broadcast
// heartbeat beacons; the local virtual node records the last sighting per
// target and, when scheduled, broadcasts a digest of recent sightings.
// Neighboring virtual nodes hear these digests on the virtual channel and
// merge them, so sightings propagate across the infrastructure without any
// physical infrastructure.

// Sighting is the last known position of a tracked target.
type Sighting struct {
	Name   string
	X, Y   float64
	VRound int // virtual round of the observation
}

func appendSighting(dst []byte, sg Sighting) []byte {
	dst = wire.AppendString(dst, sg.Name)
	dst = wire.AppendFloat64(dst, sg.X)
	dst = wire.AppendFloat64(dst, sg.Y)
	return wire.AppendUvarint(dst, uint64(sg.VRound))
}

func decodeSighting(d *wire.Decoder) (Sighting, error) {
	var sg Sighting
	sg.Name = d.String()
	sg.X = d.Float64()
	sg.Y = d.Float64()
	sg.VRound = int(d.Uvarint())
	return sg, d.Err()
}

// TrackerState is the tracker virtual node state: sightings sorted by name
// (the canonical order of the state encoding).
type TrackerState struct {
	Sightings []Sighting
}

func encodeTrackerState(dst []byte, s TrackerState) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s.Sightings)))
	for _, sg := range s.Sightings {
		dst = appendSighting(dst, sg)
	}
	return dst
}

func decodeTrackerState(d *wire.Decoder) (TrackerState, error) {
	var s TrackerState
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return TrackerState{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		sg, err := decodeSighting(d)
		if err != nil {
			return TrackerState{}, err
		}
		s.Sightings = append(s.Sightings, sg)
	}
	return s, nil
}

func (s *TrackerState) upsert(sg Sighting) {
	i := sort.Search(len(s.Sightings), func(i int) bool {
		return s.Sightings[i].Name >= sg.Name
	})
	if i < len(s.Sightings) && s.Sightings[i].Name == sg.Name {
		if s.Sightings[i].VRound <= sg.VRound {
			s.Sightings[i] = sg
		}
		return
	}
	s.Sightings = append(s.Sightings, Sighting{})
	copy(s.Sightings[i+1:], s.Sightings[i:])
	s.Sightings[i] = sg
}

// Lookup returns the sighting for name, if known.
func (s *TrackerState) Lookup(name string) (Sighting, bool) {
	i := sort.Search(len(s.Sightings), func(i int) bool {
		return s.Sightings[i].Name >= name
	})
	if i < len(s.Sightings) && s.Sightings[i].Name == name {
		return s.Sightings[i], true
	}
	return Sighting{}, false
}

// Beacon builds a heartbeat message for a target at position p.
func Beacon(name string, p geo.Point) *vi.Message {
	b := []byte{tagBeacon}
	b = wire.AppendString(b, name)
	b = wire.AppendFloat64(b, p.X)
	b = wire.AppendFloat64(b, p.Y)
	return &vi.Message{Payload: b}
}

func parseBeacon(payload []byte, vround int) (Sighting, bool) {
	d, ok := payloadBody(payload, tagBeacon)
	if !ok {
		return Sighting{}, false
	}
	name := d.String()
	x := d.Float64()
	y := d.Float64()
	if d.Finish() != nil || name == "" {
		return Sighting{}, false
	}
	return Sighting{Name: name, X: x, Y: y, VRound: vround}, true
}

// encodeDigest renders the most recent sightings (up to max) as a digest
// broadcast.
func encodeDigest(s TrackerState, max int) []byte {
	recent := append([]Sighting(nil), s.Sightings...)
	sort.Slice(recent, func(i, j int) bool {
		if recent[i].VRound != recent[j].VRound {
			return recent[i].VRound > recent[j].VRound
		}
		return recent[i].Name < recent[j].Name
	})
	if len(recent) > max {
		recent = recent[:max]
	}
	b := []byte{tagDigest}
	b = wire.AppendUvarint(b, uint64(len(recent)))
	for _, sg := range recent {
		b = appendSighting(b, sg)
	}
	return b
}

// ParseDigest decodes a tracker digest broadcast into sightings.
func ParseDigest(payload []byte) ([]Sighting, bool) {
	d, ok := payloadBody(payload, tagDigest)
	if !ok {
		return nil, false
	}
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return nil, false
	}
	var out []Sighting
	for i := uint64(0); i < n; i++ {
		sg, err := decodeSighting(&d)
		if err != nil {
			return nil, false
		}
		out = append(out, sg)
	}
	if d.Finish() != nil {
		return nil, false
	}
	return out, true
}

// TrackerConfig tunes the tracking service.
type TrackerConfig struct {
	// DigestSize bounds the number of sightings per digest broadcast
	// (keeping virtual messages small). Default 4.
	DigestSize int
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.DigestSize <= 0 {
		c.DigestSize = 4
	}
	return c
}

// TrackerProgram returns the tracking virtual node program.
func TrackerProgram(sched vi.Schedule, cfg TrackerConfig) func(vi.VNodeID) vi.Program {
	cfg = cfg.withDefaults()
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[TrackerState]{
			InitState: func(vi.VNodeID, geo.Point) TrackerState {
				return TrackerState{}
			},
			Step: func(s TrackerState, vround int, in vi.RoundInput) TrackerState {
				for _, m := range in.Msgs {
					if sg, ok := parseBeacon(m, vround); ok {
						s.upsert(sg)
						continue
					}
					if sgs, ok := ParseDigest(m); ok {
						// Merge a neighboring virtual node's digest.
						for _, sg := range sgs {
							s.upsert(sg)
						}
					}
				}
				return s
			},
			Out: func(s TrackerState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) || len(s.Sightings) == 0 {
					return nil
				}
				return &vi.Message{Payload: encodeDigest(s, cfg.DigestSize)}
			},
			EncodeState: encodeTrackerState,
			DecodeState: decodeTrackerState,
		}
	}
}

// TargetClient is a client program that beacons its (externally updated)
// position every Period virtual rounds. Beacon rounds are staggered by a
// name-derived offset so that co-located targets do not collide on the
// virtual channel every time.
type TargetClient struct {
	Name   string
	Period int
	// Pos is read at each beacon; update it from the mobility model (or a
	// closure over sim.Env.Location).
	Pos func() geo.Point
}

// Step implements vi.ClientProgram.
func (c *TargetClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	period := c.Period
	if period <= 0 {
		period = 1
	}
	offset := 0
	for _, b := range []byte(c.Name) {
		offset = (offset*31 + int(b)) % period
	}
	if vround%period != offset {
		return nil
	}
	return Beacon(c.Name, c.Pos())
}

// ObserverClient listens for digests and accumulates the freshest sighting
// per target.
type ObserverClient struct {
	state TrackerState
}

// Step implements vi.ClientProgram.
func (c *ObserverClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	for _, m := range recv {
		if sgs, ok := ParseDigest(m.Payload); ok {
			for _, sg := range sgs {
				c.state.upsert(sg)
			}
		}
	}
	return nil
}

// Lookup returns the observer's freshest sighting for name.
func (c *ObserverClient) Lookup(name string) (Sighting, bool) {
	return c.state.Lookup(name)
}

// Known returns the number of distinct targets the observer has seen.
func (c *ObserverClient) Known() int { return len(c.state.Sightings) }

// AppendState implements sim.Snapshotter: the accumulated sightings are
// the observer's only mutable state, serialized with the same canonical
// encoding the tracker program uses for its virtual-node state.
func (c *ObserverClient) AppendState(dst []byte) []byte {
	return encodeTrackerState(dst, c.state)
}

// RestoreState implements sim.Snapshotter.
func (c *ObserverClient) RestoreState(data []byte) error {
	d := wire.Dec(data)
	s, err := decodeTrackerState(&d)
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	c.state = s
	return nil
}
