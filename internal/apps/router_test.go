package apps_test

import (
	"testing"

	"vinfra/internal/apps"
	"vinfra/internal/geo"
	"vinfra/internal/vi"
)

func TestRouteParseRoundTrips(t *testing.T) {
	m := apps.RouteSend(geo.Point{X: 12, Y: -3.5}, "pkt1", "hello|world")
	if m == nil {
		t.Fatal("nil send message")
	}
	// Delivery parse.
	d := apps.DeliverMsg("pkt1", "hello|world")
	if id, body, ok := apps.ParseDelivery(d.Payload); !ok || id != "pkt1" || body != "hello|world" {
		t.Errorf("ParseDelivery = %q %q %v", id, body, ok)
	}
	if _, _, ok := apps.ParseDelivery(d.Payload[:len(d.Payload)-1]); ok {
		t.Error("truncated delivery accepted")
	}
	if _, _, ok := apps.ParseDelivery(apps.DeliverMsg("", "b").Payload); ok {
		t.Error("delivery with empty id accepted")
	}
	if _, _, ok := apps.ParseDelivery(m.Payload); ok {
		t.Error("wrong tag accepted")
	}
	if _, _, ok := apps.ParseDelivery(nil); ok {
		t.Error("empty payload accepted")
	}
}

// lineLocs builds a 1-D chain of virtual nodes spaced 5 apart (within
// R1/2 so VN broadcasts reach neighbors).
func lineLocs(n int) []geo.Point {
	locs := make([]geo.Point, n)
	for i := range locs {
		locs[i] = geo.Point{X: 5 * float64(i)}
	}
	return locs
}

func TestRouterDeliversAcrossChain(t *testing.T) {
	locs := lineLocs(4) // vn0 at x=0 ... vn3 at x=15
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 2, apps.RoutedProgram(sched, locs))

	sender := &apps.RouterClient{
		Sends: map[int]*vi.Message{
			2: apps.RouteSend(geo.Point{X: 15}, "pkt-a", "hello-remote"),
		},
	}
	receiver := &apps.RouterClient{}
	h.addClient(geo.Point{X: 0.8, Y: -1.2}, sender)
	h.addClient(geo.Point{X: 15.5, Y: 1.2}, receiver)

	// The packet must traverse vn0 -> vn1 -> vn2 -> vn3; each hop costs up
	// to s virtual rounds (the relay broadcasts when scheduled).
	h.runVRounds(40)

	if len(receiver.Received) != 1 {
		t.Fatalf("receiver got %d packets, want 1", len(receiver.Received))
	}
	if receiver.Received[0].ID != "pkt-a" || receiver.Received[0].Body != "hello-remote" {
		t.Errorf("delivered packet = %+v", receiver.Received[0])
	}
}

func TestRouterLocalDelivery(t *testing.T) {
	locs := lineLocs(2)
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 2, apps.RoutedProgram(sched, locs))

	sender := &apps.RouterClient{
		Sends: map[int]*vi.Message{
			2: apps.RouteSend(geo.Point{X: 0.2}, "pkt-local", "near"),
		},
	}
	h.addClient(geo.Point{X: 0.8, Y: -1.2}, sender)
	h.runVRounds(12)

	// The sender itself hears the local VN's delivery broadcast.
	if len(sender.Received) != 1 || sender.Received[0].ID != "pkt-local" {
		t.Fatalf("local delivery failed: %+v", sender.Received)
	}
}

func TestRouterDuplicateSuppression(t *testing.T) {
	locs := lineLocs(2)
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 2, apps.RoutedProgram(sched, locs))

	// The same packet injected twice must be delivered once.
	sender := &apps.RouterClient{
		Sends: map[int]*vi.Message{
			2: apps.RouteSend(geo.Point{X: 5}, "pkt-dup", "payload"),
			5: apps.RouteSend(geo.Point{X: 5}, "pkt-dup", "payload"),
		},
	}
	receiver := &apps.RouterClient{}
	h.addClient(geo.Point{X: 0.8, Y: -1.2}, sender)
	h.addClient(geo.Point{X: 5.8, Y: 1.2}, receiver)
	h.runVRounds(25)

	if len(receiver.Received) != 1 {
		t.Errorf("duplicate suppression failed: got %d deliveries", len(receiver.Received))
	}
}

func TestRouterProgramGreedyRule(t *testing.T) {
	// Unit-level: a relay from a node closer to the destination than us
	// must not be adopted (no backward forwarding).
	locs := lineLocs(3)
	sched := vi.BuildSchedule(locs, testRadii)
	prog := apps.RoutedProgram(sched, locs)(0) // vn0 at x=0
	st := prog.Init(0, locs[0])

	// A relay originating at x=5 (closer to dst x=10 than vn0 is): vn0
	// must ignore it.
	relay := apps.RelayMsg(geo.Point{X: 5}, apps.Packet{ID: "pk", Dst: geo.Point{X: 10}, TTL: 8, Body: "body"})
	st = prog.OnRound(st, 1, pl(relay))
	if out := prog.Outgoing(st, 1); out != nil {
		t.Errorf("vn0 adopted a backward packet: %+v", out)
	}
}

func TestAllocAssignsUniqueAddresses(t *testing.T) {
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, testRadii)
	h := newHarness(t, locs, 3, apps.AllocProgram(sched))

	clients := []*apps.AllocClient{
		{Name: "alice"}, {Name: "bob"}, {Name: "carol"},
	}
	positions := []geo.Point{{X: 1.2, Y: 0.8}, {X: -1.2, Y: 0.9}, {X: 0.1, Y: -1.5}}
	for i, c := range clients {
		h.addClient(positions[i], c)
	}
	h.runVRounds(40)

	seen := make(map[int]string)
	for _, c := range clients {
		if !c.Assigned {
			t.Fatalf("client %s never got an address", c.Name)
		}
		if other, dup := seen[c.Addr]; dup {
			t.Errorf("address %d assigned to both %s and %s", c.Addr, other, c.Name)
		}
		seen[c.Addr] = c.Name
		if c.Addr < 0 || c.Addr >= apps.BlockSize {
			t.Errorf("address %d outside vn0's block", c.Addr)
		}
	}
}

func TestAllocIdempotentRequests(t *testing.T) {
	prog := apps.AllocProgram(vi.BuildSchedule([]geo.Point{{}}, testRadii))(0)
	st := prog.Init(0, geo.Point{})
	st = prog.OnRound(st, 1, pl(apps.AllocRequest("x")))
	st = prog.OnRound(st, 2, pl(apps.AllocRequest("x"), apps.AllocRequest("x")))
	out := prog.Outgoing(st, 1)
	if out == nil {
		t.Fatal("allocator with leases must broadcast")
	}
	name, addr, ok := apps.ParseAssignment(out.Payload)
	if !ok || name != "x" || addr != 0 {
		t.Errorf("assignment = %q %d %v", name, addr, ok)
	}
	// Release then re-request: gets a fresh address (no reuse in this
	// simple policy).
	st = prog.OnRound(st, 3, pl(apps.AllocRelease("x")))
	st = prog.OnRound(st, 4, pl(apps.AllocRequest("x")))
	_, addr2, _ := apps.ParseAssignment(prog.Outgoing(st, 4).Payload)
	if addr2 != 1 {
		t.Errorf("re-leased address = %d, want 1", addr2)
	}
}

func TestAllocBlocksDisjointAcrossVNodes(t *testing.T) {
	sched := vi.BuildSchedule(lineLocs(2), testRadii)
	prog0 := apps.AllocProgram(sched)(0)
	prog1 := apps.AllocProgram(sched)(1)
	s0 := prog0.OnRound(prog0.Init(0, geo.Point{}), 1, pl(apps.AllocRequest("a")))
	s1 := prog1.OnRound(prog1.Init(1, geo.Point{X: 5}), 1, pl(apps.AllocRequest("a")))
	// Each node broadcasts only in its scheduled virtual rounds: vn0 in
	// odd vrounds (slot 0), vn1 in even vrounds (slot 1).
	_, a0, _ := apps.ParseAssignment(prog0.Outgoing(s0, 3).Payload)
	_, a1, _ := apps.ParseAssignment(prog1.Outgoing(s1, 2).Payload)
	if a0/apps.BlockSize == a1/apps.BlockSize {
		t.Errorf("blocks overlap: %d and %d", a0, a1)
	}
}

func TestParseAssignmentErrors(t *testing.T) {
	sched := vi.BuildSchedule([]geo.Point{{}}, testRadii)
	prog := apps.AllocProgram(sched)(0)
	st := prog.OnRound(prog.Init(0, geo.Point{}), 1, pl(apps.AllocRequest("a|b")))
	out := prog.Outgoing(st, 2)
	if out == nil {
		t.Fatal("allocator with leases must broadcast")
	}
	// Names containing old-format separators parse exactly (the encoding
	// is length-prefixed, not delimiter-based).
	if name, addr, ok := apps.ParseAssignment(out.Payload); !ok || name != "a|b" || addr != 0 {
		t.Errorf("ParseAssignment = %q %d %v", name, addr, ok)
	}
	if _, _, ok := apps.ParseAssignment(out.Payload[:len(out.Payload)-1]); ok {
		t.Error("truncated assignment accepted")
	}
	if _, _, ok := apps.ParseAssignment(apps.AllocRequest("x").Payload); ok {
		t.Error("wrong tag accepted")
	}
	if _, _, ok := apps.ParseAssignment(nil); ok {
		t.Error("empty payload accepted")
	}
}
