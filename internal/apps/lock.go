package apps

import (
	"vinfra/internal/geo"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// The lock service: a virtual node arbitrates a mutual-exclusion lock among
// clients (the coordination role virtual infrastructure plays for robot
// swarms and traffic intersections in [4, 27, 3]). Requests are granted in
// agreed-history order, so mutual exclusion follows directly from the
// emulation's consistency.

// LockState is the lock virtual node state: the current holder ("" when
// free) and the FIFO queue of waiting client names.
type LockState struct {
	Holder string
	Queue  []string
}

func encodeLockState(dst []byte, s LockState) []byte {
	dst = wire.AppendString(dst, s.Holder)
	dst = wire.AppendUvarint(dst, uint64(len(s.Queue)))
	for _, q := range s.Queue {
		dst = wire.AppendString(dst, q)
	}
	return dst
}

func decodeLockState(d *wire.Decoder) (LockState, error) {
	var s LockState
	s.Holder = d.String()
	n := d.Uvarint()
	if d.Err() != nil || n > uint64(d.Rem()) {
		return LockState{}, wire.ErrMalformed
	}
	for i := uint64(0); i < n; i++ {
		s.Queue = append(s.Queue, d.String())
	}
	return s, d.Err()
}

// nameMsg builds a one-byte-tag payload carrying a client name.
func nameMsg(tag byte, name string) *vi.Message {
	return &vi.Message{Payload: append([]byte{tag}, name...)}
}

// parseName extracts the name from a one-byte-tag payload.
func parseName(payload []byte, tag byte) (string, bool) {
	if len(payload) == 0 || payload[0] != tag {
		return "", false
	}
	return string(payload[1:]), true
}

// LockRequest builds an acquire message for the named client.
func LockRequest(client string) *vi.Message {
	return nameMsg(tagLockRequest, client)
}

// LockRelease builds a release message for the named client.
func LockRelease(client string) *vi.Message {
	return nameMsg(tagLockRelease, client)
}

// ParseGrant parses a grant broadcast; it returns the holder name ("" when
// the lock is free).
func ParseGrant(payload []byte) (holder string, ok bool) {
	return parseName(payload, tagLockGrant)
}

func (s *LockState) enqueue(client string) {
	if s.Holder == client {
		return
	}
	for _, q := range s.Queue {
		if q == client {
			return
		}
	}
	s.Queue = append(s.Queue, client)
	s.promote()
}

func (s *LockState) release(client string) {
	if s.Holder == client {
		s.Holder = ""
		s.promote()
		return
	}
	// Cancel a queued request.
	for i, q := range s.Queue {
		if q == client {
			s.Queue = append(s.Queue[:i], s.Queue[i+1:]...)
			return
		}
	}
}

func (s *LockState) promote() {
	if s.Holder == "" && len(s.Queue) > 0 {
		s.Holder = s.Queue[0]
		s.Queue = s.Queue[1:]
	}
}

// LockProgram returns the lock virtual node program. When scheduled, the
// virtual node broadcasts the current holder so clients learn grants.
func LockProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[LockState]{
			InitState: func(vi.VNodeID, geo.Point) LockState {
				return LockState{}
			},
			Step: func(s LockState, vround int, in vi.RoundInput) LockState {
				for _, m := range in.Msgs {
					if name, ok := parseName(m, tagLockRequest); ok {
						s.enqueue(name)
					} else if name, ok := parseName(m, tagLockRelease); ok {
						s.release(name)
					}
				}
				return s
			},
			Out: func(s LockState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				return nameMsg(tagLockGrant, s.Holder)
			},
			EncodeState: encodeLockState,
			DecodeState: decodeLockState,
		}
	}
}

// LockClient is a client program implementing the acquire/hold/release
// cycle: it requests the lock, retries until it hears itself granted,
// holds for HoldRounds virtual rounds, releases, and repeats up to Cycles
// times.
type LockClient struct {
	Name       string
	HoldRounds int
	Cycles     int

	// CriticalRounds records the virtual rounds during which this client
	// believed it held the lock (for the mutual exclusion check).
	CriticalRounds []int

	phase     lockPhase
	heldSince int
	done      int
}

type lockPhase int

const (
	lockIdle lockPhase = iota
	lockWaiting
	lockHolding
	lockDone
)

// Holding reports whether the client currently believes it holds the lock.
func (c *LockClient) Holding() bool { return c.phase == lockHolding }

// Completed returns how many acquire/release cycles have finished.
func (c *LockClient) Completed() int { return c.done }

// slotPeriod staggers client broadcasts: the virtual channel is collision
// prone, so clients that all (re-)request in the same virtual round would
// collide forever. Each client transmits only in its name-derived slot —
// the virtual-channel analogue of randomized backoff.
const slotPeriod = 5

func (c *LockClient) slot() int {
	h := 0
	for _, b := range []byte(c.Name) {
		h = h*31 + int(b)
	}
	if h < 0 {
		h = -h
	}
	return h % slotPeriod
}

func (c *LockClient) mySlot(vround int) bool {
	return vround%slotPeriod == c.slot()
}

// Step implements vi.ClientProgram.
func (c *LockClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	holder, heard := "", false
	for _, m := range recv {
		if h, ok := ParseGrant(m.Payload); ok {
			holder, heard = h, true
		}
	}
	switch c.phase {
	case lockIdle:
		// If the arbiter still names us holder, our release was lost to a
		// collision on the virtual channel: re-release before anything
		// else, or every other client starves.
		if heard && holder == c.Name {
			return LockRelease(c.Name)
		}
		if c.done >= c.Cycles {
			c.phase = lockDone
			return nil
		}
		if !c.mySlot(vround) {
			return nil
		}
		c.phase = lockWaiting
		return LockRequest(c.Name)
	case lockWaiting:
		if heard && holder == c.Name {
			c.phase = lockHolding
			c.heldSince = vround
			c.CriticalRounds = append(c.CriticalRounds, vround)
			return nil
		}
		// Re-request in our slot in case the request was lost to a
		// collision on the virtual channel.
		if c.mySlot(vround) {
			return LockRequest(c.Name)
		}
		return nil
	case lockHolding:
		c.CriticalRounds = append(c.CriticalRounds, vround)
		if vround-c.heldSince >= c.HoldRounds {
			c.phase = lockIdle
			c.done++
			return LockRelease(c.Name)
		}
		return nil
	default: // lockDone
		if heard && holder == c.Name {
			return LockRelease(c.Name)
		}
		return nil
	}
}
