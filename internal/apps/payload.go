package apps

import "vinfra/internal/wire"

// Every application payload is a wire encoding beginning with a one-byte
// kind tag; the rest is the kind's fixed field sequence. Tags are unique
// across the package so payloads from different services can share a
// virtual channel without ambiguity (the old string prefixes "REGW|",
// "LKR|", ... gave the same guarantee at five bytes apiece plus a
// hand-rolled strconv parser per kind).
const (
	tagRegisterWrite byte = 0x11
	tagRegisterReply byte = 0x12

	tagLockRequest byte = 0x21
	tagLockRelease byte = 0x22
	tagLockGrant   byte = 0x23

	tagBeacon byte = 0x31
	tagDigest byte = 0x32

	tagRouteSend    byte = 0x41
	tagRouteRelay   byte = 0x42
	tagRouteDeliver byte = 0x43

	tagAllocRequest byte = 0x51
	tagAllocRelease byte = 0x52
	tagAllocGrant   byte = 0x53
)

// body returns a decoder over payload's field sequence if it carries the
// given kind tag.
func payloadBody(payload []byte, tag byte) (wire.Decoder, bool) {
	if len(payload) == 0 || payload[0] != tag {
		return wire.Decoder{}, false
	}
	return wire.Dec(payload[1:]), true
}
