// Package cli holds the flag families every vinfra command wires the same
// way — profiling and checkpointing — so cmd/visim, cmd/chabench and
// cmd/visimd register identical flags with identical semantics instead of
// copy-pasting the wiring.
package cli

import (
	"flag"
	"fmt"

	"vinfra/internal/prof"
)

// Profile is the -cpuprofile/-memprofile flag pair.
type Profile struct {
	CPU string
	Mem string
}

// Register installs the profiling flags on fs.
func (p *Profile) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a runtime/pprof CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a runtime/pprof heap profile (post-GC live set) to this file at exit")
}

// Start begins profiling per the parsed flags. The caller must Stop the
// returned profiler on every exit path; prof.Profiler.Stop is idempotent
// and safe to call both deferred and before os.Exit.
func (p *Profile) Start() (*prof.Profiler, error) {
	return prof.Start(p.CPU, p.Mem)
}

// Checkpoint is the -checkpoint/-checkpoint-every/-restore flag family of
// a resumable run.
type Checkpoint struct {
	// Path is the checkpoint file to write (at Every, and when the run
	// completes).
	Path string
	// Every suspends to Path after this many virtual rounds in this
	// invocation; 0 runs to completion.
	Every int
	// Restore resumes from this checkpoint file.
	Restore string
}

// Register installs the checkpoint flags on fs.
func (c *Checkpoint) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Path, "checkpoint", "", "checkpoint file to write (at -checkpoint-every, and again when the run completes)")
	fs.IntVar(&c.Every, "checkpoint-every", 0, "suspend to -checkpoint after this many virtual rounds in this invocation (0 = run to completion)")
	fs.StringVar(&c.Restore, "restore", "", "resume from this checkpoint file (the configuration must match the suspended run)")
}

// Validate enforces the family's cross-flag constraint.
func (c *Checkpoint) Validate() error {
	if c.Every > 0 && c.Path == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint FILE to write to")
	}
	if c.Every < 0 {
		return fmt.Errorf("-checkpoint-every must not be negative (got %d)", c.Every)
	}
	return nil
}
