package cli

import (
	"flag"
	"io"
	"path/filepath"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestCheckpointFlags(t *testing.T) {
	var c Checkpoint
	fs := newFS()
	c.Register(fs)
	if err := fs.Parse([]string{"-checkpoint", "f.ckpt", "-checkpoint-every", "3", "-restore", "g.ckpt"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Path != "f.ckpt" || c.Every != 3 || c.Restore != "g.ckpt" {
		t.Fatalf("parsed %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCheckpointValidate(t *testing.T) {
	if err := (&Checkpoint{Every: 3}).Validate(); err == nil {
		t.Fatal("-checkpoint-every without -checkpoint accepted")
	}
	if err := (&Checkpoint{Path: "f", Every: -1}).Validate(); err == nil {
		t.Fatal("negative -checkpoint-every accepted")
	}
	if err := (&Checkpoint{}).Validate(); err != nil {
		t.Fatalf("zero value rejected: %v", err)
	}
}

func TestProfileFlagsAndStart(t *testing.T) {
	var p Profile
	fs := newFS()
	p.Register(fs)
	cpu := filepath.Join(t.TempDir(), "cpu.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.CPU != cpu || p.Mem != "" {
		t.Fatalf("parsed %+v", p)
	}
	profiler, err := p.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	profiler.Stop()
	profiler.Stop() // idempotent
}

func TestProfileStartRejectsBadPath(t *testing.T) {
	p := Profile{CPU: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}
	if _, err := p.Start(); err == nil {
		t.Fatal("unwritable profile path accepted")
	}
}
