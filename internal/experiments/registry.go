package experiments

// Shared grid helpers for the harness descriptors registered across the
// eN files: the suite-wide full/quick sweep sizes that cmd/chabench used
// to compute inline.

// sweep picks the full or quick variant of a parameter sweep.
func sweep(quick bool, full, quickVal []int) []int {
	if quick {
		return quickVal
	}
	return full
}

// suiteInstances is the per-experiment CHA instance budget (full/quick).
func suiteInstances(quick bool) int {
	if quick {
		return 50
	}
	return 200
}

// suiteVRounds is the per-experiment virtual-round budget (full/quick).
func suiteVRounds(quick bool) int {
	if quick {
		return 10
	}
	return 40
}
