package experiments

import (
	"fmt"
	"math"

	"vinfra/internal/baseline"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// OverheadVsN measures CHAP's rounds-per-instance and maximum message size
// as the number of nodes grows (Theorem 14: both constant in n), alongside
// the majority-RSM baseline's rounds per decision (Θ(n), Section 1.5).
func OverheadVsN(ns []int, instances int) *metrics.Table {
	t := metrics.NewTable("E2a — Theorem 14: overhead vs number of nodes n",
		"n", "CHAP rounds/inst", "CHAP max msg B", "RSM rounds/decision", "RSM max msg B")
	for _, n := range ns {
		c := newCluster(clusterOpts{n: n, fixedWidth: true})
		c.runInstances(instances)
		st := c.eng.Stats()
		chapRounds := float64(st.Rounds) / float64(instances)

		rsmRounds, rsmMsg := rsmRoundsPerDecision(n, instances, nil, 1)
		t.AddRow(metrics.D(n), metrics.F(chapRounds), metrics.D(st.MaxMessageSize),
			metrics.F(rsmRounds), metrics.D(rsmMsg))
	}
	t.Notes = "CHAP flat at 3 rounds and constant bytes; majority RSM grows linearly with n"
	return t
}

// OverheadVsLength measures the maximum message size of CHAP and the
// full-history naive baseline as the execution length grows (Theorem 14:
// CHAP constant, naive Θ(L)).
func OverheadVsLength(lengths []int) *metrics.Table {
	t := metrics.NewTable("E2b — Theorem 14: message size vs execution length L",
		"L (instances)", "CHAP max msg B", "naive max msg B")
	for _, l := range lengths {
		c := newCluster(clusterOpts{n: 4, fixedWidth: true})
		c.runInstances(l)
		chapMax := c.eng.Stats().MaxMessageSize

		naiveMax := naiveMaxMessage(4, l)
		t.AddRow(metrics.D(l), metrics.D(chapMax), metrics.D(naiveMax))
	}
	t.Notes = "the naive protocol ships the whole history in every ballot"
	return t
}

// naiveMaxMessage runs the full-history baseline for l instances and
// returns the largest message observed.
func naiveMaxMessage(n, l int) int {
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)
	factory, _ := cm.NewFixed(0)
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return baseline.NewNaiveReplica(baseline.NaiveConfig{
				Propose: func(k cha.Instance) cha.Value {
					return cha.Value(fmt.Sprintf("%06d-%02d", k, i))
				},
				CM: factory(env),
			})
		})
	}
	eng.Run(l * cha.RoundsPerInstance)
	return eng.Stats().MaxMessageSize
}

// rsmRoundsPerDecision runs the majority-RSM baseline and returns the mean
// rounds per committed slot plus the max message size.
func rsmRoundsPerDecision(n, slots int, adv radio.Adversary, seed int64) (float64, int) {
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}, Adversary: adv, Seed: seed})
	eng := sim.NewEngine(medium, sim.WithSeed(seed))
	var leader *baseline.MajorityRSM
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			node := baseline.NewMajorityRSM(baseline.RSMConfig{
				N:           n,
				Index:       i,
				LeaderIndex: 0,
				Propose:     func(k int) string { return fmt.Sprintf("cmd-%06d", k) },
			})
			if i == 0 {
				leader = node
			}
			return node
		})
	}
	eng.Run(slots * baseline.AttemptRounds(n) * 2)
	var s metrics.Series
	for _, r := range leader.RoundsPerCommit {
		s.AddInt(r)
	}
	if s.N() == 0 {
		return math.Inf(1), eng.Stats().MaxMessageSize
	}
	return s.Mean(), eng.Stats().MaxMessageSize
}

// RoundsUnderLoss compares effective rounds per decided instance for CHAP
// against rounds per committed slot for the RSM when the channel drops
// messages: CHAP instances cost 3 rounds and fail independently (the next
// instance is a fresh chance), while RSM attempts serialize.
func RoundsUnderLoss(n int, lossRates []float64, instances int) *metrics.Table {
	t := metrics.NewTable("E2c — rounds per decided instance under message loss",
		"loss p", "CHAP rounds/decided", "CHAP decided rate", "RSM rounds/commit")
	for _, p := range lossRates {
		adv := radio.NewRandomLoss(p, 0, cd.Never, 77)
		c := newCluster(clusterOpts{
			n:         n,
			detector:  cd.EventuallyAC{Racc: cd.Never},
			adversary: adv,
			seed:      11,
		})
		c.runInstances(instances)
		rep := c.rec.Report()
		chap := math.Inf(1)
		if rep.DecidedRate > 0 {
			chap = float64(cha.RoundsPerInstance) / rep.DecidedRate
		}

		rsm, _ := rsmRoundsPerDecision(n, instances, radio.NewRandomLoss(p, 0, cd.Never, 78), 12)
		t.AddRow(fmt.Sprintf("%.1f", p), metrics.F(chap), metrics.F(rep.DecidedRate), metrics.F(rsm))
	}
	t.Notes = "loss applied forever (r_cf = infinity); CHAP safety holds throughout"
	return t
}
