package experiments

import (
	"fmt"
	"math"

	"vinfra/internal/baseline"
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var e2aDesc = harness.Descriptor{
	ID:      "E2a",
	Group:   "E2",
	Title:   "E2a — Theorem 14: overhead vs number of nodes n",
	Notes:   "CHAP flat at 3 rounds and constant bytes; majority RSM grows linearly with n",
	Columns: []string{"n", "CHAP rounds/inst", "CHAP max msg B", "RSM rounds/decision", "RSM max msg B"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, n := range sweep(quick, []int{2, 4, 8, 16, 32, 64}, []int{2, 8, 32}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("n=%d", n),
				Ints:  map[string]int{"n": n, "instances": suiteInstances(quick) / 4},
			})
		}
		return grid
	},
	Run: overheadVsNCell,
}

var e2bDesc = harness.Descriptor{
	ID:      "E2b",
	Group:   "E2",
	Title:   "E2b — Theorem 14: message size vs execution length L",
	Notes:   "the naive protocol ships the whole history in every ballot",
	Columns: []string{"L (instances)", "CHAP max msg B", "naive max msg B"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, l := range sweep(quick, []int{16, 64, 256, 1024}, []int{16, 128}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("L=%d", l),
				Ints:  map[string]int{"L": l},
			})
		}
		return grid
	},
	Run: overheadVsLengthCell,
}

var e2cDesc = harness.Descriptor{
	ID:      "E2c",
	Group:   "E2",
	Title:   "E2c — rounds per decided instance under message loss",
	Notes:   "loss applied forever (r_cf = infinity); CHAP safety holds throughout",
	Columns: []string{"loss p", "CHAP rounds/decided", "CHAP decided rate", "RSM rounds/commit"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, p := range []float64{0, 0.1, 0.3, 0.5} {
			grid = append(grid, harness.Params{
				Label:  fmt.Sprintf("p=%.1f", p),
				Ints:   map[string]int{"n": 4, "instances": suiteInstances(quick)},
				Floats: map[string]float64{"p": p},
			})
		}
		return grid
	},
	Run: roundsUnderLossCell,
}

func init() {
	harness.Register(e2aDesc)
	harness.Register(e2bDesc)
	harness.Register(e2cDesc)
}

// overheadVsNCell measures one n: CHAP's rounds-per-instance and maximum
// message size (Theorem 14: both constant in n) alongside the majority-RSM
// baseline's rounds per decision (Θ(n), Section 1.5).
func overheadVsNCell(c *harness.Cell) []harness.Row {
	n, instances := c.Params.Int("n"), c.Params.Int("instances")
	cl := newCluster(clusterOpts{n: n, fixedWidth: true, seed: c.Seed})
	cl.runInstances(instances)
	st := cl.eng.Stats()
	chapRounds := float64(st.Rounds) / float64(instances)

	rsmRounds, rsmMsg, rsmSimRounds, rsmBytes := rsmRun(n, instances, nil, 1+c.Base())
	c.CountRounds(st.Rounds + rsmSimRounds)
	c.CountBytes(st.TotalBytes + rsmBytes)
	return []harness.Row{{
		harness.Int(n), harness.Float(chapRounds), harness.Int(st.MaxMessageSize),
		harness.Float(rsmRounds), harness.Int(rsmMsg),
	}}
}

// OverheadVsN is the legacy table entry point (tests and benchmarks); the
// harness descriptor e2aDesc drives the same cell function.
func OverheadVsN(ns []int, instances int) *metrics.Table {
	var rows []harness.Row
	for _, n := range ns {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"n": n, "instances": instances}}}
		rows = append(rows, overheadVsNCell(c)...)
	}
	return e2aDesc.TableOf(rows)
}

// overheadVsLengthCell measures one execution length L: the maximum message
// size of CHAP and the full-history naive baseline (Theorem 14: CHAP
// constant, naive Θ(L)).
func overheadVsLengthCell(c *harness.Cell) []harness.Row {
	l := c.Params.Int("L")
	cl := newCluster(clusterOpts{n: 4, fixedWidth: true, seed: c.Seed})
	cl.runInstances(l)
	chapMax := cl.eng.Stats().MaxMessageSize
	c.CountRounds(cl.eng.Stats().Rounds)
	c.CountBytes(cl.eng.Stats().TotalBytes)

	naiveMax, naiveBytes := naiveMaxMessage(4, l)
	c.CountRounds(l * cha.RoundsPerInstance)
	c.CountBytes(naiveBytes)
	return []harness.Row{{harness.Int(l), harness.Int(chapMax), harness.Int(naiveMax)}}
}

// OverheadVsLength is the legacy table entry point.
func OverheadVsLength(lengths []int) *metrics.Table {
	var rows []harness.Row
	for _, l := range lengths {
		c := &harness.Cell{Seed: 1, Params: harness.Params{Ints: map[string]int{"L": l}}}
		rows = append(rows, overheadVsLengthCell(c)...)
	}
	return e2bDesc.TableOf(rows)
}

// naiveMaxMessage runs the full-history baseline for l instances and
// returns the largest message observed and the total bytes transmitted.
func naiveMaxMessage(n, l int) (int, int) {
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}})
	eng := sim.NewEngine(medium)
	factory, _ := cm.NewFixed(0)
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return baseline.NewNaiveReplica(baseline.NaiveConfig{
				Propose: func(k cha.Instance) cha.Value {
					return cha.V(fmt.Sprintf("%06d-%02d", k, i))
				},
				CM: factory(env),
			})
		})
	}
	eng.Run(l * cha.RoundsPerInstance)
	return eng.Stats().MaxMessageSize, eng.Stats().TotalBytes
}

// rsmRun runs the majority-RSM baseline and returns the mean rounds per
// committed slot, the max message size, the simulated rounds executed, and
// the total bytes transmitted.
func rsmRun(n, slots int, adv radio.Adversary, seed int64) (float64, int, int, int) {
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}, Adversary: adv, Seed: seed})
	eng := sim.NewEngine(medium, sim.WithSeed(seed))
	var leader *baseline.MajorityRSM
	for i, pos := range ring(n, 2) {
		i := i
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			node := baseline.NewMajorityRSM(baseline.RSMConfig{
				N:           n,
				Index:       i,
				LeaderIndex: 0,
				Propose:     func(k int) string { return fmt.Sprintf("cmd-%06d", k) },
			})
			if i == 0 {
				leader = node
			}
			return node
		})
	}
	eng.Run(slots * baseline.AttemptRounds(n) * 2)
	var s metrics.Series
	for _, r := range leader.RoundsPerCommit {
		s.AddInt(r)
	}
	if s.N() == 0 {
		return math.Inf(1), eng.Stats().MaxMessageSize, eng.Stats().Rounds, eng.Stats().TotalBytes
	}
	return s.Mean(), eng.Stats().MaxMessageSize, eng.Stats().Rounds, eng.Stats().TotalBytes
}

// rsmRoundsPerDecision preserves the historical two-value signature used by
// the package tests.
func rsmRoundsPerDecision(n, slots int, adv radio.Adversary, seed int64) (float64, int) {
	mean, maxMsg, _, _ := rsmRun(n, slots, adv, seed)
	return mean, maxMsg
}

// roundsUnderLossCell compares effective rounds per decided instance for
// CHAP against rounds per committed slot for the RSM when the channel drops
// messages: CHAP instances cost 3 rounds and fail independently (the next
// instance is a fresh chance), while RSM attempts serialize.
func roundsUnderLossCell(c *harness.Cell) []harness.Row {
	n, instances, p := c.Params.Int("n"), c.Params.Int("instances"), c.Params.Float("p")
	base := c.Base()
	adv := radio.NewRandomLoss(p, 0, cd.Never, 77+base)
	cl := newCluster(clusterOpts{
		n:         n,
		detector:  cd.EventuallyAC{Racc: cd.Never},
		adversary: adv,
		seed:      11 + base,
	})
	cl.runInstances(instances)
	c.CountRounds(cl.eng.Stats().Rounds)
	rep := cl.rec.Report()
	chap := math.Inf(1)
	if rep.DecidedRate > 0 {
		chap = float64(cha.RoundsPerInstance) / rep.DecidedRate
	}

	rsm, _, rsmSimRounds, rsmBytes := rsmRun(n, instances, radio.NewRandomLoss(p, 0, cd.Never, 78+base), 12+base)
	c.CountRounds(rsmSimRounds)
	c.CountBytes(cl.eng.Stats().TotalBytes + rsmBytes)
	return []harness.Row{{
		harness.FloatText(fmt.Sprintf("%.1f", p), p),
		harness.Float(chap), harness.Float(rep.DecidedRate), harness.Float(rsm),
	}}
}

// RoundsUnderLoss is the legacy table entry point.
func RoundsUnderLoss(n int, lossRates []float64, instances int) *metrics.Table {
	var rows []harness.Row
	for _, p := range lossRates {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints:   map[string]int{"n": n, "instances": instances},
			Floats: map[string]float64{"p": p},
		}}
		rows = append(rows, roundsUnderLossCell(c)...)
	}
	return e2cDesc.TableOf(rows)
}
