package experiments

import (
	"fmt"
	"time"

	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// E14 is the city-scale experiment: the full virtual-infrastructure stack
// on the region-sharded engine at device counts far beyond what one medium
// handles comfortably, the deployment regime the sharded engine exists for.
// Each cell runs the same city twice — one shard, then eight — and reports
// both the deterministic outcome (availability, listener coverage, wire
// bytes, halo traffic, and a "match" column pinning the two runs
// byte-identical) and the measured rounds/second of each run, whose ratio
// is the scaling headline the CI perf gate watches.
//
// The city: a cols x rows virtual-node grid at citySpacing (wide enough
// apart that the TDMA schedule stays short — at spacing 6 a 30x30 grid
// would put hundreds of regions inside one conflict radius and stretch the
// schedule past a hundred slots), three replicas plus one staggered pinger
// client per region, and a background population of listen-only devices
// wandering the whole area under RandomWaypoint — the mass of commuter
// radios a metro deployment serves. Listeners transmit nothing (half a
// million chattering nodes would just be a collision storm) but they move,
// migrate across shard boundaries, and receive every round, so they load
// exactly the paths sharding has to get right: partition, halo exchange
// and per-shard delivery.
var e14Desc = harness.Descriptor{
	ID:    "E14",
	Group: "E14",
	Title: "E14 — city: region-sharded engine at metro scale",
	Notes: "same deployment run on 1 shard then 8; match pins the runs byte-identical (the determinism contract), rounds/s and part ms columns are measured wall clock; halo tx = boundary-band copies handed to neighbor shards in the 8-shard run; part ms x8 = cumulative partition-pass time of the 8-shard run on the persistent worker runtime",
	Columns: []string{
		"devices", "vnodes", "vrounds", "rounds",
		"availability", "coverage", "wire B", "halo tx", "match",
		"rounds/s x1", "rounds/s x8", "speedup", "part ms x8",
	},
	Grid: func(quick bool) []harness.Params {
		type shape struct {
			label      string
			devices    int
			cols, rows int
			vrounds    int
		}
		shapes := []shape{
			{"10k/15x15", 10_000, 15, 15, 3},
			{"100k/15x15", 100_000, 15, 15, 3},
			{"100k/30x30", 100_000, 30, 30, 3},
			{"500k/30x30", 500_000, 30, 30, 2},
			{"1M/30x30", 1_000_000, 30, 30, 1},
		}
		if quick {
			shapes = []shape{{"2k/5x5", 2_000, 5, 5, 2}}
		}
		var grid []harness.Params
		for _, s := range shapes {
			grid = append(grid, harness.Params{
				Label: s.label,
				Ints: map[string]int{
					"devices": s.devices, "cols": s.cols, "rows": s.rows,
					"vrounds": s.vrounds,
				},
			})
		}
		return grid
	},
	Run: cityCell,
}

func init() { harness.Register(e14Desc) }

// citySpacing is the virtual-node grid pitch for E14. The schedule's
// conflict radius is R1 + 2*R2 = 50, so at 25 a region conflicts only with
// its near neighbors and the TDMA schedule stays a handful of slots long
// regardless of grid size — city growth adds regions, not schedule length.
const citySpacing = 25.0

// cityListener is a background device: it never transmits, and only counts
// the rounds in which it heard anything. The heard counts (folded into the
// run signature in attach order) make every listener's full reception
// history part of the determinism check.
type cityListener struct {
	heard int
}

func (l *cityListener) Transmit(sim.Round) sim.Message { return nil }

func (l *cityListener) Receive(_ sim.Round, rx sim.Reception) {
	if len(rx.Msgs) > 0 {
		l.heard++
	}
}

// AppendState implements sim.Snapshotter: the heard count is the
// listener's only state, and it is part of the run signature, so it must
// survive a checkpoint.
func (l *cityListener) AppendState(dst []byte) []byte {
	return wire.AppendUvarint(dst, uint64(l.heard))
}

// RestoreState implements sim.Snapshotter.
func (l *cityListener) RestoreState(data []byte) error {
	d := wire.Dec(data)
	l.heard = int(d.Uvarint())
	return d.Finish()
}

// citySig is the deterministic outcome of one city run. Two runs of the
// same cell must compare equal regardless of shard count — the signature
// covers the VI layer (availability), the background population (coverage
// count and the order-sensitive fold of every listener's heard count) and
// the engine's own accounting.
type citySig struct {
	Avail   float64
	Covered int
	Heard   uint64
	Tx      int
	Bytes   int
}

// cityOutcome is one run's signature plus its measured cost.
type cityOutcome struct {
	sig     citySig
	rounds  int
	halo    int
	elapsed time.Duration
	part    time.Duration // cumulative partition-pass time (subset of elapsed)
}

// cityRun builds and runs one city deployment on the given shard count and
// returns its deterministic signature plus the measured wall clock of the
// round loop. The wall-clock read is E14's output (the rounds/s and
// speedup columns, all Measured and blanked in deterministic runs).
//
//detlint:walltime E14 measures whole-run round-loop cost; rounds/s columns are Measured
func cityRun(c *harness.Cell, shards int) cityOutcome {
	s := newCitySoak(c, shards)
	start := time.Now()
	for s.VRound() < s.VRounds() {
		s.StepVRound()
	}
	elapsed := time.Since(start)
	sig, st := s.outcome()
	s.bed.eng.Close() // release this run's worker pool before the next run
	return cityOutcome{
		sig:     sig,
		rounds:  st.Rounds,
		halo:    st.HaloTransmissions,
		elapsed: elapsed,
		part:    s.bed.eng.PartitionTime(),
	}
}

// cityCell runs one E14 cell: the same city on one shard and on eight, the
// deterministic outcome reported once (match pins the two runs equal), the
// cost reported per run.
func cityCell(c *harness.Cell) []harness.Row {
	devices := c.Params.Int("devices")
	cols, rows := c.Params.Int("cols"), c.Params.Int("rows")
	vrounds := c.Params.Int("vrounds")

	one := cityRun(c, 1)
	eight := cityRun(c, 8)
	match := one.sig == eight.sig

	coverage := 0.0
	if n := devices - (cols*rows)*4; n > 0 {
		coverage = float64(eight.sig.Covered) / float64(n)
	}
	perSec := func(o cityOutcome) float64 {
		if o.elapsed <= 0 {
			return 0
		}
		return float64(o.rounds) / o.elapsed.Seconds()
	}
	rps1, rps8 := perSec(one), perSec(eight)
	speedup := 0.0
	if rps1 > 0 {
		speedup = rps8 / rps1
	}
	partMs := eight.part.Seconds() * 1000
	return []harness.Row{{
		harness.Int(devices), harness.Int(cols * rows), harness.Int(vrounds),
		harness.Int(eight.rounds),
		harness.Float(eight.sig.Avail), harness.Float(coverage),
		harness.Int(eight.sig.Bytes), harness.Int(eight.halo),
		harness.Bool(match),
		harness.MeasuredFloat(fmt.Sprintf("%.0f", rps1), rps1),
		harness.MeasuredFloat(fmt.Sprintf("%.0f", rps8), rps8),
		harness.MeasuredFloat(metrics.F(speedup)+"x", speedup),
		harness.MeasuredFloat(fmt.Sprintf("%.1f", partMs), partMs),
	}}
}
