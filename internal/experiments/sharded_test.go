package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"vinfra/internal/harness"
)

// TestShardedEqualsSequential is the full-stack half of the region-sharded
// determinism contract: the complete emulation stack — VI emulators,
// clients, monitor accounting, engine faults and the radio medium's
// jammers — produces byte-identical experiment rows on the region-sharded
// engine for shard counts {1, 2, 4, 9}, sequential or parallel, as on the
// single-medium sequential engine. The load is the E13 adversary grid
// (every kind: jamming, region wipes, churn storms, crash bursts — wipe
// and storm include mid-run attach churn) plus the E11 metro churn cell
// (Leave / scheduled CrashAt / late CrashAt departures with mid-run
// joiners), so boundary bands, halo exchange and cross-shard migration are
// all exercised under attack.
func TestShardedEqualsSequential(t *testing.T) {
	shardCounts := []int{1, 2, 4, 9}

	for _, p := range e13Desc.Grid(true) {
		for _, seed := range []int64{1, 2} {
			p, seed := p, seed
			t.Run(fmt.Sprintf("e13/%s/seed=%d", p.Label, seed), func(t *testing.T) {
				t.Parallel()
				want := adversaryRows(&harness.Cell{Params: p, Seed: seed}, false, 0)
				for _, n := range shardCounts {
					for _, parallel := range []bool{false, true} {
						got := adversaryRows(&harness.Cell{Params: p, Seed: seed}, parallel, n)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("shards=%d parallel=%v: rows diverge from the sequential single-medium run:\ngot:  %+v\nwant: %+v",
								n, parallel, got, want)
						}
					}
				}
			})
		}
	}

	for _, p := range e11Desc.Grid(true) {
		for _, seed := range []int64{1, 2} {
			p, seed := p, seed
			t.Run(fmt.Sprintf("e11/%s/seed=%d", p.Label, seed), func(t *testing.T) {
				t.Parallel()
				want := metroRows(&harness.Cell{Params: p, Seed: seed}, 0)
				for _, n := range shardCounts {
					got := metroRows(&harness.Cell{Params: p, Seed: seed}, n)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("shards=%d: metro rows diverge from the single-medium run:\ngot:  %+v\nwant: %+v",
							n, got, want)
					}
				}
			})
		}
	}
}
