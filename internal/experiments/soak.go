package experiments

import (
	"fmt"
	"sync"

	"vinfra/internal/checkpoint"
	"vinfra/internal/det"
	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/mobility"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// Soak is a resumable experiment driver: the long-running experiments
// (E11 metro churn, E13 adversary grid, E14 city) are structured as one
// constructor that rebuilds the whole deployment from the cell parameters
// plus a StepVRound loop, so a run can be suspended into a
// checkpoint.Checkpoint at any virtual-round boundary and resumed — in the
// same process or a fresh one — with byte-identical results to an
// uninterrupted run. The descriptor Run functions are thin wrappers that
// step a Soak to completion, so the soak path and the golden path are the
// same code.
//
// The restore protocol: build the Soak from the same cell (same params,
// same seed, same shard count) — that reconstructs every piece of code the
// snapshot cannot carry (programs, factories, fault closures) — then call
// Restore with the checkpoint, which re-attaches mid-run joiners, lays the
// engine/monitor state over the rebuilt world, and repositions the
// driver's own counters.
type Soak interface {
	// VRounds returns the cell's total virtual-round horizon.
	VRounds() int
	// VRound returns the next virtual round to execute (0-based; equal to
	// VRounds when the run is complete).
	VRound() int
	// StepVRound executes one virtual round, including the driver's
	// between-round work (churn, revives).
	StepVRound()
	// Columns names the fields of a Rows row (chabench -soak prints them
	// as the output header; E14's soak row differs from its descriptor's
	// two-run comparison columns).
	Columns() []string
	// Rows returns the cell's result rows and folds the engine's round and
	// byte counts into the cell (call once, after the final StepVRound).
	Rows() []harness.Row
	// Checkpoint captures the full run state at the current virtual-round
	// boundary.
	Checkpoint() checkpoint.Checkpoint
	// Restore lays a checkpoint over a freshly constructed Soak.
	Restore(cp checkpoint.Checkpoint) error
}

// NewSoak builds the resumable driver for one cell of a soakable
// experiment. exp selects the experiment ("E11", "E13", "E14"); shards > 0
// runs the region-sharded engine (E14 interprets shards <= 0 as its
// headline 8-shard configuration, the others as the single-medium bed).
func NewSoak(exp string, c *harness.Cell, shards int) (Soak, error) {
	switch exp {
	case "E11":
		return newMetroSoak(c, shards), nil
	case "E13":
		return newAdversarySoak(c, true, shards), nil
	case "E14":
		if shards <= 0 {
			shards = 8
		}
		return newCitySoak(c, shards), nil
	default:
		return nil, fmt.Errorf("experiments: %q is not soakable (want E11, E13 or E14)", exp)
	}
}

// checkpointOf assembles the three shared layers plus the driver blob.
func checkpointOf(bed *viBed, driver []byte) checkpoint.Checkpoint {
	return checkpoint.Checkpoint{
		Engine:  bed.eng.Snapshot(),
		Medium:  bed.medium.Snapshot(),
		Monitor: bed.mon.Snapshot(),
		Driver:  driver,
	}
}

// restoreBed lays the three shared layers over a rebuilt bed. The driver
// must have re-attached every mid-run joiner first so the node population
// matches.
func restoreBed(bed *viBed, cp checkpoint.Checkpoint) error {
	if err := bed.medium.Restore(cp.Medium); err != nil {
		return err
	}
	if err := bed.eng.Restore(cp.Engine); err != nil {
		return err
	}
	bed.mon.Restore(cp.Monitor)
	return nil
}

// --- E11: metro churn ---

// metroExtra records one mid-run joiner: which region it was attached to
// and the virtual round it arrived in (its OnJoin hook measures join
// latency against that arrival).
type metroExtra struct {
	v       int
	arrived int
}

type metroSoak struct {
	c       *harness.Cell
	vrounds int
	vr      int

	bed      *viBed
	locs     []geo.Point
	per      int
	replicas [][]sim.NodeID // per-region roster, oldest first
	churn    int
	extras   []metroExtra

	mu        sync.Mutex
	joins     int
	resets    int
	latencies []int64
}

const metroReplicasPer = 3

func newMetroSoak(c *harness.Cell, shards int) *metroSoak {
	cols, rows, vrounds := c.Params.Int("cols"), c.Params.Int("rows"), c.Params.Int("vrounds")
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	s := &metroSoak{c: c, vrounds: vrounds, locs: locs}
	s.bed = newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: metroReplicasPer,
		seed:        int64(cols*rows) + c.Base(),
		fixedLeader: true,
		parallel:    true,
		shards:      shards,
	})
	// One client per region, staggered so pings from neighboring regions
	// don't collide every client slot.
	for v, loc := range locs {
		v := v
		s.bed.eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return s.bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%len(locs) != v {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}
	s.per = s.bed.dep.Timing().RoundsPerVRound()
	s.replicas = make([][]sim.NodeID, len(locs))
	for v := range locs {
		for i := 0; i < metroReplicasPer; i++ {
			s.replicas[v] = append(s.replicas[v], sim.NodeID(v*metroReplicasPer+i))
		}
	}
	return s
}

// attachExtra attaches one mid-run joiner with the latency-measuring hooks
// and records it for checkpointing. Hooks fire from emulator Receive calls,
// which the parallel engine fans out across workers: the counters need
// their own lock.
func (s *metroSoak) attachExtra(v, arrived int, pos geo.Point) sim.NodeID {
	newID := sim.NodeID(s.bed.eng.NumNodes())
	s.bed.attachEmulator(pos, false, vi.EmulatorHooks{
		OnJoin: func(_ vi.VNodeID, joinVR int) {
			s.mu.Lock()
			s.joins++
			s.latencies = append(s.latencies, int64(joinVR-arrived))
			s.mu.Unlock()
		},
		OnReset: func(vi.VNodeID, int) {
			s.mu.Lock()
			s.resets++
			s.mu.Unlock()
		},
	})
	s.extras = append(s.extras, metroExtra{v: v, arrived: arrived})
	return newID
}

func (s *metroSoak) VRounds() int { return s.vrounds }
func (s *metroSoak) VRound() int  { return s.vr }

// StepVRound runs one virtual round of the metro churn load: from the
// second round on, the rotation picks a region, its oldest replica departs
// through one of the three departure paths (immediate Leave, a CrashAt
// scheduled mid-vround, a CrashAt aimed at an already-past round),
// leadership hands to the next-oldest replica, and a fresh device attaches
// nearby and acquires state through the join protocol.
func (s *metroSoak) StepVRound() {
	vr := s.vr
	if vr > 0 {
		v := vr % len(s.locs)
		if reg := s.replicas[v]; len(reg) > 1 {
			oldest := reg[0]
			s.replicas[v] = reg[1:]
			// The departing replica is always the region's leader: hand
			// leadership to the next-oldest before it goes, the failover a
			// managed deployment performs.
			s.bed.setLeader(vi.VNodeID(v), s.replicas[v][0])
			switch s.churn % 3 {
			case 0:
				s.bed.eng.Leave(oldest)
			case 1:
				// Mid-vround crash: the replica dies between phases.
				s.bed.eng.CrashAt(oldest, s.bed.eng.Round()+sim.Round(s.per/2))
			case 2:
				// A crash scheduled for a round that already ran: the
				// engine applies it immediately instead of dropping it.
				s.bed.eng.CrashAt(oldest, s.bed.eng.Round()-1)
			}
			loc := s.locs[v]
			pos := geo.Point{
				X: loc.X + 0.4*float64(s.churn%4) - 0.6,
				Y: loc.Y - 0.35,
			}
			newID := s.attachExtra(v, vr, pos)
			s.replicas[v] = append(s.replicas[v], newID)
			s.churn++
		}
	}
	s.bed.eng.Run(s.per)
	s.vr++
}

// Columns matches the E11 descriptor: the soak row is the cell row.
func (s *metroSoak) Columns() []string { return e11Desc.Columns }

func (s *metroSoak) Rows() []harness.Row {
	s.c.CountRounds(s.bed.eng.Stats().Rounds)
	var joinLatency metrics.Series
	for _, l := range s.latencies {
		joinLatency.AddInt(int(l))
	}
	return []harness.Row{{
		harness.Int(len(s.locs)), harness.Int(s.bed.eng.NumNodes()), harness.Int(s.vrounds),
		harness.Int(s.churn), harness.Int(s.bed.eng.AliveCount()),
		harness.Float(s.bed.meanAvailability()), harness.Float(joinLatency.Mean()),
		harness.Int(s.joins), harness.Int(s.resets),
	}}
}

func (s *metroSoak) driverBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := wire.AppendUvarint(nil, uint64(s.vr))
	dst = wire.AppendUvarint(dst, uint64(s.churn))
	dst = wire.AppendUvarint(dst, uint64(s.joins))
	dst = wire.AppendUvarint(dst, uint64(s.resets))
	dst = wire.AppendUvarint(dst, uint64(len(s.latencies)))
	for _, l := range s.latencies {
		dst = wire.AppendVarint(dst, l)
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.replicas)))
	for _, reg := range s.replicas {
		dst = wire.AppendUvarint(dst, uint64(len(reg)))
		for _, id := range reg {
			dst = wire.AppendUvarint(dst, uint64(id))
		}
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.extras)))
	for _, x := range s.extras {
		dst = wire.AppendUvarint(dst, uint64(x.v))
		dst = wire.AppendUvarint(dst, uint64(x.arrived))
	}
	return dst
}

func (s *metroSoak) Checkpoint() checkpoint.Checkpoint {
	return checkpointOf(s.bed, s.driverBytes())
}

func (s *metroSoak) Restore(cp checkpoint.Checkpoint) error {
	d := wire.Dec(cp.Driver)
	vr := int(d.Uvarint())
	churn := int(d.Uvarint())
	joins := int(d.Uvarint())
	resets := int(d.Uvarint())
	nl := d.Uvarint()
	latencies := make([]int64, 0, nl)
	for i := uint64(0); i < nl; i++ {
		latencies = append(latencies, d.Varint())
	}
	nr := d.Uvarint()
	if nr != uint64(len(s.replicas)) {
		return fmt.Errorf("experiments: E11 restore: %d region rosters, bed has %d regions", nr, len(s.replicas))
	}
	replicas := make([][]sim.NodeID, nr)
	for i := range replicas {
		n := d.Uvarint()
		for j := uint64(0); j < n; j++ {
			replicas[i] = append(replicas[i], sim.NodeID(d.Uvarint()))
		}
	}
	nx := d.Uvarint()
	extras := make([]metroExtra, 0, nx)
	for i := uint64(0); i < nx; i++ {
		v := int(d.Uvarint())
		arrived := int(d.Uvarint())
		extras = append(extras, metroExtra{v: v, arrived: arrived})
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("experiments: E11 restore: driver state: %w", err)
	}
	// Re-attach the mid-run joiners in their original order so the node
	// population (and NodeID assignment) matches the checkpoint; positions
	// and all node state are overwritten by the engine restore.
	for _, x := range extras {
		s.attachExtra(x.v, x.arrived, s.locs[x.v])
	}
	if err := restoreBed(s.bed, cp); err != nil {
		return err
	}
	s.vr, s.churn, s.joins, s.resets = vr, churn, joins, resets
	s.latencies = latencies
	s.replicas = replicas
	return nil
}

// --- E13: adversary grid ---

type adversarySoak struct {
	c       *harness.Cell
	vrounds int
	vr      int

	bed  *viBed
	locs []geo.Point
	nv   int
	per  int

	regionReplicas [][]sim.NodeID
	regionOf       map[sim.NodeID]vi.VNodeID
	isReplica      map[sim.NodeID]bool
	emByID         map[sim.NodeID]*vi.Emulator
	extras         []int // region of each mid-run joiner, in attach order
	churn          int
	wiped          map[int]vi.VNodeID

	mu     sync.Mutex
	joins  int
	resets int
}

const adversaryReplicasPer = 3

func newAdversarySoak(c *harness.Cell, parallel bool, shards int) *adversarySoak {
	kind, intensity := c.Params.Str("kind"), c.Params.Str("intensity")
	cols, rows, vrounds := c.Params.Int("cols"), c.Params.Int("rows"), c.Params.Int("vrounds")
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	nv := len(locs)
	// The adversary must exist before the bed (the jammer rides in the
	// medium config), so the virtual-round length is derived up front.
	per := vi.Timing{S: vi.BuildSchedule(locs, Radii).Len()}.RoundsPerVRound()
	seed := int64(nv)*5 + c.Base()
	high := intensity == "high"

	s := &adversarySoak{c: c, vrounds: vrounds, locs: locs, nv: nv, per: per}

	adversary := e13Jammer(kind, high, locs, per, seed)
	s.bed = newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: adversaryReplicasPer,
		seed:        seed,
		fixedLeader: true,
		adversary:   adversary,
		parallel:    parallel,
		shards:      shards,
	})
	// One client per region, staggered so neighboring pings don't collide
	// every client slot.
	for v, loc := range locs {
		v := v
		s.bed.eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return s.bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%4 != v%4 {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}

	// Replica bookkeeping: per-region rosters (oldest first, head = fixed
	// leader) and the replica id set — the crash adversaries must not eat
	// the measurement clients, and failover must hand leadership on.
	s.regionReplicas = make([][]sim.NodeID, nv)
	s.regionOf = map[sim.NodeID]vi.VNodeID{}
	s.isReplica = map[sim.NodeID]bool{}
	s.emByID = map[sim.NodeID]*vi.Emulator{}
	for v := 0; v < nv; v++ {
		for i := 0; i < adversaryReplicasPer; i++ {
			id := sim.NodeID(v*adversaryReplicasPer + i)
			s.regionReplicas[v] = append(s.regionReplicas[v], id)
			s.regionOf[id] = vi.VNodeID(v)
			s.isReplica[id] = true
			s.emByID[id] = s.bed.emulators[int(id)]
		}
	}

	// wiped[vr] is the region wiped at the start of virtual round vr; the
	// vround loop respawns joiners there one virtual round later.
	s.wiped = map[int]vi.VNodeID{}
	e13Faults(s, kind, high, seed)
	return s
}

// e13Jammer builds the jam kind's radio adversary (nil for the others).
func e13Jammer(kind string, high bool, locs []geo.Point, per int, seed int64) radio.Adversary {
	if kind != "jam" {
		return nil
	}
	j := &faults.RegionJammer{
		Window:  faults.Window{From: sim.Round(per)},
		Targets: locs,
		Radius:  2.5, // the R1/4 region radius: replicas and client
		Period:  4 * per,
		Burst:   per,
		Rotate:  (len(locs) + 2) / 3,
		Seed:    seed + 101,
	}
	if high {
		j.Burst = 2 * per
		j.Rotate = 0 // every region
	}
	return j
}

// respawn attaches a fresh (non-bootstrapped) device near region v,
// records it in the rosters, and returns its id. It runs on the engine
// goroutine only (fault Strike or between vrounds).
func (s *adversarySoak) respawn(v vi.VNodeID) sim.NodeID {
	loc := s.locs[v]
	pos := geo.Point{
		X: loc.X + 0.4*float64(s.churn%4) - 0.6,
		Y: loc.Y - 0.35,
	}
	s.churn++
	newID := sim.NodeID(s.bed.eng.NumNodes())
	em := s.attachCounted(pos)
	s.regionReplicas[v] = append(s.regionReplicas[v], newID)
	s.regionOf[newID] = v
	s.isReplica[newID] = true
	s.emByID[newID] = em
	s.extras = append(s.extras, int(v))
	return newID
}

// attachCounted attaches a non-bootstrapped emulator wired to the
// join/reset counters. Hooks fire from emulator Receive calls, which the
// parallel engine fans out across workers: the counters need their own
// lock.
func (s *adversarySoak) attachCounted(pos geo.Point) *vi.Emulator {
	return s.bed.attachEmulator(pos, false, vi.EmulatorHooks{
		OnJoin: func(vi.VNodeID, int) {
			s.mu.Lock()
			s.joins++
			s.mu.Unlock()
		},
		OnReset: func(vi.VNodeID, int) {
			s.mu.Lock()
			s.resets++
			s.mu.Unlock()
		},
	})
}

// dropReplica removes a dead replica from its roster and, if it led the
// region, promotes the oldest joined survivor (the failover a managed
// deployment performs).
func (s *adversarySoak) dropReplica(victim sim.NodeID) vi.VNodeID {
	v := s.regionOf[victim]
	reg := s.regionReplicas[v]
	wasHead := len(reg) > 0 && reg[0] == victim
	for i, id := range reg {
		if id == victim {
			reg = append(reg[:i], reg[i+1:]...)
			break
		}
	}
	s.regionReplicas[v] = reg
	if wasHead {
		next := -1
		for i, id := range reg {
			if s.emByID[id].Joined() {
				next = i
				break
			}
		}
		if next < 0 && len(reg) > 0 {
			next = 0
		}
		if next >= 0 {
			s.bed.setLeader(v, reg[next])
		}
	}
	return v
}

// e13Faults registers the engine-level adversaries for the kind. The
// closures (Eligible, Respawn) close over the soak's live rosters, which is
// why they are rebuilt by the constructor on restore instead of riding in
// the checkpoint.
func e13Faults(s *adversarySoak, kind string, high bool, seed int64) {
	switch kind {
	case "wipe":
		every := 5
		if high {
			every = 3
		}
		for k, w := 0, 2; w < s.vrounds; k, w = k+1, w+every {
			v := vi.VNodeID(k % s.nv)
			s.wiped[w] = v
			s.bed.eng.AddFault(faults.RegionWipe{
				Center: s.locs[v],
				Radius: 1.0, // replicas, not the client
				At:     sim.Round(w * s.per),
			})
		}
	case "storm":
		kills := 1
		if high {
			kills = 2
		}
		s.bed.eng.AddFault(&faults.ChurnStorm{
			Window:   faults.Window{From: sim.Round(s.per)},
			Period:   s.per, // one front per virtual round
			Kills:    kills,
			Seed:     seed + 211,
			Eligible: func(id sim.NodeID) bool { return s.isReplica[id] },
			Respawn: func(victim sim.NodeID, _ geo.Point) {
				v := s.dropReplica(victim)
				newID := s.respawn(v)
				if len(s.regionReplicas[v]) == 1 {
					// Last one standing: it will reset-revive the region
					// and must lead it.
					s.bed.setLeader(v, newID)
				}
			},
		})
	case "burst":
		p := 0.12
		if high {
			p = 0.25
		}
		s.bed.eng.AddFault(&faults.CrashBurst{
			Window: faults.Window{From: sim.Round(s.per)},
			Period: 2 * s.per,
			P:      p,
			Seed:   seed + 307,
			// Pure attrition spares the fixed leaders so degradation is
			// graceful: regions shrink toward single-replica operation.
			Eligible: func(id sim.NodeID) bool {
				v, ok := s.regionOf[id]
				if !ok {
					return false
				}
				reg := s.regionReplicas[v]
				return len(reg) > 0 && reg[0] != id
			},
		})
	}
}

func (s *adversarySoak) VRounds() int { return s.vrounds }
func (s *adversarySoak) VRound() int  { return s.vr }

// StepVRound runs one virtual round under the adversary, reviving a region
// the round after a wipe annihilated it.
func (s *adversarySoak) StepVRound() {
	vr := s.vr
	if v, ok := s.wiped[vr-1]; ok {
		// The region was annihilated last virtual round: two fresh devices
		// arrive and must revive it via join/reset. The first leads the
		// reborn region.
		s.regionReplicas[v] = nil
		first := s.respawn(v)
		s.respawn(v)
		s.bed.setLeader(v, first)
	}
	s.bed.eng.Run(s.per)
	s.vr++
}

// Columns matches the E13 descriptor: the soak row is the cell row.
func (s *adversarySoak) Columns() []string { return e13Desc.Columns }

func (s *adversarySoak) Rows() []harness.Row {
	kind, intensity := s.c.Params.Str("kind"), s.c.Params.Str("intensity")
	st := s.bed.eng.Stats()
	s.c.CountRounds(st.Rounds)
	s.c.CountBytes(st.TotalBytes)
	sum := s.bed.mon.SummaryThrough(s.nv, s.vrounds)
	return []harness.Row{{
		harness.Int(s.nv), harness.Str(kind), harness.Str(intensity),
		harness.Int(s.bed.eng.NumNodes()), harness.Int(s.bed.eng.AliveCount()),
		harness.Int(s.vrounds),
		harness.Float(sum.MeanAvailability), harness.Int(sum.Unavailable),
		harness.Int(sum.MaxStall), harness.Float(sum.MeanRecovery),
		harness.Int(s.joins), harness.Int(s.resets),
	}}
}

func (s *adversarySoak) driverBytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := wire.AppendUvarint(nil, uint64(s.vr))
	dst = wire.AppendUvarint(dst, uint64(s.churn))
	dst = wire.AppendUvarint(dst, uint64(s.joins))
	dst = wire.AppendUvarint(dst, uint64(s.resets))
	dst = wire.AppendUvarint(dst, uint64(len(s.regionReplicas)))
	for _, reg := range s.regionReplicas {
		dst = wire.AppendUvarint(dst, uint64(len(reg)))
		for _, id := range reg {
			dst = wire.AppendUvarint(dst, uint64(id))
		}
	}
	dst = wire.AppendUvarint(dst, uint64(len(s.extras)))
	for _, v := range s.extras {
		dst = wire.AppendUvarint(dst, uint64(v))
	}
	return dst
}

func (s *adversarySoak) Checkpoint() checkpoint.Checkpoint {
	return checkpointOf(s.bed, s.driverBytes())
}

func (s *adversarySoak) Restore(cp checkpoint.Checkpoint) error {
	d := wire.Dec(cp.Driver)
	vr := int(d.Uvarint())
	churn := int(d.Uvarint())
	joins := int(d.Uvarint())
	resets := int(d.Uvarint())
	nr := d.Uvarint()
	if nr != uint64(s.nv) {
		return fmt.Errorf("experiments: E13 restore: %d region rosters, bed has %d regions", nr, s.nv)
	}
	rosters := make([][]sim.NodeID, nr)
	for i := range rosters {
		n := d.Uvarint()
		for j := uint64(0); j < n; j++ {
			rosters[i] = append(rosters[i], sim.NodeID(d.Uvarint()))
		}
	}
	nx := d.Uvarint()
	extras := make([]int, 0, nx)
	for i := uint64(0); i < nx; i++ {
		extras = append(extras, int(d.Uvarint()))
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("experiments: E13 restore: driver state: %w", err)
	}
	// Re-attach the mid-run joiners in their original order. churn drives
	// the respawn position pattern, so it is replayed per joiner; rosters
	// are overwritten wholesale below (respawn's roster bookkeeping over
	// replayed joiners records every id ever attached, which is what
	// regionOf/isReplica/emByID must cover — the checkpointed rosters then
	// replace the per-region live lists).
	s.churn = 0
	s.extras = nil
	for _, v := range extras {
		s.respawn(vi.VNodeID(v))
	}
	if err := restoreBed(s.bed, cp); err != nil {
		return err
	}
	s.regionReplicas = rosters
	s.vr, s.churn, s.joins, s.resets = vr, churn, joins, resets
	return nil
}

// --- E14: city ---

type citySoak struct {
	c       *harness.Cell
	vrounds int
	vr      int

	bed       *viBed
	locs      []geo.Point
	per       int
	listeners []*cityListener
}

func newCitySoak(c *harness.Cell, shards int) *citySoak {
	devices := c.Params.Int("devices")
	cols, rows := c.Params.Int("cols"), c.Params.Int("rows")
	vrounds := c.Params.Int("vrounds")
	const replicasPer = 3
	locs := geo.Grid{Spacing: citySpacing, Cols: cols, Rows: rows}.Locations()
	seed := int64(devices) + c.Base()

	s := &citySoak{c: c, vrounds: vrounds, locs: locs}
	s.bed = newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: replicasPer,
		seed:        seed,
		fixedLeader: true,
		parallel:    true,
		shards:      shards,
	})
	// One client per region, staggered so neighboring pings don't collide
	// every client slot (the E13 stagger).
	for v, loc := range locs {
		v := v
		s.bed.eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return s.bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%4 != v%4 {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}

	// Fill the remaining device budget with wandering listeners, placed
	// uniformly over the city by a seed-keyed stream so the population is a
	// pure function of the cell.
	area := geo.Rect{
		Min: geo.Point{X: -10, Y: -10},
		Max: geo.Point{
			X: citySpacing*float64(cols-1) + 10,
			Y: citySpacing*float64(rows-1) + 10,
		},
	}
	rng := det.NewStream(seed + 404)
	for s.bed.eng.NumNodes() < devices {
		l := &cityListener{}
		s.listeners = append(s.listeners, l)
		pos := geo.Point{
			X: area.Min.X + rng.Float64()*area.Width(),
			Y: area.Min.Y + rng.Float64()*area.Height(),
		}
		s.bed.eng.Attach(pos, &mobility.RandomWaypoint{Area: area, VMax: 2},
			func(sim.Env) sim.Node { return l })
	}
	s.per = s.bed.dep.Timing().RoundsPerVRound()
	return s
}

func (s *citySoak) VRounds() int { return s.vrounds }
func (s *citySoak) VRound() int  { return s.vr }

func (s *citySoak) StepVRound() {
	s.bed.eng.Run(s.per)
	s.vr++
}

// outcome computes the run's deterministic signature and folds the round
// and byte counts into the cell.
func (s *citySoak) outcome() (citySig, sim.Stats) {
	st := s.bed.eng.Stats()
	s.c.CountRounds(st.Rounds)
	s.c.CountBytes(st.TotalBytes)
	sig := citySig{
		Avail: s.bed.mon.SummaryThrough(len(s.locs), s.vrounds).MeanAvailability,
		Tx:    st.Transmissions,
		Bytes: st.TotalBytes,
	}
	for _, l := range s.listeners {
		if l.heard > 0 {
			sig.Covered++
		}
		sig.Heard = det.HashKeys(int64(sig.Heard), int64(l.heard))
	}
	return sig, st
}

// Columns names the soak row's fields; unlike E11/E13 this is not the
// descriptor's column set, because the descriptor's cityCell row is a
// two-run (1-shard vs 8-shard) comparison while the soak row is the
// deterministic signature of one resumable run.
func (s *citySoak) Columns() []string {
	return []string{
		"devices", "vnodes", "vrounds", "rounds",
		"availability", "covered", "heard hash", "tx", "wire B", "halo tx",
	}
}

// Rows reports the soak row: the deterministic signature of this single
// run, including the order-sensitive heard-hash over every listener. (The
// descriptor's cityCell reports a two-run comparison instead; the soak row
// is what segmented and uninterrupted runs are compared on.)
func (s *citySoak) Rows() []harness.Row {
	sig, st := s.outcome()
	return []harness.Row{{
		harness.Int(s.bed.eng.NumNodes()), harness.Int(len(s.locs)),
		harness.Int(s.vrounds), harness.Int(st.Rounds),
		harness.Float(sig.Avail), harness.Int(sig.Covered),
		harness.Str(fmt.Sprintf("%016x", sig.Heard)),
		harness.Int(sig.Tx), harness.Int(sig.Bytes),
		harness.Int(st.HaloTransmissions),
	}}
}

func (s *citySoak) Checkpoint() checkpoint.Checkpoint {
	return checkpointOf(s.bed, wire.AppendUvarint(nil, uint64(s.vr)))
}

func (s *citySoak) Restore(cp checkpoint.Checkpoint) error {
	d := wire.Dec(cp.Driver)
	vr := int(d.Uvarint())
	if err := d.Finish(); err != nil {
		return fmt.Errorf("experiments: E14 restore: driver state: %w", err)
	}
	if err := restoreBed(s.bed, cp); err != nil {
		return err
	}
	s.vr = vr
	return nil
}
