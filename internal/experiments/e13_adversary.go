package experiments

import (
	"fmt"

	"vinfra/internal/harness"
	"vinfra/internal/metrics"
)

// E13 is the robustness grid: the full emulation stack under the
// deterministic adversary plane of internal/faults. Each cell runs one
// adversary kind at one intensity against one virtual-node grid and
// reports availability, stall and recovery accounting from vi.Monitor —
// the paper's central claim ("the virtual node layer stays available
// despite a collision-prone, crash-prone environment") measured under an
// actively hostile environment instead of benign stochastic loss.
//
// Kinds:
//
//   - jam: a RegionJammer parks on the virtual-node locations on a duty
//     cycle; jammed receivers lose everything and see forced ± — the
//     collision detectors run at their specified limits.
//   - wipe: a RegionWipe kills every replica of one region at once (cycling
//     through regions); fresh devices attach the next virtual round and
//     must revive the dead virtual node through the join/reset protocol.
//   - storm: a ChurnStorm kills hash-picked replicas every virtual round
//     and respawns a fresh joiner per victim — sustained flapping churn
//     with leadership failover.
//   - burst: a CrashBurst attrits non-leader replicas in correlated
//     probabilistic batches with no respawn — graceful degradation down to
//     single-replica regions.
var e13Kinds = []string{"jam", "wipe", "storm", "burst"}

var e13Shapes = []struct {
	name       string
	cols, rows int
}{
	{"3x3", 3, 3},
	{"5x5", 5, 5},
}

var e13Desc = harness.Descriptor{
	ID:    "E13",
	Group: "E13",
	Title: "E13 — adversary: availability under deterministic attack",
	Notes: "internal/faults adversaries on the parallel grid stack; availability/stall/recovery from vi.Monitor accounted through the full horizon (silenced vnodes count unavailable); seed-deterministic, parallel == sequential",
	Columns: []string{
		"vnodes", "adversary", "intensity", "devices", "alive at end", "vrounds",
		"availability", "unavailable", "max stall", "mean recovery", "joins", "resets",
	},
	Grid: func(quick bool) []harness.Params {
		shapes := e13Shapes
		intensities := []string{"low", "high"}
		vrounds := 16
		if quick {
			shapes = e13Shapes[:1]
			intensities = intensities[1:]
			vrounds = 8
		}
		var grid []harness.Params
		for _, kind := range e13Kinds {
			for _, intensity := range intensities {
				for _, s := range shapes {
					grid = append(grid, harness.Params{
						Label: fmt.Sprintf("%s/%s/%s", kind, intensity, s.name),
						Ints:  map[string]int{"cols": s.cols, "rows": s.rows, "vrounds": vrounds},
						Strs:  map[string]string{"kind": kind, "intensity": intensity},
					})
				}
			}
		}
		return grid
	},
	Run: adversaryCell,
}

func init() { harness.Register(e13Desc) }

func adversaryCell(c *harness.Cell) []harness.Row {
	return adversaryRows(c, true, 0)
}

// adversaryRows runs one robustness cell by stepping its Soak to
// completion (the checkpointable driver in soak.go is the single
// implementation of the adversary load). The parallel flag and shard
// count exist for the determinism property tests: descriptor cells always
// run the parallel grid stack on a single medium, and the tests pin rows
// byte-identical across sequential, parallel and region-sharded
// (shards > 0) runs of the same cell.
func adversaryRows(c *harness.Cell, parallel bool, shards int) []harness.Row {
	s := newAdversarySoak(c, parallel, shards)
	for s.VRound() < s.VRounds() {
		s.StepVRound()
	}
	return s.Rows()
}

// AdversaryGrid is the legacy-style table entry point.
func AdversaryGrid(kind, intensity string, cols, rows, vrounds int) *metrics.Table {
	c := &harness.Cell{Seed: 1, Params: harness.Params{
		Ints: map[string]int{"cols": cols, "rows": rows, "vrounds": vrounds},
		Strs: map[string]string{"kind": kind, "intensity": intensity},
	}}
	return e13Desc.TableOf(adversaryCell(c))
}
