package experiments

import (
	"fmt"
	"sync"

	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// E13 is the robustness grid: the full emulation stack under the
// deterministic adversary plane of internal/faults. Each cell runs one
// adversary kind at one intensity against one virtual-node grid and
// reports availability, stall and recovery accounting from vi.Monitor —
// the paper's central claim ("the virtual node layer stays available
// despite a collision-prone, crash-prone environment") measured under an
// actively hostile environment instead of benign stochastic loss.
//
// Kinds:
//
//   - jam: a RegionJammer parks on the virtual-node locations on a duty
//     cycle; jammed receivers lose everything and see forced ± — the
//     collision detectors run at their specified limits.
//   - wipe: a RegionWipe kills every replica of one region at once (cycling
//     through regions); fresh devices attach the next virtual round and
//     must revive the dead virtual node through the join/reset protocol.
//   - storm: a ChurnStorm kills hash-picked replicas every virtual round
//     and respawns a fresh joiner per victim — sustained flapping churn
//     with leadership failover.
//   - burst: a CrashBurst attrits non-leader replicas in correlated
//     probabilistic batches with no respawn — graceful degradation down to
//     single-replica regions.
var e13Kinds = []string{"jam", "wipe", "storm", "burst"}

var e13Shapes = []struct {
	name       string
	cols, rows int
}{
	{"3x3", 3, 3},
	{"5x5", 5, 5},
}

var e13Desc = harness.Descriptor{
	ID:    "E13",
	Group: "E13",
	Title: "E13 — adversary: availability under deterministic attack",
	Notes: "internal/faults adversaries on the parallel grid stack; availability/stall/recovery from vi.Monitor accounted through the full horizon (silenced vnodes count unavailable); seed-deterministic, parallel == sequential",
	Columns: []string{
		"vnodes", "adversary", "intensity", "devices", "alive at end", "vrounds",
		"availability", "unavailable", "max stall", "mean recovery", "joins", "resets",
	},
	Grid: func(quick bool) []harness.Params {
		shapes := e13Shapes
		intensities := []string{"low", "high"}
		vrounds := 16
		if quick {
			shapes = e13Shapes[:1]
			intensities = intensities[1:]
			vrounds = 8
		}
		var grid []harness.Params
		for _, kind := range e13Kinds {
			for _, intensity := range intensities {
				for _, s := range shapes {
					grid = append(grid, harness.Params{
						Label: fmt.Sprintf("%s/%s/%s", kind, intensity, s.name),
						Ints:  map[string]int{"cols": s.cols, "rows": s.rows, "vrounds": vrounds},
						Strs:  map[string]string{"kind": kind, "intensity": intensity},
					})
				}
			}
		}
		return grid
	},
	Run: adversaryCell,
}

func init() { harness.Register(e13Desc) }

func adversaryCell(c *harness.Cell) []harness.Row {
	return adversaryRows(c, true, 0)
}

// adversaryRows runs one robustness cell. The parallel flag and shard
// count exist for the determinism property tests: descriptor cells always
// run the parallel grid stack on a single medium, and the tests pin rows
// byte-identical across sequential, parallel and region-sharded
// (shards > 0) runs of the same cell.
func adversaryRows(c *harness.Cell, parallel bool, shards int) []harness.Row {
	kind, intensity := c.Params.Str("kind"), c.Params.Str("intensity")
	cols, rows, vrounds := c.Params.Int("cols"), c.Params.Int("rows"), c.Params.Int("vrounds")
	const replicasPer = 3
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	nv := len(locs)
	// The adversary must exist before the bed (the jammer rides in the
	// medium config), so the virtual-round length is derived up front.
	per := vi.Timing{S: vi.BuildSchedule(locs, Radii).Len()}.RoundsPerVRound()
	seed := int64(nv)*5 + c.Base()
	high := intensity == "high"

	var adversary radio.Adversary
	if kind == "jam" {
		j := &faults.RegionJammer{
			Window:  faults.Window{From: sim.Round(per)},
			Targets: locs,
			Radius:  2.5, // the R1/4 region radius: replicas and client
			Period:  4 * per,
			Burst:   per,
			Rotate:  (nv + 2) / 3,
			Seed:    seed + 101,
		}
		if high {
			j.Burst = 2 * per
			j.Rotate = 0 // every region
		}
		adversary = j
	}

	bed := newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: replicasPer,
		seed:        seed,
		fixedLeader: true,
		adversary:   adversary,
		parallel:    parallel,
		shards:      shards,
	})
	// One client per region, staggered so neighboring pings don't collide
	// every client slot.
	for v, loc := range locs {
		v := v
		bed.eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%4 != v%4 {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}

	// Replica bookkeeping: per-region rosters (oldest first, head = fixed
	// leader) and the replica id set — the crash adversaries must not eat
	// the measurement clients, and failover must hand leadership on.
	regionReplicas := make([][]sim.NodeID, nv)
	regionOf := map[sim.NodeID]vi.VNodeID{}
	isReplica := map[sim.NodeID]bool{}
	emByID := map[sim.NodeID]*vi.Emulator{}
	for v := 0; v < nv; v++ {
		for i := 0; i < replicasPer; i++ {
			id := sim.NodeID(v*replicasPer + i)
			regionReplicas[v] = append(regionReplicas[v], id)
			regionOf[id] = vi.VNodeID(v)
			isReplica[id] = true
			emByID[id] = bed.emulators[int(id)]
		}
	}

	// Hooks fire from emulator Receive calls, which the parallel engine
	// fans out across workers: the counters need their own lock.
	var mu sync.Mutex
	joins, resets := 0, 0
	countHooks := vi.EmulatorHooks{
		OnJoin: func(vi.VNodeID, int) {
			mu.Lock()
			joins++
			mu.Unlock()
		},
		OnReset: func(vi.VNodeID, int) {
			mu.Lock()
			resets++
			mu.Unlock()
		},
	}

	// respawn attaches a fresh (non-bootstrapped) device near region v,
	// records it in the rosters, and returns its id. It runs on the engine
	// goroutine only (fault Strike or between vrounds).
	churn := 0
	respawn := func(v vi.VNodeID) sim.NodeID {
		loc := locs[v]
		pos := geo.Point{
			X: loc.X + 0.4*float64(churn%4) - 0.6,
			Y: loc.Y - 0.35,
		}
		churn++
		newID := sim.NodeID(bed.eng.NumNodes())
		em := bed.attachEmulator(pos, false, countHooks)
		regionReplicas[v] = append(regionReplicas[v], newID)
		regionOf[newID] = v
		isReplica[newID] = true
		emByID[newID] = em
		return newID
	}

	// dropReplica removes a dead replica from its roster and, if it led
	// the region, promotes the oldest joined survivor (the failover a
	// managed deployment performs).
	dropReplica := func(victim sim.NodeID) vi.VNodeID {
		v := regionOf[victim]
		reg := regionReplicas[v]
		wasHead := len(reg) > 0 && reg[0] == victim
		for i, id := range reg {
			if id == victim {
				reg = append(reg[:i], reg[i+1:]...)
				break
			}
		}
		regionReplicas[v] = reg
		if wasHead {
			next := -1
			for i, id := range reg {
				if emByID[id].Joined() {
					next = i
					break
				}
			}
			if next < 0 && len(reg) > 0 {
				next = 0
			}
			if next >= 0 {
				bed.setLeader(v, reg[next])
			}
		}
		return v
	}

	// wiped[vr] is the region wiped at the start of virtual round vr; the
	// vround loop respawns joiners there one virtual round later.
	wiped := map[int]vi.VNodeID{}
	switch kind {
	case "wipe":
		every := 5
		if high {
			every = 3
		}
		for k, w := 0, 2; w < vrounds; k, w = k+1, w+every {
			v := vi.VNodeID(k % nv)
			wiped[w] = v
			bed.eng.AddFault(faults.RegionWipe{
				Center: locs[v],
				Radius: 1.0, // replicas, not the client
				At:     sim.Round(w * per),
			})
		}
	case "storm":
		kills := 1
		if high {
			kills = 2
		}
		bed.eng.AddFault(&faults.ChurnStorm{
			Window:   faults.Window{From: sim.Round(per)},
			Period:   per, // one front per virtual round
			Kills:    kills,
			Seed:     seed + 211,
			Eligible: func(id sim.NodeID) bool { return isReplica[id] },
			Respawn: func(victim sim.NodeID, _ geo.Point) {
				v := dropReplica(victim)
				newID := respawn(v)
				if len(regionReplicas[v]) == 1 {
					// Last one standing: it will reset-revive the region
					// and must lead it.
					bed.setLeader(v, newID)
				}
			},
		})
	case "burst":
		p := 0.12
		if high {
			p = 0.25
		}
		bed.eng.AddFault(&faults.CrashBurst{
			Window: faults.Window{From: sim.Round(per)},
			Period: 2 * per,
			P:      p,
			Seed:   seed + 307,
			// Pure attrition spares the fixed leaders so degradation is
			// graceful: regions shrink toward single-replica operation.
			Eligible: func(id sim.NodeID) bool {
				v, ok := regionOf[id]
				if !ok {
					return false
				}
				reg := regionReplicas[v]
				return len(reg) > 0 && reg[0] != id
			},
		})
	}

	for vr := 0; vr < vrounds; vr++ {
		if v, ok := wiped[vr-1]; ok {
			// The region was annihilated last virtual round: two fresh
			// devices arrive and must revive it via join/reset. The first
			// leads the reborn region.
			regionReplicas[v] = nil
			first := respawn(v)
			respawn(v)
			bed.setLeader(v, first)
		}
		bed.eng.Run(per)
	}

	st := bed.eng.Stats()
	c.CountRounds(st.Rounds)
	c.CountBytes(st.TotalBytes)
	sum := bed.mon.SummaryThrough(nv, vrounds)
	return []harness.Row{{
		harness.Int(nv), harness.Str(kind), harness.Str(intensity),
		harness.Int(bed.eng.NumNodes()), harness.Int(bed.eng.AliveCount()),
		harness.Int(vrounds),
		harness.Float(sum.MeanAvailability), harness.Int(sum.Unavailable),
		harness.Int(sum.MaxStall), harness.Float(sum.MeanRecovery),
		harness.Int(joins), harness.Int(resets),
	}}
}

// AdversaryGrid is the legacy-style table entry point.
func AdversaryGrid(kind, intensity string, cols, rows, vrounds int) *metrics.Table {
	c := &harness.Cell{Seed: 1, Params: harness.Params{
		Ints: map[string]int{"cols": cols, "rows": rows, "vrounds": vrounds},
		Strs: map[string]string{"kind": kind, "intensity": intensity},
	}}
	return e13Desc.TableOf(adversaryCell(c))
}
