package experiments

import (
	"fmt"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// CorrectnessCampaign runs a randomized adversarial campaign and verifies
// the CHA guarantees: agreement and validity must never be violated
// (Theorems 10, 13), the color spread must stay within one shade
// (Property 4), and after the channel stabilizes, liveness must hold with a
// stabilization instance tracking r_cf (Theorem 12).
func CorrectnessCampaign(seeds int, rcfs []sim.Round, instancesAfter int) *metrics.Table {
	t := metrics.NewTable("E4 — Theorems 10/12/13: randomized adversarial campaign",
		"r_cf", "runs", "agreement viol", "validity viol", "spread viol", "liveness ok", "mean k_st", "bound k_cf+2")
	for _, rcf := range rcfs {
		var agr, val, spread, live int
		var kst metrics.Series
		for s := 0; s < seeds; s++ {
			seed := int64(s*97 + 13)
			n := 3 + s%5
			p := 0.2 + 0.1*float64(s%6)
			c := newCluster(clusterOpts{
				n:         n,
				detector:  cd.EventuallyAC{Racc: rcf, FalsePositiveRate: p / 2},
				adversary: radio.NewRandomLoss(p, p/2, rcf, seed*7),
				seed:      seed,
			})
			c.runInstances(int(rcf)/cha.RoundsPerInstance + instancesAfter)
			rep := c.rec.Report()
			agr += rep.AgreementViolations
			val += rep.ValidityViolations
			spread += rep.ColorSpreadViolations
			if rep.LivenessOK {
				live++
				kst.AddInt(int(rep.Stabilization))
			}
		}
		bound := int(rcf)/cha.RoundsPerInstance + 2
		t.AddRow(metrics.D(int(rcf)), metrics.D(seeds), metrics.D(agr), metrics.D(val),
			metrics.D(spread), fmt.Sprintf("%d/%d", live, seeds), metrics.F(kst.Mean()), metrics.D(bound))
	}
	t.Notes = "violations must be 0; k_st is the first instance after which every node decides every instance"
	return t
}
