package experiments

import (
	"fmt"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var e4Desc = harness.Descriptor{
	ID:      "E4",
	Group:   "E4",
	Title:   "E4 — Theorems 10/12/13: randomized adversarial campaign",
	Notes:   "violations must be 0; k_st is the first instance after which every node decides every instance",
	Columns: []string{"r_cf", "runs", "agreement viol", "validity viol", "spread viol", "liveness ok", "mean k_st", "bound k_cf+2"},
	Grid: func(quick bool) []harness.Params {
		runs := 30
		if quick {
			runs = 8
		}
		var grid []harness.Params
		for _, rcf := range []int{30, 90, 180} {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("rcf=%d", rcf),
				Ints:  map[string]int{"rcf": rcf, "runs": runs, "instances_after": suiteInstances(quick) / 4},
			})
		}
		return grid
	},
	Run: correctnessCell,
}

func init() { harness.Register(e4Desc) }

// correctnessCell runs the randomized adversarial campaign for one r_cf and
// verifies the CHA guarantees: agreement and validity must never be
// violated (Theorems 10, 13), the color spread must stay within one shade
// (Property 4), and after the channel stabilizes, liveness must hold with a
// stabilization instance tracking r_cf (Theorem 12).
func correctnessCell(c *harness.Cell) []harness.Row {
	rcf := sim.Round(c.Params.Int("rcf"))
	runs := c.Params.Int("runs")
	instancesAfter := c.Params.Int("instances_after")

	var agr, val, spread, live int
	var kst metrics.Series
	for s := 0; s < runs; s++ {
		seed := int64(s*97+13) + c.Base()
		n := 3 + s%5
		p := 0.2 + 0.1*float64(s%6)
		cl := newCluster(clusterOpts{
			n:         n,
			detector:  cd.EventuallyAC{Racc: rcf, FalsePositiveRate: p / 2},
			adversary: radio.NewRandomLoss(p, p/2, rcf, seed*7),
			seed:      seed,
		})
		cl.runInstances(int(rcf)/cha.RoundsPerInstance + instancesAfter)
		c.CountRounds(cl.eng.Stats().Rounds)
		rep := cl.rec.Report()
		agr += rep.AgreementViolations
		val += rep.ValidityViolations
		spread += rep.ColorSpreadViolations
		if rep.LivenessOK {
			live++
			kst.AddInt(int(rep.Stabilization))
		}
	}
	bound := int(rcf)/cha.RoundsPerInstance + 2
	return []harness.Row{{
		harness.Int(int(rcf)), harness.Int(runs), harness.Int(agr), harness.Int(val),
		harness.Int(spread),
		harness.FloatText(fmt.Sprintf("%d/%d", live, runs), float64(live)/float64(runs)),
		harness.Float(kst.Mean()), harness.Int(bound),
	}}
}

// CorrectnessCampaign is the legacy table entry point.
func CorrectnessCampaign(seeds int, rcfs []sim.Round, instancesAfter int) *metrics.Table {
	var rows []harness.Row
	for _, rcf := range rcfs {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"rcf": int(rcf), "runs": seeds, "instances_after": instancesAfter},
		}}
		rows = append(rows, correctnessCell(c)...)
	}
	return e4Desc.TableOf(rows)
}
