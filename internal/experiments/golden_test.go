package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vinfra/internal/harness"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_quick_seeds12.json from the current run")

// goldenCache memoizes suite runs per worker count: the golden tests need
// the same (deterministic) bytes for workers 0 and 4, and each run is a
// full quick-suite execution — no reason to pay for it twice.
var (
	goldenMu    sync.Mutex
	goldenCache = map[int][]byte{}
)

// goldenSuite is the run the golden file pins: the whole quick suite,
// seeds 1 and 2, timing disabled (the `chabench -json -quick -seeds 1,2
// -timing=false` invocation). The header is canonicalized because the Go
// version and CPU count legitimately vary across machines; everything
// else must be byte-stable.
func goldenSuite(t *testing.T, workers int) []byte {
	t.Helper()
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if b, ok := goldenCache[workers]; ok {
		return b
	}
	suite, err := harness.Run(harness.Options{
		Quick:   true,
		Seeds:   []int64{1, 2},
		Workers: workers,
		Timing:  false,
	})
	if err != nil {
		t.Fatal(err)
	}
	suite.GoVersion = ""
	suite.Machine = ""
	var buf bytes.Buffer
	if err := suite.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCache[workers] = buf.Bytes()
	return goldenCache[workers]
}

// firstDiff reports the line around the first differing byte.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	hiA, hiB := i+80, i+80
	if hiA > len(a) {
		hiA = len(a)
	}
	if hiB > len(b) {
		hiB = len(b)
	}
	return "…" + string(a[lo:hiA]) + "… vs …" + string(b[lo:hiB]) + "…"
}

// TestJSONParallelMatchesSequential is the determinism acceptance test:
// the `chabench -json -seeds 1,2` report must be byte-identical between a
// sequential and a parallel (worker-pool) run.
func TestJSONParallelMatchesSequential(t *testing.T) {
	seq := goldenSuite(t, 0)
	par := goldenSuite(t, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel run diverged from sequential run at: %s", firstDiff(seq, par))
	}
}

// TestJSONGoldenFile pins the deterministic report bytes across commits:
// any change to experiment results (for seeds 1 and 2, quick grids) shows
// up as a golden-file diff that must be reviewed and regenerated with
// `go test ./internal/experiments/ -run Golden -update-golden`.
func TestJSONGoldenFile(t *testing.T) {
	got := goldenSuite(t, 4)
	path := filepath.Join("testdata", "golden_quick_seeds12.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("report differs from golden file (run with -update-golden after reviewing); first diff at: %s",
			firstDiff(want, got))
	}
}
