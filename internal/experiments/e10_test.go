package experiments

import (
	"strings"
	"testing"
)

func TestDeliveryScalingTable(t *testing.T) {
	tab := DeliveryScaling([]int{50, 200}, 2)
	if tab.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2", tab.NumRows())
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, col := range []string{"nodes", "scan", "grid", "speedup"} {
		if !strings.Contains(out, col) {
			t.Errorf("rendered table missing column %q:\n%s", col, out)
		}
	}
}
