package experiments

import (
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
)

// e11Shapes are the metro sweep's virtual-node grids: the quick variant
// keeps the golden suite fast, the full variant is the scale the O(1)
// region lookup and the allocation-free round loop were built for.
var e11Shapes = []struct {
	name       string
	cols, rows int
}{
	{"3x3", 3, 3},
	{"5x5", 5, 5},
	{"7x7", 7, 7},
}

var e11Desc = harness.Descriptor{
	ID:    "E11",
	Group: "E11",
	Title: "E11 — metro: emulation scale under heavy churn",
	Notes: "grid-indexed sharded delivery + parallel engine, managed leaders with failover; every vround one region's oldest replica departs (Leave / scheduled CrashAt / late CrashAt), leadership hands to the next-oldest, and a fresh device attaches and joins",
	Columns: []string{
		"vnodes", "devices", "vrounds", "churn events",
		"alive at end", "availability", "mean join latency (vrounds)", "joins", "resets",
	},
	Grid: func(quick bool) []harness.Params {
		shapes := e11Shapes
		vrounds := 30
		if quick {
			shapes = e11Shapes[:1]
			vrounds = 8
		}
		var grid []harness.Params
		for _, s := range shapes {
			grid = append(grid, harness.Params{
				Label: s.name,
				Ints:  map[string]int{"cols": s.cols, "rows": s.rows, "vrounds": vrounds},
			})
		}
		return grid
	},
	Run: metroCell,
}

func init() { harness.Register(e11Desc) }

// metroCell runs one metro deployment: a grid of virtual nodes, each
// bootstrapped with three replicas plus a staggered pinging client, driven
// through heavy churn — every virtual round the rotation picks a region,
// its oldest replica departs through one of the three departure paths
// (immediate Leave, a CrashAt scheduled mid-vround, and a CrashAt aimed at
// an already-past round, the silently-dropped case the engine now applies
// immediately), leadership hands to the next-oldest replica, and a fresh
// device attaches nearby and acquires state through the join protocol.
// Virtual nodes must stay available throughout (Section 4.2's progress
// condition at deployment scale): availability near 1 plus zero resets
// means state survived total replica turnover. Leaders are managed
// (fixedLeader with explicit failover) so the column measures churn, not
// the backoff manager's multi-region election contention — E6 covers the
// elected-leader churn story on a single region.
func metroCell(c *harness.Cell) []harness.Row {
	return metroRows(c, 0)
}

// metroRows runs one metro cell by stepping its Soak to completion (the
// checkpointable driver in soak.go is the single implementation of the
// churn load); the shard count exists for TestShardedEqualsSequential,
// which pins region-sharded runs (shards > 0) byte-identical to the
// single-medium cell under the metro churn load.
func metroRows(c *harness.Cell, shards int) []harness.Row {
	s := newMetroSoak(c, shards)
	for s.VRound() < s.VRounds() {
		s.StepVRound()
	}
	return s.Rows()
}

// MetroChurn is the legacy-style table entry point.
func MetroChurn(cols, rows, vrounds int) *metrics.Table {
	c := &harness.Cell{Seed: 1, Params: harness.Params{
		Ints: map[string]int{"cols": cols, "rows": rows, "vrounds": vrounds},
	}}
	return e11Desc.TableOf(metroCell(c))
}
