package experiments

import (
	"fmt"
	"sync"

	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// e11Shapes are the metro sweep's virtual-node grids: the quick variant
// keeps the golden suite fast, the full variant is the scale the O(1)
// region lookup and the allocation-free round loop were built for.
var e11Shapes = []struct {
	name       string
	cols, rows int
}{
	{"3x3", 3, 3},
	{"5x5", 5, 5},
	{"7x7", 7, 7},
}

var e11Desc = harness.Descriptor{
	ID:    "E11",
	Group: "E11",
	Title: "E11 — metro: emulation scale under heavy churn",
	Notes: "grid-indexed sharded delivery + parallel engine, managed leaders with failover; every vround one region's oldest replica departs (Leave / scheduled CrashAt / late CrashAt), leadership hands to the next-oldest, and a fresh device attaches and joins",
	Columns: []string{
		"vnodes", "devices", "vrounds", "churn events",
		"alive at end", "availability", "mean join latency (vrounds)", "joins", "resets",
	},
	Grid: func(quick bool) []harness.Params {
		shapes := e11Shapes
		vrounds := 30
		if quick {
			shapes = e11Shapes[:1]
			vrounds = 8
		}
		var grid []harness.Params
		for _, s := range shapes {
			grid = append(grid, harness.Params{
				Label: s.name,
				Ints:  map[string]int{"cols": s.cols, "rows": s.rows, "vrounds": vrounds},
			})
		}
		return grid
	},
	Run: metroCell,
}

func init() { harness.Register(e11Desc) }

// metroCell runs one metro deployment: a grid of virtual nodes, each
// bootstrapped with three replicas plus a staggered pinging client, driven
// through heavy churn — every virtual round the rotation picks a region,
// its oldest replica departs through one of the three departure paths
// (immediate Leave, a CrashAt scheduled mid-vround, and a CrashAt aimed at
// an already-past round, the silently-dropped case the engine now applies
// immediately), leadership hands to the next-oldest replica, and a fresh
// device attaches nearby and acquires state through the join protocol.
// Virtual nodes must stay available throughout (Section 4.2's progress
// condition at deployment scale): availability near 1 plus zero resets
// means state survived total replica turnover. Leaders are managed
// (fixedLeader with explicit failover) so the column measures churn, not
// the backoff manager's multi-region election contention — E6 covers the
// elected-leader churn story on a single region.
func metroCell(c *harness.Cell) []harness.Row {
	return metroRows(c, 0)
}

// metroRows runs one metro cell; the shard count exists for
// TestShardedEqualsSequential, which pins region-sharded runs (shards > 0)
// byte-identical to the single-medium cell under the metro churn load.
func metroRows(c *harness.Cell, shards int) []harness.Row {
	cols, rows, vrounds := c.Params.Int("cols"), c.Params.Int("rows"), c.Params.Int("vrounds")
	const replicasPer = 3
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	bed := newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: replicasPer,
		seed:        int64(cols*rows) + c.Base(),
		fixedLeader: true,
		parallel:    true,
		shards:      shards,
	})
	// One client per region, staggered so pings from neighboring regions
	// don't collide every client slot.
	for v, loc := range locs {
		v := v
		bed.eng.Attach(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1}, nil, func(env sim.Env) sim.Node {
			return bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%len(locs) != v {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}

	// Hooks fire from emulator Receive calls, which the parallel engine
	// fans out across workers: the counters need their own lock.
	var mu sync.Mutex
	var joinLatency metrics.Series
	joins, resets := 0, 0

	per := bed.dep.Timing().RoundsPerVRound()
	replicas := make([][]sim.NodeID, len(locs)) // per-region, oldest first
	for v := range locs {
		for i := 0; i < replicasPer; i++ {
			replicas[v] = append(replicas[v], sim.NodeID(v*replicasPer+i))
		}
	}
	churn := 0
	for vr := 0; vr < vrounds; vr++ {
		if vr > 0 {
			v := vr % len(locs)
			if reg := replicas[v]; len(reg) > 1 {
				oldest := reg[0]
				replicas[v] = reg[1:]
				// The departing replica is always the region's leader:
				// hand leadership to the next-oldest before it goes, the
				// failover a managed deployment performs.
				bed.setLeader(vi.VNodeID(v), replicas[v][0])
				switch churn % 3 {
				case 0:
					bed.eng.Leave(oldest)
				case 1:
					// Mid-vround crash: the replica dies between phases.
					bed.eng.CrashAt(oldest, bed.eng.Round()+sim.Round(per/2))
				case 2:
					// A crash scheduled for a round that already ran: the
					// engine applies it immediately instead of dropping it.
					bed.eng.CrashAt(oldest, bed.eng.Round()-1)
				}
				arrivedAt := vr
				newID := sim.NodeID(bed.eng.NumNodes())
				loc := locs[v]
				pos := geo.Point{
					X: loc.X + 0.4*float64(churn%4) - 0.6,
					Y: loc.Y - 0.35,
				}
				bed.attachEmulator(pos, false, vi.EmulatorHooks{
					OnJoin: func(_ vi.VNodeID, joinVR int) {
						mu.Lock()
						joins++
						joinLatency.AddInt(joinVR - arrivedAt)
						mu.Unlock()
					},
					OnReset: func(vi.VNodeID, int) {
						mu.Lock()
						resets++
						mu.Unlock()
					},
				})
				replicas[v] = append(replicas[v], newID)
				churn++
			}
		}
		bed.eng.Run(per)
	}
	c.CountRounds(bed.eng.Stats().Rounds)
	return []harness.Row{{
		harness.Int(len(locs)), harness.Int(bed.eng.NumNodes()), harness.Int(vrounds),
		harness.Int(churn), harness.Int(bed.eng.AliveCount()),
		harness.Float(bed.meanAvailability()), harness.Float(joinLatency.Mean()),
		harness.Int(joins), harness.Int(resets),
	}}
}

// MetroChurn is the legacy-style table entry point.
func MetroChurn(cols, rows, vrounds int) *metrics.Table {
	c := &harness.Cell{Seed: 1, Params: harness.Params{
		Ints: map[string]int{"cols": cols, "rows": rows, "vrounds": vrounds},
	}}
	return e11Desc.TableOf(metroCell(c))
}
