package experiments

import (
	"fmt"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// appBed wires a deployment with an arbitrary program and fixed leaders.
func appBed(locs []geo.Point, replicasPer int, program func(vi.VNodeID) vi.Program, seed int64) (*sim.Engine, *vi.Deployment) {
	leaders := make(map[vi.VNodeID]sim.NodeID, len(locs))
	for v := range locs {
		leaders[vi.VNodeID(v)] = sim.NodeID(v * replicasPer)
	}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     Radii,
		Program:   program,
		NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
			factory, _ := cm.NewFixed(leaders[v])
			return factory(env)
		},
	})
	if err != nil {
		panic(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}, Seed: seed})
	eng := sim.NewEngine(medium, sim.WithSeed(seed))
	for _, loc := range locs {
		for i := 0; i < replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.4, Y: loc.Y + 0.2}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return dep.NewEmulator(env, true)
			})
		}
	}
	return eng, dep
}

// RoutingLatency measures end-to-end delivery latency (in virtual rounds)
// over virtual-node chains of growing length — the application-level
// payoff of the infrastructure: latency grows with distance (each hop
// waits for the relay's scheduled slot), delivery stays reliable.
func RoutingLatency(chainLengths []int, packets int) *metrics.Table {
	t := metrics.NewTable("E9a — geographic routing over the virtual backbone",
		"chain length", "schedule s", "delivered", "mean latency (vrounds)")
	for _, hops := range chainLengths {
		locs := make([]geo.Point, hops)
		for i := range locs {
			locs[i] = geo.Point{X: 5 * float64(i)}
		}
		sched := vi.BuildSchedule(locs, Radii)
		eng, dep := appBed(locs, 2, apps.RoutedProgram(sched, locs), int64(hops))

		east := locs[len(locs)-1]
		sends := make(map[int]*vi.Message, packets)
		sendRound := make(map[string]int, packets)
		gap := 3 * sched.Len()
		for p := 0; p < packets; p++ {
			id := fmt.Sprintf("pkt-%d", p)
			vr := 2 + p*gap
			sends[vr] = apps.RouteSend(east, id, "payload")
			sendRound[id] = vr
		}
		sender := &apps.RouterClient{Sends: sends}
		receiver := &apps.RouterClient{}
		var lat metrics.Series
		recvRound := make(map[string]int)
		eng.Attach(geo.Point{X: -1, Y: -1}, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, sender)
		})
		eng.Attach(geo.Point{X: east.X + 1, Y: 1}, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, recordingClient{inner: receiver, seen: recvRound})
		})

		total := 2 + packets*gap + 8*sched.Len()*hops
		eng.Run(total * dep.Timing().RoundsPerVRound())

		for id, vr := range recvRound {
			if sent, ok := sendRound[id]; ok {
				lat.AddInt(vr - sent)
			}
		}
		t.AddRow(metrics.D(hops), metrics.D(sched.Len()),
			fmt.Sprintf("%d/%d", len(receiver.Received), packets), metrics.F(lat.Mean()))
	}
	t.Notes = "latency grows with hop count (each hop waits for its scheduled slot); delivery via redundant relays"
	return t
}

// recordingClient wraps a RouterClient to record the virtual round of each
// first delivery.
type recordingClient struct {
	inner *apps.RouterClient
	seen  map[string]int
}

// Step implements vi.ClientProgram.
func (c recordingClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	before := len(c.inner.Received)
	out := c.inner.Step(vround, recv, collision)
	for _, p := range c.inner.Received[before:] {
		if _, ok := c.seen[p.ID]; !ok {
			c.seen[p.ID] = vround
		}
	}
	return out
}

// LockThroughput measures completed lock cycles per 100 virtual rounds as
// client count grows — coordination throughput of a virtual-node arbiter.
func LockThroughput(clientCounts []int, vrounds int) *metrics.Table {
	t := metrics.NewTable("E9b — mutual exclusion throughput vs clients",
		"clients", "completed cycles", "cycles/100 vrounds", "mutex violations")
	for _, n := range clientCounts {
		locs := []geo.Point{{X: 0, Y: 0}}
		sched := vi.BuildSchedule(locs, Radii)
		eng, dep := appBed(locs, 3, apps.LockProgram(sched), int64(n))

		clients := make([]*apps.LockClient, n)
		for i := range clients {
			clients[i] = &apps.LockClient{
				Name:       fmt.Sprintf("c%02d", i),
				HoldRounds: 2,
				Cycles:     1 << 20, // effectively unbounded
			}
			angle := float64(i) / float64(n)
			pos := geo.Point{X: 1.5 * (0.5 - angle), Y: 1.2 - 2.4*angle}
			c := clients[i]
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return dep.NewClient(env, c)
			})
		}
		eng.Run(vrounds * dep.Timing().RoundsPerVRound())

		total := 0
		claimed := make(map[int]string)
		violations := 0
		for _, c := range clients {
			total += c.Completed()
			for _, vr := range c.CriticalRounds {
				if other, ok := claimed[vr]; ok && other != c.Name {
					violations++
				}
				claimed[vr] = c.Name
			}
		}
		t.AddRow(metrics.D(n), metrics.D(total),
			metrics.F(float64(total)*100/float64(vrounds)), metrics.D(violations))
	}
	t.Notes = "mutex violations must be 0; throughput bounded by client-channel contention"
	return t
}
