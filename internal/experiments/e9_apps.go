package experiments

import (
	"fmt"
	"sort"

	"vinfra/internal/apps"
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

var e9aDesc = harness.Descriptor{
	ID:      "E9a",
	Group:   "E9",
	Title:   "E9a — geographic routing over the virtual backbone",
	Notes:   "latency grows with hop count (each hop waits for its scheduled slot); delivery via redundant relays",
	Columns: []string{"chain length", "schedule s", "delivered", "mean latency (vrounds)"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, hops := range sweep(quick, []int{2, 3, 5, 8}, []int{2, 4}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("hops=%d", hops),
				Ints:  map[string]int{"hops": hops, "packets": 4},
			})
		}
		return grid
	},
	Run: routingLatencyCell,
}

var e9bDesc = harness.Descriptor{
	ID:      "E9b",
	Group:   "E9",
	Title:   "E9b — mutual exclusion throughput vs clients",
	Notes:   "mutex violations must be 0; throughput bounded by client-channel contention",
	Columns: []string{"clients", "completed cycles", "cycles/100 vrounds", "mutex violations"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, n := range sweep(quick, []int{1, 2, 4, 8}, []int{2, 4}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("clients=%d", n),
				Ints:  map[string]int{"clients": n, "vrounds": suiteVRounds(quick) * 3},
			})
		}
		return grid
	},
	Run: lockThroughputCell,
}

func init() {
	harness.Register(e9aDesc)
	harness.Register(e9bDesc)
}

// appBed wires a deployment with an arbitrary program and fixed leaders.
func appBed(locs []geo.Point, replicasPer int, program func(vi.VNodeID) vi.Program, seed int64) (*sim.Engine, *vi.Deployment) {
	leaders := make(map[vi.VNodeID]sim.NodeID, len(locs))
	for v := range locs {
		leaders[vi.VNodeID(v)] = sim.NodeID(v * replicasPer)
	}
	dep, err := vi.NewDeployment(vi.DeploymentConfig{
		Locations: locs,
		Radii:     Radii,
		Program:   program,
		NewCM: func(v vi.VNodeID, env sim.Env) cm.Manager {
			factory, _ := cm.NewFixed(leaders[v])
			return factory(env)
		},
	})
	if err != nil {
		panic(err)
	}
	medium := radio.MustMedium(radio.Config{Radii: Radii, Detector: cd.AC{}, Seed: seed})
	eng := sim.NewEngine(medium, sim.WithSeed(seed))
	for _, loc := range locs {
		for i := 0; i < replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.4, Y: loc.Y + 0.2}
			eng.Attach(pos, nil, func(env sim.Env) sim.Node {
				return dep.NewEmulator(env, true)
			})
		}
	}
	return eng, dep
}

// routingLatencyCell measures end-to-end delivery latency (in virtual
// rounds) over one virtual-node chain length — the application-level payoff
// of the infrastructure: latency grows with distance (each hop waits for
// the relay's scheduled slot), delivery stays reliable.
func routingLatencyCell(c *harness.Cell) []harness.Row {
	hops, packets := c.Params.Int("hops"), c.Params.Int("packets")
	locs := make([]geo.Point, hops)
	for i := range locs {
		locs[i] = geo.Point{X: 5 * float64(i)}
	}
	sched := vi.BuildSchedule(locs, Radii)
	eng, dep := appBed(locs, 2, apps.RoutedProgram(sched, locs), int64(hops)+c.Base())

	east := locs[len(locs)-1]
	sends := make(map[int]*vi.Message, packets)
	sendRound := make(map[string]int, packets)
	gap := 3 * sched.Len()
	for p := 0; p < packets; p++ {
		id := fmt.Sprintf("pkt-%d", p)
		vr := 2 + p*gap
		sends[vr] = apps.RouteSend(east, id, "payload")
		sendRound[id] = vr
	}
	sender := &apps.RouterClient{Sends: sends}
	receiver := &apps.RouterClient{}
	var lat metrics.Series
	recvRound := make(map[string]int)
	eng.Attach(geo.Point{X: -1, Y: -1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, sender)
	})
	eng.Attach(geo.Point{X: east.X + 1, Y: 1}, nil, func(env sim.Env) sim.Node {
		return dep.NewClient(env, recordingClient{inner: receiver, seen: recvRound})
	})

	total := 2 + packets*gap + 8*sched.Len()*hops
	eng.Run(total * dep.Timing().RoundsPerVRound())
	c.CountRounds(eng.Stats().Rounds)

	// Iterate receptions in sorted packet-ID order: map order is
	// randomized, and the mean's float summation order must be
	// deterministic for byte-identical reports.
	ids := make([]string, 0, len(recvRound))
	for id := range recvRound {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if sent, ok := sendRound[id]; ok {
			lat.AddInt(recvRound[id] - sent)
		}
	}
	return []harness.Row{{
		harness.Int(hops), harness.Int(sched.Len()),
		harness.FloatText(fmt.Sprintf("%d/%d", len(receiver.Received), packets),
			float64(len(receiver.Received))/float64(packets)),
		harness.Float(lat.Mean()),
	}}
}

// RoutingLatency is the legacy table entry point.
func RoutingLatency(chainLengths []int, packets int) *metrics.Table {
	var rows []harness.Row
	for _, hops := range chainLengths {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"hops": hops, "packets": packets},
		}}
		rows = append(rows, routingLatencyCell(c)...)
	}
	return e9aDesc.TableOf(rows)
}

// recordingClient wraps a RouterClient to record the virtual round of each
// first delivery.
type recordingClient struct {
	inner *apps.RouterClient
	seen  map[string]int
}

// Step implements vi.ClientProgram.
func (c recordingClient) Step(vround int, recv []vi.Message, collision bool) *vi.Message {
	before := len(c.inner.Received)
	out := c.inner.Step(vround, recv, collision)
	for _, p := range c.inner.Received[before:] {
		if _, ok := c.seen[p.ID]; !ok {
			c.seen[p.ID] = vround
		}
	}
	return out
}

// lockThroughputCell measures completed lock cycles per 100 virtual rounds
// for one client count — coordination throughput of a virtual-node arbiter.
func lockThroughputCell(c *harness.Cell) []harness.Row {
	n, vrounds := c.Params.Int("clients"), c.Params.Int("vrounds")
	locs := []geo.Point{{X: 0, Y: 0}}
	sched := vi.BuildSchedule(locs, Radii)
	eng, dep := appBed(locs, 3, apps.LockProgram(sched), int64(n)+c.Base())

	clients := make([]*apps.LockClient, n)
	for i := range clients {
		clients[i] = &apps.LockClient{
			Name:       fmt.Sprintf("c%02d", i),
			HoldRounds: 2,
			Cycles:     1 << 20, // effectively unbounded
		}
		angle := float64(i) / float64(n)
		pos := geo.Point{X: 1.5 * (0.5 - angle), Y: 1.2 - 2.4*angle}
		cli := clients[i]
		eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			return dep.NewClient(env, cli)
		})
	}
	eng.Run(vrounds * dep.Timing().RoundsPerVRound())
	c.CountRounds(eng.Stats().Rounds)

	total := 0
	claimed := make(map[int]string)
	violations := 0
	for _, cli := range clients {
		total += cli.Completed()
		for _, vr := range cli.CriticalRounds {
			if other, ok := claimed[vr]; ok && other != cli.Name {
				violations++
			}
			claimed[vr] = cli.Name
		}
	}
	return []harness.Row{{
		harness.Int(n), harness.Int(total),
		harness.Float(float64(total) * 100 / float64(vrounds)), harness.Int(violations),
	}}
}

// LockThroughput is the legacy table entry point.
func LockThroughput(clientCounts []int, vrounds int) *metrics.Table {
	var rows []harness.Row
	for _, n := range clientCounts {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"clients": n, "vrounds": vrounds},
		}}
		rows = append(rows, lockThroughputCell(c)...)
	}
	return e9bDesc.TableOf(rows)
}
