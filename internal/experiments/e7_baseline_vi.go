package experiments

import (
	"fmt"

	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
)

var e7aDesc = harness.Descriptor{
	ID:      "E7a",
	Group:   "E7",
	Title:   "E7 — virtual round cost: CHAP emulation vs majority-RSM emulation",
	Notes:   "CHAP constant (s+12); RSM grows as n+4 — crossover where n+4 exceeds s+12, and RSM additionally requires known membership and unique IDs",
	Columns: []string{"replicas", "CHAP rounds/vround", "RSM rounds/vround", "RSM/CHAP"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, n := range sweep(quick, []int{3, 7, 11, 15, 31}, []int{3, 15}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("replicas=%d", n),
				Ints:  map[string]int{"replicas": n, "vrounds": suiteVRounds(quick) / 2},
			})
		}
		return grid
	},
	Run: baselineVICell,
}

var e7bDesc = harness.Descriptor{
	ID:      "E7b",
	Group:   "E7",
	Title:   "E7b — join state-transfer size vs instances since last checkpoint",
	Notes:   "grows with un-checkpointed suffix; green instances bound it (Section 3.5)",
	Columns: []string{"instances since green", "join-ack bytes"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, gap := range []int{0, 4, 16, 64} {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("gap=%d", gap),
				Ints:  map[string]int{"gap": gap},
			})
		}
		return grid
	},
	Run: stateTransferCell,
}

func init() {
	harness.Register(e7aDesc)
	harness.Register(e7bDesc)
}

// baselineVICell compares the cost of one virtual round under the paper's
// CHAP-based emulation against a hypothetical emulation built on the
// majority-RSM baseline, for one replica population. CHAP's cost is the
// constant s+12 regardless of replicas; an RSM-based emulation needs the
// two message-sub-protocol phases plus one Θ(n) majority decision per
// virtual round (Section 1.5's "unacceptable channel contention and long
// delays").
func baselineVICell(c *harness.Cell) []harness.Row {
	n, vrounds := c.Params.Int("replicas"), c.Params.Int("vrounds")
	bed := newVIBed(viBedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: n,
		fixedLeader: true,
		seed:        c.Seed,
	})
	bed.runVRounds(vrounds)
	c.CountRounds(bed.eng.Stats().Rounds)
	chap := float64(bed.eng.Stats().Rounds) / float64(vrounds)

	// RSM-based virtual round: client + vn phases, then one majority
	// decision over the same radio channel.
	rsmRounds, _, rsmSimRounds, rsmBytes := rsmRun(n, vrounds, nil, int64(n)+c.Base())
	c.CountRounds(rsmSimRounds)
	c.CountBytes(bed.eng.Stats().TotalBytes + rsmBytes)
	rsm := 2 + rsmRounds
	return []harness.Row{{
		harness.Int(n), harness.Float(chap), harness.Float(rsm), harness.Float(rsm / chap),
	}}
}

// BaselineVIComparison is the legacy table entry point.
func BaselineVIComparison(replicaCounts []int, vrounds int) *metrics.Table {
	var rows []harness.Row
	for _, n := range replicaCounts {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"replicas": n, "vrounds": vrounds},
		}}
		rows = append(rows, baselineVICell(c)...)
	}
	return e7aDesc.TableOf(rows)
}

// stateTransferCell measures the join-ack message size as a function of
// the time since the last green (checkpoint) instance — the state-transfer
// cost the paper's open question (3) wants reduced. With regular green
// rounds the replica checkpoint keeps join-acks small.
func stateTransferCell(c *harness.Cell) []harness.Row {
	gap := c.Params.Int("gap")
	core := cha.NewCore()
	// One green instance, then `gap` yellow (undecided) instances that
	// cannot be garbage collected.
	b := core.Begin(1, cha.V("0123456789"))
	core.ObserveBallots([]cha.Ballot{b}, false)
	core.ObserveVeto1(false, false)
	out := core.ObserveVeto2(false, false)
	core.GC(out.Instance)
	for k := cha.Instance(2); k <= cha.Instance(1+gap); k++ {
		bb := core.Begin(k, cha.V("0123456789"))
		core.ObserveBallots([]cha.Ballot{bb}, false)
		core.ObserveVeto1(false, false)
		core.ObserveVeto2(false, true) // yellow: good but undecided
	}
	c.CountRounds((1 + gap) * cha.RoundsPerInstance)
	snap := core.Snapshot()
	ackSize := 8 + 16 + snap.WireSize() // StateFloor + small state + snapshot
	return []harness.Row{{harness.Int(gap), harness.Int(ackSize)}}
}

// StateTransferCost is the legacy table entry point.
func StateTransferCost(gapLengths []int) *metrics.Table {
	var rows []harness.Row
	for _, gap := range gapLengths {
		c := &harness.Cell{Seed: 1, Params: harness.Params{Ints: map[string]int{"gap": gap}}}
		rows = append(rows, stateTransferCell(c)...)
	}
	return e7bDesc.TableOf(rows)
}
