package experiments

import (
	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
)

// BaselineVIComparison compares the cost of one virtual round under the
// paper's CHAP-based emulation against a hypothetical emulation built on
// the majority-RSM baseline, as the replica population grows. CHAP's cost
// is the constant s+12 regardless of replicas; an RSM-based emulation
// needs the two message-sub-protocol phases plus one Θ(n) majority decision
// per virtual round (Section 1.5's "unacceptable channel contention and
// long delays").
func BaselineVIComparison(replicaCounts []int, vrounds int) *metrics.Table {
	t := metrics.NewTable("E7 — virtual round cost: CHAP emulation vs majority-RSM emulation",
		"replicas", "CHAP rounds/vround", "RSM rounds/vround", "RSM/CHAP")
	for _, n := range replicaCounts {
		bed := newVIBed(viBedOpts{
			locs:        []geo.Point{{X: 0, Y: 0}},
			replicasPer: n,
			fixedLeader: true,
		})
		bed.runVRounds(vrounds)
		chap := float64(bed.eng.Stats().Rounds) / float64(vrounds)

		// RSM-based virtual round: client + vn phases, then one majority
		// decision over the same radio channel.
		rsmRounds, _ := rsmRoundsPerDecision(n, vrounds, nil, int64(n))
		rsm := 2 + rsmRounds
		t.AddRow(metrics.D(n), metrics.F(chap), metrics.F(rsm), metrics.F(rsm/chap))
	}
	t.Notes = "CHAP constant (s+12); RSM grows as n+4 — crossover where n+4 exceeds s+12, and RSM additionally requires known membership and unique IDs"
	return t
}

// StateTransferCost measures the join-ack message size as a function of
// the time since the last green (checkpoint) instance — the state-transfer
// cost the paper's open question (3) wants reduced. With regular green
// rounds the replica checkpoint keeps join-acks small.
func StateTransferCost(gapLengths []int) *metrics.Table {
	t := metrics.NewTable("E7b — join state-transfer size vs instances since last checkpoint",
		"instances since green", "join-ack bytes")
	for _, gap := range gapLengths {
		core := cha.NewCore()
		// One green instance, then `gap` yellow (undecided) instances that
		// cannot be garbage collected.
		b := core.Begin(1, "0123456789")
		core.ObserveBallots([]cha.Ballot{b}, false)
		core.ObserveVeto1(false, false)
		out := core.ObserveVeto2(false, false)
		core.GC(out.Instance)
		for k := cha.Instance(2); k <= cha.Instance(1+gap); k++ {
			bb := core.Begin(k, "0123456789")
			core.ObserveBallots([]cha.Ballot{bb}, false)
			core.ObserveVeto1(false, false)
			core.ObserveVeto2(false, true) // yellow: good but undecided
		}
		snap := core.Snapshot()
		ackSize := 8 + 16 + snap.WireSize() // StateFloor + small state + snapshot
		t.AddRow(metrics.D(gap), metrics.D(ackSize))
	}
	t.Notes = "grows with un-checkpointed suffix; green instances bound it (Section 3.5)"
	return t
}
