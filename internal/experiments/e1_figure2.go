package experiments

import (
	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
)

var e1Desc = harness.Descriptor{
	ID:      "E1",
	Group:   "E1",
	Title:   "E1 — Figure 2: collision response per phase (observer node)",
	Notes:   "rows staged with a scripted adversary; 'matches paper' compares against Figure 2 verbatim",
	Columns: []string{"ballot", "veto-1", "veto-2", "color", "output", "matches paper"},
	Grid: func(quick bool) []harness.Params {
		return []harness.Params{{Label: "figure2"}}
	},
	Run: figure2Rows,
}

func init() { harness.Register(e1Desc) }

// Figure2Row is one reproduced row of the paper's Figure 2: the phases in
// which the observer node correctly received the round's message, the color
// it assigned, and whether it output a history.
type Figure2Row struct {
	Ballot, Veto1, Veto2 bool // check marks (true = received correctly)
	Color                cha.Color
	OutputsHistory       bool
}

// Figure2Expected is the table exactly as printed in the paper.
var Figure2Expected = []Figure2Row{
	{Ballot: true, Veto1: true, Veto2: true, Color: cha.Green, OutputsHistory: true},
	{Ballot: true, Veto1: true, Veto2: false, Color: cha.Yellow, OutputsHistory: false},
	{Ballot: true, Veto1: false, Veto2: false, Color: cha.Orange, OutputsHistory: false},
	{Ballot: false, Veto1: false, Veto2: false, Color: cha.Red, OutputsHistory: false},
}

// RunFigure2 reproduces Figure 2 by staging each loss pattern with a
// scripted adversary against a two-node cluster (leader + observer) and
// recording the observer's final color and output for the instance.
func RunFigure2() []Figure2Row {
	const observer = 1
	stage := func(script func(*radio.Script)) Figure2Row {
		adv := &radio.Script{}
		script(adv)
		var lastOut cha.Output
		c := newCluster(clusterOpts{
			n:         2,
			detector:  cd.EventuallyAC{Racc: 1000},
			adversary: adv,
		})
		// Re-wire the observer's output hook to capture its single output.
		// (Recorder already captures it; read back through the replica.)
		c.runInstances(1)
		obs := c.replicas[observer]
		lastOut = cha.Output{
			Instance: 1,
			Color:    obs.Core().Status(1),
		}
		if lastOut.Color == cha.Green {
			lastOut.History = obs.Core().CalculateHistory()
		}
		row := Figure2Row{
			Color:          lastOut.Color,
			OutputsHistory: lastOut.History != nil,
		}
		// Reconstruct the check marks from the staged scenario.
		switch lastOut.Color {
		case cha.Green:
			row.Ballot, row.Veto1, row.Veto2 = true, true, true
		case cha.Yellow:
			row.Ballot, row.Veto1 = true, true
		case cha.Orange:
			row.Ballot = true
		}
		return row
	}

	return []Figure2Row{
		// ✓✓✓: clean round.
		stage(func(*radio.Script) {}),
		// ✓✓X: spurious collision at the observer in veto-2 (round 2).
		stage(func(s *radio.Script) { s.Collide(2, observer) }),
		// ✓XX: spurious collision at the observer in veto-1 (round 1);
		// being orange, it vetoes in veto-2 itself.
		stage(func(s *radio.Script) { s.Collide(1, observer) }),
		// X X X: the observer's ballot slot (round 0) is silent —
		// DropAll loses every message without signalling a collision.
		// Figure 1 lines 29–32 treat an empty ballot slot exactly like a
		// collided one: the instance is designated red. Red sits at the
		// bottom of the downgrade-only color lattice, so the veto phases
		// cannot matter to the observer's own color (it still broadcasts
		// a veto-2 itself, protecting the rest of the cluster), and it
		// outputs bottom. The check-mark switch above deliberately has no
		// Red case: red means no phase was received correctly, which is
		// the paper's fourth row — all crosses, red, bottom.
		stage(func(s *radio.Script) { s.DropAll(0, observer) }),
	}
}

// figure2Rows is the harness cell: Figure 2 is a scripted (seed-free)
// scenario, so every seed reproduces the same four rows.
func figure2Rows(c *harness.Cell) []harness.Row {
	mark := func(b bool) string {
		if b {
			return "ok"
		}
		return "X"
	}
	out := func(b bool) string {
		if b {
			return "history"
		}
		return "bottom"
	}
	rows := RunFigure2()
	c.CountRounds(len(rows) * cha.RoundsPerInstance)
	typed := make([]harness.Row, len(rows))
	for i, r := range rows {
		typed[i] = harness.Row{
			harness.Str(mark(r.Ballot)),
			harness.Str(mark(r.Veto1)),
			harness.Str(mark(r.Veto2)),
			harness.Str(r.Color.String()),
			harness.Str(out(r.OutputsHistory)),
			harness.Bool(r == Figure2Expected[i]),
		}
	}
	return typed
}

// Figure2Table renders the reproduced Figure 2 next to the paper's values.
func Figure2Table() *metrics.Table {
	return e1Desc.TableOf(figure2Rows(&harness.Cell{Seed: 1}))
}
