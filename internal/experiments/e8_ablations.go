package experiments

import (
	"fmt"

	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// e8Detectors are the detector-class ablation cases.
var e8Detectors = []struct {
	name string
	det  func(rcf int) cd.Detector
}{
	{"AC (always accurate)", func(int) cd.Detector { return cd.AC{} }},
	{"eventually-AC (paper)", func(rcf int) cd.Detector {
		return cd.EventuallyAC{Racc: sim.Round(rcf), FalsePositiveRate: 0.2}
	}},
	{"complete, never accurate", func(int) cd.Detector { return cd.Complete{FalsePositiveRate: 0.2} }},
	{"null (no detection)", func(int) cd.Detector { return cd.Null{} }},
}

var e8aDesc = harness.Descriptor{
	ID:      "E8a",
	Group:   "E8",
	Title:   "E8a — collision detector ablation (loss p=0.4 before r_cf=90, then clean)",
	Notes:   "null detector violates completeness -> safety breaks; never-accurate detector keeps safety but hurts liveness",
	Columns: []string{"detector", "decided rate", "agreement viol", "broken chains", "liveness"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for i, tc := range e8Detectors {
			grid = append(grid, harness.Params{
				Label: tc.name,
				Ints:  map[string]int{"case": i, "instances": suiteInstances(quick) / 2},
			})
		}
		return grid
	},
	Run: detectorAblationCell,
}

var e8bDesc = harness.Descriptor{
	ID:      "E8b",
	Group:   "E8",
	Title:   "E8b — contention manager ablation (clean channel)",
	Notes:   "oracle stabilizes at instance 1; backoff stabilizes after leader election settles",
	Columns: []string{"contention manager", "n", "stabilization k_st", "decided rate"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, n := range []int{2, 4, 8} {
			for _, mgr := range []string{"oracle", "backoff"} {
				grid = append(grid, harness.Params{
					Label: fmt.Sprintf("%s n=%d", mgr, n),
					Ints:  map[string]int{"n": n, "instances": suiteInstances(quick)},
					Strs:  map[string]string{"cm": mgr},
				})
			}
		}
		return grid
	},
	Run: cmAblationCell,
}

var e8cDesc = harness.Descriptor{
	ID:      "E8c",
	Group:   "E8",
	Title:   "E8c — Section 3.5 garbage collection: retained entries vs execution length",
	Notes:   "plain grows linearly; checkpointed stays constant while instances go green",
	Columns: []string{"L (instances)", "plain retained", "checkpointed retained", "checkpoint digest agreement"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, l := range sweep(quick, []int{50, 200, 800}, []int{50, 200}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("L=%d", l),
				Ints:  map[string]int{"L": l},
			})
		}
		return grid
	},
	Run: checkpointAblationCell,
}

func init() {
	harness.Register(e8aDesc)
	harness.Register(e8bDesc)
	harness.Register(e8cDesc)
}

// detectorAblationCell compares one collision detector class under
// sustained loss: the paper requires completeness for safety and eventual
// accuracy for liveness; the table shows what breaks when each is removed.
func detectorAblationCell(c *harness.Cell) []harness.Row {
	tc := e8Detectors[c.Params.Int("case")]
	instances := c.Params.Int("instances")
	const rcf = 90
	seed := int64(c.Params.Int("case")*13+3) + c.Base()
	agr, broken := 0, 0
	var decided metrics.Series
	live := 0
	const runs = 5
	for run := 0; run < runs; run++ {
		cl := newCluster(clusterOpts{
			n:         4,
			detector:  tc.det(rcf),
			adversary: radio.NewRandomLoss(0.4, 0.1, rcf, seed+int64(run)*101),
			seed:      seed + int64(run),
		})
		cl.runInstances(instances)
		c.CountRounds(cl.eng.Stats().Rounds)
		rep := cl.rec.Report()
		agr += rep.AgreementViolations
		decided.Add(rep.DecidedRate)
		if rep.LivenessOK {
			live++
		}
		for _, r := range cl.replicas {
			broken += r.Core().BrokenChains
		}
	}
	liveness := "ok"
	if live < runs {
		liveness = "degraded"
	}
	return []harness.Row{{
		harness.Str(tc.name), harness.Float(decided.Mean()), harness.Int(agr),
		harness.Int(broken), harness.Str(liveness),
	}}
}

// DetectorAblation is the legacy table entry point.
func DetectorAblation(instances int) *metrics.Table {
	var rows []harness.Row
	for i := range e8Detectors {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"case": i, "instances": instances},
		}}
		rows = append(rows, detectorAblationCell(c)...)
	}
	return e8aDesc.TableOf(rows)
}

// cmAblationCell compares contention managers at one population size: the
// oracle gives the best-case stabilization; randomized backoff pays an
// election delay but needs no global knowledge (Property 3's
// "eventually").
func cmAblationCell(c *harness.Cell) []harness.Row {
	n, instances, mgr := c.Params.Int("n"), c.Params.Int("instances"), c.Params.Str("cm")
	var factory cm.Factory
	if mgr == "oracle" {
		factory, _ = cm.NewFixed(0)
	} else {
		factory = cm.NewBackoff(cm.BackoffConfig{})
	}
	cl := newCluster(clusterOpts{n: n, cmFactory: factory, seed: int64(n) + c.Base()})
	cl.runInstances(instances)
	c.CountRounds(cl.eng.Stats().Rounds)
	rep := cl.rec.Report()
	stab := harness.Str("-")
	if rep.LivenessOK {
		stab = harness.Int(int(rep.Stabilization))
	}
	return []harness.Row{{
		harness.Str(mgr), harness.Int(n), stab, harness.Float(rep.DecidedRate),
	}}
}

// CMAblation is the legacy table entry point.
func CMAblation(instances int) *metrics.Table {
	var rows []harness.Row
	for _, n := range []int{2, 4, 8} {
		for _, mgr := range []string{"oracle", "backoff"} {
			c := &harness.Cell{Seed: 1, Params: harness.Params{
				Ints: map[string]int{"n": n, "instances": instances},
				Strs: map[string]string{"cm": mgr},
			}}
			rows = append(rows, cmAblationCell(c)...)
		}
	}
	return e8bDesc.TableOf(rows)
}

// checkpointAblationCell compares local space usage of plain CHAP against
// the checkpointed variant of Section 3.5 for one execution length.
func checkpointAblationCell(c *harness.Cell) []harness.Row {
	l := c.Params.Int("L")
	seed := 2 + c.Base()
	plain := newCluster(clusterOpts{n: 3, seed: seed})
	plain.runInstances(l)
	c.CountRounds(plain.eng.Stats().Rounds)
	plainMax := 0
	for _, r := range plain.replicas {
		if got := r.Core().Retained(); got > plainMax {
			plainMax = got
		}
	}

	ckpt := newCluster(clusterOpts{n: 3, seed: seed, checkpoint: true})
	ckpt.runInstances(l)
	c.CountRounds(ckpt.eng.Stats().Rounds)
	ckptMax := 0
	agree := true
	first := ckpt.replicas[0].Checkpoint()
	for _, r := range ckpt.replicas {
		if got := r.Core().Retained(); got > ckptMax {
			ckptMax = got
		}
		if r.Checkpoint() != first {
			agree = false
		}
	}
	return []harness.Row{{
		harness.Int(l), harness.Int(plainMax), harness.Int(ckptMax), harness.Bool(agree),
	}}
}

// CheckpointAblation is the legacy table entry point.
func CheckpointAblation(lengths []int) *metrics.Table {
	var rows []harness.Row
	for _, l := range lengths {
		c := &harness.Cell{Seed: 1, Params: harness.Params{Ints: map[string]int{"L": l}}}
		rows = append(rows, checkpointAblationCell(c)...)
	}
	return e8cDesc.TableOf(rows)
}
