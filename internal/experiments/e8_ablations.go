package experiments

import (
	"vinfra/internal/cd"
	"vinfra/internal/cm"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
)

// DetectorAblation compares collision detector classes under sustained
// loss: the paper requires completeness for safety and eventual accuracy
// for liveness; this table shows what breaks when each is removed.
func DetectorAblation(instances int) *metrics.Table {
	t := metrics.NewTable("E8a — collision detector ablation (loss p=0.4 before r_cf=90, then clean)",
		"detector", "decided rate", "agreement viol", "broken chains", "liveness")
	const rcf = 90
	cases := []struct {
		name string
		det  cd.Detector
	}{
		{"AC (always accurate)", cd.AC{}},
		{"eventually-AC (paper)", cd.EventuallyAC{Racc: rcf, FalsePositiveRate: 0.2}},
		{"complete, never accurate", cd.Complete{FalsePositiveRate: 0.2}},
		{"null (no detection)", cd.Null{}},
	}
	for i, tc := range cases {
		seed := int64(i*13 + 3)
		agr, broken := 0, 0
		var decided metrics.Series
		live := 0
		const runs = 5
		for run := 0; run < runs; run++ {
			c := newCluster(clusterOpts{
				n:         4,
				detector:  tc.det,
				adversary: radio.NewRandomLoss(0.4, 0.1, rcf, seed+int64(run)*101),
				seed:      seed + int64(run),
			})
			c.runInstances(instances)
			rep := c.rec.Report()
			agr += rep.AgreementViolations
			decided.Add(rep.DecidedRate)
			if rep.LivenessOK {
				live++
			}
			for _, r := range c.replicas {
				broken += r.Core().BrokenChains
			}
		}
		liveness := "ok"
		if live < runs {
			liveness = "degraded"
		}
		t.AddRow(tc.name, metrics.F(decided.Mean()), metrics.D(agr), metrics.D(broken), liveness)
	}
	t.Notes = "null detector violates completeness -> safety breaks; never-accurate detector keeps safety but hurts liveness"
	return t
}

// CMAblation compares contention managers: the oracle gives the best-case
// stabilization; randomized backoff pays an election delay but needs no
// global knowledge (Property 3's "eventually").
func CMAblation(instances int) *metrics.Table {
	t := metrics.NewTable("E8b — contention manager ablation (clean channel)",
		"contention manager", "n", "stabilization k_st", "decided rate")
	for _, n := range []int{2, 4, 8} {
		for _, mgr := range []string{"oracle", "backoff"} {
			var factory cm.Factory
			if mgr == "oracle" {
				factory, _ = cm.NewFixed(0)
			} else {
				factory = cm.NewBackoff(cm.BackoffConfig{})
			}
			c := newCluster(clusterOpts{n: n, cmFactory: factory, seed: int64(n)})
			c.runInstances(instances)
			rep := c.rec.Report()
			stab := "-"
			if rep.LivenessOK {
				stab = metrics.D(int(rep.Stabilization))
			}
			t.AddRow(mgr, metrics.D(n), stab, metrics.F(rep.DecidedRate))
		}
	}
	t.Notes = "oracle stabilizes at instance 1; backoff stabilizes after leader election settles"
	return t
}

// CheckpointAblation compares local space usage of plain CHAP against the
// checkpointed variant of Section 3.5 over a long execution.
func CheckpointAblation(lengths []int) *metrics.Table {
	t := metrics.NewTable("E8c — Section 3.5 garbage collection: retained entries vs execution length",
		"L (instances)", "plain retained", "checkpointed retained", "checkpoint digest agreement")
	for _, l := range lengths {
		plain := newCluster(clusterOpts{n: 3, seed: 2})
		plain.runInstances(l)
		plainMax := 0
		for _, r := range plain.replicas {
			if got := r.Core().Retained(); got > plainMax {
				plainMax = got
			}
		}

		ckpt := newCluster(clusterOpts{n: 3, seed: 2, checkpoint: true})
		ckpt.runInstances(l)
		ckptMax := 0
		agree := true
		first := ckpt.replicas[0].Checkpoint()
		for _, r := range ckpt.replicas {
			if got := r.Core().Retained(); got > ckptMax {
				ckptMax = got
			}
			if r.Checkpoint() != first {
				agree = false
			}
		}
		t.AddRow(metrics.D(l), metrics.D(plainMax), metrics.D(ckptMax), metrics.B(agree))
	}
	t.Notes = "plain grows linearly; checkpointed stays constant while instances go green"
	return t
}
