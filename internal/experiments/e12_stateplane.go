package experiments

import (
	"fmt"

	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// e12Shapes are the state-plane sweep's virtual-node grids: 9, 25 and 49
// virtual nodes, the scales the byte-oriented state plane (internal/wire
// proposals, states and join-acks replacing the string+gob stack) is
// measured at.
var e12Shapes = []struct {
	name       string
	cols, rows int
}{
	{"3x3", 3, 3},
	{"5x5", 5, 5},
	{"7x7", 7, 7},
}

var e12Desc = harness.Descriptor{
	ID:    "E12",
	Group: "E12",
	Title: "E12 — state plane: emulation cost with the wire codec",
	Notes: "per-virtual-round emulation cost at 9/25/49 virtual nodes on the parallel grid stack; wire bytes are measured sim.MessageSize totals (exact encodings), perf JSON carries rounds/sec for the before/after gate",
	Columns: []string{
		"vnodes", "devices", "vrounds", "schedule s", "rounds/vround",
		"wire B/vround", "max msg B", "availability",
	},
	Grid: func(quick bool) []harness.Params {
		shapes := e12Shapes
		vrounds := 20
		if quick {
			shapes = e12Shapes[:1]
			vrounds = 6
		}
		var grid []harness.Params
		for _, s := range shapes {
			grid = append(grid, harness.Params{
				Label: s.name,
				Ints:  map[string]int{"cols": s.cols, "rows": s.rows, "vrounds": vrounds},
			})
		}
		return grid
	},
	Run: statePlaneCell,
}

func init() { harness.Register(e12Desc) }

// statePlaneCell measures the steady-state emulation cost of one grid
// deployment: every region has three bootstrapped replicas plus one
// staggered pinging client, and the whole stack (grid-indexed sharded
// delivery, parallel engine, wire-codec state plane) runs vrounds virtual
// rounds. The deterministic columns pin the protocol-level cost — radio
// rounds per virtual round (s+12) and measured wire bytes per virtual
// round — while the perf sample (rounds/sec, allocs) carries the
// machine-level cost that BENCH_BASELINE.json gates: this is the cell that
// watches the state plane's serialization overhead.
func statePlaneCell(c *harness.Cell) []harness.Row {
	cols, rows, vrounds := c.Params.Int("cols"), c.Params.Int("rows"), c.Params.Int("vrounds")
	const replicasPer = 3
	locs := geo.Grid{Spacing: 6, Cols: cols, Rows: rows}.Locations()
	bed := newVIBed(viBedOpts{
		locs:        locs,
		replicasPer: replicasPer,
		seed:        int64(cols*rows)*3 + c.Base(),
		fixedLeader: true,
		parallel:    true,
	})
	// One client per region, staggered so pings from neighboring regions
	// don't collide every client slot.
	for v, loc := range locs {
		v := v
		bed.eng.Attach(geo.Point{X: loc.X + 1.1, Y: loc.Y - 1.1}, nil, func(env sim.Env) sim.Node {
			return bed.dep.NewClient(env, vi.ClientFunc(
				func(vr int, _ []vi.Message, _ bool) *vi.Message {
					if vr%4 != v%4 {
						return nil
					}
					return vi.Text(fmt.Sprintf("ping-%02d-%04d", v, vr))
				}))
		})
	}
	bed.runVRounds(vrounds)
	st := bed.eng.Stats()
	c.CountRounds(st.Rounds)
	c.CountBytes(st.TotalBytes)
	return []harness.Row{{
		harness.Int(len(locs)), harness.Int(bed.eng.NumNodes()), harness.Int(vrounds),
		harness.Int(bed.dep.Schedule().Len()),
		harness.Int(bed.dep.Timing().RoundsPerVRound()),
		harness.Float(float64(st.TotalBytes) / float64(vrounds)),
		harness.Int(st.MaxMessageSize),
		harness.Float(bed.meanAvailability()),
	}}
}

// StatePlane is the legacy-style table entry point.
func StatePlane(cols, rows, vrounds int) *metrics.Table {
	c := &harness.Cell{Seed: 1, Params: harness.Params{
		Ints: map[string]int{"cols": cols, "rows": rows, "vrounds": vrounds},
	}}
	return e12Desc.TableOf(statePlaneCell(c))
}
