package experiments

import (
	"fmt"

	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

var e6Desc = harness.Descriptor{
	ID:      "E6",
	Group:   "E6",
	Title:   "E6 — churn: availability and join latency vs turnover period",
	Notes:   "backoff contention manager throughout; resets indicate the virtual node died (state loss)",
	Columns: []string{"churn period (vrounds)", "turnovers", "availability", "mean join latency (vrounds)", "resets"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, period := range sweep(quick, []int{2, 4, 8}, []int{4}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("period=%d", period),
				Ints:  map[string]int{"period": period, "vrounds": suiteVRounds(quick) * 2},
			})
		}
		return grid
	},
	Run: churnCell,
}

func init() { harness.Register(e6Desc) }

// churnCell measures virtual node availability and join latency for one
// turnover period: every period virtual rounds, the oldest replica leaves
// and a fresh device arrives and joins. The virtual node must remain
// available as long as some replica is always present (Section 4.2's
// progress condition).
func churnCell(c *harness.Cell) []harness.Row {
	period, vrounds := c.Params.Int("period"), c.Params.Int("vrounds")
	bed := newVIBed(viBedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: 3,
		seed:        int64(period) + c.Base(),
	})
	bed.addPinger(geo.Point{X: 1.2, Y: -1})

	per := bed.dep.Timing().RoundsPerVRound()
	var joinLatency metrics.Series
	resets := 0
	turnovers := 0

	// Replica IDs: 0..2 are the bootstrap replicas; the pinger is 3.
	oldest := 0
	alive := []sim.NodeID{0, 1, 2}

	for vr := 0; vr < vrounds; vr++ {
		if period > 0 && vr > 0 && vr%period == 0 && oldest < len(alive) {
			// Oldest leaves; a new device arrives nearby.
			bed.eng.Leave(alive[oldest])
			oldest++
			arrivedAt := vr
			newID := sim.NodeID(bed.eng.NumNodes())
			bed.attachEmulator(geo.Point{X: 0.2 * float64(vr%5), Y: -0.3}, false, vi.EmulatorHooks{
				OnJoin: func(_ vi.VNodeID, joinVR int) {
					joinLatency.AddInt(joinVR - arrivedAt)
				},
				OnReset: func(vi.VNodeID, int) { resets++ },
			})
			alive = append(alive, newID)
			turnovers++
		}
		bed.eng.Run(per)
	}
	c.CountRounds(bed.eng.Stats().Rounds)
	return []harness.Row{{
		harness.Int(period), harness.Int(turnovers),
		harness.Float(bed.availability(0)), harness.Float(joinLatency.Mean()), harness.Int(resets),
	}}
}

// ChurnSurvival is the legacy table entry point.
func ChurnSurvival(churnPeriods []int, vrounds int) *metrics.Table {
	var rows []harness.Row
	for _, period := range churnPeriods {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"period": period, "vrounds": vrounds},
		}}
		rows = append(rows, churnCell(c)...)
	}
	return e6Desc.TableOf(rows)
}
