package experiments

import (
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// ChurnSurvival measures virtual node availability and join latency as the
// replica population turns over: every churnPeriod virtual rounds, the
// oldest replica leaves and a fresh device arrives and joins. The virtual
// node must remain available as long as some replica is always present
// (Section 4.2's progress condition).
func ChurnSurvival(churnPeriods []int, vrounds int) *metrics.Table {
	t := metrics.NewTable("E6 — churn: availability and join latency vs turnover period",
		"churn period (vrounds)", "turnovers", "availability", "mean join latency (vrounds)", "resets")
	for _, period := range churnPeriods {
		bed := newVIBed(viBedOpts{
			locs:        []geo.Point{{X: 0, Y: 0}},
			replicasPer: 3,
			seed:        int64(period),
		})
		bed.addPinger(geo.Point{X: 1.2, Y: -1})

		per := bed.dep.Timing().RoundsPerVRound()
		var joinLatency metrics.Series
		resets := 0
		turnovers := 0

		// Replica IDs: 0..2 are the bootstrap replicas; the pinger is 3.
		oldest := 0
		alive := []sim.NodeID{0, 1, 2}

		for vr := 0; vr < vrounds; vr++ {
			if period > 0 && vr > 0 && vr%period == 0 && oldest < len(alive) {
				// Oldest leaves; a new device arrives nearby.
				bed.eng.Leave(alive[oldest])
				oldest++
				arrivedAt := vr
				newID := sim.NodeID(bed.eng.NumNodes())
				bed.attachEmulator(geo.Point{X: 0.2 * float64(vr%5), Y: -0.3}, false, vi.EmulatorHooks{
					OnJoin: func(_ vi.VNodeID, joinVR int) {
						joinLatency.AddInt(joinVR - arrivedAt)
					},
					OnReset: func(vi.VNodeID, int) { resets++ },
				})
				alive = append(alive, newID)
				turnovers++
			}
			bed.eng.Run(per)
		}
		t.AddRow(metrics.D(period), metrics.D(turnovers),
			metrics.F(bed.availability(0)), metrics.F(joinLatency.Mean()), metrics.D(resets))
	}
	t.Notes = "backoff contention manager throughout; resets indicate the virtual node died (state loss)"
	return t
}
