package experiments

import (
	"strings"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

func TestFigure2MatchesPaper(t *testing.T) {
	rows := RunFigure2()
	if len(rows) != len(Figure2Expected) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Figure2Expected))
	}
	for i, row := range rows {
		if row != Figure2Expected[i] {
			t.Errorf("row %d: got %+v, want %+v", i, row, Figure2Expected[i])
		}
	}
}

// TestFigure2BallotLossRow pins the all-crosses row of Figure 2 directly
// at the core, independent of RunFigure2's check-mark reconstruction: a
// silent ballot slot (DropAll, no collision signalled) designates the
// instance red per Figure 1 lines 29–32, the observer outputs bottom, and
// — red being the bottom of the downgrade lattice — a later clean veto
// phase cannot lift it back.
func TestFigure2BallotLossRow(t *testing.T) {
	const observer = 1
	adv := &radio.Script{}
	adv.DropAll(0, observer)
	c := newCluster(clusterOpts{
		n:         2,
		detector:  cd.EventuallyAC{Racc: 1000},
		adversary: adv,
	})
	c.runInstances(1)
	obs := c.replicas[observer]
	if got := obs.Core().Status(1); got != cha.Red {
		t.Fatalf("observer color after a silent ballot slot = %v, want red", got)
	}
	// The Figure-2 output is ⊥ for any non-green instance; the internal
	// best estimate must also assign ⊥ to the red instance.
	if h := obs.Core().CalculateHistory(); h.Includes(1) {
		t.Fatalf("red observer's history estimate includes instance 1: %v", h)
	}
	if want := (Figure2Row{Color: cha.Red}); RunFigure2()[3] != want {
		t.Fatalf("Figure 2 row 4 = %+v, want %+v (all crosses, red, bottom)", RunFigure2()[3], want)
	}
}

func TestFigure2TableRenders(t *testing.T) {
	tb := Figure2Table()
	if tb.NumRows() != 4 {
		t.Fatalf("Figure 2 table has %d rows", tb.NumRows())
	}
	var sb strings.Builder
	tb.Render(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && (fields[0] == "ok" || fields[0] == "X") {
			if fields[5] != "yes" {
				t.Errorf("Figure 2 row does not match the paper: %q", line)
			}
		}
	}
}

func TestOverheadVsNShape(t *testing.T) {
	// Theorem 14's shape: CHAP flat, RSM growing.
	tb := OverheadVsN([]int{2, 8}, 10)
	if tb.NumRows() != 2 {
		t.Fatal("wrong row count")
	}
	// Validate the underlying quantities directly.
	c2 := newCluster(clusterOpts{n: 2, fixedWidth: true})
	c2.runInstances(10)
	c8 := newCluster(clusterOpts{n: 8, fixedWidth: true})
	c8.runInstances(10)
	if c2.eng.Stats().MaxMessageSize != c8.eng.Stats().MaxMessageSize {
		t.Error("CHAP message size should not depend on n")
	}
	r2, _ := rsmRoundsPerDecision(2, 10, nil, 1)
	r8, _ := rsmRoundsPerDecision(8, 10, nil, 1)
	if !(r2 < r8) {
		t.Errorf("RSM rounds should grow with n: %v vs %v", r2, r8)
	}
}

func TestOverheadVsLengthShape(t *testing.T) {
	chapShort := func(l int) int {
		c := newCluster(clusterOpts{n: 3, fixedWidth: true})
		c.runInstances(l)
		return c.eng.Stats().MaxMessageSize
	}
	if chapShort(10) != chapShort(100) {
		t.Error("CHAP message size grew with execution length")
	}
	naive10, _ := naiveMaxMessage(3, 10)
	naive100, _ := naiveMaxMessage(3, 100)
	if !(naive10 < naive100) {
		t.Error("naive message size should grow with execution length")
	}
}

func TestColorSpreadNeverExceedsOne(t *testing.T) {
	tb := ColorSpread(5, []float64{0, 0.4, 0.8}, 60)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	// The violations column must be all zeros; spot-check by re-running
	// the strongest adversary.
	c := newCluster(clusterOpts{
		n: 5, seed: 67,
	})
	c.runInstances(10)
	rep := c.rec.Report()
	if rep.ColorSpreadViolations != 0 {
		t.Errorf("spread violations: %s", out)
	}
}

func TestCorrectnessCampaignClean(t *testing.T) {
	tb := CorrectnessCampaign(6, []sim.Round{30, 90}, 20)
	var sb strings.Builder
	tb.Render(&sb)
	// Columns 3-5 are violation counts; assert zero by scanning rendered
	// rows (cheap but effective).
	for _, line := range strings.Split(sb.String(), "\n")[3:] {
		fields := strings.Fields(line)
		// Data rows start with the numeric r_cf value.
		if len(fields) < 6 || fields[0] != "30" && fields[0] != "90" {
			continue
		}
		if fields[2] != "0" || fields[3] != "0" || fields[4] != "0" {
			t.Errorf("violations in campaign row: %q", line)
		}
	}
}

func TestEmulationOverheadTables(t *testing.T) {
	ta := EmulationOverheadVsDensity(6)
	if ta.NumRows() != 4 {
		t.Errorf("density table rows = %d", ta.NumRows())
	}
	tb := EmulationOverheadVsReplicas([]int{1, 4}, 6)
	if tb.NumRows() != 2 {
		t.Errorf("replica table rows = %d", tb.NumRows())
	}
	// Direct checks of the claim: rounds per vround equals s+12 and is
	// independent of replicas.
	bed1 := newVIBed(viBedOpts{locs: []geo.Point{{X: 0}}, replicasPer: 1, fixedLeader: true})
	bed4 := newVIBed(viBedOpts{locs: []geo.Point{{X: 0}}, replicasPer: 4, fixedLeader: true})
	if bed1.dep.Timing().RoundsPerVRound() != bed4.dep.Timing().RoundsPerVRound() {
		t.Error("rounds per vround depends on replicas")
	}
	if got := bed1.dep.Timing().RoundsPerVRound(); got != bed1.dep.Schedule().Len()+12 {
		t.Errorf("rounds per vround = %d, want s+12", got)
	}
}

func TestChurnSurvivalAvailability(t *testing.T) {
	tb := ChurnSurvival([]int{6}, 30)
	if tb.NumRows() != 1 {
		t.Fatal("row count")
	}
	// Re-run to assert availability stays reasonable under slow churn.
	bed := newVIBed(viBedOpts{locs: []geo.Point{{X: 0}}, replicasPer: 3, seed: 6})
	bed.addPinger(geo.Point{X: 1.2, Y: -1})
	bed.runVRounds(30)
	if got := bed.availability(0); got < 0.5 {
		t.Errorf("availability %v under no churn with backoff CM", got)
	}
}

func TestBaselineVIComparisonShape(t *testing.T) {
	tb := BaselineVIComparison([]int{3, 15}, 6)
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	// CHAP's cost is replica-independent; RSM's grows. With s=1 the
	// crossover is at n+4 > 13, i.e. n > 9.
	bed := newVIBed(viBedOpts{locs: []geo.Point{{X: 0}}, replicasPer: 3, fixedLeader: true})
	chap := bed.dep.Timing().RoundsPerVRound()
	small, _ := rsmRoundsPerDecision(3, 6, nil, 3)
	big, _ := rsmRoundsPerDecision(15, 6, nil, 15)
	if !(2+small < float64(chap) && 2+big > float64(chap)) {
		t.Errorf("expected crossover: chap=%d rsm(3)=%v rsm(15)=%v", chap, 2+small, 2+big)
	}
}

func TestStateTransferCostGrowsWithGap(t *testing.T) {
	tb := StateTransferCost([]int{0, 8, 32})
	if tb.NumRows() != 3 {
		t.Fatal("row count")
	}
}

func TestDetectorAblationShape(t *testing.T) {
	tb := DetectorAblation(50)
	if tb.NumRows() != 4 {
		t.Fatal("row count")
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	// The paper's detector must be clean and live.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "eventually-AC") {
			fields := strings.Fields(line)
			if fields[len(fields)-1] != "ok" {
				t.Errorf("paper detector not live: %q", line)
			}
		}
	}
}

func TestCMAblationShape(t *testing.T) {
	tb := CMAblation(120)
	if tb.NumRows() != 6 {
		t.Errorf("row count = %d", tb.NumRows())
	}
}

func TestCheckpointAblationShape(t *testing.T) {
	tb := CheckpointAblation([]int{50, 200})
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	// Direct assertion of the claim.
	plain := newCluster(clusterOpts{n: 3, seed: 2})
	plain.runInstances(200)
	ckpt := newCluster(clusterOpts{n: 3, seed: 2, checkpoint: true})
	ckpt.runInstances(200)
	if plain.replicas[0].Core().Retained() <= ckpt.replicas[0].Core().Retained() {
		t.Error("checkpointing did not reduce retained state")
	}
	if ckpt.replicas[0].Core().Retained() > 4 {
		t.Errorf("checkpointed replica retains %d entries", ckpt.replicas[0].Core().Retained())
	}
}

func TestRoundsUnderLossShape(t *testing.T) {
	tb := RoundsUnderLoss(4, []float64{0, 0.3}, 40)
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
}
