// Package experiments implements the reproduction experiment suite
// E1–E12: Figure 2 of the paper reproduced directly, every quantitative
// claim (Theorem 14's constant overhead, Property 4's color invariant,
// Theorems 10/12/13, the Section 4 emulation overhead and progress
// conditions, the Section 1.5 baseline comparisons, and the
// delivery-scaling table) turned into a measured table, and the metro
// churn-at-scale campaign (E11) built on the O(1) region lookup and the
// allocation-free round loop.
//
// Each table registers a harness.Descriptor in its file's init: a
// parameter grid, a seed list, and a cell function returning typed rows.
// cmd/chabench runs the registry (text tables or JSON, sequential or
// fanned over a worker pool); the legacy per-table functions remain as
// thin wrappers over the same cell functions for tests and bench_test.go.
// Cell functions derive every internal random seed from the harness seed
// via Cell.Base, so seed 1 reproduces the historical tables exactly and
// the quick-grid output for fixed seeds is pinned byte-for-byte by
// testdata/golden_quick_seeds12.json.
package experiments

import (
	"fmt"
	"math"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// Radii are the radio parameters used throughout the suite.
var Radii = geo.Radii{R1: 10, R2: 20}

// ring places n nodes evenly on a circle of radius r at the origin (all
// within R1/2, the CHA setting of Section 3.2).
func ring(n int, r float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geo.Point{X: r * math.Cos(angle), Y: r * math.Sin(angle)}
	}
	return pts
}

// clusterOpts configures a CHA cluster run.
type clusterOpts struct {
	n          int
	detector   cd.Detector
	adversary  radio.Adversary
	cmFactory  cm.Factory
	seed       int64
	checkpoint bool
	fixedWidth bool // fixed-width proposal values (for size measurements)
}

// cluster is a ready-to-run CHA deployment.
type cluster struct {
	eng      *sim.Engine
	rec      *cha.Recorder
	replicas []*cha.Replica
	ids      []sim.NodeID
}

func newCluster(o clusterOpts) *cluster {
	if o.detector == nil {
		o.detector = cd.AC{}
	}
	if o.seed == 0 {
		o.seed = 1
	}
	if o.cmFactory == nil {
		o.cmFactory, _ = cm.NewFixed(0)
	}
	medium := radio.MustMedium(radio.Config{
		Radii:     Radii,
		Detector:  o.detector,
		Adversary: o.adversary,
		Seed:      o.seed,
	})
	c := &cluster{
		eng: sim.NewEngine(medium, sim.WithSeed(o.seed)),
		rec: cha.NewRecorder(),
	}
	for i, pos := range ring(o.n, 2) {
		i := i
		id := c.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
			rep := cha.NewReplica(env, cha.Config{
				Propose: c.rec.WrapPropose(func(k cha.Instance) cha.Value {
					if o.fixedWidth {
						return cha.V(fmt.Sprintf("%010d", int(k)*100+i))
					}
					return cha.V(fmt.Sprintf("n%02d-%06d", i, k))
				}),
				CM:         o.cmFactory(env),
				OnOutput:   c.rec.OutputFunc(env.ID()),
				Checkpoint: o.checkpoint,
			})
			c.replicas = append(c.replicas, rep)
			return rep
		})
		c.ids = append(c.ids, id)
	}
	return c
}

func (c *cluster) runInstances(n int) {
	c.eng.Run(n * cha.RoundsPerInstance)
}
