package experiments

import (
	"fmt"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/cm"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/shard"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
	"vinfra/internal/wire"
)

// viCounterProgram is the reference virtual node program for the VI
// experiments: it counts client messages and broadcasts the count when
// scheduled.
type viCounterState struct {
	Pings int
}

func viCounterProgram(sched vi.Schedule) func(vi.VNodeID) vi.Program {
	return func(v vi.VNodeID) vi.Program {
		return vi.Codec[viCounterState]{
			InitState: func(vi.VNodeID, geo.Point) viCounterState { return viCounterState{} },
			Step: func(s viCounterState, _ int, in vi.RoundInput) viCounterState {
				s.Pings += len(in.Msgs)
				return s
			},
			Out: func(s viCounterState, vround int) *vi.Message {
				if !sched.ScheduledIn(v, vround-1) {
					return nil
				}
				return vi.Text(fmt.Sprintf("count=%d", s.Pings))
			},
			EncodeState: func(dst []byte, s viCounterState) []byte {
				return wire.AppendUvarint(dst, uint64(s.Pings))
			},
			DecodeState: func(d *wire.Decoder) (viCounterState, error) {
				return viCounterState{Pings: int(d.Uvarint())}, d.Err()
			},
		}
	}
}

// viBed is a full virtual infrastructure deployment wired for measurement:
// every emulator output feeds the availability monitor, so each experiment
// reads availability, stalls and recovery latencies off bed.mon.
type viBed struct {
	eng        *sim.Engine
	dep        *vi.Deployment
	mon        *vi.Monitor
	medium     *radio.Medium // the engine's medium, kept for checkpoint fingerprints
	emulators  []*vi.Emulator
	setLeaders []func(sim.NodeID) // per-vnode leader handoff (fixedLeader only)
}

// setLeader hands virtual node v's leadership to node id (fixedLeader beds
// only) — the churn experiments use it when the current leader departs, the
// way a deployment's failover would.
func (b *viBed) setLeader(v vi.VNodeID, id sim.NodeID) {
	b.setLeaders[v](id)
}

type viBedOpts struct {
	locs        []geo.Point
	replicasPer int
	seed        int64
	fixedLeader bool
	adversary   radio.Adversary
	detector    cd.Detector
	// parallel runs the bed the way a large deployment would: grid-indexed
	// sharded delivery and a parallel engine. Results are identical to the
	// sequential bed (the determinism contract); only the cost changes.
	parallel bool
	// shards > 0 runs the bed on the region-sharded engine instead of one
	// medium: shard.Split factors the count into a near-square grid, each
	// shard rectangle gets its own radio.Medium (same seed, sequential
	// receiver loop — the shard is the parallelism unit), and boundary-band
	// transmissions are exchanged at round edges. Results are identical to
	// the single-medium bed for any count (the determinism contract).
	shards int
}

func newVIBed(o viBedOpts) *viBed {
	if o.detector == nil {
		o.detector = cd.AC{}
	}
	if o.seed == 0 {
		o.seed = 1
	}
	sched := vi.BuildSchedule(o.locs, Radii)
	cfg := vi.DeploymentConfig{
		Locations: o.locs,
		Radii:     Radii,
		Program:   viCounterProgram(sched),
	}
	var setLeaders []func(sim.NodeID)
	if o.fixedLeader {
		factories := make([]cm.Factory, len(o.locs))
		setLeaders = make([]func(sim.NodeID), len(o.locs))
		for v := range o.locs {
			factories[v], setLeaders[v] = cm.NewFixed(sim.NodeID(v * o.replicasPer))
		}
		cfg.NewCM = func(v vi.VNodeID, env sim.Env) cm.Manager {
			return factories[v](env)
		}
	}
	dep, err := vi.NewDeployment(cfg)
	if err != nil {
		panic(err)
	}
	mediumCfg := radio.Config{
		Radii:     Radii,
		Detector:  o.detector,
		Adversary: o.adversary,
		Seed:      o.seed,
	}
	engOpts := []sim.Option{sim.WithSeed(o.seed)}
	if o.parallel {
		mediumCfg.Mode = radio.ModeGrid
		mediumCfg.Parallel = true
		engOpts = append(engOpts, sim.WithParallel())
	}
	if o.shards > 0 {
		// Each shard medium delivers its residents sequentially (the shard
		// is the parallelism unit; receiver-sharding inside a shard would
		// nest worker pools) and keeps ModeAuto: small shards scan, busy
		// ones build their own grid index. Cell size is the interference
		// radius, matching the medium's own bucketing.
		shardCfg := mediumCfg
		shardCfg.Mode = radio.ModeAuto
		shardCfg.Parallel = false
		cols, rows := shard.Split(o.shards)
		engOpts = append(engOpts, sim.WithRegionShards(cols, rows, Radii.R2, func() sim.Medium {
			return radio.MustMedium(shardCfg)
		}))
	}
	medium := radio.MustMedium(mediumCfg)
	bed := &viBed{
		eng:        sim.NewEngine(medium, engOpts...),
		dep:        dep,
		mon:        vi.NewMonitor(),
		medium:     medium,
		setLeaders: setLeaders,
	}
	for v, loc := range o.locs {
		for i := 0; i < o.replicasPer; i++ {
			pos := geo.Point{X: loc.X + 0.3*float64(i) - 0.5, Y: loc.Y + 0.2}
			bed.attachEmulator(pos, true)
		}
		_ = v
	}
	return bed
}

// attachEmulator adds an emulator (optionally bootstrapped) with green
// tracking hooks merged with the given extra hooks, and returns it.
func (b *viBed) attachEmulator(pos geo.Point, bootstrap bool, extra ...vi.EmulatorHooks) *vi.Emulator {
	var em *vi.Emulator
	hooks := vi.EmulatorHooks{OnOutput: b.mon.Observe}
	if len(extra) > 0 {
		x := extra[0]
		hooks.OnOutput = func(v vi.VNodeID, out cha.Output) {
			b.mon.Observe(v, out)
			if x.OnOutput != nil {
				x.OnOutput(v, out)
			}
		}
		hooks.OnJoin = x.OnJoin
		hooks.OnReset = x.OnReset
	}
	b.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
		em = b.dep.NewEmulator(env, bootstrap)
		em.SetHooks(hooks)
		b.emulators = append(b.emulators, em)
		return em
	})
	return em
}

// addPinger attaches a client that pings every virtual round from pos.
func (b *viBed) addPinger(pos geo.Point) {
	b.eng.Attach(pos, nil, func(env sim.Env) sim.Node {
		return b.dep.NewClient(env, vi.ClientFunc(
			func(vr int, _ []vi.Message, _ bool) *vi.Message {
				return vi.Text(fmt.Sprintf("ping-%04d", vr))
			}))
	})
}

func (b *viBed) runVRounds(n int) {
	b.eng.Run(n * b.dep.Timing().RoundsPerVRound())
}

// availability returns the fraction of virtual rounds in which at least
// one replica of virtual node v reached green.
func (b *viBed) availability(v vi.VNodeID) float64 {
	return b.mon.Report(v).Availability
}

// meanAvailability averages availability over all virtual nodes.
func (b *viBed) meanAvailability() float64 {
	return b.mon.Summary(b.dep.NumVNodes()).MeanAvailability
}
