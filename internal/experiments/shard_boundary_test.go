package experiments

import (
	"reflect"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// strideSender broadcasts a string tag every stride-th round.
type strideSender struct {
	tag    string
	stride int
}

func (s *strideSender) Transmit(r sim.Round) sim.Message {
	if int(r)%s.stride != 0 {
		return nil
	}
	return s.tag
}

func (s *strideSender) Receive(sim.Round, sim.Reception) {}

// listener records every reception.
type listener struct {
	heard []sim.Reception
}

func (l *listener) Transmit(sim.Round) sim.Message        { return nil }
func (l *listener) Receive(_ sim.Round, rx sim.Reception) { l.heard = append(l.heard, rx) }

// shardEdgeWorld builds the exact-boundary geometry shared by the
// sequential and sharded runs, and returns the per-node reception logs.
//
// Cells are R2 = 20 wide. Static anchors at x = 0.5 and x = 79.5 pin the
// occupied cell bounding box to cells 0..3, so a 2x1 shard plan puts the
// shard edge at x = 40: shard 0 owns cells 0-1, shard 1 owns cells 2-3.
//
//	anchor   sender A     edge  rxOnEdge      rxR2     sender B   anchor
//	x=0.5    x=39.75     x=40 (cell 2)       x=59.75   x=74.75    x=79.5
//	[ shard 0              ][ shard 1                                  ]
//
// Sender A sits in shard 0's boundary band; rxR2 is in the NEIGHBOR
// shard's boundary band at distance exactly R2 from A (39.75 and 59.75 are
// exactly representable, so the distance is exactly 20.0 — the inclusive
// gray-zone edge). rxOnEdge stands exactly on the shard edge, 0.25 from A
// (inside R1). Sender B gives rxR2 contention rounds: when both A (stride
// 2) and B (stride 3) transmit, rxR2 has two transmissions within R2 and
// must hear nothing.
func shardEdgeWorld(t *testing.T, rounds int, grayProb float64, jam, sharded, parallel bool) map[string][]sim.Reception {
	t.Helper()
	cfg := radio.Config{
		Radii:                Radii, // R1 = 10, R2 = 20
		Detector:             cd.AC{},
		GrayZoneDeliveryProb: grayProb,
		Seed:                 5,
	}
	if jam {
		// Duty-cycled jammer parked on rxR2: jammed on even rounds (Period
		// 2, Burst 1), clear on odd — the same transmission landing at
		// exactly R2 must survive or die identically in both engines.
		cfg.Adversary = &faults.RegionJammer{
			Targets: []geo.Point{{X: 59.75, Y: 10}},
			Radius:  1,
			Period:  2,
			Burst:   1,
			Seed:    77,
		}
	}
	opts := []sim.Option{sim.WithSeed(5)}
	if sharded {
		opts = append(opts, sim.WithRegionShards(2, 1, Radii.R2, func() sim.Medium {
			return radio.MustMedium(cfg)
		}))
	}
	if parallel {
		opts = append(opts, sim.WithParallel())
	}
	var medium sim.Medium
	if !sharded {
		medium = radio.MustMedium(cfg)
	}
	eng := sim.NewEngine(medium, opts...)

	nodes := map[string]*listener{}
	addListener := func(name string, p geo.Point) {
		l := &listener{}
		nodes[name] = l
		eng.Attach(p, nil, func(sim.Env) sim.Node { return l })
	}
	addSender := func(tag string, p geo.Point, stride int) {
		eng.Attach(p, nil, func(sim.Env) sim.Node { return &strideSender{tag: tag, stride: stride} })
	}
	addListener("anchorL", geo.Point{X: 0.5, Y: 10})
	addSender("A", geo.Point{X: 39.75, Y: 10}, 2)
	addListener("rxOnEdge", geo.Point{X: 40, Y: 10})
	addListener("rxR2", geo.Point{X: 59.75, Y: 10})
	addSender("B", geo.Point{X: 74.75, Y: 10}, 3)
	addListener("anchorR", geo.Point{X: 79.5, Y: 10})

	eng.Run(rounds)
	out := map[string][]sim.Reception{}
	for name, l := range nodes {
		out[name] = l.heard
	}
	return out
}

// TestShardBoundaryExactR2 is the boundary-correctness pin of the sharded
// engine: a transmission landing exactly at distance R2 on the shard edge,
// with the receiver in the neighbor shard's boundary band, is received
// identically in sharded and sequential modes — delivered (gray zone open),
// suppressed (gray zone closed), contended (second sender in range), and
// jammed (duty-cycled RegionJammer on the receiver) alike.
func TestShardBoundaryExactR2(t *testing.T) {
	const rounds = 12
	// The geometry really is the exact edge: 59.75 - 39.75 == 20.0 == R2.
	if d := (geo.Point{X: 59.75, Y: 10}).Dist(geo.Point{X: 39.75, Y: 10}); d != Radii.R2 {
		t.Fatalf("test geometry drifted: sender-receiver distance %v != R2 %v", d, Radii.R2)
	}
	for _, tc := range []struct {
		name     string
		grayProb float64
		jam      bool
	}{
		{"gray-open", 1, false},
		{"gray-closed", 0, false},
		{"gray-open-jammed", 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := shardEdgeWorld(t, rounds, tc.grayProb, tc.jam, false, false)
			for _, par := range []bool{false, true} {
				got := shardEdgeWorld(t, rounds, tc.grayProb, tc.jam, true, par)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("parallel=%v: sharded receptions diverge from sequential:\ngot:  %+v\nwant: %+v",
						par, got, want)
				}
			}

			// Non-vacuousness: pin what the boundary actually does.
			rxR2 := want["rxR2"]
			heardA := func(r int) bool {
				for _, m := range rxR2[r].Msgs {
					if m == "A" {
						return true
					}
				}
				return false
			}
			// Round 2: A transmits alone (2%3 != 0). The exact-R2 message
			// crosses the shard edge iff the gray zone is open and the
			// receiver is not jammed (round 2 is a jammed phase: Period 2,
			// Burst 1 jams even rounds).
			wantHear := tc.grayProb > 0 && !tc.jam
			if heardA(2) != wantHear {
				t.Errorf("round 2 (A alone): rxR2 heard A = %v, want %v", heardA(2), wantHear)
			}
			if tc.jam && tc.grayProb > 0 {
				// Odd clear phase: round 3 has B alone (no A), round 9 too;
				// A-alone rounds are even (2, 4, 8, 10) and all jammed, so
				// rxR2 must never hear A — but the jam must not leak into
				// the unjammed rxOnEdge, which keeps hearing A in R1.
				for r := 0; r < rounds; r++ {
					if heardA(r) {
						t.Errorf("round %d: rxR2 heard A through an even-round jam", r)
					}
				}
			}
			if r := 6; tc.grayProb > 0 && !tc.jam {
				// Round 6: both A and B transmit — two transmissions within
				// R2 of rxR2, so contention silences it.
				if heardA(r) {
					t.Errorf("round %d (A and B): rxR2 heard A through a collision", r)
				}
				if len(rxR2[r].Msgs) != 0 {
					t.Errorf("round %d (A and B): rxR2 heard %v, want nothing", r, rxR2[r].Msgs)
				}
			}
			// rxOnEdge stands exactly on the shard edge (owned by the
			// neighbor shard) 0.25 from A: it hears A on every A-round
			// where B is silent, in every configuration (the jammer
			// footprint does not cover it).
			rxEdge := want["rxOnEdge"]
			for _, r := range []int{2, 4, 8, 10} {
				found := false
				for _, m := range rxEdge[r].Msgs {
					if m == "A" {
						found = true
					}
				}
				if !found {
					t.Errorf("round %d: rxOnEdge (on the shard edge, inside R1) did not hear A: %+v", r, rxEdge[r])
				}
			}
		})
	}
}
