package experiments

import (
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
)

// EmulationOverheadVsDensity measures the constant per-virtual-round cost
// as the virtual node density grows: the schedule length s depends only on
// the deployment's conflict degree, and the real rounds per virtual round
// are exactly s+12 (Section 4.3), independent of execution length.
func EmulationOverheadVsDensity(vrounds int) *metrics.Table {
	t := metrics.NewTable("E5a — emulation overhead vs virtual-node density",
		"deployment", "vnodes", "schedule s", "rounds/vround", "measured", "availability")
	deployments := []struct {
		name string
		grid geo.Grid
	}{
		{"1x1", geo.Grid{Spacing: 6, Cols: 1, Rows: 1}},
		{"1x2", geo.Grid{Spacing: 6, Cols: 2, Rows: 1}},
		{"2x2", geo.Grid{Spacing: 6, Cols: 2, Rows: 2}},
		{"3x3", geo.Grid{Spacing: 6, Cols: 3, Rows: 3}},
	}
	for _, d := range deployments {
		locs := d.grid.Locations()
		bed := newVIBed(viBedOpts{locs: locs, replicasPer: 2, fixedLeader: true})
		per := bed.dep.Timing().RoundsPerVRound()
		bed.runVRounds(vrounds)
		measured := float64(bed.eng.Stats().Rounds) / float64(vrounds)
		t.AddRow(d.name, metrics.D(len(locs)), metrics.D(bed.dep.Schedule().Len()),
			metrics.D(per), metrics.F(measured), metrics.F(bed.meanAvailability()))
	}
	t.Notes = "rounds per virtual round = s+12; depends only on density, not on execution length"
	return t
}

// EmulationOverheadVsReplicas shows the per-virtual-round cost is constant
// in the number of replicas per virtual node (the agreement protocol never
// serializes over participants — the heart of Theorem 14 applied to the
// emulation).
func EmulationOverheadVsReplicas(replicaCounts []int, vrounds int) *metrics.Table {
	t := metrics.NewTable("E5b — emulation overhead vs replicas per virtual node",
		"replicas", "rounds/vround", "transmissions/vround", "availability")
	for _, n := range replicaCounts {
		bed := newVIBed(viBedOpts{
			locs:        []geo.Point{{X: 0, Y: 0}},
			replicasPer: n,
			fixedLeader: true,
		})
		bed.addPinger(geo.Point{X: 1.2, Y: -1})
		bed.runVRounds(vrounds)
		st := bed.eng.Stats()
		t.AddRow(metrics.D(n),
			metrics.F(float64(st.Rounds)/float64(vrounds)),
			metrics.F(float64(st.Transmissions)/float64(vrounds)),
			metrics.F(bed.availability(0)))
	}
	t.Notes = "rounds constant in replica count; only transmissions within fixed phases vary"
	return t
}
