package experiments

import (
	"fmt"

	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
)

// e5Deployments are the density sweep's grid shapes.
var e5Deployments = []struct {
	name string
	grid geo.Grid
}{
	{"1x1", geo.Grid{Spacing: 6, Cols: 1, Rows: 1}},
	{"1x2", geo.Grid{Spacing: 6, Cols: 2, Rows: 1}},
	{"2x2", geo.Grid{Spacing: 6, Cols: 2, Rows: 2}},
	{"3x3", geo.Grid{Spacing: 6, Cols: 3, Rows: 3}},
}

var e5aDesc = harness.Descriptor{
	ID:      "E5a",
	Group:   "E5",
	Title:   "E5a — emulation overhead vs virtual-node density",
	Notes:   "rounds per virtual round = s+12; depends only on density, not on execution length",
	Columns: []string{"deployment", "vnodes", "schedule s", "rounds/vround", "measured", "availability"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, d := range e5Deployments {
			grid = append(grid, harness.Params{
				Label: d.name,
				Ints:  map[string]int{"vrounds": suiteVRounds(quick)},
				Strs:  map[string]string{"deployment": d.name},
			})
		}
		return grid
	},
	Run: emulationDensityCell,
}

var e5bDesc = harness.Descriptor{
	ID:      "E5b",
	Group:   "E5",
	Title:   "E5b — emulation overhead vs replicas per virtual node",
	Notes:   "rounds constant in replica count; only transmissions within fixed phases vary",
	Columns: []string{"replicas", "rounds/vround", "transmissions/vround", "availability"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for _, n := range sweep(quick, []int{1, 2, 4, 8}, []int{1, 4}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("replicas=%d", n),
				Ints:  map[string]int{"replicas": n, "vrounds": suiteVRounds(quick)},
			})
		}
		return grid
	},
	Run: emulationReplicasCell,
}

func init() {
	harness.Register(e5aDesc)
	harness.Register(e5bDesc)
}

// emulationDensityCell measures the constant per-virtual-round cost for one
// deployment shape: the schedule length s depends only on the deployment's
// conflict degree, and the real rounds per virtual round are exactly s+12
// (Section 4.3), independent of execution length.
func emulationDensityCell(c *harness.Cell) []harness.Row {
	name := c.Params.Str("deployment")
	vrounds := c.Params.Int("vrounds")
	for _, d := range e5Deployments {
		if d.name != name {
			continue
		}
		locs := d.grid.Locations()
		bed := newVIBed(viBedOpts{locs: locs, replicasPer: 2, fixedLeader: true, seed: c.Seed})
		per := bed.dep.Timing().RoundsPerVRound()
		bed.runVRounds(vrounds)
		c.CountRounds(bed.eng.Stats().Rounds)
		measured := float64(bed.eng.Stats().Rounds) / float64(vrounds)
		return []harness.Row{{
			harness.Str(d.name), harness.Int(len(locs)), harness.Int(bed.dep.Schedule().Len()),
			harness.Int(per), harness.Float(measured), harness.Float(bed.meanAvailability()),
		}}
	}
	panic(fmt.Sprintf("e5: unknown deployment %q", name))
}

// EmulationOverheadVsDensity is the legacy table entry point.
func EmulationOverheadVsDensity(vrounds int) *metrics.Table {
	var rows []harness.Row
	for _, d := range e5Deployments {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"vrounds": vrounds},
			Strs: map[string]string{"deployment": d.name},
		}}
		rows = append(rows, emulationDensityCell(c)...)
	}
	return e5aDesc.TableOf(rows)
}

// emulationReplicasCell shows the per-virtual-round cost is constant in the
// number of replicas per virtual node (the agreement protocol never
// serializes over participants — the heart of Theorem 14 applied to the
// emulation).
func emulationReplicasCell(c *harness.Cell) []harness.Row {
	n, vrounds := c.Params.Int("replicas"), c.Params.Int("vrounds")
	bed := newVIBed(viBedOpts{
		locs:        []geo.Point{{X: 0, Y: 0}},
		replicasPer: n,
		fixedLeader: true,
		seed:        c.Seed,
	})
	bed.addPinger(geo.Point{X: 1.2, Y: -1})
	bed.runVRounds(vrounds)
	st := bed.eng.Stats()
	c.CountRounds(st.Rounds)
	return []harness.Row{{
		harness.Int(n),
		harness.Float(float64(st.Rounds) / float64(vrounds)),
		harness.Float(float64(st.Transmissions) / float64(vrounds)),
		harness.Float(bed.availability(0)),
	}}
}

// EmulationOverheadVsReplicas is the legacy table entry point.
func EmulationOverheadVsReplicas(replicaCounts []int, vrounds int) *metrics.Table {
	var rows []harness.Row
	for _, n := range replicaCounts {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"replicas": n, "vrounds": vrounds},
		}}
		rows = append(rows, emulationReplicasCell(c)...)
	}
	return e5bDesc.TableOf(rows)
}
