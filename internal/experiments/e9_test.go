package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestRoutingLatencyDeliversEverything(t *testing.T) {
	tb := RoutingLatency([]int{2, 4}, 3)
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	var sb strings.Builder
	tb.Render(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && (fields[0] == "2" || fields[0] == "4") {
			if fields[2] != "3/3" {
				t.Errorf("packets lost: %q", line)
			}
		}
	}
}

func TestRoutingLatencyGrowsWithHops(t *testing.T) {
	tb := RoutingLatency([]int{2, 5}, 2)
	var sb strings.Builder
	tb.Render(&sb)
	var lats []float64
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && (fields[0] == "2" || fields[0] == "5") {
			var v float64
			if _, err := fmtSscan(fields[3], &v); err == nil {
				lats = append(lats, v)
			}
		}
	}
	if len(lats) == 2 && lats[1] <= lats[0] {
		t.Errorf("latency should grow with chain length: %v", lats)
	}
}

func TestLockThroughputNoViolations(t *testing.T) {
	tb := LockThroughput([]int{2, 4}, 50)
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	var sb strings.Builder
	tb.Render(&sb)
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && (fields[0] == "2" || fields[0] == "4") {
			if fields[3] != "0" {
				t.Errorf("mutex violations: %q", line)
			}
			if fields[1] == "0" {
				t.Errorf("no lock cycles completed: %q", line)
			}
		}
	}
}

// fmtSscan wraps fmt.Sscan for the latency parse above.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
