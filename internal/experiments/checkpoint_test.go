package experiments

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"vinfra/internal/checkpoint"
	"vinfra/internal/faults"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/sim"
	"vinfra/internal/vi"
)

// runSoak steps a freshly built soak to completion.
func runSoak(t *testing.T, exp string, p harness.Params, seed int64, shards int) []harness.Row {
	t.Helper()
	s, err := NewSoak(exp, &harness.Cell{Params: p, Seed: seed}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for s.VRound() < s.VRounds() {
		s.StepVRound()
	}
	return s.Rows()
}

// runSegmented runs the same cell as a chain of checkpointed segments: at
// every cut the run is suspended into a checkpoint, the checkpoint makes a
// full trip through the file encoding, and a freshly constructed soak (a
// brand-new engine, medium, deployment and monitor) resumes from it.
func runSegmented(t *testing.T, exp string, p harness.Params, seed int64, shards int, cuts []int) []harness.Row {
	t.Helper()
	s, err := NewSoak(exp, &harness.Cell{Params: p, Seed: seed}, shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		for s.VRound() < cut {
			s.StepVRound()
		}
		cp, err := checkpoint.Decode(s.Checkpoint().Encode())
		if err != nil {
			t.Fatalf("checkpoint encode/decode at vround %d: %v", cut, err)
		}
		fresh, err := NewSoak(exp, &harness.Cell{Params: p, Seed: seed}, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(cp); err != nil {
			t.Fatalf("restore at vround %d: %v", cut, err)
		}
		if fresh.VRound() != cut {
			t.Fatalf("restored soak resumes at vround %d, checkpoint was taken at %d", fresh.VRound(), cut)
		}
		s = fresh
	}
	for s.VRound() < s.VRounds() {
		s.StepVRound()
	}
	return s.Rows()
}

// TestSoakRestoreEqualsUninterrupted is the golden property of the
// checkpoint plane: an E11/E13 run suspended into checkpoints at several
// virtual-round cuts and resumed on freshly built deployments produces
// rows byte-identical to the uninterrupted run — across the single-medium
// bed and region-sharded beds (shards 1 and 8), through every adversary
// kind (mid-jam duty cycle, between scheduled region wipes, inside a churn
// storm's window, mid crash-burst attrition) and the metro churn load with
// its mid-run joiners.
func TestSoakRestoreEqualsUninterrupted(t *testing.T) {
	type tc struct {
		exp string
		p   harness.Params
	}
	var cases []tc
	for _, p := range e11Desc.Grid(true) {
		cases = append(cases, tc{"E11", p})
	}
	for _, p := range e13Desc.Grid(true) {
		cases = append(cases, tc{"E13", p})
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s", c.exp, c.p.Label), func(t *testing.T) {
			t.Parallel()
			want := runSoak(t, c.exp, c.p, 1, 0)
			for _, shards := range []int{0, 1, 8} {
				got := runSegmented(t, c.exp, c.p, 1, shards, []int{2, 5, 7})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: segmented rows diverge from the uninterrupted run:\ngot:  %+v\nwant: %+v",
						shards, got, want)
				}
			}
		})
	}
}

// TestCitySoakRestoreEqualsUninterrupted extends the golden property to
// E14: the sharded city — mobile listeners migrating across shard
// boundaries under RandomWaypoint — checkpointed mid-run and resumed on a
// fresh bed, pinned byte-identical (including the order-sensitive
// heard-hash over every listener) on shards 1 and 8.
func TestCitySoakRestoreEqualsUninterrupted(t *testing.T) {
	p := harness.Params{
		Label: "2k/5x5",
		Ints: map[string]int{
			"devices": 2_000, "cols": 5, "rows": 5, "vrounds": 2,
		},
	}
	// The halo-transmission column is shard-count-dependent cost accounting,
	// so each shard count is pinned against its own uninterrupted run.
	for _, shards := range []int{1, 8} {
		want := runSoak(t, "E14", p, 1, shards)
		got := runSegmented(t, "E14", p, 1, shards, []int{1})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: segmented city rows diverge:\ngot:  %+v\nwant: %+v", shards, got, want)
		}
	}
}

// TestCheckpointMidRound checkpoints at engine rounds that are NOT
// virtual-round boundaries — mid CellJammer duty cycle, one round after a
// RegionWipe, inside a ChurnStorm window — so the emulators' mid-vround
// scratch state (collected ballots, pending join requests, broadcast
// flags) must survive the trip. Equality is judged on the full engine and
// monitor snapshot encodings, the strongest byte-identity check available.
func TestCheckpointMidRound(t *testing.T) {
	locs := geo.Grid{Spacing: 6, Cols: 3, Rows: 3}.Locations()
	per := vi.Timing{S: vi.BuildSchedule(locs, Radii).Len()}.RoundsPerVRound()
	area := geo.Rect{Min: geo.Point{X: -3, Y: -3}, Max: geo.Point{X: 15, Y: 15}}

	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			mk := func() *viBed {
				bed := newVIBed(viBedOpts{
					locs:        locs,
					replicasPer: 3,
					seed:        11,
					fixedLeader: true,
					adversary: &faults.CellJammer{
						Window:   faults.Window{From: sim.Round(per / 2)},
						Bounds:   area,
						CellSize: 6,
						Cells:    2,
						Seed:     99,
					},
					parallel: true,
					shards:   shards,
				})
				for _, loc := range locs {
					bed.addPinger(geo.Point{X: loc.X + 1.2, Y: loc.Y - 1})
				}
				bed.eng.AddFault(faults.RegionWipe{
					Center: locs[4],
					Radius: 1.0,
					At:     sim.Round(2*per + per/3),
				})
				bed.eng.AddFault(&faults.ChurnStorm{
					Window: faults.Window{From: sim.Round(per), Until: sim.Round(3 * per)},
					Period: per / 2,
					Kills:  1,
					Seed:   17,
					// Pure attrition (no Respawn) sparing the leaders, so the
					// node population stays construction-determined.
					Eligible: func(id sim.NodeID) bool { return int(id)%3 != 0 },
				})
				return bed
			}
			total := 5 * per

			straight := mk()
			straight.eng.Run(total)
			wantEng := straight.eng.Snapshot().AppendTo(nil)
			wantMon := straight.mon.Snapshot().AppendTo(nil)

			bed := mk()
			cuts := []int{per/2 + 1, 2*per + per/3 + 1, 3*per + 2}
			for _, cut := range cuts {
				bed.eng.Run(cut - int(bed.eng.Round()))
				cp, err := checkpoint.Decode(checkpoint.Checkpoint{
					Engine:  bed.eng.Snapshot(),
					Medium:  bed.medium.Snapshot(),
					Monitor: bed.mon.Snapshot(),
				}.Encode())
				if err != nil {
					t.Fatalf("checkpoint at round %d: %v", cut, err)
				}
				bed = mk()
				if err := bed.medium.Restore(cp.Medium); err != nil {
					t.Fatalf("medium restore at round %d: %v", cut, err)
				}
				if err := bed.eng.Restore(cp.Engine); err != nil {
					t.Fatalf("engine restore at round %d: %v", cut, err)
				}
				bed.mon.Restore(cp.Monitor)
			}
			bed.eng.Run(total - int(bed.eng.Round()))

			if got := bed.eng.Snapshot().AppendTo(nil); !bytes.Equal(got, wantEng) {
				t.Fatalf("engine state after mid-round restores diverges from the uninterrupted run (%d vs %d bytes)", len(got), len(wantEng))
			}
			if got := bed.mon.Snapshot().AppendTo(nil); !bytes.Equal(got, wantMon) {
				t.Fatalf("monitor state after mid-round restores diverges from the uninterrupted run")
			}
		})
	}
}

// TestEngineFork pins the fork semantics: restoring the same checkpoint
// under a different seed is (a) deterministic — two forks with the same
// seed agree byte-for-byte — and (b) an actual divergence — the forked
// timeline's RNG decisions decouple from the parent's.
func TestEngineFork(t *testing.T) {
	p := e13Desc.Grid(true)[0] // jam/high: seeded gray-zone + jammer decisions
	mk := func() *adversarySoak {
		return newAdversarySoak(&harness.Cell{Params: p, Seed: 1}, true, 0)
	}
	s := mk()
	for s.VRound() < 3 {
		s.StepVRound()
	}
	cp := s.Checkpoint()

	fork := func(seed int64) []byte {
		f := mk()
		if err := f.bed.medium.Restore(cp.Medium); err != nil {
			t.Fatal(err)
		}
		if err := f.bed.eng.Fork(cp.Engine, seed); err != nil {
			t.Fatal(err)
		}
		f.bed.mon.Restore(cp.Monitor)
		f.bed.eng.Run(4 * f.per)
		return f.bed.eng.Snapshot().AppendTo(nil)
	}

	a, b, c := fork(777), fork(777), fork(778)
	if !bytes.Equal(a, b) {
		t.Fatal("two forks with the same seed diverge — fork is not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("forks with different seeds agree byte-for-byte — the fork seed is not reaching the node RNG streams")
	}
}
