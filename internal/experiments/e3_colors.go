package experiments

import (
	"fmt"
	"sync"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// ColorCensus counts the final colors every node assigned across an
// adversarial run, plus the per-instance spread.
type ColorCensus struct {
	mu     sync.Mutex
	counts map[cha.Color]int
	total  int
}

func newColorCensus() *ColorCensus {
	return &ColorCensus{counts: make(map[cha.Color]int)}
}

func (cc *ColorCensus) record(out cha.Output) {
	cc.mu.Lock()
	cc.counts[out.Color]++
	cc.total++
	cc.mu.Unlock()
}

func (cc *ColorCensus) fraction(c cha.Color) float64 {
	if cc.total == 0 {
		return 0
	}
	return float64(cc.counts[c]) / float64(cc.total)
}

// ColorSpread sweeps the adversary's loss rate and reports the color
// distribution plus the maximum per-instance spread — Property 4 / Lemma 5
// require the spread to never exceed one shade.
func ColorSpread(n int, lossRates []float64, instances int) *metrics.Table {
	t := metrics.NewTable("E3 — Property 4: color distribution and spread vs loss rate",
		"loss p", "green", "yellow", "orange", "red", "max spread", "violations")
	for i, p := range lossRates {
		seed := int64(i*31 + 5)
		census := newColorCensus()
		adv := radio.NewRandomLoss(p, p/2, cd.Never, seed)
		c := newCluster(clusterOpts{
			n:         n,
			detector:  cd.EventuallyAC{Racc: cd.Never, FalsePositiveRate: p / 4},
			adversary: adv,
			seed:      seed,
		})
		// Observe colors through the engine round hook: read each
		// replica's color for the instance at the end of its veto-2 round.
		c.eng.OnRound(func(r sim.Round, _ []sim.Transmission, _ []sim.Reception) {
			k, phase := cha.PhaseOf(r)
			if phase != cha.PhaseVeto2 {
				return
			}
			for _, rep := range c.replicas {
				census.record(cha.Output{Instance: k, Color: rep.Core().Status(k)})
			}
		})
		c.runInstances(instances)
		rep := c.rec.Report()
		t.AddRow(fmt.Sprintf("%.1f", p),
			metrics.F(census.fraction(cha.Green)),
			metrics.F(census.fraction(cha.Yellow)),
			metrics.F(census.fraction(cha.Orange)),
			metrics.F(census.fraction(cha.Red)),
			metrics.D(rep.MaxColorSpread),
			metrics.D(rep.ColorSpreadViolations))
	}
	t.Notes = "spread must never exceed 1 (Lemma 5); violations must be 0"
	return t
}
