package experiments

import (
	"fmt"
	"sync"

	"vinfra/internal/cd"
	"vinfra/internal/cha"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var e3Desc = harness.Descriptor{
	ID:      "E3",
	Group:   "E3",
	Title:   "E3 — Property 4: color distribution and spread vs loss rate",
	Notes:   "spread must never exceed 1 (Lemma 5); violations must be 0",
	Columns: []string{"loss p", "green", "yellow", "orange", "red", "max spread", "violations"},
	Grid: func(quick bool) []harness.Params {
		var grid []harness.Params
		for i, p := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9} {
			grid = append(grid, harness.Params{
				Label:  fmt.Sprintf("p=%.1f", p),
				Ints:   map[string]int{"n": 5, "instances": suiteInstances(quick), "i": i},
				Floats: map[string]float64{"p": p},
			})
		}
		return grid
	},
	Run: colorSpreadCell,
}

func init() { harness.Register(e3Desc) }

// ColorCensus counts the final colors every node assigned across an
// adversarial run, plus the per-instance spread.
type ColorCensus struct {
	mu     sync.Mutex
	counts map[cha.Color]int
	total  int
}

func newColorCensus() *ColorCensus {
	return &ColorCensus{counts: make(map[cha.Color]int)}
}

func (cc *ColorCensus) record(out cha.Output) {
	cc.mu.Lock()
	cc.counts[out.Color]++
	cc.total++
	cc.mu.Unlock()
}

func (cc *ColorCensus) fraction(c cha.Color) float64 {
	if cc.total == 0 {
		return 0
	}
	return float64(cc.counts[c]) / float64(cc.total)
}

// colorSpreadCell runs one loss rate of the sweep and reports the color
// distribution plus the maximum per-instance spread — Property 4 / Lemma 5
// require the spread to never exceed one shade.
func colorSpreadCell(c *harness.Cell) []harness.Row {
	n, instances, i := c.Params.Int("n"), c.Params.Int("instances"), c.Params.Int("i")
	p := c.Params.Float("p")
	seed := int64(i*31+5) + c.Base()
	census := newColorCensus()
	adv := radio.NewRandomLoss(p, p/2, cd.Never, seed)
	cl := newCluster(clusterOpts{
		n:         n,
		detector:  cd.EventuallyAC{Racc: cd.Never, FalsePositiveRate: p / 4},
		adversary: adv,
		seed:      seed,
	})
	// Observe colors through the engine round hook: read each replica's
	// color for the instance at the end of its veto-2 round.
	cl.eng.OnRound(func(r sim.Round, _ []sim.Transmission, _ []sim.Reception) {
		k, phase := cha.PhaseOf(r)
		if phase != cha.PhaseVeto2 {
			return
		}
		for _, rep := range cl.replicas {
			census.record(cha.Output{Instance: k, Color: rep.Core().Status(k)})
		}
	})
	cl.runInstances(instances)
	c.CountRounds(cl.eng.Stats().Rounds)
	rep := cl.rec.Report()
	return []harness.Row{{
		harness.FloatText(fmt.Sprintf("%.1f", p), p),
		harness.Float(census.fraction(cha.Green)),
		harness.Float(census.fraction(cha.Yellow)),
		harness.Float(census.fraction(cha.Orange)),
		harness.Float(census.fraction(cha.Red)),
		harness.Int(rep.MaxColorSpread),
		harness.Int(rep.ColorSpreadViolations),
	}}
}

// ColorSpread is the legacy table entry point for the loss-rate sweep.
func ColorSpread(n int, lossRates []float64, instances int) *metrics.Table {
	var rows []harness.Row
	for i, p := range lossRates {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints:   map[string]int{"n": n, "instances": instances, "i": i},
			Floats: map[string]float64{"p": p},
		}}
		rows = append(rows, colorSpreadCell(c)...)
	}
	return e3Desc.TableOf(rows)
}
