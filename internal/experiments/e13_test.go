package experiments

import (
	"reflect"
	"testing"

	"vinfra/internal/harness"
)

// TestAdversaryParallelEqualsSequential pins the adversary plane's
// determinism contract: every E13 cell — jammers filtering receivers
// concurrently inside the parallel medium, faults striking from the engine
// loop, monitor accounting fed from sharded Receive fan-out — produces
// byte-identical rows whether the stack runs sequentially or parallel.
func TestAdversaryParallelEqualsSequential(t *testing.T) {
	for _, p := range e13Desc.Grid(true) {
		for _, seed := range []int64{1, 2} {
			p, seed := p, seed
			t.Run(p.Label, func(t *testing.T) {
				t.Parallel()
				par := adversaryRows(&harness.Cell{Params: p, Seed: seed}, true, 0)
				seq := adversaryRows(&harness.Cell{Params: p, Seed: seed}, false, 0)
				if !reflect.DeepEqual(par, seq) {
					t.Fatalf("seed %d: parallel rows diverge from sequential:\npar: %+v\nseq: %+v",
						seed, par, seq)
				}
			})
		}
	}
}

// TestAdversaryCellsDegradeAvailability sanity-checks that the adversaries
// actually bite and the stack absorbs them: the jammer must cost
// availability (it silences whole regions on a duty cycle), while the
// storm's kill-and-respawn churn must keep the deployment largely
// available (the paper's availability claim under hostile churn).
func TestAdversaryCellsDegradeAvailability(t *testing.T) {
	availability := func(kind string) float64 {
		rows := adversaryRows(&harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"cols": 3, "rows": 3, "vrounds": 8},
			Strs: map[string]string{"kind": kind, "intensity": "high"},
		}}, true, 0)
		if len(rows) != 1 {
			t.Fatalf("%s: %d rows", kind, len(rows))
		}
		return rows[0][6].V.(float64)
	}
	jam := availability("jam")
	if jam > 0.8 {
		t.Errorf("high jam availability = %.2f, want a visible dent (<= 0.8)", jam)
	}
	storm := availability("storm")
	if storm < 0.7 {
		t.Errorf("high storm availability = %.2f, want the stack to absorb churn (>= 0.7)", storm)
	}
	if jam >= storm {
		t.Errorf("jam (%.2f) should hurt more than absorbed churn (%.2f)", jam, storm)
	}
}
