package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// scalingRound scatters n nodes uniformly at constant density (about
// twelve nodes per R2 disk, the regime a large emulation runs in) with a
// quarter of them transmitting.
func scalingRound(n int, seed int64) ([]sim.NodeInfo, []sim.Transmission) {
	side := math.Sqrt(float64(n) / 12 * math.Pi * Radii.R2 * Radii.R2)
	rng := rand.New(rand.NewSource(seed))
	infos := make([]sim.NodeInfo, n)
	var txs []sim.Transmission
	for i := range infos {
		infos[i] = sim.NodeInfo{
			ID:    sim.NodeID(i),
			At:    geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
			Alive: true,
		}
		if rng.Intn(4) == 0 {
			txs = append(txs, sim.Transmission{
				Sender: infos[i].ID,
				From:   infos[i].At,
				Msg:    fmt.Sprintf("m%d", i),
			})
		}
	}
	return infos, txs
}

// timeDeliver measures the mean wall-clock cost of one Deliver call.
func timeDeliver(m *radio.Medium, rounds int, txs []sim.Transmission, infos []sim.NodeInfo) time.Duration {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		m.Deliver(sim.Round(r), txs, infos)
	}
	return time.Since(start) / time.Duration(rounds)
}

// DeliveryScaling is experiment E10: per-round message-delivery cost as the
// deployment grows, comparing the brute-force O(receivers x transmissions)
// scan against the R2-cell grid index, sequential and sharded. The grid
// rows must agree with the scan rows reception-for-reception (the
// equivalence property tested in internal/radio); only the cost changes.
func DeliveryScaling(sizes []int, rounds int) *metrics.Table {
	t := metrics.NewTable("E10 — round delivery scaling (per-round cost)",
		"nodes", "txs", "scan", "grid", "grid+parallel", "speedup")
	for _, n := range sizes {
		infos, txs := scalingRound(n, int64(n))
		mode := func(m radio.DeliveryMode, parallel bool) *radio.Medium {
			return radio.MustMedium(radio.Config{
				Radii:    Radii,
				Detector: cd.AC{},
				Mode:     m,
				Parallel: parallel,
				Seed:     1,
			})
		}
		scan := timeDeliver(mode(radio.ModeScan, false), rounds, txs, infos)
		grid := timeDeliver(mode(radio.ModeGrid, false), rounds, txs, infos)
		par := timeDeliver(mode(radio.ModeGrid, true), rounds, txs, infos)
		speedup := float64(scan) / float64(grid)
		t.AddRow(metrics.D(n), metrics.D(len(txs)),
			scan.String(), grid.String(), par.String(),
			metrics.F(speedup)+"x")
	}
	t.Notes = "grid = uniform R2-cell index, receivers consult 3x3 cells; receptions identical across columns"
	return t
}
