package experiments

import (
	"fmt"
	"math"
	"time"

	"vinfra/internal/cd"
	"vinfra/internal/det"
	"vinfra/internal/geo"
	"vinfra/internal/harness"
	"vinfra/internal/metrics"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

var e10Desc = harness.Descriptor{
	ID:      "E10",
	Group:   "E10",
	Title:   "E10 — round delivery scaling (per-round cost)",
	Notes:   "grid = uniform R2-cell index, receivers consult 3x3 cells; receptions identical across columns",
	Columns: []string{"nodes", "txs", "scan", "grid", "grid+parallel", "speedup"},
	Grid: func(quick bool) []harness.Params {
		rounds := 20
		if quick {
			rounds = 5
		}
		var grid []harness.Params
		for _, n := range sweep(quick, []int{100, 1000, 10000}, []int{100, 1000}) {
			grid = append(grid, harness.Params{
				Label: fmt.Sprintf("n=%d", n),
				Ints:  map[string]int{"n": n, "rounds": rounds},
			})
		}
		return grid
	},
	Run: deliveryScalingCell,
}

func init() { harness.Register(e10Desc) }

// scalingRound scatters n nodes uniformly at constant density (about
// twelve nodes per R2 disk, the regime a large emulation runs in) with a
// quarter of them transmitting.
func scalingRound(n int, seed int64) ([]sim.NodeInfo, []sim.Transmission) {
	side := math.Sqrt(float64(n) / 12 * math.Pi * Radii.R2 * Radii.R2)
	rng := det.NewStream(seed)
	infos := make([]sim.NodeInfo, n)
	var txs []sim.Transmission
	for i := range infos {
		infos[i] = sim.NodeInfo{
			ID:    sim.NodeID(i),
			At:    geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
			Alive: true,
		}
		if rng.Intn(4) == 0 {
			txs = append(txs, sim.Transmission{
				Sender: infos[i].ID,
				From:   infos[i].At,
				Msg:    fmt.Sprintf("m%d", i),
			})
		}
	}
	return infos, txs
}

// timeDeliver measures the mean wall-clock cost of one Deliver call. The
// measurement is E10's output (a Measured column, blanked in deterministic
// runs), so the wall-clock read is deliberate here.
//
//detlint:walltime E10 measures per-round delivery cost; Dur columns are Measured
func timeDeliver(m *radio.Medium, rounds int, txs []sim.Transmission, infos []sim.NodeInfo) time.Duration {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		m.Deliver(sim.Round(r), txs, infos)
	}
	return time.Since(start) / time.Duration(rounds)
}

// deliveryScalingCell is experiment E10 at one deployment size: per-round
// message-delivery cost, comparing the brute-force
// O(receivers x transmissions) scan against the R2-cell grid index,
// sequential and sharded. The grid timings must agree with the scan
// reception-for-reception (the equivalence property tested in
// internal/radio); only the cost changes — so every timing column is a
// measured (nondeterministic) value while nodes/txs stay deterministic.
func deliveryScalingCell(c *harness.Cell) []harness.Row {
	n, rounds := c.Params.Int("n"), c.Params.Int("rounds")
	infos, txs := scalingRound(n, int64(n)+c.Base())
	mode := func(m radio.DeliveryMode, parallel bool) *radio.Medium {
		return radio.MustMedium(radio.Config{
			Radii:    Radii,
			Detector: cd.AC{},
			Mode:     m,
			Parallel: parallel,
			Seed:     c.Seed,
		})
	}
	scan := timeDeliver(mode(radio.ModeScan, false), rounds, txs, infos)
	grid := timeDeliver(mode(radio.ModeGrid, false), rounds, txs, infos)
	par := timeDeliver(mode(radio.ModeGrid, true), rounds, txs, infos)
	c.CountRounds(3 * rounds)
	speedup := float64(scan) / float64(grid)
	return []harness.Row{{
		harness.Int(n), harness.Int(len(txs)),
		harness.Dur(scan), harness.Dur(grid), harness.Dur(par),
		harness.MeasuredFloat(metrics.F(speedup)+"x", speedup),
	}}
}

// DeliveryScaling is the legacy table entry point.
func DeliveryScaling(sizes []int, rounds int) *metrics.Table {
	var rows []harness.Row
	for _, n := range sizes {
		c := &harness.Cell{Seed: 1, Params: harness.Params{
			Ints: map[string]int{"n": n, "rounds": rounds},
		}}
		rows = append(rows, deliveryScalingCell(c)...)
	}
	return e10Desc.TableOf(rows)
}
