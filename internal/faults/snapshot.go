// Snapshot encodings for the adversary plane. Every fault here is a pure
// function of (configuration, round) — none keeps mutable state across
// Strike calls — so a checkpoint needs only the configuration, and these
// encodings exist to fingerprint it: sim.Engine.Restore folds each
// registered fault's AppendTo bytes into a digest and refuses a snapshot
// taken under a different adversary set. Eligible/Respawn closures are
// code, not state; they are excluded from the encodings and must be
// rebuilt by the driver that reconstructs the deployment (the decoders
// return them nil).

package faults

import (
	"vinfra/internal/geo"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// AppendTo appends the canonical encoding of w to dst.
func (w Window) AppendTo(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(w.From))
	return wire.AppendUvarint(dst, uint64(w.Until))
}

// WireSize returns the exact encoded size of w.
func (w Window) WireSize() int {
	return wire.UvarintSize(uint64(w.From)) + wire.UvarintSize(uint64(w.Until))
}

// DecodeWindow decodes one Window from d.
func DecodeWindow(d *wire.Decoder) (Window, error) {
	var w Window
	w.From = sim.Round(d.Uvarint())
	w.Until = sim.Round(d.Uvarint())
	return w, d.Err()
}

// AppendTo appends the canonical encoding of f to dst.
func (f RegionWipe) AppendTo(dst []byte) []byte {
	dst = wire.AppendFloat64(dst, f.Center.X)
	dst = wire.AppendFloat64(dst, f.Center.Y)
	dst = wire.AppendFloat64(dst, f.Radius)
	return wire.AppendUvarint(dst, uint64(f.At))
}

// WireSize returns the exact encoded size of f.
func (f RegionWipe) WireSize() int {
	return 8 + 8 + 8 + wire.UvarintSize(uint64(f.At))
}

// DecodeRegionWipe decodes one RegionWipe from d.
func DecodeRegionWipe(d *wire.Decoder) (RegionWipe, error) {
	var f RegionWipe
	f.Center.X = d.Float64()
	f.Center.Y = d.Float64()
	f.Radius = d.Float64()
	f.At = sim.Round(d.Uvarint())
	return f, d.Err()
}

// AppendTo appends the canonical encoding of f (minus the Eligible
// closure; see the package comment) to dst.
func (f CrashBurst) AppendTo(dst []byte) []byte {
	dst = f.Window.AppendTo(dst)
	dst = wire.AppendVarint(dst, int64(f.Period))
	dst = wire.AppendFloat64(dst, f.P)
	return wire.AppendVarint(dst, f.Seed)
}

// WireSize returns the exact encoded size of f.
func (f CrashBurst) WireSize() int {
	return f.Window.WireSize() + wire.VarintSize(int64(f.Period)) + 8 + wire.VarintSize(f.Seed)
}

// DecodeCrashBurst decodes one CrashBurst from d. Eligible is nil on the
// result; the driver rebuilds it.
func DecodeCrashBurst(d *wire.Decoder) (CrashBurst, error) {
	var f CrashBurst
	w, err := DecodeWindow(d)
	if err != nil {
		return CrashBurst{}, err
	}
	f.Window = w
	f.Period = int(d.Varint())
	f.P = d.Float64()
	f.Seed = d.Varint()
	return f, d.Err()
}

// AppendTo appends the canonical encoding of f (minus the Eligible and
// Respawn closures; see the package comment) to dst.
func (f ChurnStorm) AppendTo(dst []byte) []byte {
	dst = f.Window.AppendTo(dst)
	dst = wire.AppendVarint(dst, int64(f.Period))
	dst = wire.AppendVarint(dst, int64(f.Kills))
	return wire.AppendVarint(dst, f.Seed)
}

// WireSize returns the exact encoded size of f.
func (f ChurnStorm) WireSize() int {
	return f.Window.WireSize() + wire.VarintSize(int64(f.Period)) +
		wire.VarintSize(int64(f.Kills)) + wire.VarintSize(f.Seed)
}

// DecodeChurnStorm decodes one ChurnStorm from d. Eligible and Respawn are
// nil on the result; the driver rebuilds them.
func DecodeChurnStorm(d *wire.Decoder) (ChurnStorm, error) {
	var f ChurnStorm
	w, err := DecodeWindow(d)
	if err != nil {
		return ChurnStorm{}, err
	}
	f.Window = w
	f.Period = int(d.Varint())
	f.Kills = int(d.Varint())
	f.Seed = d.Varint()
	return f, d.Err()
}

// AppendTo appends the canonical encoding of f (minus the Eligible
// closure; see the package comment) to dst.
func (f Herd) AppendTo(dst []byte) []byte {
	dst = f.Window.AppendTo(dst)
	dst = wire.AppendFloat64(dst, f.Focus.X)
	dst = wire.AppendFloat64(dst, f.Focus.Y)
	dst = wire.AppendFloat64(dst, f.Frac)
	dst = wire.AppendFloat64(dst, f.Step)
	return wire.AppendVarint(dst, f.Seed)
}

// WireSize returns the exact encoded size of f.
func (f Herd) WireSize() int {
	return f.Window.WireSize() + 8 + 8 + 8 + 8 + wire.VarintSize(f.Seed)
}

// DecodeHerd decodes one Herd from d. Eligible is nil on the result; the
// driver rebuilds it.
func DecodeHerd(d *wire.Decoder) (Herd, error) {
	var f Herd
	w, err := DecodeWindow(d)
	if err != nil {
		return Herd{}, err
	}
	f.Window = w
	f.Focus.X = d.Float64()
	f.Focus.Y = d.Float64()
	f.Frac = d.Float64()
	f.Step = d.Float64()
	f.Seed = d.Varint()
	return f, d.Err()
}

// AppendTo appends the canonical encoding of f to dst.
func (f CellJammer) AppendTo(dst []byte) []byte {
	dst = f.Window.AppendTo(dst)
	dst = wire.AppendFloat64(dst, f.Bounds.Min.X)
	dst = wire.AppendFloat64(dst, f.Bounds.Min.Y)
	dst = wire.AppendFloat64(dst, f.Bounds.Max.X)
	dst = wire.AppendFloat64(dst, f.Bounds.Max.Y)
	dst = wire.AppendFloat64(dst, f.CellSize)
	dst = wire.AppendVarint(dst, int64(f.Cells))
	return wire.AppendVarint(dst, f.Seed)
}

// WireSize returns the exact encoded size of f.
func (f CellJammer) WireSize() int {
	return f.Window.WireSize() + 8*5 + wire.VarintSize(int64(f.Cells)) + wire.VarintSize(f.Seed)
}

// DecodeCellJammer decodes one CellJammer from d.
func DecodeCellJammer(d *wire.Decoder) (CellJammer, error) {
	var f CellJammer
	w, err := DecodeWindow(d)
	if err != nil {
		return CellJammer{}, err
	}
	f.Window = w
	f.Bounds.Min.X = d.Float64()
	f.Bounds.Min.Y = d.Float64()
	f.Bounds.Max.X = d.Float64()
	f.Bounds.Max.Y = d.Float64()
	f.CellSize = d.Float64()
	f.Cells = int(d.Varint())
	f.Seed = d.Varint()
	return f, d.Err()
}

// AppendTo appends the canonical encoding of f to dst.
func (f RegionJammer) AppendTo(dst []byte) []byte {
	dst = f.Window.AppendTo(dst)
	dst = wire.AppendUvarint(dst, uint64(len(f.Targets)))
	for _, t := range f.Targets {
		dst = wire.AppendFloat64(dst, t.X)
		dst = wire.AppendFloat64(dst, t.Y)
	}
	dst = wire.AppendFloat64(dst, f.Radius)
	dst = wire.AppendVarint(dst, int64(f.Period))
	dst = wire.AppendVarint(dst, int64(f.Burst))
	dst = wire.AppendVarint(dst, int64(f.Rotate))
	return wire.AppendVarint(dst, f.Seed)
}

// WireSize returns the exact encoded size of f.
func (f RegionJammer) WireSize() int {
	return f.Window.WireSize() + wire.UvarintSize(uint64(len(f.Targets))) +
		16*len(f.Targets) + 8 + wire.VarintSize(int64(f.Period)) +
		wire.VarintSize(int64(f.Burst)) + wire.VarintSize(int64(f.Rotate)) +
		wire.VarintSize(f.Seed)
}

// DecodeRegionJammer decodes one RegionJammer from d.
func DecodeRegionJammer(d *wire.Decoder) (RegionJammer, error) {
	var f RegionJammer
	w, err := DecodeWindow(d)
	if err != nil {
		return RegionJammer{}, err
	}
	f.Window = w
	nt := d.Uvarint()
	if nt > uint64(d.Rem()) {
		return RegionJammer{}, wire.ErrMalformed
	}
	f.Targets = make([]geo.Point, 0, nt)
	for i := uint64(0); i < nt; i++ {
		var p geo.Point
		p.X = d.Float64()
		p.Y = d.Float64()
		f.Targets = append(f.Targets, p)
	}
	f.Radius = d.Float64()
	f.Period = int(d.Varint())
	f.Burst = int(d.Varint())
	f.Rotate = int(d.Varint())
	f.Seed = d.Varint()
	return f, d.Err()
}
