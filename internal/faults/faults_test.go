package faults

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// nullMedium delivers nothing: the engine-layer faults are about crashes
// and positions, not propagation.
type nullMedium struct{ out []sim.Reception }

func (m *nullMedium) Deliver(r sim.Round, _ []sim.Transmission, rxs []sim.NodeInfo) []sim.Reception {
	if cap(m.out) < len(rxs) {
		m.out = make([]sim.Reception, len(rxs))
	}
	out := m.out[:len(rxs)]
	for i := range out {
		out[i] = sim.Reception{Round: r}
	}
	return out
}

type idleNode struct{}

func (idleNode) Transmit(sim.Round) sim.Message   { return nil }
func (idleNode) Receive(sim.Round, sim.Reception) {}
func buildIdle(sim.Env) sim.Node                  { return idleNode{} }

// newRig attaches n idle nodes on a horizontal line, one unit apart.
func newRig(n int) *sim.Engine {
	e := sim.NewEngine(&nullMedium{})
	for i := 0; i < n; i++ {
		e.Attach(geo.Point{X: float64(i)}, nil, buildIdle)
	}
	return e
}

func TestWindowActive(t *testing.T) {
	always := Window{}
	if !always.Active(0) || !always.Active(1<<40) {
		t.Error("zero window must always be active")
	}
	w := Window{From: 5, Until: 10}
	for r := sim.Round(0); r < 15; r++ {
		if got, want := w.Active(r), r >= 5 && r < 10; got != want {
			t.Errorf("Active(%d) = %v, want %v", r, got, want)
		}
	}
}

func TestCellJammerDeterministicAndBounded(t *testing.T) {
	j := &CellJammer{
		Bounds:   geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 40, Y: 40}},
		CellSize: 10,
		Cells:    3,
		Seed:     7,
	}
	outside := geo.Point{X: 100, Y: 100}
	jammedRounds := 0
	for r := sim.Round(0); r < 200; r++ {
		for x := 0.0; x <= 40; x += 5 {
			for y := 0.0; y <= 40; y += 5 {
				p := geo.Point{X: x, Y: y}
				first := j.jammed(r, p)
				if first != j.jammed(r, p) {
					t.Fatalf("jammed(%d, %v) not pure", r, p)
				}
				if first {
					jammedRounds++
					if got := j.Filter(r, 1, p, make([]sim.Transmission, 2)); got != nil {
						t.Fatalf("jammed receiver still heard %d messages", len(got))
					}
					if !j.ForceCollision(r, 1, p) {
						t.Fatal("jammed receiver must see a forced collision")
					}
				}
			}
		}
		if j.jammed(r, outside) {
			t.Fatalf("round %d: receiver outside Bounds jammed", r)
		}
	}
	if jammedRounds == 0 {
		t.Fatal("jammer never jammed anything in 200 rounds")
	}
	// A fresh value with the same configuration makes identical choices.
	j2 := &CellJammer{Bounds: j.Bounds, CellSize: 10, Cells: 3, Seed: 7}
	for r := sim.Round(0); r < 50; r++ {
		p := geo.Point{X: 15, Y: 25}
		if j.jammed(r, p) != j2.jammed(r, p) {
			t.Fatalf("round %d: same seed, different verdicts", r)
		}
	}
}

func TestRegionJammerDutyCycle(t *testing.T) {
	j := &RegionJammer{
		Window:  Window{From: 4, Until: 40},
		Targets: []geo.Point{{X: 0, Y: 0}},
		Radius:  2,
		Period:  6,
		Burst:   2,
	}
	in, out := geo.Point{X: 1}, geo.Point{X: 3}
	for r := sim.Round(0); r < 50; r++ {
		want := r >= 4 && r < 40 && (r-4)%6 < 2
		if got := j.jammed(r, in); got != want {
			t.Errorf("round %d: jammed(in) = %v, want %v", r, got, want)
		}
		if j.jammed(r, out) {
			t.Errorf("round %d: receiver outside the footprint jammed", r)
		}
	}
}

func TestRegionJammerRotateIsDeterministicSubset(t *testing.T) {
	targets := []geo.Point{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	j := &RegionJammer{Targets: targets, Radius: 1, Period: 4, Burst: 4, Rotate: 1, Seed: 3}
	for cycle := 0; cycle < 8; cycle++ {
		r := sim.Round(cycle * 4)
		jammedTargets := 0
		for _, tp := range targets {
			if j.jammed(r, tp) {
				jammedTargets++
			}
		}
		if jammedTargets != 1 {
			t.Fatalf("cycle %d: %d targets jammed, want exactly 1", cycle, jammedTargets)
		}
		// The whole cycle jams the same target.
		for phase := 1; phase < 4; phase++ {
			for _, tp := range targets {
				if j.jammed(r, tp) != j.jammed(r+sim.Round(phase), tp) {
					t.Fatalf("cycle %d: target set changed mid-cycle", cycle)
				}
			}
		}
	}
}

func TestRegionWipeCrashesExactlyTheRegion(t *testing.T) {
	e := newRig(10) // nodes at x = 0..9
	e.AddFault(RegionWipe{Center: geo.Point{X: 2}, Radius: 1.5, At: 3})
	e.Run(3)
	if e.AliveCount() != 10 {
		t.Fatalf("wipe fired early: %d alive before round 3", e.AliveCount())
	}
	e.Run(1)
	for id := 0; id < 10; id++ {
		wantDead := id >= 1 && id <= 3 // |x-2| <= 1.5
		if e.Alive(sim.NodeID(id)) == wantDead {
			t.Errorf("node %d: alive=%v after wipe of [0.5, 3.5]", id, e.Alive(sim.NodeID(id)))
		}
	}
}

func TestCrashBurstProbabilityOneKillsAllEligible(t *testing.T) {
	e := newRig(8)
	e.AddFault(&CrashBurst{
		Window:   Window{From: 2, Until: 3},
		P:        1,
		Seed:     1,
		Eligible: func(id sim.NodeID) bool { return id%2 == 0 },
	})
	e.Run(5)
	for id := 0; id < 8; id++ {
		if got, want := e.Alive(sim.NodeID(id)), id%2 == 1; got != want {
			t.Errorf("node %d: alive=%v, want %v", id, got, want)
		}
	}
}

func TestChurnStormKillsAndRespawns(t *testing.T) {
	run := func() (victims []sim.NodeID, positions []geo.Point, alive int) {
		e := newRig(6)
		storm := &ChurnStorm{
			Window: Window{From: 1, Until: 9},
			Period: 4, // fronts at rounds 1 and 5
			Kills:  2,
			Seed:   9,
		}
		storm.Respawn = func(v sim.NodeID, at geo.Point) {
			victims = append(victims, v)
			positions = append(positions, at)
			e.Attach(geo.Point{X: at.X + 0.25}, nil, buildIdle)
		}
		e.AddFault(storm)
		e.Run(10)
		return victims, positions, e.AliveCount()
	}
	v1, p1, alive1 := run()
	v2, p2, _ := run()
	if len(v1) != 4 {
		t.Fatalf("%d victims, want 2 fronts x 2 kills", len(v1))
	}
	if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(p1, p2) {
		t.Fatalf("storm not deterministic: %v vs %v", v1, v2)
	}
	if alive1 != 6 { // 6 start - 4 killed + 4 respawned = 6
		t.Fatalf("alive = %d after kill-and-respawn, want 6", alive1)
	}
	seen := map[sim.NodeID]bool{}
	for i, v := range v1 {
		if int(v) >= 6+i {
			t.Errorf("victim %v out of range", v)
		}
		if seen[v] {
			t.Errorf("victim %v killed twice", v)
		}
		seen[v] = true
	}
}

func TestHerdPullsCohortTowardFocus(t *testing.T) {
	e := newRig(20)
	focus := geo.Point{X: 50, Y: 50}
	e.AddFault(&Herd{Focus: focus, Frac: 0.5, Step: 1, Seed: 4})
	start := make([]geo.Point, 20)
	for id := range start {
		start[id] = e.Position(sim.NodeID(id))
	}
	e.Run(8)
	moved := 0
	for id := 0; id < 20; id++ {
		cur := e.Position(sim.NodeID(id))
		if cur == start[id] {
			continue
		}
		moved++
		gained := start[id].Dist(focus) - cur.Dist(focus)
		if gained < 7.99 || gained > 8.01 { // 8 rounds x Step 1, far from focus
			t.Errorf("node %d gained %.3f toward focus, want ~8", id, gained)
		}
	}
	if moved == 0 || moved == 20 {
		t.Fatalf("herded cohort = %d of 20, want a strict subset", moved)
	}
	// Membership is stable: run more rounds, the same nodes keep moving.
	mid := make([]geo.Point, 20)
	for id := range mid {
		mid[id] = e.Position(sim.NodeID(id))
	}
	e.Run(2)
	for id := 0; id < 20; id++ {
		wasMoving := mid[id] != start[id]
		stillMoving := e.Position(sim.NodeID(id)) != mid[id]
		if wasMoving != stillMoving {
			t.Errorf("node %d: cohort membership flapped", id)
		}
	}
}

func TestFaultsComposeInOrder(t *testing.T) {
	e := newRig(4)
	var order []string
	mk := func(name string) sim.Fault {
		return strikeFunc(func(r sim.Round, _ sim.Control) {
			if r == 0 {
				order = append(order, name)
			}
		})
	}
	e.AddFault(Faults{mk("a"), mk("b"), mk("c")})
	e.Run(1)
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Fatalf("strike order %v", order)
	}
}

type strikeFunc func(r sim.Round, ctl sim.Control)

func (f strikeFunc) Strike(r sim.Round, ctl sim.Control) { f(r, ctl) }

// beacon transmits every round, so OnRound transmission counts reveal
// exactly which round a crash took effect in.
type beacon struct{}

func (beacon) Transmit(sim.Round) sim.Message   { return "b" }
func (beacon) Receive(sim.Round, sim.Reception) {}

// TestFaultCrashAtNextRoundIsNotEarly pins the Strike/round-counter order:
// a fault that schedules CrashAt(id, r+1) while striking at round r must
// leave the node alive through round r (it still transmits) and dead from
// round r+1 — not crash it immediately because the engine had already
// advanced its round counter.
func TestFaultCrashAtNextRoundIsNotEarly(t *testing.T) {
	e := sim.NewEngine(&nullMedium{})
	id := e.Attach(geo.Point{}, nil, func(sim.Env) sim.Node { return beacon{} })
	e.AddFault(strikeFunc(func(r sim.Round, ctl sim.Control) {
		if r == 1 {
			ctl.CrashAt(id, 2)
		}
	}))
	var txs []int
	e.OnRound(func(_ sim.Round, t []sim.Transmission, _ []sim.Reception) {
		txs = append(txs, len(t))
	})
	e.Run(3)
	if want := []int{1, 1, 0}; !reflect.DeepEqual(txs, want) {
		t.Fatalf("transmissions per round = %v, want %v (CrashAt(r+1) from Strike(r) must not crash early)", txs, want)
	}
}
