package faults

import (
	"sort"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Faults composes engine-level adversaries: each member strikes in order.
// Registering several faults on the engine is equivalent; Faults exists so
// a whole attack schedule can be passed around as one value.
type Faults []sim.Fault

var _ sim.Fault = Faults(nil)

// Strike implements sim.Fault.
func (fs Faults) Strike(r sim.Round, ctl sim.Control) {
	for _, f := range fs {
		f.Strike(r, ctl)
	}
}

// RegionWipe is a correlated crash: at round At, every alive node within
// Radius of Center fails at once — the "all replicas of a virtual node die
// together" scenario that forces the reset path of Section 4.3, as opposed
// to the one-at-a-time churn the join protocol absorbs.
type RegionWipe struct {
	Center geo.Point
	Radius float64
	At     sim.Round
}

var _ sim.Fault = RegionWipe{}

// Strike implements sim.Fault.
func (w RegionWipe) Strike(r sim.Round, ctl sim.Control) {
	if r != w.At {
		return
	}
	for id := 0; id < ctl.NumNodes(); id++ {
		nid := sim.NodeID(id)
		if ctl.Alive(nid) && ctl.Position(nid).Within(w.Center, w.Radius) {
			ctl.Crash(nid)
		}
	}
}

// CrashBurst fails a deterministic random fraction of the population in
// correlated bursts: at the start of every Period-round cycle inside its
// window, each alive eligible node crashes with probability P, drawn from
// the pure hash (Seed, cycle, node) — the same nodes die whatever order
// anything runs in.
type CrashBurst struct {
	Window
	Period int     // rounds between bursts; <= 0 means every round
	P      float64 // per-node crash probability per burst
	Seed   int64
	// Eligible restricts the victims (nil means every node). E13 uses it
	// to spare measurement clients so the columns keep reporting.
	Eligible func(id sim.NodeID) bool
}

var _ sim.Fault = (*CrashBurst)(nil)

// Strike implements sim.Fault.
func (b *CrashBurst) Strike(r sim.Round, ctl sim.Control) {
	if !b.Active(r) || b.P <= 0 {
		return
	}
	cycle, phase := b.cycleAt(r, b.Period)
	if phase != 0 {
		return
	}
	for id := 0; id < ctl.NumNodes(); id++ {
		nid := sim.NodeID(id)
		if !ctl.Alive(nid) || (b.Eligible != nil && !b.Eligible(nid)) {
			continue
		}
		if u01(hashKeys(b.Seed, cycle, int64(id))) < b.P {
			ctl.Crash(nid)
		}
	}
}

// ChurnStorm sustains adversarial turnover: at the start of every
// Period-round cycle inside its window it kills the Kills eligible alive
// nodes with the smallest (Seed, cycle, node) hashes and, for each, invokes
// Respawn with the victim and its final position — the experiment's chance
// to attach a replacement device (a fresh emulator that must re-acquire
// state through the join protocol). With Respawn nil the storm is pure
// attrition.
type ChurnStorm struct {
	Window
	Period int // rounds between storm fronts; <= 0 means every round
	Kills  int // victims per front
	Seed   int64
	// Eligible restricts the victims (nil means every node).
	Eligible func(id sim.NodeID) bool
	// Respawn, if non-nil, runs after each victim's crash, on the engine
	// goroutine. It may attach replacement nodes via a closed-over engine.
	Respawn func(victim sim.NodeID, at geo.Point)
}

var _ sim.Fault = (*ChurnStorm)(nil)

// Strike implements sim.Fault.
func (s *ChurnStorm) Strike(r sim.Round, ctl sim.Control) {
	if !s.Active(r) || s.Kills <= 0 {
		return
	}
	cycle, phase := s.cycleAt(r, s.Period)
	if phase != 0 {
		return
	}
	// Rank the candidates by hash (ties by id — distinct ids give distinct
	// hashes virtually always, but the order must be total) and take the
	// smallest. NumNodes is read once: respawned nodes join next cycle's
	// candidate pool, not this one's.
	type victim struct {
		h  uint64
		id sim.NodeID
	}
	var cands []victim
	n := ctl.NumNodes()
	for id := 0; id < n; id++ {
		nid := sim.NodeID(id)
		if !ctl.Alive(nid) || (s.Eligible != nil && !s.Eligible(nid)) {
			continue
		}
		cands = append(cands, victim{h: hashKeys(s.Seed, cycle, int64(id)), id: nid})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].h != cands[b].h {
			return cands[a].h < cands[b].h
		}
		return cands[a].id < cands[b].id
	})
	if len(cands) > s.Kills {
		cands = cands[:s.Kills]
	}
	for _, v := range cands {
		at := ctl.Position(v.id)
		ctl.Crash(v.id)
		if s.Respawn != nil {
			s.Respawn(v.id, at)
		}
	}
}

// Herd is adversarial mobility: every round inside its window it drags its
// stable hash-picked cohort (fraction Frac of the eligible population)
// Step distance toward Focus. Held under the model's speed bound vmax,
// the pull empties outlying regions of replicas while overcrowding the
// focal one — contention pressure the contention managers must absorb.
type Herd struct {
	Window
	Focus geo.Point
	Frac  float64 // fraction of eligible nodes herded (stable per node)
	Step  float64 // per-round pull distance; keep <= vmax
	Seed  int64
	// Eligible restricts the herd (nil means every node).
	Eligible func(id sim.NodeID) bool
}

var _ sim.Fault = (*Herd)(nil)

// Strike implements sim.Fault.
func (h *Herd) Strike(r sim.Round, ctl sim.Control) {
	if !h.Active(r) || h.Frac <= 0 || h.Step <= 0 {
		return
	}
	for id := 0; id < ctl.NumNodes(); id++ {
		nid := sim.NodeID(id)
		if !ctl.Alive(nid) || (h.Eligible != nil && !h.Eligible(nid)) {
			continue
		}
		// Membership is keyed by node only: the same cohort is dragged
		// every round, the worst case for the regions it abandons.
		if u01(hashKeys(h.Seed, int64(id))) >= h.Frac {
			continue
		}
		pos := ctl.Position(nid)
		d := h.Focus.Sub(pos)
		if l := d.Len(); l <= h.Step {
			ctl.SetPosition(nid, h.Focus)
		} else {
			ctl.SetPosition(nid, pos.Add(d.Unit().Scale(h.Step)))
		}
	}
}
