package faults

import (
	"vinfra/internal/geo"
	"vinfra/internal/radio"
	"vinfra/internal/sim"
)

// Window bounds an adversary's activity to the rounds [From, Until). The
// zero value is "always active"; Until == 0 means no upper horizon. An
// adversary whose window has passed is the identity — the model's
// collision-freedom horizon r_cf.
type Window struct {
	From  sim.Round
	Until sim.Round
}

// Active reports whether round r falls inside the window.
func (w Window) Active(r sim.Round) bool {
	return r >= w.From && (w.Until == 0 || r < w.Until)
}

// cycleAt decomposes round r into its duty cycle: the 0-based index of the
// period-round cycle since the window opened, and r's phase within it.
// period <= 0 means every round is its own cycle (phase always 0) — the
// shared convention behind "Period <= 0 strikes/jams every round".
func (w Window) cycleAt(r sim.Round, period int) (cycle, phase int64) {
	since := int64(r - w.From)
	if period <= 0 {
		return since, 0
	}
	return since / int64(period), since % int64(period)
}

// Jammers composes radio-layer adversaries: deliveries pass through every
// member's Filter in order (each sees the previous survivor set), and a
// spurious indication is forced when any member forces one. Members are
// stateless pure functions of (configuration, round, position) like the
// jammers below, so the composite stays safe for the parallel medium's
// concurrent, order-free use. It exists so a deployment spec can stack
// several jammers behind the medium's single Adversary slot.
type Jammers []radio.Adversary

var _ radio.Adversary = Jammers(nil)

// Filter implements radio.Adversary.
func (js Jammers) Filter(r sim.Round, receiver sim.NodeID, at geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	for _, j := range js {
		deliverable = j.Filter(r, receiver, at, deliverable)
	}
	return deliverable
}

// ForceCollision implements radio.Adversary.
func (js Jammers) ForceCollision(r sim.Round, receiver sim.NodeID, at geo.Point) bool {
	for _, j := range js {
		if j.ForceCollision(r, receiver, at) {
			return true
		}
	}
	return false
}

// CellJammer is a roaming wide-band jammer: each round it deterministically
// picks Cells cells of a CellSize-spaced grid over Bounds and saturates
// them — every receiver standing in a jammed cell loses all otherwise
// deliverable messages (a ground-truth loss that fires complete collision
// detectors for real) and gets a forced ± indication (the spurious side
// eventually-accurate detectors must learn to suppress).
//
// The jammed cell set is a pure hash of (Seed, round, k), and membership is
// a pure function of the receiver's position, so the jammer is stateless
// and safe for the parallel medium's concurrent, order-free use.
type CellJammer struct {
	Window
	Bounds   geo.Rect
	CellSize float64 // jamming footprint; R2 mirrors the medium's cell size
	// Cells is the number of per-round saturation picks (the intensity
	// knob). Picks are hash draws with replacement, so a round may jam
	// fewer distinct cells when draws collide; Cells is an upper bound,
	// not an exact count.
	Cells int
	Seed  int64
}

var _ radio.Adversary = (*CellJammer)(nil)

// jammed reports whether a receiver at p is inside a saturated cell in
// round r.
func (j *CellJammer) jammed(r sim.Round, p geo.Point) bool {
	if !j.Active(r) || j.Cells <= 0 || j.CellSize <= 0 || !j.Bounds.Contains(p) {
		return false
	}
	cols := int(j.Bounds.Width()/j.CellSize) + 1
	rows := int(j.Bounds.Height()/j.CellSize) + 1
	cx := int((p.X - j.Bounds.Min.X) / j.CellSize)
	cy := int((p.Y - j.Bounds.Min.Y) / j.CellSize)
	cell := int64(cy*cols + cx)
	n := int64(cols * rows)
	for k := 0; k < j.Cells; k++ {
		if int64(hashKeys(j.Seed, int64(r), int64(k))%uint64(n)) == cell {
			return true
		}
	}
	return false
}

// Filter implements radio.Adversary.
func (j *CellJammer) Filter(r sim.Round, _ sim.NodeID, at geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	if j.jammed(r, at) {
		return nil
	}
	return deliverable
}

// ForceCollision implements radio.Adversary.
func (j *CellJammer) ForceCollision(r sim.Round, _ sim.NodeID, at geo.Point) bool {
	return j.jammed(r, at)
}

// RegionJammer parks a jammer on fixed targets — virtual-node locations,
// in the E13 campaign — with a duty cycle: within its window it jams for
// the first Burst rounds of every Period-round cycle. Rotate limits the
// attack to a per-cycle hash-picked subset of the targets (0 jams all of
// them), so the same adversary expresses both a standing area denial and a
// hopping targeted one. Receivers within Radius of a jammed target lose
// everything and get a forced ± indication, exactly like CellJammer.
type RegionJammer struct {
	Window
	Targets []geo.Point
	Radius  float64
	Period  int // duty-cycle length in rounds; <= 0 means always jamming
	Burst   int // jammed rounds at the start of each cycle
	// Rotate is the number of per-cycle target picks; 0 means every
	// target. Picks are hash draws with replacement, so a cycle may jam
	// fewer distinct targets when draws collide; Rotate is an upper
	// bound, not an exact count.
	Rotate int
	Seed   int64
}

var _ radio.Adversary = (*RegionJammer)(nil)

// jammed reports whether a receiver at p is inside a jammed footprint in
// round r.
func (j *RegionJammer) jammed(r sim.Round, p geo.Point) bool {
	if !j.Active(r) || len(j.Targets) == 0 {
		return false
	}
	cycle, phase := j.cycleAt(r, j.Period)
	if j.Period > 0 && phase >= int64(j.Burst) {
		return false
	}
	if j.Rotate <= 0 || j.Rotate >= len(j.Targets) {
		for _, t := range j.Targets {
			if p.Within(t, j.Radius) {
				return true
			}
		}
		return false
	}
	for k := 0; k < j.Rotate; k++ {
		t := j.Targets[hashKeys(j.Seed, cycle, int64(k))%uint64(len(j.Targets))]
		if p.Within(t, j.Radius) {
			return true
		}
	}
	return false
}

// Filter implements radio.Adversary.
func (j *RegionJammer) Filter(r sim.Round, _ sim.NodeID, at geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	if j.jammed(r, at) {
		return nil
	}
	return deliverable
}

// ForceCollision implements radio.Adversary.
func (j *RegionJammer) ForceCollision(r sim.Round, _ sim.NodeID, at geo.Point) bool {
	return j.jammed(r, at)
}
