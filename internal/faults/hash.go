package faults

import "vinfra/internal/radio"

// hashKeys is radio.HashKeys, the deterministic stack's single keyed-hash
// primitive (SplitMix64 folding): every adversary draw is a pure function
// of its keys, so adversaries carry no mutable state and are safe for the
// concurrent, order-free use the parallel medium makes of them. Sharing
// the primitive with radio keeps the two layers' determinism contracts in
// lockstep by construction.
var hashKeys = radio.HashKeys

// u01 is radio.U01, the matching hash-to-uniform mapping.
var u01 = radio.U01
