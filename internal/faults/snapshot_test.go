package faults

import (
	"bytes"
	"reflect"
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// trioRoundTrip pins one adversary's wire trio: encoded length equals
// WireSize, decoding reproduces the value, re-encoding is byte-identical.
func trioRoundTrip[T any](t *testing.T, v T, enc func(T, []byte) []byte, size func(T) int, dec func(*wire.Decoder) (T, error)) {
	t.Helper()
	b := enc(v, nil)
	if len(b) != size(v) {
		t.Fatalf("%T: WireSize = %d, encoded %d bytes", v, size(v), len(b))
	}
	d := wire.Dec(b)
	got, err := dec(&d)
	if err != nil {
		t.Fatalf("%T: decode: %v", v, err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("%T: finish: %v", v, err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("%T: decode(encode(v)) != v:\ngot:  %+v\nwant: %+v", v, got, v)
	}
	if !bytes.Equal(enc(got, nil), b) {
		t.Fatalf("%T: re-encoding changes bytes", v)
	}
}

// TestAdversarySnapshotRoundTrips covers every adversary's canonical
// encoding. Closure fields (Eligible, Respawn) are configuration code, not
// state: they are deliberately absent from the encodings, and the fixtures
// leave them nil so a full-struct comparison stays meaningful.
func TestAdversarySnapshotRoundTrips(t *testing.T) {
	trioRoundTrip(t, Window{From: 3, Until: 99},
		Window.AppendTo, Window.WireSize, DecodeWindow)
	trioRoundTrip(t, RegionWipe{Center: geo.Point{X: 1.5, Y: -2.25}, Radius: 4, At: 17},
		RegionWipe.AppendTo, RegionWipe.WireSize, DecodeRegionWipe)
	trioRoundTrip(t, CrashBurst{Window: Window{From: 2}, Period: 8, P: 0.25, Seed: 101},
		CrashBurst.AppendTo, CrashBurst.WireSize, DecodeCrashBurst)
	trioRoundTrip(t, ChurnStorm{Window: Window{From: 1, Until: 50}, Period: 4, Kills: 2, Seed: 7},
		ChurnStorm.AppendTo, ChurnStorm.WireSize, DecodeChurnStorm)
	trioRoundTrip(t, Herd{Window: Window{From: 5}, Focus: geo.Point{X: 3, Y: 4}, Frac: 0.5, Step: 1.25, Seed: 11},
		Herd.AppendTo, Herd.WireSize, DecodeHerd)
	trioRoundTrip(t, CellJammer{
		Window: Window{From: 1}, Bounds: geo.Rect{Min: geo.Point{X: -1, Y: -1}, Max: geo.Point{X: 9, Y: 9}},
		CellSize: 2.5, Cells: 3, Seed: 13,
	}, CellJammer.AppendTo, CellJammer.WireSize, DecodeCellJammer)
	trioRoundTrip(t, RegionJammer{
		Window: Window{From: 4}, Targets: []geo.Point{{X: 0, Y: 0}, {X: 6, Y: 0}},
		Radius: 2.5, Period: 12, Burst: 3, Rotate: 2, Seed: 17,
	}, RegionJammer.AppendTo, RegionJammer.WireSize, DecodeRegionJammer)
}

// TestAdversaryEncodingsOmitClosures pins the design decision that the
// encodings fingerprint configuration only: two storms differing solely in
// their closures encode identically (the engine's fault digest therefore
// cannot distinguish them — the driver must rebuild matching closures,
// which is the restore protocol's contract).
func TestAdversaryEncodingsOmitClosures(t *testing.T) {
	plain := ChurnStorm{Period: 4, Kills: 1, Seed: 3}
	wired := plain
	wired.Eligible = func(sim.NodeID) bool { return true }
	wired.Respawn = func(sim.NodeID, geo.Point) {}
	if !bytes.Equal(plain.AppendTo(nil), wired.AppendTo(nil)) {
		t.Fatal("closures leak into the ChurnStorm encoding")
	}
}
