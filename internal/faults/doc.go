// Package faults is the deterministic adversary plane: seedable, composable
// attack schedules that plug into the stack at its three layers and drive
// the collision detectors (internal/cd), contention managers (internal/cm)
// and the virtual-node emulation (internal/vi) near their specified limits —
// actively hostile scenarios rather than the benign stochastic loss of
// radio.RandomLoss.
//
// # Threat model
//
// The paper's model (Section 2) grants the environment three powers, and
// the plane implements an adversary for each:
//
//   - Channel interference. Before the collision-freedom horizon the
//     adversary may destroy arbitrary messages and force spurious collision
//     indications. CellJammer and RegionJammer implement the spatial
//     version of that power as radio.Adversary values: every receiver
//     standing in a jammed cell (or within a jammed target's footprint)
//     loses everything it would have heard and gets a ± indication — a
//     ground-truth loss, so complete detectors (cd.AC, cd.EventuallyAC)
//     fire for real, and a forced indication, so eventually-accurate
//     detectors are exercised on their suppression side too.
//
//   - Crash failures. Nodes may fail at arbitrary times, in arbitrary
//     correlated batches. RegionWipe (every replica of a region at once),
//     CrashBurst (a deterministic fraction of the population on a duty
//     cycle) and ChurnStorm (kill-and-respawn at a sustained rate) are
//     sim.Fault values the engine consults at the start of every round.
//
//   - Mobility. Devices move adversarially within the speed bound. Herd
//     drags a cohort toward a focal point, emptying some regions (replica
//     starvation) while overcrowding another (join/contention pressure).
//
// # Determinism
//
// Every adversary derives all of its choices from pure hashes of
// (Seed, round, node/cell) — no internal mutable state, no dependence on
// call order. The radio adversaries are invoked concurrently by the
// parallel medium and the sim faults sequentially by the engine; in both
// cases the same seed produces byte-identical runs, sequential or parallel
// (pinned by TestAdversaryParallelEqualsSequential in
// internal/experiments).
//
// # Snapshot contract
//
// Adversaries are configuration, not state: because every choice is a
// pure hash of (Seed, round, node/cell), a restored run replays an attack
// schedule exactly without the adversary carrying anything between
// rounds. Each adversary therefore encodes only its configuration through
// the canonical wire trio (AppendTo/WireSize/Decode<Type>), and the
// engine folds those encodings into the fault digest that
// sim.EngineSnapshot carries — a checkpoint refuses to resume against a
// different attack schedule. Closure fields (Eligible, Respawn) are code,
// not data: they are deliberately absent from the encodings (pinned by
// TestAdversaryEncodingsOmitClosures), so the restore protocol requires
// the driver to rebuild matching closures before overlaying the
// checkpoint — the same rebuild-then-overlay rule as programs and
// factories.
//
// # Adding an adversary
//
// A new radio-layer attack implements radio.Adversary: Filter decides what
// a receiver at a known position keeps, ForceCollision whether its detector
// is jammed; both must be pure functions of (round, receiver, position) and
// the adversary's configuration. A new engine-layer attack implements
// sim.Fault: Strike(r, ctl) runs once per round on the engine goroutine and
// may crash, relocate or (via a closed-over engine) attach nodes; derive
// any randomness with hashes keyed by (Seed, r, id), never from shared
// RNGs. Compose radio attacks with radio.Compose and engine attacks by
// registering several faults (or with Faults). Experiment E13 is the
// reference wiring: one adversary kind x intensity per cell, availability
// and recovery measured by vi.Monitor.
package faults
