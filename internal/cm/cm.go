// Package cm implements the contention managers of Section 2. A contention
// manager advises each contending node whether to be active (broadcast) or
// passive in a round; the leader-election guarantee (Property 3) says that
// eventually at most one node is advised to be active in every round, and
// that if a correct node contends forever, eventually some correct node is
// advised active in every round.
//
// The paper deliberately decouples contention management from the agreement
// protocol — "the problem of designing efficient back-off protocols ... is
// not the focus of this paper; we believe even a simple exponential
// back-off scheme to be sufficient" — so this package provides exactly
// that: a randomized exponential backoff manager (Backoff), an idealized
// oracle (Fixed) for controlled experiments, and the regional manager used
// by the virtual infrastructure emulation (Regional, Section 4.2).
package cm

import (
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Feedback tells a node's contention manager what the node perceived on
// the channel in a round in which it contended.
type Feedback int

// Feedback values.
const (
	// FeedbackSilence: nothing was received and no collision indicated.
	FeedbackSilence Feedback = iota + 1
	// FeedbackWon: this node broadcast and observed no collision.
	FeedbackWon
	// FeedbackLost: another node's message was received cleanly, so a
	// competing leader exists.
	FeedbackLost
	// FeedbackCollision: the collision detector reported ±.
	FeedbackCollision
)

// String implements fmt.Stringer.
func (f Feedback) String() string {
	switch f {
	case FeedbackSilence:
		return "silence"
	case FeedbackWon:
		return "won"
	case FeedbackLost:
		return "lost"
	case FeedbackCollision:
		return "collision"
	default:
		return "unknown"
	}
}

// Manager is a per-node contention manager instance (the cm-wakeup() input
// of Figure 1). Advice corresponds to contending for the round and reading
// the manager's advice; Observe closes the loop with channel feedback.
type Manager interface {
	// Advice reports whether the node should broadcast in round r.
	Advice(r sim.Round) bool
	// Observe feeds back the channel outcome of round r.
	Observe(r sim.Round, fb Feedback)
}

// Factory builds a Manager for one node, given its engine environment
// (identity, location, deterministic randomness).
type Factory func(env sim.Env) Manager

// Fixed is an oracle manager: the node whose ID matches Leader is always
// active; everyone else is always passive. It trivially satisfies
// Property 3 from round 0 and gives the protocols their best case, which
// is what the overhead measurements of Theorem 14 call for. The Leader
// pointer is shared so tests can re-elect after a crash.
type Fixed struct {
	leader *sim.NodeID
	env    sim.Env
}

// NewFixed returns a factory of oracle managers sharing the election state,
// plus a setter to change the leader (e.g., after crashing it in a test).
func NewFixed(initial sim.NodeID) (Factory, func(sim.NodeID)) {
	leader := initial
	factory := func(env sim.Env) Manager {
		return &Fixed{leader: &leader, env: env}
	}
	set := func(id sim.NodeID) { leader = id }
	return factory, set
}

// Advice implements Manager.
func (f *Fixed) Advice(sim.Round) bool { return f.env.ID() == *f.leader }

// Observe implements Manager.
func (f *Fixed) Observe(sim.Round, Feedback) {}

// BackoffConfig parameterizes the randomized exponential backoff manager.
// The zero value selects the defaults.
type BackoffConfig struct {
	// WMax caps the contention window. Default 32.
	WMax int
	// DeferRounds is how many rounds a node stays passive after hearing a
	// competing leader win the channel. Default 24.
	DeferRounds int
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.WMax <= 0 {
		c.WMax = 32
	}
	if c.DeferRounds <= 0 {
		c.DeferRounds = 24
	}
	return c
}

// Backoff is a randomized exponential backoff leader election: each node
// broadcasts with probability 1/w; collisions double w, silence halves it,
// winning resets it to 1, and losing (hearing another leader) defers for a
// fixed period. Once one node wins, it stays active every round while all
// others defer — satisfying Property 3 for as long as the leader survives,
// and re-electing when it crashes (the deferral expires in silence).
type Backoff struct {
	cfg        BackoffConfig
	env        sim.Env
	w          int
	deferUntil sim.Round
}

// NewBackoff returns a Factory building independent Backoff managers.
func NewBackoff(cfg BackoffConfig) Factory {
	cfg = cfg.withDefaults()
	return func(env sim.Env) Manager {
		return &Backoff{cfg: cfg, env: env, w: 1}
	}
}

// Advice implements Manager.
func (b *Backoff) Advice(r sim.Round) bool {
	if r < b.deferUntil {
		return false
	}
	if b.w <= 1 {
		return true
	}
	return b.env.Intn(b.w) == 0
}

// Observe implements Manager.
func (b *Backoff) Observe(r sim.Round, fb Feedback) {
	switch fb {
	case FeedbackWon:
		b.w = 1
	case FeedbackLost:
		b.deferUntil = r + sim.Round(b.cfg.DeferRounds)
	case FeedbackCollision:
		b.w *= 2
		if b.w > b.cfg.WMax {
			b.w = b.cfg.WMax
		}
	case FeedbackSilence:
		b.w /= 2
		if b.w < 1 {
			b.w = 1
		}
	}
}

// RegionalConfig parameterizes the regional contention manager of
// Section 4.2, which elects "temporary leaders" that remain within
// distance R1/4 of the virtual node location for 2(s+10) rounds.
type RegionalConfig struct {
	// Location is the virtual node location l the manager serves.
	Location geo.Point
	// Radius is the leader-eligibility region (R1/4 in the paper).
	Radius float64
	// VMax bounds node speed; eligibility shrinks by VMax*Horizon so an
	// elected leader cannot exit the region before the horizon elapses.
	VMax float64
	// Horizon is the number of rounds a temporary leader must remain in
	// the region (2(s+10) in the paper).
	Horizon int
	// Backoff tunes the underlying randomized election.
	Backoff BackoffConfig
}

// Regional combines eligibility-by-location with exponential backoff: a
// node only competes while it sits deep enough inside the region that its
// bounded speed cannot carry it out within the horizon.
type Regional struct {
	cfg RegionalConfig
	env sim.Env
	b   *Backoff
}

// NewRegional returns a Factory of regional managers for one virtual node
// location.
func NewRegional(cfg RegionalConfig) Factory {
	cfg.Backoff = cfg.Backoff.withDefaults()
	return func(env sim.Env) Manager {
		return &Regional{
			cfg: cfg,
			env: env,
			b:   &Backoff{cfg: cfg.Backoff, env: env, w: 1},
		}
	}
}

// Eligible reports whether the node is currently allowed to compete:
// within the shrunken region Radius - VMax*Horizon of the location.
func (m *Regional) Eligible() bool {
	margin := m.cfg.Radius - m.cfg.VMax*float64(m.cfg.Horizon)
	if margin < 0 {
		margin = 0
	}
	return m.env.Location().Within(m.cfg.Location, margin)
}

// Advice implements Manager.
func (m *Regional) Advice(r sim.Round) bool {
	if !m.Eligible() {
		return false
	}
	return m.b.Advice(r)
}

// Observe implements Manager.
func (m *Regional) Observe(r sim.Round, fb Feedback) {
	m.b.Observe(r, fb)
}
