// Snapshot support: every Manager in this package implements the
// sim.Snapshotter blob contract (AppendState/RestoreState) so the vi
// emulator can fold its contention manager's position into a checkpoint.
// Managers are rebuilt by the deployment's Factory on restore —
// configuration and environment are code — and only the genuinely mutable
// fields travel in the blob.

package cm

import (
	"vinfra/internal/sim"
	"vinfra/internal/wire"
)

// AppendState records the shared election state (the current leader).
func (f *Fixed) AppendState(dst []byte) []byte {
	return wire.AppendVarint(dst, int64(*f.leader))
}

// RestoreState restores the shared election state. Because the leader
// variable is shared by every Fixed built by the same factory, restoring
// any one of them restores them all (they were snapshotted with the same
// value, so repeated restores are idempotent).
func (f *Fixed) RestoreState(data []byte) error {
	d := wire.Dec(data)
	*f.leader = sim.NodeID(d.Varint())
	return d.Finish()
}

// AppendState records the contention window and deferral horizon.
func (b *Backoff) AppendState(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(b.w))
	return wire.AppendUvarint(dst, uint64(b.deferUntil))
}

// RestoreState restores the contention window and deferral horizon.
func (b *Backoff) RestoreState(data []byte) error {
	d := wire.Dec(data)
	b.w = int(d.Uvarint())
	b.deferUntil = sim.Round(d.Uvarint())
	return d.Finish()
}

// AppendState delegates to the embedded Backoff (eligibility is a pure
// function of position and configuration).
func (m *Regional) AppendState(dst []byte) []byte {
	return m.b.AppendState(dst)
}

// RestoreState delegates to the embedded Backoff.
func (m *Regional) RestoreState(data []byte) error {
	return m.b.RestoreState(data)
}
