package cm

import (
	"math/rand"
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

type fakeEnv struct {
	id  sim.NodeID
	loc geo.Point
	rng *rand.Rand
}

func (e *fakeEnv) ID() sim.NodeID      { return e.id }
func (e *fakeEnv) Location() geo.Point { return e.loc }
func (e *fakeEnv) Intn(n int) int      { return e.rng.Intn(n) }
func (e *fakeEnv) Float64() float64    { return e.rng.Float64() }

func newEnv(id int, seed int64) *fakeEnv {
	return &fakeEnv{id: sim.NodeID(id), rng: rand.New(rand.NewSource(seed))}
}

func TestFeedbackString(t *testing.T) {
	tests := []struct {
		fb   Feedback
		want string
	}{
		{FeedbackSilence, "silence"},
		{FeedbackWon, "won"},
		{FeedbackLost, "lost"},
		{FeedbackCollision, "collision"},
		{Feedback(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.fb.String(); got != tt.want {
			t.Errorf("Feedback(%d).String() = %q, want %q", tt.fb, got, tt.want)
		}
	}
}

func TestFixedLeaderAdvice(t *testing.T) {
	factory, setLeader := NewFixed(1)
	m0 := factory(newEnv(0, 1))
	m1 := factory(newEnv(1, 2))

	if m0.Advice(0) {
		t.Error("non-leader advised active")
	}
	if !m1.Advice(0) {
		t.Error("leader advised passive")
	}

	setLeader(0)
	if !m0.Advice(1) {
		t.Error("new leader advised passive after re-election")
	}
	if m1.Advice(1) {
		t.Error("old leader still advised active after re-election")
	}
}

// channelSim runs n Backoff managers against an idealized single-hop
// channel and returns, per round, how many were active. Crashed managers
// (index < 0 in aliveFrom semantics) are skipped.
type channelSim struct {
	mgrs  []Manager
	alive []bool
}

func newChannelSim(n int, cfg BackoffConfig, seed int64) *channelSim {
	factory := NewBackoff(cfg)
	cs := &channelSim{
		mgrs:  make([]Manager, n),
		alive: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		cs.mgrs[i] = factory(newEnv(i, seed+int64(i)*101))
		cs.alive[i] = true
	}
	return cs
}

// step simulates one round and returns the number of active nodes.
func (cs *channelSim) step(r sim.Round) int {
	var active []int
	for i, m := range cs.mgrs {
		if cs.alive[i] && m.Advice(r) {
			active = append(active, i)
		}
	}
	for i, m := range cs.mgrs {
		if !cs.alive[i] {
			continue
		}
		var fb Feedback
		switch {
		case len(active) == 0:
			fb = FeedbackSilence
		case len(active) >= 2:
			fb = FeedbackCollision
		case active[0] == i:
			fb = FeedbackWon
		default:
			fb = FeedbackLost
		}
		m.Observe(r, fb)
	}
	return len(active)
}

func TestBackoffElectsSingleLeader(t *testing.T) {
	// Property 3.1/3.2: eventually exactly one node is active every round.
	for _, n := range []int{1, 2, 4, 8, 16} {
		cs := newChannelSim(n, BackoffConfig{}, 7)
		streak := 0
		stabilized := false
		for r := sim.Round(0); r < 2000; r++ {
			if cs.step(r) == 1 {
				streak++
			} else {
				streak = 0
			}
			if streak >= 100 {
				stabilized = true
				break
			}
		}
		if !stabilized {
			t.Errorf("n=%d: backoff did not stabilize to a single leader", n)
		}
	}
}

func TestBackoffReelectsAfterCrash(t *testing.T) {
	cs := newChannelSim(6, BackoffConfig{}, 21)
	// Let a leader emerge.
	var leader = -1
	for r := sim.Round(0); r < 2000; r++ {
		if cs.step(r) == 1 {
			// Find who won.
			for i, m := range cs.mgrs {
				if cs.alive[i] && m.(*Backoff).w == 1 && m.Advice(r+1) {
					leader = i
					break
				}
			}
			if leader >= 0 {
				break
			}
		}
	}
	if leader < 0 {
		t.Fatal("no leader emerged")
	}
	cs.alive[leader] = false

	streak := 0
	for r := sim.Round(3000); r < 8000; r++ {
		if cs.step(r) == 1 {
			streak++
		} else {
			streak = 0
		}
		if streak >= 100 {
			return // re-elected
		}
	}
	t.Error("no new leader emerged after crash")
}

func TestBackoffSoloNodeIsImmediatelyActive(t *testing.T) {
	m := NewBackoff(BackoffConfig{})(newEnv(0, 5))
	if !m.Advice(0) {
		t.Error("a lone contender with w=1 should be active immediately")
	}
}

func TestBackoffDefersAfterLoss(t *testing.T) {
	cfg := BackoffConfig{DeferRounds: 10}
	m := NewBackoff(cfg)(newEnv(0, 5))
	m.Observe(5, FeedbackLost)
	for r := sim.Round(6); r < 15; r++ {
		if m.Advice(r) {
			t.Fatalf("round %d: node active during deferral", r)
		}
	}
	if !m.Advice(15) {
		t.Error("deferral should expire at round 15")
	}
}

func TestBackoffWindowDynamics(t *testing.T) {
	cfg := BackoffConfig{WMax: 8}
	b := NewBackoff(cfg)(newEnv(0, 5)).(*Backoff)
	if b.w != 1 {
		t.Fatalf("initial window = %d, want 1", b.w)
	}
	b.Observe(0, FeedbackCollision)
	b.Observe(1, FeedbackCollision)
	if b.w != 4 {
		t.Errorf("after two collisions w = %d, want 4", b.w)
	}
	b.Observe(2, FeedbackCollision)
	b.Observe(3, FeedbackCollision)
	if b.w != 8 {
		t.Errorf("window should cap at WMax: w = %d", b.w)
	}
	b.Observe(4, FeedbackSilence)
	if b.w != 4 {
		t.Errorf("silence should halve: w = %d", b.w)
	}
	b.Observe(5, FeedbackWon)
	if b.w != 1 {
		t.Errorf("winning should reset: w = %d", b.w)
	}
}

func TestRegionalEligibility(t *testing.T) {
	loc := geo.Point{X: 100, Y: 100}
	cfg := RegionalConfig{
		Location: loc,
		Radius:   10,
		VMax:     0.1,
		Horizon:  20, // margin = 10 - 2 = 8
	}
	factory := NewRegional(cfg)

	env := newEnv(0, 9)
	m := factory(env).(*Regional)

	env.loc = loc // at the center
	if !m.Eligible() {
		t.Error("node at center should be eligible")
	}
	if !m.Advice(0) {
		t.Error("eligible solo node should be active")
	}

	env.loc = geo.Point{X: 107, Y: 100} // distance 7 < 8
	if !m.Eligible() {
		t.Error("node within margin should be eligible")
	}

	env.loc = geo.Point{X: 109, Y: 100} // distance 9 > 8
	if m.Eligible() {
		t.Error("node outside margin should be ineligible")
	}
	if m.Advice(1) {
		t.Error("ineligible node must never be advised active")
	}
}

func TestRegionalDegenerateMargin(t *testing.T) {
	// When VMax*Horizon exceeds the radius, only a node exactly at the
	// location is eligible.
	cfg := RegionalConfig{Location: geo.Point{}, Radius: 1, VMax: 1, Horizon: 10}
	env := newEnv(0, 9)
	m := NewRegional(cfg)(env).(*Regional)
	env.loc = geo.Point{}
	if !m.Eligible() {
		t.Error("node exactly at location should remain eligible")
	}
	env.loc = geo.Point{X: 0.5}
	if m.Eligible() {
		t.Error("node off-center should be ineligible with degenerate margin")
	}
}

func TestRegionalObserveForwardsToBackoff(t *testing.T) {
	cfg := RegionalConfig{Location: geo.Point{}, Radius: 100, Backoff: BackoffConfig{WMax: 8}}
	env := newEnv(0, 9)
	m := NewRegional(cfg)(env).(*Regional)
	m.Observe(0, FeedbackCollision)
	if m.b.w != 2 {
		t.Errorf("regional manager did not forward feedback: w = %d", m.b.w)
	}
}
