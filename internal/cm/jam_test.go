package cm

import (
	"reflect"
	"testing"

	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// probeEnv is a sim.Env that scripts Intn's return value and records every
// window it is asked to draw from — the contention window w is unexported,
// but the spec fixes exactly which Intn(w) calls a Backoff manager makes,
// so the recorded arguments ARE the window trajectory.
type probeEnv struct {
	id       sim.NodeID
	loc      geo.Point
	intnArgs []int
	intnRet  int
}

func (e *probeEnv) ID() sim.NodeID      { return e.id }
func (e *probeEnv) Location() geo.Point { return e.loc }
func (e *probeEnv) Float64() float64    { return 0 }
func (e *probeEnv) Intn(n int) int {
	e.intnArgs = append(e.intnArgs, n)
	return e.intnRet
}

// TestBackoffWindowTrajectoryUnderJamming drives a Backoff manager with
// the feedback a jammed channel produces — a burst of forced collisions,
// then silence — and asserts the exact window trajectory the model
// specifies: doubling per collision up to WMax, halving per silence down
// to 1, with w = 1 advising active unconditionally (no draw at all).
func TestBackoffWindowTrajectoryUnderJamming(t *testing.T) {
	env := &probeEnv{intnRet: 1} // never win a draw: trajectory stays pure
	m := NewBackoff(BackoffConfig{WMax: 8, DeferRounds: 4})(env)

	// Fresh manager: w = 1, active without drawing.
	if !m.Advice(0) {
		t.Fatal("fresh manager must advise active")
	}
	if len(env.intnArgs) != 0 {
		t.Fatalf("w=1 advice drew from %v", env.intnArgs)
	}

	// Four jammed rounds: w doubles 2, 4, 8 and caps at WMax=8.
	// Then four silent rounds: w halves 4, 2, 1, floors at 1.
	feedback := []Feedback{
		FeedbackCollision, FeedbackCollision, FeedbackCollision, FeedbackCollision,
		FeedbackSilence, FeedbackSilence, FeedbackSilence, FeedbackSilence,
	}
	for i, fb := range feedback {
		m.Observe(sim.Round(i), fb)
		m.Advice(sim.Round(i + 1))
	}
	// Draws happen only while w > 1.
	want := []int{2, 4, 8, 8, 4, 2}
	if !reflect.DeepEqual(env.intnArgs, want) {
		t.Errorf("window trajectory (Intn args) = %v, want %v", env.intnArgs, want)
	}
	// After the halvings, w is back to 1: active with no further draws.
	n := len(env.intnArgs)
	if !m.Advice(100) || len(env.intnArgs) != n {
		t.Error("recovered manager (w=1) must advise active without drawing")
	}
}

// TestBackoffWinAndLossRules pins the other two feedback rules exactly:
// winning resets the window to 1 in one step, and losing (hearing a
// competing leader) defers for precisely DeferRounds rounds with no draws
// at all.
func TestBackoffWinAndLossRules(t *testing.T) {
	env := &probeEnv{intnRet: 1}
	m := NewBackoff(BackoffConfig{WMax: 32, DeferRounds: 6})(env)

	// Blow the window up to 8, then win once: w must snap back to 1.
	for i := 0; i < 3; i++ {
		m.Observe(sim.Round(i), FeedbackCollision)
	}
	m.Observe(3, FeedbackWon)
	if !m.Advice(4) || len(env.intnArgs) != 0 {
		t.Fatalf("after a win w must be 1 (active, no draw); drew %v", env.intnArgs)
	}

	// Losing at round 10 defers rounds 10..15 and resumes at 16.
	m.Observe(10, FeedbackLost)
	for r := sim.Round(10); r < 16; r++ {
		if m.Advice(r) {
			t.Errorf("round %d: advised active during deferral", r)
		}
	}
	if len(env.intnArgs) != 0 {
		t.Errorf("deferral drew from %v", env.intnArgs)
	}
	if !m.Advice(16) {
		t.Error("round 16: deferral expired, w=1 must advise active")
	}
}

// TestRegionalEligibilityUnderHerding pins the regional manager's
// eligibility rule under adversarial mobility: a node dragged toward the
// region edge (the faults.Herd scenario) must stop competing as soon as
// its bounded speed could carry it out of the region within the leader
// horizon — even though its backoff state would advise active.
func TestRegionalEligibilityUnderHerding(t *testing.T) {
	env := &probeEnv{intnRet: 0} // always win draws: only eligibility gates
	m := NewRegional(RegionalConfig{
		Location: geo.Point{},
		Radius:   2.5,
		VMax:     0.1,
		Horizon:  10, // margin = 2.5 - 0.1*10 = 1.5
	})(env).(*Regional)

	for _, tc := range []struct {
		x    float64
		want bool
	}{
		{0, true},
		{1.49, true},
		{1.5, true}, // Within is inclusive
		{1.51, false},
		{2.4, false}, // inside the region but too close to the edge
		{3.0, false},
	} {
		env.loc = geo.Point{X: tc.x}
		if got := m.Advice(0); got != tc.want {
			t.Errorf("x=%v: advice = %v, want %v", tc.x, got, tc.want)
		}
		if got := m.Eligible(); got != tc.want {
			t.Errorf("x=%v: eligible = %v, want %v", tc.x, got, tc.want)
		}
	}
}
