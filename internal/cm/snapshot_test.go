package cm

import (
	"testing"

	"vinfra/internal/sim"
)

// TestFixedSnapshotRoundTrip pins the leader blob: restoring a Fixed
// manager's blob rewinds the shared leader variable, and because the
// variable is shared, every manager from the same factory sees it.
func TestFixedSnapshotRoundTrip(t *testing.T) {
	factory, setLeader := NewFixed(1)
	m0 := factory(newEnv(0, 1)).(*Fixed)
	m1 := factory(newEnv(1, 2)).(*Fixed)

	setLeader(3)
	blob := m0.AppendState(nil)
	setLeader(7)
	if err := m1.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if *m0.leader != 3 || *m1.leader != 3 {
		t.Fatalf("leader after restore = %d/%d, want 3/3", *m0.leader, *m1.leader)
	}
}

// TestBackoffSnapshotRoundTrip pins the election blob: the contention
// window and the deferral horizon travel; configuration does not.
func TestBackoffSnapshotRoundTrip(t *testing.T) {
	factory := NewBackoff(BackoffConfig{WMax: 64, DeferRounds: 10})
	m := factory(newEnv(0, 5)).(*Backoff)
	m.Observe(1, FeedbackCollision)
	m.Observe(2, FeedbackCollision)
	m.Observe(3, FeedbackLost)

	blob := m.AppendState(nil)
	fresh := factory(newEnv(0, 5)).(*Backoff)
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if fresh.w != m.w || fresh.deferUntil != m.deferUntil {
		t.Fatalf("restored (w=%d, deferUntil=%d), want (w=%d, deferUntil=%d)",
			fresh.w, fresh.deferUntil, m.w, m.deferUntil)
	}

	if err := fresh.RestoreState([]byte{0x01}); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

// TestRegionalSnapshotDelegates pins that Regional's blob is exactly its
// embedded Backoff's (eligibility is derived from position, not state).
func TestRegionalSnapshotDelegates(t *testing.T) {
	factory := NewRegional(RegionalConfig{Radius: 5, Horizon: 2})
	m := factory(newEnv(0, 9)).(*Regional)
	m.Observe(1, FeedbackCollision)

	blob := m.AppendState(nil)
	fresh := factory(newEnv(0, 9)).(*Regional)
	if err := fresh.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	if fresh.b.w != m.b.w {
		t.Fatalf("restored w=%d, want %d", fresh.b.w, m.b.w)
	}
	var _ sim.Snapshotter = m // Regional participates in the blob contract
}
