package radio

import (
	"bytes"
	"reflect"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
)

func TestMediumSnapshotRoundTrip(t *testing.T) {
	m := MustMedium(Config{
		Radii:                geo.Radii{R1: 10, R2: 20},
		Detector:             cd.AC{},
		GrayZoneDeliveryProb: 0.25,
		Seed:                 7,
	})
	s := m.Snapshot()
	b := s.AppendTo(nil)
	if len(b) != s.WireSize() {
		t.Fatalf("WireSize = %d, encoded %d bytes", s.WireSize(), len(b))
	}
	got, err := DecodeMediumSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("decode(encode(s)) != s:\ngot:  %+v\nwant: %+v", got, s)
	}
	if !bytes.Equal(got.AppendTo(nil), b) {
		t.Fatal("re-encoding the decoded snapshot changes bytes")
	}
	if err := m.Restore(got); err != nil {
		t.Fatalf("restore of the medium's own snapshot failed: %v", err)
	}
}

// TestMediumRestoreRejectsMismatch pins the validation role of the medium
// snapshot: a rebuilt medium with any config drift (different seed,
// different gray-zone probability, different detector) refuses the
// snapshot instead of silently diverging.
func TestMediumRestoreRejectsMismatch(t *testing.T) {
	base := Config{Radii: geo.Radii{R1: 10, R2: 20}, Detector: cd.AC{}, Seed: 7}
	snap := MustMedium(base).Snapshot()

	drifted := base
	drifted.Seed = 8
	if err := MustMedium(drifted).Restore(snap); err == nil {
		t.Fatal("medium with a different seed accepted the snapshot")
	}
	drifted = base
	drifted.GrayZoneDeliveryProb = 0.5
	if err := MustMedium(drifted).Restore(snap); err == nil {
		t.Fatal("medium with a different gray-zone probability accepted the snapshot")
	}
}
