package radio

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// benchScenario scatters n nodes uniformly at constant density (about
// twelve nodes per R2 disk) with a quarter of them transmitting — the
// regime the virtual-infrastructure emulator runs in at scale.
func benchScenario(n int) ([]sim.NodeInfo, []sim.Transmission, geo.Radii) {
	radii := geo.Radii{R1: 10, R2: 20}
	side := math.Sqrt(float64(n) / 12 * math.Pi * radii.R2 * radii.R2)
	rng := rand.New(rand.NewSource(int64(n)))
	infos := make([]sim.NodeInfo, n)
	var txs []sim.Transmission
	for i := range infos {
		infos[i] = sim.NodeInfo{
			ID:    sim.NodeID(i),
			At:    geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side},
			Alive: true,
		}
		if rng.Intn(4) == 0 {
			txs = append(txs, sim.Transmission{
				Sender: infos[i].ID,
				From:   infos[i].At,
				Msg:    fmt.Sprintf("m%d", i),
			})
		}
	}
	return infos, txs, radii
}

func benchDeliver(b *testing.B, n int, mode DeliveryMode, parallel bool) {
	infos, txs, radii := benchScenario(n)
	m := MustMedium(Config{
		Radii:    radii,
		Detector: cd.AC{},
		Mode:     mode,
		Parallel: parallel,
		Seed:     1,
	})
	b.ReportMetric(float64(len(txs)), "txs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Deliver(sim.Round(i), txs, infos)
	}
}

// The scan/grid pairs below are the tentpole's before/after numbers: the
// acceptance bar is grid at 10k nodes >= 5x fewer ns/op than scan.

func BenchmarkDeliverScan1k(b *testing.B)          { benchDeliver(b, 1_000, ModeScan, false) }
func BenchmarkDeliverGrid1k(b *testing.B)          { benchDeliver(b, 1_000, ModeGrid, false) }
func BenchmarkDeliverGrid1kParallel(b *testing.B)  { benchDeliver(b, 1_000, ModeGrid, true) }
func BenchmarkDeliverScan10k(b *testing.B)         { benchDeliver(b, 10_000, ModeScan, false) }
func BenchmarkDeliverGrid10k(b *testing.B)         { benchDeliver(b, 10_000, ModeGrid, false) }
func BenchmarkDeliverGrid10kParallel(b *testing.B) { benchDeliver(b, 10_000, ModeGrid, true) }
