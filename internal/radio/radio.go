// Package radio implements the collision-prone wireless medium of Section 2:
// a quasi-unit-disk channel in which a receiver hears a broadcast iff the
// transmitter is within broadcast radius R1 and no other node within
// interference radius R2 of the receiver broadcasts in the same slot.
// Before the collision-freedom round r_cf, an Adversary may additionally
// drop arbitrary messages at arbitrary receivers (non-uniformly), and force
// spurious collision-detector indications (which the configured cd.Detector
// suppresses once it becomes accurate).
//
// Delivery scales to large deployments: instead of every receiver scanning
// every transmission (O(receivers x transmissions) per round), the medium
// buckets the round's transmissions into a uniform grid with cell size R2
// (geo.CellIndex) and each receiver consults only its own and adjacent
// cells. Receivers can additionally be sharded across a worker pool
// (Config.Parallel); all randomness is derived per (round, receiver), so
// every mode — scan, grid, sequential, parallel — produces identical
// receptions for the same seed.
//
// The steady-state delivery loop is also nearly allocation-free: the
// reception slice, the transmission index (rebuilt in place each round) and
// the sender identity map live on the Medium, the per-receiver partition
// buffers live in pooled per-worker scratch, and empty receptions carry nil
// message slices. Only receivers that actually hear something allocate
// (their Msgs slices may be retained by nodes).
package radio

import (
	"fmt"
	"runtime"
	"sync"

	"vinfra/internal/cd"
	"vinfra/internal/det"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Adversary injects the arbitrary, unpredictable message loss the model
// permits before round r_cf. Implementations carry their own horizon and
// must become harmless (identity Filter, no forced collisions) from r_cf
// onward.
//
// The medium may invoke an Adversary from multiple goroutines at once and
// in any receiver order (Config.Parallel), so implementations must be safe
// for concurrent use and must not depend on call order; derive any
// randomness deterministically from (round, receiver) as RandomLoss does.
type Adversary interface {
	// Filter returns the subset of deliverable transmissions actually
	// delivered to the receiver (currently located at) in round r.
	// deliverable never includes the receiver's own transmission (a node
	// always hears itself). Implementations must not mutate deliverable;
	// they may return it unchanged. The position lets spatial adversaries
	// (the jammers of internal/faults) target grid cells and regions
	// rather than node identities.
	Filter(r sim.Round, receiver sim.NodeID, at geo.Point, deliverable []sim.Transmission) []sim.Transmission
	// ForceCollision reports whether to request a spurious collision
	// indication at the receiver (located at) in round r.
	ForceCollision(r sim.Round, receiver sim.NodeID, at geo.Point) bool
}

// DeliveryMode selects how the medium finds the transmissions relevant to
// each receiver. All modes produce identical receptions; they differ only
// in cost.
type DeliveryMode int

const (
	// ModeAuto (the default) scans on small rounds and switches to the
	// grid index once the round is large enough for the index to pay for
	// its construction.
	ModeAuto DeliveryMode = iota
	// ModeScan always uses the brute-force O(receivers x transmissions)
	// scan. It exists as the reference implementation for equivalence
	// tests and before/after benchmarks.
	ModeScan
	// ModeGrid always buckets transmissions into a geo.CellIndex with
	// cell size R2 and has each receiver consult only the 3x3 block of
	// cells around it.
	ModeGrid
)

// autoIndexMinWork is the receivers-times-transmissions product above which
// ModeAuto switches from the scan to the grid index, and autoIndexMinTxs is
// the transmission count below which scanning the tiny slice beats the nine
// cell lookups per receiver regardless of receiver count.
const (
	autoIndexMinWork = 1 << 10
	autoIndexMinTxs  = 8
)

// Config parameterizes a Medium.
type Config struct {
	Radii    geo.Radii
	Detector cd.Detector
	// Adversary may be nil for a well-behaved channel. The deliverable
	// slice handed to Filter is medium-owned scratch: implementations must
	// not retain it past the call.
	Adversary Adversary
	// GrayZoneDeliveryProb is the probability that an uncontended
	// transmission from the gray zone (between R1 and R2) is delivered
	// anyway. The quasi-unit-disk model leaves this region unspecified;
	// the default 0 is the conservative reading.
	GrayZoneDeliveryProb float64
	// Seed drives the medium's own randomness (gray-zone delivery and
	// detector noise). Defaults to 1 via NewMedium. Draws are keyed by
	// (Seed, round, receiver), so they do not depend on the order in
	// which receivers are processed.
	Seed int64
	// Mode selects the delivery implementation; see DeliveryMode.
	Mode DeliveryMode
	// Parallel shards the per-receiver delivery computation across a
	// worker pool. Output is deterministic and identical to the
	// sequential modes: receptions are written into per-receiver slots
	// (NodeID order) and all randomness is per-receiver.
	Parallel bool
	// Workers caps the pool used when Parallel is set; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Medium implements sim.Medium with quasi-unit-disk propagation and
// collision-detector synthesis.
//
// A Medium carries reusable per-round delivery state, so a single Medium
// must not have Deliver invoked concurrently (one engine calling it once
// per round — the sim.Medium contract — is the intended use; within one
// call, receiver shards still fan out across workers). The returned
// reception slice is valid until the next Deliver call.
type Medium struct {
	cfg Config

	// Per-round reusable state: the reception slice handed back to the
	// engine, the transmission-origin points and their cell index, and the
	// sender -> transmission identity map. Rebuilt (in place) every round,
	// so the steady-state round loop allocates almost nothing.
	out   []sim.Reception
	pts   []geo.Point
	ix    *geo.CellIndex
	ownTx map[sim.NodeID]int32

	// scratch pools per-worker partition buffers across rounds.
	scratch sync.Pool
}

// deliverScratch is one worker's reusable delivery state: the grid
// candidate buffer, the per-receiver transmission partitions, and the
// receiver RNG. Each shard checks one out of the pool for the receivers it
// owns, so the buffers are never shared between concurrent workers.
type deliverScratch struct {
	buf         []int32
	inR1        []sim.Transmission
	gray        []sim.Transmission
	deliverable []sim.Transmission

	// The receiver randomness (gray-zone delivery and detector noise) is a
	// det.Stream re-keyed to (seed, round, receiver) per receiver — one
	// word of state, so reseeding is a HashKeys call and an assignment.
	// One pre-bound closure per scratch — handing a fresh closure to
	// Detector.Report for every receiver is what used to make delivery
	// allocate twice per receiver per round.
	rng det.Stream
	rnd func() float64
}

func newDeliverScratch() *deliverScratch {
	s := &deliverScratch{}
	s.rnd = s.rng.Float64
	return s
}

// setReceiver keys the scratch RNG to one receiver.
func (s *deliverScratch) setReceiver(seed int64, r sim.Round, id sim.NodeID) {
	s.rng.Reseed(seed, int64(r), int64(id))
}

var _ sim.Medium = (*Medium)(nil)

// NewMedium validates cfg and returns a Medium.
func NewMedium(cfg Config) (*Medium, error) {
	if err := cfg.Radii.Validate(); err != nil {
		return nil, fmt.Errorf("radio: %w", err)
	}
	if cfg.Detector == nil {
		return nil, fmt.Errorf("radio: config requires a collision detector")
	}
	if cfg.GrayZoneDeliveryProb < 0 || cfg.GrayZoneDeliveryProb > 1 {
		return nil, fmt.Errorf("radio: GrayZoneDeliveryProb = %v out of [0,1]", cfg.GrayZoneDeliveryProb)
	}
	if cfg.Mode < ModeAuto || cfg.Mode > ModeGrid {
		return nil, fmt.Errorf("radio: unknown delivery mode %d", cfg.Mode)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("radio: Workers = %d, must be non-negative", cfg.Workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Medium{cfg: cfg}, nil
}

// MustMedium is NewMedium for static configurations known to be valid; it
// panics on error. Intended for tests, examples and benchmarks.
func MustMedium(cfg Config) *Medium {
	m, err := NewMedium(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Deliver implements sim.Medium. For each alive receiver it computes the
// physically deliverable set, applies the adversary, and synthesizes the
// collision-detector indication from the ground-truth losses. The returned
// slice is medium-owned and reused on the next call.
func (m *Medium) Deliver(r sim.Round, txs []sim.Transmission, rxs []sim.NodeInfo) []sim.Reception {
	if cap(m.out) < len(rxs) {
		m.out = make([]sim.Reception, len(rxs))
	}
	out := m.out[:len(rxs)]

	useIdx := false
	switch m.cfg.Mode {
	case ModeGrid:
		useIdx = true
	case ModeAuto:
		useIdx = len(txs) >= autoIndexMinTxs && len(txs)*len(rxs) >= autoIndexMinWork
	}
	var ix *geo.CellIndex
	if useIdx {
		// Rebuild the R2-cell transmission index in place: a receiver's
		// 3x3 cell block then covers every transmission within its
		// interference radius.
		m.pts = m.pts[:0]
		for i := range txs {
			m.pts = append(m.pts, txs[i].From)
		}
		if m.ix == nil {
			m.ix = geo.BuildCellIndex(m.pts, m.cfg.Radii.R2)
		} else {
			m.ix.Rebuild(m.pts)
		}
		ix = m.ix
		// The grid only surfaces transmissions whose origin lies near the
		// receiver, so a sender's own transmission is looked up by
		// identity instead — the half-duplex rule must hold whatever
		// position the transmission claims to originate from, keeping the
		// grid path reception-identical to the scan even for out-of-sync
		// From points.
		if m.ownTx == nil {
			m.ownTx = make(map[sim.NodeID]int32, len(txs))
		} else {
			clear(m.ownTx)
		}
		for i := range txs {
			m.ownTx[txs[i].Sender] = int32(i)
		}
	}

	sim.Shard(len(rxs), m.workersFor(len(rxs)), func(lo, hi int) {
		s, _ := m.scratch.Get().(*deliverScratch)
		if s == nil {
			s = newDeliverScratch()
		}
		for i := lo; i < hi; i++ {
			rx := rxs[i]
			if !rx.Alive {
				out[i] = sim.Reception{Round: r}
				continue
			}
			if ix != nil {
				s.buf = ix.Near(s.buf[:0], rx.At, 1)
			}
			out[i] = m.receive(r, txs, s, ix != nil, rx)
		}
		m.scratch.Put(s)
	})
	return out
}

// workersFor returns the number of delivery shards to use for n receivers.
func (m *Medium) workersFor(n int) int {
	if !m.cfg.Parallel || n < 2 {
		return 1
	}
	w := m.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// receive computes one receiver's reception. When useIdx is set, s.buf
// holds the indices (into txs) of the grid-selected candidates, a superset
// of every transmission within R2 of the receiver, and m.ownTx maps each
// sender to its transmission (identity can't be answered by a positional
// query); otherwise the full transmission slice is scanned. Both paths
// classify candidates by exact distance, so they produce identical
// receptions. The partitions live in the worker's scratch, reused across
// receivers and rounds.
func (m *Medium) receive(r sim.Round, txs []sim.Transmission, s *deliverScratch, useIdx bool, rx sim.NodeInfo) sim.Reception {
	radii := m.cfg.Radii

	// Partition the round's transmissions as seen from this receiver.
	var own *sim.Transmission
	inR1, gray := s.inR1[:0], s.gray[:0] // from other nodes
	consider := func(i int) {
		tx := txs[i]
		if tx.Sender == rx.ID {
			own = &txs[i]
			return
		}
		d2 := tx.From.Dist2(rx.At)
		switch {
		case d2 <= radii.R1*radii.R1:
			inR1 = append(inR1, tx)
		case d2 <= radii.R2*radii.R2:
			gray = append(gray, tx)
		}
	}
	if useIdx {
		if i, ok := m.ownTx[rx.ID]; ok {
			own = &txs[i]
		}
		for _, i := range s.buf {
			if txs[i].Sender != rx.ID {
				consider(int(i))
			}
		}
	} else {
		for i := range txs {
			consider(i)
		}
	}
	s.inR1, s.gray = inR1, gray // keep grown capacity for the next receiver
	othersInR2 := len(inR1) + len(gray)

	// Randomness for this receiver (gray-zone delivery and detector
	// noise) is keyed by (seed, round, receiver), so it is independent of
	// the order receivers are processed in.
	s.setReceiver(m.cfg.Seed, r, rx.ID)
	rnd := s.rnd

	// Physical delivery: a node always hears its own broadcast. A message
	// from another node gets through only when it is the sole transmission
	// within R2 of the receiver AND the receiver itself is not
	// transmitting — the delivery guarantee of Section 2 requires that "no
	// node within distance R2 of pj broadcasts", and pj is within R2 of
	// itself (half-duplex). Gray-zone delivery is probabilistic
	// (default: never).
	deliverable := s.deliverable[:0]
	if othersInR2 == 1 && own == nil {
		deliverable = append(deliverable, inR1...)
		for _, tx := range gray {
			if m.cfg.GrayZoneDeliveryProb > 0 && rnd() < m.cfg.GrayZoneDeliveryProb {
				deliverable = append(deliverable, tx)
			}
		}
	}
	s.deliverable = deliverable

	// Adversarial loss (only effective before the adversary's horizon).
	delivered := deliverable
	spurious := false
	if adv := m.cfg.Adversary; adv != nil {
		delivered = adv.Filter(r, rx.ID, rx.At, deliverable)
		spurious = adv.ForceCollision(r, rx.ID, rx.At)
	}

	// Ground truth for the collision detector: a loss is any transmission
	// from another node within the relevant radius that was not delivered,
	// whatever the cause (contention, gray zone, or adversary).
	lostR1, lostR2 := false, false
	for _, tx := range inR1 {
		if !containsTx(delivered, tx.Sender) {
			lostR1 = true
			lostR2 = true
			break
		}
	}
	if !lostR2 {
		for _, tx := range gray {
			if !containsTx(delivered, tx.Sender) {
				lostR2 = true
				break
			}
		}
	}

	collision := m.cfg.Detector.Report(r, lostR1, lostR2, spurious, rnd)

	// An empty reception carries nil Msgs — the common case at scale
	// (collisions silence most receivers), and the reason the steady-state
	// delivery loop stays nearly allocation-free. Non-empty message slices
	// are freshly allocated because receivers are allowed to retain them.
	if own == nil && len(delivered) == 0 {
		return sim.Reception{Round: r, Collision: collision}
	}
	msgs := make([]sim.Message, 0, len(delivered)+1)
	if own != nil {
		msgs = append(msgs, own.Msg)
	}
	for _, tx := range delivered {
		msgs = append(msgs, tx.Msg)
	}
	return sim.Reception{Round: r, Msgs: msgs, Collision: collision}
}

func containsTx(txs []sim.Transmission, sender sim.NodeID) bool {
	for _, tx := range txs {
		if tx.Sender == sender {
			return true
		}
	}
	return false
}

// HashKeys folds keys through the SplitMix64 finalizer into one well-spread
// value. It is det.HashKeys, the single keyed-hash primitive of the
// deterministic stack: the medium's per-receiver RNG streams, RandomLoss's
// per-message draws and the internal/faults adversaries' choices all derive
// from it, so their determinism contracts stay in lockstep (and cannot
// silently drift apart across copies).
func HashKeys(keys ...int64) uint64 {
	return det.HashKeys(keys...)
}

// U01 maps a HashKeys value to a uniform draw in [0, 1) — det.U01, the
// other half of the stack's keyed-randomness primitive, shared for the same
// reason: RandomLoss's drop draws and the internal/faults adversaries'
// probability draws must use one mapping that cannot drift apart across
// copies.
func U01(h uint64) float64 {
	return det.U01(h)
}
