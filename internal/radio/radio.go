// Package radio implements the collision-prone wireless medium of Section 2:
// a quasi-unit-disk channel in which a receiver hears a broadcast iff the
// transmitter is within broadcast radius R1 and no other node within
// interference radius R2 of the receiver broadcasts in the same slot.
// Before the collision-freedom round r_cf, an Adversary may additionally
// drop arbitrary messages at arbitrary receivers (non-uniformly), and force
// spurious collision-detector indications (which the configured cd.Detector
// suppresses once it becomes accurate).
package radio

import (
	"fmt"
	"math/rand"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Adversary injects the arbitrary, unpredictable message loss the model
// permits before round r_cf. Implementations carry their own horizon and
// must become harmless (identity Filter, no forced collisions) from r_cf
// onward.
type Adversary interface {
	// Filter returns the subset of deliverable transmissions actually
	// delivered to receiver in round r. deliverable never includes the
	// receiver's own transmission (a node always hears itself).
	// Implementations must not mutate deliverable; they may return it
	// unchanged.
	Filter(r sim.Round, receiver sim.NodeID, deliverable []sim.Transmission) []sim.Transmission
	// ForceCollision reports whether to request a spurious collision
	// indication at receiver in round r.
	ForceCollision(r sim.Round, receiver sim.NodeID) bool
}

// Config parameterizes a Medium.
type Config struct {
	Radii    geo.Radii
	Detector cd.Detector
	// Adversary may be nil for a well-behaved channel.
	Adversary Adversary
	// GrayZoneDeliveryProb is the probability that an uncontended
	// transmission from the gray zone (between R1 and R2) is delivered
	// anyway. The quasi-unit-disk model leaves this region unspecified;
	// the default 0 is the conservative reading.
	GrayZoneDeliveryProb float64
	// Seed drives the medium's own randomness (gray-zone delivery and
	// detector noise). Defaults to 1 via NewMedium.
	Seed int64
}

// Medium implements sim.Medium with quasi-unit-disk propagation and
// collision-detector synthesis.
type Medium struct {
	cfg Config
	rng *rand.Rand
}

var _ sim.Medium = (*Medium)(nil)

// NewMedium validates cfg and returns a Medium.
func NewMedium(cfg Config) (*Medium, error) {
	if err := cfg.Radii.Validate(); err != nil {
		return nil, fmt.Errorf("radio: %w", err)
	}
	if cfg.Detector == nil {
		return nil, fmt.Errorf("radio: config requires a collision detector")
	}
	if cfg.GrayZoneDeliveryProb < 0 || cfg.GrayZoneDeliveryProb > 1 {
		return nil, fmt.Errorf("radio: GrayZoneDeliveryProb = %v out of [0,1]", cfg.GrayZoneDeliveryProb)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Medium{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// MustMedium is NewMedium for static configurations known to be valid; it
// panics on error. Intended for tests, examples and benchmarks.
func MustMedium(cfg Config) *Medium {
	m, err := NewMedium(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Deliver implements sim.Medium. For each alive receiver it computes the
// physically deliverable set, applies the adversary, and synthesizes the
// collision-detector indication from the ground-truth losses.
func (m *Medium) Deliver(r sim.Round, txs []sim.Transmission, rxs []sim.NodeInfo) []sim.Reception {
	out := make([]sim.Reception, len(rxs))
	for i := range rxs {
		rx := rxs[i]
		if !rx.Alive {
			out[i] = sim.Reception{Round: r}
			continue
		}
		out[i] = m.receive(r, txs, rx)
	}
	return out
}

func (m *Medium) receive(r sim.Round, txs []sim.Transmission, rx sim.NodeInfo) sim.Reception {
	radii := m.cfg.Radii

	// Partition the round's transmissions as seen from this receiver.
	var own *sim.Transmission
	var inR1, gray []sim.Transmission // from other nodes
	for i := range txs {
		tx := txs[i]
		if tx.Sender == rx.ID {
			own = &txs[i]
			continue
		}
		d2 := tx.From.Dist2(rx.At)
		switch {
		case d2 <= radii.R1*radii.R1:
			inR1 = append(inR1, tx)
		case d2 <= radii.R2*radii.R2:
			gray = append(gray, tx)
		}
	}
	othersInR2 := len(inR1) + len(gray)

	// Physical delivery: a node always hears its own broadcast. A message
	// from another node gets through only when it is the sole transmission
	// within R2 of the receiver AND the receiver itself is not
	// transmitting — the delivery guarantee of Section 2 requires that "no
	// node within distance R2 of pj broadcasts", and pj is within R2 of
	// itself (half-duplex). Gray-zone delivery is probabilistic
	// (default: never).
	var deliverable []sim.Transmission
	if othersInR2 == 1 && own == nil {
		deliverable = append(deliverable, inR1...)
		for _, tx := range gray {
			if m.cfg.GrayZoneDeliveryProb > 0 && m.rng.Float64() < m.cfg.GrayZoneDeliveryProb {
				deliverable = append(deliverable, tx)
			}
		}
	}

	// Adversarial loss (only effective before the adversary's horizon).
	delivered := deliverable
	spurious := false
	if adv := m.cfg.Adversary; adv != nil {
		delivered = adv.Filter(r, rx.ID, deliverable)
		spurious = adv.ForceCollision(r, rx.ID)
	}

	// Ground truth for the collision detector: a loss is any transmission
	// from another node within the relevant radius that was not delivered,
	// whatever the cause (contention, gray zone, or adversary).
	lostR1, lostR2 := false, false
	for _, tx := range inR1 {
		if !containsTx(delivered, tx.Sender) {
			lostR1 = true
			lostR2 = true
			break
		}
	}
	if !lostR2 {
		for _, tx := range gray {
			if !containsTx(delivered, tx.Sender) {
				lostR2 = true
				break
			}
		}
	}

	collision := m.cfg.Detector.Report(r, lostR1, lostR2, spurious, m.rng.Float64)

	msgs := make([]sim.Message, 0, len(delivered)+1)
	if own != nil {
		msgs = append(msgs, own.Msg)
	}
	for _, tx := range delivered {
		msgs = append(msgs, tx.Msg)
	}
	return sim.Reception{Round: r, Msgs: msgs, Collision: collision}
}

func containsTx(txs []sim.Transmission, sender sim.NodeID) bool {
	for _, tx := range txs {
		if tx.Sender == sender {
			return true
		}
	}
	return false
}
