// Package radio implements the collision-prone wireless medium of Section 2:
// a quasi-unit-disk channel in which a receiver hears a broadcast iff the
// transmitter is within broadcast radius R1 and no other node within
// interference radius R2 of the receiver broadcasts in the same slot.
// Before the collision-freedom round r_cf, an Adversary may additionally
// drop arbitrary messages at arbitrary receivers (non-uniformly), and force
// spurious collision-detector indications (which the configured cd.Detector
// suppresses once it becomes accurate).
//
// Delivery scales to large deployments: instead of every receiver scanning
// every transmission (O(receivers x transmissions) per round), the medium
// buckets the round's transmissions into a uniform grid with cell size R2
// (geo.CellIndex) and each receiver consults only its own and adjacent
// cells. Receivers can additionally be sharded across a worker pool
// (Config.Parallel); all randomness is derived per (round, receiver), so
// every mode — scan, grid, sequential, parallel — produces identical
// receptions for the same seed.
package radio

import (
	"fmt"
	"math/rand"
	"runtime"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Adversary injects the arbitrary, unpredictable message loss the model
// permits before round r_cf. Implementations carry their own horizon and
// must become harmless (identity Filter, no forced collisions) from r_cf
// onward.
//
// The medium may invoke an Adversary from multiple goroutines at once and
// in any receiver order (Config.Parallel), so implementations must be safe
// for concurrent use and must not depend on call order; derive any
// randomness deterministically from (round, receiver) as RandomLoss does.
type Adversary interface {
	// Filter returns the subset of deliverable transmissions actually
	// delivered to receiver in round r. deliverable never includes the
	// receiver's own transmission (a node always hears itself).
	// Implementations must not mutate deliverable; they may return it
	// unchanged.
	Filter(r sim.Round, receiver sim.NodeID, deliverable []sim.Transmission) []sim.Transmission
	// ForceCollision reports whether to request a spurious collision
	// indication at receiver in round r.
	ForceCollision(r sim.Round, receiver sim.NodeID) bool
}

// DeliveryMode selects how the medium finds the transmissions relevant to
// each receiver. All modes produce identical receptions; they differ only
// in cost.
type DeliveryMode int

const (
	// ModeAuto (the default) scans on small rounds and switches to the
	// grid index once the round is large enough for the index to pay for
	// its construction.
	ModeAuto DeliveryMode = iota
	// ModeScan always uses the brute-force O(receivers x transmissions)
	// scan. It exists as the reference implementation for equivalence
	// tests and before/after benchmarks.
	ModeScan
	// ModeGrid always buckets transmissions into a geo.CellIndex with
	// cell size R2 and has each receiver consult only the 3x3 block of
	// cells around it.
	ModeGrid
)

// autoIndexMinWork is the receivers-times-transmissions product above which
// ModeAuto switches from the scan to the grid index, and autoIndexMinTxs is
// the transmission count below which scanning the tiny slice beats the nine
// cell lookups per receiver regardless of receiver count.
const (
	autoIndexMinWork = 1 << 10
	autoIndexMinTxs  = 8
)

// Config parameterizes a Medium.
type Config struct {
	Radii    geo.Radii
	Detector cd.Detector
	// Adversary may be nil for a well-behaved channel.
	Adversary Adversary
	// GrayZoneDeliveryProb is the probability that an uncontended
	// transmission from the gray zone (between R1 and R2) is delivered
	// anyway. The quasi-unit-disk model leaves this region unspecified;
	// the default 0 is the conservative reading.
	GrayZoneDeliveryProb float64
	// Seed drives the medium's own randomness (gray-zone delivery and
	// detector noise). Defaults to 1 via NewMedium. Draws are keyed by
	// (Seed, round, receiver), so they do not depend on the order in
	// which receivers are processed.
	Seed int64
	// Mode selects the delivery implementation; see DeliveryMode.
	Mode DeliveryMode
	// Parallel shards the per-receiver delivery computation across a
	// worker pool. Output is deterministic and identical to the
	// sequential modes: receptions are written into per-receiver slots
	// (NodeID order) and all randomness is per-receiver.
	Parallel bool
	// Workers caps the pool used when Parallel is set; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Medium implements sim.Medium with quasi-unit-disk propagation and
// collision-detector synthesis.
type Medium struct {
	cfg Config
}

var _ sim.Medium = (*Medium)(nil)

// NewMedium validates cfg and returns a Medium.
func NewMedium(cfg Config) (*Medium, error) {
	if err := cfg.Radii.Validate(); err != nil {
		return nil, fmt.Errorf("radio: %w", err)
	}
	if cfg.Detector == nil {
		return nil, fmt.Errorf("radio: config requires a collision detector")
	}
	if cfg.GrayZoneDeliveryProb < 0 || cfg.GrayZoneDeliveryProb > 1 {
		return nil, fmt.Errorf("radio: GrayZoneDeliveryProb = %v out of [0,1]", cfg.GrayZoneDeliveryProb)
	}
	if cfg.Mode < ModeAuto || cfg.Mode > ModeGrid {
		return nil, fmt.Errorf("radio: unknown delivery mode %d", cfg.Mode)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("radio: Workers = %d, must be non-negative", cfg.Workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Medium{cfg: cfg}, nil
}

// MustMedium is NewMedium for static configurations known to be valid; it
// panics on error. Intended for tests, examples and benchmarks.
func MustMedium(cfg Config) *Medium {
	m, err := NewMedium(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Deliver implements sim.Medium. For each alive receiver it computes the
// physically deliverable set, applies the adversary, and synthesizes the
// collision-detector indication from the ground-truth losses.
func (m *Medium) Deliver(r sim.Round, txs []sim.Transmission, rxs []sim.NodeInfo) []sim.Reception {
	out := make([]sim.Reception, len(rxs))

	var ix *geo.CellIndex
	switch m.cfg.Mode {
	case ModeGrid:
		ix = buildTxIndex(txs, m.cfg.Radii.R2)
	case ModeAuto:
		if len(txs) >= autoIndexMinTxs && len(txs)*len(rxs) >= autoIndexMinWork {
			ix = buildTxIndex(txs, m.cfg.Radii.R2)
		}
	}
	// The grid only surfaces transmissions whose origin lies near the
	// receiver, so a sender's own transmission is looked up by identity
	// instead — the half-duplex rule must hold whatever position the
	// transmission claims to originate from, keeping the grid path
	// reception-identical to the scan even for out-of-sync From points.
	var ownTx map[sim.NodeID]int32
	if ix != nil {
		ownTx = make(map[sim.NodeID]int32, len(txs))
		for i := range txs {
			ownTx[txs[i].Sender] = int32(i)
		}
	}

	sim.Shard(len(rxs), m.workersFor(len(rxs)), func(lo, hi int) {
		var buf []int32
		for i := lo; i < hi; i++ {
			rx := rxs[i]
			if !rx.Alive {
				out[i] = sim.Reception{Round: r}
				continue
			}
			if ix != nil {
				buf = ix.Near(buf[:0], rx.At, 1)
			}
			out[i] = m.receive(r, txs, buf, ownTx, ix != nil, rx)
		}
	})
	return out
}

// workersFor returns the number of delivery shards to use for n receivers.
func (m *Medium) workersFor(n int) int {
	if !m.cfg.Parallel || n < 2 {
		return 1
	}
	w := m.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// buildTxIndex buckets the round's transmission origins into cells of side
// R2, so a receiver's 3x3 cell block covers every transmission within its
// interference radius.
func buildTxIndex(txs []sim.Transmission, cellSize float64) *geo.CellIndex {
	pts := make([]geo.Point, len(txs))
	for i := range txs {
		pts[i] = txs[i].From
	}
	return geo.BuildCellIndex(pts, cellSize)
}

// receive computes one receiver's reception. When useIdx is set, candIdx
// holds the indices (into txs) of the grid-selected candidates, a superset
// of every transmission within R2 of the receiver, and ownTx maps each
// sender to its transmission (identity can't be answered by a positional
// query); otherwise the full transmission slice is scanned. Both paths
// classify candidates by exact distance, so they produce identical
// receptions.
func (m *Medium) receive(r sim.Round, txs []sim.Transmission, candIdx []int32, ownTx map[sim.NodeID]int32, useIdx bool, rx sim.NodeInfo) sim.Reception {
	radii := m.cfg.Radii

	// Partition the round's transmissions as seen from this receiver.
	var own *sim.Transmission
	var inR1, gray []sim.Transmission // from other nodes
	consider := func(i int) {
		tx := txs[i]
		if tx.Sender == rx.ID {
			own = &txs[i]
			return
		}
		d2 := tx.From.Dist2(rx.At)
		switch {
		case d2 <= radii.R1*radii.R1:
			inR1 = append(inR1, tx)
		case d2 <= radii.R2*radii.R2:
			gray = append(gray, tx)
		}
	}
	if useIdx {
		if i, ok := ownTx[rx.ID]; ok {
			own = &txs[i]
		}
		for _, i := range candIdx {
			if txs[i].Sender != rx.ID {
				consider(int(i))
			}
		}
	} else {
		for i := range txs {
			consider(i)
		}
	}
	othersInR2 := len(inR1) + len(gray)

	// Randomness for this receiver (gray-zone delivery and detector
	// noise) is derived from (seed, round, receiver) on first use, so it
	// is independent of the order receivers are processed in.
	var rng *rand.Rand
	rnd := func() float64 {
		if rng == nil {
			rng = rand.New(rand.NewSource(receiverSeed(m.cfg.Seed, r, rx.ID)))
		}
		return rng.Float64()
	}

	// Physical delivery: a node always hears its own broadcast. A message
	// from another node gets through only when it is the sole transmission
	// within R2 of the receiver AND the receiver itself is not
	// transmitting — the delivery guarantee of Section 2 requires that "no
	// node within distance R2 of pj broadcasts", and pj is within R2 of
	// itself (half-duplex). Gray-zone delivery is probabilistic
	// (default: never).
	var deliverable []sim.Transmission
	if othersInR2 == 1 && own == nil {
		deliverable = append(deliverable, inR1...)
		for _, tx := range gray {
			if m.cfg.GrayZoneDeliveryProb > 0 && rnd() < m.cfg.GrayZoneDeliveryProb {
				deliverable = append(deliverable, tx)
			}
		}
	}

	// Adversarial loss (only effective before the adversary's horizon).
	delivered := deliverable
	spurious := false
	if adv := m.cfg.Adversary; adv != nil {
		delivered = adv.Filter(r, rx.ID, deliverable)
		spurious = adv.ForceCollision(r, rx.ID)
	}

	// Ground truth for the collision detector: a loss is any transmission
	// from another node within the relevant radius that was not delivered,
	// whatever the cause (contention, gray zone, or adversary).
	lostR1, lostR2 := false, false
	for _, tx := range inR1 {
		if !containsTx(delivered, tx.Sender) {
			lostR1 = true
			lostR2 = true
			break
		}
	}
	if !lostR2 {
		for _, tx := range gray {
			if !containsTx(delivered, tx.Sender) {
				lostR2 = true
				break
			}
		}
	}

	collision := m.cfg.Detector.Report(r, lostR1, lostR2, spurious, rnd)

	msgs := make([]sim.Message, 0, len(delivered)+1)
	if own != nil {
		msgs = append(msgs, own.Msg)
	}
	for _, tx := range delivered {
		msgs = append(msgs, tx.Msg)
	}
	return sim.Reception{Round: r, Msgs: msgs, Collision: collision}
}

func containsTx(txs []sim.Transmission, sender sim.NodeID) bool {
	for _, tx := range txs {
		if tx.Sender == sender {
			return true
		}
	}
	return false
}

// mix64 is the SplitMix64 finalizer, used to spread structured seed inputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashKeys folds keys through the SplitMix64 finalizer into one well-spread
// value. It is the package's single keyed-hash primitive: the medium's
// per-receiver RNG seeds and RandomLoss's per-message draws both derive
// from it, so their determinism contracts stay in lockstep.
func hashKeys(keys ...int64) uint64 {
	var h uint64
	for _, k := range keys {
		h = mix64(h ^ (uint64(k) + 0x9e3779b97f4a7c15))
	}
	return h
}

// receiverSeed derives the RNG seed for one receiver in one round.
func receiverSeed(seed int64, r sim.Round, id sim.NodeID) int64 {
	return int64(hashKeys(seed, int64(r), int64(id)))
}
