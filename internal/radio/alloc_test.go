package radio

import (
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/sim"
)

// TestDeliverSteadyStateAllocs gates the delivery loop's allocation budget
// at 10k nodes: after warm-up, the only per-round allocations left are the
// message slices of receivers that actually hear something (~one per
// transmitting sender, which always hears itself). Before the scratch-reuse
// work this was ~60k allocs (4 MB) per round; the budget of 1.5 x txs + 64
// keeps the win from silently regressing while leaving room for grid-cell
// drift as positions change.
func TestDeliverSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	infos, txs, radii := benchScenario(10_000)
	for _, mode := range []DeliveryMode{ModeScan, ModeGrid} {
		name := "grid"
		if mode == ModeScan {
			name = "scan"
		}
		t.Run(name, func(t *testing.T) {
			if mode == ModeScan && testing.Short() {
				t.Skip("scan at 10k nodes is slow")
			}
			m := MustMedium(Config{Radii: radii, Detector: cd.AC{}, Mode: mode, Seed: 1})
			for r := sim.Round(0); r < 3; r++ { // warm the reusable state
				m.Deliver(r, txs, infos)
			}
			budget := 1.5*float64(len(txs)) + 64
			avg := testing.AllocsPerRun(3, func() { m.Deliver(3, txs, infos) })
			if avg > budget {
				t.Errorf("steady-state Deliver allocates %.0f times per round at 10k nodes (%d txs), want <= %.0f", avg, len(txs), budget)
			}
		})
	}
}
