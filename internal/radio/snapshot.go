package radio

import (
	"fmt"

	"vinfra/internal/wire"
)

// wireEncoder matches adversaries that carry a canonical wire encoding
// (the internal/faults jammers do); see MediumSnapshot.Adversary.
type wireEncoder interface {
	AppendTo(dst []byte) []byte
}

// MediumSnapshot is the medium's layer of a checkpoint. A Medium has no
// mutable behavioral state — every draw is a pure (Seed, round, receiver)
// hash and the grid index is per-round scratch — so the snapshot is a
// configuration fingerprint: Restore validates that a rebuilt medium
// matches the one the snapshot was taken from instead of copying state
// into it. Detector and Adversary are recorded as fingerprints (type name,
// or the adversary's canonical encoding when it has one) for the same
// reason.
type MediumSnapshot struct {
	R1, R2               float64
	GrayZoneDeliveryProb float64
	Seed                 int64
	// Adversary fingerprints the configured adversary: 0 when nil, the
	// wire.Digest of its canonical encoding when it implements AppendTo,
	// the digest of its type name otherwise.
	Adversary uint64
	// Detector is the detector's type name (all cd detectors are
	// stateless empty structs).
	Detector string
}

// AppendTo appends the canonical encoding of s to dst.
func (s MediumSnapshot) AppendTo(dst []byte) []byte {
	dst = wire.AppendFloat64(dst, s.R1)
	dst = wire.AppendFloat64(dst, s.R2)
	dst = wire.AppendFloat64(dst, s.GrayZoneDeliveryProb)
	dst = wire.AppendVarint(dst, s.Seed)
	dst = wire.AppendUint64(dst, s.Adversary)
	return wire.AppendString(dst, s.Detector)
}

// WireSize returns the exact encoded size of s.
func (s MediumSnapshot) WireSize() int {
	return 8 + 8 + 8 + wire.VarintSize(s.Seed) + 8 + wire.BytesSize(len(s.Detector))
}

// DecodeMediumSnapshot decodes a MediumSnapshot from b, which must contain
// exactly one encoding.
func DecodeMediumSnapshot(b []byte) (MediumSnapshot, error) {
	d := wire.Dec(b)
	var s MediumSnapshot
	s.R1 = d.Float64()
	s.R2 = d.Float64()
	s.GrayZoneDeliveryProb = d.Float64()
	s.Seed = d.Varint()
	s.Adversary = d.Uint64()
	s.Detector = d.String()
	if err := d.Finish(); err != nil {
		return MediumSnapshot{}, err
	}
	return s, nil
}

// Snapshot fingerprints the medium's configuration; see MediumSnapshot.
func (m *Medium) Snapshot() MediumSnapshot {
	return MediumSnapshot{
		R1:                   m.cfg.Radii.R1,
		R2:                   m.cfg.Radii.R2,
		GrayZoneDeliveryProb: m.cfg.GrayZoneDeliveryProb,
		Seed:                 m.cfg.Seed,
		Adversary:            adversaryDigest(m.cfg.Adversary),
		Detector:             fmt.Sprintf("%T", m.cfg.Detector),
	}
}

// Restore validates that m's configuration matches the snapshot. It never
// mutates the medium (there is nothing to restore); a mismatch means the
// caller rebuilt a different world than the snapshot was taken from.
func (m *Medium) Restore(s MediumSnapshot) error {
	if got := m.Snapshot(); got != s {
		return fmt.Errorf("radio: restore: medium config %+v does not match snapshot %+v", got, s)
	}
	return nil
}

func adversaryDigest(a Adversary) uint64 {
	if a == nil {
		return 0
	}
	if enc, ok := a.(wireEncoder); ok {
		return uint64(wire.DigestOf(enc.AppendTo(nil)))
	}
	return uint64(wire.DigestOf([]byte(fmt.Sprintf("%T", a))))
}
