package radio

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// randomRound builds a randomized scenario: node positions scattered over a
// field sized to the node count (roughly constant density), a random subset
// transmitting, random radii, and a few dead nodes.
func randomRound(rng *rand.Rand, n int) (geo.Radii, []sim.NodeInfo, []sim.Transmission) {
	radii := geo.Radii{R1: 2 + rng.Float64()*10}
	radii.R2 = radii.R1 * (1 + rng.Float64())
	side := 10 + 4*float64(n)*rng.Float64()
	infos := make([]sim.NodeInfo, n)
	var txs []sim.Transmission
	for i := range infos {
		infos[i] = sim.NodeInfo{
			ID:    sim.NodeID(i),
			At:    geo.Point{X: rng.Float64()*side - side/2, Y: rng.Float64()*side - side/2},
			Alive: rng.Intn(10) > 0,
		}
		if infos[i].Alive && rng.Intn(3) > 0 {
			txs = append(txs, sim.Transmission{
				Sender: infos[i].ID,
				From:   infos[i].At,
				Msg:    fmt.Sprintf("m%d", i),
			})
		}
	}
	return radii, infos, txs
}

// TestGridScanEquivalence is the tentpole's safety net: across randomized
// positions, radii, adversaries, gray-zone settings, and rounds, the
// grid-indexed medium must produce receptions identical to the brute-force
// scan — same messages, same order, same collision indications.
func TestGridScanEquivalence(t *testing.T) {
	f := func(seed uint32, nRaw uint8, advRaw, grayRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw%120) + 2
		radii, infos, txs := randomRound(rng, n)

		var adv Adversary
		switch advRaw % 3 {
		case 1:
			adv = NewRandomLoss(0.3+rng.Float64()*0.5, 0.2, 50, int64(seed)*13)
		case 2:
			s := &Script{}
			for i := 0; i < 5; i++ {
				s.Drop(sim.Round(rng.Intn(4)), sim.NodeID(rng.Intn(n)), sim.NodeID(rng.Intn(n)))
				s.Collide(sim.Round(rng.Intn(4)), sim.NodeID(rng.Intn(n)))
			}
			adv = s
		}
		gray := 0.0
		if grayRaw%2 == 1 {
			gray = rng.Float64()
		}
		base := Config{
			Radii:                radii,
			Detector:             cd.EventuallyAC{Racc: 2, FalsePositiveRate: 0.2},
			Adversary:            adv,
			GrayZoneDeliveryProb: gray,
			Seed:                 int64(seed) + 5,
		}
		scanCfg, gridCfg := base, base
		scanCfg.Mode = ModeScan
		gridCfg.Mode = ModeGrid
		scan := MustMedium(scanCfg)
		grid := MustMedium(gridCfg)

		for r := sim.Round(0); r < 4; r++ {
			a := scan.Deliver(r, txs, infos)
			b := grid.Deliver(r, txs, infos)
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestParallelDeliveryDeterminism requires that sharding receivers across
// a worker pool changes nothing: for any scenario and any worker count,
// the receptions equal the sequential ones, run after run.
func TestParallelDeliveryDeterminism(t *testing.T) {
	f := func(seed uint32, nRaw uint8, workersRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nRaw%120) + 2
		radii, infos, txs := randomRound(rng, n)
		base := Config{
			Radii:                radii,
			Detector:             cd.EventuallyAC{Racc: 2, FalsePositiveRate: 0.3},
			Adversary:            NewRandomLoss(0.4, 0.2, 50, int64(seed)),
			GrayZoneDeliveryProb: 0.5,
			Seed:                 int64(seed) + 1,
		}
		seqCfg, parCfg := base, base
		parCfg.Parallel = true
		parCfg.Workers = int(workersRaw%8) + 1
		seq := MustMedium(seqCfg)
		par := MustMedium(parCfg)
		for r := sim.Round(0); r < 3; r++ {
			want := seq.Deliver(r, txs, infos)
			for rep := 0; rep < 3; rep++ {
				if !reflect.DeepEqual(par.Deliver(r, txs, infos), want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGridScanEquivalenceStaleFrom pins the half-duplex rule for a
// transmission whose claimed origin is far from its sender's current
// position: the grid can't find it by position near the sender, so it must
// be looked up by identity, or the modes diverge.
func TestGridScanEquivalenceStaleFrom(t *testing.T) {
	radii := geo.Radii{R1: 10, R2: 20}
	infos := []sim.NodeInfo{
		{ID: 0, At: geo.Point{X: 0}, Alive: true},
		{ID: 1, At: geo.Point{X: 5}, Alive: true},
	}
	txs := []sim.Transmission{
		// Node 0 transmits, but the recorded origin is nowhere near it.
		{Sender: 0, From: geo.Point{X: 500}, Msg: "stale"},
		{Sender: 1, From: geo.Point{X: 5}, Msg: "near"},
	}
	base := Config{Radii: radii, Detector: cd.AC{}, Seed: 3}
	scanCfg, gridCfg := base, base
	scanCfg.Mode = ModeScan
	gridCfg.Mode = ModeGrid
	want := MustMedium(scanCfg).Deliver(0, txs, infos)
	got := MustMedium(gridCfg).Deliver(0, txs, infos)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stale-From receptions diverge:\nscan: %+v\ngrid: %+v", want, got)
	}
}

// TestAutoModeMatchesScan pins the heuristic mode to the reference scan on
// both sides of the index threshold.
func TestAutoModeMatchesScan(t *testing.T) {
	for _, n := range []int{4, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		radii, infos, txs := randomRound(rng, n)
		base := Config{Radii: radii, Detector: cd.AC{}, Seed: 9}
		scanCfg, autoCfg := base, base
		scanCfg.Mode = ModeScan
		want := MustMedium(scanCfg).Deliver(0, txs, infos)
		got := MustMedium(autoCfg).Deliver(0, txs, infos)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: ModeAuto receptions diverge from ModeScan", n)
		}
	}
}

func TestNewMediumRejectsBadModeAndWorkers(t *testing.T) {
	radii := geo.Radii{R1: 1, R2: 2}
	if _, err := NewMedium(Config{Radii: radii, Detector: cd.AC{}, Mode: DeliveryMode(42)}); err == nil {
		t.Error("bad Mode accepted")
	}
	if _, err := NewMedium(Config{Radii: radii, Detector: cd.AC{}, Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
}
