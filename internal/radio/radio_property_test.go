package radio

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// Property: completeness — for any geometry, any transmission set, and any
// adversarial drop pattern, a receiver that fails to receive a message
// broadcast within R1 gets a collision indication (Property 1 of the
// paper), as long as the detector is complete.
func TestCompletenessProperty(t *testing.T) {
	f := func(seed uint32, nRaw, txRaw uint8, lossP uint8) bool {
		n := int(nRaw%8) + 2
		r := rand.New(rand.NewSource(int64(seed)))
		infos := make([]sim.NodeInfo, n)
		for i := range infos {
			infos[i] = sim.NodeInfo{
				ID:    sim.NodeID(i),
				At:    geo.Point{X: r.Float64() * 50, Y: r.Float64() * 50},
				Alive: true,
			}
		}
		var txs []sim.Transmission
		for i := range infos {
			if r.Intn(3) < int(txRaw%3) {
				txs = append(txs, sim.Transmission{
					Sender: infos[i].ID,
					From:   infos[i].At,
					Msg:    fmt.Sprintf("m%d", i),
				})
			}
		}
		p := float64(lossP%10) / 10
		m := MustMedium(Config{
			Radii:     testRadii,
			Detector:  cd.EventuallyAC{Racc: 1000},
			Adversary: NewRandomLoss(p, 0, 1000, int64(seed)+7),
			Seed:      int64(seed) + 13,
		})
		out := m.Deliver(0, txs, infos)
		for i, rx := range out {
			if !infos[i].Alive {
				continue
			}
			// Which in-R1 messages from others were broadcast?
			for _, tx := range txs {
				if tx.Sender == infos[i].ID {
					continue
				}
				if !testRadii.CanReach(tx.From, infos[i].At) {
					continue
				}
				received := false
				for _, msg := range rx.Msgs {
					if msg == tx.Msg {
						received = true
						break
					}
				}
				if !received && !rx.Collision {
					return false // completeness violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: accuracy with the AC detector — a collision is reported only
// when some in-R2 message was actually lost.
func TestAccuracyProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		r := rand.New(rand.NewSource(int64(seed)))
		infos := make([]sim.NodeInfo, n)
		for i := range infos {
			infos[i] = sim.NodeInfo{
				ID:    sim.NodeID(i),
				At:    geo.Point{X: r.Float64() * 60, Y: r.Float64() * 60},
				Alive: true,
			}
		}
		var txs []sim.Transmission
		for i := range infos {
			if r.Intn(2) == 0 {
				txs = append(txs, sim.Transmission{
					Sender: infos[i].ID, From: infos[i].At, Msg: fmt.Sprintf("m%d", i),
				})
			}
		}
		m := MustMedium(Config{Radii: testRadii, Detector: cd.AC{}, Seed: int64(seed) + 3})
		out := m.Deliver(0, txs, infos)
		for i, rx := range out {
			if !rx.Collision {
				continue
			}
			// Some in-R2 message from another node must be missing.
			lost := false
			for _, tx := range txs {
				if tx.Sender == infos[i].ID {
					continue
				}
				if !testRadii.CanInterfere(tx.From, infos[i].At) {
					continue
				}
				received := false
				for _, msg := range rx.Msgs {
					if msg == tx.Msg {
						received = true
						break
					}
				}
				if !received {
					lost = true
					break
				}
			}
			if !lost {
				return false // false positive from an accurate detector
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: loopback — a transmitter always receives its own message,
// whatever else happens.
func TestLoopbackProperty(t *testing.T) {
	f := func(seed uint32, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		r := rand.New(rand.NewSource(int64(seed)))
		infos := make([]sim.NodeInfo, n)
		var txs []sim.Transmission
		for i := range infos {
			infos[i] = sim.NodeInfo{
				ID:    sim.NodeID(i),
				At:    geo.Point{X: r.Float64() * 10, Y: r.Float64() * 10},
				Alive: true,
			}
			txs = append(txs, sim.Transmission{
				Sender: infos[i].ID, From: infos[i].At, Msg: fmt.Sprintf("m%d", i),
			})
		}
		m := MustMedium(Config{
			Radii:     testRadii,
			Detector:  cd.AC{},
			Adversary: NewRandomLoss(0.9, 0, 1000, int64(seed)),
			Seed:      int64(seed),
		})
		out := m.Deliver(0, txs, infos)
		for i, rx := range out {
			own := fmt.Sprintf("m%d", i)
			found := false
			for _, msg := range rx.Msgs {
				if msg == own {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
