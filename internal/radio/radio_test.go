package radio

import (
	"testing"

	"vinfra/internal/cd"
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

var testRadii = geo.Radii{R1: 10, R2: 20}

func acMedium(t *testing.T, adv Adversary) *Medium {
	t.Helper()
	m, err := NewMedium(Config{Radii: testRadii, Detector: cd.AC{}, Adversary: adv})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func infos(alive bool, pts ...geo.Point) []sim.NodeInfo {
	out := make([]sim.NodeInfo, len(pts))
	for i, p := range pts {
		out[i] = sim.NodeInfo{ID: sim.NodeID(i), At: p, Alive: alive}
	}
	return out
}

func tx(id int, at geo.Point, msg string) sim.Transmission {
	return sim.Transmission{Sender: sim.NodeID(id), From: at, Msg: msg}
}

func TestNewMediumValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Radii: testRadii, Detector: cd.AC{}}, false},
		{"bad radii", Config{Radii: geo.Radii{R1: 5, R2: 1}, Detector: cd.AC{}}, true},
		{"nil detector", Config{Radii: testRadii}, true},
		{"bad gray prob", Config{Radii: testRadii, Detector: cd.AC{}, GrayZoneDeliveryProb: 1.5}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMedium(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewMedium error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestDeliveryWithinR1(t *testing.T) {
	m := acMedium(t, nil)
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5})
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "hello")}, rxs)

	// Receiver 1 (listener at distance 5 < R1) hears the message, no collision.
	if len(out[1].Msgs) != 1 || out[1].Msgs[0] != "hello" {
		t.Errorf("listener reception = %+v, want [hello]", out[1])
	}
	if out[1].Collision {
		t.Error("clean delivery flagged a collision")
	}
	// Sender hears its own message.
	if len(out[0].Msgs) != 1 || out[0].Msgs[0] != "hello" {
		t.Errorf("sender loopback = %+v, want [hello]", out[0])
	}
}

func TestNoDeliveryBeyondR2(t *testing.T) {
	m := acMedium(t, nil)
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 25})
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "hello")}, rxs)
	if len(out[1].Msgs) != 0 {
		t.Errorf("node beyond R2 received %v", out[1].Msgs)
	}
	if out[1].Collision {
		t.Error("node beyond R2 saw a collision")
	}
}

func TestGrayZoneSilentByDefault(t *testing.T) {
	m := acMedium(t, nil)
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 15})
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "hello")}, rxs)
	if len(out[1].Msgs) != 0 {
		t.Errorf("gray-zone receiver got %v, want nothing", out[1].Msgs)
	}
	// An R2 message was lost, so an accurate detector may (and ours does)
	// report a collision.
	if !out[1].Collision {
		t.Error("gray-zone loss should trigger the AC detector")
	}
}

func TestGrayZoneProbabilisticDelivery(t *testing.T) {
	m := MustMedium(Config{Radii: testRadii, Detector: cd.AC{}, GrayZoneDeliveryProb: 1})
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 15})
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "hello")}, rxs)
	if len(out[1].Msgs) != 1 {
		t.Errorf("gray zone with p=1 should deliver, got %v", out[1].Msgs)
	}
	if out[1].Collision {
		t.Error("delivered gray-zone message should not flag collision")
	}
}

func TestContentionCollision(t *testing.T) {
	m := acMedium(t, nil)
	// Two transmitters within R2 of the listener: contention, nothing heard,
	// collision detected (completeness: both are within R1 here).
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5}, geo.Point{X: -5})
	txs := []sim.Transmission{
		tx(1, geo.Point{X: 5}, "a"),
		tx(2, geo.Point{X: -5}, "b"),
	}
	out := m.Deliver(0, txs, rxs)
	if len(out[0].Msgs) != 0 {
		t.Errorf("listener under contention received %v", out[0].Msgs)
	}
	if !out[0].Collision {
		t.Error("contention must be detected (completeness)")
	}
	// Each transmitter still hears itself but not the other, and detects
	// the collision.
	for _, id := range []int{1, 2} {
		if len(out[id].Msgs) != 1 {
			t.Errorf("transmitter %d heard %v, want only own message", id, out[id].Msgs)
		}
		if !out[id].Collision {
			t.Errorf("transmitter %d missed the collision", id)
		}
	}
}

func TestHiddenInterferer(t *testing.T) {
	m := acMedium(t, nil)
	// Transmitter A at x=0 is within R1 of the listener at x=8. A second
	// transmitter at x=25 is within R2 of the listener (distance 17) but
	// outside R1 — it jams the listener without being decodable.
	rxs := infos(true, geo.Point{X: 8}, geo.Point{X: 0}, geo.Point{X: 25})
	txs := []sim.Transmission{
		tx(1, geo.Point{X: 0}, "signal"),
		tx(2, geo.Point{X: 25}, "jam"),
	}
	out := m.Deliver(0, txs, rxs)
	if len(out[0].Msgs) != 0 {
		t.Errorf("jammed listener received %v", out[0].Msgs)
	}
	if !out[0].Collision {
		t.Error("jammed listener must detect the collision (R1 message lost)")
	}
	// The distant jammer (x=25) is beyond R2 of transmitter 1 (x=0,
	// distance 25), so transmitter 1 hears only itself with no collision.
	if out[1].Collision {
		t.Error("transmitter 1 should not see a collision")
	}
}

func TestNonUniformCollisions(t *testing.T) {
	m := acMedium(t, nil)
	// Listener 0 near both transmitters suffers contention; listener 3 far
	// from transmitter 2 hears transmitter 1 cleanly. "A message may be
	// received by some nodes, but not others" (Section 2).
	rxs := infos(true,
		geo.Point{X: 0},   // 0: hears both -> collision
		geo.Point{X: -5},  // 1: transmitter
		geo.Point{X: 5},   // 2: transmitter
		geo.Point{X: -24}, // 3: only transmitter 1 in R2 (19 < 20), in gray zone though
	)
	txs := []sim.Transmission{
		tx(1, geo.Point{X: -5}, "a"),
		tx(2, geo.Point{X: 5}, "b"),
	}
	out := m.Deliver(0, txs, rxs)
	if !out[0].Collision || len(out[0].Msgs) != 0 {
		t.Errorf("near listener: %+v, want collision and no messages", out[0])
	}
	if len(out[3].Msgs) != 0 {
		t.Errorf("far listener in gray zone got %v", out[3].Msgs)
	}
}

func TestCleanReceptionSingleTransmitter(t *testing.T) {
	m := acMedium(t, nil)
	// One transmitter, listener within R1, nothing else: message received,
	// no collision — this is the eventual collision freedom guarantee.
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 9})
	out := m.Deliver(100, []sim.Transmission{tx(0, geo.Point{X: 0}, "m")}, rxs)
	if len(out[1].Msgs) != 1 || out[1].Collision {
		t.Errorf("clean round: %+v", out[1])
	}
}

func TestCrashedNodesIgnored(t *testing.T) {
	m := acMedium(t, nil)
	rxs := []sim.NodeInfo{
		{ID: 0, At: geo.Point{X: 0}, Alive: true},
		{ID: 1, At: geo.Point{X: 5}, Alive: false},
	}
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "m")}, rxs)
	if len(out[1].Msgs) != 0 || out[1].Collision {
		t.Errorf("crashed node received %+v", out[1])
	}
}

func TestAdversaryDropTriggersCompleteness(t *testing.T) {
	adv := &Script{}
	adv.DropAll(0, 1)
	m, err := NewMedium(Config{
		Radii:     testRadii,
		Detector:  cd.EventuallyAC{Racc: 1000},
		Adversary: adv,
	})
	if err != nil {
		t.Fatal(err)
	}
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5}, geo.Point{X: 9})
	txs := []sim.Transmission{tx(0, geo.Point{X: 0}, "m")}

	out := m.Deliver(0, txs, rxs)
	if len(out[1].Msgs) != 0 {
		t.Errorf("dropped receiver got %v", out[1].Msgs)
	}
	if !out[1].Collision {
		t.Error("adversarial drop must still trigger the detector (completeness)")
	}
	// Node 2 is unaffected — non-uniform loss.
	if len(out[2].Msgs) != 1 || out[2].Collision {
		t.Errorf("unaffected receiver: %+v", out[2])
	}

	// Round 1: script expired, delivery resumes.
	out = m.Deliver(1, txs, rxs)
	if len(out[1].Msgs) != 1 || out[1].Collision {
		t.Errorf("after script: %+v", out[1])
	}
}

func TestAdversaryTargetedDrop(t *testing.T) {
	adv := &Script{}
	adv.Drop(0, 1, 0) // receiver 1 loses sender 0's message
	m := MustMedium(Config{Radii: testRadii, Detector: cd.AC{}, Adversary: adv})
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5})
	out := m.Deliver(0, []sim.Transmission{tx(0, geo.Point{X: 0}, "m")}, rxs)
	if len(out[1].Msgs) != 0 || !out[1].Collision {
		t.Errorf("targeted drop: %+v", out[1])
	}
}

func TestForcedCollisionRespectsAccuracy(t *testing.T) {
	adv := &Script{}
	adv.Collide(0, 0)
	adv.Collide(50, 0)
	m := MustMedium(Config{
		Radii:     testRadii,
		Detector:  cd.EventuallyAC{Racc: 10},
		Adversary: adv,
	})
	rxs := infos(true, geo.Point{X: 0})

	out := m.Deliver(0, nil, rxs)
	if !out[0].Collision {
		t.Error("forced collision before Racc should be reported")
	}
	out = m.Deliver(50, nil, rxs)
	if out[0].Collision {
		t.Error("forced collision after Racc must be suppressed (eventual accuracy)")
	}
}

func TestRandomLossIsBoundedByHorizon(t *testing.T) {
	adv := NewRandomLoss(1.0, 0, 5, 99)
	m := MustMedium(Config{Radii: testRadii, Detector: cd.AC{}, Adversary: adv})
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5})
	txs := []sim.Transmission{tx(0, geo.Point{X: 0}, "m")}
	for r := sim.Round(0); r < 5; r++ {
		out := m.Deliver(r, txs, rxs)
		if len(out[1].Msgs) != 0 {
			t.Errorf("round %d: p=1 loss should drop everything", r)
		}
	}
	out := m.Deliver(5, txs, rxs)
	if len(out[1].Msgs) != 1 {
		t.Error("after r_cf the adversary must be harmless")
	}
}

func TestPartitionAdversary(t *testing.T) {
	adv := NewPartition(10, 0)
	m := MustMedium(Config{Radii: testRadii, Detector: cd.AC{}, Adversary: adv})
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5})
	txs := []sim.Transmission{tx(1, geo.Point{X: 5}, "from-b")}

	out := m.Deliver(0, txs, rxs)
	if len(out[0].Msgs) != 0 {
		t.Error("cross-partition message delivered")
	}
	if !out[0].Collision {
		t.Error("partition loss must be detected (completeness)")
	}
	out = m.Deliver(10, txs, rxs)
	if len(out[0].Msgs) != 1 {
		t.Error("partition should heal at its horizon")
	}
}

func TestComposeAdversary(t *testing.T) {
	s1, s2 := &Script{}, &Script{}
	s1.Drop(0, 0, 1)
	s2.Collide(0, 0)
	adv := Compose{s1, s2}
	m := MustMedium(Config{Radii: testRadii, Detector: cd.EventuallyAC{Racc: 100}, Adversary: adv})
	rxs := infos(true, geo.Point{X: 0}, geo.Point{X: 5})
	out := m.Deliver(0, []sim.Transmission{tx(1, geo.Point{X: 5}, "m")}, rxs)
	if len(out[0].Msgs) != 0 || !out[0].Collision {
		t.Errorf("compose: %+v", out[0])
	}
}

func TestNoneAdversary(t *testing.T) {
	var n None
	txs := []sim.Transmission{tx(0, geo.Point{}, "m")}
	if got := n.Filter(0, 1, geo.Point{}, txs); len(got) != 1 {
		t.Error("None must pass everything through")
	}
	if n.ForceCollision(0, 1, geo.Point{}) {
		t.Error("None must not force collisions")
	}
}

func TestTwoIsolatedCellsNoCrosstalk(t *testing.T) {
	// Two pairs far apart transmit simultaneously; each pair communicates
	// cleanly — the spatial reuse that makes the VI schedule work.
	m := acMedium(t, nil)
	rxs := infos(true,
		geo.Point{X: 0}, geo.Point{X: 5},
		geo.Point{X: 100}, geo.Point{X: 105},
	)
	txs := []sim.Transmission{
		tx(0, geo.Point{X: 0}, "west"),
		tx(2, geo.Point{X: 100}, "east"),
	}
	out := m.Deliver(0, txs, rxs)
	if len(out[1].Msgs) != 1 || out[1].Msgs[0] != "west" || out[1].Collision {
		t.Errorf("west listener: %+v", out[1])
	}
	if len(out[3].Msgs) != 1 || out[3].Msgs[0] != "east" || out[3].Collision {
		t.Errorf("east listener: %+v", out[3])
	}
}
