package radio

import (
	"vinfra/internal/geo"
	"vinfra/internal/sim"
)

// None is the identity adversary: a channel that is collision-free (apart
// from genuine contention) from round 0.
type None struct{}

// Filter implements Adversary.
func (None) Filter(_ sim.Round, _ sim.NodeID, _ geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	return deliverable
}

// ForceCollision implements Adversary.
func (None) ForceCollision(sim.Round, sim.NodeID, geo.Point) bool { return false }

// RandomLoss drops each deliverable message independently with probability
// P, and forces a spurious collision indication with probability
// CollisionP, in every round before Until (the r_cf horizon). From Until
// onward it is the identity.
//
// Construct with NewRandomLoss to seed the deterministic random source.
// Each draw is keyed by (seed, round, receiver, sender), so the adversary
// is stateless, independent of the order receivers are filtered in, and
// safe for the concurrent use a parallel Medium makes of it.
type RandomLoss struct {
	p          float64
	collisionP float64
	until      sim.Round
	seed       int64
}

// NewRandomLoss returns a RandomLoss adversary active before round until.
func NewRandomLoss(p, collisionP float64, until sim.Round, seed int64) *RandomLoss {
	return &RandomLoss{
		p:          p,
		collisionP: collisionP,
		until:      until,
		seed:       seed,
	}
}

// u01 returns the deterministic uniform [0,1) draw for one
// (round, receiver, sender) triple.
func (a *RandomLoss) u01(r sim.Round, receiver sim.NodeID, sender int64) float64 {
	return U01(HashKeys(a.seed, int64(r), int64(receiver), sender))
}

// Filter implements Adversary.
func (a *RandomLoss) Filter(r sim.Round, receiver sim.NodeID, _ geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	if r >= a.until || a.p <= 0 || len(deliverable) == 0 {
		return deliverable
	}
	kept := make([]sim.Transmission, 0, len(deliverable))
	for _, tx := range deliverable {
		if a.u01(r, receiver, int64(tx.Sender)) >= a.p {
			kept = append(kept, tx)
		}
	}
	return kept
}

// ForceCollision implements Adversary.
func (a *RandomLoss) ForceCollision(r sim.Round, receiver sim.NodeID, _ geo.Point) bool {
	if r >= a.until || a.collisionP <= 0 {
		return false
	}
	// The collision draw uses a sender key no real node carries.
	return a.u01(r, receiver, -1) < a.collisionP
}

// Script is a deterministic adversary driven by an explicit list of drop
// and forced-collision directives; it is how the Figure 2 rows and the unit
// tests stage exact loss patterns. The zero value is the identity
// adversary; add directives with Drop, DropAll and Collide.
type Script struct {
	drops   map[scriptKey]map[sim.NodeID]bool // receiver/round -> senders to drop
	dropAll map[scriptKey]bool
	collide map[scriptKey]bool
}

type scriptKey struct {
	round    sim.Round
	receiver sim.NodeID
}

// Drop schedules the message from sender to receiver in round r to be lost.
func (s *Script) Drop(r sim.Round, receiver, sender sim.NodeID) *Script {
	if s.drops == nil {
		s.drops = make(map[scriptKey]map[sim.NodeID]bool)
	}
	k := scriptKey{round: r, receiver: receiver}
	if s.drops[k] == nil {
		s.drops[k] = make(map[sim.NodeID]bool)
	}
	s.drops[k][sender] = true
	return s
}

// DropAll schedules every message to receiver in round r to be lost.
func (s *Script) DropAll(r sim.Round, receiver sim.NodeID) *Script {
	if s.dropAll == nil {
		s.dropAll = make(map[scriptKey]bool)
	}
	s.dropAll[scriptKey{round: r, receiver: receiver}] = true
	return s
}

// Collide forces a spurious collision indication at receiver in round r.
func (s *Script) Collide(r sim.Round, receiver sim.NodeID) *Script {
	if s.collide == nil {
		s.collide = make(map[scriptKey]bool)
	}
	s.collide[scriptKey{round: r, receiver: receiver}] = true
	return s
}

// Filter implements Adversary.
func (s *Script) Filter(r sim.Round, receiver sim.NodeID, _ geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	k := scriptKey{round: r, receiver: receiver}
	if s.dropAll[k] {
		return nil
	}
	senders := s.drops[k]
	if len(senders) == 0 {
		return deliverable
	}
	kept := make([]sim.Transmission, 0, len(deliverable))
	for _, tx := range deliverable {
		if !senders[tx.Sender] {
			kept = append(kept, tx)
		}
	}
	return kept
}

// ForceCollision implements Adversary.
func (s *Script) ForceCollision(r sim.Round, receiver sim.NodeID, _ geo.Point) bool {
	return s.collide[scriptKey{round: r, receiver: receiver}]
}

// Partition splits the nodes into two groups and, before round Until, drops
// every message crossing the partition (footnote 2's interference scenario:
// p_i and p_j unable to communicate). Membership is by NodeID.
type Partition struct {
	GroupA map[sim.NodeID]bool
	Until  sim.Round
}

// NewPartition returns a Partition isolating ids from everyone else before
// round until.
func NewPartition(until sim.Round, ids ...sim.NodeID) *Partition {
	g := make(map[sim.NodeID]bool, len(ids))
	for _, id := range ids {
		g[id] = true
	}
	return &Partition{GroupA: g, Until: until}
}

// Filter implements Adversary.
func (p *Partition) Filter(r sim.Round, receiver sim.NodeID, _ geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	if r >= p.Until {
		return deliverable
	}
	side := p.GroupA[receiver]
	kept := make([]sim.Transmission, 0, len(deliverable))
	for _, tx := range deliverable {
		if p.GroupA[tx.Sender] == side {
			kept = append(kept, tx)
		}
	}
	return kept
}

// ForceCollision implements Adversary.
func (p *Partition) ForceCollision(sim.Round, sim.NodeID, geo.Point) bool { return false }

// Compose chains adversaries: each Filter output feeds the next, and a
// forced collision from any member is forced.
type Compose []Adversary

// Filter implements Adversary.
func (c Compose) Filter(r sim.Round, receiver sim.NodeID, at geo.Point, deliverable []sim.Transmission) []sim.Transmission {
	for _, a := range c {
		deliverable = a.Filter(r, receiver, at, deliverable)
	}
	return deliverable
}

// ForceCollision implements Adversary.
func (c Compose) ForceCollision(r sim.Round, receiver sim.NodeID, at geo.Point) bool {
	for _, a := range c {
		if a.ForceCollision(r, receiver, at) {
			return true
		}
	}
	return false
}
