package spec

import (
	"strings"
	"testing"
)

func minimal() string {
	return `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}}`
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 1 || s.VRounds != 60 || s.Grid.Spacing != 6 {
		t.Fatalf("core defaults not applied: %+v", s)
	}
	if s.Radii.R1 != 10 || s.Radii.R2 != 20 {
		t.Fatalf("radii defaults not applied: %+v", s.Radii)
	}
	if s.App != "counter" || s.Leader != "fixed" {
		t.Fatalf("app/leader defaults not applied: app=%q leader=%q", s.App, s.Leader)
	}
	if s.Devices.Replicas != 3 || s.Devices.VMax != 0.02 {
		t.Fatalf("device defaults not applied: %+v", s.Devices)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "gird": 3}`))
	if err == nil || !strings.Contains(err.Error(), "gird") {
		t.Fatalf("want unknown-field error naming gird, got %v", err)
	}
	_, err = Parse([]byte(`{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1, "spacng": 6}}`))
	if err == nil {
		t.Fatal("nested unknown field accepted")
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	_, err := Parse([]byte(minimal() + `{"version": "vinfra-spec/v1"}`))
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("want trailing-data error, got %v", err)
	}
}

func TestParseRejectsWrongVersion(t *testing.T) {
	_, err := Parse([]byte(`{"version": "vinfra-spec/v2", "grid": {"cols": 2, "rows": 1}}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
	if _, err = Parse([]byte(`{"grid": {"cols": 2, "rows": 1}}`)); err == nil {
		t.Fatal("missing version accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no grid", `{"version": "vinfra-spec/v1"}`, "grid"},
		{"bad radii", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "radii": {"r1": 30, "r2": 20}}`, "radii"},
		{"bad app", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "app": "chess"}`, "app"},
		{"bad leader", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "leader": "anarchy"}`, "leader"},
		{"targets without tracker", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "devices": {"targets": 1}}`, "tracker"},
		{"negative shards", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "engine": {"shards": -1}}`, "shards"},
		{"too many devices", `{"version": "vinfra-spec/v1", "grid": {"cols": 700, "rows": 700}}`, "limit"},
		{"unknown fault kind", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "sharknado"}]}`, "kind"},
		{"fault field misuse", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "crash_burst", "p": 0.5, "cells": 3}]}`, "cells"},
		{"bad fault window", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "crash_burst", "p": 0.5, "from": 9, "until": 4}]}`, "window"},
		{"wipe without radius", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "region_wipe", "at": 10}]}`, "radius"},
		{"burst without p", `{"version": "vinfra-spec/v1", "grid": {"cols": 2, "rows": 1}, "faults": [{"kind": "crash_burst"}]}`, "p in"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFaultSeedDefaultsAreIndexStable(t *testing.T) {
	s, err := Parse([]byte(`{
		"version": "vinfra-spec/v1", "seed": 7,
		"grid": {"cols": 2, "rows": 1},
		"faults": [
			{"kind": "crash_burst", "p": 0.5, "period": 40},
			{"kind": "churn_storm", "kills": 1, "period": 50}
		]}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Faults[0].Seed != 7+101 || s.Faults[1].Seed != 7+202 {
		t.Fatalf("fault seeds %d, %d; want %d, %d", s.Faults[0].Seed, s.Faults[1].Seed, 7+101, 7+202)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := s.JSON()
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-Parse of JSON(): %v\n%s", err, out)
	}
	if string(s2.JSON()) != string(out) {
		t.Fatalf("JSON not a fixed point:\n%s\nvs\n%s", out, s2.JSON())
	}
}

func TestTotalDevices(t *testing.T) {
	s, err := Parse([]byte(`{
		"version": "vinfra-spec/v1",
		"grid": {"cols": 2, "rows": 2},
		"app": "tracker",
		"devices": {"replicas": 3, "pingers": true, "listeners": 5, "targets": 2}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// 4 vnodes * 3 replicas + 4 pingers + 5 listeners + 2 targets + observer.
	if got := s.TotalDevices(); got != 12+4+5+3 {
		t.Fatalf("TotalDevices = %d, want %d", got, 12+4+5+3)
	}
}
